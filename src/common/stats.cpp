#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace lpt {

double Stats::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double Stats::mean() const {
  LPT_CHECK(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  LPT_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  LPT_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::percentile(double p) const {
  LPT_CHECK(!samples_.empty());
  LPT_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace lpt
