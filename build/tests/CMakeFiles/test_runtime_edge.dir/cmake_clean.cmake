file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_edge.dir/runtime/parallel_for_test.cpp.o"
  "CMakeFiles/test_runtime_edge.dir/runtime/parallel_for_test.cpp.o.d"
  "CMakeFiles/test_runtime_edge.dir/runtime/runtime_edge_test.cpp.o"
  "CMakeFiles/test_runtime_edge.dir/runtime/runtime_edge_test.cpp.o.d"
  "CMakeFiles/test_runtime_edge.dir/runtime/timer_behavior_test.cpp.o"
  "CMakeFiles/test_runtime_edge.dir/runtime/timer_behavior_test.cpp.o.d"
  "test_runtime_edge"
  "test_runtime_edge.pdb"
  "test_runtime_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
