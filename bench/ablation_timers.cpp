// Ablation: per-process vs per-worker timers as a function of how many
// workers actually run preemptive threads (§3.2.2's motivating trade-off:
// "per-worker timers would signal all workers, even if none of the currently
// running threads are preemptive"). Also the alignment ablation of §3.2.1.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/script_thread.hpp"
#include "sim/timers.hpp"

using namespace lpt;
using namespace lpt::sim;

namespace {

/// Run 56 workers x 1 thread each for 20 ms; `preemptive_workers` of them
/// run preemptive threads. Returns total worker time lost to interruption
/// and preemption mechanics (µs).
double overhead_us(const CostModel& cm, TimerStrategy timer,
                   int preemptive_workers) {
  SimUltOptions o;
  o.num_workers = 56;
  o.timer = timer;
  o.interval = 1'000'000;
  SimUltRuntime rt(cm, o);
  for (int w = 0; w < 56; ++w) {
    auto t = std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(20'000'000)});
    t->preempt = w < preemptive_workers ? SimPreempt::kSignalYield
                                        : SimPreempt::kNone;
    t->home_pool = w;
    rt.spawn(std::move(t));
  }
  rt.run();
  return static_cast<double>(rt.total_overhead_time()) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: timer strategy vs fraction of preemptive "
              "threads ===\n");
  std::printf("56 workers x 20 ms compute threads, 1 ms interval; total "
              "overhead time (us).\n\n");

  const CostModel cm = CostModel::skylake();
  bench::JsonReport json("ablation_timers");
  Table table({"# preemptive", "per-worker (aligned)", "per-process (chain)",
               "per-process (one-to-all)"});
  double chain0 = 0, aligned0 = 0, chain56 = 0, aligned56 = 0;
  for (int p : {0, 1, 4, 14, 28, 56}) {
    const double al = overhead_us(cm, TimerStrategy::kPerWorkerAligned, p);
    const double ch = overhead_us(cm, TimerStrategy::kProcessChain, p);
    const double oa = overhead_us(cm, TimerStrategy::kProcessOneToAll, p);
    const std::string suffix = ".overhead_us.p" + std::to_string(p);
    json.set("aligned" + suffix, al);
    json.set("chain" + suffix, ch);
    json.set("one_to_all" + suffix, oa);
    if (p == 0) {
      chain0 = ch;
      aligned0 = al;
    }
    if (p == 56) {
      chain56 = ch;
      aligned56 = al;
    }
    table.add_row({Table::fmt("%d", p), Table::fmt("%9.1f", al),
                   Table::fmt("%9.1f", ch), Table::fmt("%9.1f", oa)});
  }
  table.print();

  std::printf("\nShape checks vs paper (§3.2):\n");
  std::printf("  [%s] with no preemptive threads, the per-process timer "
              "issues no signals (%.1f us vs per-worker %.1f us)\n",
              chain0 < 0.05 * aligned0 + 1 ? "OK" : "MISMATCH", chain0,
              aligned0);
  std::printf("  [%s] with all threads preemptive, per-worker aligned is "
              "cheapest (%.1f us vs chain %.1f us)\n",
              aligned56 < chain56 ? "OK" : "MISMATCH", aligned56, chain56);

  // Alignment ablation (§3.2.1): same workload, aligned vs creation-time.
  const double creation =
      overhead_us(cm, TimerStrategy::kPerWorkerCreationTime, 56);
  std::printf("  [%s] timer alignment pays: creation-time costs %.1fx the "
              "aligned variant\n",
              creation > 2.0 * aligned56 ? "OK" : "MISMATCH",
              creation / aligned56);
  json.set("creation_time.overhead_us.p56", creation);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
