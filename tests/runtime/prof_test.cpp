// Tier-1 tests of the continuous profiler (docs/observability.md,
// "Profiling"): on-CPU sampling in both piggyback and LPT_PROF_HZ modes,
// the reconciliation contract (invocations == recorded + dropped, and ==
// handler_entries in piggyback mode), off-CPU wait attribution, the
// lock-contention profiler with chain detection, the folded/JSON exports
// (round-tripped through tests/support/prof_parser.hpp), shutdown export +
// publisher refresh, env-knob resolution, and the off-by-default guarantee.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "runtime/sync.hpp"
#include "support/prof_parser.hpp"
#include "support/prom_parser.hpp"

namespace lpt {
namespace {

std::string tmp_path(const char* tag) {
  return "/tmp/lpt_prof_" + std::to_string(::getpid()) + "_" + tag;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Export + parse the folded profile of a still-live runtime.
proftest::FoldedParsed export_folded(const Runtime& rt) {
  const std::string path = tmp_path("export.folded");
  EXPECT_TRUE(rt.write_profile(path));
  proftest::FoldedParsed p = proftest::parse_folded(slurp(path));
  std::remove(path.c_str());
  return p;
}

TEST(Prof, OffByDefaultNothingRecorded) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  ASSERT_FALSE(rt.prof_enabled());

  Mutex m;
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn(
        [&m] {
          m.lock();
          busy_spin_ns(1'000'000);
          m.unlock();
          this_thread::sleep_for(std::chrono::milliseconds(1));
        },
        sy));
  for (auto& t : ts) t.join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_FALSE(s.prof_enabled);
  EXPECT_EQ(s.prof_sample_invocations, 0u);
  EXPECT_EQ(s.prof_samples_recorded, 0u);
  EXPECT_EQ(s.prof_offcpu_waits, 0u);
  EXPECT_EQ(s.prof_lock_acquires, 0u);
  EXPECT_EQ(s.prof_lock_contended, 0u);
  EXPECT_EQ(s.prof_contention_chains, 0u);
  // No profile without a profiler.
  EXPECT_FALSE(rt.write_profile(tmp_path("never")));
}

#if !defined(LPT_PROF_DISABLED)

TEST(Prof, PiggybackReconcilesWithHandlerEntries) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  o.prof.enabled = true;
  Runtime rt(o);
  ASSERT_TRUE(rt.prof_enabled());

  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  rt.spawn([] { busy_spin_ns(30'000'000); }, sy).join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_TRUE(s.prof_enabled);
  EXPECT_GT(s.prof_sample_invocations, 0u);
  // The reconciliation contract, both halves: every sampler entry is either
  // recorded or a counted drop, and in piggyback mode the sampler runs on
  // exactly the handler entries.
  EXPECT_EQ(s.prof_sample_invocations,
            s.prof_samples_recorded + s.prof_samples_dropped);
  EXPECT_EQ(s.prof_sample_invocations, s.handler_entries);

  const proftest::FoldedParsed p = export_folded(rt);
  for (const std::string& e : p.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.mode(), "piggyback");
  ASSERT_FALSE(p.stacks.empty());
  // Quiesced: every reserved slot is committed, so the folded counts account
  // for every recorded sample exactly.
  EXPECT_EQ(p.folded_sum(), s.prof_samples_recorded);
}

TEST(Prof, KltSwitchPreemptionAlsoSampled) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  o.prof.enabled = true;
  Runtime rt(o);

  ThreadAttrs ks;
  ks.preempt = Preempt::KltSwitch;
  rt.spawn([] { busy_spin_ns(30'000'000); }, ks).join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.prof_samples_recorded, 0u);
  EXPECT_EQ(s.prof_sample_invocations,
            s.prof_samples_recorded + s.prof_samples_dropped);

  const proftest::FoldedParsed p = export_folded(rt);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.folded_sum(), s.prof_samples_recorded);
}

TEST(Prof, HzModeSamplesWithoutPreemptionTimer) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::None;  // no implicit preemption at all
  o.prof.enabled = true;
  o.prof.sample_hz = 500;
  Runtime rt(o);

  // Preempt::None ULT: only the dedicated sampling signal can observe it.
  rt.spawn([] { busy_spin_ns(50'000'000); }).join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.prof_samples_recorded, 0u);
  EXPECT_EQ(s.prof_sample_invocations,
            s.prof_samples_recorded + s.prof_samples_dropped);

  const proftest::FoldedParsed p = export_folded(rt);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.mode(), "hz");
  EXPECT_EQ(p.header_u64("sample_hz"), 500u);
}

TEST(Prof, OffCpuWaitsAttributedByKind) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.prof.enabled = true;
  Runtime rt(o);

  Mutex m;
  std::vector<Thread> ts;
  ts.push_back(rt.spawn([&m] {
    m.lock();
    this_thread::sleep_for(std::chrono::milliseconds(10));  // kSleep, holding
    m.unlock();
  }));
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([&m] {
      this_thread::sleep_for(std::chrono::milliseconds(2));  // let the holder win
      m.lock();  // kMutex wait while the holder sleeps
      m.unlock();
    }));
  for (auto& t : ts) t.join();  // kJoin waits from this external thread don't count (not a ULT)

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.prof_offcpu_waits, 0u);

  const std::string path = tmp_path("offcpu.json");
  ASSERT_TRUE(rt.write_profile(path));
  const proftest::JsonParsed j = proftest::parse_json(slurp(path));
  std::remove(path.c_str());
  for (const std::string& e : j.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(j.ok());

  const proftest::Json* sites = j.root.get("offcpu")->get("sites");
  ASSERT_NE(sites, nullptr);
  bool saw_sleep = false, saw_mutex = false;
  for (const proftest::Json& site : sites->array) {
    const proftest::Json* kind = site.get("kind");
    ASSERT_NE(kind, nullptr);
    if (kind->str == "sleep") saw_sleep = true;
    if (kind->str == "mutex") saw_mutex = true;
    EXPECT_GT(site.num_or("count", 0), 0.0);
  }
  EXPECT_TRUE(saw_sleep);
  EXPECT_TRUE(saw_mutex);
}

TEST(Prof, LockContentionAndChainDetection) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.prof.enabled = true;
  Runtime rt(o);

  Mutex m;
  std::atomic<bool> held{false};
  std::vector<Thread> ts;
  ts.push_back(rt.spawn([&] {
    m.lock();
    held.store(true, std::memory_order_release);
    // Sleep while holding: waiters that park now are behind an off-CPU
    // holder — the contention-chain signature.
    this_thread::sleep_for(std::chrono::milliseconds(30));
    m.unlock();
  }));
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([&] {
      while (!held.load(std::memory_order_acquire)) this_thread::yield();
      m.lock();
      m.unlock();
    }));
  for (auto& t : ts) t.join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GE(s.prof_lock_acquires, 5u);
  EXPECT_GE(s.prof_lock_contended, 1u);
  EXPECT_GE(s.prof_contention_chains, 1u);
  EXPECT_LE(s.prof_lock_contended, s.prof_lock_acquires);
  EXPECT_LE(s.prof_contention_chains, s.prof_lock_contended);

  const std::string path = tmp_path("locks.json");
  ASSERT_TRUE(rt.write_profile(path));
  const proftest::JsonParsed j = proftest::parse_json(slurp(path));
  std::remove(path.c_str());
  ASSERT_TRUE(j.ok());
  const proftest::Json* table = j.root.get("locks")->get("table");
  ASSERT_NE(table, nullptr);
  ASSERT_FALSE(table->array.empty());
  // Our mutex is in the table with contention and a nonzero hold percentile.
  bool found = false;
  for (const proftest::Json& row : table->array)
    if (row.num_or("contended", 0) >= 1 && row.num_or("acquires", 0) >= 5)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Prof, ShutdownExportAndPublisherRefresh) {
  const std::string prof_path = tmp_path("shutdown.folded");
  const std::string prom_path = tmp_path("shutdown.prom");
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  o.prof.enabled = true;
  o.prof.file = prof_path;
  o.metrics_file = prom_path;
  o.metrics_period_ms = 50;
  {
    Runtime rt(o);
    ThreadAttrs sy;
    sy.preempt = Preempt::SignalYield;
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([] { busy_spin_ns(10'000'000); }, sy));
    for (auto& t : ts) t.join();
    usleep(120'000);  // at least one periodic publish refreshes the profile
    const proftest::FoldedParsed mid = proftest::parse_folded(slurp(prof_path));
    for (const std::string& e : mid.errors) ADD_FAILURE() << "mid-run: " << e;
    EXPECT_TRUE(mid.ok());
  }
  // Final export at shutdown: quiesced totals, cross-checkable against the
  // final metrics publish (exactly what tools/prof_check.cpp gates in CI).
  const proftest::FoldedParsed fin = proftest::parse_folded(slurp(prof_path));
  for (const std::string& e : fin.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(fin.ok());
  EXPECT_GT(fin.header_u64("invocations"), 0u);
  EXPECT_EQ(fin.folded_sum(), fin.header_u64("recorded"));

  const promtest::Parsed prom = promtest::parse(slurp(prom_path));
  ASSERT_TRUE(prom.ok());
  EXPECT_EQ(prom.sum("lpt_prof_enabled"), 1.0);
  EXPECT_EQ(prom.sum("lpt_prof_sample_invocations_total"),
            static_cast<double>(fin.header_u64("invocations")));
  EXPECT_EQ(prom.sum("lpt_prof_samples_recorded_total"),
            static_cast<double>(fin.header_u64("recorded")));
  EXPECT_EQ(prom.sum("lpt_prof_offcpu_waits_total"),
            static_cast<double>(fin.header_u64("offcpu_waits")));
  EXPECT_EQ(prom.sum("lpt_prof_lock_acquires_total"),
            static_cast<double>(fin.header_u64("lock_acquires")));
  std::remove(prof_path.c_str());
  std::remove(prom_path.c_str());
}

TEST(Prof, FreshRuntimeResetsCollector) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  o.prof.enabled = true;
  {
    Runtime rt(o);
    ThreadAttrs sy;
    sy.preempt = Preempt::SignalYield;
    rt.spawn([] { busy_spin_ns(10'000'000); }, sy).join();
    EXPECT_GT(rt.metrics_snapshot().prof_sample_invocations, 0u);
  }
  // A second profiled runtime starts from zero — no leakage across runs.
  Runtime rt2(o);
  const metrics::Snapshot s = rt2.metrics_snapshot();
  EXPECT_EQ(s.prof_sample_invocations, 0u);
  EXPECT_EQ(s.prof_offcpu_waits, 0u);
  EXPECT_EQ(s.prof_lock_acquires, 0u);
}

#endif  // !LPT_PROF_DISABLED

TEST(Prof, EnvKnobsResolve) {
  auto clear = [] {
    for (const char* k : {"LPT_PROF", "LPT_PROF_HZ", "LPT_PROF_OFFCPU",
                          "LPT_PROF_LOCKS", "LPT_PROF_FILE", "LPT_PROF_DEPTH",
                          "LPT_PROF_RING_CAP"})
      unsetenv(k);
  };
  clear();

  // Plain LPT_PROF=1: everything armed, piggyback mode, default file.
  setenv("LPT_PROF", "1", 1);
  RuntimeOptions o = resolve_env_options(RuntimeOptions{});
  EXPECT_TRUE(o.prof.enabled);
  EXPECT_TRUE(o.prof.offcpu);
  EXPECT_TRUE(o.prof.locks);
  EXPECT_EQ(o.prof.sample_hz, 0);
  EXPECT_EQ(o.prof.file, "lpt_profile.folded");

  // A file request implies profiling even without LPT_PROF.
  clear();
  setenv("LPT_PROF_FILE", "/tmp/p.json", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_TRUE(o.prof.enabled);
  EXPECT_EQ(o.prof.file, "/tmp/p.json");

  // Valid HZ arms the independent sampler; nonsense is rejected, not clamped.
  setenv("LPT_PROF_HZ", "250", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_EQ(o.prof.sample_hz, 250);
  setenv("LPT_PROF_HZ", "99999999", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_EQ(o.prof.sample_hz, 0);
  setenv("LPT_PROF_HZ", "bogus", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_EQ(o.prof.sample_hz, 0);

  // Collector opt-outs and the depth clamp.
  setenv("LPT_PROF", "1", 1);
  setenv("LPT_PROF_OFFCPU", "0", 1);
  setenv("LPT_PROF_LOCKS", "0", 1);
  setenv("LPT_PROF_DEPTH", "1000", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_TRUE(o.prof.enabled);
  EXPECT_FALSE(o.prof.offcpu);
  EXPECT_FALSE(o.prof.locks);
  EXPECT_EQ(o.prof.max_stack_depth, prof::kMaxFrames);

  // LPT_PROF=0 force-disables.
  clear();
  setenv("LPT_PROF", "0", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_FALSE(o.prof.enabled);
  clear();
}

}  // namespace
}  // namespace lpt
