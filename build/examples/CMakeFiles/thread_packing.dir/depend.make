# Empty dependencies file for thread_packing.
# This may be replaced when dependencies are built.
