// Mini molecular dynamics with in situ analysis (LAMMPS stand-in, §4.3):
// Lennard-Jones particles, velocity-Verlet integration, force computation
// parallelised over a worker-wide team each step, and an in situ speed
// histogram computed by dedicated low-priority analysis threads over a
// snapshot buffer while the simulation keeps running.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/lpt.hpp"

namespace lpt::apps {

struct MdOptions {
  int cells_per_side = 5;   ///< particles start on a cells^3 cubic lattice
  double density = 0.8;     ///< reduced LJ density
  double dt = 0.002;
  int steps = 40;
  int threads = 4;          ///< simulation team width per step

  bool in_situ = false;
  int analysis_interval = 1;  ///< analyse every k steps
  int analysis_threads = 3;
  int histogram_bins = 32;
  /// Analysis threads are low-priority and (per §4.3) signal-yield
  /// preemptive; simulation threads stay nonpreemptive.
  Preempt analysis_preempt = Preempt::None;
};

struct MdResult {
  int n_particles = 0;
  double initial_energy = 0;  ///< total energy (kinetic + potential)
  double final_energy = 0;
  double max_energy_drift = 0;  ///< max |E(t) - E(0)| / |E(0)|
  int analyses_completed = 0;
  /// Sum over bins of the last histogram == n_particles (when in_situ).
  std::vector<std::uint64_t> last_histogram;
};

/// Run the simulation on the given runtime (callable from an external
/// thread). Uses SchedulerKind::Priority semantics when analysis threads are
/// given priority 1 — build the Runtime accordingly for the in situ case.
MdResult md_run(Runtime& rt, const MdOptions& opts);

}  // namespace lpt::apps
