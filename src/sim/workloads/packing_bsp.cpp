#include "sim/workloads/packing_bsp.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace lpt::sim {

namespace {

struct BspState {
  std::vector<Time> phase_share;  ///< per-thread compute per phase
  std::vector<int> arrived;
  std::vector<std::unique_ptr<SimFlag>> flags;
  int n_threads = 0;

  void arrive(int phase, SimUltRuntime& rt) {
    if (++arrived[phase] == n_threads) flags[phase]->set(rt);
  }
};

class BspThread final : public SimThread {
 public:
  BspThread(BspState* st) : st_(st) {}

  SimAction next(SimUltRuntime& rt) override {
    for (;;) {
      if (phase_ >= static_cast<int>(st_->phase_share.size()))
        return SimAction::finish();
      switch (sub_) {
        case 0:
          sub_ = 1;
          return SimAction::compute(st_->phase_share[phase_]);
        case 1:
          sub_ = 2;
          st_->arrive(phase_, rt);
          // OpenMP barrier with KMP_BLOCKTIME=0 / BOLT ULT barrier: block.
          return SimAction::wait(st_->flags[phase_].get(), WaitMode::kBlock);
        default:
          sub_ = 0;
          phase_ += 1;
          continue;
      }
    }
  }

 private:
  BspState* st_;
  int phase_ = 0;
  int sub_ = 0;
};

/// V-cycle phase schedule: down 0..levels-1, up levels-2..0, per cycle.
/// `share_unit` is the per-thread finest-level compute.
std::vector<Time> build_phases(const Fig8Config& cfg, Time share_unit) {
  std::vector<Time> phases;
  auto level_share = [&](int l) {
    Time s = share_unit;
    for (int i = 0; i < l; ++i) s /= 8;
    return std::max<Time>(s, 50'000);  // coarse grids never go below 50 µs
  };
  for (int c = 0; c < cfg.vcycles; ++c) {
    for (int l = 0; l < cfg.levels; ++l) phases.push_back(level_share(l));
    for (int l = cfg.levels - 2; l >= 0; --l) phases.push_back(level_share(l));
  }
  return phases;
}

Fig8Result run_bsp(const CostModel& cm, const Fig8Config& cfg, Fig8Variant v,
                   int n_threads, int n_workers, int n_active) {
  SimUltOptions o;
  o.seed = cfg.seed;
  SimPreempt preempt = SimPreempt::kNone;
  switch (v) {
    case Fig8Variant::kBoltNonpreemptive:
      o.num_workers = n_workers;
      o.n_active = n_active;
      o.sched = SchedPolicy::kPacking;
      break;
    case Fig8Variant::kBoltPreemptive:
      o.num_workers = n_workers;
      o.n_active = n_active;
      o.sched = SchedPolicy::kPacking;
      o.timer = TimerStrategy::kPerWorkerAligned;
      o.interval = cfg.interval;
      preempt = SimPreempt::kKltSwitch;  // §4.2 uses KLT-switching
      break;
    case Fig8Variant::kIomp:
      // taskset to n_active cores: the OS model only sees those cores.
      o.os_mode = true;
      o.num_workers = n_active;
      break;
  }

  CostModel scaled = cm;
  scaled.num_cores = o.num_workers;
  SimUltRuntime rt(scaled, o);

  BspState st;
  st.n_threads = n_threads;
  // Fixed total work per phase: per-thread share scales with thread count.
  const Time share =
      cfg.finest_phase_work * cfg.n_threads / n_threads;
  st.phase_share = build_phases(cfg, share);
  const int n_phases = static_cast<int>(st.phase_share.size());
  st.arrived.assign(n_phases, 0);
  for (int p = 0; p < n_phases; ++p)
    st.flags.push_back(std::make_unique<SimFlag>());

  for (int i = 0; i < n_threads; ++i) {
    auto t = std::make_unique<BspThread>(&st);
    t->preempt = preempt;
    t->home_pool = i % n_workers;
    rt.spawn(std::move(t));
  }

  Fig8Result res;
  res.makespan = rt.run();
  res.deadlocked = rt.deadlocked();
  res.preemptions = rt.total_preemptions();
  return res;
}

}  // namespace

const char* fig8_variant_name(Fig8Variant v) {
  switch (v) {
    case Fig8Variant::kBoltNonpreemptive:
      return "BOLT (nonpreemptive)";
    case Fig8Variant::kBoltPreemptive:
      return "BOLT (preemptive)";
    case Fig8Variant::kIomp:
      return "IOMP";
  }
  return "?";
}

Fig8Result run_fig8(const CostModel& cm, const Fig8Config& cfg, Fig8Variant v) {
  return run_bsp(cm, cfg, v, cfg.n_threads, cfg.n_threads, cfg.n_active);
}

Fig8Result run_fig8_baseline(const CostModel& cm, const Fig8Config& cfg) {
  return run_bsp(cm, cfg, Fig8Variant::kBoltNonpreemptive, cfg.n_active,
                 cfg.n_active, cfg.n_active);
}

double fig8_overhead(const CostModel& cm, const Fig8Config& cfg, Fig8Variant v) {
  const Fig8Result base = run_fig8_baseline(cm, cfg);
  const Fig8Result packed = run_fig8(cm, cfg, v);
  LPT_CHECK(!base.deadlocked && !packed.deadlocked);
  return static_cast<double>(packed.makespan - base.makespan) /
         static_cast<double>(base.makespan);
}

}  // namespace lpt::sim
