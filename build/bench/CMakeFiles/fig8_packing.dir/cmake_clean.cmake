file(REMOVE_RECURSE
  "CMakeFiles/fig8_packing.dir/fig8_packing.cpp.o"
  "CMakeFiles/fig8_packing.dir/fig8_packing.cpp.o.d"
  "fig8_packing"
  "fig8_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
