// The preemptive M:N threading runtime — public entry point of the library.
//
//   lpt::RuntimeOptions opts;
//   opts.num_workers = 8;
//   opts.timer = lpt::TimerKind::PerWorkerAligned;
//   opts.interval_us = 1000;
//   lpt::Runtime rt(opts);
//   auto t = rt.spawn([]{ heavy_loop(); }, {.preempt = lpt::Preempt::KltSwitch});
//   t.join();
//
// One Runtime may be active per process at a time (the preemption signal
// handler needs a process-global anchor); sequential create/destroy is fine.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/futex.hpp"
#include "common/metrics.hpp"
#include "common/spinlock.hpp"
#include "context/stack.hpp"
#include "runtime/klt_pool.hpp"
#include "runtime/options.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/worker.hpp"

namespace lpt {

class PreemptionTimer;

class Runtime {
 public:
  explicit Runtime(RuntimeOptions opts = {});
  /// All spawned threads must have been joined (or have finished, if
  /// detached) before destruction.
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Create a ULT. Callable from ULTs and from external kernel threads.
  ///
  /// Resource failure is recoverable (docs/robustness.md): when the stack
  /// cannot be mapped even after the StackPool sheds its cache and retries,
  /// the returned handle is empty (!joinable()) and spawn_errno() carries
  /// the reason (e.g. ENOMEM) for the calling thread.
  Thread spawn(std::function<void()> fn, ThreadAttrs attrs = {});
  /// Fire-and-forget variant; the runtime frees the control block at exit.
  /// Returns false (with spawn_errno() set) on recoverable spawn failure.
  bool spawn_detached(std::function<void()> fn, ThreadAttrs attrs = {});

  /// Thread packing (§4.2): workers with rank >= n park at their next
  /// scheduling point (a preemption point for preemptive threads); their
  /// queued threads are picked up by the remaining active workers.
  void set_active_workers(int n);
  int active_workers() const { return n_active_.load(std::memory_order_acquire); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  Scheduler& scheduler() { return *sched_; }
  const RuntimeOptions& options() const { return opts_; }

  /// The process's active runtime, or nullptr.
  static Runtime* current();

  /// Sum of implicit preemptions across workers (both techniques).
  std::uint64_t total_preemptions() const;
  /// KLTs ever created (workers + pool spares); reaches M+N only in the
  /// paper's worst case where KLT-switching degenerates to 1:1 (§3.1.2).
  std::uint64_t total_klts() const;

  /// Point-in-time counters for observability/tuning.
  ///
  /// Snapshot coherence: every field is an independent relaxed read of a
  /// live counter — the struct is NOT a consistent cut of the runtime.
  /// Monotonic counters (scheduled, preemptions, steals, histogram buckets)
  /// never run backwards between two stats() calls, but sums across workers
  /// may disagree transiently with per-thread views (e.g. total_preemptions()
  /// taken a microsecond later), and `parked` is an instantaneous flag.
  /// Quiesce the runtime (join all ULTs) before asserting exact equalities.
  struct Stats {
    struct PerWorker {
      std::uint64_t scheduled = 0;           ///< threads dispatched
      std::uint64_t preempt_signal_yield = 0;
      std::uint64_t preempt_klt_switch = 0;
      std::uint64_t steals = 0;
      bool parked = false;                   ///< packing-suspended right now
      // Totals of this worker's latency histograms (tracing only; 0 when
      // tracing is off).
      std::uint64_t preempt_delivery_samples = 0;
      std::uint64_t preempt_resched_samples = 0;
      std::uint64_t klt_trip_samples = 0;
      /// KLT-switch ticks deferred because the creator was saturated or the
      /// max_klts cap was hit (the thread keeps running, §3.1.2 retry).
      std::uint64_t klt_degraded_ticks = 0;
      /// This worker's POSIX timer degraded to monitor-thread delivery.
      bool posix_timer_fallback = false;
    };
    std::vector<PerWorker> workers;
    std::uint64_t klts_created = 0;   ///< incl. initial worker hosts
    std::uint64_t klts_on_demand = 0; ///< created by the KLT creator
    int active_workers = 0;

    // -- graceful degradation counters (docs/robustness.md) --
    std::uint64_t klt_degraded_ticks = 0;    ///< sum over workers
    std::uint64_t klt_create_failures = 0;   ///< failed pthread_create attempts
    std::uint64_t posix_timer_fallbacks = 0; ///< workers on fallback delivery
    std::uint64_t spawn_stack_failures = 0;  ///< spawns refused (stack ENOMEM)
    std::uint64_t stacks_cached = 0;         ///< StackPool free list, now
    std::uint64_t stacks_shed = 0;           ///< stacks dropped (cap/shed), ever
    std::uint64_t faults_injected = 0;       ///< LPT_FAULT injections (all sites)

    // -- fault isolation (docs/robustness.md) --
    std::uint64_t ult_faults = 0;            ///< ULTs terminated kFailed, ever
    std::uint64_t stack_overflows = 0;       ///< ... by guard-page overflow
    std::uint64_t escaped_exceptions = 0;    ///< ... by the exception firewall
    std::uint64_t ult_cancels = 0;           ///< ... by cancel/deadline expiry
    std::uint64_t klts_retired = 0;          ///< poisoned KLTs exited, ever
    std::uint64_t stacks_quarantined = 0;    ///< failed-ULT stacks re-guarded
    std::uint64_t stack_near_overflows = 0;  ///< watermark within a page of guard
    std::uint64_t stack_watermark_max = 0;   ///< deepest sampled stack use, bytes

    // -- self-healing remediation (docs/robustness.md) --
    std::uint64_t remediations_retick = 0;       ///< directed re-ticks sent
    std::uint64_t remediations_cancel = 0;       ///< deadline-driven cancels
    std::uint64_t remediations_klt_replace = 0;  ///< forced KLT replacements
    std::uint64_t remediations_deadlock_break = 0;  ///< cycle victims cancelled

    // -- deadlock detection & abandoned locks (docs/robustness.md). After
    //    quiescing with remediation on:
    //    deadlock_cycles == remediations_deadlock_break + self_deadlocks. --
    std::uint64_t deadlock_cycles = 0;     ///< cycles flagged (incl. self)
    std::uint64_t self_deadlocks = 0;      ///< relock-own-mutex, caught at lock()
    std::uint64_t abandoned_locks = 0;     ///< owner ended while holding
    std::uint64_t abandoned_released = 0;  ///< ... force-released (opt-in)

    // -- blocking-syscall resilience (docs/robustness.md). After quiescing:
    //    syscall_comp_activated == comp_reabsorbed + comp_saturated. --
    std::uint64_t syscall_blocks = 0;          ///< annotated regions entered
    std::uint64_t syscall_comp_activated = 0;  ///< sentinel compensations
    std::uint64_t syscall_comp_reabsorbed = 0; ///< old hosts parked back
    std::uint64_t syscall_comp_saturated = 0;  ///< compensations w/o a KLT

    // -- profiler results (docs/observability.md "Profiling"; all zero when
    //    profiling is off) --
    bool prof_enabled = false;
    std::uint64_t prof_sample_invocations = 0;
    std::uint64_t prof_samples_recorded = 0;
    std::uint64_t prof_samples_dropped = 0;
    std::uint64_t prof_offcpu_waits = 0;
    std::uint64_t prof_lock_acquires = 0;
    std::uint64_t prof_lock_contended = 0;
    std::uint64_t prof_contention_chains = 0;

    // -- tracer results (all zero when tracing is off) --
    bool trace_enabled = false;
    std::uint64_t trace_events = 0;   ///< committed across all rings
    std::uint64_t trace_dropped = 0;  ///< lost to ring overflow
    /// Log2 latency histograms merged across workers (ns). See
    /// trace::HistSnapshot::percentile_ns for summary extraction.
    trace::HistSnapshot preempt_delivery_ns;  ///< timer fire → handler entry
    trace::HistSnapshot preempt_resched_ns;   ///< preemption → re-dispatch
    trace::HistSnapshot klt_switch_trip_ns;   ///< KLT suspend → resume
    /// Causal scheduling-delay accounting (docs/observability.md, "Causal
    /// tracing & scheduling delay"), merged across pools; the per-pool view
    /// lives in metrics_snapshot(). sum_ns is exact (atomic accumulation,
    /// not reconstructed from buckets), so it reconciles with per-ULT
    /// UltAccounting totals after quiescing.
    trace::HistSnapshot sched_delay_ns;       ///< ready → dispatch
    trace::HistSnapshot spawn_latency_ns;     ///< spawn → first dispatch
  };
  Stats stats() const;

  // ----- always-on metrics (docs/observability.md) -----

  /// Full metrics snapshot: per-worker counters + queue depths, totals, and
  /// runtime-global gauges. Always available (no tracing required). Same
  /// coherence contract as stats() — and stats() is itself built from this
  /// snapshot, so the two views agree on every shared counter by
  /// construction.
  metrics::Snapshot metrics_snapshot() const;

  /// Write a snapshot to `out` in Prometheus text format or JSON. Returns
  /// false only when `out` is null.
  bool write_metrics(std::FILE* out, metrics::Format format) const;

  /// True when the background metrics publisher is rewriting a file
  /// (options().metrics_file / LPT_METRICS_FILE).
  bool metrics_publishing() const { return publisher_.running(); }

  /// Watchdog flag episodes observed so far, by kind.
  std::uint64_t watchdog_flags(WatchdogReport::Kind kind) const {
    return watchdog_.flagged(kind);
  }

  /// Remediation actions taken so far, by kind (kNone is not counted).
  std::uint64_t remediations(RemediationKind kind) const {
    const int i = static_cast<int>(kind) - 1;
    return i >= 0 && i < 4 ? n_remediations_[i].value() : 0;
  }

  // ----- tracing (docs/observability.md) -----

  /// True when this runtime was constructed with tracing armed (options or
  /// LPT_TRACE environment).
  bool trace_enabled() const { return trace_cfg_.enabled; }
  /// Effective export path after env overrides ("" = no file at shutdown).
  const std::string& trace_file() const { return trace_cfg_.file; }
  /// Export everything recorded so far as Chrome trace_event JSON (loadable
  /// in Perfetto / chrome://tracing). Callable any time; for a coherent
  /// picture, quiesce the workers first. False when disabled or empty.
  bool write_chrome_trace(const std::string& path) const;
  /// Compact text summary (event counts, drops, histogram percentiles).
  void print_trace_summary(std::FILE* out) const;

  // ----- continuous profiling (docs/observability.md, "Profiling") -----

  /// True when this runtime was constructed with profiling armed (options or
  /// LPT_PROF environment).
  bool prof_enabled() const { return opts_.prof.enabled; }
  /// Effective profiler configuration after env overrides.
  const prof::ProfConfig& prof_config() const { return opts_.prof; }
  /// Export everything profiled so far to `path`: folded stacks
  /// (flamegraph-ready), or JSON when the path ends in ".json". Callable any
  /// time; quiesce the workers first for a coherent picture. False when
  /// profiling is disabled or the write fails.
  bool write_profile(const std::string& path) const;

  // ----- internal API (runtime components; not for applications) -----

  Worker& worker(int rank) { return *workers_[rank]; }
  KltPool& klt_pool() { return klt_pool_; }
  KltCreator& klt_creator() { return klt_creator_; }
  StackPool& stack_pool() { return stack_pool_; }
  bool shutting_down() const { return shutdown_.load(std::memory_order_acquire); }

  /// Allocate + register a KltCtl and start its pthread (runs klt_main).
  /// `starts_parked` spares enter the KLT pool before their first wait.
  /// Returns nullptr when pthread_create fails or max_klts is reached; the
  /// caller (KLT creator) owns retry/degradation policy.
  KltCtl* create_klt(bool starts_parked = false);

  /// True when options().max_klts bounds creation and the bound is reached.
  /// Async-signal-safe (the preemption handler reads it on pool misses).
  bool klt_cap_reached() const {
    const int cap = opts_.max_klts;
    return cap > 0 &&
           n_klts_.load(std::memory_order_acquire) >= static_cast<unsigned>(cap);
  }

  /// Put the calling worker's preemption delivery on the monitor-thread
  /// fallback path after its POSIX per-worker timer failed repeatedly.
  /// Starts the fallback timer lazily; callable from scheduler context only.
  void enable_posix_timer_fallback();

  /// Drive the watchdog from a timer/monitor thread (runtime/watchdog.hpp).
  /// No-op when the watchdog is disabled; safe from concurrent drivers. Also
  /// the timed-wait/deadline expiry driver: expirations happen before the
  /// watchdog poll so a deadline-expired cancel is visible the same period.
  void watchdog_tick(std::int64_t now) {
    expire_timers(now);
    watchdog_.tick(now);
  }

  /// Central ready-transition choke point: stamp the ULT's lifecycle
  /// accounting (ready_ns; closing a blocked episode on kUnblock), emit the
  /// causal kUltWake trace event for kSpawn/kUnblock transitions, then
  /// scheduler-enqueue + notify_work. Every site that makes a ULT runnable
  /// (yield/preempt re-enqueue, sync wakeups, join publication, timed-wait
  /// expiry, spawn, syscall reabsorption) must route through here so that
  /// every kUltDispatch has a matching ready stamp (docs/observability.md,
  /// "Causal tracing & scheduling delay"). Never called from signal
  /// handlers: all accounting work is gated on the tracer and may touch the
  /// clock and (for ringless external threads) lazily acquire a trace ring.
  /// `waker` is the waking ULT's trace id for the wake edge; kWakerFromTls
  /// resolves it from the calling context (0 = external/timer thread).
  static constexpr std::uint32_t kWakerFromTls = 0xffffffffu;
  void enqueue_ready(ThreadCtl* t, Worker* hint, EnqueueKind kind,
                     std::uint32_t waker = kWakerFromTls);

  /// Wake idle workers after an enqueue.
  void notify_work();
  /// Idle worker: sleep until notify_work or timeout.
  void idle_wait(std::uint32_t seen_seq);
  std::uint32_t work_seq() const { return work_seq_.load(std::memory_order_acquire); }

  /// Finalize a terminated thread: recycle its stack, wake joiners, free the
  /// control block if detached. Called by the scheduler after the exit switch.
  void finalize_thread(ThreadCtl* t);

  /// Finalize a kFailed thread (fault isolation): sample the stack watermark
  /// into t->fault, quarantine the stack instead of pooling it directly, then
  /// wake joiners like finalize_thread. Called from the kFault post action.
  void finalize_failed_thread(ThreadCtl* t);

  /// Count a poisoned KLT retired by the fault handler. Async-signal-safe
  /// (called from the SIGSEGV handler before the KLT exits).
  void note_klt_retired() { n_klts_retired_.add(1); }

  // ----- self-healing: timed waits, deadlines, remediation -----
  // (docs/robustness.md "Self-healing")

  /// Register the calling ULT `t` for a timed wakeup at absolute `wake_ns`.
  /// `guard` is the spinlock protecting `waiters`, the list t pushed itself
  /// onto (nullptr waiters = sleep: expiry always wins). Caller must hold
  /// `guard` across register + suspend_block and call unregister_timed_wait
  /// after resuming, before the primitive may be destroyed.
  void register_timed_wait(ThreadCtl* t, std::int64_t wake_ns, Spinlock* guard,
                           std::vector<ThreadCtl*>* waiters);
  /// Remove t's entry; spins out a concurrent expiry scan touching it.
  void unregister_timed_wait(ThreadCtl* t);

  /// Expire due timed waits and deadlines: wake timed-out waiters (setting
  /// ThreadCtl::wait_timed_out) and turn expired deadlines into cancel
  /// requests plus a directed preemption tick. Cheap when nothing is due.
  void expire_timers(std::int64_t now);
  /// Fast-path wrapper for idle workers: one relaxed load when no timed wait
  /// or deadline is armed, so timed waits keep ~1 ms granularity even with
  /// TimerKind::None.
  void maybe_expire_timers();
  /// Make the registry due now: the next expiry scan (idle worker, monitor
  /// tick, or watchdog poll) wakes any timed wait whose thread has a pending
  /// cancel request, regardless of its nominal wake time. Called after
  /// setting ThreadCtl::cancel_requested on a possibly-blocked thread.
  void kick_timers() { lower_next_due(0); }

  /// Watchdog remediation (options().remediation): replace worker w's wedged
  /// host KLT with a pool spare / fresh KLT. The old KLT is orphaned via the
  /// host_token protocol (worker.hpp) and exits at the stranded ULT's next
  /// runtime entry. False when no replacement KLT could be found (graceful
  /// degradation) or ownership could not be claimed this period.
  bool force_replace_worker_klt(Worker& w);

  /// Wedge sentinel action (docs/robustness.md "Blocking-syscall
  /// resilience"): worker w's hosted ULT has sat inside an annotated
  /// blocking syscall (epoch `epoch`, odd) past syscall_grace_ns — activate
  /// a compensating KLT so w's runnable ULTs keep dispatching. Claims the
  /// host token from the wedged KLT, re-validates the epoch, and commits by
  /// publishing syscall_compensated_epoch before the new host; the losing
  /// KLT reabsorbs (re-enqueues its ULT, parks) when the syscall returns.
  /// Budgeted: at most options().syscall_max_compensations in flight; when
  /// no KLT is available the attempt counts as saturated degradation.
  /// False when nothing was activated (budget, raced exit, saturation).
  bool compensate_syscall_blocked_worker(Worker& w, std::uint64_t epoch);

  /// Count a reabsorbed compensation (klt_main, after re-enqueueing the ULT
  /// that returned from its wedged syscall).
  void note_syscall_reabsorbed() { n_syscall_comp_[1].add(1); }

  /// Count + trace one remediation action (watchdog.hpp). With `report`,
  /// also route a synthesized WatchdogReport through watchdog_callback (or a
  /// rate-limited stderr line) — used by actions taken outside a watchdog
  /// poll (deadline-driven cancels), whose flag report nobody else emits.
  void note_remediation(RemediationKind kind, int worker_rank,
                        WatchdogReport::Kind cause, bool report = false);

  // ----- deadlock detection & recovery (park.cpp; docs/robustness.md) -----

  /// One detector pass over the parking registry: snapshot the waits-for
  /// graph, DFS for cycles, confirm each over two consecutive passes, and —
  /// when `remediate_budget` is non-null with budget remaining — break each
  /// confirmed cycle by cancelling its youngest member. Called from
  /// Watchdog::poll every options().deadlock_periods polls; serialized by
  /// the watchdog's try-lock.
  void deadlock_poll(Watchdog* wd, int* remediate_budget);
  /// Account a self-deadlock caught synchronously at the lock fast path
  /// (a 1-cycle: counter, trace event, watchdog report). The caller already
  /// marked `self` for cancellation with cancel_fault = kDeadlock.
  void note_self_deadlock(ThreadCtl* self, std::uint8_t kind);
  /// Abandonment scan for a finishing/failed thread: flag (and optionally
  /// force-release) every tracked resource still recording `t` as owner.
  /// O(1) when t released everything it acquired. Called from the finalize
  /// paths before joiners are woken.
  void note_owner_finished(ThreadCtl* t);

 private:
  friend struct Worker;
  static void* klt_entry(void* arg);
  void klt_main(KltCtl* self);
  ThreadCtl* spawn_ctl(std::function<void()> fn, ThreadAttrs attrs, bool detached);
  /// Shared tail of finalize_thread/finalize_failed_thread: publish done,
  /// wake joiners, free detached control blocks.
  void publish_done_and_wake(ThreadCtl* t);
  /// Deadline registry maintenance (self-healing). arm_ is called from
  /// spawn_ctl for threads with an effective deadline; disarm_ from the
  /// finalize paths, before the control block may be deleted.
  void arm_deadline(ThreadCtl* t, std::int64_t deadline_abs_ns);
  void disarm_deadline(ThreadCtl* t);
  /// Fold a new wake/deadline instant into next_due_ (CAS-min).
  void lower_next_due(std::int64_t when);

  RuntimeOptions opts_;
  trace::TraceConfig trace_cfg_;  ///< options.trace resolved against env
  std::int64_t start_ns_ = 0;     ///< construction time (uptime metric)
  std::atomic<std::uint32_t> next_ult_id_{0};
  /// ULTs spawned minus ULTs finished (the lpt_ults_live gauge).
  metrics::Gauge n_live_ults_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<PreemptionTimer> timer_;
  /// Monitor-thread timer started lazily when a worker's POSIX timer
  /// degrades (signals only degraded workers); guarded by fallback_lock_.
  Spinlock fallback_lock_;
  std::unique_ptr<PreemptionTimer> fallback_timer_;

  KltPool klt_pool_;
  KltCreator klt_creator_;
  StackPool stack_pool_;

  mutable Spinlock klts_lock_;
  std::vector<std::unique_ptr<KltCtl>> klts_;  // registry; joined at shutdown
  /// Mirror of klts_.size() readable from the preemption handler (the
  /// registry lock is not signal-safe).
  std::atomic<unsigned> n_klts_{0};

  std::atomic<std::uint64_t> n_spawn_stack_fail_{0};
  std::atomic<std::uint64_t> n_timer_fallbacks_{0};

  // -- fault isolation (docs/robustness.md) --
  metrics::AtomicCounter n_klts_retired_;        ///< written from the handler
  std::atomic<std::uint64_t> n_stack_near_overflow_{0};
  std::atomic<std::uint64_t> stack_watermark_max_{0};  ///< CAS-max on release

  // -- self-healing: timed waits, deadlines, remediation --
  struct TimedWait {
    ThreadCtl* t;
    std::int64_t wake_ns;
    Spinlock* guard;                   ///< protects *waiters
    std::vector<ThreadCtl*>* waiters;  ///< nullptr = sleep (expiry always wins)
    bool busy;                         ///< expiry scan holds it outside the lock
  };
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();
  Spinlock timed_lock_;
  std::vector<TimedWait> timed_waits_;
  /// Threads with an armed deadline. Entries pin liveness: removed in
  /// finalize_* (disarm_deadline) before the control block can be deleted.
  std::vector<ThreadCtl*> deadline_armed_;
  /// Expired deadlines currently being processed outside timed_lock_; they
  /// pin liveness the same way (disarm_deadline spins until the scan drops
  /// its entry, so the control block cannot die under the scan's hands).
  std::vector<ThreadCtl*> deadline_busy_;
  /// Earliest pending wake/deadline; kNoDeadline when neither list has one.
  std::atomic<std::int64_t> next_due_{kNoDeadline};
  metrics::AtomicCounter n_remediations_[4];  ///< indexed RemediationKind - 1
  /// Blocking-syscall compensation outcomes: [0] activated (sentinel
  /// committed), [1] reabsorbed (losing host parked back), [2] saturated
  /// (commitment with no KLT available). activated == reabsorbed + saturated
  /// after quiescing; activated - reabsorbed - saturated = in flight.
  metrics::AtomicCounter n_syscall_comp_[3];
  std::atomic<std::int64_t> last_remediation_stderr_ns_{0};

  // -- deadlock detection & abandoned locks (park.cpp) --
  metrics::AtomicCounter n_deadlock_cycles_;
  metrics::AtomicCounter n_self_deadlocks_;
  metrics::AtomicCounter n_abandoned_locks_;
  metrics::AtomicCounter n_abandoned_released_;

  /// Watchdog + metrics publisher (runtime/watchdog.hpp). Declared after
  /// workers_/sched_ and stopped before them in the destructor.
  Watchdog watchdog_;
  MetricsPublisher publisher_;

  /// LPT_PROF_HZ sampling pacer: a dedicated thread that delivers one
  /// profiler signal per worker at the configured rate, decoupling sampling
  /// density from the preemption interval. Not started in piggyback mode
  /// (sample_hz == 0, the default) — there the preemption ticks themselves
  /// drive the sampler for free. Stopped first in the destructor, alongside
  /// the preemption timer.
  class ProfTicker {
   public:
    ~ProfTicker() { stop(); }
    void start(Runtime& rt, int hz);
    void stop();

   private:
    void thread_loop();

    Runtime* rt_ = nullptr;
    std::int64_t period_ns_ = 0;
    std::atomic<bool> stop_{false};
    FutexGate gate_;
    std::thread thread_;
  };
  ProfTicker prof_ticker_;

  std::atomic<int> n_active_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint32_t> work_seq_{0};
  std::atomic<int> spawn_rr_{0};  // round-robin hint for external spawns
};

/// Reason the calling thread's most recent spawn/spawn_detached returned an
/// empty handle (errno-style, e.g. ENOMEM for stack exhaustion); 0 when it
/// succeeded. Thread-local, so concurrent spawners do not race.
int spawn_errno();

namespace this_thread {

/// Cooperative yield (and a cancellation point); no-op when called outside a
/// ULT.
void yield();
/// True when the calling code runs inside a ULT.
bool in_ult();
/// Worker rank hosting the calling ULT, or -1 outside ULT context.
int worker_rank();
/// Timed sleep and cancellation point. Inside a ULT the worker is released
/// for the duration (timed-wait registry, ~1 ms granularity); outside it
/// falls back to nanosleep.
void sleep_for(std::chrono::nanoseconds d);

}  // namespace this_thread

/// Defers implicit preemption for the guarded scope; if a preemption signal
/// arrived meanwhile, the guard's destructor yields voluntarily. Use around
/// short critical sections whose locks the scheduler also takes (§3.5.3).
class NoPreemptGuard {
 public:
  NoPreemptGuard();
  ~NoPreemptGuard();
  NoPreemptGuard(const NoPreemptGuard&) = delete;
  NoPreemptGuard& operator=(const NoPreemptGuard&) = delete;
};

}  // namespace lpt
