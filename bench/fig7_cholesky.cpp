// Figure 7 reproduction: Cholesky decomposition performance (GFLOPS) vs the
// number of tiles (tile size 1000 x 1000), nested parallelism (outer tasks
// with dependences, inner 8-thread "MKL" teams with busy-wait barriers), on
// the 56-core Skylake cost model.
//
// Paper anchors: BOLT preemptive beats IOMP in almost all cases (up to
// ~27%); larger preemption intervals beat shorter ones (cache misses); the
// reverse-engineered nonpreemptive BOLT is on par with preemptive BOLT;
// IOMP (flat) is clearly worst at small tile counts; naive nonpreemptive
// BOLT (no yield hack) deadlocks.
// Alongside the simulated figure, a real-runtime section factors an actual
// SPD matrix with apps::tiled_cholesky on this host — the workload the
// continuous profiler (docs/observability.md, "Profiling") is demonstrated
// on: run with LPT_PROF=1 (+ LPT_PROF_FILE/LPT_METRICS_FILE) and the
// shutdown profile reconciles with the dispatch metrics, which the check.sh
// prof smoke gates through tests/tools/prof_check.cpp.
#include <cstdio>

#include <vector>

#include "apps/cholesky/cholesky.hpp"
#include "apps/linalg/blas.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "sim/workloads/cholesky_dag.hpp"

using namespace lpt;
using namespace lpt::sim;

int main(int argc, char** argv) {
  std::printf("=== Figure 7: Cholesky decomposition (GFLOPS) ===\n");
  std::printf("Simulated 56-core Skylake, tile 1000x1000, outer=inner=8.\n\n");

  const CostModel cm = CostModel::skylake();
  bench::JsonReport json("fig7_cholesky");
  const int tile_counts[] = {8, 12, 16, 20, 24};

  Table table({"# tiles", "BOLT nonpre. (rev-eng)", "BOLT pre. 10ms",
               "BOLT pre. 1ms", "IOMP", "IOMP (flat)"});

  double sum_pre10 = 0, sum_iomp = 0, sum_rev = 0, sum_pre1 = 0, sum_flat = 0,
         sum_flat_small = 0, sum_pre10_small = 0;
  for (int T : tile_counts) {
    CholeskyConfig cfg;
    cfg.tiles = T;

    auto gf = [&](CholeskyRuntime r, Time interval) {
      CholeskyConfig c = cfg;
      c.interval = interval;
      return run_cholesky(cm, c, r).gflops;
    };
    const double rev = gf(CholeskyRuntime::kBoltNonpreemptiveYield, 0);
    const double pre10 = gf(CholeskyRuntime::kBoltPreemptive, 10'000'000);
    const double pre1 = gf(CholeskyRuntime::kBoltPreemptive, 1'000'000);
    const double iomp = gf(CholeskyRuntime::kIompNested, 0);
    const double flat = gf(CholeskyRuntime::kIompFlat, 0);
    const std::string tkey = "gflops.t" + std::to_string(T);
    json.set(tkey + ".bolt_nonpre_rev", rev);
    json.set(tkey + ".bolt_pre_10ms", pre10);
    json.set(tkey + ".bolt_pre_1ms", pre1);
    json.set(tkey + ".iomp", iomp);
    json.set(tkey + ".iomp_flat", flat);
    sum_rev += rev;
    sum_pre10 += pre10;
    sum_pre1 += pre1;
    sum_iomp += iomp;
    sum_flat += flat;
    if (T == 8) {
      sum_flat_small = flat;
      sum_pre10_small = pre10;
    }
    table.add_row({Table::fmt("%dx%d", T, T), Table::fmt("%7.0f", rev),
                   Table::fmt("%7.0f", pre10), Table::fmt("%7.0f", pre1),
                   Table::fmt("%7.0f", iomp), Table::fmt("%7.0f", flat)});
  }
  table.print();

  // The deadlock demonstration (§4.1): "OpenMP-parallel Intel MKL ...
  // assumes implicit preemption during thread synchronization by having
  // threads busy-loop on a memory flag, which causes a deadlock when running
  // on nonpreemptive M:N threads." The deterministic form: as many
  // concurrent MKL calls as cores — every worker ends up holding a spinning
  // team master while all helper chunks sit queued.
  const bool naive_dl = mkl_saturation_deadlocks(cm, 56, 56, 8, false);
  const bool preempt_dl = mkl_saturation_deadlocks(cm, 56, 56, 8, true);
  std::printf("\nDeadlock demonstration (56 concurrent 8-way MKL-style calls "
              "on 56 workers):\n  nonpreemptive M:N: %s | preemptive "
              "(KLT-switching): %s\n",
              naive_dl ? "DEADLOCK" : "completed",
              preempt_dl ? "DEADLOCK" : "completed");

  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] busy-wait MKL barriers wedge nonpreemptive M:N threads; "
              "preemption resolves it\n",
              (naive_dl && !preempt_dl) ? "OK" : "MISMATCH");
  std::printf("  [%s] BOLT preemptive (10ms) >= IOMP overall (avg %+0.1f%%; "
              "paper: up to +27%%)\n",
              sum_pre10 > sum_iomp ? "OK" : "MISMATCH",
              (sum_pre10 / sum_iomp - 1) * 100);
  std::printf("  [%s] larger interval >= shorter interval (10ms %+0.1f%% vs "
              "1ms)\n",
              sum_pre10 >= sum_pre1 * 0.995 ? "OK" : "MISMATCH",
              (sum_pre10 / sum_pre1 - 1) * 100);
  std::printf("  [%s] reverse-engineered nonpreemptive on par with "
              "preemptive (%+0.1f%%)\n",
              sum_rev > 0.95 * sum_pre10 ? "OK" : "MISMATCH",
              (sum_rev / sum_pre10 - 1) * 100);
  std::printf("  [%s] IOMP (flat) worst at small tile counts "
              "(8x8: %.0f vs %.0f GFLOPS)\n",
              sum_flat_small < sum_pre10_small ? "OK" : "MISMATCH",
              sum_flat_small, sum_pre10_small);
  std::printf("  [%s] peak around ~1500 GFLOPS at 24x24 (got %.0f)\n",
              sum_pre10 / 5 > 500 ? "OK" : "MISMATCH", sum_pre10 / 5);
  json.set("deadlock.nonpreemptive", static_cast<std::uint64_t>(naive_dl));
  json.set("deadlock.preemptive", static_cast<std::uint64_t>(preempt_dl));

  // --- Real runtime: actual tiled Cholesky on this host --------------------
  // Small enough to finish in well under a second, big enough for the
  // preemption timer (and, when armed, the piggyback sampler) to observe the
  // tile tasks. LPT_PROF / LPT_PROF_FILE / LPT_METRICS_FILE resolve from the
  // environment, so `LPT_PROF=1 fig7_cholesky` leaves a validated profile.
  std::printf("\n=== Real runtime: tiled Cholesky (SignalYield tasks) ===\n");
  {
    RuntimeOptions o = resolve_env_options(RuntimeOptions{});
    o.num_workers = 4;
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = 1000;
    Runtime rt(o);

    apps::TiledCholeskyOptions copts;
    copts.tiles = 8;
    copts.tile_n = 64;
    copts.inner_width = 2;  // inner teams add the busy-wait sync the paper
    copts.inner_wait = apps::TeamWait::kSpinYield;  // profiles as kBusyFlag
    copts.preempt = Preempt::SignalYield;
    const int n = copts.tiles * copts.tile_n;
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    apps::make_spd(n, a.data(), n, /*seed=*/7);

    const std::int64_t t0 = now_ns();
    const bool ok = apps::tiled_cholesky(rt, copts, a.data(), n);
    const double secs = static_cast<double>(now_ns() - t0) / 1e9;
    const double gflops =
        static_cast<double>(n) * n * n / 3.0 / 1e9 / (secs > 0 ? secs : 1);
    std::printf("  n=%d (%dx%d tiles of %d): %s in %.3f s (%.2f GFLOPS)\n", n,
                copts.tiles, copts.tiles, copts.tile_n,
                ok ? "factored" : "FAILED", secs, gflops);
    json.set("real.ok", static_cast<std::uint64_t>(ok));
    json.set("real.gflops", gflops);

    const metrics::Snapshot ms = rt.metrics_snapshot();
    json.set("real.dispatches", ms.dispatches);
    if (rt.prof_enabled()) {
      // The reconciliation the profiler guarantees (and prof_check enforces
      // on the exported file): every sampler invocation is recorded or a
      // counted drop, and piggyback invocations ride exactly the preemption
      // handler entries the dispatch metrics already count.
      const bool reconciles =
          ms.prof_sample_invocations ==
              ms.prof_samples_recorded + ms.prof_samples_dropped &&
          (rt.prof_config().sample_hz > 0 ||
           ms.prof_sample_invocations == ms.handler_entries);
      std::printf("  profiler: %llu samples (%llu dropped), %llu off-CPU "
                  "waits, %llu lock acquires — reconciliation %s\n",
                  static_cast<unsigned long long>(ms.prof_samples_recorded),
                  static_cast<unsigned long long>(ms.prof_samples_dropped),
                  static_cast<unsigned long long>(ms.prof_offcpu_waits),
                  static_cast<unsigned long long>(ms.prof_lock_acquires),
                  reconciles ? "OK" : "MISMATCH");
      json.set("real.prof_samples", ms.prof_samples_recorded);
      json.set("real.prof_offcpu_waits", ms.prof_offcpu_waits);
      json.set("real.prof_reconciles", static_cast<std::uint64_t>(reconciles));
    } else {
      std::printf("  profiler off (set LPT_PROF=1 for a folded profile of "
                  "this section)\n");
    }
  }

  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
