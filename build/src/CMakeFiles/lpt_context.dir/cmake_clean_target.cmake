file(REMOVE_RECURSE
  "liblpt_context.a"
)
