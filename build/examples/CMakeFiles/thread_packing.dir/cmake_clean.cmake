file(REMOVE_RECURSE
  "CMakeFiles/thread_packing.dir/thread_packing.cpp.o"
  "CMakeFiles/thread_packing.dir/thread_packing.cpp.o.d"
  "thread_packing"
  "thread_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
