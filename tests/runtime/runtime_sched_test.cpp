// Scheduler behaviour: work stealing, Algorithm 1 (packing), priority
// classes, and the thread-packing runtime API.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(WorkStealing, IdleWorkersStealQueuedThreads) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  // Pile every thread onto worker 0's queue; other workers must steal.
  std::atomic<int> done{0};
  std::set<int> ranks;
  Spinlock ranks_lock;
  std::vector<Thread> ts;
  for (int i = 0; i < 64; ++i) {
    ThreadAttrs attrs;
    attrs.home_pool = 0;
    ts.push_back(rt.spawn(
        [&] {
          busy_spin_ns(1'000'000);
          {
            SpinlockGuard g(ranks_lock);
            ranks.insert(this_thread::worker_rank());
          }
          done.fetch_add(1);
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(done.load(), 64);
  // On a 1-core host all 4 workers still timeshare; stealing should spread
  // execution across more than one worker rank.
  EXPECT_GT(ranks.size(), 1u);
}

TEST(PackingAlgorithm, PrivateBoundMatchesAlgorithmLine6) {
  // N_private = N_active * floor(N_total / N_active)
  EXPECT_EQ(PackingScheduler::private_bound(28, 28), 28);
  EXPECT_EQ(PackingScheduler::private_bound(28, 14), 28);
  EXPECT_EQ(PackingScheduler::private_bound(28, 5), 25);
  EXPECT_EQ(PackingScheduler::private_bound(28, 3), 27);
  EXPECT_EQ(PackingScheduler::private_bound(28, 1), 28);
  EXPECT_EQ(PackingScheduler::private_bound(8, 3), 6);
}

class PackingBoundProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PackingBoundProperty, BoundInvariants) {
  const int n_total = std::get<0>(GetParam());
  const int n_active = std::get<1>(GetParam());
  if (n_active > n_total) GTEST_SKIP();
  const int np = PackingScheduler::private_bound(n_total, n_active);
  // Invariants from Algorithm 1: N_private is a multiple of N_active, is at
  // most N_total, and shared pools number fewer than N_active... the paper's
  // claim is "always less than the number of workers": N_total - np < n_active.
  EXPECT_EQ(np % n_active, 0);
  EXPECT_LE(np, n_total);
  EXPECT_LT(n_total - np, n_active);
  EXPECT_GE(np, n_active);  // every active worker owns >= 1 private pool
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackingBoundProperty,
    ::testing::Combine(::testing::Values(4, 8, 12, 28, 56, 68),
                       ::testing::Values(1, 2, 3, 4, 5, 7, 13, 28)));

TEST(Packing, SetActiveWorkersParksAndResumes) {
  RuntimeOptions o;
  o.num_workers = 4;
  o.scheduler = SchedulerKind::Packing;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);

  rt.set_active_workers(1);
  EXPECT_EQ(rt.active_workers(), 1);

  // All 8 preemptive threads must complete with only worker 0 active.
  std::atomic<int> done{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    attrs.home_pool = i % 4;
    ts.push_back(rt.spawn(
        [&] {
          busy_spin_ns(3'000'000);
          done.fetch_add(1);
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(done.load(), 8);

  rt.set_active_workers(4);
  EXPECT_EQ(rt.active_workers(), 4);
  Thread t = rt.spawn([] {});
  t.join();
}

TEST(Packing, ThreadsOnlyRunOnActiveWorkersWhilePacked) {
  RuntimeOptions o;
  o.num_workers = 4;
  o.scheduler = SchedulerKind::Packing;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  rt.set_active_workers(2);
  // Give parked workers a moment to actually park.
  usleep(20'000);

  std::atomic<int> bad_rank{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    attrs.home_pool = i % 4;
    ts.push_back(rt.spawn(
        [&] {
          for (int k = 0; k < 20; ++k) {
            const int r = this_thread::worker_rank();
            if (r >= 2) bad_rank.fetch_add(1);
            this_thread::yield();
          }
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(bad_rank.load(), 0);
  rt.set_active_workers(4);
}

TEST(Priority, HighClassRunsBeforeLowClass) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.scheduler = SchedulerKind::Priority;
  Runtime rt(o);

  std::vector<int> order;
  // Blocker occupies the single worker (nonpreemptive busy wait) while we
  // queue mixed-priority work behind it.
  std::atomic<bool> go{false};
  Thread blocker = rt.spawn([&] {
    while (!go.load()) { /* hold the worker */ }
  });
  usleep(10'000);  // let the blocker start
  ThreadAttrs low;
  low.priority = 1;
  ThreadAttrs high;
  high.priority = 0;
  Thread l1 = rt.spawn([&] { order.push_back(100); }, low);
  Thread h1 = rt.spawn([&] { order.push_back(1); }, high);
  Thread h2 = rt.spawn([&] { order.push_back(2); }, high);
  usleep(10'000);  // ensure all are enqueued before release
  go.store(true);
  blocker.join();
  l1.join();
  h1.join();
  h2.join();
  // Low-priority thread must come after all high-priority threads even
  // though it was enqueued first.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 100);
}

TEST(Priority, LowClassIsLifo) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.scheduler = SchedulerKind::Priority;
  Runtime rt(o);
  std::vector<int> order;
  std::atomic<bool> go{false};
  // Hold the worker with a high-priority spinner so low threads queue up.
  Thread blocker = rt.spawn([&] {
    while (!go.load()) { /* nonpreemptive busy wait, blocks the worker */ }
  });
  usleep(10'000);  // let the blocker start
  ThreadAttrs low;
  low.priority = 1;
  low.home_pool = 0;
  Thread l1 = rt.spawn([&] { order.push_back(1); }, low);
  Thread l2 = rt.spawn([&] { order.push_back(2); }, low);
  Thread l3 = rt.spawn([&] { order.push_back(3); }, low);
  usleep(10'000);  // ensure all are enqueued before release
  go.store(true);
  blocker.join();
  l1.join();
  l2.join();
  l3.join();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));  // LIFO (§4.3 analysis queue)
}

TEST(Priority, AnalysisRunsOnlyWhenSimulationIdle) {
  // Mirror of the LAMMPS scenario: while high-priority "simulation" threads
  // keep arriving, the low-priority "analysis" thread only runs in the gap.
  RuntimeOptions o;
  o.num_workers = 1;
  o.scheduler = SchedulerKind::Priority;
  o.timer = TimerKind::ProcessChain;  // per-process timer as in §4.3
  o.interval_us = 1000;
  Runtime rt(o);

  std::atomic<int> sim_done{0};
  std::atomic<bool> analysis_ran{false};
  std::atomic<bool> sim_running_when_analysis_started{false};

  ThreadAttrs analysis_attrs;
  analysis_attrs.priority = 1;
  analysis_attrs.preempt = Preempt::SignalYield;  // only analysis preemptive
  Thread analysis = rt.spawn(
      [&] {
        if (sim_done.load() < 3) sim_running_when_analysis_started.store(true);
        analysis_ran.store(true);
      },
      analysis_attrs);

  std::vector<Thread> sims;
  for (int i = 0; i < 3; ++i)
    sims.push_back(rt.spawn([&] {
      busy_spin_ns(2'000'000);
      sim_done.fetch_add(1);
    }));
  for (auto& t : sims) t.join();
  analysis.join();
  EXPECT_TRUE(analysis_ran.load());
  EXPECT_FALSE(sim_running_when_analysis_started.load());
}

TEST(CustomScheduler, FactoryOverridesBuiltin) {
  // A trivial global-FIFO scheduler through the factory hook.
  class GlobalFifo final : public Scheduler {
   public:
    void init(Runtime&) override {}
    ThreadCtl* pick(Worker&) override { return q_.pop_front(); }
    void enqueue(ThreadCtl* t, Worker*, EnqueueKind) override { q_.push_back(t); }
    bool has_work() const override { return !q_.empty(); }

   private:
    ThreadQueue q_;
  };

  RuntimeOptions o;
  o.num_workers = 2;
  o.scheduler_factory = [](Runtime&) -> std::unique_ptr<Scheduler> {
    return std::make_unique<GlobalFifo>();
  };
  Runtime rt(o);
  std::atomic<int> n{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 50; ++i) ts.push_back(rt.spawn([&] { n.fetch_add(1); }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(n.load(), 50);
}

}  // namespace
}  // namespace lpt
