#include "common/futex.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lpt {
namespace {

TEST(FutexEvent, SetBeforeWaitDoesNotBlock) {
  FutexEvent ev;
  ev.set();
  ev.wait();  // must return immediately
  EXPECT_TRUE(ev.is_set());
}

TEST(FutexEvent, WakesBlockedWaiter) {
  FutexEvent ev;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    ev.wait();
    woke.store(true);
  });
  EXPECT_FALSE(woke.load());
  ev.set();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(FutexEvent, WakesAllWaiters) {
  FutexEvent ev;
  std::atomic<int> woke{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([&] {
      ev.wait();
      woke.fetch_add(1);
    });
  ev.set();
  for (auto& t : ts) t.join();
  EXPECT_EQ(woke.load(), 4);
}

TEST(FutexEvent, ResetAllowsReuse) {
  FutexEvent ev;
  ev.set();
  ev.wait();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
  std::thread t([&] { ev.wait(); });
  ev.set();
  t.join();
}

TEST(FutexGate, PostBeforeWaitBanksTicket) {
  FutexGate g;
  g.post();
  g.wait();  // consumes the banked ticket, no block
}

TEST(FutexGate, EachPostReleasesExactlyOneWaiter) {
  FutexGate g;
  std::atomic<int> passed{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 3; ++i)
    ts.emplace_back([&] {
      g.wait();
      passed.fetch_add(1);
    });
  // Release them one at a time.
  for (int i = 1; i <= 3; ++i) {
    g.post();
    while (passed.load() < i) std::this_thread::yield();
    EXPECT_EQ(passed.load(), i);
  }
  for (auto& t : ts) t.join();
}

TEST(FutexGate, WaitForTimesOutWithoutTicket) {
  FutexGate g;
  EXPECT_FALSE(g.wait_for(1'000'000));  // 1 ms, nobody posts
}

TEST(FutexGate, WaitForConsumesBankedTicket) {
  FutexGate g;
  g.post();
  EXPECT_TRUE(g.wait_for(1'000'000));
  EXPECT_FALSE(g.wait_for(1'000'000));  // ticket gone
}

TEST(FutexGate, WaitForWokenByConcurrentPost) {
  FutexGate g;
  std::thread poster([&] { g.post(); });
  // Generous timeout: the post must land well before 5 s.
  EXPECT_TRUE(g.wait_for(5'000'000'000));
  poster.join();
}

TEST(FutexGate, ManyTicketsManyWaiters) {
  FutexGate g;
  constexpr int kN = 8;
  std::atomic<int> passed{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < kN; ++i)
    ts.emplace_back([&] {
      g.wait();
      passed.fetch_add(1);
    });
  for (int i = 0; i < kN; ++i) g.post();
  for (auto& t : ts) t.join();
  EXPECT_EQ(passed.load(), kN);
}

}  // namespace
}  // namespace lpt
