// The Pthreads-shaped veneer (§3.5.2): code written in pthread idiom runs on
// preemptive M:N threads unchanged.
#include "runtime/compat.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <vector>

#include "common/cpu.hpp"
#include "common/time.hpp"

namespace lpt::compat {
namespace {

void* return_arg_plus_one(void* arg) {
  auto v = reinterpret_cast<std::intptr_t>(arg);
  return reinterpret_cast<void*>(v + 1);
}

TEST(Compat, CreateJoinReturnsValue) {
  Runtime rt{RuntimeOptions{}};
  thread_t t{};
  ASSERT_EQ(thread_create(&t, nullptr, &return_arg_plus_one,
                          reinterpret_cast<void*>(41)),
            0);
  void* ret = nullptr;
  ASSERT_EQ(thread_join(t, &ret), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(ret), 42);
}

TEST(Compat, CreateWithoutRuntimeFails) {
  thread_t t{};
  EXPECT_EQ(thread_create(&t, nullptr, &return_arg_plus_one, nullptr), EAGAIN);
}

TEST(Compat, JoinInvalidHandleFails) {
  Runtime rt{RuntimeOptions{}};
  thread_t t{};
  EXPECT_EQ(thread_join(t, nullptr), EINVAL);
}

std::atomic<int> g_detached_ran{0};
void* detached_body(void*) {
  g_detached_ran.fetch_add(1);
  return nullptr;
}

TEST(Compat, DetachedThreadRunsAndHandleIsDead) {
  Runtime rt{RuntimeOptions{}};
  g_detached_ran.store(0);
  thread_attr_t attr;
  attr.detached = true;
  thread_t t{};
  ASSERT_EQ(thread_create(&t, &attr, &detached_body, nullptr), 0);
  EXPECT_EQ(t.ctl, nullptr);
  EXPECT_EQ(thread_join(t, nullptr), EINVAL);
  const std::int64_t deadline = now_ns() + 5'000'000'000ll;
  while (g_detached_ran.load() == 0 && now_ns() < deadline) usleep(1000);
  EXPECT_EQ(g_detached_ran.load(), 1);
}

TEST(Compat, DetachAfterCreate) {
  Runtime rt{RuntimeOptions{}};
  g_detached_ran.store(0);
  thread_t t{};
  ASSERT_EQ(thread_create(&t, nullptr, &detached_body, nullptr), 0);
  ASSERT_EQ(thread_detach(t), 0);
  const std::int64_t deadline = now_ns() + 5'000'000'000ll;
  while (g_detached_ran.load() == 0 && now_ns() < deadline) usleep(1000);
  EXPECT_EQ(g_detached_ran.load(), 1);
}

struct CounterArgs {
  mutex_t* m;
  long* counter;
  int iters;
};

void* lock_counter_body(void* p) {
  auto* a = static_cast<CounterArgs*>(p);
  for (int i = 0; i < a->iters; ++i) {
    mutex_lock(a->m);
    ++*a->counter;
    mutex_unlock(a->m);
  }
  return nullptr;
}

TEST(Compat, MutexProtectsAcrossCompatThreads) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  mutex_t m;
  ASSERT_EQ(mutex_init(&m), 0);
  long counter = 0;
  CounterArgs args{&m, &counter, 2000};
  std::vector<thread_t> ts(4);
  for (auto& t : ts)
    ASSERT_EQ(thread_create(&t, nullptr, &lock_counter_body, &args), 0);
  for (auto& t : ts) ASSERT_EQ(thread_join(t, nullptr), 0);
  EXPECT_EQ(counter, 8000);
  EXPECT_EQ(mutex_destroy(&m), 0);
}

struct CondArgs {
  mutex_t* m;
  cond_t* c;
  bool* ready;
  std::atomic<int>* woke;
};

void* cond_waiter_body(void* p) {
  auto* a = static_cast<CondArgs*>(p);
  mutex_lock(a->m);
  while (!*a->ready) cond_wait(a->c, a->m);
  mutex_unlock(a->m);
  a->woke->fetch_add(1);
  return nullptr;
}

void* cond_setter_body(void* p) {
  auto* a = static_cast<CondArgs*>(p);
  mutex_lock(a->m);
  *a->ready = true;
  mutex_unlock(a->m);
  cond_broadcast(a->c);
  return nullptr;
}

TEST(Compat, CondBroadcastWakesAllWaiters) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  mutex_t m;
  cond_t c;
  bool ready = false;
  std::atomic<int> woke{0};
  CondArgs args{&m, &c, &ready, &woke};
  std::vector<thread_t> ts(4);
  for (auto& t : ts)
    ASSERT_EQ(thread_create(&t, nullptr, &cond_waiter_body, &args), 0);
  usleep(10'000);
  // Mutex/cond operations need ULT context: set + broadcast from a thread.
  thread_t setter{};
  ASSERT_EQ(thread_create(&setter, nullptr, &cond_setter_body, &args), 0);
  ASSERT_EQ(thread_join(setter, nullptr), 0);
  for (auto& t : ts) ASSERT_EQ(thread_join(t, nullptr), 0);
  EXPECT_EQ(woke.load(), 4);
}

std::atomic<bool> g_busy_flag{false};
void* busy_waiter_body(void*) {
  while (!g_busy_flag.load(std::memory_order_acquire)) cpu_pause();
  return nullptr;
}
void* busy_setter_body(void*) {
  g_busy_flag.store(true, std::memory_order_release);
  return nullptr;
}

TEST(Compat, DefaultPreemptionMakesPthreadIdiomsSafe) {
  // The §3.4 "when in doubt, use KLT-switching" default in action: pthread-
  // style code busy-waiting on a flag completes on ONE worker because the
  // compat attrs default to preemptive threads.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  g_busy_flag.store(false);
  thread_t waiter{}, setter{};
  ASSERT_EQ(thread_create(&waiter, nullptr, &busy_waiter_body, nullptr), 0);
  ASSERT_EQ(thread_create(&setter, nullptr, &busy_setter_body, nullptr), 0);
  ASSERT_EQ(thread_join(waiter, nullptr), 0);
  ASSERT_EQ(thread_join(setter, nullptr), 0);
  EXPECT_GT(rt.total_preemptions(), 0u);
}

struct RwArgs {
  rwlock_t* rw;
  int* value;
};

void* rw_writer_body(void* p) {
  auto* a = static_cast<RwArgs*>(p);
  for (int i = 0; i < 100; ++i) {
    rwlock_wrlock(a->rw);
    ++*a->value;
    rwlock_wrunlock(a->rw);
  }
  return nullptr;
}

void* rw_reader_body(void* p) {
  auto* a = static_cast<RwArgs*>(p);
  int last = 0;
  for (int i = 0; i < 100; ++i) {
    rwlock_rdlock(a->rw);
    const int v = *a->value;
    rwlock_rdunlock(a->rw);
    if (v < last) return reinterpret_cast<void*>(1);  // monotonicity broken
    last = v;
  }
  return nullptr;
}

TEST(Compat, RwlockReadersAndWriters) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  rwlock_t rw;
  ASSERT_EQ(rwlock_init(&rw), 0);
  int value = 0;
  RwArgs args{&rw, &value};
  std::vector<thread_t> ts(4);
  ASSERT_EQ(thread_create(&ts[0], nullptr, &rw_writer_body, &args), 0);
  ASSERT_EQ(thread_create(&ts[1], nullptr, &rw_writer_body, &args), 0);
  ASSERT_EQ(thread_create(&ts[2], nullptr, &rw_reader_body, &args), 0);
  ASSERT_EQ(thread_create(&ts[3], nullptr, &rw_reader_body, &args), 0);
  for (int i = 0; i < 4; ++i) {
    void* ret = reinterpret_cast<void*>(-1);
    ASSERT_EQ(thread_join(ts[i], &ret), 0);
    EXPECT_EQ(ret, nullptr);
  }
  EXPECT_EQ(value, 200);
}

TEST(Compat, CancelUnknownOrFinishedThreadIsEsrch) {
  Runtime rt{RuntimeOptions{}};
  EXPECT_EQ(thread_cancel(thread_t{}), ESRCH);

  thread_t t;
  ASSERT_EQ(thread_create(
                &t, nullptr, [](void*) -> void* { return nullptr; }, nullptr),
            0);
  ASSERT_EQ(thread_join(t, nullptr), 0);
  // The handle is consumed by join; a stale copy names no live thread.
  EXPECT_EQ(thread_cancel(thread_t{}), ESRCH);
}

void* relock_body(void* p) {
  auto* m = static_cast<mutex_t*>(p);
  if (mutex_lock(m) != 0) return nullptr;
  // PTHREAD_MUTEX_ERRORCHECK semantics: the relock reports EDEADLK instead
  // of parking the thread behind itself forever.
  const int err = mutex_lock(m);
  mutex_unlock(m);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(err));
}

TEST(Compat, RelockingHeldMutexReturnsEdeadlk) {
  Runtime rt{RuntimeOptions{}};
  mutex_t m;
  ASSERT_EQ(mutex_init(&m), 0);
  thread_t t{};
  ASSERT_EQ(thread_create(&t, nullptr, &relock_body, &m), 0);
  void* ret = nullptr;
  ASSERT_EQ(thread_join(t, &ret), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(ret), EDEADLK);
  // The failed relock left the mutex usable; another thread can take it.
  thread_t t2{};
  ASSERT_EQ(thread_create(&t2, nullptr,
                          [](void* p) -> void* {
                            auto* mm = static_cast<mutex_t*>(p);
                            const int err = mutex_lock(mm);
                            if (err == 0) mutex_unlock(mm);
                            return reinterpret_cast<void*>(
                                static_cast<std::intptr_t>(err));
                          },
                          &m),
            0);
  ASSERT_EQ(thread_join(t2, &ret), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(ret), 0);
  EXPECT_EQ(mutex_destroy(&m), 0);
}

TEST(Compat, DeadlockVictimJoinsAsEdeadlk) {
  // A runtime-broken deadlock cycle surfaces through the veneer as EDEADLK
  // from thread_join — pthreads' closest verdict for "killed as a victim".
  RuntimeOptions o;
  o.num_workers = 2;
  o.watchdog_period_ms = 20;
  o.remediation = true;
  o.abandon_release = true;
  Runtime rt(o);

  static mutex_t m1, m2;
  mutex_init(&m1);
  mutex_init(&m2);
  static std::atomic<bool> a_holds{false}, b_holds{false};
  a_holds.store(false);
  b_holds.store(false);
  thread_t a{}, b{};
  ASSERT_EQ(thread_create(&a, nullptr,
                          [](void*) -> void* {
                            mutex_lock(&m1);
                            a_holds.store(true, std::memory_order_release);
                            while (!b_holds.load(std::memory_order_acquire))
                              yield();
                            mutex_lock(&m2);
                            mutex_unlock(&m2);
                            mutex_unlock(&m1);
                            return nullptr;
                          },
                          nullptr),
            0);
  ASSERT_EQ(thread_create(&b, nullptr,
                          [](void*) -> void* {
                            mutex_lock(&m2);
                            b_holds.store(true, std::memory_order_release);
                            while (!a_holds.load(std::memory_order_acquire))
                              yield();
                            mutex_lock(&m1);
                            mutex_unlock(&m1);
                            mutex_unlock(&m2);
                            return nullptr;
                          },
                          nullptr),
            0);
  const int ea = thread_join(a, nullptr);
  const int eb = thread_join(b, nullptr);
  // Exactly one is the break victim (EDEADLK); the other completes.
  EXPECT_TRUE((ea == EDEADLK && eb == 0) || (ea == 0 && eb == EDEADLK))
      << "ea=" << ea << " eb=" << eb;
}

TEST(Compat, CancelledThreadJoinsAsEintr) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  Runtime rt(o);

  static std::atomic<bool> entered{false};
  entered.store(false);
  thread_t t;
  // Default compat attrs use KLT-switching preemption, so the directed
  // cancel tick can unwind even this pointless spin.
  ASSERT_EQ(thread_create(
                &t, nullptr,
                [](void*) -> void* {
                  entered.store(true, std::memory_order_release);
                  for (;;) busy_spin_ns(100'000);
                },
                nullptr),
            0);
  while (!entered.load(std::memory_order_acquire)) cpu_pause();
  EXPECT_EQ(thread_cancel(t), 0);
  void* retval = reinterpret_cast<void*>(0x1234);
  EXPECT_EQ(thread_join(t, &retval), EINTR);
  // A cancelled start routine never returned: retval is left untouched.
  EXPECT_EQ(retval, reinterpret_cast<void*>(0x1234));
}

}  // namespace
}  // namespace lpt::compat
