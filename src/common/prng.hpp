// xoshiro256** PRNG (Blackman & Vigna). Deterministic, fast, and independent
// of libstdc++'s <random> state size — used for work-stealing victim
// selection and for deterministic simulator runs.
#pragma once

#include <cstdint>

namespace lpt {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) {
    // splitmix64 seeding
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) (bound > 0). Lemire's multiply-shift.
  std::uint64_t next_below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Exponentially distributed double with the given mean.
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    // -mean * ln(1-u); use log1p for accuracy near 0.
    return -mean * __builtin_log1p(-u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lpt
