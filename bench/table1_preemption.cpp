// Table 1 reproduction: overhead of a single preemption for 1:1 threads,
// signal-yield, and KLT-switching, on the Skylake and KNL cost models —
// plus a real measurement of signal-yield and KLT-switching costs with the
// actual lpt runtime on this host.
//
// The real runs execute with the tracer armed, so next to the *external*
// per-preemption cost (wall-clock delta / #preemptions) we also report the
// runtime's own preemption-latency histograms (docs/observability.md):
// delivery (timer fire -> handler entry) and reschedule (preemption ->
// re-dispatch). Run with LPT_TRACE=1 to additionally get the full
// Chrome-trace JSON of the last run.
//
// Paper anchors (median): Skylake 2.8 / 3.5 / 9.9 us; KNL 15 / 18 / 62 us.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "sim/workloads/compute_loop.hpp"

using namespace lpt;

namespace {

volatile std::uint64_t g_sink;  // keeps the busy loops observable

/// Real per-preemption cost + the runtime's own latency histograms.
struct RealPreempt {
  double ext_us = 0;  ///< externally measured us per preemption (median)
  std::uint64_t preemptions = 0;
  trace::HistSnapshot delivery;  ///< timer fire -> handler entry
  trace::HistSnapshot resched;   ///< preemption -> re-dispatch
  trace::HistSnapshot klt_trip;  ///< KLT suspend -> resume (KLT-switching)
  trace::HistSnapshot sched_delay;   ///< ready -> dispatch (causal accounting)
  trace::HistSnapshot spawn_latency; ///< spawn -> first dispatch
  /// Preemption-tick pipeline from the always-on metrics: sent -> landed on
  /// preemptible code -> deferred/degraded. Accumulated over the timed runs.
  std::uint64_t ticks_sent = 0;
  std::uint64_t handler_entries = 0;
  std::uint64_t handler_deferred = 0;
  /// Degradation counters (docs/robustness.md). All zero on a healthy host
  /// with no LPT_FAULT armed; nonzero values flag that the latency numbers
  /// above were taken on a degraded runtime and are not comparable.
  std::uint64_t degraded_ticks = 0;
  std::uint64_t timer_fallbacks = 0;
  std::uint64_t faults_injected = 0;
};

/// Measure the real per-preemption cost on this host: fixed CPU-bound work
/// with and without a preemption timer; the difference divided by the number
/// of preemptions that occurred. Tracing is armed in both runs so the
/// baseline carries the same (tiny) instrumentation cost as the timed run.
RealPreempt measure_real_preempt(Preempt mode, std::int64_t interval_us,
                                 std::uint64_t iters) {
  RealPreempt out;
  auto run_once = [&](TimerKind timer) -> std::pair<double, std::uint64_t> {
    RuntimeOptions o;
    o.num_workers = 1;
    o.timer = timer;
    o.interval_us = interval_us;
    o.trace.enabled = true;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = mode;
    const std::int64_t t0 = now_ns();
    Thread t = rt.spawn([&] { g_sink = busy_work_iters(iters); }, attrs);
    t.join();
    const std::int64_t elapsed = now_ns() - t0;
    if (timer != TimerKind::None) {
      const Runtime::Stats st = rt.stats();
      out.delivery.merge(st.preempt_delivery_ns);
      out.resched.merge(st.preempt_resched_ns);
      out.klt_trip.merge(st.klt_switch_trip_ns);
      out.sched_delay.merge(st.sched_delay_ns);
      out.spawn_latency.merge(st.spawn_latency_ns);
      out.degraded_ticks += st.klt_degraded_ticks;
      out.timer_fallbacks += st.posix_timer_fallbacks;
      out.faults_injected += st.faults_injected;
      const metrics::Snapshot ms = rt.metrics_snapshot();
      out.ticks_sent += ms.ticks_sent;
      out.handler_entries += ms.handler_entries;
      out.handler_deferred += ms.handler_deferred;
    }
    return {static_cast<double>(elapsed), rt.total_preemptions()};
  };

  // Median of a few trials to shrug off host noise.
  Stats per_preempt;
  for (int rep = 0; rep < 3; ++rep) {
    auto [base_ns, base_p] = run_once(TimerKind::None);
    auto [with_ns, with_p] = run_once(TimerKind::PerWorkerAligned);
    if (with_p == 0) continue;
    out.preemptions += with_p;
    per_preempt.add((with_ns - base_ns) / 1000.0 / static_cast<double>(with_p));
  }
  out.ext_us = per_preempt.empty() ? 0.0 : per_preempt.median();
  return out;
}

void print_real(const char* label, const RealPreempt& r) {
  std::printf("  %-13s: %6.1f us/preemption external | runtime-measured: "
              "delivery p50 %.1f us, resched p50 %.1f us",
              label, r.ext_us, r.delivery.median_ns() / 1000.0,
              r.resched.median_ns() / 1000.0);
  if (r.klt_trip.count() > 0)
    std::printf(", KLT trip p50 %.1f us", r.klt_trip.median_ns() / 1000.0);
  std::printf("  (%llu preemptions)\n",
              static_cast<unsigned long long>(r.preemptions));
  if (r.sched_delay.count() > 0)
    std::printf("  %-13s  sched delay p50/p99/p999: %.1f/%.1f/%.1f us, "
                "spawn latency p50/p99/p999: %.1f/%.1f/%.1f us\n",
                "", r.sched_delay.percentile_ns(50.0) / 1000.0,
                r.sched_delay.percentile_ns(99.0) / 1000.0,
                r.sched_delay.percentile_ns(99.9) / 1000.0,
                r.spawn_latency.percentile_ns(50.0) / 1000.0,
                r.spawn_latency.percentile_ns(99.0) / 1000.0,
                r.spawn_latency.percentile_ns(99.9) / 1000.0);
  if (r.ticks_sent > 0)
    std::printf("  %-13s  tick effectiveness: %llu ticks -> %llu handler "
                "entries (%.0f%%), %llu deferred\n",
                "", static_cast<unsigned long long>(r.ticks_sent),
                static_cast<unsigned long long>(r.handler_entries),
                100.0 * static_cast<double>(r.handler_entries) /
                    static_cast<double>(r.ticks_sent),
                static_cast<unsigned long long>(r.handler_deferred));
  if (r.degraded_ticks > 0 || r.timer_fallbacks > 0 || r.faults_injected > 0)
    std::printf("  %-13s  DEGRADED RUN: %llu deferred ticks, %llu timer "
                "fallbacks, %llu injected faults — latencies not comparable\n",
                "", static_cast<unsigned long long>(r.degraded_ticks),
                static_cast<unsigned long long>(r.timer_fallbacks),
                static_cast<unsigned long long>(r.faults_injected));
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("table1_preemption");

  std::printf("=== Table 1: overhead of one preemption (us) ===\n\n");

  Table table({"Machine", "1:1 threads (Pthreads)", "Signal-yield",
               "KLT-switching"});
  const sim::Table1Row sky = sim::table1_costs(sim::CostModel::skylake());
  const sim::Table1Row knl = sim::table1_costs(sim::CostModel::knl());
  table.add_row({"Skylake (paper)", "2.8", "3.5", "9.9"});
  table.add_row({"Skylake (model)", Table::fmt("%.1f", sky.one_to_one_us),
                 Table::fmt("%.1f", sky.signal_yield_us),
                 Table::fmt("%.1f", sky.klt_switching_us)});
  table.add_row({"KNL (paper)", "15", "18", "62"});
  table.add_row({"KNL (model)", Table::fmt("%.0f", knl.one_to_one_us),
                 Table::fmt("%.0f", knl.signal_yield_us),
                 Table::fmt("%.0f", knl.klt_switching_us)});
  table.print();
  json.set("model.skylake.one_to_one_us", sky.one_to_one_us);
  json.set("model.skylake.signal_yield_us", sky.signal_yield_us);
  json.set("model.skylake.klt_switching_us", sky.klt_switching_us);
  json.set("model.knl.one_to_one_us", knl.one_to_one_us);
  json.set("model.knl.signal_yield_us", knl.signal_yield_us);
  json.set("model.knl.klt_switching_us", knl.klt_switching_us);

  const bool order_ok = sky.one_to_one_us < sky.signal_yield_us &&
                        sky.signal_yield_us < sky.klt_switching_us;
  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] 1:1 < signal-yield < KLT-switching on both machines\n",
              order_ok ? "OK" : "MISMATCH");
  std::printf("  [%s] signal-yield ~1.2x and KLT-switching ~3-4x the 1:1 "
              "cost (%.1fx, %.1fx)\n",
              (sky.signal_yield_us / sky.one_to_one_us < 1.6 &&
               sky.klt_switching_us / sky.one_to_one_us > 2.5)
                  ? "OK"
                  : "MISMATCH",
              sky.signal_yield_us / sky.one_to_one_us,
              sky.klt_switching_us / sky.one_to_one_us);

  std::printf("\n--- Real lpt runtime on this host (1 worker, 0.2 ms timer; "
              "absolute values depend on this machine) ---\n");
  // Calibrate busy work to ~400 ms so a 0.2 ms timer yields ~2000
  // preemptions per run (the per-preemption delta must clear host noise).
  const std::int64_t probe_start = now_ns();
  g_sink = busy_work_iters(50'000'000);
  const std::int64_t probe = now_ns() - probe_start;
  const std::uint64_t iters =
      static_cast<std::uint64_t>(50'000'000.0 * 400e6 / static_cast<double>(probe));

  const RealPreempt sy = measure_real_preempt(Preempt::SignalYield, 200, iters);
  const RealPreempt ks = measure_real_preempt(Preempt::KltSwitch, 200, iters);
  print_real("signal-yield", sy);
  print_real("KLT-switching", ks);
  std::printf("  [%s] KLT-switching costs more than signal-yield\n",
              ks.ext_us > sy.ext_us ? "OK" : "NOISY (container timing)");

  // The tracer's delivery median should be the same order of magnitude as
  // the externally measured per-preemption cost (it is one component of it,
  // and on this host the dominant one). 2x band, tolerant of container noise.
  const double sy_delivery_us = sy.delivery.median_ns() / 1000.0;
  const bool band_ok = sy.ext_us > 0 && sy_delivery_us > 0 &&
                       sy_delivery_us < 2.0 * sy.ext_us &&
                       sy.ext_us < 2.0 * sy_delivery_us;
  std::printf("  [%s] runtime-measured signal-yield delivery median (%.1f us) "
              "within 2x of the external cost (%.1f us)\n",
              band_ok ? "OK" : "NOISY (container timing)", sy_delivery_us,
              sy.ext_us);

  json.set("real.signal_yield.ext_us", sy.ext_us);
  json.set("real.signal_yield.preemptions", sy.preemptions);
  json.set("real.signal_yield.ticks_sent", sy.ticks_sent);
  json.set("real.signal_yield.handler_entries", sy.handler_entries);
  json.set("real.signal_yield.handler_deferred", sy.handler_deferred);
  json.set("real.signal_yield.tick_effectiveness",
           sy.ticks_sent > 0 ? static_cast<double>(sy.handler_entries) /
                                   static_cast<double>(sy.ticks_sent)
                             : 0.0);
  json.set_hist("real.signal_yield.delivery", sy.delivery);
  json.set_hist("real.signal_yield.resched", sy.resched);
  json.set_sched_hists("real.signal_yield", sy.sched_delay, sy.spawn_latency);
  json.set("real.signal_yield.degraded_ticks", sy.degraded_ticks);
  json.set("real.signal_yield.faults_injected", sy.faults_injected);
  json.set("real.klt_switching.ext_us", ks.ext_us);
  json.set("real.klt_switching.preemptions", ks.preemptions);
  json.set("real.klt_switching.ticks_sent", ks.ticks_sent);
  json.set("real.klt_switching.handler_entries", ks.handler_entries);
  json.set("real.klt_switching.handler_deferred", ks.handler_deferred);
  json.set("real.klt_switching.tick_effectiveness",
           ks.ticks_sent > 0 ? static_cast<double>(ks.handler_entries) /
                                   static_cast<double>(ks.ticks_sent)
                             : 0.0);
  json.set("real.klt_switching.degraded_ticks", ks.degraded_ticks);
  json.set("real.klt_switching.timer_fallbacks", ks.timer_fallbacks);
  json.set("real.klt_switching.faults_injected", ks.faults_injected);
  json.set_hist("real.klt_switching.delivery", ks.delivery);
  json.set_hist("real.klt_switching.resched", ks.resched);
  json.set_hist("real.klt_switching.klt_trip", ks.klt_trip);
  json.set_sched_hists("real.klt_switching", ks.sched_delay, ks.spawn_latency);

  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
