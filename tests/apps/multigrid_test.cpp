#include "apps/multigrid/multigrid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lpt::apps {
namespace {

std::vector<double> make_rhs(int n) {
  // f = 1 in a centred blob, 0 elsewhere (ghost shell included).
  std::vector<double> f(static_cast<std::size_t>(n + 2) * (n + 2) * (n + 2), 0.0);
  auto idx = [n](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * (n + 2) + j) * (n + 2) + i;
  };
  for (int k = n / 4; k < 3 * n / 4; ++k)
    for (int j = n / 4; j < 3 * n / 4; ++j)
      for (int i = n / 4; i < 3 * n / 4; ++i) f[idx(i, j, k)] = 1.0;
  return f;
}

TEST(Multigrid, VcyclesReduceResidual) {
  Runtime rt{RuntimeOptions{}};
  MultigridOptions o;
  o.n = 16;
  o.levels = 3;
  o.vcycles = 6;
  o.threads = 3;
  auto f = make_rhs(o.n);
  std::vector<double> u;
  MultigridResult res = multigrid_solve(rt, o, f, u);
  EXPECT_GT(res.initial_residual, 0.0);
  EXPECT_LT(res.final_residual, 0.05 * res.initial_residual);
}

TEST(Multigrid, MoreCyclesConvergeFurther) {
  Runtime rt{RuntimeOptions{}};
  auto run = [&](int cycles) {
    MultigridOptions o;
    o.n = 16;
    o.levels = 3;
    o.vcycles = cycles;
    o.threads = 2;
    auto f = make_rhs(o.n);
    std::vector<double> u;
    return multigrid_solve(rt, o, f, u).final_residual;
  };
  const double r2 = run(2);
  const double r8 = run(8);
  EXPECT_LT(r8, r2);
}

TEST(Multigrid, SingleThreadAndTeamAgree) {
  Runtime rt{RuntimeOptions{}};
  auto run = [&](int threads) {
    MultigridOptions o;
    o.n = 8;
    o.levels = 2;
    o.vcycles = 3;
    o.threads = threads;
    auto f = make_rhs(o.n);
    std::vector<double> u;
    multigrid_solve(rt, o, f, u);
    return u;
  };
  const auto u1 = run(1);
  const auto u4 = run(4);
  ASSERT_EQ(u1.size(), u4.size());
  double mx = 0;
  for (std::size_t i = 0; i < u1.size(); ++i)
    mx = std::max(mx, std::fabs(u1[i] - u4[i]));
  // Jacobi sweeps are order-independent: results must match to roundoff.
  EXPECT_LT(mx, 1e-12);
}

TEST(Multigrid, RunsUnderThreadPackingWithPreemption) {
  // The §4.2 configuration: packing scheduler, fewer active workers than
  // solver threads, KLT-switching preemption. Must converge identically.
  RuntimeOptions ro;
  ro.num_workers = 4;
  ro.scheduler = SchedulerKind::Packing;
  ro.timer = TimerKind::PerWorkerAligned;
  ro.interval_us = 1000;
  Runtime rt(ro);
  rt.set_active_workers(2);

  MultigridOptions o;
  o.n = 16;
  o.levels = 2;
  o.vcycles = 4;
  o.threads = 4;  // oversubscribes the 2 active workers
  o.preempt = Preempt::KltSwitch;
  auto f = make_rhs(o.n);
  std::vector<double> u;
  MultigridResult res = multigrid_solve(rt, o, f, u);
  EXPECT_LT(res.final_residual, 0.2 * res.initial_residual);
  rt.set_active_workers(4);
}

TEST(Multigrid, PerCycleConvergenceFactorIsMultigridLike) {
  // A healthy V(2,2) cycle on Poisson contracts the residual by a roughly
  // constant factor per cycle — verify the factor is well below 1 and
  // roughly stable (no stall, no divergence).
  Runtime rt{RuntimeOptions{}};
  auto res_after = [&](int cycles) {
    MultigridOptions o;
    o.n = 16;
    o.levels = 3;
    o.vcycles = cycles;
    o.threads = 2;
    auto f = make_rhs(o.n);
    std::vector<double> u;
    return multigrid_solve(rt, o, f, u).final_residual;
  };
  const double r1 = res_after(1);
  const double r2 = res_after(2);
  const double r3 = res_after(3);
  const double f12 = r2 / r1;
  const double f23 = r3 / r2;
  EXPECT_LT(f12, 0.6);
  EXPECT_LT(f23, 0.6);
  EXPECT_GT(f23, 0.02);  // not an accidental exact solve
}

TEST(Multigrid, ResidualNormOfExactSolutionIsSmall) {
  // u = 0, f = 0: residual must be exactly 0.
  const int n = 8;
  std::vector<double> u(static_cast<std::size_t>(n + 2) * (n + 2) * (n + 2), 0.0);
  std::vector<double> f = u;
  EXPECT_EQ(residual_norm(n, u, f), 0.0);
}

}  // namespace
}  // namespace lpt::apps
