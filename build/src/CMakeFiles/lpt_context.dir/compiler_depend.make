# Empty compiler generated dependencies file for lpt_context.
# This may be replaced when dependencies are built.
