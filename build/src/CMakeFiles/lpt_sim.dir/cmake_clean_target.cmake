file(REMOVE_RECURSE
  "liblpt_sim.a"
)
