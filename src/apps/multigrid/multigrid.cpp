#include "apps/multigrid/multigrid.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace lpt::apps {

namespace {

/// One grid level: (n+2)^3 storage with a zero Dirichlet ghost shell.
struct Level {
  int n = 0;
  double h2 = 0;  // h^2
  std::vector<double> u, f, r;

  explicit Level(int n_) : n(n_) {
    const double h = 1.0 / n;
    h2 = h * h;
    const std::size_t total = static_cast<std::size_t>(n + 2) * (n + 2) * (n + 2);
    u.assign(total, 0.0);
    f.assign(total, 0.0);
    r.assign(total, 0.0);
  }
  std::size_t idx(int i, int j, int k) const {
    return (static_cast<std::size_t>(k) * (n + 2) + j) * (n + 2) + i;
  }
};

struct Solver {
  const MultigridOptions* opts;
  std::vector<std::unique_ptr<Level>> levels;
  Barrier bar;
  std::vector<double> tmp;  // scratch for Jacobi (finest size fits all)

  explicit Solver(const MultigridOptions& o)
      : opts(&o), bar(o.threads) {
    int n = o.n;
    for (int l = 0; l < o.levels; ++l) {
      LPT_CHECK_MSG(n >= 2 && n % 2 == 0, "grid size must halve cleanly");
      levels.push_back(std::make_unique<Level>(n));
      if (l + 1 < o.levels) n /= 2;
    }
    tmp.assign(levels[0]->u.size(), 0.0);
  }

  /// [z0, z1) plane range of thread `tid` on an n-plane grid.
  static std::pair<int, int> range(int n, int tid, int nthreads) {
    const int per = (n + nthreads - 1) / nthreads;
    const int z0 = 1 + tid * per;
    const int z1 = std::min(n + 1, z0 + per);
    return {z0, std::max(z0, z1)};
  }

  /// Weighted Jacobi: u <- u + w * (h^2 f + sum(nbr) - 6u) / 6.
  void smooth(Level& L, int iters, int tid) {
    const auto [z0, z1] = range(L.n, tid, opts->threads);
    constexpr double w = 2.0 / 3.0;
    for (int it = 0; it < iters; ++it) {
      for (int k = z0; k < z1; ++k)
        for (int j = 1; j <= L.n; ++j)
          for (int i = 1; i <= L.n; ++i) {
            const std::size_t c = L.idx(i, j, k);
            const double nbr = L.u[c - 1] + L.u[c + 1] +
                               L.u[c - (L.n + 2)] + L.u[c + (L.n + 2)] +
                               L.u[c - static_cast<std::size_t>(L.n + 2) * (L.n + 2)] +
                               L.u[c + static_cast<std::size_t>(L.n + 2) * (L.n + 2)];
            tmp[c] = L.u[c] + w * (L.h2 * L.f[c] + nbr - 6.0 * L.u[c]) / 6.0;
          }
      bar.arrive_and_wait();
      for (int k = z0; k < z1; ++k)
        for (int j = 1; j <= L.n; ++j)
          for (int i = 1; i <= L.n; ++i) {
            const std::size_t c = L.idx(i, j, k);
            L.u[c] = tmp[c];
          }
      bar.arrive_and_wait();
    }
  }

  /// r = f + laplace(u) (for -laplace(u) = f).
  void residual(Level& L, int tid) {
    const auto [z0, z1] = range(L.n, tid, opts->threads);
    for (int k = z0; k < z1; ++k)
      for (int j = 1; j <= L.n; ++j)
        for (int i = 1; i <= L.n; ++i) {
          const std::size_t c = L.idx(i, j, k);
          const double nbr = L.u[c - 1] + L.u[c + 1] + L.u[c - (L.n + 2)] +
                             L.u[c + (L.n + 2)] +
                             L.u[c - static_cast<std::size_t>(L.n + 2) * (L.n + 2)] +
                             L.u[c + static_cast<std::size_t>(L.n + 2) * (L.n + 2)];
          L.r[c] = L.f[c] + (nbr - 6.0 * L.u[c]) / L.h2;
        }
    bar.arrive_and_wait();
  }

  /// Cell-centered full weighting: coarse f = average of 8 fine residuals.
  void restrict_to(Level& fine, Level& coarse, int tid) {
    const auto [z0, z1] = range(coarse.n, tid, opts->threads);
    for (int K = z0; K < z1; ++K)
      for (int J = 1; J <= coarse.n; ++J)
        for (int I = 1; I <= coarse.n; ++I) {
          double s = 0;
          for (int dk = 0; dk < 2; ++dk)
            for (int dj = 0; dj < 2; ++dj)
              for (int di = 0; di < 2; ++di)
                s += fine.r[fine.idx(2 * I - 1 + di, 2 * J - 1 + dj,
                                     2 * K - 1 + dk)];
          const std::size_t c = coarse.idx(I, J, K);
          coarse.f[c] = s / 8.0;
          coarse.u[c] = 0.0;
        }
    bar.arrive_and_wait();
  }

  /// Cell-centered trilinear prolongation: fine u += interpolated coarse
  /// correction (weights 3/4 parent, 1/4 nearest neighbour per dimension).
  /// Piecewise-constant transfer would violate the m_r + m_p > 2 transfer-
  /// order condition for Poisson and stall the V-cycle.
  void prolong_add(Level& coarse, Level& fine, int tid) {
    const auto [z0, z1] = range(fine.n, tid, opts->threads);
    auto parent = [](int fi) { return (fi + 1) / 2; };
    auto neighbor = [](int fi) { return (fi % 2 == 1) ? (fi + 1) / 2 - 1
                                                      : (fi + 1) / 2 + 1; };
    for (int fk = z0; fk < z1; ++fk)
      for (int fj = 1; fj <= fine.n; ++fj)
        for (int fi = 1; fi <= fine.n; ++fi) {
          const int I = parent(fi), J = parent(fj), K = parent(fk);
          const int In = neighbor(fi), Jn = neighbor(fj), Kn = neighbor(fk);
          // Ghost shell (index 0 / n+1) holds zeros: homogeneous Dirichlet.
          double v = 0;
          const int is[2] = {I, In}, js[2] = {J, Jn}, ks[2] = {K, Kn};
          const double wx[2] = {0.75, 0.25}, wy[2] = {0.75, 0.25},
                       wz[2] = {0.75, 0.25};
          for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b)
              for (int c = 0; c < 2; ++c)
                v += wx[a] * wy[b] * wz[c] *
                     coarse.u[coarse.idx(is[a], js[b], ks[c])];
          fine.u[fine.idx(fi, fj, fk)] += v;
        }
    bar.arrive_and_wait();
  }

  void vcycle(int level, int tid) {
    Level& L = *levels[level];
    if (level + 1 == static_cast<int>(levels.size())) {
      smooth(L, 40, tid);  // coarsest: smooth hard
      return;
    }
    smooth(L, opts->pre_smooth, tid);
    residual(L, tid);
    restrict_to(L, *levels[level + 1], tid);
    vcycle(level + 1, tid);
    prolong_add(*levels[level + 1], L, tid);
    smooth(L, opts->post_smooth, tid);
  }
};

}  // namespace

double residual_norm(int n, const std::vector<double>& u,
                     const std::vector<double>& f) {
  Level L(n);
  LPT_CHECK(u.size() == L.u.size() && f.size() == L.f.size());
  const double h2 = L.h2;
  double acc = 0;
  for (int k = 1; k <= n; ++k)
    for (int j = 1; j <= n; ++j)
      for (int i = 1; i <= n; ++i) {
        const std::size_t c = L.idx(i, j, k);
        const double nbr = u[c - 1] + u[c + 1] + u[c - (n + 2)] + u[c + (n + 2)] +
                           u[c - static_cast<std::size_t>(n + 2) * (n + 2)] +
                           u[c + static_cast<std::size_t>(n + 2) * (n + 2)];
        const double r = f[c] + (nbr - 6.0 * u[c]) / h2;
        acc += r * r;
      }
  return std::sqrt(acc / (static_cast<double>(n) * n * n));
}

MultigridResult multigrid_solve(Runtime& rt, const MultigridOptions& opts,
                                const std::vector<double>& f,
                                std::vector<double>& u) {
  LPT_CHECK(!this_thread::in_ult());
  Solver solver(opts);
  Level& fine = *solver.levels[0];
  LPT_CHECK_MSG(f.size() == fine.f.size(), "f must be (n+2)^3 with ghost shell");
  fine.f = f;
  if (u.size() == fine.u.size()) fine.u = u;

  MultigridResult res;
  res.initial_residual = residual_norm(opts.n, fine.u, fine.f);

  std::vector<Thread> team;
  ThreadAttrs attrs;
  attrs.preempt = opts.preempt;
  for (int t = 0; t < opts.threads; ++t) {
    attrs.home_pool = t;
    team.push_back(rt.spawn(
        [&solver, &opts, t] {
          for (int c = 0; c < opts.vcycles; ++c) solver.vcycle(0, t);
        },
        attrs));
  }
  for (auto& t : team) t.join();

  res.final_residual = residual_norm(opts.n, fine.u, fine.f);
  res.vcycles_run = opts.vcycles;
  u = fine.u;
  return res;
}

}  // namespace lpt::apps
