#include "runtime/timer.hpp"

#include <atomic>
#include <thread>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/signals.hpp"

namespace lpt {

namespace {

/// Dedicated monitor thread that delivers preemption signals on one of the
/// paper's four schedules (see timer.hpp). Delivery always targets the
/// worker's *current* KLT, which keeps it correct under KLT-switching.
class MonitorTimer final : public PreemptionTimer {
 public:
  /// `degraded_only`: deliver only to workers whose POSIX per-worker timer
  /// has failed (the fallback path, docs/robustness.md).
  explicit MonitorTimer(TimerKind kind, bool degraded_only = false)
      : kind_(kind), degraded_only_(degraded_only) {}

  void start(Runtime& rt) override {
    rt_ = &rt;
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
  }

  void stop() override {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  bool worker_started(int r) const {
    Worker& w = rt_->worker(r);
    if (degraded_only_ &&
        !w.posix_timer_degraded.load(std::memory_order_acquire))
      return false;
    return w.current_klt.load(std::memory_order_acquire) != nullptr;
  }
  bool worker_eligible(int r) const {
    Worker& w = rt_->worker(r);
    return worker_started(r) && !w.parked.load(std::memory_order_relaxed) &&
           w.current_preempt.load(std::memory_order_relaxed) !=
               static_cast<std::uint8_t>(Preempt::None);
  }

  void sleep_until(std::int64_t deadline_ns) {
    // Chunked absolute sleep so stop() is honored within ~1 ms.
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      const std::int64_t now = now_ns();
      if (now >= deadline_ns) return;
      const std::int64_t chunk = std::min<std::int64_t>(deadline_ns - now, 1'000'000);
      timespec ts{chunk / 1'000'000'000, chunk % 1'000'000'000};
      nanosleep(&ts, nullptr);
    }
  }

  void loop() {
    signals::block_runtime_signals();
    worker_tls()->trace_ring =
        trace::Collector::instance().acquire_ring(trace::TrackKind::kTimer, -1);
    worker_tls()->trace_ring_epoch = trace::Collector::instance().config_epoch();
    const int n = rt_->num_workers();
    const std::int64_t interval_ns = rt_->options().interval_us * 1000;
    const std::int64_t t0 = now_ns();
    std::uint64_t tick = 0;

    while (!stop_.load(std::memory_order_acquire)) {
      std::int64_t deadline;
      switch (kind_) {
        case TimerKind::PerWorkerAligned:
          // Worker (tick % n) fires each interval/n: every worker sees the
          // full interval, phases staggered (§3.2.1 "timer alignment").
          deadline = t0 + static_cast<std::int64_t>(tick + 1) * interval_ns / n;
          break;
        default:
          deadline = t0 + static_cast<std::int64_t>(tick + 1) * interval_ns;
          break;
      }
      sleep_until(deadline);
      if (stop_.load(std::memory_order_acquire)) break;

      switch (kind_) {
        case TimerKind::PerWorkerAligned: {
          const int r = static_cast<int>(tick % static_cast<std::uint64_t>(n));
          // Per-worker timers do not distinguish preemptive workers — the
          // shortcoming §3.2.1 calls out; keep that fidelity.
          if (worker_started(r)) {
            LPT_TRACE_EVENT(trace::EventType::kTimerFire, 0,
                            static_cast<std::uint64_t>(r));
            signals::send_preempt(rt_->worker(r), -1);
          }
          break;
        }
        case TimerKind::PerWorkerCreationTime: {
          // The naive baseline: all workers interrupted at the same instant.
          for (int r = 0; r < n; ++r)
            if (worker_started(r)) {
              LPT_TRACE_EVENT(trace::EventType::kTimerFire, 0,
                              static_cast<std::uint64_t>(r));
              signals::send_preempt(rt_->worker(r), -1);
            }
          break;
        }
        case TimerKind::ProcessOneToAll:
        case TimerKind::ProcessChain: {
          // One OS tick per interval; the first eligible worker initiates
          // the fan-out / chain in its handler. No eligible workers → no
          // signals at all (§3.2.2).
          for (int r = 0; r < n; ++r) {
            if (worker_eligible(r)) {
              LPT_TRACE_EVENT(trace::EventType::kTimerFire, 0,
                              static_cast<std::uint64_t>(r));
              signals::send_preempt(rt_->worker(r), r);
              break;
            }
          }
          break;
        }
        default:
          break;
      }
      // The watchdog piggybacks on this thread (no extra wakeups): every
      // monitor tick expires due timed waits / ULT deadlines, accrues
      // time-in-state and, at the watchdog's own period, runs the starvation
      // checks. Multiple drivers (fallback + main timer) are safe —
      // Watchdog::tick is try-locked and the expiry scan takes its own lock.
      rt_->watchdog_tick(now_ns());
      ++tick;
    }
  }

  TimerKind kind_;
  bool degraded_only_;
  Runtime* rt_ = nullptr;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// The paper's literal per-worker mechanism: timer_create(SIGEV_THREAD_ID)
/// per worker. Arming happens inside each worker's scheduler loop
/// (Worker::maybe_rearm_posix_timer) because the target tid changes under
/// KLT-switching; this object only flags the mode on/off.
class PosixPerWorkerTimer final : public PreemptionTimer {
 public:
  void start(Runtime& rt) override { (void)rt; }
  void stop() override {}
};

}  // namespace

std::unique_ptr<PreemptionTimer> PreemptionTimer::make(TimerKind kind) {
  switch (kind) {
    case TimerKind::None:
      return nullptr;
    case TimerKind::PosixPerWorker:
      return std::make_unique<PosixPerWorkerTimer>();
    default:
      return std::make_unique<MonitorTimer>(kind);
  }
}

std::unique_ptr<PreemptionTimer> PreemptionTimer::make_fallback() {
  return std::make_unique<MonitorTimer>(TimerKind::PerWorkerAligned,
                                        /*degraded_only=*/true);
}

}  // namespace lpt
