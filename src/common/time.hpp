// Monotonic clocks and calibrated busy-work, used by tests and benchmarks.
#pragma once

#include <ctime>
#include <cstdint>

namespace lpt {

/// Monotonic time in nanoseconds (CLOCK_MONOTONIC). Async-signal-safe.
inline std::int64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Burn CPU for roughly `ns` nanoseconds without issuing any system call
/// other than clock_gettime. Preemption-friendly busy work.
inline void busy_spin_ns(std::int64_t ns) {
  const std::int64_t deadline = now_ns() + ns;
  while (now_ns() < deadline) {
    for (int i = 0; i < 64; ++i) asm volatile("" ::: "memory");
  }
}

/// Pure ALU work (no clock reads); returns a value so the loop cannot be
/// optimized away. Useful when the test wants deterministic instruction
/// counts rather than wall-clock-calibrated work.
inline std::uint64_t busy_work_iters(std::uint64_t iters) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

}  // namespace lpt
