// Runtime-level tracer tests: recording from the preemption signal handler
// under a fast timer (the signal-safety smoke test), ring-overflow drop
// accounting surfaced through Runtime::Stats, latency-histogram plumbing,
// and Chrome-trace export of a real run.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

volatile std::uint64_t g_sink;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// 100 us timer hammering the handler while it records trace events — the
/// signal-safety smoke test: no deadlock, no crash, consistent accounting.
TEST(TraceRuntime, SignalYieldSmokeUnderFastTimer) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 100;
  o.trace.enabled = true;
  o.trace.ring_capacity = 1u << 16;
  Runtime rt(o);

  ThreadAttrs a;
  a.preempt = Preempt::SignalYield;
  std::vector<Thread> ts;
  for (int i = 0; i < 2; ++i)
    ts.push_back(rt.spawn([] { busy_spin_ns(80'000'000); }, a));
  for (auto& t : ts) t.join();

  const Runtime::Stats st = rt.stats();
  EXPECT_TRUE(st.trace_enabled);
  EXPECT_TRUE(rt.trace_enabled());
  EXPECT_GT(rt.total_preemptions(), 0u);
  EXPECT_GT(st.trace_events, 0u);

  // The handler recorded delivery latencies; the next dispatch recorded
  // reschedule latencies. Merged histograms match per-worker totals.
  EXPECT_GT(st.preempt_delivery_ns.count(), 0u);
  EXPECT_GT(st.preempt_resched_ns.count(), 0u);
  std::uint64_t delivery = 0, resched = 0;
  for (const auto& pw : st.workers) {
    delivery += pw.preempt_delivery_samples;
    resched += pw.preempt_resched_samples;
  }
  EXPECT_EQ(delivery, st.preempt_delivery_ns.count());
  EXPECT_EQ(resched, st.preempt_resched_ns.count());

  // Latency medians are sane: positive, below a second.
  EXPECT_GT(st.preempt_delivery_ns.median_ns(), 0.0);
  EXPECT_LT(st.preempt_delivery_ns.median_ns(), 1e9);
  EXPECT_GT(st.preempt_resched_ns.median_ns(), 0.0);
  EXPECT_LT(st.preempt_resched_ns.median_ns(), 1e9);
}

TEST(TraceRuntime, KltSwitchSmokeRecordsRoundTrips) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 200;
  o.initial_spare_klts = 1;
  o.trace.enabled = true;
  o.trace.ring_capacity = 1u << 16;
  Runtime rt(o);

  ThreadAttrs a;
  a.preempt = Preempt::KltSwitch;
  Thread t = rt.spawn([] { busy_spin_ns(60'000'000); }, a);
  t.join();

  const Runtime::Stats st = rt.stats();
  std::uint64_t klt_preempts = 0;
  for (const auto& pw : st.workers) klt_preempts += pw.preempt_klt_switch;
  EXPECT_GT(klt_preempts, 0u);
  // Every completed KLT-switch preemption suspends a KLT that later resumes
  // (the ULT ran again — it finished), so round trips were measured.
  EXPECT_GT(st.klt_switch_trip_ns.count(), 0u);
  EXPECT_GT(st.klt_switch_trip_ns.median_ns(), 0.0);
  EXPECT_LT(st.klt_switch_trip_ns.median_ns(), 1e10);
}

TEST(TraceRuntime, RingOverflowIsCountedNotWrapped) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.trace.enabled = true;
  o.trace.ring_capacity = 32;  // tiny: a few yielding ULTs overflow it
  Runtime rt(o);

  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([] {
      for (int k = 0; k < 100; ++k) this_thread::yield();
    }));
  for (auto& t : ts) t.join();

  const Runtime::Stats st = rt.stats();
  EXPECT_GT(st.trace_events, 0u);
  EXPECT_GT(st.trace_dropped, 0u);  // drop-and-count, never wrap
}

TEST(TraceRuntime, ChromeExportParsesBack) {
  const std::string path = ::testing::TempDir() + "lpt_runtime_trace.json";
  RuntimeOptions o;
  o.num_workers = 2;
  o.trace.enabled = true;
  Runtime rt(o);
  std::vector<Thread> ts;
  for (int i = 0; i < 3; ++i)
    ts.push_back(rt.spawn([] {
      for (int k = 0; k < 10; ++k) this_thread::yield();
    }));
  for (auto& t : ts) t.join();

  ASSERT_TRUE(rt.write_chrome_trace(path));
  const std::string json = slurp(path);
  std::remove(path.c_str());

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // run spans
  EXPECT_NE(json.find("worker 0"), std::string::npos);      // track names
  std::size_t braces = 0, closes = 0, brackets = 0, rbrackets = 0;
  for (char c : json) {
    braces += (c == '{');
    closes += (c == '}');
    brackets += (c == '[');
    rbrackets += (c == ']');
  }
  EXPECT_EQ(braces, closes);
  EXPECT_EQ(brackets, rbrackets);
}

TEST(TraceRuntime, DisabledByDefaultAndZeroed) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  rt.spawn([] {}).join();
  EXPECT_FALSE(rt.trace_enabled());
  const Runtime::Stats st = rt.stats();
  EXPECT_FALSE(st.trace_enabled);
  EXPECT_EQ(st.trace_events, 0u);
  EXPECT_EQ(st.trace_dropped, 0u);
  EXPECT_EQ(st.preempt_delivery_ns.count(), 0u);
  EXPECT_FALSE(rt.write_chrome_trace(::testing::TempDir() + "nope.json"));
}

TEST(TraceRuntime, EnvironmentEnablesTracing) {
  const std::string path = ::testing::TempDir() + "lpt_env_trace.json";
  setenv("LPT_TRACE", "1", 1);
  setenv("LPT_TRACE_FILE", path.c_str(), 1);
  {
    RuntimeOptions o;
    o.num_workers = 1;
    Runtime rt(o);
    rt.spawn([] { this_thread::yield(); }).join();
    EXPECT_TRUE(rt.trace_enabled());
  }  // ~Runtime writes the configured file
  unsetenv("LPT_TRACE");
  unsetenv("LPT_TRACE_FILE");
  const std::string json = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
