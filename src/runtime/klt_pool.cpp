#include "runtime/klt_pool.hpp"

#include <algorithm>
#include <ctime>

#include "common/assert.hpp"
#include "common/sys.hpp"
#include "runtime/instrument.hpp"
#include "runtime/runtime.hpp"
#include "runtime/signals.hpp"

namespace lpt {

void KltPool::configure(int num_workers, bool use_local_pools) {
  use_local_ = use_local_pools;
  local_.clear();
  for (int i = 0; i < num_workers; ++i)
    local_.push_back(std::make_unique<LocalPool>());
}

KltCtl* KltPool::try_pop(int worker_rank) {
  if (use_local_ && worker_rank >= 0 &&
      worker_rank < static_cast<int>(local_.size())) {
    LocalPool& lp = *local_[worker_rank];
    if (KltCtl* k = lp.stack.pop()) {
      lp.size.fetch_sub(1, std::memory_order_relaxed);
      idle_.sub(1);
      return k;
    }
  }
  if (KltCtl* k = global_.pop()) {
    idle_.sub(1);
    return k;
  }
  return nullptr;
}

void KltPool::push(KltCtl* k) {
  idle_.add(1);
  if (use_local_ && k->home_worker >= 0 &&
      k->home_worker < static_cast<int>(local_.size())) {
    LocalPool& lp = *local_[k->home_worker];
    if (lp.size.load(std::memory_order_relaxed) < kLocalCap) {
      lp.size.fetch_add(1, std::memory_order_relaxed);
      lp.stack.push(k);
      return;
    }
  }
  global_.push(k);
}

std::vector<KltCtl*> KltPool::drain() {
  std::vector<KltCtl*> out;
  while (KltCtl* k = global_.pop()) out.push_back(k);
  for (auto& lp : local_)
    while (KltCtl* k = lp->stack.pop()) {
      lp->size.fetch_sub(1, std::memory_order_relaxed);
      out.push_back(k);
    }
  idle_.sub(static_cast<std::int64_t>(out.size()));
  return out;
}

void KltCreator::start(Runtime& rt) {
  rt_ = &rt;
  max_in_flight_ = rt.num_workers();  // one outstanding creation per worker
  pending_.store(0, std::memory_order_relaxed);
  in_flight_.store(0, std::memory_order_relaxed);
  exhausted_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_release);
  LPT_CHECK(sys::pthread_create(&thread_, nullptr, &KltCreator::thread_main,
                                this) == 0);
  started_ = true;
}

void KltCreator::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  gate_.post();
  pthread_join(thread_, nullptr);
  started_ = false;
  // Drain abandoned accounting: requests posted after the final batch (or
  // dropped by saturation) must not leak into a restarted runtime.
  pending_.store(0, std::memory_order_relaxed);
  in_flight_.store(0, std::memory_order_relaxed);
  exhausted_.store(false, std::memory_order_relaxed);
}

void* KltCreator::thread_main(void* arg) {
  static_cast<KltCreator*>(arg)->loop();
  return nullptr;
}

bool KltCreator::create_one_with_backoff() {
  std::int64_t backoff = kBackoffBaseNs;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // A hit KLT cap is sticky (KLTs are only released at shutdown): backing
    // off cannot help, so report saturation immediately.
    if (rt_->klt_cap_reached()) return false;
    if (rt_->create_klt(/*starts_parked=*/true) != nullptr) return true;
    create_failures_.fetch_add(1, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_acquire)) return false;
    const timespec ts{backoff / 1'000'000'000, backoff % 1'000'000'000};
    nanosleep(&ts, nullptr);
    backoff = std::min<std::int64_t>(backoff * 2, kBackoffCapNs);
  }
  return false;
}

void KltCreator::loop() {
  signals::block_runtime_signals();
  worker_tls()->trace_ring =
      trace::Collector::instance().acquire_ring(trace::TrackKind::kCreator, -1);
  worker_tls()->trace_ring_epoch = trace::Collector::instance().config_epoch();
  for (;;) {
    if (exhausted_.load(std::memory_order_acquire)) {
      if (!gate_.wait_for(kSaturatedRetryNs)) {
        if (stop_.load(std::memory_order_acquire)) return;
        // Self-retry: handlers stop requesting while saturated, so the
        // creator itself must probe until a spare can be restocked and
        // degraded mode can end.
        if (!rt_->klt_cap_reached() &&
            rt_->create_klt(/*starts_parked=*/true) != nullptr) {
          LPT_TRACE_EVENT(trace::EventType::kKltCreated, 0,
                          created_.load(std::memory_order_relaxed));
          created_.fetch_add(1, std::memory_order_relaxed);
          exhausted_.store(false, std::memory_order_release);
        } else if (!rt_->klt_cap_reached()) {
          create_failures_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
    } else {
      gate_.wait();
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Batch: satisfy every outstanding request before sleeping again.
    std::uint32_t n = pending_.exchange(0, std::memory_order_acq_rel);
    for (std::uint32_t i = 0; i < n; ++i) {
      const bool ok =
          !stop_.load(std::memory_order_acquire) && create_one_with_backoff();
      if (ok) {
        LPT_TRACE_EVENT(trace::EventType::kKltCreated, 0,
                        created_.load(std::memory_order_relaxed));
        created_.fetch_add(1, std::memory_order_relaxed);
        exhausted_.store(false, std::memory_order_release);
      } else {
        exhausted_.store(true, std::memory_order_release);
      }
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

}  // namespace lpt
