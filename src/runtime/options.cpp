// Environment overlay for RuntimeOptions (docs/robustness.md). Keep the
// parsing forgiving-but-loud: a malformed knob is reported to stderr and
// ignored rather than aborting startup, matching load_env_faults().
#include "runtime/options.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lpt {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

/// Parse "262144", "256K", "1M" (case-insensitive suffix). Returns false on
/// anything else, including trailing junk and zero.
bool parse_size(const char* v, std::size_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v) return false;
  std::size_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = 1024;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1024 * 1024;
    ++end;
  }
  if (*end != '\0' || x == 0 || x > (1ull << 40) / mult) return false;
  *out = static_cast<std::size_t>(x) * mult;
  return true;
}

}  // namespace

RuntimeOptions resolve_env_options(RuntimeOptions o) {
  if (const char* v = std::getenv("LPT_STACK_SIZE"); v != nullptr && v[0] != '\0') {
    std::size_t bytes = 0;
    if (!parse_size(v, &bytes)) {
      std::fprintf(stderr, "lpt: ignoring malformed LPT_STACK_SIZE='%s'\n", v);
    } else {
      o.stack_size = bytes;
    }
  }
  if (o.stack_size < kMinStackSize) o.stack_size = kMinStackSize;
  const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  o.stack_size = (o.stack_size + ps - 1) / ps * ps;

  o.fault_isolation = env_flag("LPT_FAULT_ISOLATION", o.fault_isolation);
  o.isolate_faults = env_flag("LPT_ISOLATE_FAULTS", o.isolate_faults);
  o.stack_scrub = env_flag("LPT_STACK_SCRUB", o.stack_scrub);
  return o;
}

}  // namespace lpt
