// Tracing demo: run a small mixed workload with the scheduling tracer armed,
// write the Chrome-trace JSON, and print the text summary.
//
//   ./trace_viz [out.json]          (default: trace_viz.json)
//
// Open the JSON in https://ui.perfetto.dev (or chrome://tracing): one track
// per worker showing ULT run spans, instant markers for preemptions and
// steals, plus tracks for the monitor timer, the KLT creator, and every KLT
// that parked under KLT-switching. See docs/observability.md.
#include <cstdio>

#include <atomic>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

using namespace lpt;

namespace {
volatile std::uint64_t g_sink;
}

int main(int argc, char** argv) {
  std::string out = argc > 1 ? argv[1] : "trace_viz.json";

  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  o.trace.enabled = true;
  o.trace.file = out;  // exported automatically at runtime shutdown

  std::printf("Running a mixed workload with tracing on...\n");
  bool traced = false;
  {
    Runtime rt(o);
    traced = rt.trace_enabled();  // env LPT_TRACE=0/off can force it off
    out = rt.trace_file();        // ...and LPT_TRACE_FILE can redirect it

    // A few cooperative threads that yield in a loop.
    std::vector<Thread> coop;
    for (int i = 0; i < 3; ++i)
      coop.push_back(rt.spawn([] {
        for (int k = 0; k < 200; ++k) {
          g_sink = busy_work_iters(2'000);
          this_thread::yield();
        }
      }));

    // Compute-bound preemptive threads, one per technique (§3.1).
    ThreadAttrs sy;
    sy.preempt = Preempt::SignalYield;
    Thread t_sy = rt.spawn([] { g_sink = busy_work_iters(30'000'000); }, sy);

    ThreadAttrs ks;
    ks.preempt = Preempt::KltSwitch;
    Thread t_ks = rt.spawn([] { g_sink = busy_work_iters(30'000'000); }, ks);

    // Blocking threads exercising the sync primitives, so the trace carries
    // ult_wake causal edges (Perfetto draws them as waker→dispatch arrows)
    // and blocked-on-{mutex,condvar,semaphore} critical-path segments.
    Mutex m;
    CondVar cv;
    Semaphore sem(0);
    bool cv_go = false;
    std::vector<Thread> sync_ts;
    sync_ts.push_back(rt.spawn([&] {
      m.lock();
      while (!cv_go) cv.wait(m);
      m.unlock();
    }));
    sync_ts.push_back(rt.spawn([&] { sem.acquire(); }));
    for (int i = 0; i < 2; ++i)
      sync_ts.push_back(rt.spawn([&] {
        for (int k = 0; k < 50; ++k) {
          m.lock();
          g_sink = busy_work_iters(1'000);
          m.unlock();
          this_thread::yield();
        }
      }));
    sync_ts.push_back(rt.spawn([&] {
      g_sink = busy_work_iters(200'000);  // let the waiters park first
      m.lock();
      cv_go = true;
      cv.notify_one();
      m.unlock();
      sem.release();
    }));

    for (auto& t : coop) t.join();
    t_sy.join();
    t_ks.join();
    for (auto& t : sync_ts) t.join();

    const Runtime::Stats st = rt.stats();
    std::printf("\n%llu events recorded (%llu dropped), "
                "%llu preemptions observed.\n",
                static_cast<unsigned long long>(st.trace_events),
                static_cast<unsigned long long>(st.trace_dropped),
                static_cast<unsigned long long>(rt.total_preemptions()));
    rt.print_trace_summary(stdout);

    // The always-on metrics need no tracing: the same run, seen as the
    // counters a production scrape would export (docs/observability.md).
    const metrics::Snapshot ms = rt.metrics_snapshot();
    std::printf("\nAlways-on metrics (no tracer required):\n");
    std::printf("  dispatches %llu, yields %llu, steals %llu, "
                "queue depth now %lld\n",
                static_cast<unsigned long long>(ms.dispatches),
                static_cast<unsigned long long>(ms.yields),
                static_cast<unsigned long long>(ms.steals),
                static_cast<long long>(ms.run_queue_depth));
    std::printf("  preemption pipeline: %llu ticks -> %llu handler entries "
                "(%.0f%% effective) -> %llu switches\n",
                static_cast<unsigned long long>(ms.ticks_sent),
                static_cast<unsigned long long>(ms.handler_entries),
                100.0 * ms.tick_effectiveness(),
                static_cast<unsigned long long>(ms.preemptions));
    std::printf("  watchdog: %llu checks, %llu flags\n",
                static_cast<unsigned long long>(ms.watchdog_checks),
                static_cast<unsigned long long>(ms.watchdog_runnable_starvation +
                                                ms.watchdog_worker_stall +
                                                ms.watchdog_quantum_overrun));
    std::printf("  (export with LPT_METRICS_FILE=<path> — Prometheus text, "
                "or JSON for .json paths)\n");
  }  // ~Runtime writes the Chrome trace

  if (traced && !out.empty())
    std::printf("\nTrace written to %s — load it at https://ui.perfetto.dev\n"
                "(set LPT_TRACE_EVENTS_FILE=<path> for the raw JSONL event "
                "log: the input of tools/trace_critical_path)\n",
                out.c_str());
  else
    std::printf("\nTracing was disabled (LPT_TRACE=0); no file written.\n");
  return 0;
}
