# Empty dependencies file for test_runtime_sched.
# This may be replaced when dependencies are built.
