// Syscall shim + deterministic fault injection (docs/robustness.md).
//
// Every kernel resource the runtime acquires under preemption pressure —
// KLTs (pthread_create), POSIX timers (timer_create/timer_settime), ULT
// stacks (mmap), and signal delivery (pthread_sigqueue) — goes through the
// wrappers below instead of calling libc directly, as do the blocking I/O
// calls behind `lpt::io` (read/write/pipe2/eventfd/poll/accept/connect). In
// production builds the wrappers are a single relaxed atomic increment on top
// of the raw call; with a fault plan armed (LPT_FAULT environment variable or
// configure_faults()) they deterministically inject failures so every
// degraded path in the runtime is testable in CI without exhausting real
// kernel resources.
//
// Signal-safety: the *check* path (maybe_fail) touches only atomics, so the
// wrappers stay as async-signal-safe as the calls they wrap — in particular
// sys::pthread_sigqueue is called from the preemption signal handler.
// Configuration (configure_faults / reset_faults / load_env_faults) is NOT
// signal-safe and must run in normal thread context.
#pragma once

#include <poll.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <csignal>
#include <cstddef>
#include <cstdint>
#include <ctime>
#include <string>

namespace lpt::sys {

/// Every instrumented acquisition site. Keep in sync with site_name().
enum class Site : int {
  kPthreadCreate = 0,
  kTimerCreate,
  kTimerSettime,
  kMmap,
  kPthreadSigqueue,
  kMprotect,
  kRead,
  kWrite,
  kPipe2,
  kEventfd,
  kPoll,
  kAccept,
  kConnect,
  kCount,
};

const char* site_name(Site s);

/// Point-in-time per-site accounting (all monotonic).
struct SiteCounters {
  std::uint64_t calls = 0;     ///< wrapper invocations
  std::uint64_t injected = 0;  ///< failures injected by the fault plan
  std::uint64_t failed = 0;    ///< *real* failures reported by the kernel
};

// --- wrappers (same contracts as the wrapped calls) ------------------------

/// Returns an error number (pthread style) — injected or real.
int pthread_create(pthread_t* thread, const pthread_attr_t* attr,
                   void* (*start_routine)(void*), void* arg);

/// Returns -1 with errno set on failure (injected or real).
int timer_create(clockid_t clockid, struct sigevent* sevp, timer_t* timerid);

/// Returns -1 with errno set on failure (injected or real).
int timer_settime(timer_t timerid, int flags, const struct itimerspec* new_value,
                  struct itimerspec* old_value);

/// Returns MAP_FAILED with errno set on failure (injected or real).
void* mmap(void* addr, std::size_t length, int prot, int flags, int fd,
           off_t offset);

/// Returns an error number (pthread style). Async-signal-safe.
int pthread_sigqueue(pthread_t thread, int sig, const union sigval value);

/// Returns -1 with errno set on failure (injected or real). Used by the
/// stack pool to re-assert guard-page protection on cached-stack reuse
/// (docs/robustness.md, fault isolation).
int mprotect(void* addr, std::size_t len, int prot);

// Blocking-I/O sites used by lpt::io::call() (docs/robustness.md,
// "Blocking-syscall resilience"). All return -1 with errno set on failure
// (injected or real), matching the wrapped calls.

ssize_t read(int fd, void* buf, std::size_t count);
ssize_t write(int fd, const void* buf, std::size_t count);
int pipe2(int pipefd[2], int flags);
int eventfd(unsigned int initval, int flags);
int poll(struct pollfd* fds, nfds_t nfds, int timeout);
int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen);
int connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen);

// --- fault plan ------------------------------------------------------------
//
// Schedule syntax (the LPT_FAULT environment variable uses the same string):
//
//   spec    := clause (';' clause)*
//   clause  := site ':' kv (',' kv)*
//   site    := pthread_create | timer_create | timer_settime | mmap
//            | pthread_sigqueue | mprotect | read | write | pipe2
//            | eventfd | poll | accept | connect
//   kv      := nth=N      fail exactly the Nth eligible call (1-based)
//            | first=N    fail eligible calls 1..N
//            | every=N    fail every Nth eligible call
//            | prob=P     fail with probability P in [0,1] (deterministic
//                         splitmix64 stream; combine with seed=)
//            | seed=S     PRNG seed for prob= (default 1)
//            | after=N    skip the first N calls before counting eligibility
//                         (lets schedules spare runtime startup)
//            | max=N      stop after N injected failures at this site
//            | errno=E    failure code: EAGAIN|ENOMEM|EPERM|EINVAL|ENFILE
//                         |ENOSPC|EINTR|ENOSYS or a number (default: ENOMEM
//                         for mmap/mprotect, EAGAIN elsewhere)
//
// Example: fail every pthread_create after the 8th with EAGAIN, and the 3rd
// mmap with ENOMEM:
//
//   LPT_FAULT='pthread_create:after=8,every=1;mmap:nth=3,errno=ENOMEM'

/// Parse and arm a fault plan (replaces any previous plan; counters are
/// preserved, but nth/first/after/max count calls and injections from the
/// moment the plan is armed — re-arming mid-run behaves like arming fresh).
/// Empty spec == reset_faults(). Returns false on a malformed spec (plan
/// unchanged) and, when non-null, fills *error with a message.
bool configure_faults(const std::string& spec, std::string* error = nullptr);

/// Disarm all fault plans and zero every counter.
void reset_faults();

/// Apply the LPT_FAULT environment variable (idempotent: first call wins).
/// Called by Runtime startup; safe to call with no variable set.
void load_env_faults();

SiteCounters counters(Site s);
/// Injected failures summed over all sites (Runtime::Stats::faults_injected).
std::uint64_t total_injected();

}  // namespace lpt::sys
