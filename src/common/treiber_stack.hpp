// Intrusive lock-free Treiber stack.
//
// Push and pop are wait-free-ish (lock-free) and async-signal-safe, which the
// KLT pool requires: the preemption signal handler pops an idle kernel thread
// from the pool (paper §3.1.2) and may push one back.
//
// ABA note: nodes in this codebase (KltCtl, creation requests) are never
// freed while the pool exists and a node is only re-pushed by its unique
// owner after it was popped, so the classic ABA hazard (reuse while a racing
// pop still holds the old head) is benign here: the CAS can only succeed if
// head and next are both consistent again, which for these single-owner
// nodes implies a correct pop.
#pragma once

#include <atomic>

namespace lpt {

struct TreiberNode {
  TreiberNode* next = nullptr;
};

template <typename T>  // T must derive from TreiberNode
class TreiberStack {
 public:
  void push(T* node) {
    TreiberNode* head = head_.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!head_.compare_exchange_weak(head, node, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  T* pop() {
    TreiberNode* head = head_.load(std::memory_order_acquire);
    while (head != nullptr) {
      if (head_.compare_exchange_weak(head, head->next, std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return static_cast<T*>(head);
    }
    return nullptr;
  }

  bool empty() const { return head_.load(std::memory_order_acquire) == nullptr; }

 private:
  std::atomic<TreiberNode*> head_{nullptr};
};

}  // namespace lpt
