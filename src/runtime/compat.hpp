// A Pthreads-shaped veneer over preemptive M:N threads.
//
// Paper §3.5.2 frames "a complete substitute for existing 1:1 threads
// implementations" as the goal that preemption makes *possible* (and lists
// what a full drop-in would still need: TLS/fs-register virtualization,
// compiler cooperation). This header provides the practical subset: the
// pthread create/join/mutex/cond/rwlock vocabulary with pthread-style error
// returns, running on whatever lpt::Runtime is active. Code ported to it
// keeps its structure; by defaulting every thread to KLT-switching
// preemption it behaves like 1:1 threads even around busy-wait loops and
// KLT-local state (§3.4's "when in doubt" recommendation).
#pragma once

#include <cstdint>

#include "runtime/lpt.hpp"

namespace lpt::compat {

struct thread_attr_t {
  bool detached = false;
  std::size_t stack_size = 0;  ///< 0 = runtime default
  /// Defaults to KLT-switching: correct for arbitrary (KLT-dependent) code.
  Preempt preempt = Preempt::KltSwitch;
  int priority = 0;
};

/// Opaque thread handle (pthread_t analogue). Value-copyable.
struct thread_t {
  void* ctl = nullptr;
};

/// pthread_create analogue. Requires an active lpt::Runtime.
/// Returns 0, or EAGAIN when no runtime is active.
int thread_create(thread_t* out, const thread_attr_t* attr,
                  void* (*start_routine)(void*), void* arg);

/// pthread_join analogue; *retval (if non-null) receives the start routine's
/// return value. Returns 0, EINVAL for a null/detached handle, EFAULT when
/// fault isolation terminated the thread (stack overflow, contained SEGV/BUS,
/// escaped exception), EDEADLK when the runtime's deadlock breaker cancelled
/// it as a cycle victim, or EINTR when the thread was cancelled
/// (thread_cancel / deadline expiry) — pthreads would report
/// PTHREAD_CANCELED via *retval, but this veneer keeps retval for genuine
/// returns only, so the interrupted-style errno carries the verdict. On
/// EFAULT/EINTR/EDEADLK *retval is left untouched, since the start routine
/// never returned one.
int thread_join(thread_t t, void** retval);

/// pthread_cancel analogue. Requests cancellation: the thread ends at its
/// next cancellation point (yield, sync waits, sleep_for, timed waits) or,
/// under a preemptive technique, at the next directed preemption tick.
/// Returns 0, or ESRCH for a null/detached handle or a thread that already
/// finished (pthread_cancel's no-such-thread contract).
int thread_cancel(thread_t t);

/// pthread_detach analogue: the handle becomes unusable, resources are
/// reclaimed when the thread finishes.
int thread_detach(thread_t t);

/// sched_yield analogue (no-op outside ULT context).
int yield();

// --- mutex -----------------------------------------------------------------

struct mutex_t {
  Mutex impl;
};
int mutex_init(mutex_t* m);
int mutex_lock(mutex_t* m);     ///< 0, or EDEADLK if the caller already holds it
                                ///< (PTHREAD_MUTEX_ERRORCHECK semantics)
int mutex_trylock(mutex_t* m);  ///< 0 or EBUSY
int mutex_unlock(mutex_t* m);
int mutex_destroy(mutex_t* m);

// --- condition variable ------------------------------------------------------

struct cond_t {
  CondVar impl;
};
int cond_init(cond_t* c);
int cond_wait(cond_t* c, mutex_t* m);
int cond_signal(cond_t* c);
int cond_broadcast(cond_t* c);
int cond_destroy(cond_t* c);

// --- reader-writer lock ------------------------------------------------------

struct rwlock_t {
  RwLock impl;
};
int rwlock_init(rwlock_t* rw);
int rwlock_rdlock(rwlock_t* rw);
int rwlock_wrlock(rwlock_t* rw);
int rwlock_rdunlock(rwlock_t* rw);
int rwlock_wrunlock(rwlock_t* rw);
int rwlock_destroy(rwlock_t* rw);

}  // namespace lpt::compat
