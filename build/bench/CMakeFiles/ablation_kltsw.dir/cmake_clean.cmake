file(REMOVE_RECURSE
  "CMakeFiles/ablation_kltsw.dir/ablation_kltsw.cpp.o"
  "CMakeFiles/ablation_kltsw.dir/ablation_kltsw.cpp.o.d"
  "ablation_kltsw"
  "ablation_kltsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kltsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
