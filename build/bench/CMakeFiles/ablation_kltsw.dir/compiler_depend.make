# Empty compiler generated dependencies file for ablation_kltsw.
# This may be replaced when dependencies are built.
