file(REMOVE_RECURSE
  "CMakeFiles/lpt_runtime.dir/runtime/compat.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/compat.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/klt_pool.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/klt_pool.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/parallel_for.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/parallel_for.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/runtime.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/runtime.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_packing.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_packing.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_priority.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_priority.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_work_stealing.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/sched_work_stealing.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/signals.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/signals.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/sync.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/sync.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/sync_extra.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/sync_extra.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/timer.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/timer.cpp.o.d"
  "CMakeFiles/lpt_runtime.dir/runtime/worker.cpp.o"
  "CMakeFiles/lpt_runtime.dir/runtime/worker.cpp.o.d"
  "liblpt_runtime.a"
  "liblpt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
