// Self-healing soak driver (scripts/soak.sh): a sustained mixed workload —
// cooperative cancels, directed-tick cancels under both preemption
// techniques, per-spawn deadlines, timed waits, and blocking-pipe readers
// that wedge their worker past the syscall grace (driving the wedge
// sentinel's compensate/reabsorb cycle every batch) — with the remediation
// ladder on, followed by leak checks no unit test can make: after Runtime
// destruction the process is back to its baseline kernel-thread count (no
// orphaned/pooled/compensating KLT survives shutdown), the compensation
// books reconcile exactly, and a second Runtime in the same process starts
// healthy and completes work. Exit 0 on success.
//
//   soak [seconds]   (default 60)
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/sys.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

int fail(const char* msg) {
  std::fprintf(stderr, "soak: FAIL: %s\n", msg);
  return 1;
}

/// Kernel threads in this process right now (/proc/self/task entries).
int task_count() {
  DIR* d = opendir("/proc/self/task");
  if (d == nullptr) return -1;
  int n = 0;
  while (dirent* e = readdir(d))
    if (e->d_name[0] != '.') ++n;
  closedir(d);
  return n;
}

/// One batch of mixed work; returns false on any contract violation.
bool run_batch(Runtime& rt, std::uint64_t round) {
  std::vector<Thread> joiners;

  // Plain compute under both techniques — must finish untouched.
  for (Preempt p : {Preempt::SignalYield, Preempt::KltSwitch}) {
    ThreadAttrs a;
    a.preempt = p;
    joiners.push_back(rt.spawn([] { busy_spin_ns(200'000); }, a));
  }

  // A runaway with a tight deadline: the runtime must cancel it.
  ThreadAttrs dl;
  dl.preempt = round % 2 == 0 ? Preempt::SignalYield : Preempt::KltSwitch;
  dl.deadline_ns = 10'000'000;  // 10 ms
  Thread runaway = rt.spawn([] { for (;;) busy_spin_ns(100'000); }, dl);

  // A spinner cancelled by hand mid-flight.
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  std::atomic<bool> spinning{false};
  Thread victim = rt.spawn(
      [&] {
        spinning.store(true, std::memory_order_release);
        for (;;) busy_spin_ns(100'000);
      },
      sy);
  while (!spinning.load(std::memory_order_acquire)) busy_spin_ns(10'000);
  victim.request_cancel();

  // A blocking-pipe reader: wedges its worker inside io::read until the
  // batch's tail writes the byte. The wedge outlives syscall_grace_ns, so
  // the sentinel compensates (spare KLT keeps the worker dispatching) and
  // the reader's host reabsorbs on return — every batch is one full
  // activate/reabsorb cycle under live mixed load.
  int pipefd[2];
  if (sys::pipe2(pipefd, 0) != 0) return false;
  std::atomic<bool> pipe_ok{false};
  Thread reader = rt.spawn([&] {
    char c = 0;
    if (io::read(pipefd[0], &c, 1) == 1 && c == 'u')
      pipe_ok.store(true, std::memory_order_release);
  });

  // Any early return below would otherwise wedge in ~Thread: the blocking
  // reader's destructor joins it, and the join can only finish once the
  // unwedge byte is written. Destructed before the Thread handles (declared
  // after them), so failure paths release the reader instead of hanging.
  struct Unwedge {
    int fd;
    bool fired = false;
    void fire() {
      if (!fired) fired = ::write(fd, "u", 1) == 1;
    }
    ~Unwedge() { fire(); }
  };

  // A nonblocking reader bounded by a deadline: exercises the EAGAIN
  // backoff loop ending in ETIMEDOUT (nothing is ever written to this end).
  int nbfd[2];
  if (sys::pipe2(nbfd, O_NONBLOCK) != 0) return false;
  std::atomic<bool> timed_ok{false};
  Thread timed_reader = rt.spawn([&] {
    char c = 0;
    // io::last_error(), not errno: the backoff sleeps inside io::read can
    // migrate this ULT to another kernel thread, and errno is per-KLT.
    if (io::read(nbfd[0], &c, 1, /*deadline_ns=*/5'000'000) == -1 &&
        io::last_error() == ETIMEDOUT)
      timed_ok.store(true, std::memory_order_release);
  });

  Unwedge unwedge{pipefd[1]};

  // Deadlock injection: a deliberate two-ULT mutex cycle the watchdog's
  // detector must flag and break. Fresh heap locks every round (they must
  // outlive the cancelled victim); abandon_release (set in main) force-frees
  // the victim's abandoned lock so the survivor always completes the batch.
  auto dm1 = std::make_shared<Mutex>();
  auto dm2 = std::make_shared<Mutex>();
  std::atomic<bool> da_holds{false}, db_holds{false};
  // The handshake spins are bounded: if the partner dies before setting its
  // flag (any unrelated remediation rung could cancel it), the survivor backs
  // out and finishes instead of spinning forever under ~Thread's join.
  const std::int64_t spin_deadline = now_ns() + 20'000'000'000LL;
  Thread da = rt.spawn([&, dm1, dm2] {
    dm1->lock();
    da_holds.store(true, std::memory_order_release);
    while (!db_holds.load(std::memory_order_acquire)) {
      if (now_ns() > spin_deadline) {
        dm1->unlock();
        return;
      }
      this_thread::yield();
    }
    dm2->lock();  // closes the cycle; one of the two dies here
    dm2->unlock();
    dm1->unlock();
  });
  Thread db = rt.spawn([&, dm1, dm2] {
    dm2->lock();
    db_holds.store(true, std::memory_order_release);
    while (!da_holds.load(std::memory_order_acquire)) {
      if (now_ns() > spin_deadline) {
        dm2->unlock();
        return;
      }
      this_thread::yield();
    }
    dm1->lock();
    dm1->unlock();
    dm2->unlock();
  });

  // Every fourth round, a self-deadlock: caught synchronously at lock(),
  // counted in the same identity the tail reconciles.
  const bool inject_self = round % 4 == 0;
  Thread selfdl;
  if (inject_self) {
    auto sm = std::make_shared<Mutex>();
    selfdl = rt.spawn([sm] {
      sm->lock();
      sm->lock();  // never returns: terminated as its own 1-cycle
    });
  }

  // Timed waits: a sleeper, and a pair racing a mutex with try_lock_for.
  joiners.push_back(
      rt.spawn([] { this_thread::sleep_for(std::chrono::milliseconds(2)); }));
  auto mu = std::make_shared<Mutex>();
  for (int i = 0; i < 2; ++i) {
    joiners.push_back(rt.spawn([mu] {
      if (mu->try_lock_for(std::chrono::milliseconds(50))) {
        busy_spin_ns(100'000);
        mu->unlock();
      }
    }));
  }

  for (Thread& t : joiners) {
    if (!t.join_for(std::chrono::seconds(30))) return false;
  }
  if (runaway.join_status().fault.kind != FaultKind::kCancelled) return false;
  if (victim.join_status().fault.kind != FaultKind::kCancelled) return false;

  // The injected cycle must have been broken, with a deterministic victim:
  // the breaker cancels the youngest cycle member, and db was spawned after
  // da. da's completion is the bounded proof — it holds dm1 and can only
  // acquire dm2 once db died and abandon_release freed it, so neither ULT
  // can finish while the cycle stands. (join_for consumes the handle on
  // success, so the survivor's clean exit is implied by join_for returning
  // true at all: a faulted da would still join, but then db's verdict below
  // would read kNone and fail the round.)
  if (!da.join_for(std::chrono::seconds(30))) return false;
  // db is already dead by the time da finished; this returns immediately.
  if (db.join_status().fault.kind != FaultKind::kDeadlock) return false;
  if (inject_self) {
    // Caught synchronously at the recursive lock() — no watchdog cadence
    // involved, so an unbounded join_status is effectively immediate.
    if (selfdl.join_status().fault.kind != FaultKind::kDeadlock) return false;
  }

  // Unwedge the pipe reader (the joins above kept it blocked well past the
  // grace period) and settle both io threads.
  unwedge.fire();
  bool ok = unwedge.fired;
  ok = reader.join_for(std::chrono::seconds(30)) && ok;
  ok = timed_reader.join_for(std::chrono::seconds(30)) && ok;
  ::close(pipefd[0]);
  ::close(pipefd[1]);
  ::close(nbfd[0]);
  ::close(nbfd[1]);
  return ok && pipe_ok.load(std::memory_order_acquire) &&
         timed_ok.load(std::memory_order_acquire);
}

}  // namespace

int main(int argc, char** argv) {
  const long seconds = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 60;
  const int baseline = task_count();

  std::uint64_t rounds = 0;
  {
    RuntimeOptions o;
    o.num_workers = 4;
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = 2'000;
    o.watchdog_period_ms = 20;
    o.remediation = true;
    // Short grace so every batch's pipe reader outlives it and the wedge
    // sentinel gets continuous compensate/reabsorb exercise.
    o.syscall_grace_ns = 10'000'000;
    // Every batch injects a mutex cycle; force-release of the victim's
    // abandoned lock is what lets the surviving ULT finish the batch.
    o.abandon_release = true;
    // Disable the worker-stall rung: under this lock-churn load it false
    // positives and its klt_replace cancels an innocent batch ULT, breaking
    // the exact fault-kind contracts below. The stall ladder has dedicated
    // coverage in the remediation suite; this soak audits the deadlock
    // detector, the wedge sentinel, and shutdown hygiene.
    o.watchdog_stall_ticks = 1'000'000;
    Runtime rt(o);

    const std::int64_t end = now_ns() + seconds * 1'000'000'000LL;
    while (now_ns() < end) {
      if (!run_batch(rt, rounds)) {
        return fail("batch violated a join/cancel contract");
      }
      ++rounds;
    }

    // The breaker's accounting lands on the watchdog thread after the victim
    // is already joinable, so the final round's break/cycle counters can lag
    // the join by a beat — give the watchdog a few periods to settle before
    // auditing them.
    usleep(200'000);

    const Runtime::Stats s = rt.stats();
    std::printf(
        "soak: %llu rounds in %lds: ult_cancels=%llu retick=%llu "
        "cancel=%llu klt_replace=%llu klts_retired=%llu "
        "stacks_quarantined=%llu syscall_blocks=%llu "
        "comp=%llu/%llu/%llu (activated/reabsorbed/saturated)\n",
        static_cast<unsigned long long>(rounds), seconds,
        static_cast<unsigned long long>(s.ult_cancels),
        static_cast<unsigned long long>(s.remediations_retick),
        static_cast<unsigned long long>(s.remediations_cancel),
        static_cast<unsigned long long>(s.remediations_klt_replace),
        static_cast<unsigned long long>(s.klts_retired),
        static_cast<unsigned long long>(s.stacks_quarantined),
        static_cast<unsigned long long>(s.syscall_blocks),
        static_cast<unsigned long long>(s.syscall_comp_activated),
        static_cast<unsigned long long>(s.syscall_comp_reabsorbed),
        static_cast<unsigned long long>(s.syscall_comp_saturated));
    std::printf(
        "soak: deadlock: cycles=%llu breaks=%llu self=%llu "
        "abandoned=%llu released=%llu\n",
        static_cast<unsigned long long>(s.deadlock_cycles),
        static_cast<unsigned long long>(s.remediations_deadlock_break),
        static_cast<unsigned long long>(s.self_deadlocks),
        static_cast<unsigned long long>(s.abandoned_locks),
        static_cast<unsigned long long>(s.abandoned_released));
    if (s.ult_cancels < 2 * rounds) return fail("cancels did not keep up");
    if (s.remediations_cancel < rounds) return fail("deadline rung never ran");
    // Every batch blocked in at least two annotated syscalls; after all
    // joins the compensation books must reconcile exactly (a KLT activated
    // but never reabsorbed would be a leaked kernel thread).
    if (s.syscall_blocks < 2 * rounds) return fail("io guards never engaged");
    if (s.syscall_comp_activated !=
        s.syscall_comp_reabsorbed + s.syscall_comp_saturated)
      return fail("compensation books do not reconcile");
    if (s.syscall_comp_activated == 0)
      return fail("wedge sentinel never compensated a blocked reader");
    // Deadlock accounting (docs/robustness.md): every injected cycle was
    // broken (the batch already proved exactly one victim each), every
    // injected self-deadlock was caught, and the detector identity holds —
    // each flagged cycle is explained by exactly one break or one
    // synchronous self-deadlock, with no unexplained extras.
    if (s.remediations_deadlock_break < rounds)
      return fail("deadlock breaker missed an injected cycle");
    if (s.self_deadlocks < (rounds + 3) / 4)
      return fail("self-deadlock check missed an injected relock");
    if (s.deadlock_cycles != s.remediations_deadlock_break + s.self_deadlocks)
      return fail("deadlock cycles do not reconcile with breaks + selfs");
    // Every victim died holding a lock, and abandon_release freed each one.
    if (s.abandoned_locks < s.remediations_deadlock_break)
      return fail("cycle victims' abandoned locks went untracked");
    if (s.abandoned_released != s.abandoned_locks)
      return fail("abandon_release left a tracked lock wedged");
  }  // Runtime destructor: the clean-shutdown half of the check.

  // Every KLT — workers, pool spares, retired orphans, compensating hosts,
  // helper threads — must be gone: the kernel-thread count returns to the
  // pre-runtime baseline. Give exiting threads a moment to be reaped.
  for (int i = 0; i < 100 && task_count() > baseline; ++i) usleep(10'000);
  if (task_count() > baseline) return fail("kernel threads leaked shutdown");

  // A fresh runtime in the same process starts healthy.
  {
    Runtime rt{RuntimeOptions{}};
    std::atomic<int> n{0};
    std::vector<Thread> ts;
    for (int i = 0; i < 32; ++i)
      ts.push_back(rt.spawn([&] { n.fetch_add(1, std::memory_order_relaxed); }));
    for (Thread& t : ts) t.join();
    if (n.load() != 32) return fail("post-soak runtime lost work");
  }

  std::printf("soak: PASS\n");
  return 0;
}
