#include "runtime/sync_extra.hpp"

#include <climits>

#include "common/assert.hpp"
#include "common/time.hpp"
#include "runtime/internal.hpp"
#include "runtime/park.hpp"
#include "runtime/prof_glue.hpp"

namespace lpt {

namespace {

ThreadCtl* require_ult(const char* what) {
  ThreadCtl* self = detail::current_ult_or_null();
  LPT_CHECK_MSG(self != nullptr, what);
  return self;
}

void make_ready(ThreadCtl* t, std::uint32_t waker = Runtime::kWakerFromTls) {
  Runtime* rt = t->rt;
  t->store_state(ThreadState::kReady);
  // Routed through the causal choke point (ready stamp + kUltWake edge).
  // The abandoned-lock force-release passes the dead owner as the waker: it
  // runs on the watchdog thread, but the death is the causal release.
  rt->enqueue_ready(t, worker_tls()->worker, EnqueueKind::kUnblock, waker);
}

void make_ready_all(std::vector<ThreadCtl*>& ts,
                    std::uint32_t waker = Runtime::kWakerFromTls) {
  for (ThreadCtl* t : ts) make_ready(t, waker);
  ts.clear();
}

}  // namespace

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

void RwLock::lock_shared() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("RwLock::lock_shared outside ULT context");
  detail::begin_no_preempt(self);
  for (;;) {
    guard_.lock();
    // Writer preference: readers queue behind any waiting writer.
    if (!writer_ && waiting_writers_.empty()) {
      ++readers_;
      if (park::armed()) {
        if (res_ == nullptr)
          res_ = park::acquire_resource(
              static_cast<std::uint8_t>(prof::WaitKind::kRwLock), this,
              &RwLock::abandon_cb);
        park::add_owner(res_, self);
      }
      guard_.unlock();
      detail::end_no_preempt(self);
      return;
    }
    if (write_owner_ == self && park::armed() && self->no_preempt_depth == 1) {
      // Write-then-read self-deadlock: a 1-cycle caught synchronously, like
      // Mutex::lock. (Read-then-write upgrades are left to the periodic
      // detector: self shows up among res_->owners, closing the cycle.)
      guard_.unlock();
      self->cancel_fault = FaultKind::kDeadlock;
      self->cancel_requested.store(true, std::memory_order_release);
      self->rt->note_self_deadlock(
          self, static_cast<std::uint8_t>(prof::WaitKind::kRwLock));
      detail::end_no_preempt(self);  // cancellation point: does not return
      detail::begin_no_preempt(self);
      continue;
    }
    waiting_readers_.push_back(self);
    park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kRwLock),
               /*timed=*/false, res_, nullptr, &guard_, &waiting_readers_);
    prof::offcpu_begin(self, prof::WaitKind::kRwLock, site);
    detail::suspend_block(self, &guard_, nullptr);
    park::unpark(self);
    prof::offcpu_end(self);
    if (self->park_broken) {
      // Deadlock breaker cancelled us out of the wait: no share was handed
      // to us. Terminate at the cancellation point, or retry if unwindable.
      self->park_broken = false;
      detail::end_no_preempt(self);  // cancellation point: usually no return
      detail::begin_no_preempt(self);
      continue;
    }
    detail::end_no_preempt(self);
    // The releaser incremented readers_ on our behalf (direct handoff).
    return;
  }
}

void RwLock::unlock_shared() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  LPT_CHECK_MSG(readers_ > 0, "unlock_shared without shared lock");
  --readers_;
  if (self != nullptr) park::remove_owner(res_, self);
  ThreadCtl* writer_next = nullptr;
  if (readers_ == 0 && !waiting_writers_.empty()) {
    writer_next = waiting_writers_.front();
    waiting_writers_.erase(waiting_writers_.begin());
    writer_ = true;  // handoff
    write_owner_ = writer_next;
    park::add_owner(res_, writer_next);
  }
  guard_.unlock();
  if (writer_next != nullptr) make_ready(writer_next);
  detail::end_no_preempt(self);
}

void RwLock::lock() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("RwLock::lock outside ULT context");
  detail::begin_no_preempt(self);
  for (;;) {
    guard_.lock();
    if (!writer_ && readers_ == 0) {
      writer_ = true;
      write_owner_ = self;
      if (park::armed()) {
        if (res_ == nullptr)
          res_ = park::acquire_resource(
              static_cast<std::uint8_t>(prof::WaitKind::kRwLock), this,
              &RwLock::abandon_cb);
        park::add_owner(res_, self);
      }
      guard_.unlock();
      detail::end_no_preempt(self);
      return;
    }
    if (write_owner_ == self && park::armed() && self->no_preempt_depth == 1) {
      // Write-after-write self-deadlock, caught synchronously (Mutex::lock
      // has the full rationale).
      guard_.unlock();
      self->cancel_fault = FaultKind::kDeadlock;
      self->cancel_requested.store(true, std::memory_order_release);
      self->rt->note_self_deadlock(
          self, static_cast<std::uint8_t>(prof::WaitKind::kRwLock));
      detail::end_no_preempt(self);  // cancellation point: does not return
      detail::begin_no_preempt(self);
      continue;
    }
    waiting_writers_.push_back(self);
    park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kRwLock),
               /*timed=*/false, res_, nullptr, &guard_, &waiting_writers_);
    prof::offcpu_begin(self, prof::WaitKind::kRwLock, site);
    // Direct handoff: the releaser set writer_/write_owner_ on our behalf.
    detail::suspend_block(self, &guard_, nullptr);
    park::unpark(self);
    prof::offcpu_end(self);
    if (self->park_broken) {
      // Deadlock breaker cancelled us out of the wait: we do NOT own the
      // lock. Terminate at the cancellation point, or retry if unwindable.
      self->park_broken = false;
      detail::end_no_preempt(self);  // cancellation point: usually no return
      detail::begin_no_preempt(self);
      continue;
    }
    detail::end_no_preempt(self);
    return;
  }
}

void RwLock::unlock() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  LPT_CHECK_MSG(writer_, "RwLock::unlock without write lock");
  park::remove_owner(res_, write_owner_);
  write_owner_ = nullptr;
  ThreadCtl* writer_next = nullptr;
  std::vector<ThreadCtl*> readers_next;
  if (!waiting_writers_.empty()) {
    writer_next = waiting_writers_.front();
    waiting_writers_.erase(waiting_writers_.begin());
    // writer_ stays true: handoff to the next writer.
    write_owner_ = writer_next;
    park::add_owner(res_, writer_next);
  } else {
    writer_ = false;
    readers_ += static_cast<int>(waiting_readers_.size());
    // Every handed-off reader becomes a tracked owner before its wake (edges
    // never dangle); readers past kMaxOwners set the overflow flag instead.
    for (ThreadCtl* r : waiting_readers_) park::add_owner(res_, r);
    readers_next.swap(waiting_readers_);
  }
  guard_.unlock();
  if (writer_next != nullptr) make_ready(writer_next);
  make_ready_all(readers_next);
  detail::end_no_preempt(self);
}

bool RwLock::abandon(ThreadCtl* dead, bool release) {
  // Finalize context: `dead` has already been CAS-cleared from res_->owners,
  // so the add_owner calls below land in free slots.
  guard_.lock();
  if (writer_ && write_owner_ == dead) {
    // Dead writer. Always clear the address (it is about to dangle); only
    // force-unlock when release mode is on.
    write_owner_ = nullptr;
    if (!release) {
      guard_.unlock();
      return false;
    }
    ThreadCtl* writer_next = nullptr;
    std::vector<ThreadCtl*> readers_next;
    if (!waiting_writers_.empty()) {
      writer_next = waiting_writers_.front();
      waiting_writers_.erase(waiting_writers_.begin());
      write_owner_ = writer_next;
      park::add_owner(res_, writer_next);
    } else {
      writer_ = false;
      readers_ += static_cast<int>(waiting_readers_.size());
      for (ThreadCtl* r : waiting_readers_) park::add_owner(res_, r);
      readers_next.swap(waiting_readers_);
    }
    guard_.unlock();
    if (writer_next != nullptr) make_ready(writer_next, dead->trace_id);
    make_ready_all(readers_next, dead->trace_id);
    return true;
  }
  if (readers_ > 0) {
    // Dead reader (it was recorded in res_->owners, so it held a share).
    // Readers past the owner-slot cap were never recorded — an overflowed
    // rwlock under-releases, which the overflow flag already declares.
    if (!release) {
      guard_.unlock();
      return false;
    }
    --readers_;
    ThreadCtl* writer_next = nullptr;
    if (readers_ == 0 && !waiting_writers_.empty()) {
      writer_next = waiting_writers_.front();
      waiting_writers_.erase(waiting_writers_.begin());
      writer_ = true;
      write_owner_ = writer_next;
      park::add_owner(res_, writer_next);
    }
    guard_.unlock();
    if (writer_next != nullptr) make_ready(writer_next, dead->trace_id);
    return true;
  }
  guard_.unlock();
  return false;
}

bool RwLock::abandon_cb(void* primitive, ThreadCtl* dead, bool release) {
  return static_cast<RwLock*>(primitive)->abandon(dead, release);
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

void Semaphore::acquire() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = require_ult("Semaphore::acquire outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  if (count_ > 0) {
    --count_;
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  // No owner edge: semaphore units have no owner, so a semaphore waiter can
  // never be a cycle member. Registered for visibility and the reactor.
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kSemaphore),
             /*timed=*/false, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kSemaphore, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  detail::end_no_preempt(self);
  // Direct handoff: release() consumed a unit on our behalf.
}

bool Semaphore::try_acquire() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  const bool got = count_ > 0;
  if (got) --count_;
  guard_.unlock();
  detail::end_no_preempt(self);
  return got;
}

bool Semaphore::try_acquire_for(std::chrono::nanoseconds timeout) {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self =
      require_ult("Semaphore::try_acquire_for outside ULT context");
  detail::cancel_point(self);
  detail::begin_no_preempt(self);
  guard_.lock();
  if (count_ > 0) {
    --count_;
    guard_.unlock();
    detail::end_no_preempt(self);
    return true;
  }
  if (timeout.count() <= 0) {
    guard_.unlock();
    detail::end_no_preempt(self);
    return false;
  }
  const std::int64_t deadline = now_ns() + timeout.count();
  waiters_.push_back(self);
  self->wait_timed_out = false;
  // Expiry races release() under guard_; a waiter release() removed was
  // handed a unit (direct handoff), so a timed-out flag can never coexist
  // with an owed unit.
  self->rt->register_timed_wait(self, deadline, &guard_, &waiters_);
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kSemaphore),
             /*timed=*/true, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kSemaphore, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  self->rt->unregister_timed_wait(self);
  detail::end_no_preempt(self);  // cancellation point
  return !self->wait_timed_out;
}

void Semaphore::release(int n) {
  LPT_CHECK(n >= 1);
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> to_wake;
  {
    SpinlockGuard g(guard_);
    while (n > 0 && !waiters_.empty()) {
      to_wake.push_back(waiters_.front());
      waiters_.erase(waiters_.begin());
      --n;
    }
    count_ += n;
  }
  make_ready_all(to_wake);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

void Latch::count_down(int n) {
  LPT_CHECK(n >= 1);
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> to_wake;
  bool fired = false;
  {
    SpinlockGuard g(guard_);
    LPT_CHECK_MSG(remaining_ >= n, "Latch::count_down below zero");
    remaining_ -= n;
    if (remaining_ == 0) {
      fired = true;
      to_wake.swap(waiters_);
      done_.store(1, std::memory_order_release);
    }
  }
  if (fired) futex_wake(&done_, INT_MAX);
  make_ready_all(to_wake);
  detail::end_no_preempt(self);
}

void Latch::wait() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = detail::current_ult_or_null();
  if (self == nullptr) {
    // External kernel thread: futex on the done word.
    while (done_.load(std::memory_order_acquire) == 0) futex_wait(&done_, 0);
    return;
  }
  detail::begin_no_preempt(self);
  guard_.lock();
  if (done_.load(std::memory_order_acquire) != 0) {
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  // No owner edge: latches count down, nobody "holds" them.
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kLatch),
             /*timed=*/false, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kLatch, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------------

void WaitGroup::add(int n) {
  SpinlockGuard g(guard_);
  count_ += n;
  LPT_CHECK_MSG(count_ >= 0, "WaitGroup count went negative");
}

void WaitGroup::done() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> to_wake;
  bool fired = false;
  {
    SpinlockGuard g(guard_);
    LPT_CHECK_MSG(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ == 0) {
      fired = true;
      to_wake.swap(waiters_);
      zero_epoch_.fetch_add(1, std::memory_order_release);
    }
  }
  if (fired) futex_wake(&zero_epoch_, INT_MAX);
  make_ready_all(to_wake);
  detail::end_no_preempt(self);
}

void WaitGroup::wait() {
  void* const site = __builtin_return_address(0);
  ThreadCtl* self = detail::current_ult_or_null();
  if (self == nullptr) {
    for (;;) {
      std::uint32_t epoch = zero_epoch_.load(std::memory_order_acquire);
      {
        SpinlockGuard g(guard_);
        if (count_ == 0) return;
      }
      futex_wait(&zero_epoch_, epoch);
    }
  }
  detail::begin_no_preempt(self);
  guard_.lock();
  if (count_ == 0) {
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  // No owner edge: wait-group completions have no single owner.
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kWaitGroup),
             /*timed=*/false, nullptr, nullptr, &guard_, &waiters_);
  prof::offcpu_begin(self, prof::WaitKind::kWaitGroup, site);
  detail::suspend_block(self, &guard_, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  detail::end_no_preempt(self);
}

}  // namespace lpt
