// Quickstart: the lpt public API in five minutes.
//
//   $ ./examples/quickstart
//
// Demonstrates: runtime configuration, the three thread types
// (nonpreemptive / signal-yield / KLT-switching), spawn/join/yield,
// ULT-aware synchronization, and why implicit preemption matters.
#include <atomic>
#include <cstdio>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

int main() {
  using namespace lpt;

  // 1. Start a runtime: 4 workers, implicit preemption every 1 ms with
  //    per-worker aligned timers (§3.2.1 of the paper).
  RuntimeOptions opts;
  opts.num_workers = 4;
  opts.timer = TimerKind::PerWorkerAligned;
  opts.interval_us = 1000;
  Runtime rt(opts);
  std::printf("runtime up: %d workers, preemption interval %lld us\n",
              rt.num_workers(), static_cast<long long>(opts.interval_us));

  // 2. Fork/join: spawn 100 cooperative (nonpreemptive) threads.
  std::atomic<int> counter{0};
  std::vector<Thread> threads;
  for (int i = 0; i < 100; ++i)
    threads.push_back(rt.spawn([&] {
      counter.fetch_add(1);
      this_thread::yield();  // explicit scheduling point
      counter.fetch_add(1);
    }));
  for (auto& t : threads) t.join();
  std::printf("100 cooperative threads ran: counter = %d\n", counter.load());

  // 3. ULT-aware synchronization: mutex + condition variable.
  Mutex m;
  CondVar cv;
  bool ready = false;
  Thread consumer = rt.spawn([&] {
    m.lock();
    while (!ready) cv.wait(m);
    m.unlock();
    std::printf("consumer woke up cooperatively\n");
  });
  Thread producer = rt.spawn([&] {
    m.lock();
    ready = true;
    m.unlock();
    cv.notify_one();
  });
  consumer.join();
  producer.join();

  // 4. The headline feature: implicit preemption. A thread that never
  //    yields would starve others on a nonpreemptive runtime; here the
  //    timer preempts it transparently.
  std::atomic<bool> flag{false};
  ThreadAttrs preemptible;
  preemptible.preempt = Preempt::SignalYield;  // KLT-independent code only
  Thread spinner = rt.spawn(
      [&] {
        while (!flag.load(std::memory_order_acquire)) {
        }  // busy loop, no yield!
        std::printf("spinner saw the flag (it was preempted %llu times)\n",
                    static_cast<unsigned long long>(rt.total_preemptions()));
      },
      preemptible);
  Thread setter = rt.spawn([&] { flag.store(true); }, preemptible);
  spinner.join();
  setter.join();

  // 5. KLT-switching: safe even for KLT-dependent code (e.g. glibc malloc),
  //    because a preempted thread keeps its kernel thread (§3.1.2).
  ThreadAttrs klt_safe;
  klt_safe.preempt = Preempt::KltSwitch;
  Thread heavy = rt.spawn(
      [&] {
        const pid_t tid0 = gettid_syscall();
        busy_spin_ns(10'000'000);  // 10 ms of work, preempted ~10 times
        std::printf("KLT-switching thread stayed on tid %d: %s\n",
                    static_cast<int>(tid0),
                    gettid_syscall() == tid0 ? "yes" : "no");
      },
      klt_safe);
  heavy.join();

  std::printf("total implicit preemptions: %llu | kernel threads created: %llu\n",
              static_cast<unsigned long long>(rt.total_preemptions()),
              static_cast<unsigned long long>(rt.total_klts()));
  return 0;
}
