#include "runtime/sync.hpp"

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/time.hpp"
#include "runtime/internal.hpp"

namespace lpt {

namespace {

ThreadCtl* require_ult(const char* what) {
  ThreadCtl* self = detail::current_ult_or_null();
  LPT_CHECK_MSG(self != nullptr, what);
  return self;
}

void make_ready(ThreadCtl* t) {
  Runtime* rt = t->rt;
  t->store_state(ThreadState::kReady);
  Worker* hint = worker_tls()->worker;  // may be null (external thread)
  rt->scheduler().enqueue(t, hint, EnqueueKind::kUnblock);
  rt->notify_work();
}

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

void Mutex::lock() {
  ThreadCtl* self = require_ult("lpt::Mutex::lock outside ULT context");
  detail::cancel_point(self);  // before acquisition: nothing held yet
  detail::begin_no_preempt(self);
  guard_.lock();
  if (!locked_) {
    locked_ = true;
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  // Direct handoff: unlock() keeps `locked_` set and wakes us as the owner.
  detail::suspend_block(self, &guard_, nullptr);
  detail::end_no_preempt(self);
}

bool Mutex::try_lock() {
  ThreadCtl* self = require_ult("lpt::Mutex::try_lock outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  const bool got = !locked_;
  if (got) locked_ = true;
  guard_.unlock();
  detail::end_no_preempt(self);
  return got;
}

bool Mutex::try_lock_for(std::chrono::nanoseconds timeout) {
  ThreadCtl* self =
      require_ult("lpt::Mutex::try_lock_for outside ULT context");
  detail::cancel_point(self);
  detail::begin_no_preempt(self);
  guard_.lock();
  if (!locked_) {
    locked_ = true;
    guard_.unlock();
    detail::end_no_preempt(self);
    return true;
  }
  if (timeout.count() <= 0) {
    guard_.unlock();
    detail::end_no_preempt(self);
    return false;
  }
  const std::int64_t deadline = now_ns() + timeout.count();
  waiters_.push_back(self);
  self->wait_timed_out = false;
  // Expiry races unlock() for the wakeup under guard_; whoever removes us
  // from waiters_ wins. Losing to unlock() means we were handed the lock —
  // a timed waiter that wakes as owner reports success even if late.
  self->rt->register_timed_wait(self, deadline, &guard_, &waiters_);
  detail::suspend_block(self, &guard_, nullptr);
  self->rt->unregister_timed_wait(self);
  detail::end_no_preempt(self);  // cancellation point
  return !self->wait_timed_out;
}

void Mutex::unlock() {
  // Callable from ULT context and from the scheduler (condvar-wait release).
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  LPT_CHECK_MSG(locked_, "unlock of unowned lpt::Mutex");
  if (waiters_.empty()) {
    locked_ = false;
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  ThreadCtl* next = waiters_.front();
  waiters_.erase(waiters_.begin());
  guard_.unlock();  // `locked_` stays true: ownership passes to `next`
  make_ready(next);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::wait(Mutex& m) {
  ThreadCtl* self = require_ult("lpt::CondVar::wait outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  waiters_.push_back(self);
  // The scheduler releases guard_ and *then* m after our context is saved,
  // so a signaler can neither miss us nor wake us before we are suspended.
  detail::suspend_block(self, &guard_, &m);
  detail::end_no_preempt(self);
  m.lock();
}

bool CondVar::wait_for(Mutex& m, std::chrono::nanoseconds timeout) {
  ThreadCtl* self = require_ult("lpt::CondVar::wait_for outside ULT context");
  if (timeout.count() <= 0) return false;  // immediate timeout, m stays held
  const std::int64_t deadline = now_ns() + timeout.count();
  detail::begin_no_preempt(self);
  guard_.lock();
  waiters_.push_back(self);
  self->wait_timed_out = false;
  self->rt->register_timed_wait(self, deadline, &guard_, &waiters_);
  detail::suspend_block(self, &guard_, &m);
  self->rt->unregister_timed_wait(self);
  // Cancellation point — fires while m is NOT held, so a cancelled waiter
  // never strands the user mutex.
  detail::end_no_preempt(self);
  m.lock();
  return !self->wait_timed_out;
}

void CondVar::notify_one() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  ThreadCtl* t = nullptr;
  {
    SpinlockGuard g(guard_);
    if (!waiters_.empty()) {
      t = waiters_.front();
      waiters_.erase(waiters_.begin());
    }
  }
  if (t != nullptr) make_ready(t);
  detail::end_no_preempt(self);
}

void CondVar::notify_all() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> ts;
  {
    SpinlockGuard g(guard_);
    ts.swap(waiters_);
  }
  for (ThreadCtl* t : ts) make_ready(t);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

Barrier::Barrier(int parties) : parties_(parties) {
  LPT_CHECK(parties >= 1);
  waiters_.reserve(parties);
}

void Barrier::arrive_and_wait() {
  ThreadCtl* self = require_ult("lpt::Barrier outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    std::vector<ThreadCtl*> ts;
    ts.swap(waiters_);
    guard_.unlock();
    for (ThreadCtl* t : ts) make_ready(t);
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  detail::suspend_block(self, &guard_, nullptr);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// BusyFlag
// ---------------------------------------------------------------------------

void BusyFlag::wait(WaitMode mode) const {
  while (!is_set()) {
    if (mode == WaitMode::kSpinWithYield) {
      this_thread::yield();
    } else {
      for (int i = 0; i < 64; ++i) cpu_pause();
    }
  }
}

}  // namespace lpt
