#include "common/treiber_stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace lpt {
namespace {

struct Node : TreiberNode {
  int value = 0;
};

TEST(TreiberStack, LifoOrderSingleThread) {
  TreiberStack<Node> st;
  Node a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  st.push(&a);
  st.push(&b);
  st.push(&c);
  EXPECT_EQ(st.pop()->value, 3);
  EXPECT_EQ(st.pop()->value, 2);
  EXPECT_EQ(st.pop()->value, 1);
  EXPECT_EQ(st.pop(), nullptr);
  EXPECT_TRUE(st.empty());
}

TEST(TreiberStack, PopEmptyReturnsNull) {
  TreiberStack<Node> st;
  EXPECT_EQ(st.pop(), nullptr);
}

TEST(TreiberStack, ConcurrentPushPopConservesNodes) {
  TreiberStack<Node> st;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<Node> nodes(kThreads * kPerThread);
  for (int i = 0; i < kThreads * kPerThread; ++i) nodes[i].value = i;

  std::atomic<int> popped{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      // Each thread pushes its slice and pops an equal number overall.
      for (int i = 0; i < kPerThread; ++i) {
        st.push(&nodes[t * kPerThread + i]);
        if (Node* n = st.pop()) {
          popped.fetch_add(1);
          (void)n;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  // Drain the remainder.
  while (st.pop() != nullptr) popped.fetch_add(1);
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  EXPECT_TRUE(st.empty());
}

TEST(TreiberStack, SingleOwnerReuseAfterPop) {
  TreiberStack<Node> st;
  Node n;
  for (int i = 0; i < 100; ++i) {
    n.value = i;
    st.push(&n);
    Node* got = st.pop();
    ASSERT_EQ(got, &n);
    EXPECT_EQ(got->value, i);
  }
}

}  // namespace
}  // namespace lpt
