#!/usr/bin/env bash
# Repo gate: configure + build + tier-1 tests, the tracer's and the metrics
# subsystem's non-context-switching unit tests under ThreadSanitizer, the
# fault-injection and fault-isolation suites under AddressSanitizer, the
# self-healing remediation suite via its env knobs (LPT_REMEDIATE) and under
# LPT_FAULT-degraded KLT creation, an end-to-end smoke of the metrics
# publisher (bench run with LPT_METRICS_FILE set, output validated by the
# strict Prometheus parser in tests/tools/prom_check.cpp), an end-to-end
# smoke of the continuous profiler (LPT_PROF=1 run validated and
# metrics-cross-checked by tests/tools/prof_check.cpp), an end-to-end smoke
# of the causal tracer (mixed trace_viz workload with LPT_TRACE_EVENTS_FILE
# set, the event log cross-checked against the same run's metrics by
# tests/tools/trace_check.cpp), the blocking-syscall resilience suite
# (normal, plus its non-context-switching guard/detect halves under TSan),
# and a short run of the self-healing soak (scripts/soak.sh).
#
#   scripts/check.sh [build-dir]        (default: build)
#
# TSan scope: the runtime switches between fiber stacks with custom assembly,
# which TSan's happens-before machinery does not understand — full-suite TSan
# produces false positives on every context switch. The tracer's lock-free
# data structures (ring, histograms, exporter) never context-switch, so
# test_trace_unit runs TSan-clean and guards the tracer's concurrency logic.
#
# ASan scope: the fault-injection tests (docs/robustness.md) exercise every
# degraded resource path — pthread_create storms, timer_create fallback, mmap
# spawn refusal, shutdown of a degraded runtime. ASan catches the classic
# degradation bugs (double-free of a shed stack, use-after-free of an
# abandoned KLT request) that a plain run would miss. The fault-isolation
# suite also runs under ASan: SEGV-containment tests GTEST_SKIP themselves
# (ASan owns the SIGSEGV handler; fault::available() is false in sanitizer
# builds), while the exception firewall, join/compat plumbing, stack-pool
# quarantine, and the fault-storm watchdog still run fully instrumented.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== [1/13] normal build =="
cmake -S . -B "$BUILD" -G Ninja >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== [2/13] tier-1 tests =="
ctest --test-dir "$BUILD" -L tier1 --output-on-failure

echo "== [3/13] tracer unit tests under TSan =="
cmake -S . -B "$BUILD-tsan" -G Ninja -DLPT_SANITIZE=thread >/dev/null
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_trace_unit
"$BUILD-tsan/tests/test_trace_unit"

echo "== [4/13] metrics + watchdog + profiler unit tests under TSan =="
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_metrics_unit test_prof_unit
"$BUILD-tsan/tests/test_metrics_unit"
# Profiler primitives (sample ring, wait-site CAS table, lock slab) never
# context-switch, so they run TSan-clean like the tracer's structures.
"$BUILD-tsan/tests/test_prof_unit"

echo "== [5/13] fault-injection tests under ASan =="
cmake -S . -B "$BUILD-asan" -G Ninja -DLPT_SANITIZE=address >/dev/null
cmake --build "$BUILD-asan" -j "$JOBS" --target test_sys test_fault
"$BUILD-asan/tests/test_sys"
"$BUILD-asan/tests/test_fault"

echo "== [6/13] fault-isolation tests (normal + ASan self-skip) =="
"$BUILD/tests/test_fault_isolation"
cmake --build "$BUILD-asan" -j "$JOBS" --target test_fault_isolation
"$BUILD-asan/tests/test_fault_isolation"

echo "== [7/13] self-healing: remediation suite (LPT_REMEDIATE=1 + degraded) =="
# Env-path acceptance (docs/robustness.md, "Self-healing"): the wedged-worker
# and runaway workloads recover with remediation enabled via the environment.
# The off-by-default test is the one run that must NOT see the flag, so it is
# filtered out here (stage 2 already ran it clean).
LPT_REMEDIATE=1 "$BUILD/tests/test_remediation" \
  --gtest_filter='-Remediation.OffByDefaultOnlyFlags'
# Degraded self-healing: with spare-KLT creation failing after startup, the
# signal-yield directed-cancel and deadline rungs still heal (they need no
# fresh KLT); klt_replace fails soft and retries. One test per process:
# LPT_FAULT counting is arm-relative and cumulative within a process, and
# startup worker KLTs are mandatory — after=8 covers one runtime's startup,
# not a whole suite's.
LPT_FAULT='pthread_create:after=8,every=2' "$BUILD/tests/test_remediation" \
  --gtest_filter='Cancel.DirectedTickKillsSpinnerSignalYield'
LPT_FAULT='pthread_create:after=8,every=2' "$BUILD/tests/test_remediation" \
  --gtest_filter='Deadline.PerSpawnDeadlineCancelsRunaway'

echo "== [8/13] blocking-syscall resilience (normal + TSan guard/detect) =="
# Full suite normal (io::call retry/deadline semantics, the wedge sentinel's
# detection rung, compensation + reabsorption accounting under both
# preemption techniques). The IoCall.* and SyscallDetect.* suites never
# context-switch, so they also run under TSan to guard the epoch-word and
# rendezvous atomics (the Comp/Storm suites switch fibers — out of TSan
# scope, same reason as the full-suite exclusion above).
"$BUILD/tests/test_syscall_resilience"
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_syscall_resilience
"$BUILD-tsan/tests/test_syscall_resilience" \
  --gtest_filter='IoCall.*:SyscallDetect.*'

echo "== [9/13] deadlock detection & recovery (normal + TSan park unit tests) =="
# Full suite normal: self-deadlock at lock(), cycle detection/breaking under
# both preemption techniques, abandoned-lock tracking, healthy-soak zero
# false positives, and the LPT_DEADLOCK* env-knob validation. The parking
# registry's slot protocol (versioned claim/free, the detector's pinned
# seqlock scan) never context-switches, so test_park also runs under TSan.
"$BUILD/tests/test_deadlock"
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_park
"$BUILD-tsan/tests/test_park"

echo "== [10/13] metrics-publisher smoke (bench + prom_check) =="
cmake --build "$BUILD" -j "$JOBS" --target table1_preemption prom_check
METRICS_OUT="$(mktemp /tmp/lpt_check_metrics.XXXXXX.prom)"
LPT_METRICS_FILE="$METRICS_OUT" LPT_METRICS_PERIOD_MS=200 \
  "$BUILD/bench/table1_preemption" >/dev/null
"$BUILD/tests/prom_check" "$METRICS_OUT"
rm -f "$METRICS_OUT"

echo "== [11/13] continuous-profiling smoke (fig7 real section + prof_check) =="
# End-to-end LPT_PROF path: env config -> piggyback sampler + off-CPU/lock
# collectors -> shutdown export, validated by the strict folded parser and
# cross-checked against the same run's published metrics counters.
cmake --build "$BUILD" -j "$JOBS" --target fig7_cholesky prof_check
PROF_OUT="$(mktemp /tmp/lpt_check_prof.XXXXXX.folded)"
PROF_METRICS="$(mktemp /tmp/lpt_check_prof.XXXXXX.prom)"
LPT_PROF=1 LPT_PROF_FILE="$PROF_OUT" LPT_METRICS_FILE="$PROF_METRICS" \
  "$BUILD/bench/fig7_cholesky" >/dev/null
"$BUILD/tests/prof_check" "$PROF_OUT" "$PROF_METRICS"
rm -f "$PROF_OUT" "$PROF_METRICS"

echo "== [12/13] causal-trace smoke (trace_viz mixed workload + trace_check) =="
# End-to-end causal-observability path: env config -> wake-edge tracing +
# per-ULT accounting -> JSONL event log + Prometheus histograms, with the
# validator proving every dispatch resolves to a ready stamp, every wake edge
# names a real waker, and the summed delays reconcile exactly with the
# lpt_sched_delay_ns / lpt_spawn_latency_ns families. The ring is sized so
# nothing drops (exact reconciliation requires a complete log).
cmake --build "$BUILD" -j "$JOBS" --target trace_viz trace_check trace_critical_path
TRACE_EVENTS="$(mktemp /tmp/lpt_check_trace.XXXXXX.jsonl)"
TRACE_METRICS="$(mktemp /tmp/lpt_check_trace.XXXXXX.prom)"
TRACE_JSON="$(mktemp /tmp/lpt_check_trace.XXXXXX.json)"
LPT_TRACE_EVENTS_FILE="$TRACE_EVENTS" LPT_TRACE_RING_CAP=$((1<<18)) \
  LPT_METRICS_FILE="$TRACE_METRICS" \
  "$BUILD/examples/trace_viz" "$TRACE_JSON" >/dev/null
"$BUILD/tests/trace_check" "$TRACE_EVENTS" "$TRACE_METRICS"
# The analyzer must walk the same log without complaint.
"$BUILD/tools/trace_critical_path" "$TRACE_EVENTS" >/dev/null
rm -f "$TRACE_EVENTS" "$TRACE_METRICS" "$TRACE_JSON"

echo "== [13/13] self-healing soak (scripts/soak.sh, short) =="
SOAK_SECONDS=5 scripts/soak.sh "$BUILD"

echo "== all checks passed =="
