// Behavioural tests of the preemption timers: rates, eligibility filtering,
// fairness of the chain, and re-arming across KLT remaps.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <vector>

#include "common/cpu.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(TimerRate, PreemptionCountTracksIntervalRatio) {
  // Halving the interval should roughly double the preemption count for the
  // same spin duration. Generous bounds: the container's clock is noisy.
  auto count_for = [](std::int64_t interval_us) {
    RuntimeOptions o;
    o.num_workers = 1;
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = interval_us;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    Thread t = rt.spawn([] { busy_spin_ns(60'000'000); }, attrs);
    t.join();
    return rt.total_preemptions();
  };
  const std::uint64_t at_1ms = count_for(1000);
  const std::uint64_t at_4ms = count_for(4000);
  EXPECT_GT(at_1ms, at_4ms);
  EXPECT_GE(at_1ms, 20u);  // ~60 expected
  EXPECT_LE(at_4ms, 40u);  // ~15 expected
}

TEST(TimerEligibility, ProcessTimerSkipsIdleRuntime) {
  // A per-process timer over an idle runtime must not accumulate
  // preemptions or burn signals (§3.2.2).
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::ProcessChain;
  o.interval_us = 500;
  Runtime rt(o);
  usleep(30'000);  // ~60 timer periods with nothing running
  EXPECT_EQ(rt.total_preemptions(), 0u);
  Thread t = rt.spawn([] {});
  t.join();
}

TEST(TimerFairness, ChainPreemptsWorkersEvenly) {
  // 3 spinning preemptive threads pinned to 3 workers: over many periods
  // the chain must hit all of them within a small factor of each other.
  RuntimeOptions o;
  o.num_workers = 3;
  o.timer = TimerKind::ProcessChain;
  o.interval_us = 1000;
  Runtime rt(o);
  std::atomic<bool> stop{false};
  std::vector<Thread> ts;
  for (int i = 0; i < 3; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    attrs.home_pool = i;
    ts.push_back(rt.spawn(
        [&] {
          while (!stop.load(std::memory_order_acquire)) cpu_pause();
        },
        attrs));
  }
  // Wait until a healthy number of preemptions accumulated.
  const std::int64_t deadline = now_ns() + 20'000'000'000ll;
  while (rt.total_preemptions() < 45 && now_ns() < deadline) usleep(2000);
  stop.store(true);
  std::vector<std::uint64_t> counts;
  for (auto& t : ts) counts.push_back(t.preemptions());
  for (auto& t : ts) t.join();

  const std::uint64_t total = counts[0] + counts[1] + counts[2];
  ASSERT_GE(total, 45u);
  for (std::uint64_t c : counts) {
    // Each thread within [1/6, 2/3] of the total: rough fairness. (Perfect
    // would be 1/3 each; threads migrate between workers after preemption
    // so exact attribution wobbles.)
    EXPECT_GE(c * 6, total) << "a thread was starved of preemptions";
    EXPECT_LE(c * 3, total * 2) << "a thread hogged preemptions";
  }
}

TEST(TimerRemap, PosixPerWorkerSurvivesKltSwitching) {
  // The POSIX per-worker timer targets a tid; after a KLT-switch remap the
  // worker re-arms it against its new kernel thread. Preemption must keep
  // firing across many remaps.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PosixPerWorker;
  o.interval_us = 1000;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::atomic<bool> flag{false};
  Thread spinner = rt.spawn(
      [&] {
        while (!flag.load(std::memory_order_acquire)) cpu_pause();
      },
      attrs);
  Thread worker_thread = rt.spawn(
      [&] {
        busy_spin_ns(30'000'000);  // forces repeated remaps meanwhile
        flag.store(true);
      },
      attrs);
  spinner.join();
  worker_thread.join();
  EXPECT_GE(rt.total_preemptions(), 10u);
}

TEST(TimerLifecycle, RapidRuntimeRecreationWithTimers) {
  for (int round = 0; round < 5; ++round) {
    RuntimeOptions o;
    o.num_workers = 2;
    o.timer = round % 2 == 0 ? TimerKind::PerWorkerAligned
                             : TimerKind::ProcessOneToAll;
    o.interval_us = 500;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    Thread t = rt.spawn([] { busy_spin_ns(3'000'000); }, attrs);
    t.join();
  }
  SUCCEED();  // no leaked signals/timers may fire after destruction
}

TEST(TimerTargets, OnlyPreemptiveThreadsAreEverPreempted) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerCreationTime;  // signals everyone
  o.interval_us = 500;
  Runtime rt(o);
  std::atomic<bool> flag{false};
  ThreadAttrs pre;
  pre.preempt = Preempt::SignalYield;
  Thread preemptive = rt.spawn(
      [&] {
        while (!flag.load(std::memory_order_acquire)) cpu_pause();
      },
      pre);
  Thread cooperative = rt.spawn([&] {
    busy_spin_ns(10'000'000);
    flag.store(true);
  });
  preemptive.join();
  const std::uint64_t coop_preempts = cooperative.preemptions();
  cooperative.join();
  EXPECT_EQ(coop_preempts, 0u);  // signalled, but never preempted
  EXPECT_GT(rt.total_preemptions(), 0u);
}

}  // namespace
}  // namespace lpt
