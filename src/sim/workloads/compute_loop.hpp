// Fig 6 workload: "each of 56 workers runs ten threads that just consume CPU
// cycles in a loop", per-worker aligned timer; relative overhead of each
// preemption variant vs the nonpreemptive run. Also the Table 1 per-
// preemption cost decomposition.
#pragma once

#include "sim/cost_model.hpp"
#include "sim/ult_model.hpp"

namespace lpt::sim {

enum class Fig6Variant {
  kNonpreemptiveBaseline,  ///< denominator
  kTimerInterruptionOnly,
  kSignalYield,
  kKltSwitchNaive,       ///< sigsuspend parking, global pool
  kKltSwitchFutex,       ///< futex parking, global pool
  kKltSwitchFutexLocal,  ///< futex parking + worker-local pools
};

const char* fig6_variant_name(Fig6Variant v);

struct Fig6Config {
  int workers = 56;
  int threads_per_worker = 10;
  Time compute_per_thread = 20'000'000;  // 20 ms of pure compute each
  Time interval = 1'000'000;
};

/// Makespan of the Fig 6 microbenchmark under one variant.
Time fig6_makespan(const CostModel& cm, const Fig6Config& cfg, Fig6Variant v);

/// Relative overhead vs the nonpreemptive baseline (the Fig 6 y-axis).
double fig6_overhead(const CostModel& cm, const Fig6Config& cfg, Fig6Variant v);

/// Table 1: cost of ONE preemption (µs) per technique, decomposed from the
/// cost model exactly as the simulated mechanics charge it.
struct Table1Row {
  double one_to_one_us;      ///< 1:1 threads (OS preemption)
  double signal_yield_us;
  double klt_switching_us;   ///< futex + local pool (the optimized config)
};
Table1Row table1_costs(const CostModel& cm);

}  // namespace lpt::sim
