#include "apps/linalg/team.hpp"

#include <memory>
#include <vector>

#include "common/assert.hpp"

namespace lpt::apps {

namespace {

struct TeamSync {
  std::atomic<int> remaining{0};
  BusyFlag done;
  Barrier blocking;
  explicit TeamSync(int width) : blocking(width) { remaining.store(width); }

  void arrive_and_wait(TeamWait wait) {
    if (wait == TeamWait::kBlocking) {
      blocking.arrive_and_wait();
      return;
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done.set();
      return;
    }
    done.wait(wait == TeamWait::kSpin ? BusyFlag::WaitMode::kSpin
                                      : BusyFlag::WaitMode::kSpinWithYield);
  }
};

}  // namespace

void team_parallel(const TeamOptions& opts,
                   const std::function<void(int)>& body) {
  LPT_CHECK_MSG(this_thread::in_ult(), "team_parallel outside ULT context");
  LPT_CHECK(opts.width >= 1);
  Runtime* rt = Runtime::current();

  TeamSync sync(opts.width);
  std::vector<Thread> members;
  members.reserve(opts.width - 1);
  ThreadAttrs attrs;
  attrs.preempt = opts.preempt;
  for (int r = 1; r < opts.width; ++r) {
    members.push_back(rt->spawn(
        [&, r] {
          body(r);
          sync.arrive_and_wait(opts.wait);
        },
        attrs));
  }
  body(0);
  sync.arrive_and_wait(opts.wait);
  for (auto& m : members) m.join();
}

}  // namespace lpt::apps
