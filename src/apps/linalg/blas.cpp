#include "apps/linalg/blas.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/prng.hpp"

namespace lpt::apps {

void dgemm_nt_minus(int m, int n, int k, const double* a, int lda,
                    const double* b, int ldb, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const double bjp = b[j + p * ldb];
      const double* ap = a + p * lda;
      double* cj = c + j * ldc;
      for (int i = 0; i < m; ++i) cj[i] -= ap[i] * bjp;
    }
  }
}

void dsyrk_ln_minus(int n, int k, const double* a, int lda, double* c, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int p = 0; p < k; ++p) {
      const double ajp = a[j + p * lda];
      const double* ap = a + p * lda;
      double* cj = c + j * ldc;
      for (int i = j; i < n; ++i) cj[i] -= ap[i] * ajp;
    }
  }
}

void dtrsm_rltn(int m, int n, const double* l, int ldl, double* b, int ldb) {
  // Solve X * L^T = B for X, L lower triangular: column sweep.
  for (int j = 0; j < n; ++j) {
    const double diag = l[j + j * ldl];
    double* bj = b + j * ldb;
    for (int i = 0; i < m; ++i) bj[i] /= diag;
    for (int jj = j + 1; jj < n; ++jj) {
      const double ljj = l[jj + j * ldl];
      double* bjj = b + jj * ldb;
      for (int i = 0; i < m; ++i) bjj[i] -= bj[i] * ljj;
    }
  }
}

bool dpotrf_lower(int n, double* a, int lda) {
  for (int j = 0; j < n; ++j) {
    double d = a[j + j * lda];
    for (int p = 0; p < j; ++p) d -= a[j + p * lda] * a[j + p * lda];
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a[j + j * lda] = d;
    for (int i = j + 1; i < n; ++i) {
      double s = a[i + j * lda];
      for (int p = 0; p < j; ++p) s -= a[i + p * lda] * a[j + p * lda];
      a[i + j * lda] = s / d;
    }
  }
  return true;
}

bool cholesky_reference(int n, double* a, int lda) { return dpotrf_lower(n, a, lda); }

double lower_max_diff(int n, const double* a, int lda, const double* b, int ldb) {
  double mx = 0;
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) {
      const double d = std::fabs(a[i + j * lda] - b[i + j * ldb]);
      if (d > mx) mx = d;
    }
  return mx;
}

void make_spd(int n, double* a, int lda, unsigned seed) {
  Xoshiro256 rng(seed);
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) {
      const double v = rng.next_double() - 0.5;
      a[i + j * lda] = v;
      a[j + i * lda] = v;
    }
  // Diagonal dominance makes it positive definite.
  for (int j = 0; j < n; ++j) a[j + j * lda] += n;
}

}  // namespace lpt::apps
