// Preemption timers (§3.2). Two families:
//
//  * Monitor-thread timers — a dedicated thread sleeps on CLOCK_MONOTONIC and
//    delivers preemption signals to worker KLTs. It implements the paper's
//    four delivery schedules:
//      PerWorkerAligned       every worker ticks at `interval`, phases
//                             staggered by interval/N (§3.2.1 "timer
//                             alignment")
//      PerWorkerCreationTime  every worker ticks at `interval`, all in phase
//                             (the naive baseline of Fig 4)
//      ProcessOneToAll        one tick per interval; the initiating worker's
//                             handler fans out to every eligible worker
//      ProcessChain           one tick per interval; handlers forward to at
//                             most one next eligible worker ("chained
//                             signals")
//    Targeting the worker's *current* KLT keeps delivery correct while
//    KLT-switching remaps workers.
//
//  * PosixPerWorker — the paper's literal mechanism: one timer_create(2) per
//    worker with SIGEV_THREAD_ID (Linux), expirations aligned. The worker
//    re-arms its timer from scheduler context after a KLT remap.
//
// Robustness (docs/robustness.md): when a worker's POSIX timer cannot be
// (re)created, the runtime lazily starts a monitor-thread *fallback* timer
// (make_fallback) that delivers PerWorkerAligned-style ticks to degraded
// workers only — healthy workers keep their kernel timers.
#pragma once

#include <ctime>
#include <memory>

#include "runtime/options.hpp"

namespace lpt {

class Runtime;

class PreemptionTimer {
 public:
  virtual ~PreemptionTimer() = default;
  virtual void start(Runtime& rt) = 0;
  virtual void stop() = 0;

  /// nullptr for TimerKind::None.
  static std::unique_ptr<PreemptionTimer> make(TimerKind kind);

  /// Monitor-thread timer that ticks only workers whose POSIX per-worker
  /// timer has degraded (Worker::posix_timer_degraded). Started lazily by
  /// Runtime::enable_posix_timer_fallback.
  static std::unique_ptr<PreemptionTimer> make_fallback();
};

}  // namespace lpt
