# Empty compiler generated dependencies file for fig9_insitu.
# This may be replaced when dependencies are built.
