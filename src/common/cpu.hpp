// Small CPU/OS helpers: pause hint, cache line size, thread ids.
#pragma once

#include <sys/syscall.h>
#include <unistd.h>

#include <cstdint>

namespace lpt {

inline constexpr std::size_t kCacheLineSize = 64;

/// Spin-wait hint; reduces power and sibling-hyperthread contention.
inline void cpu_pause() {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Kernel thread id of the calling thread (Linux). Async-signal-safe.
inline pid_t gettid_syscall() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

}  // namespace lpt
