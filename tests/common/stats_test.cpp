#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace lpt {
namespace {

TEST(Stats, MeanOfConstantSamples) {
  Stats s;
  for (int i = 0; i < 10; ++i) s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MeanAndStddevKnownValues) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic set: sqrt(32/7)
  EXPECT_NEAR(s.stddev(), 2.13808993529939, 1e-12);
}

TEST(Stats, MedianOddAndEvenCounts) {
  Stats odd;
  for (double x : {5.0, 1.0, 3.0}) odd.add(x);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Stats even;
  for (double x : {4.0, 1.0, 3.0, 2.0}) even.add(x);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Stats, MinMaxAndCount) {
  Stats s;
  s.add(-2.0);
  s.add(7.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Stats, SingleSamplePercentile) {
  Stats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(37), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, ClearResets) {
  Stats s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

}  // namespace
}  // namespace lpt
