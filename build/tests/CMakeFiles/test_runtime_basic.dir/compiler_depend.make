# Empty compiler generated dependencies file for test_runtime_basic.
# This may be replaced when dependencies are built.
