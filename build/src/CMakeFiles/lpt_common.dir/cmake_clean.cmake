file(REMOVE_RECURSE
  "CMakeFiles/lpt_common.dir/common/stats.cpp.o"
  "CMakeFiles/lpt_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/lpt_common.dir/common/table.cpp.o"
  "CMakeFiles/lpt_common.dir/common/table.cpp.o.d"
  "liblpt_common.a"
  "liblpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
