// Thin futex wrapper (Linux). All operations are async-signal-safe: they are
// plain syscalls on a 32-bit word, which is exactly why the paper's
// KLT-switching optimization (§3.3.1) replaces sigsuspend/pthread_kill with
// futexes — the suspend/resume pair must run inside a signal handler.
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>

namespace lpt {

inline long futex(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
                  const timespec* timeout = nullptr) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                   timeout, nullptr, 0);
}

/// Block while *addr == expected. Spurious wakeups possible; caller loops.
inline void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  futex(addr, FUTEX_WAIT_PRIVATE, expected);
}

/// Block while *addr == expected, for at most timeout_ns. Spurious wakeups
/// and timeouts are indistinguishable to the caller; loop on the predicate.
inline void futex_wait_timeout(std::atomic<std::uint32_t>* addr,
                               std::uint32_t expected, std::int64_t timeout_ns) {
  timespec ts;
  ts.tv_sec = timeout_ns / 1'000'000'000;
  ts.tv_nsec = timeout_ns % 1'000'000'000;
  futex(addr, FUTEX_WAIT_PRIVATE, expected, &ts);
}

/// Wake up to `count` waiters. Returns number woken.
inline int futex_wake(std::atomic<std::uint32_t>* addr, int count = 1) {
  return static_cast<int>(futex(addr, FUTEX_WAKE_PRIVATE,
                                static_cast<std::uint32_t>(count)));
}

/// One-shot binary event on a futex word. set() is async-signal-safe.
class FutexEvent {
 public:
  void wait() {
    while (state_.load(std::memory_order_acquire) == 0) futex_wait(&state_, 0);
  }
  bool is_set() const { return state_.load(std::memory_order_acquire) != 0; }
  void set() {
    state_.store(1, std::memory_order_release);
    futex_wake(&state_, INT32_MAX);
  }
  void reset() { state_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint32_t> state_{0};
};

/// Counting gate: arrive() releases one pass of wait(). Both ends are
/// async-signal-safe. Used for parking kernel threads in the KLT pool.
class FutexGate {
 public:
  /// Block until a ticket is available, then consume it.
  void wait() {
    for (;;) {
      std::uint32_t c = tickets_.load(std::memory_order_acquire);
      while (c > 0) {
        if (tickets_.compare_exchange_weak(c, c - 1, std::memory_order_acq_rel))
          return;
      }
      futex_wait(&tickets_, 0);
    }
  }
  /// Like wait(), but gives up after ~timeout_ns. Returns true when a ticket
  /// was consumed, false on timeout (no ticket taken).
  bool wait_for(std::int64_t timeout_ns) {
    if (try_consume()) return true;
    futex_wait_timeout(&tickets_, 0, timeout_ns);
    return try_consume();
  }

  /// Release one waiter (or bank a ticket if none is waiting yet).
  void post() {
    tickets_.fetch_add(1, std::memory_order_acq_rel);
    futex_wake(&tickets_, 1);
  }

 private:
  bool try_consume() {
    std::uint32_t c = tickets_.load(std::memory_order_acquire);
    while (c > 0) {
      if (tickets_.compare_exchange_weak(c, c - 1, std::memory_order_acq_rel))
        return true;
    }
    return false;
  }

  std::atomic<std::uint32_t> tickets_{0};
};

}  // namespace lpt
