// In situ analysis with priority scheduling (paper §4.3): a molecular-
// dynamics simulation spawns low-priority analysis threads over snapshot
// buffers. The priority scheduler runs analysis only when no simulation
// threads are runnable, and signal-yield preemption evicts analysis threads
// the moment simulation work appears.
//
//   $ ./examples/insitu_priority
#include <cstdio>
#include <numeric>

#include "apps/md/md.hpp"
#include "common/time.hpp"

using namespace lpt;
using namespace lpt::apps;

int main() {
  RuntimeOptions ro;
  ro.num_workers = 4;
  ro.scheduler = SchedulerKind::Priority;  // two-class: sim > analysis
  ro.timer = TimerKind::ProcessChain;      // per-process timer (§3.2.2):
  ro.interval_us = 1000;                   // no signals when nothing to evict
  Runtime rt(ro);

  MdOptions mo;
  mo.cells_per_side = 5;  // 125 LJ particles
  mo.steps = 30;
  mo.threads = 4;
  mo.in_situ = true;
  mo.analysis_interval = 2;
  mo.analysis_threads = 3;
  mo.analysis_preempt = Preempt::SignalYield;  // evictable (KLT-independent)

  std::printf("running %d MD steps with in situ speed histograms every %d "
              "steps...\n", mo.steps, mo.analysis_interval);
  const std::int64_t t0 = now_ns();
  MdResult res = md_run(rt, mo);
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;

  std::printf("\n%d particles, %d steps in %.2f s\n", res.n_particles, mo.steps,
              secs);
  std::printf("energy: %.4f -> %.4f (max drift %.2f%%)\n", res.initial_energy,
              res.final_energy, res.max_energy_drift * 100.0);
  std::printf("analyses completed: %d (each on its own snapshot)\n",
              res.analyses_completed);
  std::printf("analysis threads were preempted %llu times in favour of "
              "simulation work\n",
              static_cast<unsigned long long>(rt.total_preemptions()));

  const std::uint64_t total = std::accumulate(res.last_histogram.begin(),
                                              res.last_histogram.end(),
                                              std::uint64_t{0});
  std::printf("last speed histogram covers %llu/%d particles:\n  ",
              static_cast<unsigned long long>(total), res.n_particles);
  for (std::size_t b = 0; b < res.last_histogram.size(); ++b) {
    if (res.last_histogram[b] != 0)
      std::printf("[%.2f-%.2f):%llu ", b / 8.0, (b + 1) / 8.0,
                  static_cast<unsigned long long>(res.last_histogram[b]));
  }
  std::printf("\n");
  return total == static_cast<std::uint64_t>(res.n_particles) ? 0 : 1;
}
