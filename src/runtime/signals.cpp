#include "runtime/signals.hpp"

#include <pthread.h>
#include <ucontext.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/assert.hpp"
#include "common/sys.hpp"
#include "prof/prof.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/klt_pool.hpp"

namespace lpt::signals {

int preempt_signo() { return SIGRTMIN; }
int resume_signo() { return SIGRTMIN + 1; }
int prof_signo() { return SIGRTMIN + 2; }

namespace {

#if !defined(LPT_PROF_DISABLED)
/// Capture an on-CPU sample of the interrupted ULT: PC + frame-pointer chain
/// out of the signal ucontext, bounded to the ULT's own stack. Runs inside
/// both the preemption handler (piggyback mode) and the dedicated sampling
/// handler (LPT_PROF_HZ mode); async-signal-safe throughout (prof::sample
/// only touches the caller-validated ring and bounds-checked stack memory).
void prof_sample_interrupted(WorkerTls* tls, ThreadCtl* t, void* uctx) {
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  if (uctx != nullptr) {
    const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
    pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
    fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  }
#endif
  const std::uintptr_t lo = reinterpret_cast<std::uintptr_t>(t->stack.base());
  const std::uintptr_t hi = lo + t->stack.size();
  const std::int16_t rank =
      tls->worker != nullptr ? static_cast<std::int16_t>(tls->worker->rank)
                             : static_cast<std::int16_t>(-1);
  prof::sample(tls->prof_ring, t->trace_id, rank,
               static_cast<std::uint8_t>(t->home_pool), pc, fp, lo, hi);
  LPT_TRACE_EVENT(trace::EventType::kProfSample, t->trace_id,
                  static_cast<std::uint64_t>(pc));
}
#else
void prof_sample_interrupted(WorkerTls*, ThreadCtl*, void*) {}
#endif

/// One eligible check used by forwarding: the worker is running a thread
/// that wants implicit preemption. Benign races: a stale positive costs one
/// wasted signal, a stale negative delays that worker one interval.
bool eligible(Runtime* rt, int rank) {
  Worker& w = rt->worker(rank);
  return !w.parked.load(std::memory_order_relaxed) &&
         w.current_preempt.load(std::memory_order_relaxed) !=
             static_cast<std::uint8_t>(Preempt::None);
}

/// Chain / one-to-all propagation (§3.2.2), run inside the handler *before*
/// any context switch so the chain never stalls behind a preempted thread.
void forward(Runtime* rt, int my_rank, int initiator) {
  const TimerKind tk = rt->options().timer;
  const int n = rt->num_workers();
  if (tk == TimerKind::ProcessOneToAll) {
    if (my_rank != initiator) return;  // only the initiator fans out
    for (int r = 0; r < n; ++r) {
      if (r == my_rank) continue;
      if (eligible(rt, r)) send_preempt(rt->worker(r), initiator);
    }
  } else if (tk == TimerKind::ProcessChain) {
    // Forward to at most one next eligible worker; stop before wrapping to
    // the initiator so each tick interrupts every eligible worker once.
    for (int step = 1; step < n; ++step) {
      const int r = (my_rank + step) % n;
      if (r == initiator) break;
      if (eligible(rt, r)) {
        send_preempt(rt->worker(r), initiator);
        break;
      }
    }
  }
}

void preempt_handler(int /*signo*/, siginfo_t* si, void* uctx) {
  const int saved_errno = errno;
  Runtime* rt = detail::runtime_instance();
  if (rt == nullptr) {
    errno = saved_errno;
    return;
  }

  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;

  const int initiator = si != nullptr ? si->si_value.sival_int : -1;
  if (w != nullptr && initiator >= 0) forward(rt, w->rank, initiator);

  if (w == nullptr || !tls->in_ult) {
    errno = saved_errno;
    return;
  }
  // Identity from the hosting KLT (WorkerTls::hosted_ult), not the worker:
  // after a forced KLT replacement w->current_ult is the *new* host's ULT.
  ThreadCtl* t = tls->hosted_ult;
  if (t == nullptr || t->preempt == Preempt::None) {
    errno = saved_errno;
    return;
  }
  // Tick effectiveness (common/metrics.hpp): this entry found a preemptible
  // ULT. handler_entries <= ticks_sent (coalesced signals, ticks landing in
  // scheduler context); the watchdog's stall check rides on the gap.
  w->metrics.handler_entries.add(1);
  // On-CPU sampler, piggyback mode: every tick that found a preemptible ULT
  // yields exactly one sample — before the guard-defer and cancel branches,
  // so deferred/cancelled entries still report where the ULT was running.
  // In piggyback mode the sampler's invocation count therefore reconciles
  // with handler_entries (prof_check and prof_test assert it).
  if (prof::piggyback_on()) prof_sample_interrupted(tls, t, uctx);
  if (t->no_preempt_depth > 0) {
    t->preempt_pending = true;
    w->metrics.handler_deferred.add(1);
    LPT_TRACE_EVENT(trace::EventType::kHandlerDeferred, t->trace_id);
    errno = saved_errno;
    return;
  }

  // Claim scheduler-context ownership before touching it (worker.hpp
  // host_token). A failed claim means the watchdog force-replaced this KLT's
  // worker host: the ULT is orphaned here and will hit the orphan landing at
  // its next suspension — this tick does nothing.
  {
    KltCtl* expect = tls->klt;
    if (!w->host_token.compare_exchange_strong(expect, nullptr,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      errno = saved_errno;
      return;
    }
  }

  if (t->cancel_requested.load(std::memory_order_relaxed)) {
    // Directed cancel (docs/robustness.md "Self-healing"): this tick was (or
    // might as well have been) aimed at a ULT with a pending cancel request
    // that never reached a cancellation point. Unwind it through the
    // fault-isolation landing instead of rescheduling it: mark
    // Failed(kCancelled), abandon the interrupted frames (no sigreturn — the
    // kFault post action re-unblocks the signals), and let the post action
    // quarantine the stack and wake joiners. Same async-signal-safe recovery
    // as fault.cpp's handler, minus the classification.
    t->fault.kind = FaultKind::kCancelled;
    t->store_state(ThreadState::kFailed);
    w->metrics.ult_faults.add(1);
    w->metrics.ult_cancels.add(1);
    LPT_TRACE_EVENT(trace::EventType::kUltCancel, t->trace_id, 1);
    tls->in_ult = false;
    w->post = PostAction{PostKind::kFault, t, nullptr, nullptr};
    if (t->preempt == Preempt::KltSwitch) {
      // The interrupted thread may have KLT-dependent state frozen on this
      // kernel thread (§3.1.2): retire the poisoned KLT to a pool spare,
      // exactly like a contained fault under KLT-switching.
      KltCtl* self = tls->klt;
      KltCtl* b = self != nullptr ? rt->klt_pool().try_pop(w->rank) : nullptr;
      if (b != nullptr) {
        rt->note_klt_retired();
        LPT_TRACE_EVENT(trace::EventType::kKltRetired, t->trace_id,
                        static_cast<std::uint64_t>(self->trace_id >= 0
                                                       ? self->trace_id
                                                       : 0));
        b->action = KltAction::kBecomeWorker;
        b->assign_worker = w;
        // Unlike the fault handler (sigaltstack), this handler is running on
        // the cancelled ULT's own stack — and the kFault post action b will
        // execute scrubs that stack for quarantine. Defer b's wake to
        // klt_main (pending_wake), which posts it only after the jump below
        // has moved this KLT onto its native stack.
        self->pending_wake = b;
        self->pending_wake_in_handler = false;
        self->native_op = KltNativeOp::kExit;
        context_jump(self->native_ctx);  // klt_main wakes b, then returns
      }
      // No spare: keep hosting the worker here (the cancelled thread's
      // KLT-local damage, if any, is the app's stated risk) and request a
      // replacement like the fault path does.
      if (!rt->klt_creator().saturated() && !rt->klt_cap_reached())
        rt->klt_creator().request();
    }
    context_jump(w->sched_ctx);
  }

  // Timer-fire → handler-entry latency: the sender stamped the worker; all
  // operations here (exchange, histogram fetch_add, ring record) are
  // async-signal-safe.
  if (LPT_TRACE_ON()) {
    const std::int64_t now = trace::now_ns();
    const std::int64_t sent =
        w->preempt_sent_ns.exchange(0, std::memory_order_relaxed);
    std::uint64_t delivery = 0;
    if (sent != 0 && now > sent) {
      delivery = static_cast<std::uint64_t>(now - sent);
      w->hist_delivery.record(static_cast<std::int64_t>(delivery));
    }
    trace::emit(trace::EventType::kHandlerEnter, t->trace_id, delivery);
  }

  if (t->preempt == Preempt::SignalYield)
    detail::handler_signal_yield(w, t);
  else
    detail::handler_klt_switch(rt, w, t);

  errno = saved_errno;
}

/// The resume signal only needs to interrupt sigsuspend; the wake token is
/// the KltCtl::sig_resume flag set by the waker.
void resume_handler(int /*signo*/) {}

/// LPT_PROF_HZ sampling handler: records a sample and returns — it never
/// switches contexts, so unlike the preemption path it also profiles
/// Preempt::None ULTs. Ticks landing outside ULT code (scheduler/idle) are
/// simply not counted; the reconciliation contract only covers ULT samples.
void prof_handler(int /*signo*/, siginfo_t* /*si*/, void* uctx) {
  const int saved_errno = errno;
  WorkerTls* tls = worker_tls();
  if (tls->worker != nullptr && tls->in_ult && tls->hosted_ult != nullptr)
    prof_sample_interrupted(tls, tls->hosted_ult, uctx);
  errno = saved_errno;
}

}  // namespace

void install_handlers() {
  static bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &preempt_handler;
    sigemptyset(&sa.sa_mask);
    // SA_RESTART per §3.5.1; no SA_ONSTACK — the frame must live on the ULT
    // stack so it suspends and resumes with the thread.
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    LPT_CHECK(sigaction(preempt_signo(), &sa, nullptr) == 0);

    struct sigaction sr;
    std::memset(&sr, 0, sizeof(sr));
    sr.sa_handler = &resume_handler;
    sigemptyset(&sr.sa_mask);
    sr.sa_flags = SA_RESTART;
    LPT_CHECK(sigaction(resume_signo(), &sr, nullptr) == 0);

    struct sigaction sp;
    std::memset(&sp, 0, sizeof(sp));
    sp.sa_sigaction = &prof_handler;
    sigemptyset(&sp.sa_mask);
    // Keep the preempt signal blocked while sampling so a preemption cannot
    // context-switch away mid-sample on the same KLT.
    sigaddset(&sp.sa_mask, preempt_signo());
    sp.sa_flags = SA_SIGINFO | SA_RESTART;
    LPT_CHECK(sigaction(prof_signo(), &sp, nullptr) == 0);
    return true;
  }();
  (void)installed;
}

void block_runtime_signals() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, preempt_signo());
  sigaddset(&set, resume_signo());
  sigaddset(&set, prof_signo());
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
}

void unblock_preempt() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, preempt_signo());
  sigaddset(&set, prof_signo());
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
}

void send_preempt(Worker& w, int initiator_rank) {
  // Shutdown gate: the destructor clears every worker's current_klt before
  // joining, but a racing sender may already hold a stale KltCtl*. Checking
  // shutting_down() *after* the load closes that window for every sender
  // that starts once shutdown is visible (timer threads and in-handler
  // chain forwards both come through here).
  KltCtl* k = w.current_klt.load(std::memory_order_acquire);
  if (k == nullptr || w.rt == nullptr || w.rt->shutting_down()) return;
  w.metrics.ticks_sent.add(1);
  // Stamp the send for delivery-latency accounting (overwritten by a newer
  // send before the handler consumes it — the handler then measures against
  // the most recent delivery attempt, which is the one it serves).
  if (LPT_TRACE_ON())
    w.preempt_sent_ns.store(trace::now_ns(), std::memory_order_relaxed);
  sigval v;
  v.sival_int = initiator_rank;
  // pthread_sigqueue is a thin rt_tgsigqueueinfo wrapper; safe from handlers.
  // Routed through sys for fault injection; a failed send (injected EAGAIN
  // for a full RT-signal queue, or a target mid-exit) just skips this tick —
  // preemption is periodic, the next interval retries.
  sys::pthread_sigqueue(k->pthread, preempt_signo(), v);
}

void send_prof_tick(Worker& w) {
  // Same stale-KltCtl shutdown gate as send_preempt.
  KltCtl* k = w.current_klt.load(std::memory_order_acquire);
  if (k == nullptr || w.rt == nullptr || w.rt->shutting_down()) return;
  sigval v;
  v.sival_int = -1;
  sys::pthread_sigqueue(k->pthread, prof_signo(), v);
}

}  // namespace lpt::signals
