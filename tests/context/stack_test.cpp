#include "context/stack.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>

#include "common/sys.hpp"

namespace lpt {
namespace {

TEST(Stack, AllocatesUsableMemory) {
  Stack s(64 * 1024);
  ASSERT_TRUE(s.valid());
  ASSERT_GE(s.size(), 64u * 1024);
  // The whole usable area must be writable.
  std::memset(s.base(), 0xab, s.size());
  EXPECT_EQ(static_cast<unsigned char*>(s.base())[0], 0xab);
  EXPECT_EQ(static_cast<unsigned char*>(s.base())[s.size() - 1], 0xab);
}

TEST(Stack, SizeRoundedUpToPage) {
  Stack s(1000);
  EXPECT_GE(s.size(), 1000u);
  EXPECT_EQ(s.size() % 4096, 0u);
}

TEST(Stack, MoveTransfersOwnership) {
  Stack a(16 * 1024);
  void* base = a.base();
  Stack b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.base(), base);

  Stack c(16 * 1024);
  c = std::move(b);
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(c.base(), base);
}

TEST(Stack, GuardPageFaultsOnUnderflow) {
  Stack s(16 * 1024);
  auto* below = static_cast<volatile char*>(s.base()) - 1;
  EXPECT_DEATH({ *below = 1; }, "");
}

TEST(StackPool, ReusesReleasedStacks) {
  StackPool pool(32 * 1024);
  Stack s1 = pool.acquire();
  void* base = s1.base();
  pool.release(std::move(s1));
  EXPECT_EQ(pool.cached(), 1u);
  Stack s2 = pool.acquire();
  EXPECT_EQ(s2.base(), base);
  EXPECT_EQ(pool.cached(), 0u);
}

TEST(StackPool, GrowsOnDemand) {
  StackPool pool(16 * 1024);
  Stack a = pool.acquire();
  Stack b = pool.acquire();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.base(), b.base());
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.cached(), 2u);
}

TEST(StackPool, CapBoundsFreeListAndCountsShed) {
  StackPool pool(16 * 1024, /*max_cached=*/2);
  Stack a = pool.acquire();
  Stack b = pool.acquire();
  Stack c = pool.acquire();
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));  // over the cap: unmapped, not cached
  EXPECT_EQ(pool.cached(), 2u);
  EXPECT_EQ(pool.total_shed(), 1u);
  EXPECT_EQ(pool.max_cached(), 2u);
}

TEST(StackPool, ShedAllEmptiesCache) {
  StackPool pool(16 * 1024, 8);
  Stack a = pool.acquire();
  Stack b = pool.acquire();  // distinct: acquired before either release
  pool.release(std::move(a));
  pool.release(std::move(b));
  EXPECT_EQ(pool.cached(), 2u);
  EXPECT_EQ(pool.shed_all(), 2u);
  EXPECT_EQ(pool.cached(), 0u);
  EXPECT_EQ(pool.total_shed(), 2u);
  // Still usable afterwards.
  Stack s = pool.acquire();
  EXPECT_TRUE(s.valid());
}

TEST(StackPool, TryAcquireReportsErrnoOnInjectedFailure) {
  StackPool pool(16 * 1024, 4);
  // Every mapping fails: even the shed-and-retry fallback cannot help, and
  // the caller gets an invalid stack plus the reason.
  ASSERT_TRUE(sys::configure_faults("mmap:every=1"));
  int err = 0;
  Stack s = pool.try_acquire(&err);
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(err, ENOMEM);
  sys::reset_faults();
  err = -1;
  Stack ok = pool.try_acquire(&err);
  EXPECT_TRUE(ok.valid());
}

}  // namespace
}  // namespace lpt
