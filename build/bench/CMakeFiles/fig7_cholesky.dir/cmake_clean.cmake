file(REMOVE_RECURSE
  "CMakeFiles/fig7_cholesky.dir/fig7_cholesky.cpp.o"
  "CMakeFiles/fig7_cholesky.dir/fig7_cholesky.cpp.o.d"
  "fig7_cholesky"
  "fig7_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
