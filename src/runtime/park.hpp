// Unified parking registry (docs/robustness.md, "Deadlock detection &
// recovery"). Every blocking primitive — Mutex, CondVar, RwLock, Semaphore,
// Barrier, Latch, WaitGroup, join, sleep and the timed waits — declares a
// *waiter ULT → resource → owner ULT(s)* edge here at park time and clears
// it at wake. The registry is the pluggable blocking/wakeup interface the
// ROADMAP asks for (the future I/O reactor parks through the same calls);
// today its consumer is the watchdog-driven deadlock detector
// (Runtime::deadlock_poll, defined in park.cpp) and the abandoned-lock
// tracker (Runtime::note_owner_finished).
//
// Cost discipline matches prof/metrics: when disarmed (LPT_DEADLOCK=0) every
// entry point is one relaxed load + predicted branch — no atomics, no slab
// writes, so the yield/mutex fast paths stay untouched. When armed, a park
// claims one slot in a process-global never-freed slab with a versioned CAS
// and the waiter frees it at wake; the detector reads slots lock-free with a
// seqlock-style re-read and pins a slot (phase kPinned) only for the short
// window where it dereferences the primitive's guard.
//
// Slot state word: gen(30 bits) | phase(2 bits). Claim bumps the generation,
// so a detector snapshot taken against one occupancy can never be confused
// with a later tenant of the same slot (ABA-safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace lpt {

struct ThreadCtl;
class Spinlock;

namespace park {

/// Owner-tracking record for an ownable resource (Mutex, RwLock): who holds
/// it right now, readable lock-free by the deadlock detector and the
/// abandonment scan. Lives in a process-global never-freed slab, so the
/// pointer a primitive caches stays valid across Runtime lifetimes (same
/// contract as prof::LockStats).
struct ResourceState {
  static constexpr int kMaxOwners = 4;
  /// Current owners: the writer (or mutex holder) in any slot; RwLock
  /// readers CAS-insert into free slots. Cleared on release/handoff.
  std::atomic<ThreadCtl*> owners[kMaxOwners] = {};
  /// More simultaneous readers than slots: tracking is incomplete and
  /// abandonment detection degrades to best-effort for this resource.
  std::atomic<bool> owner_overflow{false};
  /// Published (release) once kind/primitive/on_abandon are written; the
  /// abandonment scan reads nothing else before it (acquire).
  std::atomic<bool> ready{false};
  std::uint8_t kind = 0;  ///< prof::WaitKind of the primitive
  void* primitive = nullptr;
  /// Abandonment hook, called from finalize context when an owner ULT ends
  /// while still recorded as holding this resource: must clear the
  /// primitive's own owner record and, when `release`, force-release the
  /// resource so parked siblings unwedge. Returns true when a release
  /// actually freed or handed off the resource.
  bool (*on_abandon)(void* primitive, ThreadCtl* dead, bool release) = nullptr;
};

namespace internal {
extern std::atomic<bool> g_armed;
}

/// True when the registry records edges (RuntimeOptions::deadlock_detection).
/// One relaxed load — the whole disarmed-cost story hangs on this.
inline bool armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// True when abandoned resources are force-released (LPT_ABANDON_RELEASE).
bool abandon_release_enabled();

/// Arm/disarm, called by the Runtime constructor/destructor. Arming resets
/// the detector's cycle memory (pending/reported hashes) so sequential
/// runtimes start clean; slots and resource records persist (never freed).
void arm(bool deadlock_detection, bool abandon_release);
void disarm();

/// Attach an owner-tracking record for `primitive`. Returns nullptr when
/// disarmed or the slab is exhausted (the primitive stays untracked — missed
/// detection, never false positives). Call under the primitive's guard.
ResourceState* acquire_resource(std::uint8_t kind, void* primitive,
                                bool (*on_abandon)(void*, ThreadCtl*, bool));

/// Record/clear `t` as an owner of `rs`. Both tolerate rs == nullptr (slab
/// exhaustion) and maintain t->owned_tracked — the per-ULT count that lets
/// a normally-exiting thread skip the abandonment scan in O(1). add_owner
/// sets owner_overflow instead of inserting when all slots are taken;
/// remove_owner decrements only when it actually cleared a slot, keeping the
/// two in agreement. Callers serialize per resource via the primitive's
/// guard (or the handoff discipline: a waker edits on behalf of a thread it
/// exclusively owns).
void add_owner(ResourceState* rs, ThreadCtl* t);
void remove_owner(ResourceState* rs, ThreadCtl* t);

/// Declare "self is parked": called while holding the primitive's `guard`,
/// after self was pushed onto `waiters`, before suspend_block. The detector
/// follows res->owners (ownable resources) or `direct_owner` (join: the
/// joined thread) for the waits-for edge; both may be null (CondVar & co.
/// have no owner — such waits can never be cycle members). `timed` waiters
/// (timed acquires, join_for, sleep) are recorded but excluded from cycle
/// breaking: their waits self-resolve by timeout. `waiters` may be null only
/// for waits with no competing waker (sleep).
void park(ThreadCtl* self, std::uint8_t kind, bool timed, ResourceState* res,
          ThreadCtl* direct_owner, Spinlock* guard,
          std::vector<ThreadCtl*>* waiters);

/// Clear the edge; called by the waiter right after suspend_block returns
/// (before the primitive can be destroyed). Spins out a detector pin. No-op
/// when park() registered nothing or a deadlock break already freed the slot
/// on the victim's behalf.
void unpark(ThreadCtl* self);

// ----- introspection (tests, detector fast path) -----

/// Registered parked waiters right now.
std::uint32_t parked_count();
/// Parks that found no free slot (unregistered, counted, never an error).
std::uint64_t slot_overflows();

/// Test-only: one detector-style pass over the registry without a Runtime —
/// seqlock-read every occupied slot, pin it, re-check coherence, unpin.
/// Returns the number of coherently-read slots. Exercises the slot protocol
/// against concurrent park/unpark (TSan coverage in park_test.cpp).
std::uint32_t debug_scan();

}  // namespace park
}  // namespace lpt
