# Empty dependencies file for lpt_apps.
# This may be replaced when dependencies are built.
