// Tier-1 tests of the always-on metrics layer (docs/observability.md):
// snapshot coherence against stats(), queue-depth bookkeeping, preemption
// tick-effectiveness invariants, the Prometheus/JSON writers (round-tripped
// through tests/support/prom_parser.hpp), and the background publisher.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "support/prom_parser.hpp"

namespace lpt {
namespace {

std::string tmp_path(const char* tag) {
  return "/tmp/lpt_metrics_" + std::to_string(::getpid()) + "_" + tag;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string render(const Runtime& rt, metrics::Format fmt) {
  const std::string path = tmp_path("render");
  std::FILE* f = std::fopen(path.c_str(), "w+");
  EXPECT_NE(f, nullptr);
  EXPECT_TRUE(rt.write_metrics(f, fmt));
  std::fclose(f);
  std::string out = slurp(path);
  std::remove(path.c_str());
  return out;
}

TEST(Metrics, SnapshotMonotonicAndAgreesWithStats) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);

  const metrics::Snapshot before = rt.metrics_snapshot();
  std::vector<Thread> ts;
  for (int i = 0; i < 40; ++i)
    ts.push_back(rt.spawn([] { busy_spin_ns(100'000); }));
  for (auto& t : ts) t.join();
  const metrics::Snapshot after = rt.metrics_snapshot();

  // Monotonicity between snapshots.
  EXPECT_GE(after.taken_ns, before.taken_ns);
  EXPECT_GE(after.uptime_ns, before.uptime_ns);
  EXPECT_GE(after.dispatches, before.dispatches + 40);
  EXPECT_GE(after.exits, before.exits + 40);
  EXPECT_EQ(after.ults_spawned, before.ults_spawned + 40);
  EXPECT_EQ(after.ults_live, 0);

  // Quiesced: the snapshot and stats() must tell one story (stats() is
  // built from the snapshot, but the test pins the contract).
  const Runtime::Stats s = rt.stats();
  ASSERT_EQ(s.workers.size(), after.workers.size());
  std::uint64_t stats_scheduled = 0, stats_steals = 0, stats_sy = 0,
                stats_ks = 0;
  for (const auto& w : s.workers) {
    stats_scheduled += w.scheduled;
    stats_steals += w.steals;
    stats_sy += w.preempt_signal_yield;
    stats_ks += w.preempt_klt_switch;
  }
  EXPECT_EQ(stats_scheduled, after.dispatches);
  EXPECT_EQ(stats_steals, after.steals);
  EXPECT_EQ(stats_sy, after.preempt_signal_yield);
  EXPECT_EQ(stats_ks, after.preempt_klt_switch);
  EXPECT_EQ(after.preemptions, rt.total_preemptions());
  EXPECT_EQ(s.klts_created, after.klts_created);
  EXPECT_EQ(s.active_workers, after.active_workers);
  EXPECT_EQ(s.stacks_cached, after.stacks_cached);
}

TEST(Metrics, QueueDepthZeroAtQuiesceForEveryScheduler) {
  for (SchedulerKind kind : {SchedulerKind::WorkStealing,
                             SchedulerKind::Packing,
                             SchedulerKind::Priority}) {
    RuntimeOptions o;
    o.num_workers = 3;
    o.scheduler = kind;
    Runtime rt(o);
    std::vector<Thread> ts;
    for (int i = 0; i < 60; ++i)
      ts.push_back(rt.spawn([] { this_thread::yield(); }));
    for (auto& t : ts) t.join();
    const metrics::Snapshot s = rt.metrics_snapshot();
    EXPECT_EQ(s.run_queue_depth, 0)
        << "scheduler kind " << static_cast<int>(kind);
    for (const auto& w : s.workers)
      EXPECT_EQ(w.queue_depth, 0) << "worker " << w.rank;
  }
}

TEST(Metrics, TickEffectivenessInvariants) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  Thread t = rt.spawn([] { busy_spin_ns(30'000'000); }, sy);
  t.join();

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.ticks_sent, 0u);
  EXPECT_GT(s.handler_entries, 0u);
  // Signals coalesce but are never invented: every handler entry that found
  // a preemptible ULT traces back to a sent tick.
  EXPECT_LE(s.handler_entries, s.ticks_sent);
  // Every actual preemption came through the handler.
  EXPECT_LE(s.preemptions, s.handler_entries);
  EXPECT_GT(s.tick_effectiveness(), 0.0);
  EXPECT_LE(s.tick_effectiveness(), 1.0);
}

TEST(Metrics, NoPreemptGuardCountsDeferredTicks) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  Thread t = rt.spawn(
      [] {
        NoPreemptGuard guard;
        busy_spin_ns(20'000'000);
      },
      sy);
  t.join();
  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.handler_deferred, 0u);
  // Deferred entries are entries too.
  EXPECT_LE(s.handler_deferred, s.handler_entries);
}

TEST(Metrics, PrometheusRoundTrip) {
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn([] { busy_spin_ns(3'000'000); }, sy));
  for (auto& t : ts) t.join();

  const metrics::Snapshot snap = rt.metrics_snapshot();
  const std::string text = render(rt, metrics::Format::kPrometheus);
  ASSERT_FALSE(text.empty());
  const promtest::Parsed p = promtest::parse(text);
  for (const std::string& e : p.errors) ADD_FAILURE() << e;
  ASSERT_TRUE(p.ok());

  // Key families present and correctly typed.
  for (const char* fam :
       {"lpt_dispatches_total", "lpt_yields_total", "lpt_steals_total",
        "lpt_preemptions_total", "lpt_preempt_ticks_sent_total",
        "lpt_preempt_handler_entries_total", "lpt_watchdog_flags_total",
        "lpt_ults_spawned_total", "lpt_klts_created_total"})
    EXPECT_TRUE(p.has_family(fam)) << fam;
  for (const char* gauge :
       {"lpt_run_queue_depth", "lpt_ults_live", "lpt_klt_pool_idle",
        "lpt_workers", "lpt_active_workers"})
    EXPECT_TRUE(p.has_family(gauge)) << gauge;

  // Values survive the round trip (counters only grow between the snapshot
  // and the render, so >= on the totals).
  EXPECT_GE(p.sum("lpt_dispatches_total"),
            static_cast<double>(snap.dispatches));
  EXPECT_GE(p.sum("lpt_preemptions_total"),
            static_cast<double>(snap.preemptions));
  EXPECT_EQ(p.sum("lpt_workers"), 2.0);
  EXPECT_EQ(p.sum("lpt_ults_spawned_total"),
            static_cast<double>(snap.ults_spawned));
  // One series per worker per counter family.
  EXPECT_NE(p.find("lpt_dispatches_total", {{"worker", "0"}}), nullptr);
  EXPECT_NE(p.find("lpt_dispatches_total", {{"worker", "1"}}), nullptr);
  EXPECT_NE(p.find("lpt_preemptions_total",
                   {{"worker", "0"}, {"kind", "signal_yield"}}),
            nullptr);
}

TEST(Metrics, JsonWriterEmitsBalancedObject) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  rt.spawn([] {}).join();
  const std::string text = render(rt, metrics::Format::kJson);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  int depth = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(text.find("\"totals\""), std::string::npos);
  EXPECT_NE(text.find("\"tick_effectiveness\""), std::string::npos);
  EXPECT_NE(text.find("\"workers\""), std::string::npos);
  EXPECT_NE(text.find("\"watchdog\""), std::string::npos);
}

TEST(Metrics, PublisherAtomicallyRewritesFile) {
  const std::string path = tmp_path("pub.prom");
  RuntimeOptions o;
  o.num_workers = 2;
  o.metrics_file = path;
  o.metrics_period_ms = 50;
  {
    Runtime rt(o);
    EXPECT_TRUE(rt.metrics_publishing());
    std::vector<Thread> ts;
    for (int i = 0; i < 10; ++i)
      ts.push_back(rt.spawn([] { busy_spin_ns(2'000'000); }));
    for (auto& t : ts) t.join();
    usleep(120'000);  // at least one periodic publish
    const promtest::Parsed mid = promtest::parse(slurp(path));
    EXPECT_TRUE(mid.ok());
    EXPECT_TRUE(mid.has_family("lpt_dispatches_total"));
  }
  // The destructor's final publish reflects the quiesced totals.
  const promtest::Parsed fin = promtest::parse(slurp(path));
  EXPECT_TRUE(fin.ok());
  EXPECT_GE(fin.sum("lpt_dispatches_total"), 10.0);
  EXPECT_EQ(fin.sum("lpt_run_queue_depth"), 0.0);
  std::remove(path.c_str());
}

TEST(Metrics, PublisherWritesJsonForJsonPath) {
  const std::string path = tmp_path("pub.json");
  RuntimeOptions o;
  o.num_workers = 1;
  o.metrics_file = path;
  {
    Runtime rt(o);
    rt.spawn([] {}).join();
  }
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"totals\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Metrics, TimeInStateAccruesUnderWatchdog) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.watchdog_period_ms = 20;  // watchdog thread also drives state sampling
  Runtime rt(o);
  Thread t = rt.spawn([] { busy_spin_ns(120'000'000); });
  t.join();
  const metrics::Snapshot s = rt.metrics_snapshot();
  ASSERT_EQ(s.workers.size(), 1u);
  const auto& w = s.workers[0];
  const std::uint64_t running = w.time_in_state_ns[static_cast<int>(
      metrics::WorkerState::kRunningUlt)];
  EXPECT_GT(running, 0u);
}

}  // namespace
}  // namespace lpt
