#include "runtime/scheduler.hpp"

#include "common/assert.hpp"
#include "runtime/instrument.hpp"
#include "runtime/runtime.hpp"

namespace lpt {

void WorkStealingScheduler::init(Runtime& rt) {
  rt_ = &rt;
  queues_.clear();
  rngs_.clear();
  for (int i = 0; i < rt.num_workers(); ++i) {
    queues_.push_back(std::make_unique<ThreadQueue>());
    rngs_.push_back(std::make_unique<Xoshiro256>(0x5eed0000u + i));
  }
}

ThreadCtl* WorkStealingScheduler::pick(Worker& w) {
  if (ThreadCtl* t = queues_[w.rank]->pop_front()) return t;
  const int n = static_cast<int>(queues_.size());
  if (n == 1) return nullptr;
  // Steal from a randomly chosen remote queue when the local one is empty.
  Xoshiro256& rng = *rngs_[w.rank];
  for (int attempt = 0; attempt < 4; ++attempt) {
    const int v = static_cast<int>(rng.next_below(n));
    if (v == w.rank) continue;
    if (ThreadCtl* t = queues_[v]->pop_front()) {
      w.metrics.steals.inc();
      LPT_TRACE_EVENT(trace::EventType::kSteal, t->trace_id,
                      static_cast<std::uint64_t>(v));
      return t;
    }
  }
  return nullptr;
}

void WorkStealingScheduler::enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) {
  (void)kind;  // preempted threads go to the local FIFO like yields (§4.1)
  const int q = hint != nullptr
                    ? hint->rank
                    : t->home_pool % static_cast<int>(queues_.size());
  queues_[q]->push_back(t);
}

bool WorkStealingScheduler::has_work() const {
  for (const auto& q : queues_)
    if (!q->empty()) return true;
  return false;
}

std::int64_t WorkStealingScheduler::queue_depth(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(queues_.size())) return 0;
  return queues_[rank]->depth();
}

}  // namespace lpt
