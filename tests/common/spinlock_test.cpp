#include "common/spinlock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace lpt {
namespace {

TEST(Spinlock, LockUnlockSingleThread) {
  Spinlock l;
  l.lock();
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  Spinlock l;
  l.lock();
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock l;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinlockGuard g(l);
        ++counter;
      }
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

}  // namespace
}  // namespace lpt
