// Figure 6 reproduction: relative overhead of preemptive M:N threads vs
// nonpreemptive M:N threads over a compute-intensive benchmark (56 workers x
// 10 threads), as a function of the timer interval, on the Skylake and KNL
// cost models. Per-worker aligned timer.
//
// Paper anchors: KLT-switching(naive) > (futex) > (futex, local pool) >
// signal-yield ~= timer-interruption-only; ~<1% at 1 ms on Skylake; KNL
// needs ~10 ms for <1%.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/workloads/compute_loop.hpp"

using namespace lpt;
using namespace lpt::sim;

namespace {

const char* const kVariantKeys[] = {"klt_naive", "klt_futex", "klt_futex_local",
                                    "signal_yield", "timer_only"};

void run_machine(const CostModel& cm, bench::JsonReport& json,
                 const std::string& mkey) {
  std::printf("--- Fig 6 (%s): relative overhead vs timer interval ---\n",
              cm.name.c_str());
  const Time intervals[] = {100'000,   200'000,   500'000,  1'000'000,
                            2'000'000, 5'000'000, 10'000'000};
  const Fig6Variant variants[] = {
      Fig6Variant::kKltSwitchNaive, Fig6Variant::kKltSwitchFutex,
      Fig6Variant::kKltSwitchFutexLocal, Fig6Variant::kSignalYield,
      Fig6Variant::kTimerInterruptionOnly};

  Fig6Config cfg;
  cfg.workers = cm.num_cores;

  Table table({"interval", "KLT-sw (naive)", "KLT-sw (futex)",
               "KLT-sw (futex+local)", "Signal-yield", "Timer only"});
  double oh_1ms[5] = {};
  double oh_100us[5] = {};
  for (Time iv : intervals) {
    cfg.interval = iv;
    std::vector<std::string> row{Table::fmt("%5.1f ms", iv / 1e6)};
    for (int i = 0; i < 5; ++i) {
      const double oh = fig6_overhead(cm, cfg, variants[i]);
      if (iv == 1'000'000) oh_1ms[i] = oh;
      if (iv == 100'000) oh_100us[i] = oh;
      json.set(mkey + "." + kVariantKeys[i] + ".overhead_pct." +
                   std::to_string(iv / 1000) + "us",
               oh * 100.0);
      row.push_back(Table::fmt("%6.2f%%", oh * 100.0));
    }
    table.add_row(row);
  }
  table.print();

  std::printf("Shape checks vs paper:\n");
  std::printf("  [%s] ordering at 100 us: naive > futex > futex+local "
              "(%.2f%% > %.2f%% > %.2f%%)\n",
              (oh_100us[0] > oh_100us[1] && oh_100us[1] > oh_100us[2])
                  ? "OK"
                  : "MISMATCH",
              oh_100us[0] * 100, oh_100us[1] * 100, oh_100us[2] * 100);
  std::printf("  [%s] signal-yield ~= timer-interruption-only "
              "(%.2f%% vs %.2f%%)\n",
              oh_100us[3] < oh_100us[4] * 1.8 + 0.002 ? "OK" : "MISMATCH",
              oh_100us[3] * 100, oh_100us[4] * 100);
  const bool skylake = cm.name == "Skylake";
  const double target = skylake ? oh_1ms[2] : 0.0;
  if (skylake)
    std::printf("  [%s] optimized KLT-switching < 1%% at 1 ms (%.2f%%)\n",
                target < 0.01 ? "OK" : "MISMATCH", target * 100);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 6: overhead of preemptive vs nonpreemptive M:N "
              "threads ===\n");
  std::printf("56 workers x 10 compute threads, per-worker aligned timer.\n\n");
  bench::JsonReport json("fig6_overhead");
  run_machine(CostModel::skylake(), json, "skylake");
  CostModel knl = CostModel::knl();
  // Paper runs the same 56-worker benchmark shape on KNL.
  knl.num_cores = 56;
  run_machine(knl, json, "knl");
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
