file(REMOVE_RECURSE
  "CMakeFiles/deadlock_prevention.dir/deadlock_prevention.cpp.o"
  "CMakeFiles/deadlock_prevention.dir/deadlock_prevention.cpp.o.d"
  "deadlock_prevention"
  "deadlock_prevention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_prevention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
