#include "apps/linalg/blas.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace lpt::apps {
namespace {

TEST(Blas, PotrfMatchesHandComputedCholesky) {
  // A = L L^T with known L = [[2,0],[1,3]] -> A = [[4,2],[2,10]].
  std::vector<double> a = {4, 2, 2, 10};  // column-major 2x2
  ASSERT_TRUE(dpotrf_lower(2, a.data(), 2));
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[1], 1.0, 1e-12);
  EXPECT_NEAR(a[3], 3.0, 1e-12);
}

TEST(Blas, PotrfRejectsIndefiniteMatrix) {
  std::vector<double> a = {1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_FALSE(dpotrf_lower(2, a.data(), 2));
}

TEST(Blas, PotrfReconstructsSpdMatrix) {
  constexpr int n = 24;
  std::vector<double> a(n * n), orig;
  make_spd(n, a.data(), n, 7);
  orig = a;
  ASSERT_TRUE(dpotrf_lower(n, a.data(), n));
  // Check L * L^T == original (lower triangle).
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) {
      double s = 0;
      for (int k = 0; k <= j; ++k) s += a[i + k * n] * a[j + k * n];
      EXPECT_NEAR(s, orig[i + j * n], 1e-9) << "at (" << i << "," << j << ")";
    }
}

TEST(Blas, GemmNtMinusMatchesNaive) {
  constexpr int m = 5, n = 4, k = 3;
  std::vector<double> a(m * k), b(n * k), c(m * n, 1.0), ref(m * n, 1.0);
  for (int i = 0; i < m * k; ++i) a[i] = i * 0.25 + 1;
  for (int i = 0; i < n * k; ++i) b[i] = i * 0.5 - 2;
  dgemm_nt_minus(m, n, k, a.data(), m, b.data(), n, c.data(), m);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      double s = ref[i + j * m];
      for (int p = 0; p < k; ++p) s -= a[i + p * m] * b[j + p * n];
      EXPECT_NEAR(c[i + j * m], s, 1e-12);
    }
}

TEST(Blas, SyrkMatchesGemmOnLowerTriangle) {
  constexpr int n = 6, k = 4;
  std::vector<double> a(n * k);
  for (int i = 0; i < n * k; ++i) a[i] = 0.3 * i - 1;
  std::vector<double> c1(n * n, 2.0), c2(n * n, 2.0);
  dsyrk_ln_minus(n, k, a.data(), n, c1.data(), n);
  dgemm_nt_minus(n, n, k, a.data(), n, a.data(), n, c2.data(), n);
  EXPECT_NEAR(lower_max_diff(n, c1.data(), n, c2.data(), n), 0.0, 1e-12);
}

TEST(Blas, TrsmSolvesAgainstLowerTriangular) {
  constexpr int m = 4, n = 3;
  // L lower triangular with positive diagonal.
  std::vector<double> l = {2, 1, 4, 0, 3, 5, 0, 0, 6};  // 3x3 col-major
  std::vector<double> x(m * n);
  for (int i = 0; i < m * n; ++i) x[i] = 0.7 * i - 1;
  std::vector<double> b = x;  // B := X * L^T, then solve back
  // compute B = X * L^T
  std::vector<double> bb(m * n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int p = 0; p < n; ++p) {
      const double ljp = l[j + p * n];  // L(j,p)
      if (ljp == 0.0) continue;
      for (int i = 0; i < m; ++i) bb[i + j * m] += x[i + p * m] * ljp;
    }
  dtrsm_rltn(m, n, l.data(), n, bb.data(), m);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(bb[i], x[i], 1e-10);
  (void)b;
}

TEST(Blas, MakeSpdIsSymmetricAndFactorizable) {
  constexpr int n = 16;
  std::vector<double> a(n * n);
  make_spd(n, a.data(), n, 42);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) EXPECT_EQ(a[i + j * n], a[j + i * n]);
  EXPECT_TRUE(dpotrf_lower(n, a.data(), n));
}

}  // namespace
}  // namespace lpt::apps
