// Parameterized property sweeps over the context/stack substrate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "context/context.hpp"
#include "context/stack.hpp"

namespace lpt {
namespace {

struct HopState {
  Context main_ctx;
  Context ult_ctx;
  std::uint64_t checksum = 0;
  int hops = 0;
};

void hop_entry(void* arg) {
  auto* hs = static_cast<HopState*>(arg);
  std::uint64_t acc = 0x243f6a8885a308d3ull;
  for (int i = 0; i < hs->hops; ++i) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    context_switch(hs->ult_ctx, hs->main_ctx);
  }
  hs->checksum = acc;
  context_switch(hs->ult_ctx, hs->main_ctx);
  LPT_CHECK(false);
}

std::uint64_t expected_checksum(int hops) {
  std::uint64_t acc = 0x243f6a8885a308d3ull;
  for (int i = 0; i < hops; ++i)
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  return acc;
}

class StackSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StackSizeSweep, ContextRunsOnEveryStackSize) {
  const std::size_t size = GetParam();
  Stack stack(size);
  ASSERT_GE(stack.size(), size);
  HopState hs;
  hs.hops = 16;
  hs.ult_ctx = make_context(stack.base(), stack.size(), hop_entry, &hs);
  for (int i = 0; i <= hs.hops; ++i) context_switch(hs.main_ctx, hs.ult_ctx);
  EXPECT_EQ(hs.checksum, expected_checksum(hs.hops));
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackSizeSweep,
                         ::testing::Values(4096, 8192, 16384, 65536,
                                           262144, 1048576));

class HopCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(HopCountSweep, RegisterStateSurvivesManyHops) {
  Stack stack(64 * 1024);
  HopState hs;
  hs.hops = GetParam();
  hs.ult_ctx = make_context(stack.base(), stack.size(), hop_entry, &hs);
  for (int i = 0; i <= hs.hops; ++i) context_switch(hs.main_ctx, hs.ult_ctx);
  EXPECT_EQ(hs.checksum, expected_checksum(hs.hops));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HopCountSweep,
                         ::testing::Values(0, 1, 2, 64, 1000, 10000));

TEST(StackPoolProperty, AcquireReleaseConservesDistinctStacks) {
  StackPool pool(16 * 1024);
  constexpr int kN = 24;
  std::vector<Stack> stacks;
  std::vector<void*> bases;
  for (int i = 0; i < kN; ++i) {
    stacks.push_back(pool.acquire());
    bases.push_back(stacks.back().base());
  }
  // All distinct while simultaneously held.
  for (int i = 0; i < kN; ++i)
    for (int j = i + 1; j < kN; ++j) ASSERT_NE(bases[i], bases[j]);
  for (auto& s : stacks) pool.release(std::move(s));
  EXPECT_EQ(pool.cached(), static_cast<std::size_t>(kN));
  // Reacquired stacks come from the cache, not fresh mappings.
  Stack again = pool.acquire();
  bool known = false;
  for (void* b : bases) known |= (b == again.base());
  EXPECT_TRUE(known);
  pool.release(std::move(again));
}

}  // namespace
}  // namespace lpt
