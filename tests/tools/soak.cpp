// Self-healing soak driver (scripts/soak.sh): a sustained mixed workload —
// cooperative cancels, directed-tick cancels under both preemption
// techniques, per-spawn deadlines, timed waits, and blocking-pipe readers
// that wedge their worker past the syscall grace (driving the wedge
// sentinel's compensate/reabsorb cycle every batch) — with the remediation
// ladder on, followed by leak checks no unit test can make: after Runtime
// destruction the process is back to its baseline kernel-thread count (no
// orphaned/pooled/compensating KLT survives shutdown), the compensation
// books reconcile exactly, and a second Runtime in the same process starts
// healthy and completes work. Exit 0 on success.
//
//   soak [seconds]   (default 60)
#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/sys.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

int fail(const char* msg) {
  std::fprintf(stderr, "soak: FAIL: %s\n", msg);
  return 1;
}

/// Kernel threads in this process right now (/proc/self/task entries).
int task_count() {
  DIR* d = opendir("/proc/self/task");
  if (d == nullptr) return -1;
  int n = 0;
  while (dirent* e = readdir(d))
    if (e->d_name[0] != '.') ++n;
  closedir(d);
  return n;
}

/// One batch of mixed work; returns false on any contract violation.
bool run_batch(Runtime& rt, std::uint64_t round) {
  std::vector<Thread> joiners;

  // Plain compute under both techniques — must finish untouched.
  for (Preempt p : {Preempt::SignalYield, Preempt::KltSwitch}) {
    ThreadAttrs a;
    a.preempt = p;
    joiners.push_back(rt.spawn([] { busy_spin_ns(200'000); }, a));
  }

  // A runaway with a tight deadline: the runtime must cancel it.
  ThreadAttrs dl;
  dl.preempt = round % 2 == 0 ? Preempt::SignalYield : Preempt::KltSwitch;
  dl.deadline_ns = 10'000'000;  // 10 ms
  Thread runaway = rt.spawn([] { for (;;) busy_spin_ns(100'000); }, dl);

  // A spinner cancelled by hand mid-flight.
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  std::atomic<bool> spinning{false};
  Thread victim = rt.spawn(
      [&] {
        spinning.store(true, std::memory_order_release);
        for (;;) busy_spin_ns(100'000);
      },
      sy);
  while (!spinning.load(std::memory_order_acquire)) busy_spin_ns(10'000);
  victim.request_cancel();

  // A blocking-pipe reader: wedges its worker inside io::read until the
  // batch's tail writes the byte. The wedge outlives syscall_grace_ns, so
  // the sentinel compensates (spare KLT keeps the worker dispatching) and
  // the reader's host reabsorbs on return — every batch is one full
  // activate/reabsorb cycle under live mixed load.
  int pipefd[2];
  if (sys::pipe2(pipefd, 0) != 0) return false;
  std::atomic<bool> pipe_ok{false};
  Thread reader = rt.spawn([&] {
    char c = 0;
    if (io::read(pipefd[0], &c, 1) == 1 && c == 'u')
      pipe_ok.store(true, std::memory_order_release);
  });

  // A nonblocking reader bounded by a deadline: exercises the EAGAIN
  // backoff loop ending in ETIMEDOUT (nothing is ever written to this end).
  int nbfd[2];
  if (sys::pipe2(nbfd, O_NONBLOCK) != 0) return false;
  std::atomic<bool> timed_ok{false};
  Thread timed_reader = rt.spawn([&] {
    char c = 0;
    // io::last_error(), not errno: the backoff sleeps inside io::read can
    // migrate this ULT to another kernel thread, and errno is per-KLT.
    if (io::read(nbfd[0], &c, 1, /*deadline_ns=*/5'000'000) == -1 &&
        io::last_error() == ETIMEDOUT)
      timed_ok.store(true, std::memory_order_release);
  });

  // Timed waits: a sleeper, and a pair racing a mutex with try_lock_for.
  joiners.push_back(
      rt.spawn([] { this_thread::sleep_for(std::chrono::milliseconds(2)); }));
  auto mu = std::make_shared<Mutex>();
  for (int i = 0; i < 2; ++i) {
    joiners.push_back(rt.spawn([mu] {
      if (mu->try_lock_for(std::chrono::milliseconds(50))) {
        busy_spin_ns(100'000);
        mu->unlock();
      }
    }));
  }

  for (Thread& t : joiners) {
    if (!t.join_for(std::chrono::seconds(30))) return false;
  }
  if (runaway.join_status().fault.kind != FaultKind::kCancelled) return false;
  if (victim.join_status().fault.kind != FaultKind::kCancelled) return false;

  // Unwedge the pipe reader (the joins above kept it blocked well past the
  // grace period) and settle both io threads.
  bool ok = ::write(pipefd[1], "u", 1) == 1;
  ok = reader.join_for(std::chrono::seconds(30)) && ok;
  ok = timed_reader.join_for(std::chrono::seconds(30)) && ok;
  ::close(pipefd[0]);
  ::close(pipefd[1]);
  ::close(nbfd[0]);
  ::close(nbfd[1]);
  return ok && pipe_ok.load(std::memory_order_acquire) &&
         timed_ok.load(std::memory_order_acquire);
}

}  // namespace

int main(int argc, char** argv) {
  const long seconds = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 60;
  const int baseline = task_count();

  std::uint64_t rounds = 0;
  {
    RuntimeOptions o;
    o.num_workers = 4;
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = 2'000;
    o.watchdog_period_ms = 20;
    o.remediation = true;
    // Short grace so every batch's pipe reader outlives it and the wedge
    // sentinel gets continuous compensate/reabsorb exercise.
    o.syscall_grace_ns = 10'000'000;
    Runtime rt(o);

    const std::int64_t end = now_ns() + seconds * 1'000'000'000LL;
    while (now_ns() < end) {
      if (!run_batch(rt, rounds)) {
        return fail("batch violated a join/cancel contract");
      }
      ++rounds;
    }

    const Runtime::Stats s = rt.stats();
    std::printf(
        "soak: %llu rounds in %lds: ult_cancels=%llu retick=%llu "
        "cancel=%llu klt_replace=%llu klts_retired=%llu "
        "stacks_quarantined=%llu syscall_blocks=%llu "
        "comp=%llu/%llu/%llu (activated/reabsorbed/saturated)\n",
        static_cast<unsigned long long>(rounds), seconds,
        static_cast<unsigned long long>(s.ult_cancels),
        static_cast<unsigned long long>(s.remediations_retick),
        static_cast<unsigned long long>(s.remediations_cancel),
        static_cast<unsigned long long>(s.remediations_klt_replace),
        static_cast<unsigned long long>(s.klts_retired),
        static_cast<unsigned long long>(s.stacks_quarantined),
        static_cast<unsigned long long>(s.syscall_blocks),
        static_cast<unsigned long long>(s.syscall_comp_activated),
        static_cast<unsigned long long>(s.syscall_comp_reabsorbed),
        static_cast<unsigned long long>(s.syscall_comp_saturated));
    if (s.ult_cancels < 2 * rounds) return fail("cancels did not keep up");
    if (s.remediations_cancel < rounds) return fail("deadline rung never ran");
    // Every batch blocked in at least two annotated syscalls; after all
    // joins the compensation books must reconcile exactly (a KLT activated
    // but never reabsorbed would be a leaked kernel thread).
    if (s.syscall_blocks < 2 * rounds) return fail("io guards never engaged");
    if (s.syscall_comp_activated !=
        s.syscall_comp_reabsorbed + s.syscall_comp_saturated)
      return fail("compensation books do not reconcile");
    if (s.syscall_comp_activated == 0)
      return fail("wedge sentinel never compensated a blocked reader");
  }  // Runtime destructor: the clean-shutdown half of the check.

  // Every KLT — workers, pool spares, retired orphans, compensating hosts,
  // helper threads — must be gone: the kernel-thread count returns to the
  // pre-runtime baseline. Give exiting threads a moment to be reaped.
  for (int i = 0; i < 100 && task_count() > baseline; ++i) usleep(10'000);
  if (task_count() > baseline) return fail("kernel threads leaked shutdown");

  // A fresh runtime in the same process starts healthy.
  {
    Runtime rt{RuntimeOptions{}};
    std::atomic<int> n{0};
    std::vector<Thread> ts;
    for (int i = 0; i < 32; ++i)
      ts.push_back(rt.spawn([&] { n.fetch_add(1, std::memory_order_relaxed); }));
    for (Thread& t : ts) t.join();
    if (n.load() != 32) return fail("post-soak runtime lost work");
  }

  std::printf("soak: PASS\n");
  return 0;
}
