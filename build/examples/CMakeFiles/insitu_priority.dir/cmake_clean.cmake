file(REMOVE_RECURSE
  "CMakeFiles/insitu_priority.dir/insitu_priority.cpp.o"
  "CMakeFiles/insitu_priority.dir/insitu_priority.cpp.o.d"
  "insitu_priority"
  "insitu_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
