// Thread packing (paper §4.2): a bulk-synchronous multigrid solve keeps
// running while the number of active cores is changed at runtime — e.g. for
// power capping. The packing scheduler (Algorithm 1) + preemption keep all
// solver threads progressing on however many workers remain active.
//
//   $ ./examples/thread_packing
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/multigrid/multigrid.hpp"
#include "common/time.hpp"

using namespace lpt;
using namespace lpt::apps;

int main() {
  RuntimeOptions ro;
  ro.num_workers = 4;
  ro.scheduler = SchedulerKind::Packing;  // Algorithm 1
  ro.timer = TimerKind::PerWorkerAligned;
  ro.interval_us = 1000;
  Runtime rt(ro);

  MultigridOptions mo;
  mo.n = 32;
  mo.levels = 3;
  mo.vcycles = 12;
  mo.threads = 4;                 // solver threads == initial workers
  mo.preempt = Preempt::KltSwitch;  // sliceable under packing

  std::vector<double> f(
      static_cast<std::size_t>(mo.n + 2) * (mo.n + 2) * (mo.n + 2), 0.0);
  auto idx = [&](int i, int j, int k) {
    return (static_cast<std::size_t>(k) * (mo.n + 2) + j) * (mo.n + 2) + i;
  };
  for (int k = mo.n / 4; k < 3 * mo.n / 4; ++k)
    for (int j = mo.n / 4; j < 3 * mo.n / 4; ++j)
      for (int i = mo.n / 4; i < 3 * mo.n / 4; ++i) f[idx(i, j, k)] = 1.0;
  std::vector<double> u;

  // Power-capping controller: while the solve runs, shrink the machine to
  // one core, then grow it back. The solver is oblivious.
  std::thread controller([&rt] {
    const int plan[] = {2, 1, 3, 4};
    for (int n : plan) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      rt.set_active_workers(n);
      std::printf("  [controller] active workers -> %d\n", n);
    }
  });

  std::printf("solving -laplace(u)=f on a %d^3 grid with %d threads while "
              "cores come and go...\n", mo.n, mo.threads);
  const std::int64_t t0 = now_ns();
  MultigridResult res = multigrid_solve(rt, mo, f, u);
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  controller.join();

  std::printf("\nresidual: %.3e -> %.3e after %d V-cycles (%.2f s)\n",
              res.initial_residual, res.final_residual, res.vcycles_run, secs);
  std::printf("implicit preemptions while packing: %llu\n",
              static_cast<unsigned long long>(rt.total_preemptions()));
  std::printf("converged: %s\n",
              res.final_residual < 0.05 * res.initial_residual ? "yes" : "NO");
  return res.final_residual < 0.05 * res.initial_residual ? 0 : 1;
}
