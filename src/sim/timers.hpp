// Timer-strategy models (§3.2) and the Fig 4 interruption-time experiment.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "sim/cost_model.hpp"
#include "sim/signal_subsys.hpp"

namespace lpt::sim {

enum class TimerStrategy {
  kNone,
  kPerWorkerCreationTime,  ///< naive: all worker timers in phase
  kPerWorkerAligned,       ///< §3.2.1: expirations staggered by interval/N
  kProcessOneToAll,        ///< §3.2.2: initiator pthread_kills all eligible
  kProcessChain,           ///< §3.2.2: handlers forward one-by-one
};

const char* timer_strategy_name(TimerStrategy s);

/// Reproduces Figure 4: the average time one worker is stopped per timer
/// interruption, with `workers` all running preemptive threads and a timer
/// interval of `interval`. Returns per-interruption samples over `ticks`
/// timer periods.
Stats measure_interruption_time(const CostModel& cm, TimerStrategy strategy,
                                int workers, Time interval, int ticks);

/// Per-worker tick schedule used by the ULT runtime model: the k-th tick of
/// worker w (k starts at 0). Process-wide strategies return the initiator
/// tick times; forwarding is simulated by the runtime model itself.
Time worker_tick_time(TimerStrategy strategy, Time interval, int workers,
                      int worker, std::int64_t k);

}  // namespace lpt::sim
