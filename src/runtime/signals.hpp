// Preemption signal plumbing: handler installation, initiate/forward
// delivery, and masks for the runtime's helper threads.
#pragma once

#include <csignal>

namespace lpt {

class Runtime;
struct Worker;

namespace signals {

/// Timer signal used for implicit preemption (SIGRTMIN).
int preempt_signo();
/// Resume signal for the Sigsuspend KLT-parking variant (SIGRTMIN + 1).
int resume_signo();
/// Independent on-CPU sampling signal (SIGRTMIN + 2), used only when
/// LPT_PROF_HZ decouples the profiler from the preemption ticks.
int prof_signo();

/// Install both handlers process-wide (idempotent). SA_RESTART is set as the
/// paper recommends (§3.5.1); SA_ONSTACK is deliberately NOT set so the
/// signal frame lives on the interrupted ULT's own stack.
void install_handlers();

/// Block both runtime signals in the calling thread (helper threads, so
/// stray deliveries never land on a non-worker stack).
void block_runtime_signals();
/// Unblock the preempt signal in the calling thread (worker KLTs).
void unblock_preempt();

/// Deliver an initiate/forward preemption signal to worker w.
/// initiator_rank == -1 means "per-worker delivery, do not forward";
/// otherwise it identifies the chain/fan-out initiator (§3.2.2).
/// Async-signal-safe.
void send_preempt(Worker& w, int initiator_rank);

/// Deliver one profiler sampling signal to worker w's current host KLT
/// (LPT_PROF_HZ mode; the runtime's sampler thread calls this). Same
/// shutdown gating as send_preempt.
void send_prof_tick(Worker& w);

}  // namespace signals
}  // namespace lpt
