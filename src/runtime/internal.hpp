// Cross-translation-unit internals of the runtime. Not installed; not part
// of the public API.
#pragma once

#include <atomic>

#include "runtime/runtime.hpp"
#include "runtime/sync.hpp"

namespace lpt::detail {

/// Process-global active runtime (anchor for the signal handler).
std::atomic<Runtime*>& runtime_slot();
inline Runtime* runtime_instance() {
  return runtime_slot().load(std::memory_order_acquire);
}

/// The ULT running on the calling KLT, or nullptr (scheduler/external).
ThreadCtl* current_ult_or_null();

/// NoPreemptGuard internals, usable with an explicit ThreadCtl so the guard
/// survives a migration to another KLT (the depth lives in the ThreadCtl).
void begin_no_preempt(ThreadCtl* self);
void end_no_preempt(ThreadCtl* self);

// --- suspension primitives -------------------------------------------------
// All of these context switch to the worker's scheduler and are deliberately
// not inlined: after the switch the ULT may run on a *different* kernel
// thread, so every TLS access inside re-derives its address.

/// Voluntary yield of the current ULT.
void suspend_yield(ThreadCtl* self);

/// Block the current ULT. The scheduler unlocks `sl` (and then `m`, if
/// non-null) only after the thread's context is fully saved, closing the
/// enqueue-before-save race.
void suspend_block(ThreadCtl* self, Spinlock* sl, Mutex* m);

/// Terminate the current ULT (no save; the scheduler recycles the stack).
[[noreturn]] void suspend_exit(ThreadCtl* self);

/// Terminate the current ULT as Failed (exception firewall path; self->fault
/// must already be filled in). The scheduler quarantines the stack and wakes
/// joiners with the failure record.
[[noreturn]] void suspend_fail(ThreadCtl* self);

/// Terminate the current ULT as Failed(kCancelled) — the cooperative half of
/// cancellation. Same landing as suspend_fail (stack quarantined, joiners
/// woken with the failure record) but counted as a cancellation. Destructors
/// of frames live on the abandoned stack do NOT run (docs/robustness.md).
[[noreturn]] void suspend_cancel(ThreadCtl* self);

/// Cancellation point: returns normally unless `self` has a pending cancel
/// request, in which case it does not return (suspend_cancel). Safe to call
/// with nullptr (external thread / scheduler context).
void cancel_point(ThreadCtl* self);

// --- preemption-handler bodies (called from the signal handler) ------------

/// Signal-yield (§3.1.1): switch to the scheduler from inside the handler.
void handler_signal_yield(Worker* w, ThreadCtl* t);

/// KLT-switching (§3.1.2): remap the worker to a pool KLT and park this one
/// inside the handler; returns without preempting when no KLT is available
/// (a creation request is posted and the thread retries at the next tick).
void handler_klt_switch(Runtime* rt, Worker* w, ThreadCtl* t);

/// Resume a KLT parked inside the handler (futex or sigsuspend, per options).
void wake_bound_klt(Runtime* rt, KltCtl* k);

/// Re-enter ULT mode after a resume (sets in_ult on the *current* KLT).
void mark_in_ult();

}  // namespace lpt::detail
