#include "prof/prof.hpp"

#include <dlfcn.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace lpt::prof {

const char* wait_kind_name(WaitKind k) {
  switch (k) {
    case WaitKind::kNone: return "none";
    case WaitKind::kMutex: return "mutex";
    case WaitKind::kCondVar: return "condvar";
    case WaitKind::kBarrier: return "barrier";
    case WaitKind::kRwLock: return "rwlock";
    case WaitKind::kSemaphore: return "semaphore";
    case WaitKind::kLatch: return "latch";
    case WaitKind::kWaitGroup: return "waitgroup";
    case WaitKind::kJoin: return "join";
    case WaitKind::kSleep: return "sleep";
    case WaitKind::kBusyFlag: return "busyflag";
    case WaitKind::kSyscall: return "syscall";
    case WaitKind::kCount: break;
  }
  return "?";
}

Format pick_format(const std::string& path) {
  const std::size_t n = path.size();
  if (n >= 5 && path.compare(n - 5, 5, ".json") == 0) return Format::kJson;
  return Format::kFolded;
}

namespace {

/// Frame names land in the folded format, where ';' separates frames and ' '
/// separates the stack from its count — scrub both (plus control chars).
std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == ';' || c == ' ' || static_cast<unsigned char>(c) < 0x20) c = '_';
  return s;
}

/// Best-effort at export time (never on the record path): dladdr resolves
/// exported symbols; static functions fall back to raw addresses, which the
/// folded format accepts (document in docs/observability.md).
std::string symbolize(std::uint64_t pc) {
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(static_cast<std::uintptr_t>(pc)), &info) !=
          0 &&
      info.dli_sname != nullptr) {
    char buf[512];
    std::snprintf(buf, sizeof buf, "%s+0x%" PRIx64, info.dli_sname,
                  pc - reinterpret_cast<std::uint64_t>(info.dli_saddr));
    return sanitize(buf);
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, pc);
  return buf;
}

void json_escape(std::FILE* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\')
      std::fprintf(out, "\\%c", c);
    else if (static_cast<unsigned char>(c) >= 0x20)
      std::fputc(c, out);
  }
}

}  // namespace

#if !defined(LPT_PROF_DISABLED)

std::atomic<bool> g_oncpu{false};
std::atomic<bool> g_piggyback{false};
std::atomic<bool> g_offcpu{false};
std::atomic<bool> g_locks{false};

std::atomic<std::uint64_t> g_invocations{0};
std::atomic<std::uint64_t> g_noring_dropped{0};
std::atomic<std::uint64_t> g_offcpu_waits{0};
std::atomic<std::uint64_t> g_offcpu_ns{0};
std::atomic<std::uint64_t> g_offcpu_dropped{0};
std::atomic<std::uint32_t> g_depth{16};

void sample(SampleRing* ring, std::uint32_t ult, std::int16_t worker,
            std::uint8_t pool, std::uintptr_t pc, std::uintptr_t fp,
            std::uintptr_t stack_lo, std::uintptr_t stack_hi) {
  g_invocations.fetch_add(1, std::memory_order_relaxed);
  if (ring == nullptr) {
    g_noring_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample* s = ring->reserve();
  if (s == nullptr) return;  // the ring counted the drop
  s->ts_ns = trace::now_ns();
  s->ult = ult;
  s->worker = worker;
  s->pool = pool;
  const std::uint32_t max_depth = g_depth.load(std::memory_order_relaxed);
  std::uint32_t depth = 0;
  s->pc[depth++] = pc;
  // Frame-pointer walk, every step validated against the ULT's own stack so
  // a clobbered or absent chain terminates instead of faulting.
  std::uintptr_t f = fp;
  while (depth < max_depth) {
    if (f < stack_lo || f + 2 * sizeof(void*) > stack_hi || (f & 7) != 0) break;
    const std::uintptr_t ret =
        *reinterpret_cast<const std::uintptr_t*>(f + sizeof(void*));
    const std::uintptr_t next = *reinterpret_cast<const std::uintptr_t*>(f);
    if (ret < 4096) break;  // null / first-page garbage is not a return addr
    s->pc[depth++] = ret;
    if (next <= f) break;  // frames must move toward the stack base
    f = next;
  }
  s->depth1.store(static_cast<std::uint8_t>(depth + 1),
                  std::memory_order_release);
}

void record_wait(WaitKind kind, std::uintptr_t site, std::int64_t ns) {
  Collector& c = Collector::instance();
  Collector::WaitSiteSlot* sites = c.sites_.get();
  if (sites == nullptr) return;
  if (ns < 0) ns = 0;
  g_offcpu_waits.fetch_add(1, std::memory_order_relaxed);
  g_offcpu_ns.fetch_add(static_cast<std::uint64_t>(ns),
                        std::memory_order_relaxed);
  const std::uint64_t key =
      static_cast<std::uint64_t>(site) |
      (static_cast<std::uint64_t>(kind) << 56);
  const std::uint32_t h = static_cast<std::uint32_t>(
      (key * 0x9E3779B97F4A7C15ull) >> 56);  // top 8 bits: kWaitSites == 256
  for (std::uint32_t probe = 0; probe < Collector::kWaitSites; ++probe) {
    Collector::WaitSiteSlot& s =
        sites[(h + probe) & (Collector::kWaitSites - 1)];
    std::uint64_t k = s.key.load(std::memory_order_acquire);
    if (k == 0) {
      std::uint64_t expect = 0;
      if (s.key.compare_exchange_strong(expect, key,
                                        std::memory_order_acq_rel))
        k = key;
      else
        k = expect;
    }
    if (k == key) {
      s.count.fetch_add(1, std::memory_order_relaxed);
      s.total_ns.fetch_add(static_cast<std::uint64_t>(ns),
                           std::memory_order_relaxed);
      s.blocked_ns.record(ns);
      return;
    }
  }
  g_offcpu_dropped.fetch_add(1, std::memory_order_relaxed);
}

Collector& Collector::instance() {
  static Collector c;
  return c;
}

void Collector::configure(const ProfConfig& cfg) {
  std::lock_guard<std::mutex> lk(rings_lock_);
  // Disarm first so no recorder races the reset below (configure runs from
  // Runtime startup, before any worker exists, but be defensive).
  g_oncpu.store(false, std::memory_order_relaxed);
  g_piggyback.store(false, std::memory_order_relaxed);
  g_offcpu.store(false, std::memory_order_relaxed);
  g_locks.store(false, std::memory_order_relaxed);

  rings_.clear();
  cfg_ = cfg;
  depth_ = cfg.max_stack_depth < 1 ? 1
           : cfg.max_stack_depth > kMaxFrames ? kMaxFrames
                                              : cfg.max_stack_depth;
  g_depth.store(depth_, std::memory_order_relaxed);
  g_invocations.store(0, std::memory_order_relaxed);
  g_noring_dropped.store(0, std::memory_order_relaxed);
  g_offcpu_waits.store(0, std::memory_order_relaxed);
  g_offcpu_ns.store(0, std::memory_order_relaxed);
  g_offcpu_dropped.store(0, std::memory_order_relaxed);
  next_lock_.store(0, std::memory_order_relaxed);

  // The site table and lock slab are allocated once and never freed: user
  // Mutexes can outlive the Runtime that profiled them, and their stats
  // pointer must stay dereferenceable across sequential runtimes.
  if (cfg.enabled && cfg.offcpu && sites_ == nullptr)
    sites_.reset(new WaitSiteSlot[kWaitSites]);
  if (sites_ != nullptr) {
    for (std::uint32_t i = 0; i < kWaitSites; ++i) {
      sites_[i].key.store(0, std::memory_order_relaxed);
      sites_[i].count.store(0, std::memory_order_relaxed);
      sites_[i].total_ns.store(0, std::memory_order_relaxed);
      sites_[i].blocked_ns.reset();
    }
  }
  if (cfg.enabled && cfg.locks && locks_ == nullptr)
    locks_.reset(new LockStats[kMaxLocks]);
  if (locks_ != nullptr) {
    for (std::uint32_t i = 0; i < kMaxLocks; ++i) {
      locks_[i].acquires.store(0, std::memory_order_relaxed);
      locks_[i].contended.store(0, std::memory_order_relaxed);
      locks_[i].chains.store(0, std::memory_order_relaxed);
      locks_[i].owner.store(nullptr, std::memory_order_relaxed);
      locks_[i].hold_start_ns = 0;
      locks_[i].site.store(0, std::memory_order_relaxed);
      locks_[i].hold_ns.reset();
      locks_[i].wait_ns.reset();
    }
  }

  if (!cfg.enabled) return;
  g_offcpu.store(cfg.offcpu, std::memory_order_relaxed);
  g_locks.store(cfg.locks, std::memory_order_relaxed);
  g_piggyback.store(cfg.sample_hz == 0, std::memory_order_relaxed);
  g_oncpu.store(true, std::memory_order_release);
}

void Collector::disable() {
  g_oncpu.store(false, std::memory_order_relaxed);
  g_piggyback.store(false, std::memory_order_relaxed);
  g_offcpu.store(false, std::memory_order_relaxed);
  g_locks.store(false, std::memory_order_relaxed);
}

SampleRing* Collector::acquire_ring() {
  if (!oncpu_on()) return nullptr;
  std::lock_guard<std::mutex> lk(rings_lock_);
  auto block = std::make_unique<RingBlock>();
  const std::uint32_t cap = cfg_.ring_capacity < 64 ? 64 : cfg_.ring_capacity;
  block->slots.reset(new Sample[cap]);
  block->ring.init(block->slots.get(), cap);
  SampleRing* r = &block->ring;
  rings_.push_back(std::move(block));
  return r;
}

LockStats* Collector::acquire_lock_stats() {
  if (!locks_on() || locks_ == nullptr) return nullptr;
  const std::uint32_t idx = next_lock_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxLocks) return nullptr;  // slab exhausted: unprofiled mutex
  return &locks_[idx];
}

Totals Collector::totals() const {
  Totals t;
  t.enabled = cfg_.enabled;
  t.offcpu = cfg_.enabled && cfg_.offcpu;
  t.locks = cfg_.enabled && cfg_.locks;
  t.sample_hz = cfg_.sample_hz;
  t.invocations = g_invocations.load(std::memory_order_relaxed);
  t.dropped = g_noring_dropped.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(rings_lock_);
    for (const auto& b : rings_) {
      t.recorded += b->ring.recorded();
      t.dropped += b->ring.dropped();
    }
  }
  t.offcpu_waits = g_offcpu_waits.load(std::memory_order_relaxed);
  t.offcpu_total_ns = g_offcpu_ns.load(std::memory_order_relaxed);
  t.offcpu_dropped = g_offcpu_dropped.load(std::memory_order_relaxed);
  const std::uint32_t nlocks =
      std::min(next_lock_.load(std::memory_order_relaxed), kMaxLocks);
  for (std::uint32_t i = 0; locks_ != nullptr && i < nlocks; ++i) {
    t.lock_acquires += locks_[i].acquires.load(std::memory_order_relaxed);
    t.lock_contended += locks_[i].contended.load(std::memory_order_relaxed);
    t.contention_chains += locks_[i].chains.load(std::memory_order_relaxed);
  }
  return t;
}

std::vector<UltProfile> Collector::oncpu_by_ult() const {
  std::map<std::uint32_t, UltProfile> agg;
  std::lock_guard<std::mutex> lk(rings_lock_);
  for (const auto& b : rings_) {
    const std::uint32_t n = b->ring.fill();
    for (std::uint32_t i = 0; i < n; ++i) {
      const Sample& s = b->ring.at(i);
      if (s.depth1.load(std::memory_order_acquire) == 0) continue;
      UltProfile& u = agg[s.ult];
      u.ult = s.ult;
      u.pool = s.pool;
      ++u.samples;
    }
  }
  std::vector<UltProfile> out;
  out.reserve(agg.size());
  for (auto& kv : agg) out.push_back(kv.second);
  std::sort(out.begin(), out.end(), [](const UltProfile& a, const UltProfile& b) {
    return a.samples > b.samples;
  });
  return out;
}

std::vector<WorkerProfile> Collector::oncpu_by_worker() const {
  std::map<std::int16_t, std::uint64_t> agg;
  std::lock_guard<std::mutex> lk(rings_lock_);
  for (const auto& b : rings_) {
    const std::uint32_t n = b->ring.fill();
    for (std::uint32_t i = 0; i < n; ++i) {
      const Sample& s = b->ring.at(i);
      if (s.depth1.load(std::memory_order_acquire) == 0) continue;
      ++agg[s.worker];
    }
  }
  std::vector<WorkerProfile> out;
  out.reserve(agg.size());
  for (const auto& kv : agg) out.push_back({kv.first, kv.second});
  return out;
}

std::vector<WaitSiteProfile> Collector::offcpu_sites() const {
  std::vector<WaitSiteProfile> out;
  if (sites_ == nullptr) return out;
  for (std::uint32_t i = 0; i < kWaitSites; ++i) {
    const std::uint64_t key = sites_[i].key.load(std::memory_order_acquire);
    if (key == 0) continue;
    WaitSiteProfile p;
    p.kind = static_cast<WaitKind>(key >> 56);
    p.site = static_cast<std::uintptr_t>(key & ((1ull << 56) - 1));
    p.count = sites_[i].count.load(std::memory_order_relaxed);
    p.total_ns = sites_[i].total_ns.load(std::memory_order_relaxed);
    p.blocked_ns = sites_[i].blocked_ns.snapshot();
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const WaitSiteProfile& a, const WaitSiteProfile& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

std::vector<LockProfile> Collector::lock_profiles() const {
  std::vector<LockProfile> out;
  if (locks_ == nullptr) return out;
  const std::uint32_t n =
      std::min(next_lock_.load(std::memory_order_relaxed), kMaxLocks);
  for (std::uint32_t i = 0; i < n; ++i) {
    LockProfile p;
    p.id = static_cast<int>(i);
    p.site = locks_[i].site.load(std::memory_order_relaxed);
    p.acquires = locks_[i].acquires.load(std::memory_order_relaxed);
    p.contended = locks_[i].contended.load(std::memory_order_relaxed);
    p.chains = locks_[i].chains.load(std::memory_order_relaxed);
    p.hold_ns = locks_[i].hold_ns.snapshot();
    p.wait_ns = locks_[i].wait_ns.snapshot();
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const LockProfile& a, const LockProfile& b) {
    return a.contended > b.contended;
  });
  return out;
}

namespace {

void write_header(std::FILE* out, const Totals& t, std::uint32_t depth) {
  std::fprintf(out, "# lpt profile v1\n");
  std::fprintf(out, "# mode: %s\n",
               !t.enabled ? "off"
               : t.sample_hz > 0 ? "hz"
                                 : "piggyback");
  std::fprintf(out, "# sample_hz: %d\n", t.sample_hz);
  std::fprintf(out, "# max_depth: %u\n", depth);
  std::fprintf(out, "# invocations: %" PRIu64 "\n", t.invocations);
  std::fprintf(out, "# recorded: %" PRIu64 "\n", t.recorded);
  std::fprintf(out, "# dropped: %" PRIu64 "\n", t.dropped);
  std::fprintf(out, "# offcpu_waits: %" PRIu64 "\n", t.offcpu_waits);
  std::fprintf(out, "# offcpu_dropped: %" PRIu64 "\n", t.offcpu_dropped);
  std::fprintf(out, "# lock_acquires: %" PRIu64 "\n", t.lock_acquires);
  std::fprintf(out, "# lock_contended: %" PRIu64 "\n", t.lock_contended);
  std::fprintf(out, "# contention_chains: %" PRIu64 "\n", t.contention_chains);
}

}  // namespace

void Collector::write_folded(std::FILE* out) const {
  write_header(out, totals(), depth_);
  // Aggregate identical stacks across all rings. Frames print
  // outermost-first so flamegraph tooling reads them bottom-up; the two
  // leading pseudo-frames attribute the stack to its ULT and pool.
  std::map<std::string, std::uint64_t> folded;
  std::map<std::uint64_t, std::string> syms;
  auto sym = [&](std::uint64_t pc) -> const std::string& {
    auto it = syms.find(pc);
    if (it == syms.end()) it = syms.emplace(pc, symbolize(pc)).first;
    return it->second;
  };
  {
    std::lock_guard<std::mutex> lk(rings_lock_);
    for (const auto& b : rings_) {
      const std::uint32_t n = b->ring.fill();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Sample& s = b->ring.at(i);
        const std::uint8_t d1 = s.depth1.load(std::memory_order_acquire);
        if (d1 == 0) continue;
        const int depth = d1 - 1;
        char root[48];
        std::snprintf(root, sizeof root, "ult%u;p%u", s.ult,
                      static_cast<unsigned>(s.pool));
        std::string key = root;
        for (int f = depth - 1; f >= 0; --f) {
          key += ';';
          key += sym(s.pc[f]);
        }
        ++folded[key];
      }
    }
  }
  for (const auto& kv : folded)
    std::fprintf(out, "%s %" PRIu64 "\n", kv.first.c_str(), kv.second);
}

void Collector::write_json(std::FILE* out) const {
  const Totals t = totals();
  std::fprintf(out, "{\n  \"prof\": {\"enabled\": %s, \"mode\": \"%s\", "
                    "\"sample_hz\": %d, \"max_depth\": %u},\n",
               t.enabled ? "true" : "false",
               !t.enabled ? "off" : t.sample_hz > 0 ? "hz" : "piggyback",
               t.sample_hz, depth_);

  std::fprintf(out,
               "  \"oncpu\": {\"invocations\": %" PRIu64
               ", \"recorded\": %" PRIu64 ", \"dropped\": %" PRIu64
               ",\n    \"by_ult\": [",
               t.invocations, t.recorded, t.dropped);
  bool first = true;
  for (const UltProfile& u : oncpu_by_ult()) {
    std::fprintf(out, "%s\n      {\"ult\": %u, \"pool\": %u, \"samples\": %" PRIu64 "}",
                 first ? "" : ",", u.ult, static_cast<unsigned>(u.pool),
                 u.samples);
    first = false;
  }
  std::fprintf(out, "\n    ],\n    \"by_worker\": [");
  first = true;
  for (const WorkerProfile& w : oncpu_by_worker()) {
    std::fprintf(out, "%s\n      {\"worker\": %d, \"samples\": %" PRIu64 "}",
                 first ? "" : ",", static_cast<int>(w.worker), w.samples);
    first = false;
  }
  std::fprintf(out, "\n    ]\n  },\n");

  std::fprintf(out,
               "  \"offcpu\": {\"waits\": %" PRIu64 ", \"total_ns\": %" PRIu64
               ", \"dropped\": %" PRIu64 ",\n    \"sites\": [",
               t.offcpu_waits, t.offcpu_total_ns, t.offcpu_dropped);
  first = true;
  for (const WaitSiteProfile& s : offcpu_sites()) {
    std::fprintf(out,
                 "%s\n      {\"kind\": \"%s\", \"site\": \"", first ? "" : ",",
                 wait_kind_name(s.kind));
    json_escape(out, symbolize(s.site));
    std::fprintf(out,
                 "\", \"count\": %" PRIu64 ", \"total_ns\": %" PRIu64
                 ", \"p50_ns\": %.0f, \"p99_ns\": %.0f}",
                 s.count, s.total_ns, s.blocked_ns.percentile_ns(50.0),
                 s.blocked_ns.percentile_ns(99.0));
    first = false;
  }
  std::fprintf(out, "\n    ]\n  },\n");

  std::fprintf(out,
               "  \"locks\": {\"acquires\": %" PRIu64 ", \"contended\": %" PRIu64
               ", \"chains\": %" PRIu64 ",\n    \"table\": [",
               t.lock_acquires, t.lock_contended, t.contention_chains);
  first = true;
  for (const LockProfile& l : lock_profiles()) {
    std::fprintf(out, "%s\n      {\"id\": %d, \"site\": \"", first ? "" : ",",
                 l.id);
    json_escape(out, l.site != 0 ? symbolize(l.site) : "0x0");
    std::fprintf(out,
                 "\", \"acquires\": %" PRIu64 ", \"contended\": %" PRIu64
                 ", \"chains\": %" PRIu64
                 ", \"hold_p50_ns\": %.0f, \"hold_p99_ns\": %.0f"
                 ", \"wait_p50_ns\": %.0f, \"wait_p99_ns\": %.0f}",
                 l.acquires, l.contended, l.chains,
                 l.hold_ns.percentile_ns(50.0), l.hold_ns.percentile_ns(99.0),
                 l.wait_ns.percentile_ns(50.0), l.wait_ns.percentile_ns(99.0));
    first = false;
  }
  std::fprintf(out, "\n    ]\n  }\n}\n");
}

bool Collector::write_file(const std::string& path) const {
  if (path.empty()) return false;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  if (pick_format(path) == Format::kJson)
    write_json(f);
  else
    write_folded(f);
  const bool ok = std::fclose(f) == 0;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

#else  // LPT_PROF_DISABLED -------------------------------------------------

Collector& Collector::instance() {
  static Collector c;
  return c;
}

void Collector::write_folded(std::FILE* out) const {
  const Totals t{};
  std::fprintf(out, "# lpt profile v1\n# mode: off\n# sample_hz: 0\n"
                    "# max_depth: 0\n");
  std::fprintf(out, "# invocations: %" PRIu64 "\n# recorded: %" PRIu64
                    "\n# dropped: %" PRIu64 "\n",
               t.invocations, t.recorded, t.dropped);
  std::fprintf(out, "# offcpu_waits: 0\n# offcpu_dropped: 0\n"
                    "# lock_acquires: 0\n# lock_contended: 0\n"
                    "# contention_chains: 0\n");
}

void Collector::write_json(std::FILE* out) const {
  std::fprintf(out,
               "{\n  \"prof\": {\"enabled\": false, \"mode\": \"off\", "
               "\"sample_hz\": 0, \"max_depth\": 0},\n"
               "  \"oncpu\": {\"invocations\": 0, \"recorded\": 0, "
               "\"dropped\": 0,\n    \"by_ult\": [\n    ],\n"
               "    \"by_worker\": [\n    ]\n  },\n"
               "  \"offcpu\": {\"waits\": 0, \"total_ns\": 0, \"dropped\": 0,"
               "\n    \"sites\": [\n    ]\n  },\n"
               "  \"locks\": {\"acquires\": 0, \"contended\": 0, "
               "\"chains\": 0,\n    \"table\": [\n    ]\n  }\n}\n");
}

bool Collector::write_file(const std::string& path) const {
  if (path.empty()) return false;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  if (pick_format(path) == Format::kJson)
    write_json(f);
  else
    write_folded(f);
  const bool ok = std::fclose(f) == 0;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

#endif  // LPT_PROF_DISABLED

}  // namespace lpt::prof
