# Empty dependencies file for fig4_interrupt.
# This may be replaced when dependencies are built.
