#include "sim/workloads/compute_loop.hpp"

#include <memory>

#include "common/assert.hpp"
#include "sim/script_thread.hpp"

namespace lpt::sim {

const char* fig6_variant_name(Fig6Variant v) {
  switch (v) {
    case Fig6Variant::kNonpreemptiveBaseline:
      return "nonpreemptive (baseline)";
    case Fig6Variant::kTimerInterruptionOnly:
      return "Timer interruption only";
    case Fig6Variant::kSignalYield:
      return "Signal-yield";
    case Fig6Variant::kKltSwitchNaive:
      return "KLT-switching";
    case Fig6Variant::kKltSwitchFutex:
      return "KLT-switching (futex)";
    case Fig6Variant::kKltSwitchFutexLocal:
      return "KLT-switching (futex, local pool)";
  }
  return "?";
}

Time fig6_makespan(const CostModel& cm, const Fig6Config& cfg, Fig6Variant v) {
  SimUltOptions o;
  o.num_workers = cfg.workers;
  o.interval = cfg.interval;
  o.sched = SchedPolicy::kWorkSteal;
  o.timer = v == Fig6Variant::kNonpreemptiveBaseline ? TimerStrategy::kNone
                                                     : TimerStrategy::kPerWorkerAligned;
  o.timer_interruption_only = v == Fig6Variant::kTimerInterruptionOnly;
  switch (v) {
    case Fig6Variant::kKltSwitchNaive:
      o.klt_suspend = KltSuspendModel::kSigsuspend;
      o.local_klt_pool = false;
      break;
    case Fig6Variant::kKltSwitchFutex:
      o.klt_suspend = KltSuspendModel::kFutex;
      o.local_klt_pool = false;
      break;
    case Fig6Variant::kKltSwitchFutexLocal:
      o.klt_suspend = KltSuspendModel::kFutex;
      o.local_klt_pool = true;
      break;
    default:
      break;
  }

  SimPreempt preempt = SimPreempt::kNone;
  if (v == Fig6Variant::kSignalYield || v == Fig6Variant::kTimerInterruptionOnly)
    preempt = SimPreempt::kSignalYield;
  else if (v != Fig6Variant::kNonpreemptiveBaseline)
    preempt = SimPreempt::kKltSwitch;

  SimUltRuntime rt(cm, o);
  for (int w = 0; w < cfg.workers; ++w) {
    for (int i = 0; i < cfg.threads_per_worker; ++i) {
      auto t = std::make_unique<ScriptThread>(
          std::vector<SimAction>{SimAction::compute(cfg.compute_per_thread)});
      t->preempt = preempt;
      t->home_pool = w;
      rt.spawn(std::move(t));
    }
  }
  const Time makespan = rt.run();
  LPT_CHECK_MSG(!rt.deadlocked(), "fig6 workload must not deadlock");
  return makespan;
}

double fig6_overhead(const CostModel& cm, const Fig6Config& cfg, Fig6Variant v) {
  const Time base =
      fig6_makespan(cm, cfg, Fig6Variant::kNonpreemptiveBaseline);
  const Time t = fig6_makespan(cm, cfg, v);
  return static_cast<double>(t - base) / static_cast<double>(base);
}

Table1Row table1_costs(const CostModel& cm) {
  Table1Row r{};
  r.one_to_one_us = static_cast<double>(cm.os_preempt) / 1000.0;
  // Signal-yield: uncontended handler + two user-level switches + residue.
  r.signal_yield_us =
      static_cast<double>(cm.signal_handler + 2 * cm.ult_ctx_switch +
                          cm.sigyield_extra) /
      1000.0;
  // KLT-switching (futex, local pool): handler + wake replacement KLT
  // (suspend side) + wake bound KLT (resume side) + bookkeeping.
  r.klt_switching_us =
      static_cast<double>(cm.signal_handler +
                          (cm.futex_wake + cm.futex_wakeup_latency) * 2 +
                          cm.kltswitch_extra + 2 * cm.ult_ctx_switch) /
      1000.0;
  return r;
}

}  // namespace lpt::sim
