// Fig 7 workload: the SLATE-style tiled Cholesky factorization with nested
// parallelism. The outer level is a task DAG over tiles (POTRF/TRSM/SYRK/
// GEMM with data dependencies); each task calls a "BLAS" kernel that runs an
// inner team of 8 threads ending in an MKL-style busy-wait barrier — the
// synchronization that deadlocks nonpreemptive M:N threads (§4.1).
#pragma once

#include <cstdint>

#include "sim/cost_model.hpp"
#include "sim/ult_model.hpp"

namespace lpt::sim {

enum class CholeskyRuntime {
  kBoltNonpreemptiveNaive,  ///< pure spin barrier, no preemption → deadlock
  kBoltNonpreemptiveYield,  ///< "reverse-engineered MKL" yield hack
  kBoltPreemptive,          ///< KLT-switching + per-worker aligned timer
  kIompNested,              ///< 1:1 threads over CFS, nested hot teams
  kIompFlat,                ///< 1:1 threads, flat 56-way outer, no inner
};

const char* cholesky_runtime_name(CholeskyRuntime r);

struct CholeskyConfig {
  int tiles = 8;            ///< T (the paper sweeps 8..24)
  int tile_n = 1000;        ///< tile dimension (fixed at 1000 in §4.1)
  int inner_threads = 8;    ///< inner parallelism
  int outer_slots = 8;      ///< outer parallelism (both "set to 8", §4.1)
  Time interval = 10'000'000;     ///< preemption interval (BOLT preemptive)
  Time cache_refill = 40'000;     ///< per-preemption locality penalty (§4.1:
                                  ///< short intervals cost cache misses)
  std::uint64_t seed = 42;
};

struct CholeskyResult {
  Time makespan = 0;
  double gflops = 0;
  bool deadlocked = false;
  std::uint64_t preemptions = 0;
};

CholeskyResult run_cholesky(const CostModel& cm, const CholeskyConfig& cfg,
                            CholeskyRuntime runtime);

/// Total floating-point operations of a T x T tiled Cholesky with tile size
/// b (n = T*b): n^3 / 3 to leading order; exposed for GFLOPS accounting and
/// tests.
double cholesky_total_flops(int tiles, int tile_n);

/// The paper's deadlock mechanism in its deterministic form: `calls`
/// concurrent MKL-style kernels (inner teams of `width`, busy-wait end
/// barrier) on a `cores`-worker M:N runtime. With calls >= cores and no
/// preemption, every worker ends up holding a spinning team master while all
/// helpers sit in the ready queues — a guaranteed wedge (§4.1). With
/// KLT-switching preemption the same program completes. Returns whether the
/// run deadlocked.
bool mkl_saturation_deadlocks(const CostModel& cm, int cores, int calls,
                              int width, bool preemptive);

}  // namespace lpt::sim
