// Additional ULT-aware synchronization primitives: reader-writer lock,
// counting semaphore, one-shot latch, and a Go-style wait group. Like the
// core primitives (sync.hpp) they block cooperatively — the worker keeps
// executing other threads — and guard their internal spinlocks against
// preemption (§3.5.3).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/futex.hpp"
#include "common/spinlock.hpp"

namespace lpt {

struct ThreadCtl;

namespace park {
struct ResourceState;
}

/// Writer-preferring reader-writer lock for ULTs.
class RwLock {
 public:
  void lock_shared();
  void unlock_shared();
  void lock();
  void unlock();

 private:
  /// Abandonment hook (park::ResourceState::on_abandon): `dead` ended while
  /// recorded as a holder. A dead writer clears write_owner_ and, when
  /// `release`, force-unlocks with normal handoff semantics; a dead reader
  /// drops its share (best-effort once owner slots overflowed). Returns
  /// whether a release/handoff happened.
  bool abandon(ThreadCtl* dead, bool release);
  static bool abandon_cb(void* primitive, ThreadCtl* dead, bool release);

  Spinlock guard_;
  int readers_ = 0;        ///< active readers
  bool writer_ = false;    ///< active writer
  /// Writing ULT while writer_ (address-compared only; abandon() clears it
  /// before the owner can be freed). Powers the synchronous write-after-write
  /// self-deadlock check; maintained unconditionally under guard_.
  ThreadCtl* write_owner_ = nullptr;
  /// Parking-registry owner record (writer + up to kMaxOwners readers),
  /// lazily attached under guard_ while the registry is armed.
  park::ResourceState* res_ = nullptr;
  std::vector<ThreadCtl*> waiting_readers_;
  std::vector<ThreadCtl*> waiting_writers_;
};

/// Counting semaphore for ULTs.
class Semaphore {
 public:
  explicit Semaphore(int initial) : count_(initial) {}
  /// Decrement, blocking cooperatively while the count is zero.
  void acquire();
  /// Try to decrement without blocking.
  bool try_acquire();
  /// Blocking try_acquire with a timeout (~1 ms granularity, timed-wait
  /// registry) and a cancellation point. False on timeout, true when a unit
  /// was consumed (possibly handed off directly by release()).
  bool try_acquire_for(std::chrono::nanoseconds timeout);
  /// Increment and release one waiter if any.
  void release(int n = 1);

 private:
  Spinlock guard_;
  int count_;
  std::vector<ThreadCtl*> waiters_;
};

/// One-shot latch: count_down() `count` times releases every waiter.
/// wait() is also callable from external (non-ULT) kernel threads.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}
  void count_down(int n = 1);
  void wait();
  bool try_wait() const { return done_.load(std::memory_order_acquire) != 0; }

 private:
  Spinlock guard_;
  int remaining_;
  std::atomic<std::uint32_t> done_{0};  // futex word for external waiters
  std::vector<ThreadCtl*> waiters_;
};

/// Go-style wait group: add() work, done() it, wait() for the count to hit
/// zero. wait() is callable from ULTs and external threads; add() must not
/// race with the count reaching zero (the usual wait-group contract).
class WaitGroup {
 public:
  void add(int n = 1);
  void done();
  void wait();

 private:
  Spinlock guard_;
  int count_ = 0;
  std::atomic<std::uint32_t> zero_epoch_{0};  // futex word, bumped at zero
  std::vector<ThreadCtl*> waiters_;
};

}  // namespace lpt
