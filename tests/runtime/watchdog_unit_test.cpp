// Unit tests of the watchdog's detection logic (watchdog_detail::
// evaluate_worker) as a pure function over observation sequences — no
// Runtime, no threads, so they run in the TSan stage alongside the metrics
// unit tests. Scenario timing is in fake nanoseconds.
#include <gtest/gtest.h>

#include "runtime/watchdog.hpp"

namespace lpt {
namespace {

using watchdog_detail::evaluate_worker;
using watchdog_detail::kFlagQuantumOverrun;
using watchdog_detail::kFlagRunnableStarvation;
using watchdog_detail::kFlagWorkerStall;
using watchdog_detail::WatchdogLimits;
using watchdog_detail::WorkerObs;
using watchdog_detail::WorkerWatch;

WatchdogLimits limits() {
  WatchdogLimits l;
  l.runnable_ns = 100;
  l.quantum_ns = 200;
  l.stall_ticks = 4;
  return l;
}

WorkerObs obs(std::int64_t now, std::uint64_t dispatches,
              std::int64_t depth = 0, bool preemptible = false,
              std::uint64_t ticks = 0, std::uint64_t entries = 0) {
  WorkerObs o;
  o.now_ns = now;
  o.dispatches = dispatches;
  o.ticks_sent = ticks;
  o.handler_entries = entries;
  o.queue_depth = depth;
  o.parked = false;
  o.preemptible_running = preemptible;
  return o;
}

TEST(WatchdogEval, FirstObservationOnlyPrimes) {
  WorkerWatch w;
  // Ancient-looking state on the very first call must not flag anything.
  EXPECT_EQ(evaluate_worker(obs(1'000'000, 0, /*depth=*/10), limits(), w), 0u);
  EXPECT_TRUE(w.primed);
}

TEST(WatchdogEval, FlagsStarvationOnceUntilProgress) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 1), l, w);
  EXPECT_EQ(evaluate_worker(obs(50, 5, 1), l, w), 0u);  // under threshold
  EXPECT_EQ(evaluate_worker(obs(120, 5, 1), l, w), kFlagRunnableStarvation);
  // Latched: the same episode does not re-flag.
  EXPECT_EQ(evaluate_worker(obs(500, 5, 1), l, w), 0u);
  // A dispatch ends the episode; a fresh starve period flags again.
  EXPECT_EQ(evaluate_worker(obs(600, 6, 1), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(800, 6, 1), l, w), kFlagRunnableStarvation);
}

TEST(WatchdogEval, StarvationAgeCappedByQueueNonEmptyTime) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  // Worker idle (no dispatches) with an empty queue for a long time.
  evaluate_worker(obs(0, 5, 0), l, w);
  EXPECT_EQ(evaluate_worker(obs(10'000, 5, 0), l, w), 0u);
  // Work appears: the clock starts at the 0 -> >0 transition, not at the
  // last dispatch, so no instant flag...
  EXPECT_EQ(evaluate_worker(obs(10'050, 5, 1), l, w), 0u);
  // ...but it does flag once the *queue's* wait passes the threshold.
  EXPECT_EQ(evaluate_worker(obs(10'200, 5, 1), l, w),
            kFlagRunnableStarvation);
}

TEST(WatchdogEval, EmptyQueueOrParkedNeverStarves) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 1), l, w);
  WorkerObs parked = obs(1'000, 5, 1);
  parked.parked = true;
  EXPECT_EQ(evaluate_worker(parked, l, w) & kFlagRunnableStarvation, 0u);
  EXPECT_EQ(evaluate_worker(obs(2'000, 5, 0), l, w) & kFlagRunnableStarvation,
            0u);
}

TEST(WatchdogEval, FlagsStallAfterUnansweredTicks) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 0, true, /*ticks=*/10, /*entries=*/10), l, w);
  // Ticks advance, entries frozen, dispatches frozen -> stall at >= 4.
  EXPECT_EQ(evaluate_worker(obs(50, 5, 0, true, 13, 10), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(90, 5, 0, true, 14, 10), l, w),
            kFlagWorkerStall);
  EXPECT_EQ(evaluate_worker(obs(95, 5, 0, true, 20, 10), l, w), 0u);  // latched
  // A handler entry re-baselines: ticks since that entry start at zero.
  EXPECT_EQ(evaluate_worker(obs(100, 5, 0, true, 21, 11), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(150, 5, 0, true, 24, 11), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(190, 5, 0, true, 25, 11), l, w),
            kFlagWorkerStall);
}

TEST(WatchdogEval, ChurningWorkerNeverStalls) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 0, true, 10, 10), l, w);
  // Dispatches keep advancing: frozen_ns is 0 at every poll, so even a large
  // tick/entry gap (signals landing in scheduler context) cannot stall-flag.
  EXPECT_EQ(evaluate_worker(obs(100, 6, 0, true, 30, 10), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(200, 7, 0, true, 50, 10), l, w), 0u);
}

TEST(WatchdogEval, StallDisabledWithoutTicks) {
  WorkerWatch w;
  WatchdogLimits l = limits();
  l.stall_ticks = 0;  // PosixPerWorker / TimerKind::None configuration
  evaluate_worker(obs(0, 5, 0, true, 0, 0), l, w);
  EXPECT_EQ(evaluate_worker(obs(10'000, 5, 0, true, 0, 0), l, w) &
                kFlagWorkerStall,
            0u);
}

TEST(WatchdogEval, FlagsQuantumOverrunForLongRunningPreemptible) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 0, true, 10, 10), l, w);
  EXPECT_EQ(evaluate_worker(obs(150, 5, 0, true, 11, 11), l, w), 0u);
  // Entries keep advancing (degraded KLT-switch ticks) so no stall — but the
  // ULT has overstayed: overrun at frozen >= quantum_ns.
  EXPECT_EQ(evaluate_worker(obs(250, 5, 0, true, 12, 12), l, w),
            kFlagQuantumOverrun);
  EXPECT_EQ(evaluate_worker(obs(900, 5, 0, true, 13, 13), l, w),
            0u);  // latched
  // Dispatch clears the episode.
  EXPECT_EQ(evaluate_worker(obs(1'000, 6, 0, true, 13, 13), l, w), 0u);
  EXPECT_EQ(evaluate_worker(obs(1'300, 6, 0, true, 13, 13), l, w),
            kFlagQuantumOverrun);
}

TEST(WatchdogEval, NonPreemptibleUltNeverOverruns) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5), l, w);
  // A Preempt::None ULT may legitimately run forever.
  EXPECT_EQ(evaluate_worker(obs(100'000, 5), l, w) & kFlagQuantumOverrun, 0u);
}

TEST(WatchdogEval, SimultaneousStarvationAndOverrun) {
  WorkerWatch w;
  const WatchdogLimits l = limits();
  evaluate_worker(obs(0, 5, 1, true, 10, 10), l, w);
  const unsigned f = evaluate_worker(obs(300, 5, 1, true, 11, 11), l, w);
  EXPECT_NE(f & kFlagRunnableStarvation, 0u);
  EXPECT_NE(f & kFlagQuantumOverrun, 0u);
  EXPECT_EQ(f & kFlagWorkerStall, 0u);
}

TEST(WatchdogKind, NamesAreStable) {
  EXPECT_STREQ(watchdog_kind_name(WatchdogReport::Kind::kRunnableStarvation),
               "runnable_starvation");
  EXPECT_STREQ(watchdog_kind_name(WatchdogReport::Kind::kWorkerStall),
               "worker_stall");
  EXPECT_STREQ(watchdog_kind_name(WatchdogReport::Kind::kQuantumOverrun),
               "quantum_overrun");
}

}  // namespace
}  // namespace lpt
