// Integration tests: the real tiled Cholesky on the real preemptive runtime,
// including the paper's deadlock scenario live (§4.1).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <vector>

#include "apps/cholesky/cholesky.hpp"
#include "apps/linalg/blas.hpp"

namespace lpt::apps {
namespace {

std::vector<double> factor_and_diff(Runtime& rt, TiledCholeskyOptions opts,
                                    double* out_diff) {
  const int n = opts.tiles * opts.tile_n;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  make_spd(n, a.data(), n, 99);
  std::vector<double> ref = a;
  EXPECT_TRUE(cholesky_reference(n, ref.data(), n));
  EXPECT_TRUE(tiled_cholesky(rt, opts, a.data(), n));
  *out_diff = lower_max_diff(n, a.data(), n, ref.data(), n);
  return a;
}

TEST(TiledCholesky, MatchesReferenceSequentialTiles) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  TiledCholeskyOptions opts;
  opts.tiles = 3;
  opts.tile_n = 16;
  double diff = 1;
  factor_and_diff(rt, opts, &diff);
  EXPECT_LT(diff, 1e-9);
}

TEST(TiledCholesky, MatchesReferenceManyTilesManyWorkers) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  TiledCholeskyOptions opts;
  opts.tiles = 6;
  opts.tile_n = 12;
  double diff = 1;
  factor_and_diff(rt, opts, &diff);
  EXPECT_LT(diff, 1e-9);
}

TEST(TiledCholesky, InnerTeamsWithYieldingBarrier) {
  // The "reverse-engineered MKL" configuration: nonpreemptive threads,
  // inner teams that yield while spinning.
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  TiledCholeskyOptions opts;
  opts.tiles = 4;
  opts.tile_n = 16;
  opts.inner_width = 3;
  opts.inner_wait = TeamWait::kSpinYield;
  double diff = 1;
  factor_and_diff(rt, opts, &diff);
  EXPECT_LT(diff, 1e-9);
}

TEST(TiledCholesky, InnerSpinBarrierWithPreemption) {
  // Faithful MKL spin barriers are safe when the threads are preemptive.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  TiledCholeskyOptions opts;
  opts.tiles = 4;
  opts.tile_n = 16;
  opts.inner_width = 3;
  opts.inner_wait = TeamWait::kSpin;
  opts.preempt = Preempt::KltSwitch;
  double diff = 1;
  factor_and_diff(rt, opts, &diff);
  EXPECT_LT(diff, 1e-9);
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(TiledCholesky, InnerSpinBarrierDeadlocksWithoutPreemption) {
  // The live §4.1 deadlock: 1 worker, spin barrier, nonpreemptive — run in a
  // child process and require that it does NOT complete.
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    RuntimeOptions o;
    o.num_workers = 1;
    Runtime rt(o);
    TiledCholeskyOptions opts;
    opts.tiles = 3;  // >= 3 so GEMM tasks (the teamed kernel) exist
    opts.tile_n = 8;
    opts.inner_width = 2;
    opts.inner_wait = TeamWait::kSpin;  // pure busy-wait, no yield
    const int n = opts.tiles * opts.tile_n;
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    make_spd(n, a.data(), n, 5);
    tiled_cholesky(rt, opts, a.data(), n);
    _exit(0);  // unreachable if the deadlock holds
  }
  int status = 0;
  pid_t r = 0;
  for (int waited_ms = 0; waited_ms < 2000; waited_ms += 10) {
    r = waitpid(pid, &status, WNOHANG);
    ASSERT_NE(r, -1);
    if (r == pid) break;
    usleep(10'000);
  }
  EXPECT_EQ(r, 0) << "spin-barrier Cholesky unexpectedly completed without "
                     "preemption";
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
}

TEST(TiledCholesky, BlockingTeamBarrierAlsoWorks)
{
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  TiledCholeskyOptions opts;
  opts.tiles = 3;
  opts.tile_n = 16;
  opts.inner_width = 2;
  opts.inner_wait = TeamWait::kBlocking;
  double diff = 1;
  factor_and_diff(rt, opts, &diff);
  EXPECT_LT(diff, 1e-9);
}

}  // namespace
}  // namespace lpt::apps
