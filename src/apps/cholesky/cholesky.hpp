// Tiled Cholesky factorization on the lpt runtime — the real-computation
// counterpart of the paper's §4.1 evaluation. The matrix is partitioned into
// square tiles; POTRF/TRSM/SYRK/GEMM tile tasks are spawned as their data
// dependences resolve, and each tile kernel optionally runs an inner
// MKL-like team whose end-of-call barrier busy-waits (see apps/linalg/team).
//
// On a nonpreemptive runtime with TeamWait::kSpin this can wedge exactly the
// way the paper describes; with preemptive team threads it cannot.
#pragma once

#include <vector>

#include "apps/linalg/team.hpp"
#include "runtime/lpt.hpp"

namespace lpt::apps {

struct TiledCholeskyOptions {
  int tiles = 4;      ///< T: matrix is (T*tile_n)^2
  int tile_n = 64;
  /// Inner team width for each tile kernel; 1 = no inner parallelism.
  int inner_width = 1;
  TeamWait inner_wait = TeamWait::kSpinYield;
  Preempt preempt = Preempt::None;  ///< preemption type of all task threads
};

/// Factor the SPD matrix `a` (n x n column-major, n = tiles*tile_n, lower
/// triangle used) in place on the current lpt runtime. Must be called from a
/// non-ULT (external) thread; returns when the factorization completes.
/// Returns false if the matrix is not positive definite.
bool tiled_cholesky(Runtime& rt, const TiledCholeskyOptions& opts, double* a,
                    int lda);

}  // namespace lpt::apps
