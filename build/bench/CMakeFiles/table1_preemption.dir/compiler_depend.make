# Empty compiler generated dependencies file for table1_preemption.
# This may be replaced when dependencies are built.
