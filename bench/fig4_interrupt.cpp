// Figure 4 reproduction: average time for an OS timer interruption vs the
// number of workers, 1 ms interval, for the four timer strategies.
//
// Paper anchors (Skylake): ~1-2 µs flat for per-worker (aligned); linear
// growth to ~100 µs at ~100 workers for per-worker (creation-time);
// per-process (one-to-all) linear but below creation-time; per-process
// (chain) flat, slightly above aligned.
//
// Next to the simulation, a companion section runs the REAL runtime with the
// tracer armed and reports the measured timer-fire -> handler-entry latency
// per strategy (docs/observability.md). This host has one core, so absolute
// values are noisy and worker counts are kept tiny; the simulated section is
// the faithful reproduction.
#include <cstdio>

#include <atomic>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "sim/timers.hpp"

using namespace lpt;
using namespace lpt::sim;

namespace {

volatile std::uint64_t g_sink;

struct RealDelivery {
  trace::HistSnapshot hist;          ///< timer fire -> handler entry
  trace::HistSnapshot sched_delay;   ///< ready -> dispatch (all pools)
  trace::HistSnapshot spawn_latency; ///< spawn -> first dispatch
  metrics::Snapshot metrics;         ///< tick-effectiveness counters
};

/// Run a traced real runtime with `workers` busy signal-yield ULTs for
/// ~100 ms and return the preemption-delivery histogram plus the run's
/// metrics snapshot.
RealDelivery real_delivery(TimerKind timer, int workers) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.timer = timer;
  o.interval_us = 1000;
  o.trace.enabled = true;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  std::atomic<bool> stop{false};
  std::vector<Thread> ts;
  for (int i = 0; i < workers; ++i)
    ts.push_back(rt.spawn(
        [&] {
          while (!stop.load(std::memory_order_relaxed))
            g_sink = busy_work_iters(20'000);
        },
        attrs));
  const std::int64_t deadline = now_ns() + 100'000'000;
  while (now_ns() < deadline) {
    timespec req{0, 5'000'000};
    nanosleep(&req, nullptr);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  const Runtime::Stats st = rt.stats();
  return {st.preempt_delivery_ns, st.sched_delay_ns, st.spawn_latency_ns,
          rt.metrics_snapshot()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("fig4_interrupt");

  std::printf("=== Figure 4: average timer interruption time (us) ===\n");
  std::printf("Simulated %s cost model, 1 ms interval, all workers "
              "preemptive, 1000 ticks averaged.\n\n",
              CostModel::skylake().name.c_str());

  const CostModel cm = CostModel::skylake();
  const Time interval = 1'000'000;
  const int ticks = 1000;
  const int worker_counts[] = {1, 2, 4, 8, 16, 28, 56, 84, 100, 112};

  Table table({"# workers", "per-worker (creation)", "per-worker (aligned)",
               "per-process (one-to-all)", "per-process (chain)"});
  for (int n : worker_counts) {
    auto cell = [&](TimerStrategy s) {
      Stats st = measure_interruption_time(cm, s, n, interval, ticks);
      return Table::fmt("%8.2f +- %.2f", st.mean() / 1000.0,
                        st.stddev() / 1000.0);
    };
    table.add_row({Table::fmt("%d", n),
                   cell(TimerStrategy::kPerWorkerCreationTime),
                   cell(TimerStrategy::kPerWorkerAligned),
                   cell(TimerStrategy::kProcessOneToAll),
                   cell(TimerStrategy::kProcessChain)});
  }
  table.print();

  // Qualitative checks against the paper's shape.
  auto mean_at = [&](TimerStrategy s, int n) {
    return measure_interruption_time(cm, s, n, interval, ticks).mean();
  };
  const double naive100 = mean_at(TimerStrategy::kPerWorkerCreationTime, 100);
  const double naive1 = mean_at(TimerStrategy::kPerWorkerCreationTime, 1);
  const double aligned100 = mean_at(TimerStrategy::kPerWorkerAligned, 100);
  const double aligned1 = mean_at(TimerStrategy::kPerWorkerAligned, 1);
  const double chain100 = mean_at(TimerStrategy::kProcessChain, 100);
  const double o2a100 = mean_at(TimerStrategy::kProcessOneToAll, 100);

  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] creation-time grows ~linearly (x%0.1f at 100 workers; "
              "paper: ~100 us => ~50x)\n",
              naive100 > 20 * naive1 ? "OK" : "MISMATCH", naive100 / naive1);
  std::printf("  [%s] aligned stays flat (%.2f us at 1 -> %.2f us at 100)\n",
              aligned100 < 1.5 * aligned1 ? "OK" : "MISMATCH",
              aligned1 / 1000.0, aligned100 / 1000.0);
  std::printf("  [%s] chain flat and slightly above aligned (%.2f vs %.2f us)\n",
              (chain100 > aligned100 && chain100 < 3 * aligned100) ? "OK"
                                                                   : "MISMATCH",
              chain100 / 1000.0, aligned100 / 1000.0);
  std::printf("  [%s] one-to-all grows but stays below creation-time "
              "(%.1f vs %.1f us at 100)\n",
              (o2a100 > 5 * aligned100 && o2a100 < naive100) ? "OK" : "MISMATCH",
              o2a100 / 1000.0, naive100 / 1000.0);
  json.set("sim.creation_time.us_at_100", naive100 / 1000.0);
  json.set("sim.aligned.us_at_100", aligned100 / 1000.0);
  json.set("sim.one_to_all.us_at_100", o2a100 / 1000.0);
  json.set("sim.chain.us_at_100", chain100 / 1000.0);

  std::printf("\n--- Real lpt runtime on this host: tracer-measured delivery "
              "latency (timer fire -> handler entry) ---\n");
  std::printf("1 ms interval, busy signal-yield ULTs, ~100 ms per cell; "
              "1-core container => small counts only.\n\n");
  struct RealRow {
    const char* name;
    const char* key;
    TimerKind kind;
  };
  const RealRow rows[] = {
      {"per-worker (aligned)", "aligned", TimerKind::PerWorkerAligned},
      {"per-worker (creation)", "creation_time", TimerKind::PerWorkerCreationTime},
      {"per-process (one-to-all)", "one_to_all", TimerKind::ProcessOneToAll},
      {"per-process (chain)", "chain", TimerKind::ProcessChain},
  };
  Table real_table({"strategy", "workers", "preemptions", "delivery p50 (us)",
                    "p99 (us)", "delay p50/p99/p999 (us)", "eff (%)"});
  for (const RealRow& row : rows) {
    for (int workers : {1, 2}) {
      const RealDelivery r = real_delivery(row.kind, workers);
      const trace::HistSnapshot& h = r.hist;
      real_table.add_row(
          {row.name, Table::fmt("%d", workers),
           Table::fmt("%llu", static_cast<unsigned long long>(h.count())),
           Table::fmt("%7.1f", h.percentile_ns(50.0) / 1000.0),
           Table::fmt("%7.1f", h.percentile_ns(99.0) / 1000.0),
           Table::fmt("%.0f/%.0f/%.0f", r.sched_delay.percentile_ns(50.0) / 1000.0,
                      r.sched_delay.percentile_ns(99.0) / 1000.0,
                      r.sched_delay.percentile_ns(99.9) / 1000.0),
           Table::fmt("%5.0f", 100.0 * r.metrics.tick_effectiveness())});
      const std::string key =
          std::string("real.") + row.key + ".w" + std::to_string(workers);
      json.set_hist(key + ".delivery", h);
      json.set_sched_hists(key, r.sched_delay, r.spawn_latency);
      json.set_tick_effectiveness(key + ".ticks", r.metrics);
    }
  }
  real_table.print();
  std::printf("\n\"eff\" = handler entries / ticks sent from the always-on "
              "metrics (docs/observability.md): the fraction of ticks that "
              "landed on preemptible ULT code. \"delay\" = the causal "
              "accounting's ready->dispatch scheduling delay over every "
              "dispatch in the cell.\n");

  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
