// Shared benchmark-output helpers. Every bench binary accepts
//
//   --json <path>
//
// and, in addition to its human-readable table, dumps the headline numbers
// as one flat JSON object so perf trajectories can be diffed by machines:
//
//   {"bench": "table1_preemption",
//    "metrics": {"real.signal_yield.ext_us": 3.48, ...}}
//
// Keys are dotted paths in insertion order; values are finite numbers or
// strings (NaN/inf become null — JSON has no literal for them).
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"

namespace lpt::bench {

/// Extract the `--json <path>` argument; "" when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  return {};
}

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double v) { entries_.push_back({key, num(v)}); }
  void set(const std::string& key, std::uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    entries_.push_back({key, buf});
  }
  void set_str(const std::string& key, const std::string& v) {
    entries_.push_back({key, quote(v)});
  }
  /// Expands to <key>.{count,mean,median,p99} (stddev when n >= 2).
  void set_stats(const std::string& key, const Stats& s) {
    set(key + ".count", static_cast<std::uint64_t>(s.count()));
    if (s.empty()) return;
    set(key + ".mean", s.mean());
    set(key + ".median", s.median());
    set(key + ".p99", s.percentile(99.0));
    if (s.count() >= 2) set(key + ".stddev", s.stddev());
  }
  /// Expands a metrics snapshot's preemption-tick pipeline to
  /// <key>.{ticks_sent,handler_entries,handler_deferred,klt_degraded_ticks,
  /// preemptions,tick_effectiveness,switch_rate} — how many ticks were sent,
  /// how many landed on preemptible code, and how many became switches.
  void set_tick_effectiveness(const std::string& key,
                              const metrics::Snapshot& s) {
    set(key + ".ticks_sent", s.ticks_sent);
    set(key + ".handler_entries", s.handler_entries);
    set(key + ".handler_deferred", s.handler_deferred);
    set(key + ".klt_degraded_ticks", s.klt_degraded_ticks);
    set(key + ".preemptions", s.preemptions);
    set(key + ".tick_effectiveness", s.tick_effectiveness());
    set(key + ".switch_rate", s.switch_rate());
  }

  /// Expands a tracer histogram to <key>.{count,p50_ns,p90_ns,p99_ns,p999_ns}.
  void set_hist(const std::string& key, const trace::HistSnapshot& h) {
    set(key + ".count", h.count());
    if (h.count() == 0) return;
    set(key + ".p50_ns", h.percentile_ns(50.0));
    set(key + ".p90_ns", h.percentile_ns(90.0));
    set(key + ".p99_ns", h.percentile_ns(99.0));
    set(key + ".p999_ns", h.percentile_ns(99.9));
  }

  /// The two causal-scheduling histograms of a traced run, as
  /// <key>.{sched_delay,spawn_latency}.{count,p50_ns,...} — call with
  /// Runtime::stats() taken while tracing was armed (no-op histograms
  /// otherwise; see docs/observability.md "Causal tracing").
  void set_sched_hists(const std::string& key, const trace::HistSnapshot& delay,
                       const trace::HistSnapshot& spawn) {
    set_hist(key + ".sched_delay", delay);
    set_hist(key + ".spawn_latency", spawn);
  }

  /// Write the report; a "" path is a silent no-op (bench ran without
  /// --json). Returns true when a file was written.
  bool write(const std::string& path) const {
    if (path.empty()) return false;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_util: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"metrics\": {", quote(name_).c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "%s\n    %s: %s", i != 0 ? "," : "",
                   quote(entries_[i].first).c_str(), entries_[i].second.c_str());
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("\n[json written to %s]\n", path.c_str());
    return true;
  }

 private:
  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace lpt::bench
