#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(Mutex, ProtectsCounterAcrossWorkers) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  Mutex m;
  long counter = 0;
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn([&] {
      for (int k = 0; k < 1000; ++k) {
        m.lock();
        ++counter;
        m.unlock();
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST(Mutex, BlockedWaiterResumesOnUnlock) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  Mutex m;
  std::vector<int> order;
  Thread a = rt.spawn([&] {
    m.lock();
    order.push_back(1);
    this_thread::yield();  // let b hit the lock and block
    order.push_back(2);
    m.unlock();
  });
  Thread b = rt.spawn([&] {
    m.lock();
    order.push_back(3);
    m.unlock();
  });
  a.join();
  b.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Mutex, TryLockReflectsState) {
  Runtime rt{RuntimeOptions{}};
  Mutex m;
  Thread t = rt.spawn([&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  t.join();
}

TEST(Mutex, FairHandoffFifo) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  Mutex m;
  std::vector<int> order;
  Thread holder = rt.spawn([&] {
    m.lock();
    for (int i = 0; i < 4; ++i) this_thread::yield();  // queue up waiters
    m.unlock();
  });
  std::vector<Thread> waiters;
  for (int i = 0; i < 3; ++i)
    waiters.push_back(rt.spawn([&, i] {
      m.lock();
      order.push_back(i);
      m.unlock();
    }));
  holder.join();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CondVar, WaitReleasesAndReacquiresMutex) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> consumed{false};
  Thread consumer = rt.spawn([&] {
    m.lock();
    while (!ready) cv.wait(m);
    consumed.store(true);
    m.unlock();
  });
  Thread producer = rt.spawn([&] {
    for (int i = 0; i < 3; ++i) this_thread::yield();
    m.lock();
    ready = true;
    m.unlock();
    cv.notify_one();
  });
  consumer.join();
  producer.join();
  EXPECT_TRUE(consumed.load());
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 5; ++i)
    ts.push_back(rt.spawn([&] {
      m.lock();
      while (!go) cv.wait(m);
      m.unlock();
      woke.fetch_add(1);
    }));
  Thread waker = rt.spawn([&] {
    for (int i = 0; i < 10; ++i) this_thread::yield();
    m.lock();
    go = true;
    m.unlock();
    cv.notify_all();
  });
  for (auto& t : ts) t.join();
  waker.join();
  EXPECT_EQ(woke.load(), 5);
}

TEST(CondVar, NotifyWithoutWaitersIsNoop) {
  Runtime rt{RuntimeOptions{}};
  CondVar cv;
  Thread t = rt.spawn([&] {
    cv.notify_one();
    cv.notify_all();
  });
  t.join();
  SUCCEED();
}

TEST(Barrier, SynchronizesPhases) {
  RuntimeOptions o;
  o.num_workers = 3;
  Runtime rt(o);
  constexpr int kParties = 6;
  constexpr int kPhases = 10;
  Barrier bar(kParties);
  std::atomic<int> phase_counts[kPhases] = {};
  std::atomic<bool> violation{false};
  std::vector<Thread> ts;
  for (int p = 0; p < kParties; ++p)
    ts.push_back(rt.spawn([&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        phase_counts[ph].fetch_add(1);
        bar.arrive_and_wait();
        // After the barrier, every participant must have arrived at ph.
        if (phase_counts[ph].load() != kParties) violation.store(true);
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Runtime rt{RuntimeOptions{}};
  Barrier bar(1);
  Thread t = rt.spawn([&] {
    for (int i = 0; i < 100; ++i) bar.arrive_and_wait();
  });
  t.join();
  SUCCEED();
}

TEST(BusyFlag, YieldingWaitWorksOnNonpreemptiveThreads) {
  RuntimeOptions o;
  o.num_workers = 1;  // forces cooperative interleaving
  Runtime rt(o);
  BusyFlag flag;
  std::atomic<bool> passed{false};
  Thread waiter = rt.spawn([&] {
    flag.wait(BusyFlag::WaitMode::kSpinWithYield);
    passed.store(true);
  });
  Thread setter = rt.spawn([&] { flag.set(); });
  waiter.join();
  setter.join();
  EXPECT_TRUE(passed.load());
}

TEST(BusyFlag, PureSpinWaitNeedsPreemption) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  BusyFlag flag;
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  Thread waiter = rt.spawn([&] { flag.wait(BusyFlag::WaitMode::kSpin); }, attrs);
  Thread setter = rt.spawn([&] { flag.set(); }, attrs);
  waiter.join();
  setter.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}


// ---------------------------------------------------------------------------
// Timed waits (self-healing PR: timed-wait registry, ~1 ms granularity)
// ---------------------------------------------------------------------------

TEST(TimedSync, TryLockForTimesOutThenSucceeds) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  Thread holder = rt.spawn([&] {
    m.lock();
    held.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) this_thread::yield();
    m.unlock();
  });
  Thread contender = rt.spawn([&] {
    while (!held.load(std::memory_order_acquire)) this_thread::yield();
    const std::int64_t start = now_ns();
    EXPECT_FALSE(m.try_lock_for(std::chrono::milliseconds(20)));
    EXPECT_GE(now_ns() - start, 15'000'000) << "returned before the timeout";
    release.store(true, std::memory_order_release);
    EXPECT_TRUE(m.try_lock_for(std::chrono::seconds(10)));
    m.unlock();
  });
  holder.join();
  contender.join();
}

TEST(TimedSync, TryLockForZeroTimeoutIsTryLock) {
  Runtime rt{RuntimeOptions{}};
  Mutex m;
  Thread t = rt.spawn([&] {
    EXPECT_TRUE(m.try_lock_for(std::chrono::nanoseconds(0)));
    EXPECT_FALSE(m.try_lock_for(std::chrono::nanoseconds(0)));
    m.unlock();
  });
  t.join();
}

TEST(TimedSync, CondVarWaitForTimesOutHoldingMutex) {
  Runtime rt{RuntimeOptions{}};
  Mutex m;
  CondVar cv;
  Thread t = rt.spawn([&] {
    m.lock();
    const std::int64_t start = now_ns();
    EXPECT_FALSE(cv.wait_for(m, std::chrono::milliseconds(20)));
    EXPECT_GE(now_ns() - start, 15'000'000);
    // m is re-held after a timed-out wait: mutating shared state is legal.
    m.unlock();
  });
  t.join();
}

TEST(TimedSync, CondVarWaitForWinsWhenNotified) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  CondVar cv;
  std::atomic<bool> waiting{false};
  bool ready = false;
  Thread waiter = rt.spawn([&] {
    m.lock();
    waiting.store(true, std::memory_order_release);
    bool ok = true;
    while (!ready && ok) ok = cv.wait_for(m, std::chrono::seconds(10));
    EXPECT_TRUE(ok);
    EXPECT_TRUE(ready);
    m.unlock();
  });
  Thread notifier = rt.spawn([&] {
    while (!waiting.load(std::memory_order_acquire)) this_thread::yield();
    m.lock();
    ready = true;
    m.unlock();
    cv.notify_one();
  });
  waiter.join();
  notifier.join();
}

TEST(TimedSync, SleepForReleasesWorkerAndWakes) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  std::atomic<std::uint64_t> other_work{0};
  std::atomic<bool> stop{false};
  // On the single worker, a sleeping ULT must not block its sibling.
  Thread bg = rt.spawn([&] {
    while (!stop.load(std::memory_order_acquire)) {
      other_work.fetch_add(1, std::memory_order_relaxed);
      this_thread::yield();
    }
  });
  Thread sleeper = rt.spawn([&] {
    const std::int64_t start = now_ns();
    this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_GE(now_ns() - start, 25'000'000);
  });
  sleeper.join();
  EXPECT_GT(other_work.load(std::memory_order_relaxed), 0u);
  stop.store(true, std::memory_order_release);
  bg.join();
}

TEST(TimedSync, SleepForOutsideUltFallsBackToNanosleep) {
  const std::int64_t start = now_ns();
  this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_GE(now_ns() - start, 10'000'000);
}

TEST(TimedSync, JoinForTimesOutThenJoins) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  std::atomic<bool> release{false};
  Thread worker = rt.spawn([&] {
    while (!release.load(std::memory_order_acquire)) this_thread::yield();
  });
  // ULT-context join_for.
  Thread joiner = rt.spawn([&] {
    EXPECT_FALSE(worker.join_for(std::chrono::milliseconds(20)));
    EXPECT_TRUE(worker.joinable()) << "timed-out join must keep the handle";
    release.store(true, std::memory_order_release);
    EXPECT_TRUE(worker.join_for(std::chrono::seconds(30)));
    EXPECT_FALSE(worker.joinable());
  });
  joiner.join();
}

TEST(TimedSync, JoinForFromExternalThread) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  std::atomic<bool> release{false};
  Thread worker = rt.spawn([&] {
    while (!release.load(std::memory_order_acquire)) this_thread::yield();
  });
  // The test body runs on an external (non-ULT) kernel thread.
  EXPECT_FALSE(worker.join_for(std::chrono::milliseconds(20)));
  EXPECT_TRUE(worker.joinable());
  release.store(true, std::memory_order_release);
  EXPECT_TRUE(worker.join_for(std::chrono::seconds(30)));
  EXPECT_FALSE(worker.joinable());
}

TEST(Sync, MutexUnderPreemption) {
  // Locks + implicit preemption: the no-preempt guards inside the
  // primitives must prevent a preempted lock holder from wedging a worker.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 300;
  Runtime rt(o);
  Mutex m;
  long counter = 0;
  std::vector<Thread> ts;
  for (int i = 0; i < 6; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = (i % 2 == 0) ? Preempt::SignalYield : Preempt::KltSwitch;
    ts.push_back(rt.spawn(
        [&] {
          for (int k = 0; k < 2000; ++k) {
            m.lock();
            ++counter;
            m.unlock();
          }
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 12000);
}

}  // namespace
}  // namespace lpt
