// Blocking-syscall resilience (docs/robustness.md): guards and wrappers for
// syscalls that may block the hosting kernel thread for arbitrarily long.
//
// A preemption tick cannot rescue a worker wedged inside the kernel — the
// signal is only delivered when the syscall returns. `blocking_region`
// therefore *publishes* the wedge instead of preventing it: it pins the ULT
// to its current KLT (NoPreemptGuard semantics, so the host token cannot be
// claimed away by the preemption handler mid-syscall) and flips the worker's
// syscall-epoch word odd with an entry timestamp. The watchdog's wedge
// sentinel reads that word; once the region has been wedged past
// RuntimeOptions::syscall_grace_ns it activates a compensating spare KLT on
// the worker (the host-token CAS arbiter from forced replacement), so the
// worker's runnable ULTs keep dispatching while the old host sleeps in the
// kernel. When the syscall finally returns, the region exit notices its
// epoch was compensated and *reabsorbs*: the surviving KLT re-enqueues the
// ULT and parks itself back into the KLT pool — nothing is killed, and the
// kernel-thread population returns to baseline.
//
// `io::call()` adds the retry half: EINTR retries immediately, EAGAIN /
// EWOULDBLOCK retries with capped exponential backoff (cooperative sleep
// inside a ULT), all bounded by an optional relative deadline that turns
// exhaustion into errno = ETIMEDOUT. The named wrappers (io::read etc.)
// route through the sys:: shim, so the LPT_FAULT harness can storm them.
//
// Everything degrades to plain syscalls outside a runtime: constructed on a
// thread with no current ULT, the guard is inert and call() only keeps its
// retry/deadline behavior.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdint>
#include <utility>

namespace lpt {
struct ThreadCtl;
struct Worker;
}  // namespace lpt

namespace lpt::io {

/// RAII annotation for one potentially-blocking syscall. Pins the ULT to its
/// KLT and publishes the in-syscall state word for the wedge sentinel; the
/// destructor un-publishes and, when the sentinel compensated this region,
/// takes the reabsorption path (re-enqueue the ULT, park this KLT).
/// Nestable: only the outermost region on a worker publishes. Inert outside
/// ULT context.
class blocking_region {
 public:
  explicit blocking_region(void* site = nullptr);
  ~blocking_region();
  blocking_region(const blocking_region&) = delete;
  blocking_region& operator=(const blocking_region&) = delete;

 private:
  ThreadCtl* self_ = nullptr;   ///< nullptr = inert (no runtime)
  Worker* worker_ = nullptr;
  std::uint64_t epoch_ = 0;     ///< the odd epoch this region published
  bool published_ = false;      ///< false when nested inside another region
  std::int64_t enter_ns_ = 0;
};

namespace detail {
/// errno of the kernel thread *currently* hosting the caller, read/written
/// through a non-inlined call. glibc declares __errno_location()
/// __attribute__((const)), so the optimizer may compute the errno address
/// once per function and reuse it — wrong in a ULT that migrates between
/// kernel threads at a suspension point (backoff sleep, reabsorption). Any
/// errno access that straddles a possible suspension must go through these.
int last_errno();
void set_errno(int err);
/// Relative → absolute CLOCK_MONOTONIC deadline; 0 stays 0 (no deadline).
std::int64_t call_deadline(std::int64_t rel_ns);
/// Decide whether to retry after `err` (EINTR/EAGAIN/EWOULDBLOCK): sleeps
/// the capped exponential backoff for EAGAIN, clamped to the remaining
/// deadline. Returns false when the deadline has expired (caller reports
/// ETIMEDOUT).
bool call_backoff(int err, std::int64_t deadline_abs, std::int64_t* backoff_ns);
}  // namespace detail

/// Run `fn` (a callable performing one syscall, returning a signed result
/// with -1/errno failure) inside a blocking_region, retrying EINTR
/// immediately and EAGAIN/EWOULDBLOCK with capped exponential backoff.
/// `deadline_ns` bounds the whole call including retries (relative, 0 =
/// unbounded); on expiry returns the last failure with errno = ETIMEDOUT.
template <typename Fn>
auto call(Fn&& fn, std::int64_t deadline_ns = 0, void* site = nullptr)
    -> decltype(fn()) {
  const std::int64_t deadline_abs = detail::call_deadline(deadline_ns);
  std::int64_t backoff_ns = 0;
  for (;;) {
    decltype(fn()) rc;
    int err = 0;
    {
      blocking_region region(site != nullptr
                                 ? site
                                 : __builtin_return_address(0));
      rc = fn();
      // Capture errno before the region destructor: errno is per-KLT, and
      // the destructor may suspend (reabsorption, deferred-tick yield) and
      // resume this ULT on a different kernel thread. The opaque accessor
      // defeats __errno_location() address caching across the loop's own
      // suspension points (see detail::last_errno).
      if (rc < 0) err = detail::last_errno();
    }
    if (rc >= 0) return rc;
    if (err != EINTR && err != EAGAIN && err != EWOULDBLOCK) {
      detail::set_errno(err);  // re-assert on whichever KLT hosts us now
      return rc;
    }
    if (!detail::call_backoff(err, deadline_abs, &backoff_ns)) {
      detail::set_errno(ETIMEDOUT);
      return rc;
    }
  }
}

/// errno as seen by the kernel thread currently hosting the caller. Use this
/// instead of reading `errno` directly after an io:: call made from ULT
/// context: the call may have migrated the ULT to a different kernel thread,
/// and a compiler that cached the errno address before the call (glibc's
/// __errno_location() is attribute-const) would read the *old* thread's
/// errno. Equivalent to plain errno outside a runtime.
int last_error();

// Named wrappers: the syscall through the sys:: fault-injection shim, inside
// a blocking_region, with call()'s retry/deadline policy. Signatures mirror
// the POSIX calls plus a trailing relative deadline (0 = unbounded).
ssize_t read(int fd, void* buf, std::size_t count, std::int64_t deadline_ns = 0);
ssize_t write(int fd, const void* buf, std::size_t count,
              std::int64_t deadline_ns = 0);
int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
           std::int64_t deadline_ns = 0);
int connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen,
            std::int64_t deadline_ns = 0);
int poll(struct pollfd* fds, nfds_t nfds, int timeout,
         std::int64_t deadline_ns = 0);

}  // namespace lpt::io
