file(REMOVE_RECURSE
  "liblpt_runtime.a"
)
