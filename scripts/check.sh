#!/usr/bin/env bash
# Repo gate: configure + build + tier-1 tests, then the tracer's
# non-context-switching unit tests under ThreadSanitizer.
#
#   scripts/check.sh [build-dir]        (default: build)
#
# TSan scope: the runtime switches between fiber stacks with custom assembly,
# which TSan's happens-before machinery does not understand — full-suite TSan
# produces false positives on every context switch. The tracer's lock-free
# data structures (ring, histograms, exporter) never context-switch, so
# test_trace_unit runs TSan-clean and guards the tracer's concurrency logic.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== [1/3] normal build =="
cmake -S . -B "$BUILD" -G Ninja >/dev/null
cmake --build "$BUILD" -j "$JOBS"

echo "== [2/3] tier-1 tests =="
ctest --test-dir "$BUILD" -L tier1 --output-on-failure

echo "== [3/3] tracer unit tests under TSan =="
cmake -S . -B "$BUILD-tsan" -G Ninja -DLPT_SANITIZE=thread >/dev/null
cmake --build "$BUILD-tsan" -j "$JOBS" --target test_trace_unit
"$BUILD-tsan/tests/test_trace_unit"

echo "== all checks passed =="
