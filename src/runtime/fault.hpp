// Fault isolation (docs/robustness.md): sigaltstack-based SIGSEGV/SIGBUS
// handling that turns a ULT's stack overflow (or, under isolate_faults, any
// synchronous fault in ULT context) into a Failed thread status instead of a
// process crash. The recovery mechanism is the paper's signal-yield trick
// (§3.1.1) applied to synchronous signals: the handler abandons the faulting
// context and jumps straight into the worker's scheduler context, which
// quarantines the stack and wakes joiners.
//
// Faults outside ULT context — scheduler stacks, runtime helper threads,
// application kernel threads — are never contained: the handler re-installs
// whatever disposition was active before the runtime started and returns, so
// the re-executed instruction crashes the process through the original
// handler (or the default core dump) with the fault state intact.
//
// Sanitizer builds: ASan/TSan install their own SEGV handlers and shadow the
// stack region; containment is compiled to a no-op there (available() ==
// false) and the runtime behaves as if fault_isolation were off.
#pragma once

#include <cstddef>

namespace lpt {
class Runtime;
struct KltCtl;
}  // namespace lpt

namespace lpt::fault {

/// Alt-stack bytes per KLT. Generous: the handler itself is shallow, but it
/// must absorb the signal frame (large with AVX-512 state) plus the jump
/// into scheduler context.
inline constexpr std::size_t kAltStackSize = 64 * 1024;

/// True when SEGV/BUS containment can actually engage in this build (not a
/// sanitizer build) AND a runtime has it installed. Tests use this to skip
/// containment assertions under ASan/TSan.
bool available();

/// Install the SIGSEGV/SIGBUS handlers, saving the previous dispositions for
/// chaining. Called once per Runtime construction (no-op when already
/// installed, in sanitizer builds, and under fault_isolation == false).
void install(Runtime& rt);

/// Restore the pre-install dispositions (Runtime destruction).
void restore();

/// Allocate and register this KLT's sigaltstack (owned by *k, freed with it).
/// Called from klt_main on every runtime-managed kernel thread; no-op when
/// containment is not installed.
void register_alt_stack(KltCtl* k);

/// Re-enable SIGSEGV/SIGBUS on the calling KLT. The containment path leaves
/// the handler without sigreturn (it jumps into scheduler context), so the
/// kernel-blocked fault signals must be unblocked explicitly — same protocol
/// as signals::unblock_preempt() after a signal-yield preemption.
void unblock_fault_signals();

}  // namespace lpt::fault
