// Stacks for user-level threads: mmap'd regions with an inaccessible guard
// page below the usable area, plus a free-list pool so the fork/join fast
// path never touches mmap (M:N threads owe much of their speed to cheap
// thread creation, §1/§2.1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/spinlock.hpp"

namespace lpt {

/// One mmap'd stack. Movable, non-copyable; unmaps on destruction.
class Stack {
 public:
  Stack() = default;
  /// Maps usable_size rounded up to whole pages, plus one guard page below.
  explicit Stack(std::size_t usable_size);
  ~Stack();
  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  bool valid() const { return base_ != nullptr; }
  /// Lowest usable address (just above the guard page).
  void* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  void* map_ = nullptr;        // includes guard page
  std::size_t map_size_ = 0;
  void* base_ = nullptr;       // usable area
  std::size_t size_ = 0;
};

/// Thread-safe pool of equally sized stacks.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_size) : stack_size_(stack_size) {}

  /// Pop a cached stack or map a fresh one.
  Stack acquire();
  /// Return a stack for reuse (must have been acquired from this pool).
  void release(Stack&& s);

  std::size_t stack_size() const { return stack_size_; }
  std::size_t cached() const;

 private:
  std::size_t stack_size_;
  mutable Spinlock lock_;
  std::vector<Stack> free_;
};

}  // namespace lpt
