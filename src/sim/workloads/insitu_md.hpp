// Fig 9 workload: LAMMPS-style molecular dynamics with in situ analysis.
// Each timestep runs a fully parallel force computation, then a sequential
// communication window where only the main thread works. Every
// `analysis_interval` steps, 55 analysis threads are spawned over the same
// workers. Priority ensures analysis only runs in the idle windows:
//   Pthreads            — 1:1 threads on the CFS model; priority = niceness
//                         (a *weight*, not strict ordering, §4.3)
//   Argobots            — M:N threads; priority = strict two-class scheduler
//                         with signal-yield preemption of analysis threads
#pragma once

#include "sim/cost_model.hpp"
#include "sim/ult_model.hpp"

namespace lpt::sim {

enum class Fig9Variant {
  kPthreads,
  kPthreadsPriority,
  kArgobots,
  kArgobotsPriority,
};

const char* fig9_variant_name(Fig9Variant v);

struct Fig9Config {
  double atoms = 1e7;        ///< total atoms (paper x-axis; 4 nodes)
  int nodes = 4;             ///< node count; one process is simulated
  int steps = 100;
  int analysis_interval = 1; ///< analyse every k steps
  bool with_analysis = true;

  // Calibration (single-core ns per atom per step / per analysis pass).
  double force_ns_per_atom = 1500.0;
  double analysis_ns_per_atom = 107.0;
  /// Sequential/MPI window per step.
  Time comm_window = 18'000'000;

  Time interval = 1'000'000;  ///< preemption timer (per-process, §4.3)
  std::uint64_t seed = 42;
};

struct Fig9Result {
  Time makespan = 0;
  bool deadlocked = false;
};

Fig9Result run_fig9(const CostModel& cm, const Fig9Config& cfg, Fig9Variant v);

/// Relative overhead of in situ analysis vs the same variant's
/// simulation-only execution (the Fig 9 y-axis), plus that baseline time.
struct Fig9Overhead {
  double overhead;
  Time sim_only_time;
};
Fig9Overhead fig9_overhead(const CostModel& cm, const Fig9Config& cfg,
                           Fig9Variant v);

}  // namespace lpt::sim
