// Fault isolation (docs/robustness.md): a ULT that overflows its stack or
// lets an exception escape is terminated with ThreadStatus Failed while the
// rest of the runtime — sibling ULTs, workers, the KLT pool — keeps going.
//
// Containment tests skip themselves when fault::available() is false
// (sanitizer builds: ASan/TSan own the SIGSEGV handler), and the
// exception-firewall tests skip under sanitizers as well (throwing on a
// fiber stack trips ASan's no-return handling — see kUltThrowSafe). The
// stack-pool hardening and env-override tests run everywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/cpu.hpp"
#include "common/sys.hpp"
#include "common/time.hpp"
#include "context/stack.hpp"
#include "runtime/compat.hpp"
#include "runtime/fault.hpp"
#include "runtime/lpt.hpp"
#include "runtime/watchdog.hpp"

namespace lpt {
namespace {

class FaultIsolation : public ::testing::Test {
 protected:
  void SetUp() override { sys::reset_faults(); }
  void TearDown() override { sys::reset_faults(); }
};

RuntimeOptions quiet_opts(int workers) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.timer = TimerKind::None;  // faults are synchronous; no preemption needed
  o.watchdog_callback = [](const WatchdogReport&) {};
  return o;
}

void busy_spin_ms(std::int64_t ms) {
  const std::int64_t deadline = now_ns() + ms * 1'000'000;
  while (now_ns() < deadline) cpu_pause();
}

// Throwing on a fiber stack trips ASan's __asan_handle_no_return: the
// unwinder unpoisons what ASan believes is the kernel thread's stack and
// reports a false stack-buffer-underflow (google/sanitizers#189). The
// exception-firewall tests therefore skip under sanitizer builds too, even
// though the firewall itself is plain C++.
#if defined(LPT_SANITIZE_BUILD)
constexpr bool kUltThrowSafe = false;
#else
constexpr bool kUltThrowSafe = true;
#endif

// Recursion that defeats tail-call optimization: every frame owns a buffer
// whose address escapes through a volatile pointer and whose contents feed
// the return value.
__attribute__((noinline)) int overflow_recursion(int depth) {
  volatile char frame[512];
  frame[0] = static_cast<char>(depth);
  frame[sizeof(frame) - 1] = frame[0];
  if (depth <= 0) return frame[sizeof(frame) - 1];
  return overflow_recursion(depth - 1) + frame[0];
}

// --- tentpole acceptance: overflow contained under both preemption modes ----

void run_overflow_survival(Runtime& rt, Preempt mode) {
  constexpr int kSiblings = 4;
  std::atomic<int> sibling_done{0};

  std::vector<Thread> siblings;
  for (int i = 0; i < kSiblings; ++i) {
    siblings.push_back(rt.spawn([&] {
      busy_spin_ms(5);
      sibling_done.fetch_add(1, std::memory_order_relaxed);
    }));
  }

  ThreadAttrs attrs;
  attrs.preempt = mode;
  Thread bad = rt.spawn([] { (void)overflow_recursion(1 << 28); }, attrs);

  const ThreadStatus st = bad.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_TRUE(st.failed());
  EXPECT_EQ(st.fault.kind, FaultKind::kStackOverflow);
  EXPECT_NE(st.fault.fault_addr, 0u);
  EXPECT_GT(st.fault.stack_watermark, 0u);
  EXPECT_LE(st.fault.stack_watermark, rt.options().stack_size);

  for (Thread& t : siblings) t.join();
  EXPECT_EQ(sibling_done.load(), kSiblings);

  // The runtime keeps scheduling new work after containment.
  std::atomic<bool> after{false};
  rt.spawn([&] { after.store(true); }).join();
  EXPECT_TRUE(after.load());

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.ult_faults, 1u);
  EXPECT_GE(s.stack_overflows, 1u);
  EXPECT_GE(s.stacks_quarantined, 1u);
  EXPECT_GT(s.stack_watermark_max, 0u);

  const metrics::Snapshot m = rt.metrics_snapshot();
  EXPECT_GE(m.ult_faults, 1u);
  EXPECT_GE(m.stack_overflows, 1u);
  EXPECT_EQ(m.stack_size_bytes, rt.options().stack_size);
}

TEST_F(FaultIsolation, StackOverflowContainedSignalYield) {
  Runtime rt(quiet_opts(2));
  if (!fault::available()) GTEST_SKIP() << "containment off in this build";
  run_overflow_survival(rt, Preempt::SignalYield);
}

TEST_F(FaultIsolation, StackOverflowContainedKltSwitch) {
  RuntimeOptions o = quiet_opts(2);
  o.initial_spare_klts = 2;  // retire path hands the worker to a pooled spare
  Runtime rt(o);
  if (!fault::available()) GTEST_SKIP() << "containment off in this build";
  run_overflow_survival(rt, Preempt::KltSwitch);
  // The faulting KLT was poisoned by the abandoned signal frame: it must be
  // retired, never returned to the pool.
  EXPECT_GE(rt.stats().klts_retired, 1u);
}

TEST_F(FaultIsolation, RepeatedOverflowsDoNotExhaustTheRuntime) {
  Runtime rt(quiet_opts(2));
  if (!fault::available()) GTEST_SKIP() << "containment off in this build";
  for (int i = 0; i < 8; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    Thread bad = rt.spawn([] { (void)overflow_recursion(1 << 28); }, attrs);
    const ThreadStatus st = bad.join_status();
    ASSERT_TRUE(st.completed);
    EXPECT_EQ(st.fault.kind, FaultKind::kStackOverflow);
  }
  EXPECT_GE(rt.stats().stack_overflows, 8u);
  std::atomic<int> ok{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 16; ++i)
    ts.push_back(rt.spawn([&] { ok.fetch_add(1); }));
  for (Thread& t : ts) t.join();
  EXPECT_EQ(ok.load(), 16);
}

// --- isolate_faults: wild stores contained only on request -----------------

TEST_F(FaultIsolation, WildWriteContainedUnderIsolateFaults) {
  RuntimeOptions o = quiet_opts(2);
  o.isolate_faults = true;
  Runtime rt(o);
  if (!fault::available()) GTEST_SKIP() << "containment off in this build";

  std::atomic<int> sibling_done{0};
  Thread sib = rt.spawn([&] {
    busy_spin_ms(2);
    sibling_done.fetch_add(1);
  });
  Thread bad = rt.spawn([] {
    volatile int* p = reinterpret_cast<volatile int*>(0x40);
    *p = 1;  // not a stack overflow: address nowhere near the guard page
  });
  const ThreadStatus st = bad.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(st.fault.kind, FaultKind::kSegv);
  EXPECT_EQ(st.fault.fault_addr, 0x40u);
  sib.join();
  EXPECT_EQ(sibling_done.load(), 1);
}

// --- non-ULT faults must still crash (handler chaining) --------------------

TEST_F(FaultIsolation, NonUltFaultStillCrashesProcess) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Runtime rt(quiet_opts(1));
  if (!fault::available()) GTEST_SKIP() << "containment off in this build";
  // The fault happens on the test's kernel thread, not in ULT context: the
  // handler must chain to the pre-runtime disposition (default: die).
  EXPECT_EXIT(
      {
        volatile int* p = reinterpret_cast<volatile int*>(0x18);
        *p = 1;
      },
      ::testing::KilledBySignal(SIGSEGV), "");
}

// --- exception firewall (plain C++: runs under sanitizers too) -------------

TEST_F(FaultIsolation, EscapedExceptionBecomesFailedStatus) {
  if (!kUltThrowSafe) GTEST_SKIP() << "ULT-stack throws unsupported by ASan";
  Runtime rt(quiet_opts(2));
  Thread bad = rt.spawn([] { throw std::runtime_error("boom42"); });
  const ThreadStatus st = bad.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_TRUE(st.failed());
  EXPECT_EQ(st.fault.kind, FaultKind::kException);
  EXPECT_NE(std::strstr(st.fault.what, "boom42"), nullptr);

  Thread odd = rt.spawn([] { throw 7; });
  const ThreadStatus st2 = odd.join_status();
  ASSERT_TRUE(st2.completed);
  EXPECT_EQ(st2.fault.kind, FaultKind::kException);
  EXPECT_NE(std::strstr(st2.fault.what, "non-std"), nullptr);

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.escaped_exceptions, 2u);
  EXPECT_GE(s.ult_faults, 2u);
  EXPECT_GE(s.stacks_quarantined, 2u);
}

TEST_F(FaultIsolation, ExceptionFirewallRunsDestructors) {
  if (!kUltThrowSafe) GTEST_SKIP() << "ULT-stack throws unsupported by ASan";
  Runtime rt(quiet_opts(1));
  std::atomic<bool> unwound{false};
  struct Sentinel {
    std::atomic<bool>* flag;
    ~Sentinel() { flag->store(true); }
  };
  Thread bad = rt.spawn([&] {
    Sentinel s{&unwound};
    throw std::runtime_error("unwind me");
  });
  EXPECT_TRUE(bad.join_status().failed());
  EXPECT_TRUE(unwound.load());  // normal unwinding, unlike the signal path
}

// --- compat layer: pthread-style EFAULT on a faulted thread ----------------

TEST_F(FaultIsolation, CompatJoinReportsEfaultForFaultedThread) {
  if (!kUltThrowSafe) GTEST_SKIP() << "ULT-stack throws unsupported by ASan";
  Runtime rt(quiet_opts(2));
  compat::thread_t t{};
  ASSERT_EQ(compat::thread_create(
                &t, nullptr,
                [](void*) -> void* { throw std::runtime_error("compat boom"); },
                nullptr),
            0);
  void* retval = reinterpret_cast<void*>(0xdead);
  EXPECT_EQ(compat::thread_join(t, &retval), EFAULT);
  // The start routine never returned a value; *retval is left untouched.
  EXPECT_EQ(retval, reinterpret_cast<void*>(0xdead));
}

// --- fault-storm watchdog ---------------------------------------------------

TEST_F(FaultIsolation, FaultStormFlagsWatchdog) {
  if (!kUltThrowSafe) GTEST_SKIP() << "ULT-stack throws unsupported by ASan";
  RuntimeOptions o = quiet_opts(1);
  o.watchdog_period_ms = 20;
  o.watchdog_fault_storm = 3;
  Runtime rt(o);

  // Exceptions count as contained faults, so this works in every build.
  const std::int64_t deadline = now_ns() + 20ll * 1'000'000'000;
  while (rt.watchdog_flags(WatchdogReport::Kind::kFaultStorm) == 0 &&
         now_ns() < deadline) {
    std::vector<Thread> burst;
    for (int i = 0; i < 8; ++i)
      burst.push_back(rt.spawn([] { throw std::runtime_error("storm"); }));
    for (Thread& t : burst) t.join();
    busy_spin_ms(5);
  }
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kFaultStorm), 1u);
}

// --- LPT_STACK_SIZE env override -------------------------------------------

TEST_F(FaultIsolation, StackSizeEnvOverrideIsValidatedAndRounded) {
  ::setenv("LPT_STACK_SIZE", "64K", 1);
  {
    Runtime rt(quiet_opts(1));
    EXPECT_EQ(rt.options().stack_size, 64u * 1024);
    EXPECT_EQ(rt.metrics_snapshot().stack_size_bytes, 64u * 1024);
    std::atomic<bool> ran{false};
    rt.spawn([&] { ran.store(true); }).join();
    EXPECT_TRUE(ran.load());
  }
  ::setenv("LPT_STACK_SIZE", "banana", 1);
  {
    Runtime rt(quiet_opts(1));
    EXPECT_EQ(rt.options().stack_size, RuntimeOptions{}.stack_size);
  }
  ::setenv("LPT_STACK_SIZE", "1", 1);  // below the floor: clamped, page-rounded
  {
    Runtime rt(quiet_opts(1));
    EXPECT_GE(rt.options().stack_size, kMinStackSize);
    EXPECT_EQ(rt.options().stack_size % 4096, 0u);
  }
  ::unsetenv("LPT_STACK_SIZE");
}

// --- StackPool hardening ----------------------------------------------------

TEST_F(FaultIsolation, CachedStackIsDroppedWhenGuardCannotBeReasserted) {
  StackPool pool(64 * 1024, 4);
  Stack s = pool.acquire();
  ASSERT_TRUE(s.valid());
  pool.release(std::move(s));
  ASSERT_EQ(pool.cached(), 1u);

  // Reuse re-asserts PROT_NONE through the sys shim; make that fail.
  ASSERT_TRUE(sys::configure_faults("mprotect:every=1"));
  Stack fresh = pool.acquire();
  sys::reset_faults();

  // The pool shed the unprotectable cached stack and fell back to a fresh
  // mapping (whose guard is established outside the injectable reuse path).
  ASSERT_TRUE(fresh.valid());
  EXPECT_EQ(pool.cached(), 0u);
  EXPECT_GE(pool.total_shed(), 1u);
}

TEST_F(FaultIsolation, QuarantineScrubsAndRecachesOrDrops) {
  StackPool pool(64 * 1024, 4);
  Stack s = pool.acquire();
  ASSERT_TRUE(s.valid());
  std::memset(s.base(), 0xab, 4096);
  pool.quarantine(std::move(s));
  EXPECT_EQ(pool.total_quarantined(), 1u);
  EXPECT_EQ(pool.cached(), 1u);

  Stack s2 = pool.acquire();  // pops the quarantined stack (guard intact)
  ASSERT_TRUE(s2.valid());
  sys::configure_faults("mprotect:every=1");
  pool.quarantine(std::move(s2));  // re-protect fails: must drop, not cache
  sys::reset_faults();
  EXPECT_EQ(pool.total_quarantined(), 2u);
  EXPECT_EQ(pool.cached(), 0u);
  EXPECT_GE(pool.total_shed(), 1u);
}

}  // namespace
}  // namespace lpt
