// Always-on scheduler metrics (docs/observability.md, "Metrics & watchdog").
//
// The tracer (trace.hpp) is an opt-in event log for offline analysis; this
// subsystem is the complementary always-on layer: cheap aggregate counters
// and gauges a long-running process can scrape at any moment without arming
// anything. Design constraints, in order:
//
//  * hot-path cost — one relaxed store per instrumented site. Per-worker
//    counters written from scheduler context use Counter (a relaxed
//    load+store increment with no lock prefix; legal because each counter
//    has exactly one logical writer). Counters written from signal handlers
//    or foreign threads use AtomicCounter (relaxed fetch_add, still
//    async-signal-safe and wait-free).
//  * no clocks on the dispatch/steal/yield paths — time-in-state is
//    *sampled*: each worker publishes its instantaneous state as a relaxed
//    store at transitions, and the watchdog tick (runtime/watchdog.hpp)
//    attributes elapsed wall time to whichever state it observes.
//  * no allocation, no locks — everything here is plain atomics; Snapshot
//    (the read side) is the only allocating type and is never touched by
//    runtime threads.
//
// Exposure paths: Runtime::metrics_snapshot() (stable struct),
// Runtime::write_metrics() (Prometheus text format / JSON), and the optional
// background publisher (LPT_METRICS_FILE / LPT_METRICS_PERIOD_MS) that
// atomically rewrites a scrape file each period.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace lpt::metrics {

/// Monotonic counter with exactly one logical writer (the owning worker's
/// scheduler context). The increment is a relaxed load+store pair — cheaper
/// than a locked RMW — which is race-free because concurrent writers do not
/// exist; signal handlers on the same thread never touch Counter instances
/// (they use AtomicCounter). Readers may observe any prior value (relaxed).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.store(v_.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Monotonic counter safe for multiple writers, including signal handlers
/// (relaxed fetch_add is async-signal-safe and wait-free). Used for counters
/// written by the preemption handler, timer threads, or chain forwards.
class AtomicCounter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Signed up/down gauge (occupancy-style values). Async-signal-safe.
class Gauge {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Instantaneous worker state, published as a relaxed store at transitions
/// and sampled by the watchdog tick into time_in_state_ns. kScheduling also
/// covers the brief pick/post-action windows between ULT runs.
enum class WorkerState : std::uint8_t {
  kScheduling = 0,  ///< in the scheduler loop (pick / post-action)
  kRunningUlt = 1,  ///< executing ULT code
  kIdle = 2,        ///< no work found: backoff spin or futex nap
  kParked = 3,      ///< thread-packing park (rank >= active_workers)
};
inline constexpr int kWorkerStateCount = 4;
const char* worker_state_name(WorkerState s);

/// Plain copy of one worker's metric values at a point in time. Fields the
/// worker block cannot know (rank, queue depth, flags) are filled by
/// Runtime::metrics_snapshot().
struct WorkerSample {
  int rank = -1;
  std::uint64_t dispatches = 0;  ///< ULTs switched into (incl. resumes)
  std::uint64_t yields = 0;      ///< voluntary yields processed
  std::uint64_t blocks = 0;      ///< suspensions on sync primitives
  std::uint64_t exits = 0;       ///< ULT completions processed
  std::uint64_t steals = 0;      ///< threads taken from a remote queue
  std::uint64_t preempt_signal_yield = 0;
  std::uint64_t preempt_klt_switch = 0;
  std::uint64_t ticks_sent = 0;        ///< preemption signals sent at this worker
  std::uint64_t handler_entries = 0;   ///< handler hit a preemptible ULT
  std::uint64_t handler_deferred = 0;  ///< ... but a NoPreemptGuard deferred it
  std::uint64_t klt_degraded_ticks = 0;
  std::uint64_t ult_faults = 0;          ///< ULTs terminated by fault isolation
  std::uint64_t stack_overflows = 0;     ///< ... of which guard-page overflows
  std::uint64_t escaped_exceptions = 0;  ///< ... of which exception-firewall hits
  std::uint64_t ult_cancels = 0;         ///< ... of which cancel/deadline expiry
  std::uint64_t syscall_blocks = 0;      ///< annotated blocking-syscall regions
  std::int64_t queue_depth = 0;        ///< this worker's run-queue(s), now
  std::uint64_t time_in_state_ns[kWorkerStateCount] = {};
  std::uint8_t state = 0;              ///< WorkerState, instantaneous
  bool parked = false;
  bool posix_timer_fallback = false;
};

/// Per-worker metric block, embedded in Worker. Cache-line-aligned so two
/// workers' hot counters never share a line.
struct alignas(64) WorkerMetrics {
  // -- scheduler-context counters (single logical writer: the worker) --
  Counter dispatches;
  Counter yields;
  Counter blocks;
  Counter exits;
  Counter steals;
  Counter preempt_signal_yield;
  Counter preempt_klt_switch;

  // -- signal-handler / cross-thread counters --
  AtomicCounter ticks_sent;         ///< written by timer threads + chain forwards
  AtomicCounter handler_entries;    ///< written inside the preemption handler
  AtomicCounter handler_deferred;   ///< ditto (NoPreemptGuard defer path)
  AtomicCounter klt_degraded_ticks; ///< ditto (pool empty + creator saturated)
  // -- fault isolation (docs/robustness.md); written from the SIGSEGV/SIGBUS
  //    handler or the exception firewall, hence AtomicCounter --
  AtomicCounter ult_faults;         ///< all fault-isolation terminations
  AtomicCounter stack_overflows;    ///< guard-page overflows contained
  AtomicCounter escaped_exceptions; ///< exception-firewall terminations
  AtomicCounter ult_cancels;        ///< cancellation/deadline terminations
  // -- blocking-syscall resilience (docs/robustness.md); a wedged ULT on an
  //    old host and a fresh host's ULT can both enter regions for the same
  //    worker concurrently, hence AtomicCounter --
  AtomicCounter syscall_blocks;     ///< lpt::io::blocking_region entries

  /// Instantaneous state marker (relaxed store at transitions).
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(WorkerState::kScheduling)};
  /// Sampled time-in-state accumulators; written only by the watchdog tick
  /// (single writer under its try-lock), read by snapshots. Zero when the
  /// watchdog is disabled — the states are markers, the tick is the clock.
  Counter time_in_state_ns[kWorkerStateCount];

  void set_state(WorkerState s) {
    state.store(static_cast<std::uint8_t>(s), std::memory_order_relaxed);
  }
  std::uint64_t preemptions() const {
    return preempt_signal_yield.value() + preempt_klt_switch.value();
  }
  /// Copy every counter into a plain sample (each field an independent
  /// relaxed read; see the snapshot-coherence note on Runtime::Stats).
  WorkerSample sample() const;
};

/// Point-in-time view of the whole runtime. Per-worker samples plus totals
/// (finalize()) plus runtime-global gauges. Same coherence contract as
/// Runtime::Stats: independent relaxed reads, monotonic between snapshots,
/// exact equalities only after quiescing.
struct Snapshot {
  std::int64_t taken_ns = 0;   ///< CLOCK_MONOTONIC at snapshot time
  std::int64_t uptime_ns = 0;  ///< since Runtime construction
  int num_workers = 0;
  int active_workers = 0;
  std::vector<WorkerSample> workers;

  // -- totals over workers (computed by finalize()) --
  std::uint64_t dispatches = 0;
  std::uint64_t yields = 0;
  std::uint64_t blocks = 0;
  std::uint64_t exits = 0;
  std::uint64_t steals = 0;
  std::uint64_t preempt_signal_yield = 0;
  std::uint64_t preempt_klt_switch = 0;
  std::uint64_t preemptions = 0;  ///< signal_yield + klt_switch
  std::uint64_t ticks_sent = 0;
  std::uint64_t handler_entries = 0;
  std::uint64_t handler_deferred = 0;
  std::uint64_t klt_degraded_ticks = 0;
  std::uint64_t ult_faults = 0;
  std::uint64_t stack_overflows = 0;
  std::uint64_t escaped_exceptions = 0;
  std::uint64_t ult_cancels = 0;
  std::uint64_t syscall_blocks = 0;
  std::int64_t run_queue_depth = 0;

  // -- runtime-global --
  std::uint64_t ults_spawned = 0;
  std::int64_t ults_live = 0;       ///< spawned minus finished
  std::uint64_t klts_created = 0;
  std::uint64_t klts_on_demand = 0;
  std::uint64_t klt_create_failures = 0;
  std::int64_t klt_pool_idle = 0;   ///< parked spare KLTs, now
  std::uint64_t stacks_cached = 0;  ///< StackPool free list, now
  std::uint64_t stacks_shed = 0;
  std::uint64_t spawn_stack_failures = 0;
  std::uint64_t posix_timer_fallbacks = 0;
  std::uint64_t faults_injected = 0;

  // -- fault isolation (docs/robustness.md) --
  std::uint64_t klts_retired = 0;        ///< poisoned KLTs exited after a fault
  std::uint64_t stacks_quarantined = 0;  ///< faulted stacks scrubbed+re-guarded
  std::uint64_t stack_near_overflows = 0;///< releases within a page of the guard
  std::uint64_t stack_watermark_max = 0; ///< deepest stack use seen, bytes
  std::uint64_t stack_size_bytes = 0;    ///< effective default ULT stack size

  // -- watchdog (runtime/watchdog.hpp) --
  std::uint64_t watchdog_checks = 0;
  std::uint64_t watchdog_runnable_starvation = 0;
  std::uint64_t watchdog_worker_stall = 0;
  std::uint64_t watchdog_quantum_overrun = 0;
  std::uint64_t watchdog_fault_storm = 0;
  std::uint64_t watchdog_syscall_blocked = 0;
  std::uint64_t watchdog_deadlock = 0;
  std::uint64_t watchdog_abandoned_lock = 0;

  // -- self-healing remediation ladder (docs/robustness.md) --
  std::uint64_t remediations_retick = 0;
  std::uint64_t remediations_cancel = 0;
  std::uint64_t remediations_klt_replace = 0;
  std::uint64_t remediations_deadlock_break = 0;

  // -- deadlock detection & recovery (docs/robustness.md). Identity with
  //    remediation on and budget available:
  //    deadlock_cycles == remediations_deadlock_break + self_deadlocks. --
  std::uint64_t deadlock_cycles = 0;     ///< distinct cycles confirmed
  std::uint64_t self_deadlocks = 0;      ///< 1-cycles caught at lock()
  std::uint64_t abandoned_locks = 0;     ///< owners that died holding a lock
  std::uint64_t abandoned_released = 0;  ///< ... force-released (LPT_ABANDON_RELEASE)
  std::int64_t parked_waiters = 0;       ///< registry-parked ULTs, now

  // -- blocking-syscall compensation (docs/robustness.md). Identity after
  //    quiescing: activated == reabsorbed + saturated. --
  std::uint64_t syscall_comp_activated = 0;   ///< sentinel committed to compensate
  std::uint64_t syscall_comp_reabsorbed = 0;  ///< losing hosts parked back to pool
  std::uint64_t syscall_comp_saturated = 0;   ///< commitments with no KLT available

  // -- tracer pass-through (zero when tracing is off) --
  bool trace_enabled = false;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  // Per-pool scheduling-delay accounting (docs/observability.md, "Causal
  // tracing & scheduling delay"): index == worker rank == pool; a stolen ULT
  // is attributed to the pool that dispatched it. Like the counters above
  // these are tracer pass-through — empty vectors when tracing is off —
  // exported by write_prometheus as native histograms with `le` buckets
  // (lpt_sched_delay_ns / lpt_spawn_latency_ns). sum_ns is exact, so after
  // quiescing the merged totals reconcile with summed per-ULT
  // UltAccounting (tests/tools/trace_check relies on this).
  std::vector<trace::HistSnapshot> pool_sched_delay_ns;    ///< ready → dispatch
  std::vector<trace::HistSnapshot> pool_spawn_latency_ns;  ///< spawn → 1st disp.

  // -- profiler pass-through (docs/observability.md "Profiling"; all zero
  //    when profiling is off) --
  bool prof_enabled = false;
  std::uint64_t prof_sample_invocations = 0;  ///< sampling hook firings
  std::uint64_t prof_samples_recorded = 0;    ///< committed to sample rings
  std::uint64_t prof_samples_dropped = 0;     ///< lost (ring full / no ring)
  std::uint64_t prof_offcpu_waits = 0;        ///< blocked intervals recorded
  std::uint64_t prof_offcpu_ns = 0;           ///< total blocked time, ns
  std::uint64_t prof_lock_acquires = 0;       ///< profiled Mutex acquisitions
  std::uint64_t prof_lock_contended = 0;      ///< ... that had to park
  std::uint64_t prof_contention_chains = 0;   ///< ... behind a preempted holder

  /// Fill the totals from `workers`.
  void finalize();

  /// handler entries / ticks sent (0 when no ticks were sent). A low value
  /// means ticks land outside preemptible ULT code (idle workers, wrong
  /// phase); the paper's bounded time-to-preemption needs this near 1.
  double tick_effectiveness() const {
    return ticks_sent > 0
               ? static_cast<double>(handler_entries) /
                     static_cast<double>(ticks_sent)
               : 0.0;
  }
  /// actual switches / handler entries (0 when no entries). Below 1 when
  /// NoPreemptGuards defer or KLT-switch ticks degrade.
  double switch_rate() const {
    return handler_entries > 0
               ? static_cast<double>(preemptions) /
                     static_cast<double>(handler_entries)
               : 0.0;
  }
};

enum class Format : std::uint8_t { kPrometheus, kJson };

/// Prometheus text exposition format (one HELP/TYPE block per family,
/// per-worker series labelled {worker="r"}).
void write_prometheus(std::FILE* out, const Snapshot& s);
/// One JSON object: {"uptime_ns":..., "totals":{...}, "workers":[...], ...}.
void write_json(std::FILE* out, const Snapshot& s);

/// Background-publisher configuration (RuntimeOptions::metrics_file /
/// metrics_period_ms overridden by LPT_METRICS_FILE / LPT_METRICS_PERIOD_MS).
/// The publisher is enabled iff `file` is non-empty.
struct PublishConfig {
  std::string file;
  std::int64_t period_ms = 1000;
};
PublishConfig resolve_publish_config(PublishConfig base);

/// Paths ending in ".json" publish JSON; everything else Prometheus text.
Format format_for_path(const std::string& path);

}  // namespace lpt::metrics
