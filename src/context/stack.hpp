// Stacks for user-level threads: mmap'd regions with an inaccessible guard
// page below the usable area, plus a free-list pool so the fork/join fast
// path never touches mmap (M:N threads owe much of their speed to cheap
// thread creation, §1/§2.1).
//
// Robustness (docs/robustness.md): allocation goes through lpt::sys::mmap so
// failures — real ENOMEM or LPT_FAULT-injected — surface as an invalid Stack
// instead of an abort, and the pool caps its free list so stack-churn
// workloads cannot grow RSS without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/spinlock.hpp"

namespace lpt {

/// One mmap'd stack. Movable, non-copyable; unmaps on destruction.
class Stack {
 public:
  Stack() = default;
  /// Maps usable_size rounded up to whole pages, plus one guard page below.
  /// On mmap failure the object is left invalid (valid() == false) with
  /// errno set by the failed call — callers decide whether that is fatal.
  explicit Stack(std::size_t usable_size);
  ~Stack();
  Stack(Stack&& other) noexcept;
  Stack& operator=(Stack&& other) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  bool valid() const { return base_ != nullptr; }
  /// Lowest usable address (just above the guard page).
  void* base() const { return base_; }
  std::size_t size() const { return size_; }
  /// Guard page (lowest page of the mapping, PROT_NONE).
  void* guard() const { return map_; }
  std::size_t guard_size() const { return map_size_ - size_; }
  /// True when addr falls inside the guard page — the signature of a stack
  /// overflow. Async-signal-safe (plain loads).
  bool in_guard(std::uintptr_t addr) const {
    const std::uintptr_t g = reinterpret_cast<std::uintptr_t>(map_);
    return map_ != nullptr && addr >= g && addr - g < guard_size();
  }

  /// Re-apply PROT_NONE to the guard page (through the sys shim, so LPT_FAULT
  /// can exercise the failure path). Returns false with errno set on failure;
  /// callers must then drop the stack rather than hand it out.
  bool reassert_guard();
  /// Return the usable region's pages to the kernel (madvise MADV_DONTNEED).
  /// Best-effort: scrubbing is advisory and failure is ignored.
  void scrub();
  /// High-water mark of stack usage in bytes, at page granularity: distance
  /// from the top of the stack down to the lowest page the kernel has ever
  /// populated (mincore scan from the bottom). 0 when nothing was touched or
  /// the scan fails. Pool-reused stacks that were not scrubbed report the
  /// high-water mark across all their tenants.
  std::size_t watermark() const;

 private:
  void* map_ = nullptr;        // includes guard page
  std::size_t map_size_ = 0;
  void* base_ = nullptr;       // usable area
  std::size_t size_ = 0;
};

/// Thread-safe pool of equally sized stacks. The free list keeps at most
/// `max_cached` stacks; releases beyond the cap munmap immediately (counted
/// in total_shed()).
class StackPool {
 public:
  /// scrub_on_reuse: madvise the usable region back to the kernel every time
  /// a cached stack is handed out (LPT_STACK_SCRUB) — makes watermark()
  /// per-tenant accurate at the cost of re-faulting pages in.
  explicit StackPool(std::size_t stack_size, std::size_t max_cached = 64,
                     bool scrub_on_reuse = false)
      : stack_size_(stack_size),
        max_cached_(max_cached),
        scrub_on_reuse_(scrub_on_reuse) {}

  /// Pop a cached stack or map a fresh one. May return an invalid Stack on
  /// allocation failure; prefer try_acquire for an errno-carrying variant.
  Stack acquire();

  /// acquire() with graceful degradation: on mmap failure the pool sheds its
  /// whole free list (returning address space) and retries once. On final
  /// failure returns an invalid Stack and stores the errno in *err.
  Stack try_acquire(int* err);

  /// Return a stack for reuse (must have been acquired from this pool).
  /// Dropped (munmap'd) instead of cached once the free list is at capacity.
  void release(Stack&& s);

  /// Return the stack of a *faulted* ULT: always scrubs the usable region and
  /// re-asserts guard protection before the stack can be reused, and drops it
  /// entirely if the guard cannot be re-protected. Counted in
  /// total_quarantined().
  void quarantine(Stack&& s);

  /// Drop every cached stack now; returns how many were freed. Used by the
  /// spawn path to claw back address space before retrying an allocation.
  std::size_t shed_all();

  std::size_t stack_size() const { return stack_size_; }
  std::size_t max_cached() const { return max_cached_; }
  std::size_t cached() const;
  /// Cumulative stacks dropped (cap overflow + shed_all + failed re-protect).
  std::uint64_t total_shed() const;
  /// Cumulative faulted stacks routed through quarantine().
  std::uint64_t total_quarantined() const;

 private:
  std::size_t stack_size_;
  std::size_t max_cached_;
  bool scrub_on_reuse_;
  mutable Spinlock lock_;
  std::vector<Stack> free_;
  std::uint64_t shed_ = 0;         // guarded by lock_
  std::uint64_t quarantined_ = 0;  // guarded by lock_
};

}  // namespace lpt
