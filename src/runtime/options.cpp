// Environment overlay for RuntimeOptions (docs/robustness.md). Keep the
// parsing forgiving-but-loud: a malformed knob is reported to stderr and
// ignored rather than aborting startup, matching load_env_faults().
#include "runtime/options.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lpt {

namespace {

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

/// Parse "262144", "256K", "1M" (case-insensitive suffix). Returns false on
/// anything else, including trailing junk and zero.
bool parse_size(const char* v, std::size_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v) return false;
  std::size_t mult = 1;
  if (*end == 'k' || *end == 'K') {
    mult = 1024;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    mult = 1024 * 1024;
    ++end;
  }
  if (*end != '\0' || x == 0 || x > (1ull << 40) / mult) return false;
  *out = static_cast<std::size_t>(x) * mult;
  return true;
}

/// Parse a positive decimal integer in [1, cap]. Rejects trailing junk,
/// zero, and negatives, mirroring parse_size().
bool parse_count(const char* v, long long cap, long long* out) {
  char* end = nullptr;
  errno = 0;
  const long long x = std::strtoll(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0' || x <= 0 || x > cap) return false;
  *out = x;
  return true;
}

/// Overlay an integer env knob, reporting and ignoring malformed values like
/// the LPT_STACK_SIZE path does.
void env_count(const char* name, long long cap, long long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return;
  long long x = 0;
  if (!parse_count(v, cap, &x)) {
    std::fprintf(stderr, "lpt: ignoring malformed %s='%s'\n", name, v);
    return;
  }
  *out = x;
}

}  // namespace

RuntimeOptions resolve_env_options(RuntimeOptions o) {
  if (const char* v = std::getenv("LPT_STACK_SIZE"); v != nullptr && v[0] != '\0') {
    std::size_t bytes = 0;
    if (!parse_size(v, &bytes)) {
      std::fprintf(stderr, "lpt: ignoring malformed LPT_STACK_SIZE='%s'\n", v);
    } else {
      o.stack_size = bytes;
    }
  }
  if (o.stack_size < kMinStackSize) o.stack_size = kMinStackSize;
  const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  o.stack_size = (o.stack_size + ps - 1) / ps * ps;

  o.fault_isolation = env_flag("LPT_FAULT_ISOLATION", o.fault_isolation);
  o.isolate_faults = env_flag("LPT_ISOLATE_FAULTS", o.isolate_faults);
  o.stack_scrub = env_flag("LPT_STACK_SCRUB", o.stack_scrub);

  o.remediation = env_flag("LPT_REMEDIATE", o.remediation);
  // Per-flag watchdog thresholds, expressed in watchdog poll periods so they
  // track watchdog_period_ms automatically. Starvation periods scale the
  // no-dispatch age threshold; stall periods set the unanswered-tick count.
  long long starvation_periods = 0;
  env_count("LPT_WATCHDOG_STARVATION_PERIODS", 1'000'000, &starvation_periods);
  if (starvation_periods > 0) {
    o.watchdog_runnable_ns = starvation_periods * o.watchdog_period_ms * 1'000'000;
  }
  long long stall_periods = 0;
  env_count("LPT_WATCHDOG_STALL_PERIODS", 1'000'000, &stall_periods);
  if (stall_periods > 0) o.watchdog_stall_ticks = static_cast<int>(stall_periods);
  long long max_per_period = 0;
  env_count("LPT_REMEDIATE_MAX_PER_PERIOD", 1'000'000, &max_per_period);
  if (max_per_period > 0) o.remediate_max_per_period = static_cast<int>(max_per_period);
  if (o.remediate_max_per_period < 1) o.remediate_max_per_period = 1;
  if (o.default_ult_deadline_ns < 0) o.default_ult_deadline_ns = 0;

  // ----- blocking-syscall resilience (docs/robustness.md) -----
  o.syscall_compensate = env_flag("LPT_SYSCALL_COMPENSATE", o.syscall_compensate);
  long long grace_ms = 0;
  env_count("LPT_SYSCALL_GRACE_MS", 1'000'000, &grace_ms);
  if (grace_ms > 0) o.syscall_grace_ns = grace_ms * 1'000'000;
  if (o.syscall_grace_ns < 0) o.syscall_grace_ns = 0;
  long long max_comp = 0;
  env_count("LPT_SYSCALL_MAX_COMPENSATIONS", 1'000'000, &max_comp);
  if (max_comp > 0) o.syscall_max_compensations = static_cast<int>(max_comp);
  if (o.syscall_max_compensations < 1) o.syscall_max_compensations = 1;

  // ----- deadlock detection & recovery (docs/robustness.md) -----
  o.deadlock_detection = env_flag("LPT_DEADLOCK", o.deadlock_detection);
  o.abandon_release = env_flag("LPT_ABANDON_RELEASE", o.abandon_release);
  long long deadlock_periods = 0;
  env_count("LPT_DEADLOCK_PERIODS", 1'000'000, &deadlock_periods);
  if (deadlock_periods > 0) o.deadlock_periods = static_cast<int>(deadlock_periods);
  if (o.deadlock_periods < 1) o.deadlock_periods = 1;

  // ----- continuous profiler (options.hpp lists every LPT_PROF* knob) -----
  if (const char* v = std::getenv("LPT_PROF"); v != nullptr)
    o.prof.enabled = env_flag("LPT_PROF", o.prof.enabled);
  if (const char* v = std::getenv("LPT_PROF_FILE"); v != nullptr && v[0] != '\0') {
    o.prof.file = v;
    o.prof.enabled = true;  // a requested output implies profiling, like LPT_TRACE_FILE
  }
  if (const char* v = std::getenv("LPT_PROF_HZ"); v != nullptr && v[0] != '\0') {
    long long hz = 0;
    if (!parse_count(v, prof::kMaxHz, &hz) || hz < prof::kMinHz) {
      std::fprintf(stderr, "lpt: ignoring nonsense LPT_PROF_HZ='%s' (want %d..%d)\n",
                   v, prof::kMinHz, prof::kMaxHz);
    } else {
      o.prof.sample_hz = static_cast<int>(hz);
    }
  }
  o.prof.offcpu = env_flag("LPT_PROF_OFFCPU", o.prof.offcpu);
  o.prof.locks = env_flag("LPT_PROF_LOCKS", o.prof.locks);
  long long depth = 0;
  env_count("LPT_PROF_DEPTH", 1'000'000, &depth);
  if (depth > 0) o.prof.max_stack_depth = static_cast<std::uint32_t>(depth);
  // Clamp rather than reject: a too-deep request still profiles, bounded.
  if (o.prof.max_stack_depth < 1) o.prof.max_stack_depth = 1;
  if (o.prof.max_stack_depth > prof::kMaxFrames)
    o.prof.max_stack_depth = prof::kMaxFrames;
  long long ring_cap = 0;
  env_count("LPT_PROF_RING_CAP", 1ll << 24, &ring_cap);
  if (ring_cap > 0) o.prof.ring_capacity = static_cast<std::uint32_t>(ring_cap);
  if (o.prof.sample_hz < 0 || o.prof.sample_hz > prof::kMaxHz)
    o.prof.sample_hz = 0;  // programmatic nonsense falls back to piggyback
  if (o.prof.enabled && o.prof.file.empty() &&
      std::getenv("LPT_PROF") != nullptr)
    o.prof.file = "lpt_profile.folded";  // plain LPT_PROF=1 leaves a profile
  return o;
}

}  // namespace lpt
