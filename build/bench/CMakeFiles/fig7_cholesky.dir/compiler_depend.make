# Empty compiler generated dependencies file for fig7_cholesky.
# This may be replaced when dependencies are built.
