#include "sim/ult_model.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace lpt::sim {

// ---------------------------------------------------------------------------
// SimFlag
// ---------------------------------------------------------------------------

void SimFlag::set(SimUltRuntime& rt) {
  if (set_) return;
  set_ = true;
  // Spinning waiters notice the store after a cache-propagation beat.
  for (auto [w, epoch] : spinners_) {
    rt.eq_.schedule_after(100, [&rt, w, epoch] { rt.flag_set_resume(w, epoch); });
  }
  spinners_.clear();
  // Blocked waiters are re-enqueued (OS wake latency in OS mode; scheduler
  // handoff latency in M:N mode is part of the dispatch cost).
  std::vector<SimThread*> blocked;
  blocked.swap(blocked_);
  for (SimThread* t : blocked) {
    t->has_action = false;  // the wait is over
    const Time latency = rt.opts_.os_mode ? rt.cm_.os_wake_latency : 0;
    rt.eq_.schedule_after(latency, [&rt, t] {
      rt.enqueue_ready(t, t->last_worker, /*preempted=*/false);
    });
  }
}

// ---------------------------------------------------------------------------
// Construction / spawning
// ---------------------------------------------------------------------------

SimUltRuntime::SimUltRuntime(const CostModel& cm, SimUltOptions opts)
    : cm_(cm), opts_(opts), sig_(cm), rng_(opts.seed) {
  LPT_CHECK(opts_.num_workers >= 1);
  workers_.resize(opts_.num_workers);
  pools_.resize(opts_.num_workers);
  low_pools_.resize(opts_.num_workers);
  n_active_ = opts_.n_active > 0
                  ? std::min(opts_.n_active, opts_.num_workers)
                  : opts_.num_workers;
}

SimUltRuntime::~SimUltRuntime() = default;

SimThread* SimUltRuntime::spawn(std::unique_ptr<SimThread> t) {
  SimThread* p = t.get();
  p->id = static_cast<int>(threads_.size());
  threads_.push_back(std::move(t));
  enqueue_ready(p, /*hint=*/-1, /*preempted=*/false);
  return p;
}

// ---------------------------------------------------------------------------
// Ready queues and dispatch
// ---------------------------------------------------------------------------

int SimUltRuntime::os_pick_core_for(SimThread* t) {
  if (t->last_worker < 0) {
    // Fork placement: CFS's select_idle_sibling finds an idle core reliably
    // for brand-new threads; fall back to random when none is idle.
    for (int w = 0; w < opts_.num_workers; ++w)
      if (workers_[w].state == WState::kIdle && pools_[w].empty()) return w;
    return static_cast<int>(rng_.next_below(workers_.size()));
  }
  // Wake placement: the previous core when it is free (select_task_rq's
  // fast path), otherwise sticky-with-jitter — CFS mostly keeps a waking
  // thread near its previous core, but wake-time migrations scatter a
  // fraction of them. That scatter under oversubscription (taskset fewer
  // cores than threads) is the imbalance source behind the thread-packing
  // results (§4.2, [25,35]); with one thread per core it never triggers.
  const int prev = t->last_worker;
  if (workers_[prev].state == WState::kIdle && pools_[prev].empty()) return prev;
  if (rng_.next_double() >= 0.3) return prev;
  return static_cast<int>(rng_.next_below(workers_.size()));
}

void SimUltRuntime::enqueue_ready(SimThread* t, int hint_worker, bool preempted) {
  (void)preempted;
  int pool;
  if (opts_.os_mode) {
    pool = os_pick_core_for(t);
    // CFS enqueue normalization: a new/woken thread joins at the core's
    // min_vruntime watermark instead of outranking every resident thread.
    if (t->vruntime < workers_[pool].cfs_min_vr)
      t->vruntime = workers_[pool].cfs_min_vr;
  } else if (opts_.sched == SchedPolicy::kPacking) {
    pool = t->home_pool % opts_.num_workers;
  } else {
    pool = hint_worker >= 0 ? hint_worker : t->home_pool % opts_.num_workers;
  }
  if (pool < 0) pool += opts_.num_workers;

  if (!opts_.os_mode && opts_.sched == SchedPolicy::kPriority && t->priority > 0)
    low_pools_[pool].push_back(t);  // LIFO: picked from the back
  else
    pools_[pool].push_back(t);

  if (opts_.os_mode) {
    // Wake the target core if idle.
    if (workers_[pool].state == WState::kIdle)
      eq_.schedule_after(cm_.os_ctx_switch, [this, pool] { try_dispatch(pool); });
  } else {
    wake_one_idle();
  }
}

void SimUltRuntime::wake_one_idle() {
  // Wake every idle worker: a single wake could land on a worker whose
  // policy cannot reach the new thread's pool, stranding it forever. The
  // no-op cost for already-busy workers is just a discarded event.
  for (int w = 0; w < opts_.num_workers; ++w) {
    if (workers_[w].state == WState::kIdle && worker_active(w)) {
      eq_.schedule_after(cm_.ult_ctx_switch, [this, w] { try_dispatch(w); });
    }
  }
}

SimThread* SimUltRuntime::pick(int w) {
  auto pop_front = [](std::deque<SimThread*>& q) -> SimThread* {
    if (q.empty()) return nullptr;
    SimThread* t = q.front();
    q.pop_front();
    return t;
  };
  auto pop_back = [](std::deque<SimThread*>& q) -> SimThread* {
    if (q.empty()) return nullptr;
    SimThread* t = q.back();
    q.pop_back();
    return t;
  };
  const int n = opts_.num_workers;

  if (opts_.os_mode) {
    // CFS within a core: least vruntime first.
    auto& q = pools_[w];
    if (q.empty()) return nullptr;
    auto it = std::min_element(q.begin(), q.end(),
                               [](const SimThread* a, const SimThread* b) {
                                 return a->vruntime < b->vruntime;
                               });
    SimThread* t = *it;
    q.erase(it);
    return t;
  }

  switch (opts_.sched) {
    case SchedPolicy::kWorkSteal: {
      if (SimThread* t = pop_front(pools_[w])) return t;
      // Random victim, then a deterministic sweep so work is never stranded.
      const int v = static_cast<int>(rng_.next_below(n));
      if (v != w)
        if (SimThread* t = pop_front(pools_[v])) return t;
      for (int step = 1; step < n; ++step)
        if (SimThread* t = pop_front(pools_[(w + step) % n])) return t;
      return nullptr;
    }
    case SchedPolicy::kPacking: {
      // Algorithm 1 with the private/shared alternation.
      const int n_active = n_active_;
      const int n_private = n_active * (n / n_active);
      auto pick_private = [&]() -> SimThread* {
        for (int i = w; i < n_private; i += n_active)
          if (SimThread* t = pop_front(pools_[i])) return t;
        return nullptr;
      };
      auto pick_shared = [&]() -> SimThread* {
        // Round-robin over the shared pools ("active workers peek the
        // shared pools in turn"): a fixed scan order would starve the
        // higher-indexed shared threads.
        const int n_shared = n - n_private;
        if (n_shared <= 0) return nullptr;
        int& cursor = workers_[w].pack_shared_next;
        for (int step = 0; step < n_shared; ++step) {
          const int i = n_private + (cursor + step) % n_shared;
          if (SimThread* t = pop_front(pools_[i])) {
            cursor = (i - n_private + 1) % n_shared;
            return t;
          }
        }
        return nullptr;
      };
      // Strict alternation: after running a private thread the next pick
      // tries shared first, and vice versa — regardless of what the failed
      // side looked like (Algorithm 1 alternates the two loop halves).
      auto& phase = workers_[w].pack_phase;
      SimThread* t;
      if (phase == 0) {
        t = pick_private();
        if (t != nullptr) {
          phase = 1;
          return t;
        }
        return pick_shared();  // phase stays: next time shared had its turn
      }
      t = pick_shared();
      if (t != nullptr) {
        phase = 0;
        return t;
      }
      return pick_private();
    }
    case SchedPolicy::kPriority: {
      if (SimThread* t = pop_front(pools_[w])) return t;
      for (int step = 1; step < n; ++step)
        if (SimThread* t = pop_front(pools_[(w + step) % n])) return t;
      if (SimThread* t = pop_back(low_pools_[w])) return t;
      for (int step = 1; step < n; ++step)
        if (SimThread* t = pop_back(low_pools_[(w + step) % n])) return t;
      return nullptr;
    }
  }
  return nullptr;
}

void SimUltRuntime::try_dispatch(int w) {
  WorkerState& ws = workers_[w];
  if (ws.state != WState::kIdle) return;
  if (!opts_.os_mode && !worker_active(w)) {
    ws.state = WState::kParked;
    return;
  }
  SimThread* t = pick(w);
  if (t == nullptr) {
    if (opts_.os_mode && !ws.balance_pending && !all_finished()) {
      // Idle balancing reacts only after a delay (lazy CFS balancing).
      ws.balance_pending = true;
      const Time delay =
          cm_.cfs_idle_balance_min +
          static_cast<Time>(rng_.next_double() *
                            static_cast<double>(cm_.cfs_idle_balance_max -
                                                cm_.cfs_idle_balance_min));
      eq_.schedule_after(delay, [this, w] { os_idle_balance(w); });
    }
    return;
  }

  ws.state = WState::kRunning;
  ws.running = t;
  ws.epoch += 1;
  t->last_worker = w;
  if (opts_.os_mode && t->vruntime > ws.cfs_min_vr) ws.cfs_min_vr = t->vruntime;

  Time delay = opts_.os_mode ? cm_.os_ctx_switch : cm_.ult_ctx_switch;
  delay += t->pending_resume_cost;
  stat_overhead_ += t->pending_resume_cost;
  t->pending_resume_cost = 0;
  if (t->klt_bound) {
    // The scheduler's KLT returns to the pool as the bound KLT takes over
    // (Fig 3c: "the previous KLT exits from the scheduler and sleeps").
    t->klt_bound = false;
    idle_klts_ += 1;
  }

  ws.run_start = eq_.now() + delay;
  const std::uint64_t epoch = ws.epoch;
  eq_.schedule_after(delay, [this, w, epoch] {
    if (workers_[w].epoch == epoch && workers_[w].state == WState::kRunning)
      advance(w);
  });

  // CFS gives a low-weight (nice'd) thread a proportionally shorter slice;
  // with runnable competition, cut its slice early instead of waiting for
  // the next core tick.
  if (opts_.os_mode && t->weight < 1.0 && !pools_[w].empty()) {
    const Time short_slice =
        delay + static_cast<Time>(static_cast<double>(cm_.cfs_timeslice) *
                                  t->weight);
    eq_.schedule_after(short_slice, [this, w, epoch] {
      WorkerState& ws2 = workers_[w];
      if (ws2.epoch != epoch) return;
      if (ws2.state != WState::kRunning && ws2.state != WState::kSpinning)
        return;
      if (pools_[w].empty()) return;
      stat_overhead_ += cm_.os_preempt;
      preempt_running(w, eq_.now() + cm_.os_preempt);
    });
  }
}

// ---------------------------------------------------------------------------
// Action engine
// ---------------------------------------------------------------------------

void SimUltRuntime::advance(int w) {
  WorkerState& ws = workers_[w];
  SimThread* t = ws.running;
  LPT_CHECK(ws.state == WState::kRunning && t != nullptr);

  for (;;) {
    if (!t->has_action) {
      t->action = t->next(*this);
      t->has_action = true;
      if (t->action.kind == SimAction::Kind::kCompute)
        t->remaining = t->action.duration;
    }
    switch (t->action.kind) {
      case SimAction::Kind::kCompute: {
        if (t->remaining <= 0) {
          t->has_action = false;
          continue;
        }
        begin_compute(w);
        return;
      }
      case SimAction::Kind::kYield: {
        t->has_action = false;
        ws.state = WState::kIdle;
        ws.running = nullptr;
        ws.epoch += 1;
        enqueue_ready(t, w, /*preempted=*/false);
        try_dispatch(w);
        return;
      }
      case SimAction::Kind::kWaitFlag: {
        SimFlag* f = t->action.flag;
        if (f->is_set()) {
          t->has_action = false;
          continue;
        }
        switch (t->action.wait_mode) {
          case WaitMode::kSpinYield: {
            // Yielding spin loop: the worker is free to run anything else
            // between checks, so the observable behaviour equals parking on
            // the flag (modelled that way — simulating every yield/recheck
            // cycle would cost one event per ~150 ns of simulated time).
            f->blocked_.push_back(t);
            ws.state = WState::kIdle;
            ws.running = nullptr;
            ws.epoch += 1;
            try_dispatch(w);
            return;
          }
          case WaitMode::kSpin: {
            // Occupy the worker. Without preemption (or OS slicing) this
            // worker is wedged until the flag is set — the §4.1 hazard.
            ws.state = WState::kSpinning;
            ws.run_start = eq_.now();
            f->spinners_.emplace_back(w, ws.epoch);
            return;
          }
          case WaitMode::kBlock: {
            // Leave the core; SimFlag::set re-enqueues us.
            f->blocked_.push_back(t);
            ws.state = WState::kIdle;
            ws.running = nullptr;
            ws.epoch += 1;
            try_dispatch(w);
            return;
          }
        }
        return;  // unreachable
      }
      case SimAction::Kind::kFinish: {
        t->has_action = false;
        ws.state = WState::kIdle;
        ws.running = nullptr;
        ws.epoch += 1;
        finished_ += 1;
        last_finish_ = eq_.now();
        t->on_finish(*this);
        try_dispatch(w);
        return;
      }
    }
  }
}

void SimUltRuntime::begin_compute(int w) {
  WorkerState& ws = workers_[w];
  SimThread* t = ws.running;
  ws.run_start = eq_.now();
  const std::uint64_t epoch = ws.epoch;
  eq_.schedule_after(t->remaining, [this, w, epoch] { complete_compute(w, epoch); });
}

void SimUltRuntime::complete_compute(int w, std::uint64_t epoch) {
  WorkerState& ws = workers_[w];
  if (ws.epoch != epoch || ws.state != WState::kRunning) return;
  SimThread* t = ws.running;
  if (opts_.os_mode && t->weight > 0)
    t->vruntime += static_cast<double>(t->remaining) / t->weight;
  t->remaining = 0;
  t->has_action = false;
  advance(w);
}

void SimUltRuntime::flag_set_resume(int w, std::uint64_t epoch) {
  WorkerState& ws = workers_[w];
  if (ws.epoch != epoch || ws.state != WState::kSpinning) return;
  SimThread* t = ws.running;
  t->has_action = false;  // wait satisfied
  ws.state = WState::kRunning;
  ws.epoch += 1;
  advance(w);
}

void SimUltRuntime::pause_compute(int w, Time lost) {
  // The running (non-preempted) thread is stopped for `lost` ns by a signal
  // handler / OS tick; shift its completion.
  WorkerState& ws = workers_[w];
  SimThread* t = ws.running;
  if (ws.state == WState::kRunning && t->action.kind == SimAction::Kind::kCompute) {
    const Time elapsed = std::max<Time>(0, eq_.now() - ws.run_start);
    t->remaining = std::max<Time>(0, t->remaining - elapsed);
    ws.epoch += 1;  // invalidate the old completion event
    const std::uint64_t epoch = ws.epoch;
    eq_.schedule_after(lost, [this, w, epoch] {
      if (workers_[w].epoch == epoch && workers_[w].state == WState::kRunning)
        begin_compute(w);
    });
  }
  // Spinning threads just lose the time; nothing to reschedule.
}

// ---------------------------------------------------------------------------
// Preemption timers
// ---------------------------------------------------------------------------

bool SimUltRuntime::thread_preemptible(const SimThread* t) const {
  if (t == nullptr) return false;
  if (opts_.os_mode) return true;  // the OS preempts everyone
  if (opts_.timer_interruption_only) return false;
  return t->preempt != SimPreempt::kNone;
}

Time SimUltRuntime::suspend_cost(const SimThread* t) {
  if (t->preempt == SimPreempt::kSignalYield)
    return 2 * cm_.ult_ctx_switch + cm_.sigyield_extra;
  // KLT-switching: wake the replacement KLT; the scheduler resumes on it.
  Time c = cm_.futex_wake + cm_.futex_wakeup_latency + cm_.kltswitch_extra;
  if (!opts_.local_klt_pool) c += cm_.klt_global_pool_penalty / 2;
  return c;
}

Time SimUltRuntime::resume_cost(const SimThread* t) {
  if (t->preempt == SimPreempt::kSignalYield) return 0;
  Time c = opts_.klt_suspend == KltSuspendModel::kFutex
               ? cm_.futex_wake + cm_.futex_wakeup_latency
               : cm_.pthread_kill + cm_.signal_handler + cm_.sigsuspend_extra;
  if (!opts_.local_klt_pool) c += cm_.klt_global_pool_penalty / 2;
  return c;
}

void SimUltRuntime::schedule_worker_tick(int w) {
  WorkerState& ws = workers_[w];
  const Time t = opts_.os_mode
                     ? (ws.next_tick + 1) * cm_.cfs_timeslice +
                           static_cast<Time>(w) * cm_.cfs_timeslice /
                               opts_.num_workers
                     : worker_tick_time(opts_.timer, opts_.interval,
                                        opts_.num_workers, w, ws.next_tick);
  ws.next_tick += 1;
  eq_.schedule(std::max(t, eq_.now()), [this, w, t] {
    if (all_finished()) return;
    handle_tick(w, t, /*initiator=*/-1);
    schedule_worker_tick(w);
  });
}

void SimUltRuntime::schedule_process_tick(std::int64_t k) {
  const Time t = (k + 1) * opts_.interval;
  eq_.schedule(std::max(t, eq_.now()), [this, k] {
    if (all_finished()) return;
    // Find the first eligible worker and make it the initiator; none
    // eligible → no signals this period (§3.2.2).
    for (int w = 0; w < opts_.num_workers; ++w) {
      const WorkerState& ws = workers_[w];
      if ((ws.state == WState::kRunning || ws.state == WState::kSpinning) &&
          ws.running != nullptr && ws.running->preempt != SimPreempt::kNone) {
        handle_tick(w, eq_.now(), /*initiator=*/w);
        break;
      }
    }
    schedule_process_tick(k + 1);
  });
}

void SimUltRuntime::handle_tick(int w, Time issue_time, int initiator) {
  (void)issue_time;
  WorkerState& ws = workers_[w];

  if (opts_.os_mode) {
    // CFS slice tick: preempt only when local runnable threads wait.
    const bool occupied =
        ws.state == WState::kRunning || ws.state == WState::kSpinning;
    if (!occupied) return;
    stat_overhead_ += cm_.os_preempt;
    if (!pools_[w].empty()) {
      preempt_running(w, eq_.now() + cm_.os_preempt);
    } else {
      pause_compute(w, cm_.os_preempt);
    }
    return;
  }

  // M:N mode: the signal delivery serializes on the kernel lock.
  const Time handler_done = sig_.deliver(eq_.now());

  // Chain / one-to-all forwarding happens from inside the handler, before
  // any context switch (so a preempted initiator cannot stall the chain);
  // the pthread_kill calls extend this worker's own interruption window.
  Time forward_cost = 0;
  if (initiator >= 0) {
    const int n = opts_.num_workers;
    auto eligible = [&](int r) {
      const WorkerState& rs = workers_[r];
      return (rs.state == WState::kRunning || rs.state == WState::kSpinning) &&
             rs.running != nullptr && rs.running->preempt != SimPreempt::kNone;
    };
    if (opts_.timer == TimerStrategy::kProcessOneToAll && w == initiator) {
      Time issue = handler_done;
      for (int step = 1; step < n; ++step) {
        const int r = (w + step) % n;
        if (!eligible(r)) continue;
        issue += cm_.pthread_kill;
        forward_cost += cm_.pthread_kill;
        eq_.schedule(issue, [this, r, initiator] {
          handle_tick(r, eq_.now(), initiator);
        });
      }
    } else if (opts_.timer == TimerStrategy::kProcessChain) {
      for (int step = 1; step < n; ++step) {
        const int r = (w + step) % n;
        if (r == initiator) break;
        if (!eligible(r)) continue;
        const Time issue = handler_done + cm_.pthread_kill;
        forward_cost += cm_.pthread_kill;
        eq_.schedule(issue, [this, r, initiator] {
          handle_tick(r, eq_.now(), initiator);
        });
        break;
      }
    }
  }

  const Time effective_done = handler_done + forward_cost;
  const Time lost = effective_done - eq_.now();
  const bool occupied =
      ws.state == WState::kRunning || ws.state == WState::kSpinning;
  if (!occupied) return;
  stat_overhead_ += lost;
  if (thread_preemptible(ws.running)) {
    preempt_running(w, effective_done);
  } else {
    pause_compute(w, lost);
  }
}

void SimUltRuntime::preempt_running(int w, Time handler_done) {
  WorkerState& ws = workers_[w];
  SimThread* t = ws.running;
  LPT_CHECK(t != nullptr);

  if (!opts_.os_mode && t->preempt == SimPreempt::kKltSwitch) {
    if (idle_klts_ == 0) {
      // No spare KLT: post a creation request and skip this preemption; the
      // thread retries at the next tick (§3.1.2).
      if (!klt_creation_pending_) {
        klt_creation_pending_ = true;
        eq_.schedule_after(cm_.klt_create_latency, [this] {
          idle_klts_ += 1;
          stat_klts_created_ += 1;
          klt_creation_pending_ = false;
        });
      }
      pause_compute(w, handler_done - eq_.now());
      return;
    }
    idle_klts_ -= 1;  // the replacement KLT leaves the pool
    t->klt_bound = true;
  }

  // Account the preempted thread's progress (and locality loss).
  if (ws.state == WState::kRunning &&
      t->action.kind == SimAction::Kind::kCompute) {
    const Time elapsed = std::max<Time>(0, eq_.now() - ws.run_start);
    t->remaining = std::max<Time>(0, t->remaining - elapsed) + opts_.cache_refill;
    if (opts_.os_mode && t->weight > 0)
      t->vruntime += static_cast<double>(elapsed) / t->weight;
  }

  t->n_preempted += 1;
  stat_preemptions_ += 1;

  Time mechanics = 0;
  if (opts_.os_mode) {
    mechanics = cm_.os_ctx_switch;
  } else {
    mechanics = suspend_cost(t);
    t->pending_resume_cost = resume_cost(t);
  }
  stat_overhead_ += mechanics;

  ws.state = WState::kOverhead;
  ws.running = nullptr;
  ws.epoch += 1;
  enqueue_ready(t, w, /*preempted=*/true);

  const std::uint64_t epoch = ws.epoch;
  eq_.schedule(handler_done + mechanics, [this, w, epoch] {
    if (workers_[w].epoch != epoch) return;
    workers_[w].state = WState::kIdle;
    try_dispatch(w);
  });
}

// ---------------------------------------------------------------------------
// OS idle balancing
// ---------------------------------------------------------------------------

void SimUltRuntime::os_idle_balance(int w) {
  WorkerState& ws = workers_[w];
  ws.balance_pending = false;
  if (ws.state != WState::kIdle || all_finished()) return;
  // Steal one waiting thread from the most loaded runqueue.
  int victim = -1;
  std::size_t best = 0;
  for (int v = 0; v < opts_.num_workers; ++v) {
    if (v == w) continue;
    if (pools_[v].size() > best) {
      best = pools_[v].size();
      victim = v;
    }
  }
  if (victim >= 0) {
    SimThread* t = pools_[victim].back();
    pools_[victim].pop_back();
    pools_[w].push_back(t);
    try_dispatch(w);
  }
  if (workers_[w].state == WState::kIdle && !all_finished()) {
    ws.balance_pending = true;
    const Time delay =
        cm_.cfs_idle_balance_min +
        static_cast<Time>(rng_.next_double() *
                          static_cast<double>(cm_.cfs_idle_balance_max -
                                              cm_.cfs_idle_balance_min));
    eq_.schedule_after(delay, [this, w] { os_idle_balance(w); });
  }
}

// ---------------------------------------------------------------------------
// Top-level run loop
// ---------------------------------------------------------------------------

Time SimUltRuntime::run() {
  // Kick every worker and start the timer machinery.
  for (int w = 0; w < opts_.num_workers; ++w)
    eq_.schedule(eq_.now(), [this, w] { try_dispatch(w); });

  if (opts_.os_mode) {
    for (int w = 0; w < opts_.num_workers; ++w) schedule_worker_tick(w);
  } else {
    switch (opts_.timer) {
      case TimerStrategy::kNone:
        break;
      case TimerStrategy::kPerWorkerAligned:
      case TimerStrategy::kPerWorkerCreationTime:
        for (int w = 0; w < opts_.num_workers; ++w) schedule_worker_tick(w);
        break;
      case TimerStrategy::kProcessOneToAll:
      case TimerStrategy::kProcessChain:
        schedule_process_tick(0);
        break;
    }
  }

  while (!all_finished()) {
    if (eq_.empty() || eq_.now() > opts_.sim_time_limit) {
      deadlocked_ = true;
      return eq_.now();
    }
    eq_.step();
  }
  return last_finish_;
}

}  // namespace lpt::sim
