file(REMOVE_RECURSE
  "CMakeFiles/lpt_apps.dir/apps/cholesky/cholesky.cpp.o"
  "CMakeFiles/lpt_apps.dir/apps/cholesky/cholesky.cpp.o.d"
  "CMakeFiles/lpt_apps.dir/apps/linalg/blas.cpp.o"
  "CMakeFiles/lpt_apps.dir/apps/linalg/blas.cpp.o.d"
  "CMakeFiles/lpt_apps.dir/apps/linalg/team.cpp.o"
  "CMakeFiles/lpt_apps.dir/apps/linalg/team.cpp.o.d"
  "CMakeFiles/lpt_apps.dir/apps/md/md.cpp.o"
  "CMakeFiles/lpt_apps.dir/apps/md/md.cpp.o.d"
  "CMakeFiles/lpt_apps.dir/apps/multigrid/multigrid.cpp.o"
  "CMakeFiles/lpt_apps.dir/apps/multigrid/multigrid.cpp.o.d"
  "liblpt_apps.a"
  "liblpt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
