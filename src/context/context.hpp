// User-level execution contexts: the mechanism behind M:N threads (§2.1).
//
// A context is just a saved stack pointer; lpt_ctx_switch saves the
// callee-saved register set (plus mxcsr / x87 control word) on the current
// stack, publishes the stack pointer, and resumes another context the same
// way. This is the "about one hundred cycles" switch the paper relies on.
//
// Signal interaction (the crux of signal-yield, §3.1.1): when a context
// switch happens *inside a signal handler*, the kernel-built signal frame —
// which holds the full interrupted register file and sigmask — lives on the
// user-level thread's own stack, so it is suspended and resumed together
// with the thread. The switch itself still only needs the function-level
// (callee-saved) register set.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lpt {

/// Saved execution context. `sp` points at the register save area on the
/// context's own stack; null means "never started / currently running".
struct Context {
  void* sp = nullptr;
};

extern "C" {
/// Switch from the current context (saved into *from_sp) to to_sp.
/// Returns when someone later switches back into *from_sp.
void lpt_ctx_switch(void** from_sp, void* to_sp);

/// Switch to to_sp and discard the current context (no save). Used when a
/// thread terminates: its stack may be recycled by the target context.
[[noreturn]] void lpt_ctx_jump(void* to_sp);
}

/// Entry function signature for a fresh context.
using ContextEntry = void (*)(void* arg);

/// Build a fresh, suspended context at the top of [stack_base, stack_base +
/// stack_size). When first switched to, it calls entry(arg); entry must
/// never return (terminate by switching away for good).
Context make_context(void* stack_base, std::size_t stack_size, ContextEntry entry,
                     void* arg);

inline void context_switch(Context& from, const Context& to) {
  lpt_ctx_switch(&from.sp, to.sp);
}

[[noreturn]] inline void context_jump(const Context& to) { lpt_ctx_jump(to.sp); }

}  // namespace lpt
