#include "sim/timers.hpp"

#include "common/assert.hpp"

namespace lpt::sim {

const char* timer_strategy_name(TimerStrategy s) {
  switch (s) {
    case TimerStrategy::kNone:
      return "none";
    case TimerStrategy::kPerWorkerCreationTime:
      return "per-worker (creation-time)";
    case TimerStrategy::kPerWorkerAligned:
      return "per-worker (aligned)";
    case TimerStrategy::kProcessOneToAll:
      return "per-process (one-to-all)";
    case TimerStrategy::kProcessChain:
      return "per-process (chain)";
  }
  return "?";
}

Stats measure_interruption_time(const CostModel& cm, TimerStrategy strategy,
                                int workers, Time interval, int ticks) {
  LPT_CHECK(workers >= 1 && ticks >= 1);
  SignalSubsystem sig(cm);
  Stats stats;

  for (int k = 0; k < ticks; ++k) {
    const Time t0 = static_cast<Time>(k + 1) * interval;
    switch (strategy) {
      case TimerStrategy::kNone:
        break;
      case TimerStrategy::kPerWorkerCreationTime: {
        // All worker timers expire at the same instant; deliveries pile up
        // on the kernel lock. Fig 4's linearly growing line.
        for (int w = 0; w < workers; ++w)
          stats.add(static_cast<double>(sig.interruption_cost(t0)));
        break;
      }
      case TimerStrategy::kPerWorkerAligned: {
        // Expirations staggered by interval/N: never simultaneous (as long
        // as the handler fits in the slot). Fig 4's flat line.
        for (int w = 0; w < workers; ++w) {
          const Time tw = t0 + static_cast<Time>(w) * interval / workers;
          stats.add(static_cast<double>(sig.interruption_cost(tw)));
        }
        break;
      }
      case TimerStrategy::kProcessOneToAll: {
        // One OS tick to the initiator; its handler pthread_kills everyone
        // else back-to-back, so the other N-1 deliveries contend. The kill
        // loop itself runs inside the initiator's handler and extends its
        // own interruption window.
        const Time h0 = sig.deliver(t0);
        stats.add(static_cast<double>(h0 - t0 +
                                      (workers - 1) * cm.pthread_kill));
        Time issue = h0;
        for (int w = 1; w < workers; ++w) {
          issue += cm.pthread_kill;
          stats.add(static_cast<double>(sig.interruption_cost(issue)));
        }
        break;
      }
      case TimerStrategy::kProcessChain: {
        // Each handler forwards to at most one next worker: deliveries are
        // naturally serialized, one in flight at a time (Fig 5b). Each
        // forwarding worker pays its pthread_kill inside the handler — the
        // reason chain sits slightly above aligned in Fig 4 (§3.2.2).
        Time issue = t0;
        for (int w = 0; w < workers; ++w) {
          const Time done = sig.deliver(issue);
          const bool forwards = w + 1 < workers;
          stats.add(static_cast<double>(done - issue +
                                        (forwards ? cm.pthread_kill : 0)));
          issue = done + cm.pthread_kill;
        }
        break;
      }
    }
  }
  return stats;
}

Time worker_tick_time(TimerStrategy strategy, Time interval, int workers,
                      int worker, std::int64_t k) {
  LPT_CHECK(worker >= 0 && worker < workers);
  switch (strategy) {
    case TimerStrategy::kPerWorkerAligned:
      return (k + 1) * interval + static_cast<Time>(worker) * interval / workers;
    case TimerStrategy::kPerWorkerCreationTime:
    case TimerStrategy::kProcessOneToAll:
    case TimerStrategy::kProcessChain:
      return (k + 1) * interval;
    case TimerStrategy::kNone:
      break;
  }
  LPT_CHECK_MSG(false, "no tick schedule for TimerStrategy::kNone");
  return 0;
}

}  // namespace lpt::sim
