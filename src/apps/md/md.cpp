#include "apps/md/md.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"
#include "common/prng.hpp"

namespace lpt::apps {

namespace {

struct System {
  int n = 0;
  double box = 0;
  std::vector<double> x, y, z, vx, vy, vz, fx, fy, fz;

  double min_image(double d) const {
    if (d > 0.5 * box) return d - box;
    if (d < -0.5 * box) return d + box;
    return d;
  }
};

constexpr double kCutoff = 2.5;
constexpr double kCutoff2 = kCutoff * kCutoff;

void init_lattice(System& s, const MdOptions& o) {
  const int c = o.cells_per_side;
  s.n = c * c * c;
  s.box = std::cbrt(static_cast<double>(s.n) / o.density);
  const double a = s.box / c;
  s.x.resize(s.n);
  s.y.resize(s.n);
  s.z.resize(s.n);
  s.vx.assign(s.n, 0);
  s.vy.assign(s.n, 0);
  s.vz.assign(s.n, 0);
  s.fx.assign(s.n, 0);
  s.fy.assign(s.n, 0);
  s.fz.assign(s.n, 0);

  Xoshiro256 rng(12345);
  int p = 0;
  double svx = 0, svy = 0, svz = 0;
  for (int i = 0; i < c; ++i)
    for (int j = 0; j < c; ++j)
      for (int k = 0; k < c; ++k, ++p) {
        s.x[p] = (i + 0.5) * a;
        s.y[p] = (j + 0.5) * a;
        s.z[p] = (k + 0.5) * a;
        s.vx[p] = rng.next_double() - 0.5;
        s.vy[p] = rng.next_double() - 0.5;
        s.vz[p] = rng.next_double() - 0.5;
        svx += s.vx[p];
        svy += s.vy[p];
        svz += s.vz[p];
      }
  // Remove centre-of-mass drift.
  for (int i = 0; i < s.n; ++i) {
    s.vx[i] -= svx / s.n;
    s.vy[i] -= svy / s.n;
    s.vz[i] -= svz / s.n;
  }
}

/// Forces on particles [i0, i1); returns the 0.5-weighted potential share.
double force_range(System& s, int i0, int i1) {
  double pot = 0;
  for (int i = i0; i < i1; ++i) {
    double fxi = 0, fyi = 0, fzi = 0;
    for (int j = 0; j < s.n; ++j) {
      if (j == i) continue;
      const double dx = s.min_image(s.x[i] - s.x[j]);
      const double dy = s.min_image(s.y[i] - s.y[j]);
      const double dz = s.min_image(s.z[i] - s.z[j]);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= kCutoff2) continue;
      const double ir2 = 1.0 / r2;
      const double ir6 = ir2 * ir2 * ir2;
      const double lj = 24.0 * ir6 * (2.0 * ir6 - 1.0) * ir2;  // f/r
      fxi += lj * dx;
      fyi += lj * dy;
      fzi += lj * dz;
      pot += 0.5 * (4.0 * ir6 * (ir6 - 1.0));
    }
    s.fx[i] = fxi;
    s.fy[i] = fyi;
    s.fz[i] = fzi;
  }
  return pot;
}

double kinetic(const System& s) {
  double ke = 0;
  for (int i = 0; i < s.n; ++i)
    ke += 0.5 * (s.vx[i] * s.vx[i] + s.vy[i] * s.vy[i] + s.vz[i] * s.vz[i]);
  return ke;
}

/// Parallel force computation: one team of ULTs per call (the Kokkos-style
/// per-parallel-region spawn of §4.3).
double compute_forces(Runtime& rt, System& s, int threads) {
  const int per = (s.n + threads - 1) / threads;
  std::vector<double> pots(threads, 0.0);
  std::vector<Thread> team;
  for (int t = 1; t < threads; ++t) {
    const int i0 = t * per;
    const int i1 = std::min(s.n, i0 + per);
    if (i0 >= i1) break;
    team.push_back(rt.spawn([&s, &pots, t, i0, i1] { pots[t] = force_range(s, i0, i1); }));
  }
  pots[0] = force_range(s, 0, std::min(s.n, per));
  for (auto& t : team) t.join();
  double pot = 0;
  for (double p : pots) pot += p;
  return pot;
}

struct AnalysisJob {
  std::vector<double> snap_vx, snap_vy, snap_vz;  // snapshot buffer
  std::vector<std::atomic<std::uint64_t>> bins;
  std::atomic<int> remaining{0};

  explicit AnalysisJob(int nbins) : bins(nbins) {
    for (auto& b : bins) b.store(0);
  }
};

}  // namespace

MdResult md_run(Runtime& rt, const MdOptions& opts) {
  LPT_CHECK(!this_thread::in_ult());
  System s;
  init_lattice(s, opts);

  MdResult res;
  res.n_particles = s.n;

  double pot = compute_forces(rt, s, opts.threads);
  res.initial_energy = pot + kinetic(s);

  std::vector<std::unique_ptr<AnalysisJob>> jobs;
  std::vector<Thread> analysis_threads;
  std::atomic<int> analyses_done{0};

  const double dt = opts.dt;
  for (int step = 0; step < opts.steps; ++step) {
    // Velocity Verlet: half kick + drift.
    for (int i = 0; i < s.n; ++i) {
      s.vx[i] += 0.5 * dt * s.fx[i];
      s.vy[i] += 0.5 * dt * s.fy[i];
      s.vz[i] += 0.5 * dt * s.fz[i];
      s.x[i] = std::fmod(s.x[i] + dt * s.vx[i] + s.box, s.box);
      s.y[i] = std::fmod(s.y[i] + dt * s.vy[i] + s.box, s.box);
      s.z[i] = std::fmod(s.z[i] + dt * s.vz[i] + s.box, s.box);
    }

    // Launch in situ analysis on a snapshot (low priority: it must not
    // delay the simulation team).
    if (opts.in_situ && step % opts.analysis_interval == 0) {
      auto job = std::make_unique<AnalysisJob>(opts.histogram_bins);
      job->snap_vx = s.vx;
      job->snap_vy = s.vy;
      job->snap_vz = s.vz;
      job->remaining.store(opts.analysis_threads);
      AnalysisJob* j = job.get();
      jobs.push_back(std::move(job));

      ThreadAttrs attrs;
      attrs.priority = 1;  // low class (PriorityScheduler)
      attrs.preempt = opts.analysis_preempt;
      const int per = (s.n + opts.analysis_threads - 1) / opts.analysis_threads;
      for (int t = 0; t < opts.analysis_threads; ++t) {
        const int i0 = t * per;
        const int i1 = std::min(s.n, i0 + per);
        analysis_threads.push_back(rt.spawn(
            [j, i0, i1, &opts, &analyses_done] {
              for (int i = i0; i < i1; ++i) {
                const double sp =
                    std::sqrt(j->snap_vx[i] * j->snap_vx[i] +
                              j->snap_vy[i] * j->snap_vy[i] +
                              j->snap_vz[i] * j->snap_vz[i]);
                int bin = static_cast<int>(sp * 8.0);
                if (bin >= static_cast<int>(j->bins.size()))
                  bin = static_cast<int>(j->bins.size()) - 1;
                j->bins[bin].fetch_add(1, std::memory_order_relaxed);
              }
              if (j->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
                analyses_done.fetch_add(1);
            },
            attrs));
      }
    }

    pot = compute_forces(rt, s, opts.threads);

    for (int i = 0; i < s.n; ++i) {
      s.vx[i] += 0.5 * dt * s.fx[i];
      s.vy[i] += 0.5 * dt * s.fy[i];
      s.vz[i] += 0.5 * dt * s.fz[i];
    }

    const double e = pot + kinetic(s);
    const double drift =
        std::fabs(e - res.initial_energy) /
        std::max(1.0, std::fabs(res.initial_energy));
    if (drift > res.max_energy_drift) res.max_energy_drift = drift;
    res.final_energy = e;
  }

  for (auto& t : analysis_threads) t.join();
  res.analyses_completed = analyses_done.load();
  if (!jobs.empty()) {
    res.last_histogram.resize(opts.histogram_bins);
    for (int b = 0; b < opts.histogram_bins; ++b)
      res.last_histogram[b] = jobs.back()->bins[b].load();
  }
  return res;
}

}  // namespace lpt::apps
