// Tier-1 tests of the preemption-starvation watchdog (runtime/watchdog.hpp):
// each detector catches the pathology it was built for within ~2 watchdog
// periods past its threshold, and a healthy preemptive workload produces
// zero flags.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "runtime/signals.hpp"

namespace lpt {
namespace {

/// Thread-safe flag recorder handed to RuntimeOptions::watchdog_callback.
struct FlagRecorder {
  std::atomic<std::uint64_t> counts[3] = {};
  std::atomic<std::int64_t> first_ns[3] = {};

  void operator()(const WatchdogReport& r) {
    const int k = static_cast<int>(r.kind);
    if (counts[k].fetch_add(1, std::memory_order_relaxed) == 0)
      first_ns[k].store(now_ns(), std::memory_order_relaxed);
  }
  std::uint64_t count(WatchdogReport::Kind k) const {
    return counts[static_cast<int>(k)].load(std::memory_order_relaxed);
  }
};

bool wait_until(const std::atomic<bool>& flag, std::int64_t timeout_ns) {
  const std::int64_t deadline = now_ns() + timeout_ns;
  while (!flag.load(std::memory_order_acquire)) {
    if (now_ns() > deadline) return false;
    usleep(1000);
  }
  return true;
}

TEST(Watchdog, DetectsRunnableStarvation) {
  FlagRecorder rec;
  std::atomic<bool> flagged{false};
  std::atomic<bool> release{false};

  RuntimeOptions o;
  o.num_workers = 1;
  // No preemption timer: the hog cannot be preempted away, and the watchdog
  // runs on its own thread.
  o.timer = TimerKind::None;
  o.watchdog_period_ms = 50;
  o.watchdog_runnable_ns = 100'000'000;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    rec(r);
    if (r.kind == WatchdogReport::Kind::kRunnableStarvation) {
      EXPECT_EQ(r.worker, 0);
      EXPECT_GE(r.age_ns, o.watchdog_runnable_ns);
      EXPECT_GE(r.queue_depth, 1);
      flagged.store(true, std::memory_order_release);
    }
  };
  Runtime rt(o);

  const std::int64_t start = now_ns();
  Thread hog = rt.spawn([&] {
    while (!release.load(std::memory_order_acquire)) busy_spin_ns(100'000);
  });
  usleep(5'000);  // let the hog occupy the worker before queueing the victim
  Thread victim = rt.spawn([] {});

  // Threshold + 2 periods is the contract; the rest is scheduler slack.
  EXPECT_TRUE(wait_until(flagged, 5'000'000'000)) << "starvation never flagged";
  const std::int64_t detect_ns = now_ns() - start;
  EXPECT_LE(detect_ns, o.watchdog_runnable_ns +
                           2 * o.watchdog_period_ms * 1'000'000 +
                           300'000'000);

  release.store(true, std::memory_order_release);
  hog.join();
  victim.join();
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kRunnableStarvation), 1u);
  EXPECT_EQ(rec.count(WatchdogReport::Kind::kWorkerStall), 0u);
}

TEST(Watchdog, DetectsSignalMaskedWorker) {
  FlagRecorder rec;
  std::atomic<bool> flagged{false};

  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.watchdog_stall_ticks = 4;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    rec(r);
    if (r.kind == WatchdogReport::Kind::kWorkerStall) {
      EXPECT_GE(r.ticks_without_handler, 4u);
      flagged.store(true, std::memory_order_release);
    }
  };
  Runtime rt(o);

  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  Thread t = rt.spawn(
      [&] {
        // A buggy application blocking the preemption signal: ticks keep
        // being sent at this preemptible ULT but the handler never runs.
        sigset_t set, old;
        sigemptyset(&set);
        sigaddset(&set, signals::preempt_signo());
        pthread_sigmask(SIG_BLOCK, &set, &old);
        const std::int64_t deadline = now_ns() + 5'000'000'000;
        while (!flagged.load(std::memory_order_acquire) &&
               now_ns() < deadline)
          busy_spin_ns(100'000);
        pthread_sigmask(SIG_SETMASK, &old, nullptr);
      },
      sy);
  t.join();

  EXPECT_TRUE(flagged.load()) << "masked worker never flagged";
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kWorkerStall), 1u);
}

TEST(Watchdog, DetectsQuantumOverrunUnderDegradedKltSwitch) {
  FlagRecorder rec;
  std::atomic<bool> flagged{false};

  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1'000;
  // Cap the KLT count at the worker hosts: every KLT-switch tick degrades,
  // so the ULT genuinely overstays its quantum while the handler (which
  // keeps entering) proves the worker is not stalled.
  o.max_klts = 1;
  o.watchdog_period_ms = 20;
  o.watchdog_quantum_factor = 10;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    rec(r);
    if (r.kind == WatchdogReport::Kind::kQuantumOverrun)
      flagged.store(true, std::memory_order_release);
  };
  Runtime rt(o);

  ThreadAttrs ks;
  ks.preempt = Preempt::KltSwitch;
  Thread t = rt.spawn(
      [&] {
        const std::int64_t deadline = now_ns() + 5'000'000'000;
        while (!flagged.load(std::memory_order_acquire) &&
               now_ns() < deadline)
          busy_spin_ns(100'000);
      },
      ks);
  t.join();

  EXPECT_TRUE(flagged.load()) << "quantum overrun never flagged";
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kQuantumOverrun), 1u);
  EXPECT_EQ(rec.count(WatchdogReport::Kind::kWorkerStall), 0u);
  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.klt_degraded_ticks, 0u);
}

TEST(Watchdog, NoFalsePositivesOnHealthyPreemptiveWorkload) {
  FlagRecorder rec;
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;  // aggressive cadence, default thresholds
  o.watchdog_callback = [&](const WatchdogReport& r) { rec(r); };
  Runtime rt(o);

  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  const std::int64_t deadline = now_ns() + 300'000'000;
  while (now_ns() < deadline) {
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([] { busy_spin_ns(5'000'000); }, sy));
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([] { this_thread::yield(); }));
    for (auto& t : ts) t.join();
  }

  const metrics::Snapshot s = rt.metrics_snapshot();
  EXPECT_GT(s.watchdog_checks, 0u);
  EXPECT_EQ(s.watchdog_runnable_starvation, 0u);
  EXPECT_EQ(s.watchdog_worker_stall, 0u);
  EXPECT_EQ(s.watchdog_quantum_overrun, 0u);
  EXPECT_EQ(rec.count(WatchdogReport::Kind::kRunnableStarvation), 0u);
}

}  // namespace
}  // namespace lpt
