// Fig 6's experiment on the REAL runtime of this host (scaled down): the
// relative overhead of preemptive vs nonpreemptive threads over a
// compute-bound workload, as a function of the timer interval. The absolute
// numbers depend on this machine; the monotone trend (overhead shrinks with
// the interval) and the variant ordering are the reproducible part.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

using namespace lpt;

namespace {

volatile std::uint64_t g_sink;

double run_once(Preempt mode, TimerKind timer, std::int64_t interval_us,
                std::uint64_t iters, int threads) {
  RuntimeOptions o;
  o.num_workers = 1;  // this container has one core
  o.timer = timer;
  o.interval_us = interval_us;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = mode;
  const std::int64_t t0 = now_ns();
  std::vector<Thread> ts;
  for (int i = 0; i < threads; ++i)
    ts.push_back(rt.spawn([iters] { g_sink = busy_work_iters(iters); }, attrs));
  for (auto& t : ts) t.join();
  return static_cast<double>(now_ns() - t0);
}

double median_overhead(Preempt mode, std::int64_t interval_us,
                       std::uint64_t iters, int threads) {
  Stats samples;
  for (int rep = 0; rep < 3; ++rep) {
    const double base =
        run_once(Preempt::None, TimerKind::None, 1000, iters, threads);
    const double with =
        run_once(mode, TimerKind::PerWorkerAligned, interval_us, iters, threads);
    samples.add((with - base) / base);
  }
  return samples.median();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport json("real_overhead");
  std::printf("=== Real-runtime preemption overhead on this host ===\n");
  std::printf("(1 worker x 4 compute threads; companion to the simulated "
              "Fig 6 at 56 workers)\n\n");

  // Calibrate ~50 ms of busy work per thread.
  const std::int64_t probe0 = now_ns();
  g_sink = busy_work_iters(20'000'000);
  const double per_iter = static_cast<double>(now_ns() - probe0) / 20e6;
  const auto iters = static_cast<std::uint64_t>(50e6 / per_iter);

  Table table({"interval", "Signal-yield", "KLT-switching"});
  double sy_fast = 0, sy_slow = 0, ks_fast = 0, ks_slow = 0;
  for (std::int64_t iv : {500, 1000, 5000, 10'000}) {
    const double sy = median_overhead(Preempt::SignalYield, iv, iters, 4);
    const double ks = median_overhead(Preempt::KltSwitch, iv, iters, 4);
    if (iv == 500) {
      sy_fast = sy;
      ks_fast = ks;
    }
    if (iv == 10'000) {
      sy_slow = sy;
      ks_slow = ks;
    }
    table.add_row({Table::fmt("%5.1f ms", iv / 1000.0),
                   Table::fmt("%+6.2f%%", sy * 100),
                   Table::fmt("%+6.2f%%", ks * 100)});
    json.set(Table::fmt("signal_yield.overhead_pct.%lldus", (long long)iv),
             sy * 100);
    json.set(Table::fmt("klt_switching.overhead_pct.%lldus", (long long)iv),
             ks * 100);
  }
  table.print();

  std::printf("\nShape checks (tolerant: this is a noisy 1-core container):\n");
  std::printf("  [%s] overhead shrinks as the interval grows "
              "(SY %.2f%% -> %.2f%%; KS %.2f%% -> %.2f%%)\n",
              (sy_slow < sy_fast + 0.01 && ks_slow < ks_fast + 0.01)
                  ? "OK"
                  : "NOISY",
              sy_fast * 100, sy_slow * 100, ks_fast * 100, ks_slow * 100);
  std::printf("  [%s] at 10 ms (the paper's OS-like interval) overhead is "
              "small (SY %+0.2f%%, KS %+0.2f%%)\n",
              (sy_slow < 0.05 && ks_slow < 0.05) ? "OK" : "NOISY",
              sy_slow * 100, ks_slow * 100);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
