// Simulated runtimes for the paper's evaluation, one engine with two modes:
//
//  * M:N mode — mirrors the real lpt runtime: workers pinned to cores,
//    per-worker ready pools, work-stealing / packing (Algorithm 1) /
//    priority scheduling, the two preemption techniques with their §3.3
//    optimizations, and the §3.2 timer strategies (with the kernel
//    signal-lock contention model).
//
//  * OS (1:1) mode — an Intel-OpenMP-over-CFS stand-in: every thread is a
//    kernel thread, per-core runqueues with vruntime-ordered picking, slice
//    rotation, nice weights, random wake placement and *lazy* idle balancing
//    (the "Decade of Wasted Cores" behaviour Fig 8 depends on).
//
// Workloads describe threads as Action sequences (compute / yield /
// busy-wait on a flag / finish); deadlocks emerge naturally when every
// worker busy-waits and nothing can run (empty event queue with unfinished
// threads), exactly the MKL scenario of §4.1.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/prng.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/signal_subsys.hpp"
#include "sim/timers.hpp"

namespace lpt::sim {

class SimUltRuntime;
class SimFlag;

enum class SimPreempt : std::uint8_t { kNone, kSignalYield, kKltSwitch };
enum class SchedPolicy : std::uint8_t { kWorkSteal, kPacking, kPriority };
enum class KltSuspendModel : std::uint8_t { kFutex, kSigsuspend };

struct SimUltOptions {
  int num_workers = 56;

  TimerStrategy timer = TimerStrategy::kNone;
  Time interval = 1'000'000;  // 1 ms

  KltSuspendModel klt_suspend = KltSuspendModel::kFutex;
  bool local_klt_pool = true;
  SchedPolicy sched = SchedPolicy::kWorkSteal;

  /// Fig 6 baseline: handlers fire and cost time but never preempt.
  bool timer_interruption_only = false;

  /// Per-preemption locality penalty added to the preempted thread's
  /// remaining work (evicted working set); workload-dependent (§4.1 observes
  /// short intervals "incur non-negligible cache misses").
  Time cache_refill = 0;

  /// OS (1:1) mode: ignore `timer`/`sched`, use per-core CFS slicing.
  bool os_mode = false;

  /// Packing: number of active workers (rank >= n_active parked). M:N mode.
  int n_active = -1;  // -1 = all

  Time sim_time_limit = 600'000'000'000;  // 10 min simulated → stuck
  std::uint64_t seed = 42;
};

/// How a thread waits on a flag.
enum class WaitMode : std::uint8_t {
  kSpin,       ///< pure busy loop (MKL-style; needs preemption to be safe)
  kSpinYield,  ///< the "reverse-engineered MKL" loop: yield between checks
  kBlock,      ///< cooperative/OS block: leaves the core until set
};

/// One step of a simulated thread's behaviour.
struct SimAction {
  enum class Kind : std::uint8_t { kCompute, kYield, kWaitFlag, kFinish };
  Kind kind = Kind::kFinish;
  Time duration = 0;       // kCompute
  SimFlag* flag = nullptr; // kWaitFlag
  WaitMode wait_mode = WaitMode::kSpin;

  static SimAction compute(Time d) {
    return {Kind::kCompute, d, nullptr, WaitMode::kSpin};
  }
  static SimAction yield() { return {Kind::kYield, 0, nullptr, WaitMode::kSpin}; }
  static SimAction wait(SimFlag* f, WaitMode mode) {
    return {Kind::kWaitFlag, 0, f, mode};
  }
  static SimAction finish() {
    return {Kind::kFinish, 0, nullptr, WaitMode::kSpin};
  }
};

/// Base class of workload threads. The engine calls next() every time the
/// previous action completed and on_finish() after kFinish.
class SimThread {
 public:
  virtual ~SimThread() = default;
  virtual SimAction next(SimUltRuntime& rt) = 0;
  virtual void on_finish(SimUltRuntime& rt) { (void)rt; }

  SimPreempt preempt = SimPreempt::kNone;
  int priority = 0;       ///< 0 = high class, 1 = low class (priority sched)
  double weight = 1.0;    ///< OS mode: CFS nice weight (nice+10 ≈ 0.1)
  int home_pool = 0;

  // --- engine state (owned by SimUltRuntime) ---
  int id = -1;
  bool has_action = false;
  SimAction action{};
  Time remaining = 0;
  Time pending_resume_cost = 0;
  bool klt_bound = false;  ///< suspended with its KLT (KLT-switching)
  double vruntime = 0;     // OS mode
  int last_worker = -1;
  std::uint64_t n_preempted = 0;
};

/// Busy-wait memory flag (the MKL synchronization pattern of §4.1).
class SimFlag {
 public:
  bool is_set() const { return set_; }
  /// Set the flag and wake every spinning waiter (engine notified).
  void set(SimUltRuntime& rt);
  void reset() { set_ = false; }

 private:
  friend class SimUltRuntime;
  bool set_ = false;
  std::vector<std::pair<int, std::uint64_t>> spinners_;  // (worker, epoch)
  std::vector<SimThread*> blocked_;                      // kBlock waiters
};

class SimUltRuntime {
 public:
  SimUltRuntime(const CostModel& cm, SimUltOptions opts);
  ~SimUltRuntime();

  /// Spawn a thread (engine takes ownership); callable before run() and from
  /// workload callbacks during the simulation.
  SimThread* spawn(std::unique_ptr<SimThread> t);

  /// Simulate until every spawned thread finished. Returns the makespan
  /// (time of the last finish). Check deadlocked() afterwards.
  Time run();

  bool deadlocked() const { return deadlocked_; }
  Time now() const { return eq_.now(); }
  const CostModel& cost_model() const { return cm_; }
  const SimUltOptions& options() const { return opts_; }
  EventQueue& events() { return eq_; }
  Xoshiro256& rng() { return rng_; }

  // --- statistics ---
  std::uint64_t total_preemptions() const { return stat_preemptions_; }
  /// Total worker time lost to signal interruptions + preemption mechanics.
  Time total_overhead_time() const { return stat_overhead_; }
  int threads_spawned() const { return static_cast<int>(threads_.size()); }
  int threads_finished() const { return finished_; }
  std::uint64_t klts_created() const { return stat_klts_created_; }

 private:
  friend class SimFlag;

  enum class WState : std::uint8_t {
    kIdle,
    kRunning,
    kSpinning,
    kOverhead,  ///< paying preemption mechanics; dispatches when done
    kParked,
  };
  struct WorkerState {
    WState state = WState::kIdle;
    SimThread* running = nullptr;
    Time run_start = 0;
    std::uint64_t epoch = 0;     ///< invalidates stale events
    std::int64_t next_tick = 0;  ///< per-worker tick index (M:N per-worker)
    bool balance_pending = false;
    std::uint8_t pack_phase = 0; ///< Algorithm 1 private/shared alternation
    int pack_shared_next = 0;    ///< round-robin cursor over shared pools
    double cfs_min_vr = 0;       ///< OS mode: core's min_vruntime watermark
  };

  // engine steps
  void enqueue_ready(SimThread* t, int hint_worker, bool preempted);
  void wake_one_idle();
  void try_dispatch(int w);
  SimThread* pick(int w);
  void advance(int w);            ///< process actions until blocked/scheduled
  void begin_compute(int w);
  void complete_compute(int w, std::uint64_t epoch);
  void flag_set_resume(int w, std::uint64_t epoch);
  void pause_compute(int w, Time lost);  ///< extend by interruption time

  // preemption / ticks
  void schedule_worker_tick(int w);
  void schedule_process_tick(std::int64_t k);
  void handle_tick(int w, Time issue_time, int initiator);
  void preempt_running(int w, Time handler_done);
  bool thread_preemptible(const SimThread* t) const;
  Time suspend_cost(const SimThread* t);
  Time resume_cost(const SimThread* t);

  // OS mode
  void os_idle_balance(int w);
  int os_pick_core_for(SimThread* t);

  bool all_finished() const {
    return finished_ == static_cast<int>(threads_.size());
  }
  bool worker_active(int w) const {
    return !opts_.os_mode ? w < n_active_ : true;
  }

  const CostModel& cm_;
  SimUltOptions opts_;
  EventQueue eq_;
  SignalSubsystem sig_;
  Xoshiro256 rng_;

  std::vector<std::unique_ptr<SimThread>> threads_;
  std::vector<WorkerState> workers_;
  std::vector<std::deque<SimThread*>> pools_;      ///< ready queues / runqueues
  std::vector<std::deque<SimThread*>> low_pools_;  ///< priority-low LIFO

  int n_active_ = 0;
  int finished_ = 0;
  Time last_finish_ = 0;
  bool deadlocked_ = false;
  bool process_tick_scheduled_ = false;

  int idle_klts_ = 0;
  bool klt_creation_pending_ = false;

  std::uint64_t stat_preemptions_ = 0;
  Time stat_overhead_ = 0;
  std::uint64_t stat_klts_created_ = 0;
};

}  // namespace lpt::sim
