// Causal-observability tests (docs/observability.md, "Causal tracing &
// scheduling delay"): every wakeup site emits a kUltWake edge carrying the
// waker and the WaitKind the sleeper was parked under; every dispatch is
// preceded by a became-ready event; spawn latency and scheduling-delay
// accounting are sane under both preemption schemes and reconcile exactly
// with the merged histograms even when threads are stolen across pools.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <vector>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "prof/prof.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

using trace::EventType;
using trace::EventView;

RuntimeOptions traced_options(int workers) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.trace.enabled = true;
  o.trace.ring_capacity = 1u << 16;  // large: drop-free under these loads
  return o;
}

std::vector<EventView> events_after(const Runtime& rt) {
  (void)rt;  // the Collector keeps ring data after ~Runtime disables tracing
  return trace::Collector::instance().snapshot_events();
}

/// First wake edge whose woken ULT was parked under `kind` (arg1 match).
const EventView* find_wake(const std::vector<EventView>& evs,
                           std::uint64_t kind_arg) {
  for (const EventView& e : evs)
    if (e.type == EventType::kUltWake && e.arg1 == kind_arg) return &e;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Wake edges per primitive. One worker: spawn order is execution order, so
// the waiter deterministically parks before its waker runs.
// ---------------------------------------------------------------------------

TEST(CausalTrace, MutexUnlockEmitsWakeEdgeWithWakerIdentity) {
  std::vector<EventView> evs;
  {
    Runtime rt(traced_options(1));
    Mutex m;
    // t1 takes the lock and yields while holding it; t2 then parks on it.
    Thread t1 = rt.spawn([&] {
      m.lock();
      for (int i = 0; i < 4; ++i) this_thread::yield();
      m.unlock();
    });
    Thread t2 = rt.spawn([&] {
      m.lock();
      m.unlock();
    });
    t1.join();
    t2.join();
    evs = events_after(rt);
  }
  const EventView* w =
      find_wake(evs, static_cast<std::uint64_t>(prof::WaitKind::kMutex));
  ASSERT_NE(w, nullptr);
  EXPECT_NE(w->ult, 0u);        // the woken waiter is a real traced ULT
  EXPECT_NE(w->arg0, 0u);       // woken by the unlocking ULT, not external
  EXPECT_NE(w->arg0, w->ult);   // waker and woken are distinct threads
}

TEST(CausalTrace, CondVarSemaphoreAndJoinEmitWakeEdges) {
  std::vector<EventView> evs;
  {
    Runtime rt(traced_options(1));
    Mutex m;
    CondVar cv;
    Semaphore sem(0);
    Thread cv_waiter = rt.spawn([&] {
      m.lock();
      cv.wait(m);  // direct handoff: no predicate needed for one waiter
      m.unlock();
    });
    Thread sem_waiter = rt.spawn([&] { sem.acquire(); });
    Thread joiner = rt.spawn([&] {
      // The child has not run yet (single worker), so join() really parks,
      // and the child's exit is the waker of the join edge.
      Thread child = rt.spawn([] {});
      child.join();
    });
    Thread waker = rt.spawn([&] {
      m.lock();
      cv.notify_one();
      m.unlock();
      sem.release();
    });
    cv_waiter.join();
    sem_waiter.join();
    joiner.join();
    waker.join();
    evs = events_after(rt);
  }
  for (prof::WaitKind k :
       {prof::WaitKind::kCondVar, prof::WaitKind::kSemaphore,
        prof::WaitKind::kJoin}) {
    const EventView* w = find_wake(evs, static_cast<std::uint64_t>(k));
    ASSERT_NE(w, nullptr) << "no wake edge for " << prof::wait_kind_name(k);
    EXPECT_NE(w->arg0, 0u) << prof::wait_kind_name(k);  // ULT waker, known
  }
  // Every spawn produced a spawn edge; the in-ULT spawn has a ULT waker and
  // the external (main-thread) spawns carry waker 0.
  std::size_t spawn_edges = 0, ult_parent = 0, external_parent = 0;
  for (const EventView& e : evs)
    if (e.type == EventType::kUltWake && e.arg1 == trace::kWakeArgSpawn) {
      ++spawn_edges;
      (e.arg0 != 0 ? ult_parent : external_parent) += 1;
    }
  EXPECT_EQ(spawn_edges, 5u);  // 4 from main + 1 nested
  EXPECT_EQ(ult_parent, 1u);
  EXPECT_EQ(external_parent, 4u);
}

TEST(CausalTrace, TimedWaitExpiryAndCancelKickEmitExternalWakeEdges) {
  std::vector<EventView> evs;
  {
    Runtime rt(traced_options(2));
    Semaphore never(0);
    // Expiry: nothing ever posts; the timed-wait registry wakes the waiter.
    Thread expired = rt.spawn(
        [&] { EXPECT_FALSE(never.try_acquire_for(std::chrono::milliseconds(20))); });
    // Cancel kick: a long timed wait cut short by request_cancel() — the
    // expiry scan treats a cancel-requested wait as immediately due.
    std::atomic<bool> parked{false};
    Thread cancelled = rt.spawn([&] {
      parked.store(true, std::memory_order_release);
      never.try_acquire_for(std::chrono::seconds(30));
    });
    while (!parked.load(std::memory_order_acquire)) busy_spin_ns(10'000);
    busy_spin_ns(2'000'000);  // let it reach the park, not just the flag
    EXPECT_TRUE(cancelled.request_cancel());
    ThreadStatus st = cancelled.join_status();
    EXPECT_TRUE(st.completed);
    EXPECT_EQ(st.fault.kind, FaultKind::kCancelled);
    expired.join();
    evs = events_after(rt);
  }
  // Both waiters were parked as kSemaphore and woken by the expiry scan
  // (waker 0 = external/timer), one per thread.
  std::size_t external_sem_wakes = 0;
  for (const EventView& e : evs)
    if (e.type == EventType::kUltWake &&
        e.arg1 == static_cast<std::uint64_t>(prof::WaitKind::kSemaphore) &&
        e.arg0 == 0)
      ++external_sem_wakes;
  EXPECT_GE(external_sem_wakes, 2u);
}

// ---------------------------------------------------------------------------
// Ready/dispatch pairing: every dispatch of a ULT must be preceded — since
// that ULT's previous dispatch — by an event that made it runnable.
// ---------------------------------------------------------------------------

TEST(CausalTrace, EveryDispatchHasAPriorReadyEvent) {
  std::vector<EventView> evs;
  {
    RuntimeOptions o = traced_options(2);
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = 500;  // preemption in the mix: preempt re-readies too
    Runtime rt(o);
    Mutex m;
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.push_back(rt.spawn([&] {
        for (int k = 0; k < 20; ++k) {
          m.lock();
          busy_spin_ns(50'000);
          m.unlock();
          this_thread::yield();
        }
      }));
    for (auto& t : ts) t.join();
    const Runtime::Stats st = rt.stats();
    ASSERT_EQ(st.trace_dropped, 0u) << "ring too small for this workload";
    evs = events_after(rt);
  }
  // Walk the sorted log keeping a per-ULT "has an unconsumed ready event"
  // flag. snapshot_events() breaks timestamp ties dispatch-last, so a
  // same-timestamp wake+dispatch pair still validates.
  std::map<std::uint32_t, bool> ready;
  std::size_t dispatches = 0;
  for (const EventView& e : evs) {
    switch (e.type) {
      case EventType::kUltWake:
      case EventType::kUltYield:
      case EventType::kPreemptSignalYield:
      case EventType::kPreemptKltSwitch:
        ready[e.ult] = true;
        break;
      case EventType::kUltDispatch:
        ++dispatches;
        EXPECT_TRUE(ready[e.ult]) << "dispatch of ULT " << e.ult
                                  << " with no prior ready event";
        ready[e.ult] = false;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(dispatches, 80u);  // 4 ULTs x 20 iterations at minimum
}

// ---------------------------------------------------------------------------
// Lifecycle accounting through join_status().
// ---------------------------------------------------------------------------

void expect_sane_spawn_latency(Preempt p) {
  RuntimeOptions o = traced_options(2);
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  if (p == Preempt::KltSwitch) o.initial_spare_klts = 1;
  Runtime rt(o);
  ThreadAttrs a;
  a.preempt = p;
  Thread t = rt.spawn([] { busy_spin_ns(5'000'000); }, a);
  ThreadStatus st = t.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_GT(st.acct.spawn_ns, 0);
  EXPECT_GT(st.acct.spawn_latency_ns, 0);
  EXPECT_LT(st.acct.spawn_latency_ns, 1'000'000'000);  // < 1 s: sane
  EXPECT_GE(st.acct.dispatches, 1u);
  EXPECT_GT(st.acct.run_ns, 0u);
  // The spawn→first-dispatch wait is part of the cumulative delay.
  EXPECT_GE(st.acct.sched_delay_ns,
            static_cast<std::uint64_t>(st.acct.spawn_latency_ns));
}

TEST(CausalTrace, SpawnLatencySaneUnderSignalYield) {
  expect_sane_spawn_latency(Preempt::SignalYield);
}

TEST(CausalTrace, SpawnLatencySaneUnderKltSwitch) {
  expect_sane_spawn_latency(Preempt::KltSwitch);
}

TEST(CausalTrace, DelayAccountingSurvivesStealsAndReconciles) {
  Runtime rt(traced_options(4));
  // An imbalanced burst from one external thread: everything lands on one
  // pool and most threads get stolen to the other three before dispatch.
  std::vector<Thread> ts;
  for (int i = 0; i < 64; ++i)
    ts.push_back(rt.spawn([] {
      busy_spin_ns(200'000);
      this_thread::yield();
      busy_spin_ns(200'000);
    }));
  std::uint64_t joined_delay = 0, joined_dispatches = 0;
  std::uint64_t joined_spawn_lat = 0, joined_run = 0;
  for (auto& t : ts) {
    ThreadStatus st = t.join_status();
    ASSERT_TRUE(st.completed);
    joined_delay += st.acct.sched_delay_ns;
    joined_dispatches += st.acct.dispatches;
    joined_spawn_lat += static_cast<std::uint64_t>(st.acct.spawn_latency_ns);
    joined_run += st.acct.run_ns;
  }
  EXPECT_GT(joined_run, 0u);
  const Runtime::Stats st = rt.stats();
  // Exact reconciliation: these 64 ULTs are the only ones that ever
  // dispatched, each dispatch recorded its consumed ready stamp into the
  // per-pool histogram of whichever worker ran it, and stats() merges all
  // pools — so totals match to the nanosecond even across steals.
  EXPECT_EQ(st.sched_delay_ns.count(), joined_dispatches);
  EXPECT_EQ(st.sched_delay_ns.sum_ns, joined_delay);
  EXPECT_EQ(st.spawn_latency_ns.count(), 64u);
  EXPECT_EQ(st.spawn_latency_ns.sum_ns, joined_spawn_lat);
  // Per-pool histograms partition the merged ones.
  const metrics::Snapshot ms = rt.metrics_snapshot();
  ASSERT_EQ(ms.pool_sched_delay_ns.size(), 4u);
  std::uint64_t pool_count = 0, pool_sum = 0;
  for (const auto& h : ms.pool_sched_delay_ns) {
    pool_count += h.count();
    pool_sum += h.sum_ns;
  }
  EXPECT_EQ(pool_count, joined_dispatches);
  EXPECT_EQ(pool_sum, joined_delay);
}

TEST(CausalTrace, AccountingStaysZeroWhenTracingOff) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  Thread t = rt.spawn([] { this_thread::yield(); });
  ThreadStatus st = t.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_EQ(st.acct.spawn_ns, 0);
  EXPECT_EQ(st.acct.spawn_latency_ns, 0);
  EXPECT_EQ(st.acct.sched_delay_ns, 0u);
  EXPECT_EQ(st.acct.run_ns, 0u);
  EXPECT_EQ(st.acct.blocked_ns, 0u);
  EXPECT_EQ(st.acct.dispatches, 0u);
  EXPECT_EQ(rt.stats().sched_delay_ns.count(), 0u);
}

TEST(CausalTrace, BlockedTimeIsAttributedToTheWait) {
  Runtime rt(traced_options(2));
  Semaphore sem(0);
  std::atomic<bool> parked{false};
  Thread waiter = rt.spawn([&] {
    parked.store(true, std::memory_order_release);
    sem.acquire();
  });
  while (!parked.load(std::memory_order_acquire)) busy_spin_ns(10'000);
  busy_spin_ns(20'000'000);  // hold it blocked for a measurable ~20 ms
  sem.release();
  ThreadStatus st = waiter.join_status();
  ASSERT_TRUE(st.completed);
  EXPECT_GE(st.acct.blocked_ns, 10'000'000u);  // most of the hold registered
  EXPECT_LT(st.acct.blocked_ns, 10'000'000'000u);
}

}  // namespace
