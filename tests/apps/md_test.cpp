#include "apps/md/md.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace lpt::apps {
namespace {

TEST(Md, EnergyIsApproximatelyConserved) {
  Runtime rt{RuntimeOptions{}};
  MdOptions o;
  o.cells_per_side = 4;  // 64 particles
  o.steps = 60;
  o.threads = 3;
  MdResult res = md_run(rt, o);
  EXPECT_EQ(res.n_particles, 64);
  // Velocity Verlet with small dt: relative drift stays small.
  EXPECT_LT(res.max_energy_drift, 0.05);
}

TEST(Md, DeterministicAcrossThreadCounts) {
  Runtime rt{RuntimeOptions{}};
  auto run = [&](int threads) {
    MdOptions o;
    o.cells_per_side = 3;
    o.steps = 20;
    o.threads = threads;
    return md_run(rt, o).final_energy;
  };
  const double e1 = run(1);
  const double e4 = run(4);
  // Forces are computed per particle with a fixed read-only snapshot of
  // positions, so decomposition cannot change the trajectory.
  EXPECT_DOUBLE_EQ(e1, e4);
}

TEST(Md, InSituHistogramCountsEveryParticle) {
  RuntimeOptions ro;
  ro.num_workers = 2;
  ro.scheduler = SchedulerKind::Priority;
  ro.timer = TimerKind::ProcessChain;
  ro.interval_us = 1000;
  Runtime rt(ro);

  MdOptions o;
  o.cells_per_side = 4;
  o.steps = 10;
  o.threads = 2;
  o.in_situ = true;
  o.analysis_interval = 2;
  o.analysis_threads = 2;
  o.analysis_preempt = Preempt::SignalYield;  // §4.3 configuration
  MdResult res = md_run(rt, o);

  EXPECT_EQ(res.analyses_completed, 5);  // steps 0,2,4,6,8
  const std::uint64_t total = std::accumulate(res.last_histogram.begin(),
                                              res.last_histogram.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(res.n_particles));
}

TEST(Md, SimulationResultUnaffectedByInSituAnalysis) {
  RuntimeOptions ro;
  ro.num_workers = 2;
  ro.scheduler = SchedulerKind::Priority;
  Runtime rt(ro);
  auto run = [&](bool in_situ) {
    MdOptions o;
    o.cells_per_side = 3;
    o.steps = 15;
    o.threads = 2;
    o.in_situ = in_situ;
    o.analysis_threads = 2;
    return md_run(rt, o).final_energy;
  };
  // Analysis reads a snapshot; it must not perturb the trajectory.
  EXPECT_DOUBLE_EQ(run(false), run(true));
}

}  // namespace
}  // namespace lpt::apps
