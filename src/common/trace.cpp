#include "common/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

namespace lpt::trace {

std::atomic<bool> g_enabled{false};

const char* event_name(EventType t) {
  switch (t) {
    case EventType::kNone: return "none";
    case EventType::kUltDispatch: return "ult_dispatch";
    case EventType::kUltYield: return "ult_yield";
    case EventType::kUltBlock: return "ult_block";
    case EventType::kUltExit: return "ult_exit";
    case EventType::kPreemptSignalYield: return "preempt_signal_yield";
    case EventType::kPreemptKltSwitch: return "preempt_klt_switch";
    case EventType::kHandlerEnter: return "handler_enter";
    case EventType::kHandlerDeferred: return "handler_deferred";
    case EventType::kSteal: return "steal";
    case EventType::kWorkerPark: return "worker_park";
    case EventType::kWorkerUnpark: return "worker_unpark";
    case EventType::kKltSuspend: return "klt_suspend";
    case EventType::kKltResume: return "klt_resume";
    case EventType::kKltPoolHit: return "klt_pool_hit";
    case EventType::kKltPoolMiss: return "klt_pool_miss";
    case EventType::kKltCreated: return "klt_created";
    case EventType::kTimerFire: return "timer_fire";
    case EventType::kKltDegradedTick: return "klt_degraded_tick";
    case EventType::kTimerFallback: return "timer_fallback";
    case EventType::kStackAllocFail: return "stack_alloc_fail";
    case EventType::kWatchdogFlag: return "watchdog_flag";
    case EventType::kUltFault: return "ult_fault";
    case EventType::kKltRetired: return "klt_retired";
    case EventType::kStackNearOverflow: return "stack_near_overflow";
    case EventType::kUltCancel: return "ult_cancel";
    case EventType::kRemediation: return "remediation";
    case EventType::kProfSample: return "prof_sample";
    case EventType::kOffcpuWait: return "offcpu_wait";
    case EventType::kLockContended: return "lock_contended";
    case EventType::kSyscallBlock: return "syscall_block";
    case EventType::kSyscallCompensate: return "syscall_compensate";
    case EventType::kSyscallReturn: return "syscall_return";
    case EventType::kUltWake: return "ult_wake";
    case EventType::kDeadlock: return "deadlock";
    case EventType::kAbandonedLock: return "abandoned_lock";
    case EventType::kCount: break;
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Histogram math
// ---------------------------------------------------------------------------

std::uint64_t HistSnapshot::count() const {
  std::uint64_t n = 0;
  for (std::uint64_t b : buckets) n += b;
  return n;
}

void HistSnapshot::merge(const HistSnapshot& o) {
  for (int i = 0; i < kBuckets; ++i) buckets[i] += o.buckets[i];
  sum_ns += o.sum_ns;
}

std::int64_t HistSnapshot::bucket_floor_ns(int b) {
  if (b <= 0) return 0;
  return static_cast<std::int64_t>(1) << (b - 1);
}

std::int64_t HistSnapshot::bucket_ceil_ns(int b) {
  if (b <= 0) return 2;  // bucket 0 = [0, 1] ns, exclusive bound 2
  if (b >= kBuckets - 1) return bucket_floor_ns(b) * 2;  // clamp top bucket
  return static_cast<std::int64_t>(1) << b;
}

double HistSnapshot::percentile_ns(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank in [0, n-1], nearest-rank with interpolation inside the bucket.
  const double target = p / 100.0 * static_cast<double>(n - 1);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += buckets[b];
    const double hi_rank = static_cast<double>(seen - 1);
    if (target <= hi_rank) {
      const double span = hi_rank - lo_rank;
      double frac = span > 0 ? (target - lo_rank) / span : 0.5;
      // target can fall in the rank gap between the previous bucket's last
      // sample and this bucket's first one; clamp instead of extrapolating
      // below the bucket floor (which would make percentiles non-monotone).
      if (frac < 0) frac = 0;
      const double lo = static_cast<double>(bucket_floor_ns(b));
      const double hi = static_cast<double>(bucket_ceil_ns(b));
      return lo + frac * (hi - lo);
    }
  }
  return static_cast<double>(bucket_ceil_ns(kBuckets - 1));
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

Collector& Collector::instance() {
  static Collector c;
  return c;
}

void Collector::configure(const TraceConfig& cfg) {
  std::lock_guard<std::mutex> g(rings_lock_);
  rings_.clear();
  cfg_ = cfg;
  next_track_id_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  g_enabled.store(cfg.enabled, std::memory_order_release);
}

void Collector::disable() { g_enabled.store(false, std::memory_order_release); }

Ring* Collector::acquire_ring(TrackKind kind, int id) {
  if (!enabled()) return nullptr;
  auto block = std::make_unique<RingBlock>();
  // Zero-initialized slots: type == kNone marks uncommitted.
  block->slots = std::make_unique<Event[]>(cfg_.ring_capacity);
  if (id < 0) id = next_track_id_.fetch_add(1, std::memory_order_relaxed);
  block->ring.init(block->slots.get(), cfg_.ring_capacity, kind, id);
  Ring* r = &block->ring;
  std::lock_guard<std::mutex> g(rings_lock_);
  rings_.push_back(std::move(block));
  return r;
}

std::uint64_t Collector::total_events() const {
  std::lock_guard<std::mutex> g(rings_lock_);
  std::uint64_t n = 0;
  for (const auto& b : rings_) n += b->ring.recorded();
  return n;
}

std::uint64_t Collector::total_dropped() const {
  std::lock_guard<std::mutex> g(rings_lock_);
  std::uint64_t n = 0;
  for (const auto& b : rings_) n += b->ring.dropped();
  return n;
}

namespace {

/// Flat view of one committed event plus its origin ring, for export sorting.
struct FlatEvent {
  std::int64_t ts_ns;
  std::uint64_t arg0;
  std::uint64_t arg1;
  std::uint32_t ult;
  std::int16_t worker;
  EventType type;
  TrackKind ring_kind;
  int ring_id;
};

/// Chrome trace_event "tid" assignment: workers get their rank; helper and
/// KLT tracks get ids above any plausible worker count.
constexpr int kTimerTid = 900;
constexpr int kCreatorTid = 901;
constexpr int kExternalTid = 902;
constexpr int kKltTidBase = 1000;

int track_tid(const FlatEvent& f) {
  switch (f.type) {
    // KLT-lifecycle events render on the owning KLT's own track so the
    // suspend→resume gap of each parked KLT is visible (Fig 2/3).
    case EventType::kKltSuspend:
    case EventType::kKltResume:
      return kKltTidBase + f.ring_id;
    case EventType::kKltCreated:
      return kCreatorTid;
    case EventType::kTimerFire:
      return kTimerTid;
    default:
      break;
  }
  if (f.worker >= 0) return f.worker;
  switch (f.ring_kind) {
    case TrackKind::kTimer: return kTimerTid;
    case TrackKind::kCreator: return kCreatorTid;
    case TrackKind::kExternal: return kExternalTid;
    case TrackKind::kWorkerKlt: return kKltTidBase + f.ring_id;
  }
  return kKltTidBase + f.ring_id;
}

/// Does this event terminate a ULT run-span opened by kUltDispatch?
bool closes_run_span(EventType t) {
  switch (t) {
    case EventType::kUltYield:
    case EventType::kUltBlock:
    case EventType::kUltExit:
    case EventType::kPreemptSignalYield:
    case EventType::kPreemptKltSwitch:
    case EventType::kUltFault:
      return true;
    default:
      return false;
  }
}

void write_meta(std::FILE* f, int tid, const char* name, bool* first) {
  std::fprintf(f,
               "%s\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
               *first ? "" : ",", tid, name);
  *first = false;
}

}  // namespace

bool Collector::write_chrome_json(const std::string& path) const {
  std::vector<FlatEvent> flat;
  {
    std::lock_guard<std::mutex> g(rings_lock_);
    for (const auto& b : rings_) {
      const Ring& r = b->ring;
      const std::uint32_t n = r.fill();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Event& e = r.at(i);
        const auto ty = e.type.load(std::memory_order_acquire);
        if (ty == 0 || ty >= static_cast<std::uint16_t>(EventType::kCount))
          continue;  // uncommitted (record interrupted mid-write) — skip
        FlatEvent fe;
        fe.ts_ns = e.ts_ns;
        fe.arg0 = e.arg0;
        fe.arg1 = e.arg1;
        fe.ult = e.ult;
        fe.worker = e.worker;
        fe.type = static_cast<EventType>(ty);
        fe.ring_kind = r.kind();
        fe.ring_id = r.id();
        flat.push_back(fe);
      }
    }
  }
  if (flat.empty()) return false;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::sort(flat.begin(), flat.end(), [](const FlatEvent& a, const FlatEvent& b) {
    return a.ts_ns < b.ts_ns;
  });
  const std::int64_t t0 = flat.front().ts_ns;

  // Per-ULT dispatch index for flow-event binding: a kUltWake at ts T for
  // ULT u draws an arrow to u's first kUltDispatch at ts >= T.
  struct DispatchRef {
    std::int64_t ts_ns;
    int worker;
  };
  std::vector<std::pair<std::uint32_t, DispatchRef>> dispatches;
  for (const FlatEvent& fe : flat)
    if (fe.type == EventType::kUltDispatch && fe.ult != 0)
      dispatches.push_back({fe.ult, {fe.ts_ns, track_tid(fe)}});
  std::stable_sort(dispatches.begin(), dispatches.end(),
                   [](const auto& a, const auto& b) {
                     return a.first != b.first ? a.first < b.first
                                               : a.second.ts_ns < b.second.ts_ns;
                   });
  auto next_dispatch = [&](std::uint32_t ult,
                           std::int64_t ts) -> const DispatchRef* {
    auto it = std::lower_bound(
        dispatches.begin(), dispatches.end(), std::make_pair(ult, ts),
        [](const auto& d, const auto& key) {
          return d.first != key.first ? d.first < key.first
                                      : d.second.ts_ns < key.second;
        });
    if (it == dispatches.end() || it->first != ult) return nullptr;
    return &it->second;
  };

  std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
  bool first = true;
  std::fprintf(f,
               "%s\n  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
               "\"args\":{\"name\":\"lpt runtime\"}}",
               first ? "" : ",");
  first = false;

  // Track-name metadata for every tid we are about to emit.
  std::vector<int> tids;
  for (const FlatEvent& fe : flat) tids.push_back(track_tid(fe));
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  for (int tid : tids) {
    char name[48];
    if (tid < kTimerTid)
      std::snprintf(name, sizeof(name), "worker %d", tid);
    else if (tid == kTimerTid)
      std::snprintf(name, sizeof(name), "preemption timer");
    else if (tid == kCreatorTid)
      std::snprintf(name, sizeof(name), "klt creator");
    else if (tid == kExternalTid)
      std::snprintf(name, sizeof(name), "external threads");
    else
      std::snprintf(name, sizeof(name), "klt %d", tid - kKltTidBase);
    write_meta(f, tid, name, &first);
  }

  // Pair dispatch → {yield, block, exit, preempt} into "X" complete events
  // per worker track; everything else becomes an instant event.
  struct OpenSpan {
    bool open = false;
    std::int64_t start_ns = 0;
    std::uint32_t ult = 0;
    std::uint64_t sched_delay_ns = 0;
  };
  std::vector<OpenSpan> open(256);

  auto emit_instant = [&](const FlatEvent& fe, int tid) {
    std::fprintf(f,
                 "%s\n  {\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
                 "\"tid\":%d,\"ts\":%.3f,\"args\":{\"ult\":%" PRIu32
                 ",\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}}",
                 first ? "" : ",", event_name(fe.type), tid,
                 static_cast<double>(fe.ts_ns - t0) / 1000.0, fe.ult,
                 fe.arg0, fe.arg1);
    first = false;
  };

  // Causal wake→dispatch arrows as Chrome flow events: "s" on the waker's
  // track at wake time, "f" (bp:"e" = bind to the enclosing slice) on the
  // woken ULT's next dispatch. Perfetto draws these as arrows.
  std::uint64_t flow_id = 0;
  for (const FlatEvent& fe : flat) {
    if (fe.type != EventType::kUltWake) continue;
    const DispatchRef* d = next_dispatch(fe.ult, fe.ts_ns);
    if (d == nullptr) continue;  // woken but never dispatched before shutdown
    ++flow_id;
    std::fprintf(f,
                 "%s\n  {\"name\":\"wake\",\"cat\":\"wake\",\"ph\":\"s\","
                 "\"id\":%" PRIu64 ",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                 "\"args\":{\"ult\":%" PRIu32 ",\"waker\":%" PRIu64
                 ",\"kind\":%" PRIu64 "}}",
                 first ? "" : ",", flow_id, track_tid(fe),
                 static_cast<double>(fe.ts_ns - t0) / 1000.0, fe.ult, fe.arg0,
                 fe.arg1);
    first = false;
    std::fprintf(f,
                 "%s\n  {\"name\":\"wake\",\"cat\":\"wake\",\"ph\":\"f\","
                 "\"bp\":\"e\",\"id\":%" PRIu64 ",\"pid\":1,\"tid\":%d,"
                 "\"ts\":%.3f}",
                 ",", flow_id, d->worker,
                 static_cast<double>(d->ts_ns - t0) / 1000.0);
  }

  for (const FlatEvent& fe : flat) {
    const int tid = track_tid(fe);
    if (fe.type == EventType::kUltDispatch && fe.worker >= 0 &&
        fe.worker < static_cast<int>(open.size())) {
      OpenSpan& s = open[fe.worker];
      s.open = true;
      s.start_ns = fe.ts_ns;
      s.ult = fe.ult;
      s.sched_delay_ns = fe.arg0;
      continue;
    }
    if (closes_run_span(fe.type) && fe.worker >= 0 &&
        fe.worker < static_cast<int>(open.size()) &&
        open[fe.worker].open) {
      OpenSpan& s = open[fe.worker];
      s.open = false;
      std::fprintf(f,
                   "%s\n  {\"name\":\"ult %" PRIu32
                   "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                   "\"dur\":%.3f,\"args\":{\"end\":\"%s\",\"sched_delay_ns\":%" PRIu64
                   "}}",
                   first ? "" : ",", s.ult, fe.worker,
                   static_cast<double>(s.start_ns - t0) / 1000.0,
                   static_cast<double>(fe.ts_ns - s.start_ns) / 1000.0,
                   event_name(fe.type), s.sched_delay_ns);
      first = false;
      // Preemption end-causes also carry latency info worth an instant mark.
      if (fe.type == EventType::kPreemptSignalYield ||
          fe.type == EventType::kPreemptKltSwitch)
        emit_instant(fe, tid);
      continue;
    }
    emit_instant(fe, tid);
  }

  // Close any span left open at shutdown as zero-length-terminated.
  for (std::size_t w = 0; w < open.size(); ++w) {
    if (!open[w].open) continue;
    std::fprintf(f,
                 "%s\n  {\"name\":\"ult %" PRIu32
                 "\",\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%.3f,"
                 "\"dur\":0.001,\"args\":{\"end\":\"trace_end\"}}",
                 first ? "" : ",", open[w].ult, w,
                 static_cast<double>(open[w].start_ns - t0) / 1000.0);
    first = false;
  }

  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  return ok;
}

std::vector<EventView> Collector::snapshot_events() const {
  std::vector<EventView> out;
  {
    std::lock_guard<std::mutex> g(rings_lock_);
    for (const auto& b : rings_) {
      const Ring& r = b->ring;
      const std::uint32_t n = r.fill();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Event& e = r.at(i);
        const auto ty = e.type.load(std::memory_order_acquire);
        if (ty == 0 || ty >= static_cast<std::uint16_t>(EventType::kCount))
          continue;
        EventView v;
        v.ts_ns = e.ts_ns;
        v.arg0 = e.arg0;
        v.arg1 = e.arg1;
        v.ult = e.ult;
        v.worker = e.worker;
        v.type = static_cast<EventType>(ty);
        out.push_back(v);
      }
    }
  }
  // A dispatch consumes a ready stamp set strictly before it (the enqueue
  // happens-before the pop), but both can land in the same raw-clock ns; the
  // tie-break keeps causal order for consumers scanning in sequence.
  std::sort(out.begin(), out.end(), [](const EventView& a, const EventView& b) {
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    const int ra = a.type == EventType::kUltDispatch ? 1 : 0;
    const int rb = b.type == EventType::kUltDispatch ? 1 : 0;
    return ra < rb;
  });
  return out;
}

bool Collector::write_events_jsonl(const std::string& path) const {
  const std::vector<EventView> events = snapshot_events();
  if (events.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const EventView& e : events)
    std::fprintf(f,
                 "{\"ts\":%" PRId64 ",\"type\":\"%s\",\"ult\":%" PRIu32
                 ",\"worker\":%d,\"arg0\":%" PRIu64 ",\"arg1\":%" PRIu64 "}\n",
                 e.ts_ns, event_name(e.type), e.ult,
                 static_cast<int>(e.worker), e.arg0, e.arg1);
  return std::fclose(f) == 0;
}

void Collector::write_summary(std::FILE* out) const {
  std::array<std::uint64_t, static_cast<std::size_t>(EventType::kCount)> by_type{};
  std::uint64_t total = 0, dropped = 0;
  std::size_t nrings = 0;
  {
    std::lock_guard<std::mutex> g(rings_lock_);
    nrings = rings_.size();
    for (const auto& b : rings_) {
      const Ring& r = b->ring;
      dropped += r.dropped();
      const std::uint32_t n = r.fill();
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto ty = r.at(i).type.load(std::memory_order_acquire);
        if (ty == 0 || ty >= by_type.size()) continue;
        ++by_type[ty];
        ++total;
      }
    }
  }
  std::fprintf(out, "trace summary: %" PRIu64 " events in %zu rings, %" PRIu64
                    " dropped (ring overflow)\n",
               total, nrings, dropped);
  for (std::size_t t = 1; t < by_type.size(); ++t) {
    if (by_type[t] == 0) continue;
    std::fprintf(out, "  %-22s %10" PRIu64 "\n",
                 event_name(static_cast<EventType>(t)), by_type[t]);
  }

  // Top-10 slowest ready→dispatch delays (kUltDispatch arg0), the worst
  // scheduling-delay victims of the run.
  std::vector<EventView> slow;
  for (const EventView& e : snapshot_events())
    if (e.type == EventType::kUltDispatch && e.arg0 > 0) slow.push_back(e);
  if (!slow.empty()) {
    const std::size_t top = slow.size() < 10 ? slow.size() : 10;
    std::partial_sort(slow.begin(), slow.begin() + top, slow.end(),
                      [](const EventView& a, const EventView& b) {
                        return a.arg0 > b.arg0;
                      });
    std::fprintf(out, "top %zu slowest dispatches (ready -> dispatch):\n", top);
    for (std::size_t i = 0; i < top; ++i)
      std::fprintf(out,
                   "  ult %-6" PRIu32 " worker %-3d delay %10.1f us\n",
                   slow[i].ult, static_cast<int>(slow[i].worker),
                   static_cast<double>(slow[i].arg0) / 1000.0);
  }
}

TraceConfig resolve_config(TraceConfig base) {
  const char* on = std::getenv("LPT_TRACE");
  if (on != nullptr)
    base.enabled = !(std::strcmp(on, "0") == 0 || std::strcmp(on, "") == 0 ||
                     std::strcmp(on, "off") == 0);
  if (const char* file = std::getenv("LPT_TRACE_FILE"); file != nullptr && file[0] != '\0') {
    base.file = file;
    base.enabled = true;
  }
  if (const char* cap = std::getenv("LPT_TRACE_RING_CAP"); cap != nullptr) {
    const long v = std::strtol(cap, nullptr, 10);
    if (v > 0) base.ring_capacity = static_cast<std::uint32_t>(v);
  }
  if (const char* ev = std::getenv("LPT_TRACE_EVENTS_FILE");
      ev != nullptr && ev[0] != '\0') {
    base.events_file = ev;
    base.enabled = true;
  }
  if (base.enabled && base.file.empty() && on != nullptr)
    base.file = "lpt_trace.json";  // plain LPT_TRACE=1 still leaves a trace
  return base;
}

}  // namespace lpt::trace
