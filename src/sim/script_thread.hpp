// A SimThread whose behaviour is a fixed list of actions — the building
// block for microbenchmark workloads and tests.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "sim/ult_model.hpp"

namespace lpt::sim {

class ScriptThread final : public SimThread {
 public:
  explicit ScriptThread(std::vector<SimAction> steps,
                        std::function<void(SimUltRuntime&)> on_finish = {})
      : steps_(std::move(steps)), on_finish_(std::move(on_finish)) {}

  SimAction next(SimUltRuntime&) override {
    if (i_ < steps_.size()) return steps_[i_++];
    return SimAction::finish();
  }

  void on_finish(SimUltRuntime& rt) override {
    if (on_finish_) on_finish_(rt);
  }

 private:
  std::vector<SimAction> steps_;
  std::size_t i_ = 0;
  std::function<void(SimUltRuntime&)> on_finish_;
};

}  // namespace lpt::sim
