#include "context/context.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace lpt {

extern "C" void lpt_ctx_boot();  // defined in context_x8664.S

extern "C" [[noreturn]] void lpt_ctx_entry_returned() {
  check_fail("context entry function returned", __FILE__, __LINE__,
             "a ULT entry must terminate by switching away");
}

Context make_context(void* stack_base, std::size_t stack_size, ContextEntry entry,
                     void* arg) {
  LPT_CHECK(stack_base != nullptr);
  LPT_CHECK_MSG(stack_size >= 1024, "stack too small for a context");

  // Align the usable top down to 16 bytes, then carve the 64-byte save area
  // (see context_x8664.S) so that rsp % 16 == 0 when lpt_ctx_boot starts.
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~static_cast<std::uintptr_t>(15);
  auto* save = reinterpret_cast<std::uint64_t*>(top - 64);

  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));

  std::memset(save, 0, 64);
  std::memcpy(save, &mxcsr, sizeof(mxcsr));
  std::memcpy(reinterpret_cast<char*>(save) + 4, &fcw, sizeof(fcw));
  save[1] = reinterpret_cast<std::uint64_t>(arg);    // r15
  save[2] = reinterpret_cast<std::uint64_t>(entry);  // r14
  // save[3..5] = r13, r12, rbx = 0; save[6] = rbp = 0 (top of frame chain)
  save[7] = reinterpret_cast<std::uint64_t>(&lpt_ctx_boot);  // return address

  return Context{save};
}

}  // namespace lpt
