// TSan-clean unit tests of the parking registry's slot protocol
// (runtime/park.hpp): versioned claim/free, the detector's seqlock-style
// scan with pinning, and owner add/remove bookkeeping — all without a
// Runtime or fiber switches, so the ThreadSanitizer stage of scripts/check.sh
// can prove the lock-free parts race-free. Runs in the normal stage too.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/spinlock.hpp"
#include "runtime/park.hpp"
#include "runtime/thread.hpp"

namespace lpt {
namespace {

struct ArmedRegistry {
  ArmedRegistry() { park::arm(/*deadlock_detection=*/true, false); }
  ~ArmedRegistry() { park::disarm(); }
};

TEST(Park, DisarmedRegistersNothing) {
  park::disarm();
  ThreadCtl tc;
  Spinlock guard;
  std::vector<ThreadCtl*> waiters;
  const std::uint32_t before = park::parked_count();
  park::park(&tc, 1, false, nullptr, nullptr, &guard, &waiters);
  EXPECT_EQ(tc.park_slot, 0u);
  EXPECT_EQ(park::parked_count(), before);
  park::unpark(&tc);  // must be a no-op
}

TEST(Park, ParkUnparkRoundTrip) {
  ArmedRegistry armed;
  ThreadCtl tc;
  tc.trace_id = 42;
  Spinlock guard;
  std::vector<ThreadCtl*> waiters;
  const std::uint32_t before = park::parked_count();
  guard.lock();
  waiters.push_back(&tc);
  park::park(&tc, 1, false, nullptr, nullptr, &guard, &waiters);
  guard.unlock();
  EXPECT_NE(tc.park_slot, 0u);
  EXPECT_EQ(park::parked_count(), before + 1);
  park::unpark(&tc);
  EXPECT_EQ(tc.park_slot, 0u);
  EXPECT_EQ(park::parked_count(), before);
}

TEST(Park, OwnerSlotsTrackAndOverflow) {
  ArmedRegistry armed;
  park::ResourceState* rs = park::acquire_resource(1, &armed, nullptr);
  ASSERT_NE(rs, nullptr);
  ThreadCtl owners[park::ResourceState::kMaxOwners + 1];
  for (auto& t : owners) park::add_owner(rs, &t);
  // The slab has kMaxOwners slots; the extra owner flips the overflow flag
  // instead of being inserted.
  EXPECT_TRUE(rs->owner_overflow.load(std::memory_order_relaxed));
  int tracked = 0;
  for (auto& t : owners) tracked += t.owned_tracked;
  EXPECT_EQ(tracked, park::ResourceState::kMaxOwners);
  for (auto& t : owners) park::remove_owner(rs, &t);
  for (auto& t : owners) EXPECT_EQ(t.owned_tracked, 0);
  for (auto& o : rs->owners)
    EXPECT_EQ(o.load(std::memory_order_relaxed), nullptr);
  // Tolerates null resources (slab exhaustion contract).
  park::add_owner(nullptr, &owners[0]);
  park::remove_owner(nullptr, &owners[0]);
  EXPECT_EQ(owners[0].owned_tracked, 0);
}

// The core TSan target: concurrent park/unpark churn against a detector-style
// scanner that seqlock-reads and pins occupied slots. Any protocol hole —
// torn payload reads, ABA reuse, pin/free races — shows up here.
TEST(Park, ConcurrentChurnVsScan) {
  ArmedRegistry armed;
  constexpr int kParkers = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};

  std::thread scanner([&] {
    std::uint64_t total = 0;
    while (!stop.load(std::memory_order_acquire)) total += park::debug_scan();
    (void)total;
  });

  std::vector<std::thread> parkers;
  for (int p = 0; p < kParkers; ++p) {
    parkers.emplace_back([p] {
      ThreadCtl tc;
      tc.trace_id = static_cast<std::uint32_t>(100 + p);
      Spinlock guard;
      std::vector<ThreadCtl*> waiters;
      park::ResourceState* rs =
          park::acquire_resource(1, &tc, nullptr);
      for (int i = 0; i < kIters; ++i) {
        park::add_owner(rs, &tc);
        guard.lock();
        waiters.push_back(&tc);
        park::park(&tc, 1, (i & 1) != 0, rs, nullptr, &guard, &waiters);
        guard.unlock();
        park::unpark(&tc);
        guard.lock();
        waiters.clear();
        guard.unlock();
        park::remove_owner(rs, &tc);
      }
      EXPECT_EQ(tc.park_slot, 0u);
      EXPECT_EQ(tc.owned_tracked, 0);
    });
  }
  for (auto& t : parkers) t.join();
  stop.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_EQ(park::parked_count(), 0u);
}

TEST(Park, SlotReuseKeepsCountExact) {
  ArmedRegistry armed;
  // Far more park/unpark cycles than slots: every park must reuse freed
  // slots (generation bumps) and the registered count must return to zero.
  ThreadCtl tc;
  Spinlock guard;
  std::vector<ThreadCtl*> waiters;
  for (int i = 0; i < 10'000; ++i) {
    guard.lock();
    waiters.push_back(&tc);
    park::park(&tc, 2, false, nullptr, nullptr, &guard, &waiters);
    guard.unlock();
    park::unpark(&tc);
    waiters.clear();
  }
  EXPECT_EQ(park::parked_count(), 0u);
  EXPECT_EQ(park::slot_overflows(), 0u);
}

}  // namespace
}  // namespace lpt
