// Column-aligned ASCII table printer for the benchmark harnesses, so every
// bench binary emits the paper's table/figure rows in a uniform format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace lpt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; missing trailing cells render empty.
  void add_row(std::vector<std::string> cells);

  /// Render to `out` (defaults to stdout) with a header separator.
  void print(std::FILE* out = stdout) const;

  /// printf-style cell formatting convenience.
  static std::string fmt(const char* format, ...)
      __attribute__((format(printf, 1, 2)));

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lpt
