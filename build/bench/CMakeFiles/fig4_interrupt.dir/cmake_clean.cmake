file(REMOVE_RECURSE
  "CMakeFiles/fig4_interrupt.dir/fig4_interrupt.cpp.o"
  "CMakeFiles/fig4_interrupt.dir/fig4_interrupt.cpp.o.d"
  "fig4_interrupt"
  "fig4_interrupt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_interrupt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
