// Sample accumulator with the summary statistics the paper reports:
// mean, standard deviation (Fig 4, Figs 7–9 plot mean±stddev) and
// median/percentiles (Table 1 reports medians).
#pragma once

#include <cstdint>
#include <vector>

namespace lpt {

class Stats {
 public:
  void add(double sample) { samples_.push_back(sample); }
  void clear() { samples_.clear(); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace lpt
