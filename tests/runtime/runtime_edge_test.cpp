// Edge cases and paper-§3.5 behaviours: restartable system calls under
// preemption signals, guard nesting, KLT-count bounds (the "worst case
// deteriorates to 1:1" claim), handle semantics, and mixed-config stress.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "runtime/internal.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(SyscallRestart, BlockingReadSurvivesPreemptionSignals) {
  // §3.5.1: handlers install SA_RESTART so interrupted system calls restart
  // transparently. A ULT blocked in read(2) on a pipe receives timer
  // signals every 500 µs and must still return the written data, not EINTR.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::atomic<int> got{-1};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  Thread reader = rt.spawn(
      [&] {
        char buf[8] = {};
        const ssize_t n = read(fds[0], buf, sizeof(buf));  // blocks ~20 ms
        got.store(n == 5 && std::memcmp(buf, "hello", 5) == 0 ? 1 : 0);
      },
      attrs);
  // Let ~40 timer periods hit the blocked reader before writing.
  usleep(20'000);
  ASSERT_EQ(write(fds[1], "hello", 5), 5);
  reader.join();
  EXPECT_EQ(got.load(), 1) << "read() was not restarted cleanly";
  close(fds[0]);
  close(fds[1]);
}

TEST(SyscallRestart, NanosleepNeedsExplicitEintrHandling) {
  // §3.5.1's caveat, demonstrated: nanosleep(2) belongs to the class of
  // system calls SA_RESTART can NEVER restart (signal(7)); under a
  // preemption timer it returns EINTR with the remaining time, and the
  // "appropriate error handling [that] is required" is the classic retry
  // loop on the `rem` output.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 300;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::atomic<std::int64_t> slept{0};
  std::atomic<int> eintrs{0};
  Thread t = rt.spawn(
      [&] {
        const std::int64_t t0 = now_ns();
        timespec req{0, 20'000'000};  // 20 ms >> 0.3 ms interval
        while (nanosleep(&req, &req) == -1 && errno == EINTR)
          eintrs.fetch_add(1);
        slept.store(now_ns() - t0);
      },
      attrs);
  t.join();
  EXPECT_GE(slept.load(), 19'000'000);
  // With a 0.3 ms timer over a 20 ms sleep, interruptions must occur.
  EXPECT_GT(eintrs.load(), 0);
}

TEST(NoPreemptGuard, NestingDefersUntilOutermostExit) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 300;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  std::atomic<std::uint64_t> inner{0}, mid{0};
  Thread t = rt.spawn(
      [&] {
        NoPreemptGuard outer_guard;
        {
          NoPreemptGuard inner_guard;
          busy_spin_ns(5'000'000);
          inner.store(Runtime::current()->total_preemptions());
        }
        busy_spin_ns(5'000'000);
        mid.store(Runtime::current()->total_preemptions());
      },
      attrs);
  t.join();
  EXPECT_EQ(inner.load(), 0u);
  EXPECT_EQ(mid.load(), 0u);  // still guarded by the outer scope
}

TEST(NoPreemptGuard, OutsideUltIsHarmless) {
  Runtime rt{RuntimeOptions{}};
  NoPreemptGuard g1;
  NoPreemptGuard g2;
  Thread t = rt.spawn([] {});
  t.join();
  SUCCEED();
}

TEST(KltBounds, KltCountNeverExceedsThreadsPlusWorkers) {
  // §3.1.2: "in the worst case, we would allocate as many KLTs as threads,
  // thus simply deteriorating to a 1:1 threading model". With T threads and
  // W workers the pool can hold at most T bound + W hosts (+ the creator's
  // one-in-flight batch).
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 300;
  Runtime rt(o);
  constexpr int kThreads = 8;
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::vector<Thread> ts;
  for (int i = 0; i < kThreads; ++i)
    ts.push_back(rt.spawn([&] { busy_spin_ns(50'000'000); }, attrs));
  for (auto& t : ts) t.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
  // kThreads bound + num_workers hosts + capped local-pool spares + at most
  // num_workers creations in flight when demand stopped.
  EXPECT_LE(rt.total_klts(),
            static_cast<std::uint64_t>(kThreads + 3 * o.num_workers));
}

TEST(ThreadHandle, MoveAssignJoinsPreviousThread) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<int> done{0};
  Thread a = rt.spawn([&] { done.fetch_add(1); });
  Thread b = rt.spawn([&] { done.fetch_add(10); });
  a = std::move(b);  // must join the old `a` thread first
  EXPECT_TRUE(a.joinable());
  a.join();
  EXPECT_EQ(done.load(), 11);
}

TEST(ThreadHandle, MoveConstructedHandleOwnsThread) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<bool> ran{false};
  Thread a = rt.spawn([&] { ran.store(true); });
  Thread b(std::move(a));
  EXPECT_FALSE(a.joinable());
  EXPECT_TRUE(b.joinable());
  b.join();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadHandle, DoubleJoinIsBenignNoOp) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<int> done{0};
  Thread a = rt.spawn([&] { done.fetch_add(1); });
  a.join();
  EXPECT_FALSE(a.joinable());
  a.join();  // already joined: defined no-op, unlike std::thread
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadHandle, JoinStatusOnEmptyHandleReportsNothingJoined) {
  Thread empty;
  const ThreadStatus st = empty.join_status();
  EXPECT_FALSE(st.completed);
  EXPECT_FALSE(st.failed());
}

TEST(ThreadHandle, JoinAfterFailureIsBenignAndStatusIsSticky) {
  Runtime rt{RuntimeOptions{}};
  Thread bad = rt.spawn([] { throw std::runtime_error("edge boom"); });
  const ThreadStatus st = bad.join_status();
  EXPECT_TRUE(st.completed);
  EXPECT_TRUE(st.failed());
  bad.join();  // handle already consumed: benign no-op
  const ThreadStatus again = bad.join_status();
  EXPECT_FALSE(again.completed);  // nothing left to join
}

TEST(ExternalThreads, ConcurrentSpawnersFromManyKernelThreads) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  std::atomic<int> total{0};
  std::vector<std::thread> spawners;
  for (int s = 0; s < 4; ++s)
    spawners.emplace_back([&] {
      std::vector<Thread> ts;
      for (int i = 0; i < 50; ++i)
        ts.push_back(rt.spawn([&] { total.fetch_add(1); }));
      for (auto& t : ts) t.join();
    });
  for (auto& s : spawners) s.join();
  EXPECT_EQ(total.load(), 200);
}

TEST(StackPoolReuse, ManyGenerationsRecycleStacks) {
  Runtime rt{RuntimeOptions{}};
  for (int gen = 0; gen < 20; ++gen) {
    std::vector<Thread> ts;
    for (int i = 0; i < 16; ++i)
      ts.push_back(rt.spawn([] {
        volatile char buf[4096];
        buf[0] = 1;
        buf[4095] = 2;
      }));
    for (auto& t : ts) t.join();
  }
  // 320 threads with at most 16 alive at once: the pool bounds live stacks.
  SUCCEED();
}

TEST(MixedConfig, SequentialRuntimesWithDifferentSetups) {
  {
    RuntimeOptions o;
    o.num_workers = 1;
    o.timer = TimerKind::ProcessChain;
    o.interval_us = 500;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = Preempt::SignalYield;
    Thread t = rt.spawn([] { busy_spin_ns(5'000'000); }, attrs);
    t.join();
  }
  {
    RuntimeOptions o;
    o.num_workers = 3;
    o.scheduler = SchedulerKind::Priority;
    Runtime rt(o);
    Thread t = rt.spawn([] {});
    t.join();
  }
  {
    RuntimeOptions o;
    o.num_workers = 2;
    o.timer = TimerKind::PosixPerWorker;
    o.interval_us = 1000;
    o.klt_suspend = KltSuspend::Sigsuspend;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = Preempt::KltSwitch;
    Thread t = rt.spawn([] { busy_spin_ns(5'000'000); }, attrs);
    t.join();
  }
  SUCCEED();
}

TEST(PriorityLive, AnalysisEvictedWhenSimulationArrives) {
  // The §4.3 mechanism live: a low-priority preemptive thread occupies the
  // only worker; when high-priority work arrives it must run promptly, which
  // requires the low thread to be *involuntarily* evicted.
  RuntimeOptions o;
  o.num_workers = 1;
  o.scheduler = SchedulerKind::Priority;
  o.timer = TimerKind::ProcessChain;
  o.interval_us = 500;
  Runtime rt(o);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> high_latency_ns{-1};
  ThreadAttrs low;
  low.priority = 1;
  low.preempt = Preempt::SignalYield;
  Thread analysis = rt.spawn(
      [&] {
        while (!stop.load(std::memory_order_acquire)) cpu_pause();
      },
      low);

  usleep(5'000);  // analysis thread is now hogging the worker
  const std::int64_t t0 = now_ns();
  ThreadAttrs high;
  high.priority = 0;
  Thread sim = rt.spawn([&] { high_latency_ns.store(now_ns() - t0); }, high);
  sim.join();
  stop.store(true);
  analysis.join();

  ASSERT_GE(high_latency_ns.load(), 0);
  // Must be on the order of the preemption interval, not the spin duration.
  EXPECT_LT(high_latency_ns.load(), 100'000'000);
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Detached, ManyDetachedThreadsDrainBeforeShutdown) {
  std::atomic<int> done{0};
  {
    RuntimeOptions o;
    o.num_workers = 2;
    Runtime rt(o);
    for (int i = 0; i < 100; ++i) rt.spawn_detached([&] { done.fetch_add(1); });
    while (done.load() < 100) usleep(1000);
  }
  EXPECT_EQ(done.load(), 100);
}

}  // namespace
}  // namespace lpt
