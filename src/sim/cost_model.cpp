#include "sim/cost_model.hpp"

namespace lpt::sim {

CostModel CostModel::skylake() {
  CostModel m;  // defaults are the Skylake calibration
  m.name = "Skylake";
  return m;
}

CostModel CostModel::knl() {
  CostModel m;
  m.name = "KNL";
  m.num_cores = 68;
  m.gflops_per_core = 9.0;
  const double f = 5.4;  // Table 1 ratio (15/2.8)
  m.ult_ctx_switch = static_cast<Time>(m.ult_ctx_switch * f);
  m.signal_handler = static_cast<Time>(m.signal_handler * f);
  // The kernel lock section does NOT scale with core speed the way user
  // code does (Fig 4 is Skylake-only; Fig 6b's sustained 100 µs interval on
  // KNL requires the lock to stay below interval/56 ≈ 1.8 µs).
  m.kernel_lock = 1'500;
  m.pthread_kill = static_cast<Time>(m.pthread_kill * f);
  m.futex_wake = static_cast<Time>(m.futex_wake * f);
  m.futex_wakeup_latency = static_cast<Time>(m.futex_wakeup_latency * f);
  m.sigsuspend_extra = static_cast<Time>(m.sigsuspend_extra * f);
  m.klt_global_pool_penalty = static_cast<Time>(m.klt_global_pool_penalty * f);
  m.klt_create_latency = static_cast<Time>(m.klt_create_latency * f);
  m.sigyield_extra = static_cast<Time>(m.sigyield_extra * f);
  m.kltswitch_extra = static_cast<Time>(m.kltswitch_extra * f);
  m.os_preempt = 15'000;  // Table 1 directly
  m.os_ctx_switch = static_cast<Time>(m.os_ctx_switch * f);
  m.os_wake_latency = static_cast<Time>(m.os_wake_latency * f);
  return m;
}

}  // namespace lpt::sim
