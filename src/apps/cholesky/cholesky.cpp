#include "apps/cholesky/cholesky.hpp"

#include <atomic>
#include <memory>

#include "apps/linalg/blas.hpp"
#include "common/assert.hpp"

namespace lpt::apps {

namespace {

enum class Op : std::uint8_t { kPotrf, kTrsm, kSyrk, kGemm };

struct TileTask {
  Op op;
  int k = 0, m = 0, n = 0;
  std::atomic<int> deps{0};
  std::vector<int> dependents;
};

struct Factorization {
  Runtime* rt = nullptr;
  const TiledCholeskyOptions* opts = nullptr;
  double* a = nullptr;
  int lda = 0;

  std::vector<std::unique_ptr<TileTask>> tasks;
  std::vector<int> potrf_id, trsm_id, syrk_id, gemm_id;
  std::atomic<int> remaining{0};
  std::atomic<bool> failed{false};
  FutexEvent all_done;

  double* tile(int i, int j) const {
    return a + static_cast<std::size_t>(i) * opts->tile_n +
           static_cast<std::size_t>(j) * opts->tile_n * lda;
  }

  int add(Op op, int k, int m, int n) {
    auto t = std::make_unique<TileTask>();
    t->op = op;
    t->k = k;
    t->m = m;
    t->n = n;
    tasks.push_back(std::move(t));
    return static_cast<int>(tasks.size()) - 1;
  }

  void edge(int from, int to) {
    tasks[from]->dependents.push_back(to);
    tasks[to]->deps.fetch_add(1, std::memory_order_relaxed);
  }

  void build() {
    const int T = opts->tiles;
    potrf_id.assign(T, -1);
    trsm_id.assign(T * T, -1);
    syrk_id.assign(T * T, -1);
    gemm_id.assign(T * T * T, -1);
    for (int k = 0; k < T; ++k) {
      potrf_id[k] = add(Op::kPotrf, k, k, k);
      for (int m = k + 1; m < T; ++m) trsm_id[m * T + k] = add(Op::kTrsm, k, m, k);
      for (int m = k + 1; m < T; ++m) syrk_id[m * T + k] = add(Op::kSyrk, k, m, m);
      for (int m = k + 2; m < T; ++m)
        for (int n = k + 1; n < m; ++n)
          gemm_id[(m * T + n) * T + k] = add(Op::kGemm, k, m, n);
    }
    for (int k = 0; k < T; ++k) {
      if (k > 0) edge(syrk_id[k * T + (k - 1)], potrf_id[k]);
      for (int m = k + 1; m < T; ++m) {
        edge(potrf_id[k], trsm_id[m * T + k]);
        if (k > 0) edge(gemm_id[(m * T + k) * T + (k - 1)], trsm_id[m * T + k]);
        edge(trsm_id[m * T + k], syrk_id[m * T + k]);
        if (k > 0) edge(syrk_id[m * T + (k - 1)], syrk_id[m * T + k]);
        for (int n = k + 1; n < m; ++n) {
          edge(trsm_id[m * T + k], gemm_id[(m * T + n) * T + k]);
          edge(trsm_id[n * T + k], gemm_id[(m * T + n) * T + k]);
          if (k > 0)
            edge(gemm_id[(m * T + n) * T + (k - 1)], gemm_id[(m * T + n) * T + k]);
        }
      }
    }
    remaining.store(static_cast<int>(tasks.size()), std::memory_order_relaxed);
  }

  /// Execute one tile kernel, optionally over an inner MKL-like team that
  /// splits the row range and joins at a busy-wait barrier.
  void execute(TileTask& t) {
    const int b = opts->tile_n;
    switch (t.op) {
      case Op::kPotrf: {
        if (!dpotrf_lower(b, tile(t.k, t.k), lda)) failed.store(true);
        break;
      }
      case Op::kTrsm: {
        dtrsm_rltn(b, b, tile(t.k, t.k), lda, tile(t.m, t.k), lda);
        break;
      }
      case Op::kSyrk: {
        dsyrk_ln_minus(b, b, tile(t.m, t.k), lda, tile(t.m, t.m), lda);
        break;
      }
      case Op::kGemm: {
        // Split rows across the inner team (this is the parallel-heavy op).
        if (opts->inner_width > 1) {
          TeamOptions to;
          to.width = opts->inner_width;
          to.wait = opts->inner_wait;
          to.preempt = opts->preempt;
          const int rows = b, per = (rows + to.width - 1) / to.width;
          double* c = tile(t.m, t.n);
          const double* ta = tile(t.m, t.k);
          const double* tb = tile(t.n, t.k);
          team_parallel(to, [&](int rank) {
            const int r0 = rank * per;
            const int r1 = std::min(rows, r0 + per);
            if (r0 < r1)
              dgemm_nt_minus(r1 - r0, b, b, ta + r0, lda, tb, lda, c + r0, lda);
          });
        } else {
          dgemm_nt_minus(b, b, b, tile(t.m, t.k), lda, tile(t.n, t.k), lda,
                         tile(t.m, t.n), lda);
        }
        break;
      }
    }
  }

  void spawn_task(int id) {
    ThreadAttrs attrs;
    attrs.preempt = opts->preempt;
    rt->spawn_detached([this, id] { run_task(id); }, attrs);
  }

  void run_task(int id) {
    TileTask& t = *tasks[id];
    execute(t);
    for (int dep : t.dependents) {
      if (tasks[dep]->deps.fetch_sub(1, std::memory_order_acq_rel) == 1)
        spawn_task(dep);
    }
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) all_done.set();
  }
};

}  // namespace

bool tiled_cholesky(Runtime& rt, const TiledCholeskyOptions& opts, double* a,
                    int lda) {
  LPT_CHECK(!this_thread::in_ult());
  LPT_CHECK(opts.tiles >= 1 && opts.tile_n >= 1);

  Factorization f;
  f.rt = &rt;
  f.opts = &opts;
  f.a = a;
  f.lda = lda;
  f.build();
  f.spawn_task(f.potrf_id[0]);
  f.all_done.wait();
  return !f.failed.load();
}

}  // namespace lpt::apps
