// Tier-1 tests of blocking-syscall resilience (docs/robustness.md,
// "Blocking-syscall resilience"): the lpt::io guards and retry wrappers, the
// watchdog's wedge sentinel, compensating-KLT activation under both
// preemption techniques, reabsorption accounting, and saturation as graceful
// degradation.
//
// Suite naming is load-bearing for scripts/check.sh: the IoCall.* and
// SyscallDetect.* suites never enter a Runtime (no fiber switches), so the
// ThreadSanitizer stage runs exactly that filter; SyscallComp.* and
// SyscallStorm.* switch contexts and run in normal/tier-1 builds only.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <vector>

#include "common/sys.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "runtime/watchdog.hpp"

namespace lpt {
namespace {

bool wait_until(const std::atomic<bool>& flag, std::int64_t timeout_ns) {
  const std::int64_t deadline = now_ns() + timeout_ns;
  while (!flag.load(std::memory_order_acquire)) {
    if (now_ns() > deadline) return false;
    usleep(1000);
  }
  return true;
}

/// RAII pipe pair so early ASSERT exits cannot leak descriptors.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int rd() const { return fds[0]; }
  int wr() const { return fds[1]; }
};

// ---------------------------------------------------------------------------
// io::call retry/deadline policy + the new shim sites (no Runtime; TSan-clean)
// ---------------------------------------------------------------------------

TEST(IoCall, EintrRetriesThroughShimToSuccess) {
  Pipe p;
  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  const std::uint64_t before = sys::counters(sys::Site::kRead).injected;
  ASSERT_TRUE(sys::configure_faults("read:first=3,errno=EINTR"));
  char c = 0;
  const ssize_t rc = io::read(p.rd(), &c, 1);
  const std::uint64_t injected = sys::counters(sys::Site::kRead).injected;
  sys::reset_faults();  // zeroes counters — deltas were captured above
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(c, 'x');
  EXPECT_EQ(injected - before, 3u);
}

TEST(IoCall, EagainBacksOffThenSucceeds) {
  Pipe p;
  ASSERT_TRUE(sys::configure_faults("write:first=2,errno=EAGAIN"));
  const ssize_t rc = io::write(p.wr(), "y", 1);
  sys::reset_faults();
  EXPECT_EQ(rc, 1);
  char c = 0;
  EXPECT_EQ(::read(p.rd(), &c, 1), 1);
  EXPECT_EQ(c, 'y');
}

TEST(IoCall, DeadlineExhaustionReportsEtimedout) {
  Pipe p;
  ASSERT_TRUE(sys::configure_faults("read:every=1,errno=EAGAIN"));
  char c = 0;
  const std::int64_t t0 = now_ns();
  errno = 0;
  const ssize_t rc = io::read(p.rd(), &c, 1, /*deadline_ns=*/5'000'000);
  const int err = errno;
  sys::reset_faults();
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(err, ETIMEDOUT);
  // Bounded: the retry loop must not grossly overshoot the deadline.
  EXPECT_LT(now_ns() - t0, 1'000'000'000);
}

TEST(IoCall, EnosysIsNotRetryable) {
  Pipe p;
  const std::uint64_t calls_before = sys::counters(sys::Site::kRead).calls;
  ASSERT_TRUE(sys::configure_faults("read:every=1,errno=ENOSYS"));
  char c = 0;
  errno = 0;
  const ssize_t rc = io::read(p.rd(), &c, 1);
  const int err = errno;
  const std::uint64_t calls = sys::counters(sys::Site::kRead).calls;
  sys::reset_faults();
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(err, ENOSYS);
  // A non-retryable errno surfaces after exactly one attempt.
  EXPECT_EQ(calls - calls_before, 1u);
}

TEST(IoCall, NewShimSitesInjectAndRecover) {
  ASSERT_TRUE(sys::configure_faults("pipe2:nth=1;eventfd:nth=1"));
  int fds[2];
  errno = 0;
  EXPECT_EQ(sys::pipe2(fds, 0), -1);
  EXPECT_EQ(errno, EAGAIN);
  ASSERT_EQ(sys::pipe2(fds, 0), 0);  // second call passes through
  ::close(fds[0]);
  ::close(fds[1]);
  errno = 0;
  EXPECT_EQ(sys::eventfd(0, 0), -1);
  EXPECT_EQ(errno, EAGAIN);
  const int efd = sys::eventfd(0, 0);
  EXPECT_GE(efd, 0);
  if (efd >= 0) ::close(efd);
  sys::reset_faults();
}

TEST(IoCall, GuardAndWrappersInertOutsideRuntime) {
  // No Runtime exists on this thread: the guard publishes nothing and the
  // wrappers behave like the plain syscalls (plus retry policy).
  { io::blocking_region region; }
  Pipe p;
  ASSERT_EQ(::write(p.wr(), "z", 1), 1);
  char c = 0;
  EXPECT_EQ(io::read(p.rd(), &c, 1), 1);
  EXPECT_EQ(c, 'z');
}

// ---------------------------------------------------------------------------
// Wedge-sentinel detection core (pure function; TSan-clean)
// ---------------------------------------------------------------------------

using watchdog_detail::evaluate_worker;
using watchdog_detail::kFlagQuantumOverrun;
using watchdog_detail::kFlagRunnableStarvation;
using watchdog_detail::kFlagSyscallBlocked;
using watchdog_detail::kFlagWorkerStall;
using watchdog_detail::WatchdogLimits;
using watchdog_detail::WorkerObs;
using watchdog_detail::WorkerWatch;

WorkerObs base_obs(std::int64_t now) {
  WorkerObs o;
  o.now_ns = now;
  o.dispatches = 1;
  return o;
}

TEST(SyscallDetect, FlagsOncePerEpochPastGrace) {
  WatchdogLimits lim;
  lim.syscall_grace_ns = 1'000;
  WorkerWatch w;
  EXPECT_EQ(evaluate_worker(base_obs(0), lim, w), 0u);  // priming poll

  WorkerObs obs = base_obs(10);
  obs.in_syscall = true;
  obs.syscall_epoch = 1;
  obs.syscall_age_ns = 500;
  EXPECT_EQ(evaluate_worker(obs, lim, w), 0u) << "under grace: no flag";
  obs.syscall_age_ns = 1'000;
  EXPECT_EQ(evaluate_worker(obs, lim, w), kFlagSyscallBlocked);
  obs.syscall_age_ns = 50'000;
  EXPECT_EQ(evaluate_worker(obs, lim, w), 0u) << "same epoch flags once";

  obs.in_syscall = false;  // region exited: latch clears
  EXPECT_EQ(evaluate_worker(obs, lim, w), 0u);
  obs.in_syscall = true;   // a new region on the same worker flags afresh
  obs.syscall_epoch = 3;
  obs.syscall_age_ns = 2'000;
  EXPECT_EQ(evaluate_worker(obs, lim, w), kFlagSyscallBlocked);
}

TEST(SyscallDetect, ZeroGraceDisablesTheSentinel) {
  WatchdogLimits lim;  // syscall_grace_ns stays 0
  WorkerWatch w;
  EXPECT_EQ(evaluate_worker(base_obs(0), lim, w), 0u);
  WorkerObs obs = base_obs(10);
  obs.in_syscall = true;
  obs.syscall_epoch = 1;
  obs.syscall_age_ns = 1'000'000'000;
  EXPECT_EQ(evaluate_worker(obs, lim, w), 0u);
}

TEST(SyscallDetect, DeclaredSyscallSuppressesMisdiagnoses) {
  // A wedged-in-syscall worker looks exactly like starvation (queued work,
  // frozen dispatches), a stall (ticks land, handler never runs), and an
  // overrun (one ULT hogging the worker). The declared wedge must suppress
  // all three — the force-replace ladder would orphan a host that the
  // reabsorption protocol handles loss-free.
  WatchdogLimits lim;
  lim.runnable_ns = 1'000;
  lim.stall_ticks = 2;
  lim.quantum_ns = 1'000;
  lim.syscall_grace_ns = 1'000;

  WorkerWatch w_in, w_out;
  WorkerObs prime = base_obs(0);
  prime.ticks_sent = 1;
  prime.handler_entries = 1;
  EXPECT_EQ(evaluate_worker(prime, lim, w_in), 0u);
  EXPECT_EQ(evaluate_worker(prime, lim, w_out), 0u);

  WorkerObs sick = base_obs(10'000'000);  // frozen 10 ms, every limit tripped
  sick.queue_depth = 3;
  sick.preemptible_running = true;
  sick.ticks_sent = 20;
  sick.handler_entries = 1;

  WorkerObs wedged = sick;
  wedged.in_syscall = true;
  wedged.syscall_epoch = 1;
  wedged.syscall_age_ns = 9'000'000;
  EXPECT_EQ(evaluate_worker(wedged, lim, w_in), kFlagSyscallBlocked)
      << "only the declared wedge may flag";

  unsigned flags = evaluate_worker(sick, lim, w_out);
  EXPECT_NE(flags & kFlagWorkerStall, 0u);
  EXPECT_NE(flags & kFlagQuantumOverrun, 0u);
  EXPECT_EQ(flags & kFlagSyscallBlocked, 0u);

  // Starvation needs the queue non-empty across two polls (the first only
  // baselines its wait). Second poll, 10 ms later, same pathology:
  sick.now_ns = wedged.now_ns = 20'000'000;
  wedged.syscall_age_ns = 19'000'000;
  EXPECT_EQ(evaluate_worker(wedged, lim, w_in), 0u)
      << "wedge already flagged; still nothing else may fire";
  flags = evaluate_worker(sick, lim, w_out);
  EXPECT_NE(flags & kFlagRunnableStarvation, 0u);
  EXPECT_EQ(flags & kFlagSyscallBlocked, 0u);
}

// ---------------------------------------------------------------------------
// Compensation end-to-end, both preemption techniques (Runtime; not TSan)
// ---------------------------------------------------------------------------

/// One worker, one spare KLT, a short grace. The wedge ULT parks its host
/// inside io::read on an empty pipe; the victim ULT can only ever run if the
/// sentinel activates the compensating KLT (there is no second worker). The
/// unblocking write then lets the old host reabsorb, and the books must
/// reconcile exactly: activated == reabsorbed + saturated.
void expect_compensation_rescues_wedged_worker(Preempt technique) {
  Pipe p;
  std::atomic<bool> flagged{false};
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 10;
  o.syscall_grace_ns = 5'000'000;  // 5 ms
  o.initial_spare_klts = 1;
  o.watchdog_callback = [&](const WatchdogReport& r) {
    if (r.kind == WatchdogReport::Kind::kSyscallBlocked)
      flagged.store(true, std::memory_order_release);
  };
  Runtime rt(o);

  ThreadAttrs a;
  a.preempt = technique;
  Thread wedge = rt.spawn(
      [&] {
        char c = 0;
        EXPECT_EQ(io::read(p.rd(), &c, 1), 1);
        EXPECT_EQ(c, 'x');
      },
      a);
  // Wait for the region to publish before queueing the victim: from then on
  // the guard pins the wedge ULT, so only compensation can dispatch anyone.
  const std::int64_t publish_deadline = now_ns() + 2'000'000'000;
  while (rt.stats().syscall_blocks == 0 && now_ns() < publish_deadline)
    usleep(1000);
  ASSERT_GE(rt.stats().syscall_blocks, 1u) << "guard never entered";

  std::atomic<bool> victim_ran{false};
  Thread victim =
      rt.spawn([&] { victim_ran.store(true, std::memory_order_release); });
  EXPECT_TRUE(wait_until(victim_ran, 10'000'000'000))
      << "compensating KLT never dispatched the queued victim";
  // The fresh host can dispatch the victim a beat before the sentinel thread
  // reaches its report callback — wait, don't sample.
  EXPECT_TRUE(wait_until(flagged, 2'000'000'000));

  ASSERT_EQ(::write(p.wr(), "x", 1), 1);  // unwedge: old host reabsorbs
  wedge.join();
  victim.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.syscall_blocks, 1u);
  EXPECT_GE(s.syscall_comp_activated, 1u);
  EXPECT_GE(s.syscall_comp_reabsorbed, 1u);
  EXPECT_EQ(s.syscall_comp_activated,
            s.syscall_comp_reabsorbed + s.syscall_comp_saturated)
      << "compensation books must reconcile exactly after quiescing";
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kSyscallBlocked), 1u);
  const metrics::Snapshot m = rt.metrics_snapshot();
  EXPECT_GE(m.syscall_blocks, 1u);
  EXPECT_EQ(m.syscall_comp_activated, s.syscall_comp_activated);
  EXPECT_EQ(m.syscall_comp_reabsorbed, s.syscall_comp_reabsorbed);
}

TEST(SyscallComp, CompensatesWedgedWorkerSignalYield) {
  expect_compensation_rescues_wedged_worker(Preempt::SignalYield);
}

TEST(SyscallComp, CompensatesWedgedWorkerKltSwitch) {
  expect_compensation_rescues_wedged_worker(Preempt::KltSwitch);
}

TEST(SyscallComp, HealthyIoNeverActivates) {
  // Short, always-ready io calls must never trip the sentinel: zero false
  // activations and zero kSyscallBlocked flags over a churning workload.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 10;
  o.syscall_grace_ns = 20'000'000;
  Runtime rt(o);

  const std::int64_t end = now_ns() + 300'000'000;
  while (now_ns() < end) {
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(rt.spawn([] {
        Pipe p;
        char c = 0;
        for (int j = 0; j < 16; ++j) {
          ASSERT_EQ(io::write(p.wr(), "k", 1), 1);
          ASSERT_EQ(io::read(p.rd(), &c, 1), 1);  // data already queued
        }
      }));
    }
    for (Thread& t : ts) t.join();
  }

  const Runtime::Stats s = rt.stats();
  EXPECT_GT(s.syscall_blocks, 0u);
  EXPECT_EQ(s.syscall_comp_activated, 0u) << "false compensation activation";
  EXPECT_EQ(rt.watchdog_flags(WatchdogReport::Kind::kSyscallBlocked), 0u);
}

TEST(SyscallComp, SaturationDegradesGracefully) {
  // max_klts == the worker host: the sentinel detects the wedge but can
  // never source a compensating KLT. That must count as saturation (not
  // activation), leave the wedge unharmed, and keep the books balanced.
  Pipe p;
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::None;  // watchdog drives itself on its own thread
  o.watchdog_period_ms = 10;
  o.syscall_grace_ns = 5'000'000;
  o.max_klts = 1;
  Runtime rt(o);

  Thread wedge = rt.spawn([&] {
    char c = 0;
    EXPECT_EQ(io::read(p.rd(), &c, 1), 1);
  });
  const std::int64_t deadline = now_ns() + 10'000'000'000;
  while (rt.stats().syscall_comp_saturated == 0 && now_ns() < deadline)
    usleep(1000);
  ASSERT_GE(rt.stats().syscall_comp_saturated, 1u)
      << "sentinel never reported saturation";

  ASSERT_EQ(::write(p.wr(), "x", 1), 1);
  wedge.join();

  const Runtime::Stats s = rt.stats();
  EXPECT_GE(s.syscall_comp_saturated, 1u);
  EXPECT_EQ(s.syscall_comp_reabsorbed, 0u)
      << "nothing was activated, so nothing may reabsorb";
  EXPECT_EQ(s.syscall_comp_activated,
            s.syscall_comp_reabsorbed + s.syscall_comp_saturated);
}

// ---------------------------------------------------------------------------
// LPT_FAULT storm through io::call inside the runtime (Runtime; not TSan)
// ---------------------------------------------------------------------------

TEST(SyscallStorm, EintrEagainStormPreservesEveryByte) {
  // A probabilistic EINTR/EAGAIN storm on the read and write sites: every
  // transfer must still complete losslessly through io::call's retry loop,
  // and transient errno churn must never be mistaken for a wedge.
  ASSERT_TRUE(sys::configure_faults(
      "read:prob=0.4,errno=EINTR,seed=7;write:prob=0.3,errno=EAGAIN,seed=11"));
  {
    RuntimeOptions o;
    o.num_workers = 2;
    o.timer = TimerKind::None;
    o.watchdog_period_ms = 10;
    Runtime rt(o);

    constexpr int kBytes = 512;
    std::vector<Thread> ts;
    std::atomic<int> bad{0};
    for (int i = 0; i < 4; ++i) {
      ts.push_back(rt.spawn([&bad, i] {
        Pipe p;
        for (int j = 0; j < kBytes; ++j) {
          const char out = static_cast<char>('a' + (i + j) % 26);
          char in = 0;
          if (io::write(p.wr(), &out, 1) != 1 ||
              io::read(p.rd(), &in, 1) != 1 || in != out)
            bad.fetch_add(1, std::memory_order_relaxed);
        }
      }));
    }
    for (Thread& t : ts) t.join();
    EXPECT_EQ(bad.load(), 0) << "storm corrupted or dropped a transfer";

    const Runtime::Stats s = rt.stats();
    EXPECT_GE(s.syscall_blocks, static_cast<std::uint64_t>(4 * kBytes));
    EXPECT_EQ(s.syscall_comp_activated, 0u)
        << "retry churn misread as a wedge";
  }
  EXPECT_GT(sys::counters(sys::Site::kRead).injected, 0u);
  EXPECT_GT(sys::counters(sys::Site::kWrite).injected, 0u);
  sys::reset_faults();
}

}  // namespace
}  // namespace lpt
