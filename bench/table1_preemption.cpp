// Table 1 reproduction: overhead of a single preemption for 1:1 threads,
// signal-yield, and KLT-switching, on the Skylake and KNL cost models —
// plus a real measurement of signal-yield and KLT-switching costs with the
// actual lpt runtime on this host.
//
// Paper anchors (median): Skylake 2.8 / 3.5 / 9.9 us; KNL 15 / 18 / 62 us.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"
#include "sim/workloads/compute_loop.hpp"

using namespace lpt;

namespace {

volatile std::uint64_t g_sink;  // keeps the busy loops observable

/// Measure the real per-preemption cost on this host: fixed CPU-bound work
/// with and without a preemption timer; the difference divided by the number
/// of preemptions that occurred.
double measure_real_preempt_us(Preempt mode, std::int64_t interval_us,
                               std::uint64_t iters) {
  auto run_once = [&](TimerKind timer) -> std::pair<double, std::uint64_t> {
    RuntimeOptions o;
    o.num_workers = 1;
    o.timer = timer;
    o.interval_us = interval_us;
    Runtime rt(o);
    ThreadAttrs attrs;
    attrs.preempt = mode;
    const std::int64_t t0 = now_ns();
    Thread t = rt.spawn([&] { g_sink = busy_work_iters(iters); }, attrs);
    t.join();
    const std::int64_t elapsed = now_ns() - t0;
    return {static_cast<double>(elapsed), rt.total_preemptions()};
  };

  // Median of a few trials to shrug off host noise.
  Stats per_preempt;
  for (int rep = 0; rep < 3; ++rep) {
    auto [base_ns, base_p] = run_once(TimerKind::None);
    auto [with_ns, with_p] = run_once(TimerKind::PerWorkerAligned);
    if (with_p == 0) continue;
    per_preempt.add((with_ns - base_ns) / 1000.0 / static_cast<double>(with_p));
  }
  return per_preempt.empty() ? 0.0 : per_preempt.median();
}

}  // namespace

int main() {
  std::printf("=== Table 1: overhead of one preemption (us) ===\n\n");

  Table table({"Machine", "1:1 threads (Pthreads)", "Signal-yield",
               "KLT-switching"});
  const sim::Table1Row sky = sim::table1_costs(sim::CostModel::skylake());
  const sim::Table1Row knl = sim::table1_costs(sim::CostModel::knl());
  table.add_row({"Skylake (paper)", "2.8", "3.5", "9.9"});
  table.add_row({"Skylake (model)", Table::fmt("%.1f", sky.one_to_one_us),
                 Table::fmt("%.1f", sky.signal_yield_us),
                 Table::fmt("%.1f", sky.klt_switching_us)});
  table.add_row({"KNL (paper)", "15", "18", "62"});
  table.add_row({"KNL (model)", Table::fmt("%.0f", knl.one_to_one_us),
                 Table::fmt("%.0f", knl.signal_yield_us),
                 Table::fmt("%.0f", knl.klt_switching_us)});
  table.print();

  const bool order_ok = sky.one_to_one_us < sky.signal_yield_us &&
                        sky.signal_yield_us < sky.klt_switching_us;
  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] 1:1 < signal-yield < KLT-switching on both machines\n",
              order_ok ? "OK" : "MISMATCH");
  std::printf("  [%s] signal-yield ~1.2x and KLT-switching ~3-4x the 1:1 "
              "cost (%.1fx, %.1fx)\n",
              (sky.signal_yield_us / sky.one_to_one_us < 1.6 &&
               sky.klt_switching_us / sky.one_to_one_us > 2.5)
                  ? "OK"
                  : "MISMATCH",
              sky.signal_yield_us / sky.one_to_one_us,
              sky.klt_switching_us / sky.one_to_one_us);

  std::printf("\n--- Real lpt runtime on this host (1 worker, 0.2 ms timer; "
              "absolute values depend on this machine) ---\n");
  // Calibrate busy work to ~400 ms so a 0.2 ms timer yields ~2000
  // preemptions per run (the per-preemption delta must clear host noise).
  const std::int64_t probe_start = now_ns();
  g_sink = busy_work_iters(50'000'000);
  const std::int64_t probe = now_ns() - probe_start;
  const std::uint64_t iters =
      static_cast<std::uint64_t>(50'000'000.0 * 400e6 / static_cast<double>(probe));

  const double sy = measure_real_preempt_us(Preempt::SignalYield, 200, iters);
  const double ks = measure_real_preempt_us(Preempt::KltSwitch, 200, iters);
  std::printf("  signal-yield : %6.1f us/preemption\n", sy);
  std::printf("  KLT-switching: %6.1f us/preemption\n", ks);
  std::printf("  [%s] KLT-switching costs more than signal-yield\n",
              ks > sy ? "OK" : "NOISY (container timing)");
  return 0;
}
