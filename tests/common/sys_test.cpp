// Unit tests of the syscall shim's fault-injection plans (common/sys.hpp).
// sys::mmap is the cheapest instrumented site, so most schedules are probed
// through it; one test exercises sys::pthread_create end to end.
#include "common/sys.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <sys/mman.h>

namespace lpt {
namespace {

class SysFault : public ::testing::Test {
 protected:
  void SetUp() override { sys::reset_faults(); }
  void TearDown() override { sys::reset_faults(); }

  // One sys::mmap probe; returns true when the mapping succeeded.
  static bool probe_mmap() {
    errno = 0;
    void* p = sys::mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return false;
    munmap(p, 4096);
    return true;
  }
};

TEST_F(SysFault, OffByDefaultCountsCalls) {
  const std::uint64_t before = sys::counters(sys::Site::kMmap).calls;
  EXPECT_TRUE(probe_mmap());
  const sys::SiteCounters c = sys::counters(sys::Site::kMmap);
  EXPECT_EQ(c.calls, before + 1);
  EXPECT_EQ(c.injected, 0u);
}

TEST_F(SysFault, NthFailsExactlyThatCall) {
  ASSERT_TRUE(sys::configure_faults("mmap:nth=2"));
  EXPECT_TRUE(probe_mmap());
  EXPECT_FALSE(probe_mmap());
  EXPECT_EQ(errno, ENOMEM);  // mmap's default injected errno
  EXPECT_TRUE(probe_mmap());
  EXPECT_EQ(sys::counters(sys::Site::kMmap).injected, 1u);
}

TEST_F(SysFault, FirstNFailsLeadingCalls) {
  ASSERT_TRUE(sys::configure_faults("mmap:first=2"));
  EXPECT_FALSE(probe_mmap());
  EXPECT_FALSE(probe_mmap());
  EXPECT_TRUE(probe_mmap());
}

TEST_F(SysFault, EveryNFailsPeriodically) {
  ASSERT_TRUE(sys::configure_faults("mmap:every=3"));
  int failures = 0;
  for (int i = 0; i < 9; ++i)
    if (!probe_mmap()) ++failures;
  EXPECT_EQ(failures, 3);
}

TEST_F(SysFault, AfterSparesLeadingCalls) {
  ASSERT_TRUE(sys::configure_faults("mmap:after=2,first=1"));
  EXPECT_TRUE(probe_mmap());
  EXPECT_TRUE(probe_mmap());
  EXPECT_FALSE(probe_mmap());
  EXPECT_TRUE(probe_mmap());
}

TEST_F(SysFault, MaxCapsInjections) {
  ASSERT_TRUE(sys::configure_faults("mmap:every=1,max=2"));
  EXPECT_FALSE(probe_mmap());
  EXPECT_FALSE(probe_mmap());
  EXPECT_TRUE(probe_mmap());
  EXPECT_EQ(sys::counters(sys::Site::kMmap).injected, 2u);
}

TEST_F(SysFault, ProbExtremesAreDeterministic) {
  ASSERT_TRUE(sys::configure_faults("mmap:prob=1.0,seed=7"));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(probe_mmap());
  ASSERT_TRUE(sys::configure_faults("mmap:prob=0.0"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(probe_mmap());
}

TEST_F(SysFault, ProbMidpointInjectsSome) {
  ASSERT_TRUE(sys::configure_faults("mmap:prob=0.5,seed=42"));
  int failures = 0;
  for (int i = 0; i < 64; ++i)
    if (!probe_mmap()) ++failures;
  // splitmix64 at p=0.5 over 64 draws: overwhelmingly within [8, 56].
  EXPECT_GT(failures, 8);
  EXPECT_LT(failures, 56);
}

TEST_F(SysFault, CustomErrnoByNameAndNumber) {
  ASSERT_TRUE(sys::configure_faults("mmap:first=1,errno=EPERM"));
  EXPECT_FALSE(probe_mmap());
  EXPECT_EQ(errno, EPERM);
  ASSERT_TRUE(sys::configure_faults("mmap:first=1,errno=12"));  // ENOMEM
  EXPECT_FALSE(probe_mmap());
  EXPECT_EQ(errno, ENOMEM);
}

TEST_F(SysFault, MultiClauseSpecArmsEachSite) {
  ASSERT_TRUE(
      sys::configure_faults("mmap:first=1;timer_create:first=1,errno=EAGAIN"));
  EXPECT_FALSE(probe_mmap());
  timer_t tid;
  sigevent sev{};
  sev.sigev_notify = SIGEV_NONE;
  errno = 0;
  EXPECT_EQ(sys::timer_create(CLOCK_MONOTONIC, &sev, &tid), -1);
  EXPECT_EQ(errno, EAGAIN);
  EXPECT_EQ(sys::total_injected(), 2u);
}

TEST_F(SysFault, MalformedSpecRejectedPlanIntact) {
  ASSERT_TRUE(sys::configure_faults("mmap:first=1"));
  std::string error;
  EXPECT_FALSE(sys::configure_faults("mmap:bogus=1", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(sys::configure_faults("nosuchsite:first=1", &error));
  EXPECT_FALSE(sys::configure_faults("mmap:first=1,prob=0.5", &error));
  // The original plan must still be armed.
  EXPECT_FALSE(probe_mmap());
}

TEST_F(SysFault, EmptySpecDisarms) {
  ASSERT_TRUE(sys::configure_faults("mmap:every=1"));
  EXPECT_FALSE(probe_mmap());
  ASSERT_TRUE(sys::configure_faults(""));
  EXPECT_TRUE(probe_mmap());
}

TEST_F(SysFault, PthreadCreateInjectionSkipsRealCall) {
  ASSERT_TRUE(sys::configure_faults("pthread_create:first=1"));
  pthread_t t;
  // Injected failure returns before the kernel is asked: no thread to join.
  EXPECT_EQ(sys::pthread_create(
                &t, nullptr, [](void*) -> void* { return nullptr; }, nullptr),
            EAGAIN);
  sys::reset_faults();
  ASSERT_EQ(sys::pthread_create(
                &t, nullptr, [](void*) -> void* { return nullptr; }, nullptr),
            0);
  pthread_join(t, nullptr);
}

TEST_F(SysFault, SiteNamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(sys::Site::kCount); ++i) {
    const auto s = static_cast<sys::Site>(i);
    const std::string spec = std::string(sys::site_name(s)) + ":first=1";
    EXPECT_TRUE(sys::configure_faults(spec)) << spec;
  }
}

TEST_F(SysFault, ResetZeroesCounters) {
  ASSERT_TRUE(sys::configure_faults("mmap:first=1"));
  EXPECT_FALSE(probe_mmap());
  sys::reset_faults();
  const sys::SiteCounters c = sys::counters(sys::Site::kMmap);
  EXPECT_EQ(c.calls, 0u);
  EXPECT_EQ(c.injected, 0u);
  EXPECT_EQ(sys::total_injected(), 0u);
}

}  // namespace
}  // namespace lpt
