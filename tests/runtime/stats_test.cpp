#include <gtest/gtest.h>

#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(RuntimeStats, CountsScheduledThreads) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  std::vector<Thread> ts;
  for (int i = 0; i < 20; ++i) ts.push_back(rt.spawn([] {}));
  for (auto& t : ts) t.join();

  const Runtime::Stats s = rt.stats();
  ASSERT_EQ(s.workers.size(), 2u);
  std::uint64_t scheduled = 0;
  for (const auto& w : s.workers) scheduled += w.scheduled;
  EXPECT_GE(scheduled, 20u);  // joins may add blocked/unblocked dispatches
  EXPECT_EQ(s.klts_created, 2u);
  EXPECT_EQ(s.klts_on_demand, 0u);
  EXPECT_EQ(s.active_workers, 2);
}

TEST(RuntimeStats, DistinguishesPreemptionTechniques) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  ThreadAttrs ks;
  ks.preempt = Preempt::KltSwitch;
  Thread a = rt.spawn([] { busy_spin_ns(15'000'000); }, sy);
  a.join();
  Thread b = rt.spawn([] { busy_spin_ns(15'000'000); }, ks);
  b.join();

  const Runtime::Stats s = rt.stats();
  std::uint64_t total_sy = 0, total_ks = 0;
  for (const auto& w : s.workers) {
    total_sy += w.preempt_signal_yield;
    total_ks += w.preempt_klt_switch;
  }
  EXPECT_GT(total_sy, 0u);
  EXPECT_GT(total_ks, 0u);
  EXPECT_GT(s.klts_on_demand, 0u);  // KLT-switching had to create spares
  EXPECT_EQ(total_sy + total_ks, rt.total_preemptions());
}

TEST(RuntimeStats, ReflectsPacking) {
  RuntimeOptions o;
  o.num_workers = 3;
  o.scheduler = SchedulerKind::Packing;
  Runtime rt(o);
  rt.set_active_workers(1);
  // Give the to-be-parked workers a moment to reach their parking point.
  Thread t = rt.spawn([] { busy_spin_ns(5'000'000); });
  t.join();
  usleep(20'000);
  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.active_workers, 1);
  int parked = 0;
  for (const auto& w : s.workers) parked += w.parked ? 1 : 0;
  EXPECT_EQ(parked, 2);
  rt.set_active_workers(3);
}

TEST(RuntimeStats, StealsCountedUnderImbalance) {
  RuntimeOptions o;
  o.num_workers = 3;
  Runtime rt(o);
  std::vector<Thread> ts;
  for (int i = 0; i < 30; ++i) {
    ThreadAttrs attrs;
    attrs.home_pool = 0;  // pile everything on one queue
    ts.push_back(rt.spawn([] { busy_spin_ns(500'000); }, attrs));
  }
  for (auto& t : ts) t.join();
  const Runtime::Stats s = rt.stats();
  std::uint64_t steals = 0;
  for (const auto& w : s.workers) steals += w.steals;
  EXPECT_GT(steals, 0u);
}

}  // namespace
}  // namespace lpt
