
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/compat.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/compat.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/compat.cpp.o.d"
  "/root/repo/src/runtime/klt_pool.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/klt_pool.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/klt_pool.cpp.o.d"
  "/root/repo/src/runtime/parallel_for.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/parallel_for.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/parallel_for.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/sched_packing.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_packing.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_packing.cpp.o.d"
  "/root/repo/src/runtime/sched_priority.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_priority.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_priority.cpp.o.d"
  "/root/repo/src/runtime/sched_work_stealing.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_work_stealing.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/sched_work_stealing.cpp.o.d"
  "/root/repo/src/runtime/signals.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/signals.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/signals.cpp.o.d"
  "/root/repo/src/runtime/sync.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/sync.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/sync.cpp.o.d"
  "/root/repo/src/runtime/sync_extra.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/sync_extra.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/sync_extra.cpp.o.d"
  "/root/repo/src/runtime/timer.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/timer.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/timer.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/CMakeFiles/lpt_runtime.dir/runtime/worker.cpp.o" "gcc" "src/CMakeFiles/lpt_runtime.dir/runtime/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lpt_context.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
