#include "runtime/sync_extra.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

TEST(RwLock, ManyConcurrentReaders) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  RwLock rw;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn([&] {
      rw.lock_shared();
      const int c = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      busy_spin_ns(2'000'000);
      concurrent.fetch_sub(1);
      rw.unlock_shared();
    }));
  for (auto& t : ts) t.join();
  EXPECT_GT(peak.load(), 1) << "readers never overlapped";
}

TEST(RwLock, WriterExcludesEveryone) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  RwLock rw;
  int shared_value = 0;
  std::atomic<bool> violation{false};
  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([&] {
      for (int k = 0; k < 500; ++k) {
        rw.lock();
        const int before = ++shared_value;
        this_thread::yield();  // invite interleaving
        if (shared_value != before) violation.store(true);
        rw.unlock();
      }
    }));
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([&] {
      for (int k = 0; k < 500; ++k) {
        rw.lock_shared();
        const int a = shared_value;
        this_thread::yield();
        if (shared_value < a) violation.store(true);  // never decreases
        rw.unlock_shared();
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(shared_value, 2000);
}

TEST(RwLock, WriterNotStarvedByReaders) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  RwLock rw;
  std::atomic<bool> writer_done{false};
  std::atomic<bool> stop{false};
  std::vector<Thread> readers;
  for (int i = 0; i < 3; ++i)
    readers.push_back(rt.spawn([&] {
      while (!stop.load(std::memory_order_acquire)) {
        rw.lock_shared();
        this_thread::yield();
        rw.unlock_shared();
      }
    }));
  Thread writer = rt.spawn([&] {
    rw.lock();  // must get in despite the reader storm (writer preference)
    writer_done.store(true);
    rw.unlock();
  });
  const std::int64_t deadline = now_ns() + 10'000'000'000ll;
  while (!writer_done.load() && now_ns() < deadline) usleep(1000);
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(writer_done.load()) << "writer starved";
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

TEST(Semaphore, BoundsConcurrency) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  Semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn([&] {
      sem.acquire();
      if (inside.fetch_add(1) + 1 > 2) violation.store(true);
      busy_spin_ns(1'000'000);
      inside.fetch_sub(1);
      sem.release();
    }));
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(Semaphore, TryAcquireNeverBlocks) {
  Runtime rt{RuntimeOptions{}};
  Semaphore sem(1);
  Thread t = rt.spawn([&] {
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
    sem.release();
  });
  t.join();
}

TEST(Semaphore, BatchReleaseWakesMultipleWaiters) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Semaphore sem(0);
  std::atomic<int> through{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 3; ++i)
    ts.push_back(rt.spawn([&] {
      sem.acquire();
      through.fetch_add(1);
    }));
  Thread releaser = rt.spawn([&] {
    for (int i = 0; i < 10; ++i) this_thread::yield();  // let them queue
    sem.release(3);
  });
  for (auto& t : ts) t.join();
  releaser.join();
  EXPECT_EQ(through.load(), 3);
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

TEST(Semaphore, TryAcquireForTimesOutOnEmpty) {
  Runtime rt{RuntimeOptions{}};
  Semaphore sem(0);
  Thread t = rt.spawn([&] {
    const std::int64_t start = now_ns();
    EXPECT_FALSE(sem.try_acquire_for(std::chrono::milliseconds(20)));
    EXPECT_GE(now_ns() - start, 15'000'000);
    EXPECT_FALSE(sem.try_acquire_for(std::chrono::nanoseconds(0)));
  });
  t.join();
}

TEST(Semaphore, TryAcquireForWinsWhenReleased) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Semaphore sem(0);
  std::atomic<bool> waiting{false};
  Thread waiter = rt.spawn([&] {
    waiting.store(true, std::memory_order_release);
    EXPECT_TRUE(sem.try_acquire_for(std::chrono::seconds(10)));
  });
  Thread releaser = rt.spawn([&] {
    while (!waiting.load(std::memory_order_acquire)) this_thread::yield();
    sem.release();
  });
  waiter.join();
  releaser.join();
}

TEST(Latch, ReleasesUltAndExternalWaiters) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Latch latch(3);
  std::atomic<int> released{0};
  std::vector<Thread> waiters;
  for (int i = 0; i < 2; ++i)
    waiters.push_back(rt.spawn([&] {
      latch.wait();
      released.fetch_add(1);
    }));
  std::thread external([&] {
    latch.wait();  // external kernel thread path (futex)
    released.fetch_add(1);
  });
  EXPECT_FALSE(latch.try_wait());
  for (int i = 0; i < 3; ++i) rt.spawn([&] { latch.count_down(); }).join();
  for (auto& t : waiters) t.join();
  external.join();
  EXPECT_EQ(released.load(), 3);
  EXPECT_TRUE(latch.try_wait());
}

TEST(Latch, WaitAfterFiredReturnsImmediately) {
  Runtime rt{RuntimeOptions{}};
  Latch latch(1);
  latch.count_down();
  Thread t = rt.spawn([&] { latch.wait(); });
  t.join();
  latch.wait();  // external, already fired
  SUCCEED();
}

// ---------------------------------------------------------------------------
// WaitGroup
// ---------------------------------------------------------------------------

TEST(WaitGroup, WaitsForAllWork) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  WaitGroup wg;
  std::atomic<int> done_count{0};
  wg.add(16);
  for (int i = 0; i < 16; ++i)
    rt.spawn_detached([&] {
      busy_spin_ns(500'000);
      done_count.fetch_add(1);
      wg.done();
    });
  wg.wait();  // external-thread path
  EXPECT_EQ(done_count.load(), 16);
}

TEST(WaitGroup, UltWaiterAndReuse) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  WaitGroup wg;
  for (int round = 0; round < 3; ++round) {
    wg.add(4);
    std::atomic<int> n{0};
    for (int i = 0; i < 4; ++i)
      rt.spawn_detached([&] {
        n.fetch_add(1);
        wg.done();
      });
    Thread waiter = rt.spawn([&] {
      wg.wait();
      EXPECT_EQ(n.load(), 4);
    });
    waiter.join();
  }
}

TEST(SyncExtra, PrimitivesUnderPreemption) {
  // All extended primitives used by preemptive threads simultaneously.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 400;
  Runtime rt(o);
  RwLock rw;
  Semaphore sem(3);
  WaitGroup wg;
  long protected_value = 0;
  constexpr int kThreads = 6;
  wg.add(kThreads);
  std::vector<Thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = (i % 2 == 0) ? Preempt::SignalYield : Preempt::KltSwitch;
    ts.push_back(rt.spawn(
        [&] {
          for (int k = 0; k < 300; ++k) {
            sem.acquire();
            rw.lock();
            ++protected_value;
            rw.unlock();
            sem.release();
          }
          wg.done();
        },
        attrs));
  }
  wg.wait();
  for (auto& t : ts) t.join();
  EXPECT_EQ(protected_value, kThreads * 300L);
}

}  // namespace
}  // namespace lpt
