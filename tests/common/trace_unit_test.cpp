// Unit tests for the signal-safe tracer's data structures: ring overflow
// accounting, log2 histogram bucket math, env-var config resolution, and the
// Chrome-trace exporter (write + minimal structural parse-back). These tests
// never context-switch, so they also run under TSan (scripts/check.sh).
#include "common/trace.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace lpt::trace {
namespace {

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

TEST(TraceRing, RecordsUpToCapacityThenDropsAndCounts) {
  auto slots = std::make_unique<Event[]>(8);
  Ring r;
  r.init(slots.get(), 8, TrackKind::kWorkerKlt, 3);
  EXPECT_EQ(r.capacity(), 8u);
  EXPECT_EQ(r.id(), 3);
  EXPECT_EQ(r.kind(), TrackKind::kWorkerKlt);

  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(r.record(EventType::kUltYield, 1000 + i, /*worker=*/0,
                         /*ult=*/static_cast<std::uint32_t>(i)));
  EXPECT_EQ(r.recorded(), 8u);
  EXPECT_EQ(r.dropped(), 0u);

  // Ring full: every further record is dropped-and-counted, never wrapped.
  for (int i = 0; i < 5; ++i)
    EXPECT_FALSE(r.record(EventType::kUltYield, 2000 + i, 0, 99));
  EXPECT_EQ(r.recorded(), 8u);
  EXPECT_EQ(r.dropped(), 5u);
  EXPECT_EQ(r.fill(), 8u);

  // Slot contents survived (no wrap-around overwrite).
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Event& e = r.at(i);
    EXPECT_EQ(e.type.load(), static_cast<std::uint16_t>(EventType::kUltYield));
    EXPECT_EQ(e.ts_ns, 1000 + static_cast<std::int64_t>(i));
    EXPECT_EQ(e.ult, i);
  }
}

TEST(TraceRing, SlotIsOneCacheLine) {
  EXPECT_EQ(sizeof(Event), 64u);
  EXPECT_EQ(alignof(Event), 64u);
}

// ---------------------------------------------------------------------------
// Histogram bucket math
// ---------------------------------------------------------------------------

TEST(TraceHistogram, BucketForLog2Boundaries) {
  EXPECT_EQ(LatencyHistogram::bucket_for(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_for(1), 0);
  EXPECT_EQ(LatencyHistogram::bucket_for(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_for(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_for(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_for(7), 3);
  EXPECT_EQ(LatencyHistogram::bucket_for(8), 4);
  EXPECT_EQ(LatencyHistogram::bucket_for(1023), 10);
  EXPECT_EQ(LatencyHistogram::bucket_for(1024), 11);
  // Huge values clamp into the last bucket instead of overflowing.
  EXPECT_EQ(LatencyHistogram::bucket_for(INT64_MAX),
            LatencyHistogram::kBuckets - 1);
}

TEST(TraceHistogram, BucketBoundsAreContiguous) {
  // Every value lands in a bucket whose [floor, ceil) contains it.
  for (std::int64_t ns : {0LL, 1LL, 2LL, 3LL, 100LL, 4096LL, 1'000'000LL}) {
    const int b = LatencyHistogram::bucket_for(ns);
    EXPECT_GE(ns, HistSnapshot::bucket_floor_ns(b)) << "ns=" << ns;
    EXPECT_LT(ns, HistSnapshot::bucket_ceil_ns(b)) << "ns=" << ns;
  }
  // Buckets tile the axis: ceil(b) == floor(b+1) for the log2 buckets.
  for (int b = 1; b + 1 < HistSnapshot::kBuckets - 1; ++b)
    EXPECT_EQ(HistSnapshot::bucket_ceil_ns(b), HistSnapshot::bucket_floor_ns(b + 1));
}

TEST(TraceHistogram, PercentileInterpolatesInsideBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(100);  // bucket [64, 128)
  EXPECT_EQ(h.count(), 1000u);
  const HistSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 1000u);
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_GE(s.percentile_ns(p), 64.0);
    EXPECT_LE(s.percentile_ns(p), 128.0);
  }
  EXPECT_DOUBLE_EQ(HistSnapshot{}.percentile_ns(50.0), 0.0);  // empty
}

TEST(TraceHistogram, MedianSeparatesBimodalSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1'000);       // ~2^10
  for (int i = 0; i < 10; ++i) h.record(1'000'000);   // ~2^20
  const HistSnapshot s = h.snapshot();
  EXPECT_LT(s.median_ns(), 3'000);
  EXPECT_GT(s.percentile_ns(95.0), 500'000);
}

TEST(TraceHistogram, PercentilesAreMonotoneAcrossRankGaps) {
  // Regression: when the target rank falls between the last sample of one
  // bucket and the first of the next, interpolation must clamp at the next
  // bucket's floor, not extrapolate below it. Shape that triggered it:
  // 72 + 100 samples in low buckets, 2 stragglers far above.
  HistSnapshot s;
  s.buckets[12] = 72;
  s.buckets[19] = 100;
  s.buckets[20] = 2;
  double prev = -1.0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    const double v = s.percentile_ns(p);
    EXPECT_GE(v, prev) << "non-monotone at p=" << p;
    EXPECT_GE(v, static_cast<double>(HistSnapshot::bucket_floor_ns(12)));
    EXPECT_LE(v, static_cast<double>(HistSnapshot::bucket_ceil_ns(20)));
    prev = v;
  }
  // p99 specifically lands in the straggler bucket, at or above its floor.
  EXPECT_GE(s.percentile_ns(99.0),
            static_cast<double>(HistSnapshot::bucket_floor_ns(20)));
}

TEST(TraceHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (int i = 0; i < 5; ++i) a.record(10);
  for (int i = 0; i < 7; ++i) b.record(10'000);
  HistSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.count(), 12u);
  EXPECT_EQ(m.buckets[LatencyHistogram::bucket_for(10)], 5u);
  EXPECT_EQ(m.buckets[LatencyHistogram::bucket_for(10'000)], 7u);
}

TEST(TraceHistogram, SumIsExactAndMerges) {
  // sum_ns is accumulated exactly (not reconstructed from log2 buckets): the
  // reconciliation contract of the causal-delay exporter and trace_check.
  LatencyHistogram a, b;
  a.record(3);
  a.record(5);
  a.record(-7);  // negative clamps to 0 in the sum, like bucket_for
  b.record(1'000'000);
  EXPECT_EQ(a.sum_ns(), 8u);
  EXPECT_EQ(b.sum_ns(), 1'000'000u);
  HistSnapshot m = a.snapshot();
  m.merge(b.snapshot());
  EXPECT_EQ(m.sum_ns, 1'000'008u);
  EXPECT_EQ(m.count(), 4u);
  a.reset();
  EXPECT_EQ(a.sum_ns(), 0u);
  EXPECT_EQ(a.count(), 0u);
}

TEST(TraceHistogram, ConcurrentRecordKeepsExactTotals) {
  // The stamp/histogram write path must be clean under TSan: N threads
  // hammer one histogram; count and exact sum both reconcile after joining.
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(i % 1024);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t expect_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expect_sum += i % 1024;
  EXPECT_EQ(h.sum_ns(), expect_sum * kThreads);
}

// ---------------------------------------------------------------------------
// Collector + exporter
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_char(const std::string& s, char c) {
  std::size_t n = 0;
  for (char x : s) n += (x == c);
  return n;
}

class TraceCollectorTest : public ::testing::Test {
 protected:
  void TearDown() override { Collector::instance().disable(); }
};

TEST_F(TraceCollectorTest, OverflowAccountingAcrossRings) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 16;
  Collector::instance().configure(cfg);
  Ring* r = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(r, nullptr);
  for (int i = 0; i < 40; ++i)
    r->record(EventType::kUltYield, i, 0, 1);
  EXPECT_EQ(Collector::instance().total_events(), 16u);
  EXPECT_EQ(Collector::instance().total_dropped(), 24u);
}

TEST_F(TraceCollectorTest, AcquireRingReturnsNullWhenDisabled) {
  Collector::instance().disable();
  EXPECT_EQ(Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1),
            nullptr);
}

TEST_F(TraceCollectorTest, ChromeJsonExportIsStructurallyValid) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 128;
  Collector::instance().configure(cfg);

  // Worker ring: a dispatch->yield pair (becomes one "X" span), a dispatch->
  // preempt pair, and a steal instant.
  Ring* w = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(w, nullptr);
  w->record(EventType::kUltDispatch, 1'000, 0, 1);
  w->record(EventType::kUltYield, 2'000, 0, 1);
  w->record(EventType::kSteal, 2'500, 0, 2, /*victim=*/1);
  w->record(EventType::kUltDispatch, 3'000, 0, 2, /*sched_delay=*/123);
  w->record(EventType::kPreemptSignalYield, 4'000, 0, 2);
  // Timer ring: one fire.
  Ring* t = Collector::instance().acquire_ring(TrackKind::kTimer, -1);
  ASSERT_NE(t, nullptr);
  t->record(EventType::kTimerFire, 1'500, -1, 0, /*target=*/0);

  const std::string path = ::testing::TempDir() + "lpt_trace_unit.json";
  ASSERT_TRUE(Collector::instance().write_chrome_json(path));
  const std::string json = slurp(path);
  std::remove(path.c_str());

  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // paired run span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // instant
  EXPECT_NE(json.find("preempt_signal_yield"), std::string::npos);
  EXPECT_NE(json.find("timer_fire"), std::string::npos);
  EXPECT_NE(json.find("steal"), std::string::npos);
  EXPECT_NE(json.find("\"sched_delay_ns\":123"), std::string::npos);

  // Structural sanity: balanced brackets, no trailing-comma array endings.
  EXPECT_EQ(count_char(json, '{'), count_char(json, '}'));
  EXPECT_EQ(count_char(json, '['), count_char(json, ']'));
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
}

TEST_F(TraceCollectorTest, WakeEventsBecomeFlowEdges) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 64;
  Collector::instance().configure(cfg);
  Ring* w = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(w, nullptr);
  // ULT 7 wakes ULT 9 (parked on a mutex) at t=1000; 9 dispatches at t=2000.
  w->record(EventType::kUltWake, 1'000, 0, /*ult=*/9, /*waker=*/7,
            /*kind=*/1);
  w->record(EventType::kUltDispatch, 2'000, 0, 9, /*delay=*/1'000);
  w->record(EventType::kUltExit, 3'000, 0, 9);
  // A wake whose target never dispatches must NOT emit a dangling flow pair.
  w->record(EventType::kUltWake, 2'500, 0, /*ult=*/42, /*waker=*/9, 1);

  const std::string path = ::testing::TempDir() + "lpt_trace_flow.json";
  ASSERT_TRUE(Collector::instance().write_chrome_json(path));
  const std::string json = slurp(path);
  std::remove(path.c_str());

  // One flow-start + one flow-finish, bound by a shared id.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"waker\":7"), std::string::npos);
  std::size_t starts = 0;
  for (std::size_t pos = json.find("\"ph\":\"s\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"s\"", pos + 1))
    ++starts;
  EXPECT_EQ(starts, 1u);  // the never-dispatched wake drew no arrow
}

TEST_F(TraceCollectorTest, SnapshotEventsSortsAndTieBreaks) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 64;
  Collector::instance().configure(cfg);
  Ring* a = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  Ring* b = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Cross-ring interleaving plus a same-timestamp wake/dispatch pair: the
  // dispatch must sort after the wake so causal scans see ready-then-run.
  b->record(EventType::kUltDispatch, 500, 1, 3, 0);
  a->record(EventType::kUltWake, 500, 0, 3, 1, 1);
  a->record(EventType::kUltYield, 100, 0, 1);
  const std::vector<EventView> evs = Collector::instance().snapshot_events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].type, EventType::kUltYield);
  EXPECT_EQ(evs[1].type, EventType::kUltWake);
  EXPECT_EQ(evs[2].type, EventType::kUltDispatch);
}

TEST_F(TraceCollectorTest, EventsJsonlExportRoundTrips) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 64;
  Collector::instance().configure(cfg);
  Ring* w = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(w, nullptr);
  w->record(EventType::kUltWake, 1'000, 0, 9, 7, 8);
  w->record(EventType::kUltDispatch, 2'000, 0, 9, 1'000);

  const std::string path = ::testing::TempDir() + "lpt_trace_events.jsonl";
  ASSERT_TRUE(Collector::instance().write_events_jsonl(path));
  const std::string text = slurp(path);
  std::remove(path.c_str());

  // One JSON object per line, every field machine-recoverable.
  EXPECT_EQ(count_char(text, '\n'), 2u);
  EXPECT_NE(text.find("\"type\":\"ult_wake\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"ult_dispatch\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1000"), std::string::npos);
  EXPECT_NE(text.find("\"arg0\":7"), std::string::npos);
  EXPECT_NE(text.find("\"arg1\":8"), std::string::npos);
  EXPECT_NE(text.find("\"ult\":9"), std::string::npos);
}

TEST_F(TraceCollectorTest, ExportWithNoEventsReturnsFalse) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  Collector::instance().configure(cfg);
  EXPECT_FALSE(Collector::instance().write_chrome_json(
      ::testing::TempDir() + "lpt_trace_empty.json"));
}

TEST_F(TraceCollectorTest, UncommittedSlotsAreSkippedByExport) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  Collector::instance().configure(cfg);
  Ring* r = Collector::instance().acquire_ring(TrackKind::kWorkerKlt, -1);
  ASSERT_NE(r, nullptr);
  r->record(EventType::kUltYield, 100, 0, 1);
  r->record(EventType::kUltYield, 200, 0, 2);
  // Simulate a record interrupted before its commit store: un-commit slot 1
  // (a real interrupted write leaves the reserved slot's type at kNone).
  const_cast<Event&>(r->at(1)).type.store(0, std::memory_order_release);
  const std::string path = ::testing::TempDir() + "lpt_trace_skip.json";
  ASSERT_TRUE(Collector::instance().write_chrome_json(path));
  const std::string json = slurp(path);
  std::remove(path.c_str());
  // Only the committed slot exports; the torn slot is silently skipped.
  std::size_t n = 0;
  for (std::size_t pos = json.find("ult_yield"); pos != std::string::npos;
       pos = json.find("ult_yield", pos + 1))
    ++n;
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(json.find("\"none\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Env-var config resolution
// ---------------------------------------------------------------------------

class TraceEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    unsetenv("LPT_TRACE");
    unsetenv("LPT_TRACE_FILE");
    unsetenv("LPT_TRACE_RING_CAP");
    unsetenv("LPT_TRACE_EVENTS_FILE");
  }
};

TEST_F(TraceEnvTest, NoEnvPassesBaseThrough) {
  TraceConfig base;
  base.enabled = true;
  base.file = "x.json";
  base.ring_capacity = 42;
  const TraceConfig r = resolve_config(base);
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.file, "x.json");
  EXPECT_EQ(r.ring_capacity, 42u);
}

TEST_F(TraceEnvTest, Lpt_TraceEnablesAndDefaultsFile) {
  setenv("LPT_TRACE", "1", 1);
  const TraceConfig r = resolve_config({});
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.file, "lpt_trace.json");
}

TEST_F(TraceEnvTest, Lpt_TraceZeroOverridesProgrammaticEnable) {
  setenv("LPT_TRACE", "0", 1);
  TraceConfig base;
  base.enabled = true;
  EXPECT_FALSE(resolve_config(base).enabled);
}

TEST_F(TraceEnvTest, Lpt_TraceFileImpliesEnabled) {
  setenv("LPT_TRACE_FILE", "/tmp/t.json", 1);
  const TraceConfig r = resolve_config({});
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.file, "/tmp/t.json");
}

TEST_F(TraceEnvTest, Lpt_TraceEventsFileImpliesEnabled) {
  setenv("LPT_TRACE_EVENTS_FILE", "/tmp/ev.jsonl", 1);
  const TraceConfig r = resolve_config({});
  EXPECT_TRUE(r.enabled);
  EXPECT_EQ(r.events_file, "/tmp/ev.jsonl");
}

TEST_F(TraceEnvTest, RingCapOverride) {
  setenv("LPT_TRACE", "1", 1);
  setenv("LPT_TRACE_RING_CAP", "512", 1);
  EXPECT_EQ(resolve_config({}).ring_capacity, 512u);
}

}  // namespace
}  // namespace lpt::trace
