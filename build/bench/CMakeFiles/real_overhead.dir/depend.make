# Empty dependencies file for real_overhead.
# This may be replaced when dependencies are built.
