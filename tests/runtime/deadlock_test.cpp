// Tier-1 tests of deadlock detection & recovery (docs/robustness.md,
// "Deadlock detection & recovery"): the unified parking registry's waits-for
// graph, the watchdog-driven cycle detector, deadlock_break remediation,
// synchronous self-deadlock, abandoned-lock tracking with force-release, and
// a healthy-contention soak that must produce zero false positives. Cycle
// tests run under both preemption techniques — detection and breaking only
// touch parked (off-CPU) ULTs, so the technique must not matter.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

bool wait_until(const std::atomic<bool>& flag, std::int64_t timeout_ns) {
  const std::int64_t deadline = now_ns() + timeout_ns;
  while (!flag.load(std::memory_order_acquire)) {
    if (now_ns() > deadline) return false;
    usleep(1000);
  }
  return true;
}

RuntimeOptions deadlock_opts(int workers) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 2'000;
  o.watchdog_period_ms = 20;
  o.remediation = true;
  // deadlock_detection defaults on; abandon_release stays per-test.
  return o;
}

// ---------------------------------------------------------------------------
// Self-deadlock: caught synchronously at Mutex::lock(), no detector round
// trip — a 1-cycle counted in both deadlock_cycles and self_deadlocks.
// ---------------------------------------------------------------------------

TEST(Deadlock, SelfDeadlockMutexCaughtAtLock) {
  RuntimeOptions o = deadlock_opts(1);
  Runtime rt(o);

  Mutex m;
  Thread t = rt.spawn([&] {
    m.lock();
    m.lock();  // relocking our own mutex: terminated here, never returns
    ADD_FAILURE() << "relock of a held mutex must not return";
  });
  const ThreadStatus st = t.join_status();
  EXPECT_TRUE(st.completed);
  EXPECT_EQ(st.fault.kind, FaultKind::kDeadlock);

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.self_deadlocks, 1u);
  EXPECT_EQ(s.deadlock_cycles, 1u);
  EXPECT_EQ(s.remediations_deadlock_break, 0u);
  // The victim died holding m: that is an abandoned lock.
  EXPECT_EQ(s.abandoned_locks, 1u);
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kDeadlock), 1u);
}

TEST(Deadlock, SelfDeadlockRwLockWriteAfterWrite) {
  RuntimeOptions o = deadlock_opts(1);
  Runtime rt(o);

  RwLock rw;
  Thread t = rt.spawn([&] {
    rw.lock();
    rw.lock();
    ADD_FAILURE() << "write-after-write relock must not return";
  });
  EXPECT_EQ(t.join_status().fault.kind, FaultKind::kDeadlock);
  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.self_deadlocks, 1u);
  EXPECT_EQ(s.deadlock_cycles, 1u);
}

TEST(Deadlock, DisarmedRegistrySkipsSelfDeadlockCheck) {
  // LPT_DEADLOCK=0 semantics: no registry, no check — the historical hang.
  // Use try_lock to probe the owner-tracking state instead of hanging.
  RuntimeOptions o = deadlock_opts(1);
  o.deadlock_detection = false;
  Runtime rt(o);

  Mutex m;
  std::atomic<bool> relock_would_park{false};
  Thread t = rt.spawn([&] {
    m.lock();
    // With the registry disarmed the self-deadlock branch is off; verify via
    // try_lock (which fails on a held mutex) rather than actually parking.
    relock_would_park.store(!m.try_lock(), std::memory_order_release);
    m.unlock();
  });
  EXPECT_EQ(t.join_status().fault.kind, FaultKind::kNone);
  EXPECT_TRUE(relock_would_park.load());
  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.self_deadlocks, 0u);
  EXPECT_EQ(s.deadlock_cycles, 0u);
}

// ---------------------------------------------------------------------------
// Two-ULT mutex cycle, both techniques: detected, flagged with the full
// cycle, broken by cancelling the youngest member; the survivor completes
// because the victim's abandoned mutex is force-released.
// ---------------------------------------------------------------------------

void expect_two_cycle_broken(Preempt technique) {
  std::atomic<int> cycle_len_seen{0};
  std::atomic<std::uint32_t> victim_seen{0};
  RuntimeOptions o = deadlock_opts(2);
  o.abandon_release = true;  // the victim dies holding its first lock
  o.watchdog_callback = [&](const WatchdogReport& r) {
    if (r.kind == WatchdogReport::Kind::kDeadlock &&
        r.remediation == RemediationKind::kDeadlockBreak) {
      cycle_len_seen.store(r.cycle_len, std::memory_order_release);
      victim_seen.store(r.victim, std::memory_order_release);
    }
  };
  Runtime rt(o);

  Mutex m1, m2;
  std::atomic<bool> a_holds{false}, b_holds{false};
  ThreadAttrs attrs;
  attrs.preempt = technique;
  Thread a = rt.spawn(
      [&] {
        m1.lock();
        a_holds.store(true, std::memory_order_release);
        while (!b_holds.load(std::memory_order_acquire)) this_thread::yield();
        m2.lock();  // closes the cycle (or acquires after the break)
        m2.unlock();
        m1.unlock();
      },
      attrs);
  Thread b = rt.spawn(
      [&] {
        m2.lock();
        b_holds.store(true, std::memory_order_release);
        while (!a_holds.load(std::memory_order_acquire)) this_thread::yield();
        m1.lock();
        m1.unlock();
        m2.unlock();
      },
      attrs);

  const ThreadStatus sa = a.join_status();
  const ThreadStatus sb = b.join_status();
  // Exactly one member was cancelled as the victim; the other completed.
  const bool a_victim = sa.fault.kind == FaultKind::kDeadlock;
  const bool b_victim = sb.fault.kind == FaultKind::kDeadlock;
  EXPECT_NE(a_victim, b_victim)
      << "exactly one of the two ULTs must be the break victim";
  EXPECT_EQ((a_victim ? sb : sa).fault.kind, FaultKind::kNone)
      << "survivor must complete once the abandoned lock is released";

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.deadlock_cycles, 1u);
  EXPECT_EQ(s.remediations_deadlock_break, 1u);
  EXPECT_EQ(s.self_deadlocks, 0u);
  // The victim held one mutex when it died; release unwedged the survivor.
  EXPECT_EQ(s.abandoned_locks, 1u);
  EXPECT_EQ(s.abandoned_released, 1u);
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kDeadlock), 1u);
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kAbandonedLock), 1u);
  EXPECT_EQ(cycle_len_seen.load(), 2) << "report must name the full cycle";
  EXPECT_NE(victim_seen.load(), 0u);
}

TEST(Deadlock, TwoCycleMutexBrokenSignalYield) {
  expect_two_cycle_broken(Preempt::SignalYield);
}

TEST(Deadlock, TwoCycleMutexBrokenKltSwitch) {
  expect_two_cycle_broken(Preempt::KltSwitch);
}

// ---------------------------------------------------------------------------
// Three-ULT mixed cycle: mutex -> rwlock -> join -> mutex. The victim is the
// youngest member (C), which holds nothing — so breaking the cycle needs no
// abandoned-lock release and every other member completes normally.
// ---------------------------------------------------------------------------

void expect_three_cycle_mixed_broken(Preempt technique) {
  RuntimeOptions o = deadlock_opts(3);
  Runtime rt(o);

  Mutex m;
  RwLock rw;
  std::atomic<bool> a_holds{false}, b_holds{false}, c_spawned{false};
  std::atomic<int> c_fault{-1};
  Thread c;  // written by the main thread before c_spawned is released
  ThreadAttrs attrs;
  attrs.preempt = technique;

  // A: holds m, waits for rw (held by B).
  Thread a = rt.spawn(
      [&] {
        m.lock();
        a_holds.store(true, std::memory_order_release);
        while (!b_holds.load(std::memory_order_acquire)) this_thread::yield();
        rw.lock();
        rw.unlock();
        m.unlock();
      },
      attrs);
  // B: holds rw, waits for C via join.
  Thread b = rt.spawn(
      [&] {
        rw.lock();
        b_holds.store(true, std::memory_order_release);
        while (!c_spawned.load(std::memory_order_acquire)) this_thread::yield();
        c_fault.store(static_cast<int>(c.join_status().fault.kind),
                      std::memory_order_release);
        rw.unlock();
      },
      attrs);
  // C: waits for m (held by A). Youngest cycle member -> the break victim.
  c = rt.spawn(
      [&] {
        while (!a_holds.load(std::memory_order_acquire)) this_thread::yield();
        m.lock();
        ADD_FAILURE() << "C is the victim; its lock() must not succeed";
        m.unlock();
      },
      attrs);
  c_spawned.store(true, std::memory_order_release);

  EXPECT_EQ(a.join_status().fault.kind, FaultKind::kNone);
  EXPECT_EQ(b.join_status().fault.kind, FaultKind::kNone);
  EXPECT_EQ(c_fault.load(), static_cast<int>(FaultKind::kDeadlock))
      << "B's join must report the victim's deadlock fault";

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.deadlock_cycles, 1u);
  EXPECT_EQ(s.remediations_deadlock_break, 1u);
  EXPECT_EQ(s.self_deadlocks, 0u);
  EXPECT_EQ(s.abandoned_locks, 0u) << "the victim held nothing";
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kDeadlock), 1u);
}

TEST(Deadlock, ThreeCycleMixedBrokenSignalYield) {
  expect_three_cycle_mixed_broken(Preempt::SignalYield);
}

TEST(Deadlock, ThreeCycleMixedBrokenKltSwitch) {
  expect_three_cycle_mixed_broken(Preempt::KltSwitch);
}

// ---------------------------------------------------------------------------
// Healthy soak: heavy ordered lock contention plus rwlock and join traffic
// for 2 seconds must trip nothing — no cycles, no breaks, no abandonments.
// ---------------------------------------------------------------------------

TEST(Deadlock, HealthyContentionSoakZeroFalsePositives) {
  RuntimeOptions o = deadlock_opts(4);
  // Only the deadlock detector is under test. With 64 spinning ULTs on 4
  // workers and a 20 ms watchdog period, the worker-stall heuristic can fire
  // and its klt_replace remediation would cancel an innocent ULT; push its
  // threshold out of reach so a trip here can only come from the cycle DFS.
  o.watchdog_stall_ticks = 1'000'000;
  Runtime rt(o);

  constexpr int kUlts = 64;
  constexpr int kLocks = 8;
  Mutex locks[kLocks];
  RwLock table;
  std::atomic<bool> stop{false};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;

  std::vector<Thread> ts;
  ts.reserve(kUlts);
  for (int u = 0; u < kUlts; ++u) {
    ts.push_back(rt.spawn(
        [&, u] {
          unsigned seed = static_cast<unsigned>(u) * 2654435761u + 1;
          while (!stop.load(std::memory_order_acquire)) {
            seed = seed * 1664525u + 1013904223u;
            int i = static_cast<int>(seed % kLocks);
            int j = static_cast<int>((seed >> 8) % kLocks);
            if (i == j) j = (j + 1) % kLocks;
            if (i > j) std::swap(i, j);  // global order: deadlock-free
            locks[i].lock();
            locks[j].lock();
            busy_spin_ns(2'000);
            locks[j].unlock();
            locks[i].unlock();
            if ((seed & 7u) == 0) {
              table.lock_shared();
              busy_spin_ns(1'000);
              table.unlock_shared();
            } else if ((seed & 63u) == 1) {
              table.lock();
              busy_spin_ns(1'000);
              table.unlock();
            }
            this_thread::yield();
          }
        },
        attrs));
  }
  const std::int64_t deadline = now_ns() + 2'000'000'000;
  while (now_ns() < deadline) usleep(10'000);
  stop.store(true, std::memory_order_release);
  for (Thread& t : ts) EXPECT_EQ(t.join_status().fault.kind, FaultKind::kNone);

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.deadlock_cycles, 0u);
  EXPECT_EQ(s.self_deadlocks, 0u);
  EXPECT_EQ(s.remediations_deadlock_break, 0u);
  EXPECT_EQ(s.abandoned_locks, 0u);
  EXPECT_EQ(rt.watchdog_flags(WatchdogReport::Kind::kDeadlock), 0u);
  EXPECT_EQ(rt.watchdog_flags(WatchdogReport::Kind::kAbandonedLock), 0u);
}

// ---------------------------------------------------------------------------
// Abandoned-lock tracking: a directed cancel of a lock holder flags
// kAbandonedLock; with LPT_ABANDON_RELEASE the waiter behind it unwedges.
// ---------------------------------------------------------------------------

TEST(Deadlock, AbandonedLockFlaggedAndForceReleased) {
  RuntimeOptions o = deadlock_opts(2);
  o.abandon_release = true;
  Runtime rt(o);

  Mutex m;
  std::atomic<bool> holder_in{false}, waiter_in{false};
  Thread holder = rt.spawn([&] {
    m.lock();
    holder_in.store(true, std::memory_order_release);
    for (;;) this_thread::yield();  // cancellation point; never unlocks
  });
  ASSERT_TRUE(wait_until(holder_in, 2'000'000'000));
  Thread waiter = rt.spawn([&] {
    waiter_in.store(true, std::memory_order_release);
    m.lock();
    m.unlock();
  });
  ASSERT_TRUE(wait_until(waiter_in, 2'000'000'000));
  usleep(10'000);  // let the waiter park behind the holder

  EXPECT_TRUE(holder.request_cancel());
  EXPECT_EQ(holder.join_status().fault.kind, FaultKind::kCancelled);
  // Force-release hands the abandoned mutex to the parked waiter.
  EXPECT_EQ(waiter.join_status().fault.kind, FaultKind::kNone);

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.abandoned_locks, 1u);
  EXPECT_EQ(s.abandoned_released, 1u);
  EXPECT_EQ(s.deadlock_cycles, 0u) << "an abandoned lock is not a cycle";
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kAbandonedLock), 1u);
}

TEST(Deadlock, AbandonedLockWithoutReleaseOnlyFlags) {
  // Default LPT_ABANDON_RELEASE=0: the flag and counter fire, the lock stays
  // wedged (the documented degraded mode). Probed with try_lock_for so the
  // test itself never wedges.
  RuntimeOptions o = deadlock_opts(2);
  ASSERT_FALSE(o.abandon_release) << "force-release must be opt-in";
  Runtime rt(o);

  Mutex m;
  std::atomic<bool> holder_in{false};
  Thread holder = rt.spawn([&] {
    m.lock();
    holder_in.store(true, std::memory_order_release);
    for (;;) this_thread::yield();
  });
  ASSERT_TRUE(wait_until(holder_in, 2'000'000'000));
  EXPECT_TRUE(holder.request_cancel());
  EXPECT_EQ(holder.join_status().fault.kind, FaultKind::kCancelled);

  std::atomic<bool> got{false};
  Thread prober = rt.spawn([&] {
    got.store(m.try_lock_for(std::chrono::milliseconds(100)),
              std::memory_order_release);
  });
  EXPECT_EQ(prober.join_status().fault.kind, FaultKind::kNone);
  EXPECT_FALSE(got.load()) << "without force-release the lock stays wedged";

  const Runtime::Stats s = rt.stats();
  EXPECT_EQ(s.abandoned_locks, 1u);
  EXPECT_EQ(s.abandoned_released, 0u);
  EXPECT_GE(rt.watchdog_flags(WatchdogReport::Kind::kAbandonedLock), 1u);
}

// ---------------------------------------------------------------------------
// Env knobs: LPT_DEADLOCK / LPT_ABANDON_RELEASE / LPT_DEADLOCK_PERIODS are
// validated reject-and-warn like every other option (malformed values are
// reported to stderr and ignored, never aborting startup).
// ---------------------------------------------------------------------------

TEST(DeadlockOptions, EnvKnobsValidatedRejectAndWarn) {
  ::setenv("LPT_DEADLOCK", "0", 1);
  ::setenv("LPT_ABANDON_RELEASE", "1", 1);
  ::setenv("LPT_DEADLOCK_PERIODS", "5", 1);
  RuntimeOptions o = resolve_env_options(RuntimeOptions{});
  EXPECT_FALSE(o.deadlock_detection);
  EXPECT_TRUE(o.abandon_release);
  EXPECT_EQ(o.deadlock_periods, 5);

  ::setenv("LPT_DEADLOCK", "on", 1);
  ::setenv("LPT_ABANDON_RELEASE", "off", 1);
  o = resolve_env_options(RuntimeOptions{});
  EXPECT_TRUE(o.deadlock_detection);
  EXPECT_FALSE(o.abandon_release);

  // Malformed cadence values: warned about and ignored, default kept.
  for (const char* bad : {"banana", "0", "-3", "5x"}) {
    ::setenv("LPT_DEADLOCK_PERIODS", bad, 1);
    o = resolve_env_options(RuntimeOptions{});
    EXPECT_EQ(o.deadlock_periods, 1) << "LPT_DEADLOCK_PERIODS='" << bad << "'";
  }

  ::unsetenv("LPT_DEADLOCK");
  ::unsetenv("LPT_ABANDON_RELEASE");
  ::unsetenv("LPT_DEADLOCK_PERIODS");
}

}  // namespace
}  // namespace lpt
