// Ablation: the KLT-switching optimizations of §3.3 in isolation, plus the
// preemption-interval vs cache-locality trade-off of §4.1 on the Cholesky
// workload ("larger timer intervals achieve better performance because short
// preemption intervals incur non-negligible cache misses").
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/workloads/cholesky_dag.hpp"
#include "sim/workloads/compute_loop.hpp"

using namespace lpt;
using namespace lpt::sim;

int main(int argc, char** argv) {
  const CostModel cm = CostModel::skylake();
  bench::JsonReport json("ablation_kltsw");

  // --- §3.3 optimization ladder at a fixed 1 ms interval -------------------
  std::printf("=== Ablation: KLT-switching optimization ladder (1 ms) ===\n\n");
  Fig6Config cfg;
  cfg.workers = cm.num_cores;
  cfg.interval = 1'000'000;
  const double naive = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchNaive);
  const double futex = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchFutex);
  const double local = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchFutexLocal);

  Table ladder({"configuration", "overhead", "gain vs naive"});
  ladder.add_row({"sigsuspend + global pool (naive)",
                  Table::fmt("%.2f%%", naive * 100), "1.00x"});
  ladder.add_row({"+ futex suspend/resume (§3.3.1)",
                  Table::fmt("%.2f%%", futex * 100),
                  Table::fmt("%.2fx", naive / futex)});
  ladder.add_row({"+ worker-local KLT pools (§3.3.2)",
                  Table::fmt("%.2f%%", local * 100),
                  Table::fmt("%.2fx", naive / local)});
  ladder.print();
  std::printf("\n  [%s] the two optimizations together give ~2x "
              "(paper: \"approximately two times\"): %.2fx\n",
              (naive / local > 1.5 && naive / local < 3.5) ? "OK" : "MISMATCH",
              naive / local);
  json.set("ladder.naive.overhead_pct", naive * 100);
  json.set("ladder.futex.overhead_pct", futex * 100);
  json.set("ladder.futex_local.overhead_pct", local * 100);
  json.set("ladder.gain_naive_over_futex_local", naive / local);

  // --- §4.1 interval/cache trade-off ---------------------------------------
  std::printf("\n=== Ablation: preemption interval vs cache refill "
              "(Cholesky 16x16) ===\n\n");
  Table tr({"interval", "GFLOPS (refill 40us)", "GFLOPS (no refill)"});
  double g1 = 0, g10 = 0, g1_nr = 0, g10_nr = 0;
  for (Time iv : {1'000'000LL, 2'000'000LL, 5'000'000LL, 10'000'000LL,
                  20'000'000LL}) {
    CholeskyConfig cc;
    cc.tiles = 16;
    cc.interval = iv;
    cc.cache_refill = 40'000;
    const double g = run_cholesky(cm, cc, CholeskyRuntime::kBoltPreemptive).gflops;
    cc.cache_refill = 0;
    const double gn =
        run_cholesky(cm, cc, CholeskyRuntime::kBoltPreemptive).gflops;
    const std::string skey = std::to_string(iv / 1'000'000) + "ms";
    json.set("interval." + skey + ".gflops_refill", g);
    json.set("interval." + skey + ".gflops_no_refill", gn);
    if (iv == 1'000'000) {
      g1 = g;
      g1_nr = gn;
    }
    if (iv == 10'000'000) {
      g10 = g;
      g10_nr = gn;
    }
    tr.add_row({Table::fmt("%5.0f ms", iv / 1e6), Table::fmt("%7.0f", g),
                Table::fmt("%7.0f", gn)});
  }
  tr.print();
  std::printf("\n  [%s] with cache refill modelled, larger intervals win "
              "(10 ms %.0f vs 1 ms %.0f GFLOPS)\n",
              g10 > g1 ? "OK" : "MISMATCH", g10, g1);
  std::printf("  [%s] without the locality penalty the interval matters far "
              "less (10 ms %+0.1f%% vs 1 ms)\n",
              (g10_nr / g1_nr - 1) < 0.5 * (g10 / g1 - 1) + 0.01 ? "OK"
                                                                 : "MISMATCH",
              (g10_nr / g1_nr - 1) * 100);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
