file(REMOVE_RECURSE
  "CMakeFiles/lpt_sim.dir/sim/cost_model.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/timers.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/timers.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/ult_model.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/ult_model.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/workloads/cholesky_dag.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/workloads/cholesky_dag.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/workloads/compute_loop.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/workloads/compute_loop.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/workloads/insitu_md.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/workloads/insitu_md.cpp.o.d"
  "CMakeFiles/lpt_sim.dir/sim/workloads/packing_bsp.cpp.o"
  "CMakeFiles/lpt_sim.dir/sim/workloads/packing_bsp.cpp.o.d"
  "liblpt_sim.a"
  "liblpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
