// Runtime-side recording helpers for the continuous profiler
// (docs/observability.md, "Profiling") — the only header runtime .cpp files
// use to attribute off-CPU waits. Every parking site brackets its
// suspend_block() call with offcpu_begin()/offcpu_end(); the begin tags the
// ThreadCtl with a wait kind + callsite, the end (running again, possibly on
// a different KLT) records the block→resume time. Both compile to nothing
// under LPT_PROF_DISABLED and cost one relaxed flag load when profiling is
// off.
#pragma once

#include "prof/prof.hpp"
#include "runtime/instrument.hpp"
#include "runtime/thread.hpp"

namespace lpt::prof {

/// Tag `self` as about to park on `kind` at `site` (the caller PC of the
/// public primitive, from __builtin_return_address(0)). Call just before the
/// path that may suspend; cheap enough to call even when the fast path then
/// avoids blocking — only a matching offcpu_end() records anything.
inline void offcpu_begin(ThreadCtl* self, WaitKind kind, void* site) {
  if (self == nullptr) return;
  // The kind tag is written even when the profiler is off: the causal
  // tracer's kUltWake edges label the woken thread with what it was parked
  // under (docs/observability.md, "Causal tracing & scheduling delay"). Two
  // plain stores; the clock read stays profiler-gated.
  self->prof_wait_kind = kind;
  self->prof_wait_site = reinterpret_cast<std::uintptr_t>(site);
  if (offcpu_on()) self->prof_wait_start_ns = trace::now_ns();
}

/// Drop the tag without recording (the fast path did not block after all).
inline void offcpu_cancel(ThreadCtl* self) {
  if (self != nullptr) self->prof_wait_kind = WaitKind::kNone;
}

/// Record the completed wait tagged by offcpu_begin(). Call after
/// suspend_block() returns (the thread is running again); no-op when no tag
/// is pending or the collector is off.
inline void offcpu_end(ThreadCtl* self) {
  if (self == nullptr || self->prof_wait_kind == WaitKind::kNone) return;
  const WaitKind kind = self->prof_wait_kind;
  self->prof_wait_kind = WaitKind::kNone;
  if (!offcpu_on()) return;
  const std::int64_t ns = trace::now_ns() - self->prof_wait_start_ns;
  record_wait(kind, self->prof_wait_site, ns);
  LPT_TRACE_EVENT(trace::EventType::kOffcpuWait, self->trace_id,
                  static_cast<std::uint64_t>(ns < 0 ? 0 : ns),
                  static_cast<std::uint64_t>(kind));
}

}  // namespace lpt::prof
