file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_sched.dir/runtime/runtime_sched_test.cpp.o"
  "CMakeFiles/test_runtime_sched.dir/runtime/runtime_sched_test.cpp.o.d"
  "test_runtime_sched"
  "test_runtime_sched.pdb"
  "test_runtime_sched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
