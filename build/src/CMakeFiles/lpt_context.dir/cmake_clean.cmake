file(REMOVE_RECURSE
  "CMakeFiles/lpt_context.dir/context/context.cpp.o"
  "CMakeFiles/lpt_context.dir/context/context.cpp.o.d"
  "CMakeFiles/lpt_context.dir/context/context_x8664.S.o"
  "CMakeFiles/lpt_context.dir/context/stack.cpp.o"
  "CMakeFiles/lpt_context.dir/context/stack.cpp.o.d"
  "liblpt_context.a"
  "liblpt_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/lpt_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
