#include "runtime/sync.hpp"

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "runtime/internal.hpp"

namespace lpt {

namespace {

ThreadCtl* require_ult(const char* what) {
  ThreadCtl* self = detail::current_ult_or_null();
  LPT_CHECK_MSG(self != nullptr, what);
  return self;
}

void make_ready(ThreadCtl* t) {
  Runtime* rt = t->rt;
  t->store_state(ThreadState::kReady);
  Worker* hint = worker_tls()->worker;  // may be null (external thread)
  rt->scheduler().enqueue(t, hint, EnqueueKind::kUnblock);
  rt->notify_work();
}

}  // namespace

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

void Mutex::lock() {
  ThreadCtl* self = require_ult("lpt::Mutex::lock outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  if (!locked_) {
    locked_ = true;
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  // Direct handoff: unlock() keeps `locked_` set and wakes us as the owner.
  detail::suspend_block(self, &guard_, nullptr);
  detail::end_no_preempt(self);
}

bool Mutex::try_lock() {
  ThreadCtl* self = require_ult("lpt::Mutex::try_lock outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  const bool got = !locked_;
  if (got) locked_ = true;
  guard_.unlock();
  detail::end_no_preempt(self);
  return got;
}

void Mutex::unlock() {
  // Callable from ULT context and from the scheduler (condvar-wait release).
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  guard_.lock();
  LPT_CHECK_MSG(locked_, "unlock of unowned lpt::Mutex");
  if (waiters_.empty()) {
    locked_ = false;
    guard_.unlock();
    detail::end_no_preempt(self);
    return;
  }
  ThreadCtl* next = waiters_.front();
  waiters_.erase(waiters_.begin());
  guard_.unlock();  // `locked_` stays true: ownership passes to `next`
  make_ready(next);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

void CondVar::wait(Mutex& m) {
  ThreadCtl* self = require_ult("lpt::CondVar::wait outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  waiters_.push_back(self);
  // The scheduler releases guard_ and *then* m after our context is saved,
  // so a signaler can neither miss us nor wake us before we are suspended.
  detail::suspend_block(self, &guard_, &m);
  detail::end_no_preempt(self);
  m.lock();
}

void CondVar::notify_one() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  ThreadCtl* t = nullptr;
  {
    SpinlockGuard g(guard_);
    if (!waiters_.empty()) {
      t = waiters_.front();
      waiters_.erase(waiters_.begin());
    }
  }
  if (t != nullptr) make_ready(t);
  detail::end_no_preempt(self);
}

void CondVar::notify_all() {
  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  std::vector<ThreadCtl*> ts;
  {
    SpinlockGuard g(guard_);
    ts.swap(waiters_);
  }
  for (ThreadCtl* t : ts) make_ready(t);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

Barrier::Barrier(int parties) : parties_(parties) {
  LPT_CHECK(parties >= 1);
  waiters_.reserve(parties);
}

void Barrier::arrive_and_wait() {
  ThreadCtl* self = require_ult("lpt::Barrier outside ULT context");
  detail::begin_no_preempt(self);
  guard_.lock();
  if (++arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    std::vector<ThreadCtl*> ts;
    ts.swap(waiters_);
    guard_.unlock();
    for (ThreadCtl* t : ts) make_ready(t);
    detail::end_no_preempt(self);
    return;
  }
  waiters_.push_back(self);
  detail::suspend_block(self, &guard_, nullptr);
  detail::end_no_preempt(self);
}

// ---------------------------------------------------------------------------
// BusyFlag
// ---------------------------------------------------------------------------

void BusyFlag::wait(WaitMode mode) const {
  while (!is_set()) {
    if (mode == WaitMode::kSpinWithYield) {
      this_thread::yield();
    } else {
      for (int i = 0; i < 64; ++i) cpu_pause();
    }
  }
}

}  // namespace lpt
