// Worker: the schedulable entity of the M:N model. In signal-yield mode a
// worker is pinned to one KLT; with KLT-switching the worker is *virtual*
// and remaps across KLTs (paper Fig 1b).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cpu.hpp"
#include "common/futex.hpp"
#include "common/metrics.hpp"
#include "common/spinlock.hpp"
#include "common/trace.hpp"
#include "context/context.hpp"
#include "context/stack.hpp"
#include "runtime/options.hpp"

#include <ctime>

namespace lpt {

class Runtime;
struct ThreadCtl;
struct KltCtl;
class Mutex;

/// Deferred action a suspending context leaves for the scheduler. The
/// suspender must not be enqueued/finalized before its register state is
/// saved, so the *scheduler* performs the action right after the switch.
enum class PostKind : std::uint8_t {
  kNone,
  kYield,              ///< voluntary yield → re-enqueue
  kPreemptSignalYield, ///< handler switched away → re-enqueue as preempted
  kPreemptKltSwitch,   ///< handler parked the KLT → re-enqueue as preempted
  kBlock,              ///< suspended on a sync primitive; finalize locks
  kExit,               ///< thread function finished; recycle and wake joiners
  kFault,              ///< fault isolation abandoned the thread; quarantine
                       ///< its stack, mark kFailed, wake joiners
};

struct PostAction {
  PostKind kind = PostKind::kNone;
  ThreadCtl* thread = nullptr;
  Spinlock* release_lock = nullptr;  ///< unlocked after the context is saved
  Mutex* release_mutex = nullptr;    ///< ditto (condvar wait path)
};

struct alignas(kCacheLineSize) Worker {
  Runtime* rt = nullptr;
  int rank = -1;

  /// Scheduler context on a dedicated stack (it must migrate across KLTs
  /// under KLT-switching, so it cannot live on any pthread's native stack).
  Context sched_ctx;
  Stack sched_stack;

  /// Currently running ULT and a raced-but-safe copy of its preemption mode
  /// (timer threads read the mode without dereferencing the ULT).
  std::atomic<ThreadCtl*> current_ult{nullptr};
  std::atomic<std::uint8_t> current_preempt{
      static_cast<std::uint8_t>(Preempt::None)};

  /// Kernel thread currently hosting this worker, and its tid (targets for
  /// pthread_kill / SIGEV_THREAD_ID).
  std::atomic<KltCtl*> current_klt{nullptr};
  std::atomic<pid_t> current_tid{0};

  /// Ownership token for the scheduler context (docs/robustness.md
  /// "Self-healing"). While a ULT runs, holds the hosting KltCtl*; nullptr
  /// while the scheduler owns the context or a claim is in flight. Every
  /// path that re-enters sched_ctx from ULT context must claim the token
  /// with compare_exchange(my_klt -> nullptr); the watchdog's forced KLT
  /// replacement claims it the same way. A failed claim on the ULT side
  /// means this KLT was orphaned by a forced replacement — it must not touch
  /// the worker again (suspension primitives exit via orphan path, handlers
  /// return / chain).
  std::atomic<KltCtl*> host_token{nullptr};

  PostAction post;

  // -- blocking-syscall state word (docs/robustness.md, "Blocking-syscall
  // resilience"). Published by lpt::io::blocking_region, read by the
  // watchdog's wedge sentinel. --
  /// Odd while the hosted ULT sits inside an annotated blocking syscall.
  /// Each region entry increments even→odd, each exit odd→even, so one epoch
  /// value names one region instance: the sentinel compensates a given epoch
  /// at most once, and a stale age can never flag a newer region.
  std::atomic<std::uint64_t> syscall_epoch{0};
  /// Region entry timestamp; written before the epoch turns odd, valid only
  /// while it is odd.
  std::atomic<std::int64_t> syscall_enter_ns{0};
  /// Last (odd) epoch the sentinel activated a compensating KLT for. The
  /// region exit compares this against its own epoch to learn it lost its
  /// host token to a compensation and must take the reabsorption path.
  std::atomic<std::uint64_t> syscall_compensated_epoch{0};

  /// Futex word for idle sleep and thread-packing parking.
  std::atomic<std::uint32_t> wake_word{0};
  std::atomic<bool> parked{false};

  /// POSIX per-worker timer (TimerKind::PosixPerWorker).
  timer_t posix_timer{};
  bool posix_timer_armed = false;
  pid_t posix_timer_tid = 0;

  // -- graceful degradation (docs/robustness.md) --
  /// Total timer_create/timer_settime failures observed by this worker.
  int posix_timer_failures = 0;
  /// This worker's preemption ticks come from the fallback monitor thread
  /// instead of its (failed) POSIX timer. Read by the fallback timer to
  /// signal only degraded workers; sticky until shutdown.
  std::atomic<bool> posix_timer_degraded{false};
  /// Arm attempts per maybe_rearm_posix_timer() call before degrading. The
  /// retries happen in-call so a worker is armed or degraded before it
  /// dispatches — never silently unpreemptible.
  static constexpr int kPosixTimerFailLimit = 3;
  /// Degrade this worker to monitor-thread delivery (sticky).
  void note_posix_timer_failure();

  /// Always-on counters and the sampled state marker (common/metrics.hpp).
  /// Scheduler-context sites use the store-based Counter members; the
  /// preemption handler and timer threads write only the AtomicCounter ones.
  /// Runtime::stats() and metrics_snapshot() both aggregate from here.
  metrics::WorkerMetrics metrics;

  // -- tracing (see docs/observability.md) --
  /// Timestamp of the last preemption signal sent at this worker (written by
  /// the timer/forwarding sender, consumed by the handler to compute the
  /// fire→handler-entry delivery latency). 0 = consumed / none.
  std::atomic<std::int64_t> preempt_sent_ns{0};
  /// Signal-safe log2 latency histograms, merged into Runtime::Stats.
  trace::LatencyHistogram hist_delivery;   ///< signal send → handler entry
  trace::LatencyHistogram hist_resched;    ///< preemption → next dispatch
  trace::LatencyHistogram hist_klt_trip;   ///< KLT suspend → resume round trip
  /// Per-pool scheduling-delay accounting (pool == worker rank; a stolen ULT
  /// is attributed to the pool that *dispatched* it, which is where the wait
  /// ended). Recorded at dispatch while the tracer is armed; exported as
  /// native Prometheus histograms and merged into Runtime::Stats.
  trace::LatencyHistogram hist_sched_delay;    ///< ready → dispatch
  trace::LatencyHistogram hist_spawn_latency;  ///< spawn → first dispatch

  /// Body of the scheduler context: pick/run loop until runtime shutdown.
  void scheduler_loop();

 private:
  void run(ThreadCtl* t);
  void run_resume_bound(ThreadCtl* t);  ///< KLT-switching resume protocol
  /// Dispatch trace event + preempt→reschedule histogram sample.
  void trace_dispatch(ThreadCtl* t);
  void process_post_action();
  void idle_backoff(int& failures);
  void park_for_packing();
  /// (Re)target the POSIX per-worker timer at `tid` (0 = current host KLT).
  void maybe_rearm_posix_timer(pid_t tid = 0);
};

/// Per-KLT runtime state. Accessed from the preemption signal handler, so it
/// lives in initial-exec TLS (async-signal-safe, no lazy allocation) and is
/// only reached through the non-inlined accessor below — a ULT may resume on
/// a different KLT after a switch, and the address must be re-derived.
struct WorkerTls {
  Worker* worker = nullptr;
  KltCtl* klt = nullptr;
  /// The ULT physically hosted on *this* KLT. Usually equal to
  /// worker->current_ult, but after a forced KLT replacement the worker's
  /// current_ult moves on with the new host while the orphaned KLT still
  /// carries its old ULT — identity must come from here, not the worker.
  ThreadCtl* hosted_ult = nullptr;
  /// True only while ULT code is running on this KLT (or a handler is about
  /// to return into it). The handler preempts nothing when false, which
  /// makes the scheduler's pre-switch window safe by construction.
  volatile bool in_ult = false;
  /// NoPreemptGuard nesting depth; handler defers preemption while > 0.
  volatile int no_preempt_depth = 0;
  volatile bool preempt_pending = false;
  /// This OS thread's trace ring (nullptr when tracing is off). Set once at
  /// thread startup; read from the signal handler via worker_tls().
  trace::Ring* trace_ring = nullptr;
  /// Collector::config_epoch() at the time trace_ring was acquired. External
  /// threads outlive Runtimes, and each configure() frees the old slab — the
  /// epoch check makes them re-acquire instead of writing through a dangling
  /// pointer (runtime-owned threads never see a reconfigure).
  std::uint64_t trace_ring_epoch = 0;
  /// This OS thread's on-CPU sample ring (nullptr when the profiler is off).
  /// Same lifecycle and signal-safety rules as trace_ring.
  prof::SampleRing* prof_ring = nullptr;
};

/// Never inlined: re-derives the TLS address every call.
WorkerTls* worker_tls();

}  // namespace lpt
