// Kernel signal-delivery model. The paper's Fig 4 behaviour hinges on one
// mechanism: "calling a signal handler involves taking a lock in the kernel,
// thus causing lock contention when multiple signals are issued at the same
// time" (§3.2.1). We model that lock as a single serial resource.
#pragma once

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"

namespace lpt::sim {

class SignalSubsystem {
 public:
  SignalSubsystem(const CostModel& cm) : cm_(cm) {}

  /// A signal is issued at time `t` to some kernel thread. Returns the time
  /// at which the *handler body* may run on the target: the delivery first
  /// serializes on the kernel lock, then pays the fixed handler entry cost.
  /// The interrupted thread is stopped for the whole window [t, result].
  Time deliver(Time t) {
    const Time start = t > lock_free_at_ ? t : lock_free_at_;
    lock_free_at_ = start + cm_.kernel_lock;
    return start + cm_.signal_handler;
  }

  /// Interruption time as Fig 4 measures it: stop-to-handler-complete.
  Time interruption_cost(Time t) { return deliver(t) - t; }

  void reset() { lock_free_at_ = 0; }

 private:
  const CostModel& cm_;
  Time lock_free_at_ = 0;
};

}  // namespace lpt::sim
