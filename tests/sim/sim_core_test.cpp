#include <gtest/gtest.h>

#include <memory>

#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/script_thread.hpp"
#include "sim/signal_subsys.hpp"
#include "sim/timers.hpp"
#include "sim/ult_model.hpp"

namespace lpt::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.schedule(30, [&] { order.push_back(3); });
  eq.schedule(10, [&] { order.push_back(1); });
  eq.schedule(20, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) eq.schedule(7, [&, i] { order.push_back(i); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) eq.schedule_after(5, tick);
  };
  eq.schedule(0, tick);
  eq.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(eq.now(), 45);
}

TEST(EventQueue, RunHonorsLimit) {
  EventQueue eq;
  for (int i = 0; i < 10; ++i) eq.schedule(i, [] {});
  EXPECT_EQ(eq.run(4), 4u);
  EXPECT_EQ(eq.pending(), 6u);
}

// ---------------------------------------------------------------------------
// Signal subsystem (kernel-lock contention)
// ---------------------------------------------------------------------------

TEST(SignalSubsystem, UncontendedDeliveryCostsHandlerOnly) {
  CostModel cm = CostModel::skylake();
  SignalSubsystem sig(cm);
  EXPECT_EQ(sig.interruption_cost(1'000'000), cm.signal_handler);
}

TEST(SignalSubsystem, SimultaneousDeliveriesSerializeOnKernelLock) {
  CostModel cm = CostModel::skylake();
  SignalSubsystem sig(cm);
  const Time c0 = sig.interruption_cost(0);
  const Time c1 = sig.interruption_cost(0);
  const Time c2 = sig.interruption_cost(0);
  EXPECT_EQ(c0, cm.signal_handler);
  EXPECT_EQ(c1, cm.signal_handler + cm.kernel_lock);
  EXPECT_EQ(c2, cm.signal_handler + 2 * cm.kernel_lock);
}

TEST(SignalSubsystem, SpacedDeliveriesDoNotContend) {
  CostModel cm = CostModel::skylake();
  SignalSubsystem sig(cm);
  EXPECT_EQ(sig.interruption_cost(0), cm.signal_handler);
  EXPECT_EQ(sig.interruption_cost(1'000'000), cm.signal_handler);
}

// ---------------------------------------------------------------------------
// Fig 4 shapes
// ---------------------------------------------------------------------------

TEST(TimerModel, NaivePerWorkerGrowsLinearlyWithWorkers) {
  CostModel cm = CostModel::skylake();
  const double m1 =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerCreationTime, 1,
                                1'000'000, 50)
          .mean();
  const double m56 =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerCreationTime, 56,
                                1'000'000, 50)
          .mean();
  const double m100 =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerCreationTime, 100,
                                1'000'000, 50)
          .mean();
  EXPECT_GT(m56, 10.0 * m1);   // strong growth
  EXPECT_GT(m100, 1.5 * m56);  // keeps growing
  // Paper anchor: ~100 µs at large core counts.
  EXPECT_GT(m100, 30'000.0);
  EXPECT_LT(m100, 300'000.0);
}

TEST(TimerModel, AlignedPerWorkerStaysFlat) {
  CostModel cm = CostModel::skylake();
  const double m1 =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerAligned, 1,
                                1'000'000, 50)
          .mean();
  const double m100 =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerAligned, 100,
                                1'000'000, 50)
          .mean();
  EXPECT_NEAR(m100, m1, 0.25 * m1);
}

TEST(TimerModel, ChainStaysFlatSlightlyAboveAligned) {
  CostModel cm = CostModel::skylake();
  const double aligned =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerAligned, 56,
                                1'000'000, 50)
          .mean();
  const double chain =
      measure_interruption_time(cm, TimerStrategy::kProcessChain, 56,
                                1'000'000, 50)
          .mean();
  const double chain100 =
      measure_interruption_time(cm, TimerStrategy::kProcessChain, 100,
                                1'000'000, 50)
          .mean();
  EXPECT_GT(chain, aligned);          // §3.2.2: slightly worse than aligned
  EXPECT_LT(chain, 3.0 * aligned);    // but the same order — flat
  EXPECT_NEAR(chain100, chain, 0.25 * chain);  // flat in worker count
}

TEST(TimerModel, OneToAllGrowsButLessThanNaive) {
  CostModel cm = CostModel::skylake();
  const double naive =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerCreationTime, 100,
                                1'000'000, 50)
          .mean();
  const double one2all =
      measure_interruption_time(cm, TimerStrategy::kProcessOneToAll, 100,
                                1'000'000, 50)
          .mean();
  const double one2all_small =
      measure_interruption_time(cm, TimerStrategy::kProcessOneToAll, 4,
                                1'000'000, 50)
          .mean();
  EXPECT_GT(one2all, 4.0 * one2all_small);  // linear-ish growth
  EXPECT_LT(one2all, naive);                // below the naive line (Fig 4)
}

// ---------------------------------------------------------------------------
// ULT engine basics
// ---------------------------------------------------------------------------

SimUltOptions basic_opts(int workers) {
  SimUltOptions o;
  o.num_workers = workers;
  o.timer = TimerStrategy::kNone;
  return o;
}

TEST(UltEngine, SingleComputeThreadFinishes) {
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(1));
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(1'000'000)}));
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  // compute + dispatch context switch
  EXPECT_GE(makespan, 1'000'000);
  EXPECT_LT(makespan, 1'100'000);
}

TEST(UltEngine, ParallelThreadsUseAllWorkers) {
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(4));
  for (int i = 0; i < 4; ++i)
    rt.spawn(std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(1'000'000)}));
  const Time makespan = rt.run();
  EXPECT_LT(makespan, 2'000'000);  // ran concurrently, not serially
}

TEST(UltEngine, MoreThreadsThanWorkersSerializeCorrectly) {
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(2));
  for (int i = 0; i < 6; ++i)
    rt.spawn(std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(1'000'000)}));
  const Time makespan = rt.run();
  EXPECT_GE(makespan, 3'000'000);  // 6 x 1ms over 2 workers
  EXPECT_LT(makespan, 3'200'000);
}

TEST(UltEngine, SpawnDuringRunIsPickedUp) {
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(2));
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(500'000)},
      [](SimUltRuntime& r) {
        r.spawn(std::make_unique<ScriptThread>(
            std::vector<SimAction>{SimAction::compute(500'000)}));
      }));
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_GE(makespan, 1'000'000);
  EXPECT_EQ(rt.threads_finished(), 2);
}

TEST(UltEngine, BusyWaitPairDeadlocksWithoutPreemption) {
  // The §4.1 scenario in miniature: 1 worker, spinner first in queue.
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(1));
  auto flag = std::make_unique<SimFlag>();
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::wait(flag.get(), WaitMode::kSpin)}));
  SimFlag* f = flag.get();
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(1000)},
      [f](SimUltRuntime& r) { f->set(r); }));
  rt.run();
  EXPECT_TRUE(rt.deadlocked());
}

TEST(UltEngine, BusyWaitPairCompletesWithSignalYieldPreemption) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o = basic_opts(1);
  o.timer = TimerStrategy::kPerWorkerAligned;
  o.interval = 1'000'000;
  SimUltRuntime rt(cm, o);
  auto flag = std::make_unique<SimFlag>();
  SimFlag* f = flag.get();
  auto spinner = std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::wait(f, WaitMode::kSpin)});
  spinner->preempt = SimPreempt::kSignalYield;
  rt.spawn(std::move(spinner));
  auto setter = std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(1000)},
      [f](SimUltRuntime& r) { f->set(r); });
  setter->preempt = SimPreempt::kSignalYield;
  rt.spawn(std::move(setter));
  rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(UltEngine, BusyWaitPairCompletesWithYieldingWait) {
  // The "reverse-engineered MKL" hack works without any preemption.
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(1));
  auto flag = std::make_unique<SimFlag>();
  SimFlag* f = flag.get();
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::wait(f, WaitMode::kSpinYield)}));
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(1000)},
      [f](SimUltRuntime& r) { f->set(r); }));
  rt.run();
  EXPECT_FALSE(rt.deadlocked());
}

TEST(UltEngine, BlockingWaitReleasesWorker) {
  CostModel cm = CostModel::skylake();
  SimUltRuntime rt(cm, basic_opts(1));
  auto flag = std::make_unique<SimFlag>();
  SimFlag* f = flag.get();
  rt.spawn(std::make_unique<ScriptThread>(std::vector<SimAction>{
      SimAction::wait(f, WaitMode::kBlock), SimAction::compute(1000)}));
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(500'000)},
      [f](SimUltRuntime& r) { f->set(r); }));
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_GE(makespan, 500'000);
}

TEST(UltEngine, KltSwitchPreemptionCreatesKltsOnDemand) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o = basic_opts(1);
  o.timer = TimerStrategy::kPerWorkerAligned;
  o.interval = 500'000;
  SimUltRuntime rt(cm, o);
  auto flag = std::make_unique<SimFlag>();
  SimFlag* f = flag.get();
  auto spinner = std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::wait(f, WaitMode::kSpin)});
  spinner->preempt = SimPreempt::kKltSwitch;
  rt.spawn(std::move(spinner));
  auto setter = std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(1000)},
      [f](SimUltRuntime& r) { f->set(r); });
  setter->preempt = SimPreempt::kKltSwitch;
  rt.spawn(std::move(setter));
  rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_GE(rt.klts_created(), 1u);
}

TEST(UltEngine, TimerInterruptionOnlyNeverPreempts) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o = basic_opts(2);
  o.timer = TimerStrategy::kPerWorkerAligned;
  o.interval = 100'000;
  o.timer_interruption_only = true;
  SimUltRuntime rt(cm, o);
  for (int i = 0; i < 2; ++i) {
    auto t = std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(5'000'000)});
    t->preempt = SimPreempt::kSignalYield;
    rt.spawn(std::move(t));
  }
  const Time makespan = rt.run();
  EXPECT_EQ(rt.total_preemptions(), 0u);
  // But the interruptions still cost time: makespan > pure compute.
  EXPECT_GT(makespan, 5'000'000);
}

TEST(UltEngine, PreemptionOverheadScalesInverselyWithInterval) {
  CostModel cm = CostModel::skylake();
  auto run_with_interval = [&](Time interval) {
    SimUltOptions o = basic_opts(4);
    o.timer = TimerStrategy::kPerWorkerAligned;
    o.interval = interval;
    SimUltRuntime rt(cm, o);
    for (int i = 0; i < 8; ++i) {
      auto t = std::make_unique<ScriptThread>(
          std::vector<SimAction>{SimAction::compute(20'000'000)});
      t->preempt = SimPreempt::kSignalYield;
      rt.spawn(std::move(t));
    }
    return rt.run();
  };
  const Time fast = run_with_interval(100'000);   // 100 µs
  const Time slow = run_with_interval(10'000'000);  // 10 ms
  EXPECT_GT(fast, slow);  // more preemptions → more overhead
}

TEST(UltEngine, PackingRunsThreadsOnlyOnActiveWorkers) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o = basic_opts(4);
  o.sched = SchedPolicy::kPacking;
  o.n_active = 2;
  SimUltRuntime rt(cm, o);
  for (int i = 0; i < 8; ++i) {
    auto t = std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(1'000'000)});
    t->home_pool = i % 4;
    rt.spawn(std::move(t));
  }
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  // 8 ms of work on 2 active workers → >= 4 ms.
  EXPECT_GE(makespan, 4'000'000);
  EXPECT_LT(makespan, 4'500'000);
}

TEST(UltEngine, PriorityHighClassBeforeLow) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o = basic_opts(1);
  o.sched = SchedPolicy::kPriority;
  SimUltRuntime rt(cm, o);
  std::vector<int> order;
  auto make = [&](int id, int prio) {
    auto t = std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(1000)},
        [&order, id](SimUltRuntime&) { order.push_back(id); });
    t->priority = prio;
    return t;
  };
  rt.spawn(make(100, 1));  // low, enqueued first
  rt.spawn(make(1, 0));
  rt.spawn(make(2, 0));
  rt.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 100);
}

TEST(UltEngine, OsModeSlicesCompeteOnOneCore) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o;
  o.num_workers = 1;
  o.os_mode = true;
  SimUltRuntime rt(cm, o);
  // Two 20 ms threads on one core: OS slicing interleaves them, so both
  // finish near 40 ms (vs 20 & 40 for run-to-completion).
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(20'000'000)}));
  rt.spawn(std::make_unique<ScriptThread>(
      std::vector<SimAction>{SimAction::compute(20'000'000)}));
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_GE(makespan, 40'000'000);
  EXPECT_GT(rt.total_preemptions(), 4u);  // slices happened
}

TEST(UltEngine, OsModeIdleBalanceSpreadsLoad) {
  CostModel cm = CostModel::skylake();
  SimUltOptions o;
  o.num_workers = 4;
  o.os_mode = true;
  o.seed = 7;
  SimUltRuntime rt(cm, o);
  // 8 x 10 ms all placed initially wherever the random placement puts them;
  // idle balancing must spread them so makespan is far below serial (80 ms)
  // though above the 20 ms ideal.
  for (int i = 0; i < 8; ++i)
    rt.spawn(std::make_unique<ScriptThread>(
        std::vector<SimAction>{SimAction::compute(10'000'000)}));
  const Time makespan = rt.run();
  EXPECT_FALSE(rt.deadlocked());
  EXPECT_LT(makespan, 45'000'000);
  EXPECT_GE(makespan, 20'000'000);
}

TEST(UltEngine, DeterministicForFixedSeed) {
  CostModel cm = CostModel::skylake();
  auto run_once = [&] {
    SimUltOptions o = basic_opts(4);
    o.timer = TimerStrategy::kPerWorkerAligned;
    o.interval = 200'000;
    o.seed = 99;
    SimUltRuntime rt(cm, o);
    for (int i = 0; i < 12; ++i) {
      auto t = std::make_unique<ScriptThread>(
          std::vector<SimAction>{SimAction::compute(3'000'000)});
      t->preempt = SimPreempt::kSignalYield;
      rt.spawn(std::move(t));
    }
    return rt.run();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lpt::sim
