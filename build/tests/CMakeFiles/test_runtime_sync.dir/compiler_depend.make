# Empty compiler generated dependencies file for test_runtime_sync.
# This may be replaced when dependencies are built.
