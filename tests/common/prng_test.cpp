#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace lpt {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.next_below(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // LLN sanity
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double d = rng.next_exponential(2.0);
    ASSERT_GE(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

}  // namespace
}  // namespace lpt
