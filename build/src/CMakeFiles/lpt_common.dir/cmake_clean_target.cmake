file(REMOVE_RECURSE
  "liblpt_common.a"
)
