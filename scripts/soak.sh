#!/usr/bin/env bash
# Self-healing soak (docs/robustness.md, "Self-healing" and
# "Blocking-syscall resilience"): run the mixed cancel/deadline/timed-wait/
# blocking-pipe-reader workload in tests/tools/soak.cpp for SOAK_SECONDS
# (default 60) with the remediation ladder on and a short syscall grace, so
# every batch drives a full wedge-sentinel compensate/reabsorb cycle. Then
# verify the things only a long, whole-process run can: the compensation
# books reconcile exactly (activated == reabsorbed + saturated), shutdown of
# a runtime that has been cancelling, replacing, and compensating KLTs for a
# minute is clean (kernel-thread count returns to baseline — no leaked
# workers, pool spares, orphaned or compensating KLTs), and a fresh runtime
# in the same process still works.
#
#   scripts/soak.sh [build-dir]        (default: build)
#   SOAK_SECONDS=5 scripts/soak.sh     (short run, used by check.sh stage 11)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SECONDS_TO_RUN="${SOAK_SECONDS:-60}"

cmake --build "$BUILD" -j "$(nproc 2>/dev/null || echo 2)" --target soak
"$BUILD/tests/soak" "$SECONDS_TO_RUN"
