file(REMOVE_RECURSE
  "CMakeFiles/test_sim_workloads.dir/sim/sim_workloads_test.cpp.o"
  "CMakeFiles/test_sim_workloads.dir/sim/sim_workloads_test.cpp.o.d"
  "test_sim_workloads"
  "test_sim_workloads.pdb"
  "test_sim_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
