// ULT-aware synchronization primitives. A blocked ULT suspends to its
// worker's scheduler (so the core keeps doing useful work) instead of
// blocking the kernel thread — one of the "lightweight synchronization
// primitives" benefits the paper attributes to M:N threads (§3.3).
//
// All primitives may only be used from ULT context. Internal spinlocks are
// held under NoPreemptGuard so a preemption can never strand a lock (§3.5.3).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/spinlock.hpp"

namespace lpt {

struct ThreadCtl;

namespace prof {
struct LockStats;
}
namespace park {
struct ResourceState;
}

/// Mutual exclusion with cooperative blocking and direct handoff.
class Mutex {
 public:
  void lock();
  bool try_lock();
  /// Blocking try_lock with a timeout (~1 ms granularity, timed-wait
  /// registry) and a cancellation point. False on timeout; on true the
  /// caller owns the mutex (direct handoff applies to timed waiters too).
  bool try_lock_for(std::chrono::nanoseconds timeout);
  void unlock();

  /// True when the calling ULT currently owns this mutex. Powers the compat
  /// layer's EDEADLK check; meaningful only from ULT context (false outside).
  /// Owner identity is tracked unconditionally (one pointer store under
  /// guard_), independent of the parking registry's arming.
  bool held_by_caller() const;

 private:
  friend class CondVar;

  /// Abandonment hook (park::ResourceState::on_abandon): `dead` ended while
  /// recorded as owner. Clears owner_ and, when `release`, force-unlocks with
  /// normal handoff semantics. Returns whether a release happened.
  bool abandon(ThreadCtl* dead, bool release);
  static bool abandon_cb(void* primitive, ThreadCtl* dead, bool release);

  Spinlock guard_;
  bool locked_ = false;
  /// Owning ULT while locked_ (compared by address only — never dereferenced
  /// after the owner may have died; abandon() clears it first). Maintained
  /// under guard_, including across direct handoff.
  ThreadCtl* owner_ = nullptr;
  /// Parking-registry owner record, lazily attached under guard_ while the
  /// registry is armed; null forever otherwise (same slab contract as prof_).
  park::ResourceState* res_ = nullptr;
  std::vector<ThreadCtl*> waiters_;
  /// Contention-profile slot (docs/observability.md "Profiling"): lazily
  /// attached under guard_ on the first lock() while the lock profiler is
  /// armed; null forever otherwise. Points into the collector's never-freed
  /// slab, so the pointer stays valid even when this Mutex outlives the
  /// Runtime that profiled it.
  prof::LockStats* prof_ = nullptr;
};

/// Condition variable over lpt::Mutex.
class CondVar {
 public:
  /// Atomically release `m` and block; re-acquires `m` before returning.
  void wait(Mutex& m);
  /// wait() with a timeout (~1 ms granularity) and a cancellation point.
  /// Returns false when the wait timed out before a notify; `m` is held on
  /// either return. A nonpositive timeout returns false without releasing
  /// `m`. Spurious-wakeup-free (direct handoff), so no predicate loop is
  /// required just for this primitive — callers still need one when the
  /// predicate can be consumed by another woken waiter.
  bool wait_for(Mutex& m, std::chrono::nanoseconds timeout);
  void notify_one();
  void notify_all();

 private:
  Spinlock guard_;
  std::vector<ThreadCtl*> waiters_;
};

/// Cooperative barrier for a fixed number of ULT participants.
class Barrier {
 public:
  explicit Barrier(int parties);
  /// Blocks until all parties arrive; the last arriver releases the rest.
  void arrive_and_wait();

 private:
  Spinlock guard_;
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<ThreadCtl*> waiters_;
};

/// A memory flag with *busy-wait* semantics — the synchronization pattern of
/// OpenMP-parallel Intel MKL that deadlocks on nonpreemptive M:N threads
/// (§4.1). `WaitMode` selects the paper's three behaviours:
///   kSpin           pure busy loop: needs implicit preemption to be safe
///   kSpinWithYield  the "reverse-engineered MKL" hack: explicit yield in
///                   the loop, works on nonpreemptive threads
class BusyFlag {
 public:
  enum class WaitMode { kSpin, kSpinWithYield };

  void set() { flag_.store(1, std::memory_order_release); }
  void clear() { flag_.store(0, std::memory_order_release); }
  bool is_set() const { return flag_.load(std::memory_order_acquire) != 0; }

  /// Busy-wait until set. With kSpin, progress relies on the caller being
  /// implicitly preemptible (or on spare cores).
  void wait(WaitMode mode) const;

 private:
  std::atomic<std::uint32_t> flag_{0};
};

}  // namespace lpt
