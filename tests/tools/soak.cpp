// Self-healing soak driver (scripts/soak.sh): a sustained mixed workload —
// cooperative cancels, directed-tick cancels under both preemption
// techniques, per-spawn deadlines, timed waits — with the remediation
// ladder on, followed by leak checks no unit test can make: after Runtime
// destruction the process is back to its baseline kernel-thread count
// (no orphaned/pooled KLT survives shutdown) and a second Runtime in the
// same process starts healthy and completes work. Exit 0 on success.
//
//   soak [seconds]   (default 60)
#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace {

using namespace lpt;

int fail(const char* msg) {
  std::fprintf(stderr, "soak: FAIL: %s\n", msg);
  return 1;
}

/// Kernel threads in this process right now (/proc/self/task entries).
int task_count() {
  DIR* d = opendir("/proc/self/task");
  if (d == nullptr) return -1;
  int n = 0;
  while (dirent* e = readdir(d))
    if (e->d_name[0] != '.') ++n;
  closedir(d);
  return n;
}

/// One batch of mixed work; returns false on any contract violation.
bool run_batch(Runtime& rt, std::uint64_t round) {
  std::vector<Thread> joiners;

  // Plain compute under both techniques — must finish untouched.
  for (Preempt p : {Preempt::SignalYield, Preempt::KltSwitch}) {
    ThreadAttrs a;
    a.preempt = p;
    joiners.push_back(rt.spawn([] { busy_spin_ns(200'000); }, a));
  }

  // A runaway with a tight deadline: the runtime must cancel it.
  ThreadAttrs dl;
  dl.preempt = round % 2 == 0 ? Preempt::SignalYield : Preempt::KltSwitch;
  dl.deadline_ns = 10'000'000;  // 10 ms
  Thread runaway = rt.spawn([] { for (;;) busy_spin_ns(100'000); }, dl);

  // A spinner cancelled by hand mid-flight.
  ThreadAttrs sy;
  sy.preempt = Preempt::SignalYield;
  std::atomic<bool> spinning{false};
  Thread victim = rt.spawn(
      [&] {
        spinning.store(true, std::memory_order_release);
        for (;;) busy_spin_ns(100'000);
      },
      sy);
  while (!spinning.load(std::memory_order_acquire)) busy_spin_ns(10'000);
  victim.request_cancel();

  // Timed waits: a sleeper, and a pair racing a mutex with try_lock_for.
  joiners.push_back(
      rt.spawn([] { this_thread::sleep_for(std::chrono::milliseconds(2)); }));
  auto mu = std::make_shared<Mutex>();
  for (int i = 0; i < 2; ++i) {
    joiners.push_back(rt.spawn([mu] {
      if (mu->try_lock_for(std::chrono::milliseconds(50))) {
        busy_spin_ns(100'000);
        mu->unlock();
      }
    }));
  }

  for (Thread& t : joiners) {
    if (!t.join_for(std::chrono::seconds(30))) return false;
  }
  if (runaway.join_status().fault.kind != FaultKind::kCancelled) return false;
  if (victim.join_status().fault.kind != FaultKind::kCancelled) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const long seconds = argc > 1 ? std::strtol(argv[1], nullptr, 10) : 60;
  const int baseline = task_count();

  std::uint64_t rounds = 0;
  {
    RuntimeOptions o;
    o.num_workers = 4;
    o.timer = TimerKind::PerWorkerAligned;
    o.interval_us = 2'000;
    o.watchdog_period_ms = 20;
    o.remediation = true;
    Runtime rt(o);

    const std::int64_t end = now_ns() + seconds * 1'000'000'000LL;
    while (now_ns() < end) {
      if (!run_batch(rt, rounds)) {
        return fail("batch violated a join/cancel contract");
      }
      ++rounds;
    }

    const Runtime::Stats s = rt.stats();
    std::printf(
        "soak: %llu rounds in %lds: ult_cancels=%llu retick=%llu "
        "cancel=%llu klt_replace=%llu klts_retired=%llu "
        "stacks_quarantined=%llu\n",
        static_cast<unsigned long long>(rounds), seconds,
        static_cast<unsigned long long>(s.ult_cancels),
        static_cast<unsigned long long>(s.remediations_retick),
        static_cast<unsigned long long>(s.remediations_cancel),
        static_cast<unsigned long long>(s.remediations_klt_replace),
        static_cast<unsigned long long>(s.klts_retired),
        static_cast<unsigned long long>(s.stacks_quarantined));
    if (s.ult_cancels < 2 * rounds) return fail("cancels did not keep up");
    if (s.remediations_cancel < rounds) return fail("deadline rung never ran");
  }  // Runtime destructor: the clean-shutdown half of the check.

  // Every KLT — workers, pool spares, retired orphans, helper threads —
  // must be gone. Give exiting threads a moment to be reaped.
  for (int i = 0; i < 100 && task_count() > baseline; ++i) usleep(10'000);
  if (task_count() > baseline) return fail("kernel threads leaked shutdown");

  // A fresh runtime in the same process starts healthy.
  {
    Runtime rt{RuntimeOptions{}};
    std::atomic<int> n{0};
    std::vector<Thread> ts;
    for (int i = 0; i < 32; ++i)
      ts.push_back(rt.spawn([&] { n.fetch_add(1, std::memory_order_relaxed); }));
    for (Thread& t : ts) t.join();
    if (n.load() != 32) return fail("post-soak runtime lost work");
  }

  std::printf("soak: PASS\n");
  return 0;
}
