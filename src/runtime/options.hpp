// Configuration surface of the preemptive M:N runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/trace.hpp"
#include "prof/prof.hpp"

namespace lpt {

class Runtime;
class Scheduler;
struct WatchdogReport;

/// Per-thread preemption type (paper §3.4: all three coexist in one app).
enum class Preempt : std::uint8_t {
  None,         ///< traditional nonpreemptive ULT — cheapest, must yield
  SignalYield,  ///< §3.1.1 — handler context-switches; KLT-independent code only
  KltSwitch,    ///< §3.1.2 — whole KLT suspended; safe for KLT-dependent code
};

/// Preemption-timer strategy (paper §3.2).
enum class TimerKind : std::uint8_t {
  None,                   ///< no implicit preemption
  PerWorkerAligned,       ///< per-worker ticks, expirations staggered (§3.2.1)
  PerWorkerCreationTime,  ///< per-worker ticks, all in phase (the naive baseline)
  PosixPerWorker,         ///< real timer_create(SIGEV_THREAD_ID) per worker, aligned
  ProcessOneToAll,        ///< one process timer; initiator signals all eligible (§3.2.2)
  ProcessChain,           ///< one process timer; handlers forward one-by-one (§3.2.2)
};

/// How KLT-switching parks a kernel thread inside the signal handler (§3.3.1).
enum class KltSuspend : std::uint8_t {
  Futex,       ///< optimized: FUTEX_WAIT in handler / FUTEX_WAKE to resume
  Sigsuspend,  ///< portable baseline: sigsuspend + pthread_kill resume signal
};

/// Built-in scheduler selection; a custom factory overrides it.
enum class SchedulerKind : std::uint8_t {
  WorkStealing,  ///< BOLT-like default: per-worker FIFO + random stealing (§4.1)
  Packing,       ///< Algorithm 1: private/shared pools for thread packing (§4.2)
  Priority,      ///< two-class: high-prio FIFO before low-prio LIFO (§4.3)
};

struct RuntimeOptions {
  /// Number of workers ("N"). The paper creates one per core; on this host
  /// any value is legal (workers are kernel threads the OS time-slices).
  int num_workers = 4;

  TimerKind timer = TimerKind::None;
  /// Preemption interval. The paper sweeps 100 µs – 10 ms (Fig 6).
  std::int64_t interval_us = 10'000;

  SchedulerKind scheduler = SchedulerKind::WorkStealing;
  /// When set, overrides `scheduler`; called once during startup.
  std::function<std::unique_ptr<Scheduler>(Runtime&)> scheduler_factory;

  /// Default ULT stack size (overridable per thread).
  std::size_t stack_size = 256 * 1024;

  /// Max default-sized stacks the StackPool caches for reuse; releases
  /// beyond the cap munmap immediately (docs/robustness.md).
  std::size_t max_cached_stacks = 64;

  /// Upper bound on KLTs the runtime may ever create (worker hosts + spares);
  /// 0 = unlimited (the paper's as-many-KLTs-as-threads worst case, §3.1.2).
  /// When the cap is hit, KLT-switch preemptions degrade to deferred ticks
  /// (Stats::klt_degraded_ticks) instead of creating more kernel threads.
  /// Must be 0 or >= num_workers.
  int max_klts = 0;

  KltSuspend klt_suspend = KltSuspend::Futex;
  /// Worker-local KLT pools in front of the global pool (§3.3.2).
  bool worker_local_klt_pool = true;
  /// Number of spare KLTs created eagerly at startup (they park immediately);
  /// more are created on demand by the KLT creator.
  int initial_spare_klts = 0;

  /// Pin worker KLTs to cores round-robin (no-op beyond available cores).
  bool pin_workers = false;

  /// Scheduling tracer (docs/observability.md). Overridable via the
  /// LPT_TRACE / LPT_TRACE_FILE / LPT_TRACE_RING_CAP environment variables;
  /// when `trace.file` is set the runtime writes a Chrome trace_event JSON
  /// there at shutdown. Off by default: the hot path only pays one relaxed
  /// flag load per instrumented site.
  trace::TraceConfig trace;

  /// Continuous profiler (docs/observability.md, "Profiling"): on-CPU
  /// sampling piggybacked on preemption ticks, off-CPU wait attribution, and
  /// the lock-contention profiler. Overridable via LPT_PROF / LPT_PROF_HZ /
  /// LPT_PROF_OFFCPU / LPT_PROF_LOCKS / LPT_PROF_FILE / LPT_PROF_DEPTH /
  /// LPT_PROF_RING_CAP; when `prof.file` is set the runtime writes a
  /// folded-stack (or ".json") profile there at shutdown. Off by default:
  /// instrumented sites pay one relaxed flag load each.
  prof::ProfConfig prof;

  // ----- always-on metrics & watchdog (docs/observability.md) -----

  /// When non-empty (or LPT_METRICS_FILE is set), a background publisher
  /// thread atomically rewrites this file every metrics_period_ms with a
  /// fresh metrics snapshot — Prometheus text format, or JSON when the path
  /// ends in ".json". Off by default; the counters themselves are always on.
  std::string metrics_file;
  /// Publish period (LPT_METRICS_PERIOD_MS overrides).
  std::int64_t metrics_period_ms = 1000;

  /// Starvation watchdog (runtime/watchdog.hpp). On by default: it rides the
  /// monitor timer thread when one exists and otherwise wakes its own thread
  /// once per watchdog_period_ms — cost is a handful of relaxed loads per
  /// worker per period, nothing on scheduling hot paths.
  bool watchdog = true;
  /// Poll period; detection latency is at most ~2 periods past a threshold.
  std::int64_t watchdog_period_ms = 100;
  /// Flag a worker with queued runnable ULTs that has not dispatched for
  /// this long (kRunnableStarvation).
  std::int64_t watchdog_runnable_ns = 250'000'000;
  /// Flag a worker whose preemption handler has not fired although this many
  /// ticks were sent at a preemptible ULT (kWorkerStall: blocked signal
  /// mask, stuck NoPreemptGuard, lost timer). 0 disables the check.
  int watchdog_stall_ticks = 8;
  /// Flag a preemptible ULT that has run without a scheduling event for this
  /// many preemption intervals (kQuantumOverrun). 0 disables; the check is
  /// automatically off when no preemption timer is armed.
  int watchdog_quantum_factor = 32;
  /// Called (from the watchdog's driver thread) once per flag episode. When
  /// unset, the watchdog prints a rate-limited report to stderr instead.
  std::function<void(const WatchdogReport&)> watchdog_callback;
  /// Flag a worker that terminated this many faulting ULTs within one
  /// watchdog period (kFaultStorm: an application bug is burning workers on
  /// crash-and-restart churn). 0 disables the check.
  int watchdog_fault_storm = 4;

  // ----- self-healing: remediation & deadlines (docs/robustness.md) -----

  /// Watchdog remediation ladder (LPT_REMEDIATE=1 enables). When on, the
  /// watchdog escalates from flagging to acting: a quantum overrun gets a
  /// directed re-tick, a stalled worker gets its KLT force-replaced from the
  /// KLT pool, and an overrunning ULT past its deadline is cancelled. Every
  /// action is counted (Stats::remediations_*, lpt_remediations_total),
  /// traced (kRemediation), and reported through watchdog_callback. Off by
  /// default: detection stays flag-only.
  bool remediation = false;
  /// Cap on remediation actions taken per watchdog poll period
  /// (LPT_REMEDIATE_MAX_PER_PERIOD overrides; must be >= 1). Bounds the blast
  /// radius of a misconfigured ladder.
  int remediate_max_per_period = 4;
  /// Default per-ULT deadline in ns, armed at spawn for every thread whose
  /// ThreadAttrs::deadline is zero; 0 = no default deadline. Expiry requests
  /// cancellation at the next watchdog tick.
  std::int64_t default_ult_deadline_ns = 0;

  // ----- deadlock detection & recovery (docs/robustness.md) -----

  /// Parking-registry deadlock detection (LPT_DEADLOCK=0 disables). When on,
  /// every blocking primitive registers waiter → resource → owner edges
  /// (runtime/park.hpp), the watchdog poll runs waits-for cycle detection,
  /// Mutex/RwLock catch self-deadlock synchronously at lock(), and abandoned
  /// locks (owner ended while holding) are flagged. Cycle *breaking* — the
  /// deadlock_break remediation cancelling the youngest member — is
  /// additionally gated on `remediation`, like the rest of the ladder.
  /// When off, registration short-circuits to one relaxed load per park:
  /// the yield/mutex fast paths are unchanged.
  bool deadlock_detection = true;
  /// Run the cycle detector every N watchdog polls (LPT_DEADLOCK_PERIODS
  /// overrides; must be >= 1). Detection latency is at most ~2·N watchdog
  /// periods: a cycle is confirmed on its second consecutive sighting.
  int deadlock_periods = 1;
  /// Force-release locks whose owner ended while holding them, handing off
  /// to the next waiter so siblings unwedge (LPT_ABANDON_RELEASE=1 enables).
  /// Off by default: the abandoned protectee's invariants may be broken, so
  /// the conservative default only flags (lpt_abandoned_locks_total,
  /// kAbandonedLock).
  bool abandon_release = false;

  // ----- blocking-syscall resilience (docs/robustness.md) -----

  /// Age past which a worker parked in an annotated blocking syscall
  /// (lpt::io::blocking_region) is considered wedged: the watchdog flags it
  /// kSyscallBlocked and — when syscall_compensate is on — activates a
  /// compensating KLT so the worker's run queue keeps draining
  /// (LPT_SYSCALL_GRACE_MS overrides; 0 disables the sentinel).
  std::int64_t syscall_grace_ns = 50'000'000;
  /// Activate compensating KLTs for syscall-wedged workers. On by default —
  /// unlike the remediation ladder this path is loss-free: the wedged ULT
  /// keeps running and its KLT is reabsorbed into the pool on return
  /// (LPT_SYSCALL_COMPENSATE=0 disables; detection stays flag-only).
  bool syscall_compensate = true;
  /// Cap on concurrently outstanding compensations (activated KLTs whose
  /// losers have not yet been reabsorbed). Bounds the extra kernel threads a
  /// storm of wedged syscalls can create on top of max_klts
  /// (LPT_SYSCALL_MAX_COMPENSATIONS overrides; must be >= 1).
  int syscall_max_compensations = 4;

  // ----- fault isolation (docs/robustness.md) -----

  /// Master switch for the fault-isolation subsystem (LPT_FAULT_ISOLATION=0
  /// disables). When on, the runtime installs sigaltstack-based SIGSEGV /
  /// SIGBUS handlers that terminate a ULT overflowing into its stack guard
  /// page with ThreadStatus Failed(kStackOverflow) instead of crashing the
  /// process, and ULT entry gets an exception firewall (escaped exceptions
  /// become Failed(kException)). Faults outside ULT context always chain to
  /// the previously-installed handler and crash normally. Forced off in
  /// sanitizer builds (sanitizers own the SEGV handler).
  bool fault_isolation = true;
  /// Also contain SIGSEGV/SIGBUS faults that are *not* stack overflows when
  /// they hit inside ULT context (LPT_ISOLATE_FAULTS=1). Off by default:
  /// a wild store may have corrupted shared state, so the conservative
  /// default only contains overflows, whose blast radius is provably the
  /// guard page.
  bool isolate_faults = false;
  /// madvise(MADV_DONTNEED) a cached stack's usable region every time the
  /// pool hands it out (LPT_STACK_SCRUB=1): per-tenant-accurate stack
  /// watermarks and no data leakage between ULTs, at the cost of re-faulting
  /// pages on reuse.
  bool stack_scrub = false;
};

/// Overlay environment knobs onto `o` and enforce invariants; called once by
/// the Runtime constructor. LPT_STACK_SIZE (bytes, optional K/M suffix) is
/// validated, page-rounded, and clamped to a sane minimum; malformed values
/// are reported to stderr and ignored. Also applies LPT_FAULT_ISOLATION,
/// LPT_ISOLATE_FAULTS, LPT_STACK_SCRUB, LPT_REMEDIATE, LPT_SYSCALL_COMPENSATE,
/// LPT_DEADLOCK, LPT_ABANDON_RELEASE, and the integer knobs
/// LPT_WATCHDOG_STARVATION_PERIODS / LPT_WATCHDOG_STALL_PERIODS /
/// LPT_REMEDIATE_MAX_PER_PERIOD / LPT_SYSCALL_GRACE_MS /
/// LPT_SYSCALL_MAX_COMPENSATIONS / LPT_DEADLOCK_PERIODS (validated like
/// LPT_STACK_SIZE).
///
/// Profiler knobs (docs/observability.md, "Profiling"):
///  * LPT_PROF=1 arms all three collectors (0/off force-disables);
///  * LPT_PROF_HZ=<n> switches the on-CPU sampler from tick-piggybacking to
///    an independent n-Hz-per-worker sampling signal; n outside
///    [prof::kMinHz, prof::kMaxHz] is rejected as nonsense;
///  * LPT_PROF_OFFCPU=0 / LPT_PROF_LOCKS=0 turn single collectors off;
///  * LPT_PROF_FILE=<path> sets the shutdown profile path and implies
///    LPT_PROF=1 (".json" = JSON report, anything else folded stacks);
///    plain LPT_PROF=1 with no file defaults to "lpt_profile.folded";
///  * LPT_PROF_DEPTH=<frames> bounds the stack walk (clamped to
///    [1, prof::kMaxFrames]);
///  * LPT_PROF_RING_CAP=<samples> sizes the per-OS-thread sample rings.
RuntimeOptions resolve_env_options(RuntimeOptions o);

/// Smallest stack resolve_env_options will accept (LPT_STACK_SIZE below this
/// is raised to it): enough for the trampoline + a couple of frames.
inline constexpr std::size_t kMinStackSize = 16 * 1024;

/// Per-thread spawn attributes.
struct ThreadAttrs {
  Preempt preempt = Preempt::None;
  /// Scheduling class for SchedulerKind::Priority: 0 = high, 1 = low.
  int priority = 0;
  /// Home pool for SchedulerKind::Packing; -1 = assign round-robin.
  int home_pool = -1;
  /// 0 = use RuntimeOptions::stack_size.
  std::size_t stack_size = 0;
  /// Relative deadline in ns from spawn; 0 = use
  /// RuntimeOptions::default_ult_deadline_ns (which may itself be 0 = none).
  /// On expiry the watchdog tick requests cancellation (Failed(kCancelled)).
  std::int64_t deadline_ns = 0;
};

}  // namespace lpt
