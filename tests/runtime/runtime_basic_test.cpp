#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(RuntimeBasic, StartStopNoThreads) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  Runtime rt(opts);
  EXPECT_EQ(rt.num_workers(), 2);
  EXPECT_EQ(rt.active_workers(), 2);
}

TEST(RuntimeBasic, CurrentPointsToActiveRuntime) {
  EXPECT_EQ(Runtime::current(), nullptr);
  {
    Runtime rt{RuntimeOptions{}};
    EXPECT_EQ(Runtime::current(), &rt);
  }
  EXPECT_EQ(Runtime::current(), nullptr);
}

TEST(RuntimeBasic, SpawnJoinSingle) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<int> ran{0};
  Thread t = rt.spawn([&] { ran.store(1); });
  t.join();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(t.joinable());
}

TEST(RuntimeBasic, SpawnJoinMany) {
  RuntimeOptions opts;
  opts.num_workers = 4;
  Runtime rt(opts);
  constexpr int kN = 200;
  std::atomic<int> sum{0};
  std::vector<Thread> ts;
  ts.reserve(kN);
  for (int i = 0; i < kN; ++i) ts.push_back(rt.spawn([&, i] { sum.fetch_add(i); }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(RuntimeBasic, HandleDestructorJoins) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<bool> ran{false};
  { Thread t = rt.spawn([&] { ran.store(true); }); }
  EXPECT_TRUE(ran.load());
}

TEST(RuntimeBasic, DetachedThreadRuns) {
  Runtime rt{RuntimeOptions{}};
  FutexEvent done;
  rt.spawn_detached([&] { done.set(); });
  done.wait();
  SUCCEED();
}

TEST(RuntimeBasic, SpawnFromInsideUlt) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  Runtime rt(opts);
  std::atomic<int> inner_ran{0};
  Thread outer = rt.spawn([&] {
    EXPECT_TRUE(this_thread::in_ult());
    std::vector<Thread> inner;
    for (int i = 0; i < 10; ++i)
      inner.push_back(Runtime::current()->spawn([&] { inner_ran.fetch_add(1); }));
    for (auto& t : inner) t.join();
  });
  outer.join();
  EXPECT_EQ(inner_ran.load(), 10);
}

TEST(RuntimeBasic, JoinFromUltBlocksCooperatively) {
  RuntimeOptions opts;
  opts.num_workers = 1;  // single worker forces cooperative interleaving
  Runtime rt(opts);
  std::vector<int> order;
  Thread a = rt.spawn([&] {
    Thread b = Runtime::current()->spawn([&] { order.push_back(1); });
    b.join();
    order.push_back(2);
  });
  a.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RuntimeBasic, YieldInterleavesOnSingleWorker) {
  RuntimeOptions opts;
  opts.num_workers = 1;
  Runtime rt(opts);
  std::vector<int> trace;
  Thread a = rt.spawn([&] {
    trace.push_back(0);
    this_thread::yield();
    trace.push_back(2);
    this_thread::yield();
    trace.push_back(4);
  });
  Thread b = rt.spawn([&] {
    trace.push_back(1);
    this_thread::yield();
    trace.push_back(3);
  });
  a.join();
  b.join();
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RuntimeBasic, YieldOutsideUltIsNoop) {
  this_thread::yield();  // must not crash without a runtime
  EXPECT_FALSE(this_thread::in_ult());
  EXPECT_EQ(this_thread::worker_rank(), -1);
}

TEST(RuntimeBasic, WorkerRankVisibleInsideUlt) {
  RuntimeOptions opts;
  opts.num_workers = 3;
  Runtime rt(opts);
  std::atomic<int> bad{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 30; ++i)
    ts.push_back(rt.spawn([&] {
      int r = this_thread::worker_rank();
      if (r < 0 || r >= 3) bad.fetch_add(1);
    }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(RuntimeBasic, SequentialRuntimesReuseProcess) {
  for (int round = 0; round < 3; ++round) {
    RuntimeOptions opts;
    opts.num_workers = 2;
    Runtime rt(opts);
    std::atomic<int> n{0};
    std::vector<Thread> ts;
    for (int i = 0; i < 20; ++i) ts.push_back(rt.spawn([&] { n.fetch_add(1); }));
    for (auto& t : ts) t.join();
    EXPECT_EQ(n.load(), 20);
  }
}

TEST(RuntimeBasic, ManyThreadsFewWorkersStress) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  Runtime rt(opts);
  std::atomic<long> acc{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 500; ++i)
    ts.push_back(rt.spawn([&] {
      for (int k = 0; k < 10; ++k) {
        acc.fetch_add(1);
        this_thread::yield();
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(acc.load(), 5000);
}

TEST(RuntimeBasic, CustomStackSize) {
  Runtime rt{RuntimeOptions{}};
  ThreadAttrs attrs;
  attrs.stack_size = 1 << 20;
  std::atomic<bool> ok{false};
  Thread t = rt.spawn(
      [&] {
        // Use a deep-ish buffer that would overflow a tiny stack.
        volatile char buf[512 * 1024];
        buf[0] = 1;
        buf[sizeof(buf) - 1] = 1;
        ok.store(buf[0] == 1 && buf[sizeof(buf) - 1] == 1);
      },
      attrs);
  t.join();
  EXPECT_TRUE(ok.load());
}

TEST(RuntimeBasic, TotalKltsStartsAtWorkerCount) {
  RuntimeOptions opts;
  opts.num_workers = 3;
  Runtime rt(opts);
  EXPECT_EQ(rt.total_klts(), 3u);
}

TEST(RuntimeBasic, InitialSpareKltsCreated) {
  RuntimeOptions opts;
  opts.num_workers = 2;
  opts.initial_spare_klts = 2;
  Runtime rt(opts);
  EXPECT_EQ(rt.total_klts(), 4u);
  // Spares park in the pool and must shut down cleanly with the runtime.
}

}  // namespace
}  // namespace lpt
