#include "runtime/compat.hpp"

#include <cerrno>

#include "common/futex.hpp"
#include "common/spinlock.hpp"

namespace lpt::compat {

namespace {

/// Join/retval state shared between the running thread and the handle.
struct CompatCtl {
  void* (*fn)(void*) = nullptr;
  void* arg = nullptr;
  void* retval = nullptr;
  Thread thread;           // joinable lpt handle (empty when detached)
  bool detached = false;
};

}  // namespace

int thread_create(thread_t* out, const thread_attr_t* attr,
                  void* (*start_routine)(void*), void* arg) {
  if (out == nullptr || start_routine == nullptr) return EINVAL;
  Runtime* rt = Runtime::current();
  if (rt == nullptr) return EAGAIN;

  thread_attr_t a = attr != nullptr ? *attr : thread_attr_t{};
  auto* ctl = new CompatCtl;
  ctl->fn = start_routine;
  ctl->arg = arg;
  ctl->detached = a.detached;

  ThreadAttrs ta;
  ta.preempt = a.preempt;
  ta.priority = a.priority;
  ta.stack_size = a.stack_size;

  if (a.detached) {
    if (!rt->spawn_detached(
            [ctl] {
              ctl->fn(ctl->arg);
              delete ctl;  // nobody joins a detached thread
            },
            ta)) {
      const int err = spawn_errno();
      delete ctl;
      return err != 0 ? err : EAGAIN;
    }
    out->ctl = nullptr;  // pthread-style: handle of a detached thread is dead
    return 0;
  }

  ctl->thread = rt->spawn([ctl] { ctl->retval = ctl->fn(ctl->arg); }, ta);
  if (!ctl->thread.joinable()) {
    // Recoverable spawn failure (stack exhaustion) maps to pthread_create's
    // EAGAIN contract.
    const int err = spawn_errno();
    delete ctl;
    return err != 0 ? err : EAGAIN;
  }
  out->ctl = ctl;
  return 0;
}

int thread_join(thread_t t, void** retval) {
  auto* ctl = static_cast<CompatCtl*>(t.ctl);
  if (ctl == nullptr || ctl->detached || !ctl->thread.joinable()) return EINVAL;
  const ThreadStatus st = ctl->thread.join_status();
  const bool failed = st.failed();
  const bool cancelled = st.fault.kind == FaultKind::kCancelled;
  const bool deadlocked = st.fault.kind == FaultKind::kDeadlock;
  if (!failed && retval != nullptr) *retval = ctl->retval;
  delete ctl;
  // No pthread error fits "the thread was killed by the runtime"; EFAULT is
  // the closest honest mapping for a fault-terminated thread, EINTR for one
  // cut short by cancellation, EDEADLK for a deadlock-break victim.
  if (deadlocked) return EDEADLK;
  if (cancelled) return EINTR;
  return failed ? EFAULT : 0;
}

int thread_cancel(thread_t t) {
  auto* ctl = static_cast<CompatCtl*>(t.ctl);
  if (ctl == nullptr || ctl->detached || !ctl->thread.joinable()) return ESRCH;
  return ctl->thread.request_cancel() ? 0 : ESRCH;
}

int thread_detach(thread_t t) {
  auto* ctl = static_cast<CompatCtl*>(t.ctl);
  if (ctl == nullptr || ctl->detached) return EINVAL;
  // lpt has no post-hoc detach; emulate by joining from a reaper ULT so the
  // caller does not block.
  Runtime* rt = Runtime::current();
  if (rt == nullptr) return EAGAIN;
  rt->spawn_detached([ctl]() mutable {
    ctl->thread.join();
    delete ctl;
  });
  return 0;
}

int yield() {
  this_thread::yield();
  return 0;
}

int mutex_init(mutex_t* m) { return m != nullptr ? 0 : EINVAL; }
int mutex_lock(mutex_t* m) {
  // PTHREAD_MUTEX_ERRORCHECK semantics: relocking a mutex the caller already
  // holds reports EDEADLK instead of parking behind itself forever.
  if (m->impl.held_by_caller()) return EDEADLK;
  m->impl.lock();
  return 0;
}
int mutex_trylock(mutex_t* m) { return m->impl.try_lock() ? 0 : EBUSY; }
int mutex_unlock(mutex_t* m) {
  m->impl.unlock();
  return 0;
}
int mutex_destroy(mutex_t* m) { return m != nullptr ? 0 : EINVAL; }

int cond_init(cond_t* c) { return c != nullptr ? 0 : EINVAL; }
int cond_wait(cond_t* c, mutex_t* m) {
  c->impl.wait(m->impl);
  return 0;
}
int cond_signal(cond_t* c) {
  c->impl.notify_one();
  return 0;
}
int cond_broadcast(cond_t* c) {
  c->impl.notify_all();
  return 0;
}
int cond_destroy(cond_t* c) { return c != nullptr ? 0 : EINVAL; }

int rwlock_init(rwlock_t* rw) { return rw != nullptr ? 0 : EINVAL; }
int rwlock_rdlock(rwlock_t* rw) {
  rw->impl.lock_shared();
  return 0;
}
int rwlock_wrlock(rwlock_t* rw) {
  rw->impl.lock();
  return 0;
}
int rwlock_rdunlock(rwlock_t* rw) {
  rw->impl.unlock_shared();
  return 0;
}
int rwlock_wrunlock(rwlock_t* rw) {
  rw->impl.unlock();
  return 0;
}
int rwlock_destroy(rwlock_t* rw) { return rw != nullptr ? 0 : EINVAL; }

}  // namespace lpt::compat
