# Empty dependencies file for lpt_runtime.
# This may be replaced when dependencies are built.
