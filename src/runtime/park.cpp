// Parking registry + the deadlock detector and abandonment scan built on it.
// Runtime::deadlock_poll / note_self_deadlock / note_owner_finished are
// defined here (not in runtime.cpp) so the whole deadlock subsystem lives in
// one translation unit next to the slot protocol it depends on.
#include "runtime/park.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/spinlock.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/thread.hpp"
#include "runtime/watchdog.hpp"

namespace lpt::park {

namespace internal {
std::atomic<bool> g_armed{false};
}

namespace {

constexpr std::uint32_t kSlotCap = 2048;
constexpr std::uint32_t kResourceCap = 1024;

// Slot state word: gen(30) | phase(2).
constexpr std::uint32_t kFree = 0;
constexpr std::uint32_t kWriting = 1;
constexpr std::uint32_t kOccupied = 2;
constexpr std::uint32_t kPinned = 3;

inline std::uint32_t phase_of(std::uint32_t st) { return st & 3u; }
inline std::uint32_t gen_of(std::uint32_t st) { return st >> 2; }
inline std::uint32_t make_state(std::uint32_t gen, std::uint32_t phase) {
  return (gen << 2) | phase;
}

/// One parked waiter. All payload fields are relaxed atomics: the detector
/// reads them lock-free under the seqlock-style state re-read (the
/// happens-before edge comes from the release store of kOccupied), and
/// relaxed atomics keep the protocol a non-race under TSan.
struct alignas(kCacheLineSize) Slot {
  std::atomic<std::uint32_t> state{0};
  std::atomic<ThreadCtl*> waiter{nullptr};
  std::atomic<std::uint32_t> waiter_id{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<bool> timed{false};
  std::atomic<ResourceState*> res{nullptr};
  std::atomic<ThreadCtl*> direct_owner{nullptr};
  std::atomic<Spinlock*> guard{nullptr};
  std::atomic<std::vector<ThreadCtl*>*> waiters{nullptr};
};

Slot g_slots[kSlotCap];
ResourceState g_resources[kResourceCap];
std::atomic<std::uint32_t> g_res_next{0};
std::atomic<std::uint32_t> g_cursor{0};
std::atomic<std::uint32_t> g_high{0};     ///< scan bound: max slot index + 1
std::atomic<std::uint32_t> g_parked{0};
std::atomic<std::uint64_t> g_overflows{0};
std::atomic<std::uint32_t> g_cycle_seq{0};
std::atomic<bool> g_abandon_release{false};

// Detector cycle memory. Single-threaded by construction: deadlock_poll runs
// only inside Watchdog::poll, which is serialized by the watchdog's busy_
// try-lock. Reset on arm() so sequential runtimes start clean.
std::unordered_set<std::uint64_t> g_pending;   ///< seen once, validated
std::unordered_set<std::uint64_t> g_reported;  ///< flagged (and maybe broken)

/// A coherent snapshot of one occupied slot plus its owner edges.
struct ParkedEdge {
  std::uint32_t idx = 0;
  std::uint32_t gen = 0;
  ThreadCtl* waiter = nullptr;
  std::uint32_t waiter_id = 0;
  std::uint8_t kind = 0;
  bool timed = false;
  Spinlock* guard = nullptr;
  std::vector<ThreadCtl*>* waiters = nullptr;
  ThreadCtl* owner_snap[ResourceState::kMaxOwners] = {};
  int owner_count = 0;
};

/// Seqlock read of slot i. False when the slot is not occupied or its tenant
/// changed mid-read. Owner pointers are snapshotted for pointer comparison
/// only — they are never dereferenced (the owner may be finalizing).
bool snapshot_slot(std::uint32_t i, ParkedEdge& e) {
  Slot& s = g_slots[i];
  const std::uint32_t st = s.state.load(std::memory_order_acquire);
  if (phase_of(st) != kOccupied) return false;
  e.idx = i;
  e.gen = gen_of(st);
  e.waiter = s.waiter.load(std::memory_order_relaxed);
  e.waiter_id = s.waiter_id.load(std::memory_order_relaxed);
  e.kind = s.kind.load(std::memory_order_relaxed);
  e.timed = s.timed.load(std::memory_order_relaxed);
  e.guard = s.guard.load(std::memory_order_relaxed);
  e.waiters = s.waiters.load(std::memory_order_relaxed);
  ResourceState* res = s.res.load(std::memory_order_relaxed);
  ThreadCtl* direct = s.direct_owner.load(std::memory_order_relaxed);
  if (s.state.load(std::memory_order_acquire) != st) return false;
  if (direct != nullptr) {
    e.owner_snap[e.owner_count++] = direct;
  } else if (res != nullptr) {
    for (const auto& o : res->owners) {
      ThreadCtl* t = o.load(std::memory_order_relaxed);
      if (t != nullptr && e.owner_count < ResourceState::kMaxOwners)
        e.owner_snap[e.owner_count++] = t;
    }
  }
  return e.waiter != nullptr;
}

enum class PinCheck { kValidate, kBreak };

/// Pin e's slot (the waiter's unpark spins while pinned, so the primitive
/// cannot be destroyed under our hands), then check under the primitive's
/// guard that the waiter is still in the waiter list with its context saved
/// — the test that separates a genuinely parked thread from a stale edge
/// whose wakeup is in flight. kBreak additionally cancels the waiter out of
/// the wait with zero side effects on failure: a victim that lost its park
/// to a normal handoff is simply left alone (no stranded lock, no double
/// wake). Returns whether the waiter was verified parked (and, for kBreak,
/// broken out and enqueued).
bool pin_and_check(const ParkedEdge& e, PinCheck mode, Runtime* rt) {
  Slot& s = g_slots[e.idx];
  const std::uint32_t occupied = make_state(e.gen, kOccupied);
  std::uint32_t expect = occupied;
  if (!s.state.compare_exchange_strong(expect, make_state(e.gen, kPinned),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return false;
  bool ok = false;
  if (e.guard != nullptr && e.waiters != nullptr) {
    e.guard->lock();
    auto it = std::find(e.waiters->begin(), e.waiters->end(), e.waiter);
    ok = it != e.waiters->end() &&
         e.waiter->load_state() == ThreadState::kBlocked;
    if (ok && mode == PinCheck::kBreak) {
      e.waiters->erase(it);
      e.waiter->cancel_fault = FaultKind::kDeadlock;
      e.waiter->park_broken = true;
      e.waiter->cancel_requested.store(true, std::memory_order_release);
    }
    e.guard->unlock();
  }
  if (ok && mode == PinCheck::kBreak) {
    // Free the slot on the victim's behalf: it wakes with park_slot == 0 and
    // its own unpark is a no-op (these writes are published to the victim by
    // the enqueue below).
    e.waiter->park_slot = 0;
    s.state.store(make_state(e.gen, kFree), std::memory_order_release);
    g_parked.fetch_sub(1, std::memory_order_relaxed);
    e.waiter->store_state(ThreadState::kReady);
    rt->enqueue_ready(e.waiter, nullptr, EnqueueKind::kUnblock, 0);
  } else {
    s.state.store(occupied, std::memory_order_release);  // unpin
  }
  return ok;
}

/// Order-independent hash of the cycle's member trace ids.
std::uint64_t cycle_hash(const std::vector<ParkedEdge>& edges,
                         const std::vector<int>& cyc) {
  std::uint64_t ids[WatchdogReport::kMaxCycle * 4];
  std::size_t n = 0;
  for (int i : cyc)
    if (n < sizeof(ids) / sizeof(ids[0])) ids[n++] = edges[i].waiter_id;
  std::sort(ids, ids + n);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= ids[i] + 1;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

bool abandon_release_enabled() {
  return g_abandon_release.load(std::memory_order_relaxed);
}

void arm(bool deadlock_detection, bool abandon_release) {
  g_abandon_release.store(abandon_release, std::memory_order_relaxed);
  g_pending.clear();
  g_reported.clear();
  internal::g_armed.store(deadlock_detection, std::memory_order_release);
}

void disarm() { internal::g_armed.store(false, std::memory_order_release); }

ResourceState* acquire_resource(std::uint8_t kind, void* primitive,
                                bool (*on_abandon)(void*, ThreadCtl*, bool)) {
  if (!armed()) return nullptr;
  std::uint32_t i = g_res_next.load(std::memory_order_relaxed);
  for (;;) {
    if (i >= kResourceCap) return nullptr;  // exhausted: untracked, not wrong
    if (g_res_next.compare_exchange_weak(i, i + 1,
                                         std::memory_order_relaxed))
      break;
  }
  ResourceState& rs = g_resources[i];
  rs.kind = kind;
  rs.primitive = primitive;
  rs.on_abandon = on_abandon;
  rs.ready.store(true, std::memory_order_release);
  return &rs;
}

void add_owner(ResourceState* rs, ThreadCtl* t) {
  if (rs == nullptr || t == nullptr) return;
  for (auto& o : rs->owners) {
    ThreadCtl* expect = nullptr;
    if (o.load(std::memory_order_relaxed) == nullptr &&
        o.compare_exchange_strong(expect, t, std::memory_order_relaxed)) {
      ++t->owned_tracked;
      return;
    }
  }
  rs->owner_overflow.store(true, std::memory_order_relaxed);
}

void remove_owner(ResourceState* rs, ThreadCtl* t) {
  if (rs == nullptr || t == nullptr) return;
  for (auto& o : rs->owners) {
    ThreadCtl* expect = t;
    if (o.load(std::memory_order_relaxed) == t &&
        o.compare_exchange_strong(expect, nullptr,
                                  std::memory_order_relaxed)) {
      --t->owned_tracked;
      return;
    }
  }
  // Not found: inserted during overflow, or acquired while disarmed.
}

void park(ThreadCtl* self, std::uint8_t kind, bool timed, ResourceState* res,
          ThreadCtl* direct_owner, Spinlock* guard,
          std::vector<ThreadCtl*>* waiters) {
  if (!armed()) return;
  const std::uint32_t start = g_cursor.fetch_add(1, std::memory_order_relaxed);
  for (std::uint32_t probe = 0; probe < kSlotCap; ++probe) {
    const std::uint32_t idx = (start + probe) % kSlotCap;
    Slot& s = g_slots[idx];
    std::uint32_t st = s.state.load(std::memory_order_relaxed);
    if (phase_of(st) != kFree) continue;
    const std::uint32_t next_gen = gen_of(st) + 1;
    if (!s.state.compare_exchange_strong(st, make_state(next_gen, kWriting),
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed))
      continue;
    s.waiter.store(self, std::memory_order_relaxed);
    s.waiter_id.store(self->trace_id, std::memory_order_relaxed);
    s.kind.store(kind, std::memory_order_relaxed);
    s.timed.store(timed, std::memory_order_relaxed);
    s.res.store(res, std::memory_order_relaxed);
    s.direct_owner.store(direct_owner, std::memory_order_relaxed);
    s.guard.store(guard, std::memory_order_relaxed);
    s.waiters.store(waiters, std::memory_order_relaxed);
    s.state.store(make_state(next_gen, kOccupied), std::memory_order_release);
    self->park_slot = idx + 1;
    g_parked.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t hw = g_high.load(std::memory_order_relaxed);
    while (idx + 1 > hw &&
           !g_high.compare_exchange_weak(hw, idx + 1,
                                         std::memory_order_release)) {
    }
    return;
  }
  // Slab full: this wait goes unregistered (invisible to the detector).
  g_overflows.fetch_add(1, std::memory_order_relaxed);
}

void unpark(ThreadCtl* self) {
  const std::uint32_t ref = self->park_slot;
  if (ref == 0) return;  // unregistered park, or a break freed it for us
  self->park_slot = 0;
  Slot& s = g_slots[ref - 1];
  for (;;) {
    std::uint32_t st = s.state.load(std::memory_order_acquire);
    if (phase_of(st) == kPinned) {  // detector is dereferencing our payload
      cpu_pause();
      continue;
    }
    LPT_CHECK(phase_of(st) == kOccupied);
    if (s.state.compare_exchange_weak(st, make_state(gen_of(st), kFree),
                                      std::memory_order_release,
                                      std::memory_order_relaxed))
      break;
  }
  g_parked.fetch_sub(1, std::memory_order_relaxed);
}

std::uint32_t parked_count() {
  return g_parked.load(std::memory_order_relaxed);
}

std::uint64_t slot_overflows() {
  return g_overflows.load(std::memory_order_relaxed);
}

std::uint32_t debug_scan() {
  std::uint32_t coherent = 0;
  const std::uint32_t hw =
      std::min(g_high.load(std::memory_order_acquire), kSlotCap);
  for (std::uint32_t i = 0; i < hw; ++i) {
    Slot& s = g_slots[i];
    const std::uint32_t st = s.state.load(std::memory_order_acquire);
    if (phase_of(st) != kOccupied) continue;
    ThreadCtl* w = s.waiter.load(std::memory_order_relaxed);
    if (s.state.load(std::memory_order_acquire) != st) continue;
    std::uint32_t expect = st;
    if (!s.state.compare_exchange_strong(expect,
                                         make_state(gen_of(st), kPinned),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
      continue;
    if (w != nullptr && s.waiter.load(std::memory_order_relaxed) == w)
      ++coherent;
    s.state.store(st, std::memory_order_release);  // unpin
  }
  return coherent;
}

}  // namespace lpt::park

// ---------------------------------------------------------------------------
// Deadlock detector & abandonment scan (Runtime members; see runtime.hpp)
// ---------------------------------------------------------------------------

namespace lpt {

void Runtime::deadlock_poll(Watchdog* wd, int* remediate_budget) {
  using park::ParkedEdge;
  if (!park::armed()) return;
  if (park::g_parked.load(std::memory_order_relaxed) == 0) {
    park::g_pending.clear();
    return;
  }

  // 1. Snapshot every coherently-occupied slot (lock-free).
  const std::uint32_t hw =
      std::min(park::g_high.load(std::memory_order_acquire), park::kSlotCap);
  std::vector<ParkedEdge> edges;
  edges.reserve(64);
  for (std::uint32_t i = 0; i < hw; ++i) {
    ParkedEdge e;
    if (park::snapshot_slot(i, e)) edges.push_back(e);
  }
  if (edges.empty()) {
    park::g_pending.clear();
    return;
  }

  // 2. Waits-for graph: nodes are parked waiters, an edge runs to each owner
  // of the awaited resource that is itself parked (a running owner can make
  // progress — it is never a cycle member).
  const int n = static_cast<int>(edges.size());
  std::unordered_map<ThreadCtl*, int> node;
  node.reserve(edges.size());
  for (int i = 0; i < n; ++i) node.emplace(edges[i].waiter, i);
  std::vector<std::vector<int>> adj(edges.size());
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < edges[i].owner_count; ++k) {
      auto it = node.find(edges[i].owner_snap[k]);
      if (it != node.end()) adj[i].push_back(it->second);
    }
  }

  // 3. Colored DFS, collecting every distinct cycle.
  std::vector<std::vector<int>> cycles;
  std::vector<int> color(edges.size(), 0);  // 0 white, 1 on path, 2 done
  std::vector<std::pair<int, int>> stk;     // (node, next edge index)
  std::vector<int> path;
  for (int s0 = 0; s0 < n; ++s0) {
    if (color[s0] != 0) continue;
    stk.assign(1, {s0, 0});
    path.assign(1, s0);
    color[s0] = 1;
    while (!stk.empty()) {
      const int u = stk.back().first;
      if (stk.back().second < static_cast<int>(adj[u].size())) {
        const int v = adj[u][stk.back().second++];
        if (color[v] == 0) {
          color[v] = 1;
          stk.push_back({v, 0});
          path.push_back(v);
        } else if (color[v] == 1) {
          auto pos = std::find(path.begin(), path.end(), v);
          cycles.emplace_back(pos, path.end());
        }
      } else {
        color[u] = 2;
        stk.pop_back();
        path.pop_back();
      }
    }
  }

  // 4. Judge each cycle. A cycle is flagged only when (a) no member's wait
  // is timed (those self-resolve by timeout), (b) every member re-validates
  // as genuinely parked under its primitive's guard, and (c) the identical
  // member set was already validated on the previous poll — two passes plus
  // per-member validation make transient handoff races invisible, so a
  // healthy contended runtime can never flag.
  std::unordered_set<std::uint64_t> seen_now;
  for (const auto& cyc : cycles) {
    bool timed = false;
    for (int i : cyc) timed = timed || edges[i].timed;
    if (timed) continue;
    const std::uint64_t h = park::cycle_hash(edges, cyc);
    if (!seen_now.insert(h).second) continue;  // same cycle, another route
    if (park::g_reported.count(h) != 0) continue;
    bool valid = true;
    for (int i : cyc) {
      if (!park::pin_and_check(edges[i], park::PinCheck::kValidate, this)) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      park::g_pending.erase(h);
      continue;
    }
    if (park::g_pending.insert(h).second) continue;  // first sighting: wait

    // Confirmed on a second consecutive poll. Break the youngest member
    // (highest trace id — deterministic, and the victim with the least
    // progress to lose) when remediation is armed and budget remains.
    const bool want_break = remediate_budget != nullptr;
    if (want_break && *remediate_budget <= 0) continue;  // retry next poll
    int victim = cyc[0];
    for (int i : cyc)
      if (edges[i].waiter_id > edges[victim].waiter_id) victim = i;
    bool broke = false;
    if (want_break) {
      broke = park::pin_and_check(edges[victim], park::PinCheck::kBreak, this);
      if (!broke) {
        // The victim's park dissolved under us (the cycle is resolving) —
        // forget the cycle and re-detect from scratch if it persists.
        park::g_pending.erase(h);
        continue;
      }
      --*remediate_budget;
      note_remediation(RemediationKind::kDeadlockBreak, -1,
                       WatchdogReport::Kind::kDeadlock, false);
    }
    park::g_pending.erase(h);
    park::g_reported.insert(h);
    n_deadlock_cycles_.add(1);
    const std::uint32_t cid =
        park::g_cycle_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    WatchdogReport rep;
    rep.kind = WatchdogReport::Kind::kDeadlock;
    rep.worker = -1;
    for (int i : cyc) {
      const bool is_victim = broke && i == victim;
      LPT_TRACE_EVENT(trace::EventType::kDeadlock, edges[i].waiter_id, cid,
                      static_cast<std::uint64_t>(edges[i].kind) |
                          (is_victim ? trace::kDeadlockVictimFlag : 0u));
      if (rep.cycle_len < WatchdogReport::kMaxCycle) {
        rep.cycle[rep.cycle_len] = edges[i].waiter_id;
        rep.cycle_kinds[rep.cycle_len] = edges[i].kind;
        ++rep.cycle_len;
      }
    }
    rep.victim = broke ? edges[victim].waiter_id : 0;
    rep.remediation =
        broke ? RemediationKind::kDeadlockBreak : RemediationKind::kNone;
    wd->report(rep);
  }

  // 5. Forget cycles that dissolved (a re-formed cycle is re-confirmed from
  // scratch, and a broken one stops occupying report memory).
  for (auto it = park::g_pending.begin(); it != park::g_pending.end();)
    it = seen_now.count(*it) != 0 ? std::next(it) : park::g_pending.erase(it);
  for (auto it = park::g_reported.begin(); it != park::g_reported.end();)
    it = seen_now.count(*it) != 0 ? std::next(it) : park::g_reported.erase(it);
}

void Runtime::note_self_deadlock(ThreadCtl* self, std::uint8_t kind) {
  // The caller (Mutex/RwLock lock fast path) already marked `self` for
  // cancellation with cancel_fault = kDeadlock; this is pure accounting: a
  // self-deadlock is a 1-cycle detected synchronously, no detector involved.
  n_deadlock_cycles_.add(1);
  n_self_deadlocks_.add(1);
  const std::uint32_t cid =
      park::g_cycle_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  LPT_TRACE_EVENT(trace::EventType::kDeadlock, self->trace_id, cid,
                  static_cast<std::uint64_t>(kind) |
                      trace::kDeadlockVictimFlag);
  WatchdogReport rep;
  rep.kind = WatchdogReport::Kind::kDeadlock;
  rep.worker = -1;
  rep.cycle_len = 1;
  rep.cycle[0] = self->trace_id;
  rep.cycle_kinds[0] = kind;
  rep.victim = self->trace_id;
  watchdog_.report(rep);
}

void Runtime::note_owner_finished(ThreadCtl* t) {
  // O(1) for threads that released everything they took (the common case);
  // the slab scan runs only when tracked ownership is provably outstanding.
  if (t->owned_tracked <= 0) return;
  if (!park::armed()) {
    t->owned_tracked = 0;
    return;
  }
  const bool release = park::abandon_release_enabled();
  const std::uint32_t nres =
      std::min(park::g_res_next.load(std::memory_order_acquire),
               park::kResourceCap);
  for (std::uint32_t i = 0; i < nres; ++i) {
    park::ResourceState& rs = park::g_resources[i];
    if (!rs.ready.load(std::memory_order_acquire)) continue;
    bool held = false;
    for (auto& o : rs.owners) {
      ThreadCtl* expect = t;
      if (o.load(std::memory_order_relaxed) == t &&
          o.compare_exchange_strong(expect, nullptr,
                                    std::memory_order_relaxed))
        held = true;
    }
    if (!held) continue;
    n_abandoned_locks_.add(1);
    LPT_TRACE_EVENT(trace::EventType::kAbandonedLock, t->trace_id,
                    static_cast<std::uint64_t>(rs.kind), release ? 1 : 0);
    bool released = false;
    if (rs.on_abandon != nullptr)
      released = rs.on_abandon(rs.primitive, t, release);
    if (released) n_abandoned_released_.add(1);
    WatchdogReport rep;
    rep.kind = WatchdogReport::Kind::kAbandonedLock;
    rep.worker = -1;
    rep.cycle_len = 1;
    rep.cycle[0] = t->trace_id;
    rep.cycle_kinds[0] = rs.kind;
    // For this report kind `victim` doubles as the released flag (there is
    // no cancelled ULT to name).
    rep.victim = released ? 1 : 0;
    watchdog_.report(rep);
  }
  t->owned_tracked = 0;
}

}  // namespace lpt
