# Empty dependencies file for lpt_sim.
# This may be replaced when dependencies are built.
