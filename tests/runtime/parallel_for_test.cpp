#include "runtime/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  constexpr std::int64_t kN = 100'000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelForOptions pf;
  pf.grain = 1000;
  parallel_for(rt, 0, kN, [&](std::int64_t i) { visits[i].fetch_add(1); }, pf);
  for (std::int64_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  Runtime rt{RuntimeOptions{}};
  std::atomic<int> calls{0};
  parallel_for(rt, 5, 5, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(rt, 7, 8, [&](std::int64_t i) {
    EXPECT_EQ(i, 7);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, RangeVariantCoversDisjointChunks) {
  Runtime rt{RuntimeOptions{}};
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> visits(kN);
  ParallelForOptions pf;
  pf.grain = 100;
  parallel_for_range(
      rt, 0, kN,
      [&](std::int64_t lo, std::int64_t hi) {
        EXPECT_LT(lo, hi);
        EXPECT_LE(hi - lo, 100);
        for (std::int64_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
      },
      pf);
  for (std::int64_t i = 0; i < kN; ++i) ASSERT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, NestedInvocations) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  std::atomic<long> sum{0};
  ParallelForOptions outer;
  outer.grain = 1;
  parallel_for(rt, 0, 8, [&](std::int64_t i) {
    ParallelForOptions inner;
    inner.grain = 4;
    parallel_for(rt, 0, 16, [&, i](std::int64_t j) { sum.fetch_add(i * 16 + j); },
                 inner);
  }, outer);
  // sum over i<8, j<16 of (i*16 + j) = sum over k<128 of k
  EXPECT_EQ(sum.load(), 127L * 128 / 2);
}

TEST(ParallelFor, CallableFromInsideUlt) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  std::atomic<long> sum{0};
  Thread t = rt.spawn([&] {
    parallel_for(rt, 1, 101, [&](std::int64_t i) { sum.fetch_add(i); });
  });
  t.join();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ParallelFor, PreemptibleIterationsMakeProgressUnderBusyNeighbors) {
  // One worker: a preemptive parallel_for must complete even while iteration
  // bodies busy-spin on each other's progress counters.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  std::atomic<int> started{0};
  ParallelForOptions pf;
  pf.grain = 1;
  pf.attrs.preempt = Preempt::SignalYield;
  parallel_for(rt, 0, 4, [&](std::int64_t) {
    // Every iteration waits until all 4 have started: impossible without
    // preemption on a single worker with grain 1.
    started.fetch_add(1);
    const std::int64_t deadline = now_ns() + 20'000'000'000ll;
    while (started.load() < 4) {
      ASSERT_LT(now_ns(), deadline) << "parallel_for iterations starved";
    }
  }, pf);
  EXPECT_EQ(started.load(), 4);
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(ParallelFor, GrainOneStress) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  std::atomic<long> sum{0};
  ParallelForOptions pf;
  pf.grain = 1;
  parallel_for(rt, 0, 2000, [&](std::int64_t i) { sum.fetch_add(i); }, pf);
  EXPECT_EQ(sum.load(), 1999L * 2000 / 2);
}

}  // namespace
}  // namespace lpt
