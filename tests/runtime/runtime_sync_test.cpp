#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/lpt.hpp"

namespace lpt {
namespace {

TEST(Mutex, ProtectsCounterAcrossWorkers) {
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  Mutex m;
  long counter = 0;
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn([&] {
      for (int k = 0; k < 1000; ++k) {
        m.lock();
        ++counter;
        m.unlock();
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 8000);
}

TEST(Mutex, BlockedWaiterResumesOnUnlock) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  Mutex m;
  std::vector<int> order;
  Thread a = rt.spawn([&] {
    m.lock();
    order.push_back(1);
    this_thread::yield();  // let b hit the lock and block
    order.push_back(2);
    m.unlock();
  });
  Thread b = rt.spawn([&] {
    m.lock();
    order.push_back(3);
    m.unlock();
  });
  a.join();
  b.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Mutex, TryLockReflectsState) {
  Runtime rt{RuntimeOptions{}};
  Mutex m;
  Thread t = rt.spawn([&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
  t.join();
}

TEST(Mutex, FairHandoffFifo) {
  RuntimeOptions o;
  o.num_workers = 1;
  Runtime rt(o);
  Mutex m;
  std::vector<int> order;
  Thread holder = rt.spawn([&] {
    m.lock();
    for (int i = 0; i < 4; ++i) this_thread::yield();  // queue up waiters
    m.unlock();
  });
  std::vector<Thread> waiters;
  for (int i = 0; i < 3; ++i)
    waiters.push_back(rt.spawn([&, i] {
      m.lock();
      order.push_back(i);
      m.unlock();
    }));
  holder.join();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CondVar, WaitReleasesAndReacquiresMutex) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> consumed{false};
  Thread consumer = rt.spawn([&] {
    m.lock();
    while (!ready) cv.wait(m);
    consumed.store(true);
    m.unlock();
  });
  Thread producer = rt.spawn([&] {
    for (int i = 0; i < 3; ++i) this_thread::yield();
    m.lock();
    ready = true;
    m.unlock();
    cv.notify_one();
  });
  consumer.join();
  producer.join();
  EXPECT_TRUE(consumed.load());
}

TEST(CondVar, NotifyAllWakesEveryWaiter) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Mutex m;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 5; ++i)
    ts.push_back(rt.spawn([&] {
      m.lock();
      while (!go) cv.wait(m);
      m.unlock();
      woke.fetch_add(1);
    }));
  Thread waker = rt.spawn([&] {
    for (int i = 0; i < 10; ++i) this_thread::yield();
    m.lock();
    go = true;
    m.unlock();
    cv.notify_all();
  });
  for (auto& t : ts) t.join();
  waker.join();
  EXPECT_EQ(woke.load(), 5);
}

TEST(CondVar, NotifyWithoutWaitersIsNoop) {
  Runtime rt{RuntimeOptions{}};
  CondVar cv;
  Thread t = rt.spawn([&] {
    cv.notify_one();
    cv.notify_all();
  });
  t.join();
  SUCCEED();
}

TEST(Barrier, SynchronizesPhases) {
  RuntimeOptions o;
  o.num_workers = 3;
  Runtime rt(o);
  constexpr int kParties = 6;
  constexpr int kPhases = 10;
  Barrier bar(kParties);
  std::atomic<int> phase_counts[kPhases] = {};
  std::atomic<bool> violation{false};
  std::vector<Thread> ts;
  for (int p = 0; p < kParties; ++p)
    ts.push_back(rt.spawn([&] {
      for (int ph = 0; ph < kPhases; ++ph) {
        phase_counts[ph].fetch_add(1);
        bar.arrive_and_wait();
        // After the barrier, every participant must have arrived at ph.
        if (phase_counts[ph].load() != kParties) violation.store(true);
      }
    }));
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation.load());
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Runtime rt{RuntimeOptions{}};
  Barrier bar(1);
  Thread t = rt.spawn([&] {
    for (int i = 0; i < 100; ++i) bar.arrive_and_wait();
  });
  t.join();
  SUCCEED();
}

TEST(BusyFlag, YieldingWaitWorksOnNonpreemptiveThreads) {
  RuntimeOptions o;
  o.num_workers = 1;  // forces cooperative interleaving
  Runtime rt(o);
  BusyFlag flag;
  std::atomic<bool> passed{false};
  Thread waiter = rt.spawn([&] {
    flag.wait(BusyFlag::WaitMode::kSpinWithYield);
    passed.store(true);
  });
  Thread setter = rt.spawn([&] { flag.set(); });
  waiter.join();
  setter.join();
  EXPECT_TRUE(passed.load());
}

TEST(BusyFlag, PureSpinWaitNeedsPreemption) {
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 1000;
  Runtime rt(o);
  BusyFlag flag;
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  Thread waiter = rt.spawn([&] { flag.wait(BusyFlag::WaitMode::kSpin); }, attrs);
  Thread setter = rt.spawn([&] { flag.set(); }, attrs);
  waiter.join();
  setter.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Sync, MutexUnderPreemption) {
  // Locks + implicit preemption: the no-preempt guards inside the
  // primitives must prevent a preempted lock holder from wedging a worker.
  RuntimeOptions o;
  o.num_workers = 2;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 300;
  Runtime rt(o);
  Mutex m;
  long counter = 0;
  std::vector<Thread> ts;
  for (int i = 0; i < 6; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = (i % 2 == 0) ? Preempt::SignalYield : Preempt::KltSwitch;
    ts.push_back(rt.spawn(
        [&] {
          for (int k = 0; k < 2000; ++k) {
            m.lock();
            ++counter;
            m.unlock();
          }
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, 12000);
}

}  // namespace
}  // namespace lpt
