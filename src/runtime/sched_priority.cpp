// Two-class priority scheduler (§4.3, the LAMMPS in situ study): priority-0
// ("simulation") threads always run before priority-1 ("analysis") threads.
// Low-priority threads live in per-worker LIFO queues "in order not to hurt
// data locality during preemption" — a preempted analysis thread is the next
// one its worker resumes once no simulation work exists anywhere.
#include "runtime/scheduler.hpp"

#include "common/assert.hpp"
#include "runtime/instrument.hpp"
#include "runtime/runtime.hpp"

namespace lpt {

void PriorityScheduler::init(Runtime& rt) {
  rt_ = &rt;
  high_.clear();
  low_.clear();
  rngs_.clear();
  for (int i = 0; i < rt.num_workers(); ++i) {
    high_.push_back(std::make_unique<ThreadQueue>());
    low_.push_back(std::make_unique<ThreadQueue>());
    rngs_.push_back(std::make_unique<Xoshiro256>(0x91e0u + i));
  }
}

ThreadCtl* PriorityScheduler::pick(Worker& w) {
  const int n = static_cast<int>(high_.size());
  // High class first: local queue, then scan every remote queue — the paper
  // has the scheduler check whether *any* simulation threads exist before
  // considering analysis threads.
  if (ThreadCtl* t = high_[w.rank]->pop_front()) return t;
  for (int step = 1; step < n; ++step) {
    const int v = (w.rank + step) % n;
    if (ThreadCtl* t = high_[v]->pop_front()) {
      w.metrics.steals.inc();
      LPT_TRACE_EVENT(trace::EventType::kSteal, t->trace_id,
                      static_cast<std::uint64_t>(v));
      return t;
    }
  }
  // Low class: local LIFO, then steal.
  if (ThreadCtl* t = low_[w.rank]->pop_back()) return t;
  for (int step = 1; step < n; ++step) {
    const int v = (w.rank + step) % n;
    if (ThreadCtl* t = low_[v]->pop_back()) {
      w.metrics.steals.inc();
      LPT_TRACE_EVENT(trace::EventType::kSteal, t->trace_id,
                      static_cast<std::uint64_t>(v));
      return t;
    }
  }
  return nullptr;
}

void PriorityScheduler::enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) {
  (void)kind;
  const int n = static_cast<int>(high_.size());
  const int q = hint != nullptr ? hint->rank : t->home_pool % n;
  if (t->priority <= 0)
    high_[q]->push_back(t);
  else
    low_[q]->push_back(t);  // popped from the back → LIFO
}

bool PriorityScheduler::has_work() const {
  for (const auto& q : high_)
    if (!q->empty()) return true;
  for (const auto& q : low_)
    if (!q->empty()) return true;
  return false;
}

std::int64_t PriorityScheduler::queue_depth(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(high_.size())) return 0;
  return high_[rank]->depth() + low_[rank]->depth();
}

}  // namespace lpt
