// Signal-safe scheduling tracer (observability subsystem).
//
// Design constraints, in order:
//  * async-signal-safety — events are recorded from inside the preemption
//    signal handler (PreemptSignalYield / PreemptKltSwitch), so the record
//    path may not allocate, lock, or call anything non-reentrant;
//  * wait-freedom — one fixed-capacity ring per OS thread (worker-host KLTs,
//    pool KLTs, the monitor timer, the KLT creator). A thread only writes its
//    own ring, so the only concurrent writer is the thread's *own* signal
//    handler; slot reservation is a single relaxed fetch_add, which is atomic
//    with respect to a handler running on the same CPU;
//  * drop-and-count on overflow — rings never wrap, so the exporter can read
//    committed slots without tearing; overflow increments a counter instead;
//  * zero allocation after startup — all slots are carved out of one slab
//    allocated when tracing is configured.
//
// The types below are always compiled (Runtime::Stats embeds HistSnapshot);
// only the *recording macros* in runtime/instrument.hpp compile to nothing
// when LPT_TRACE_DISABLED is defined.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <ctime>

namespace lpt::trace {

/// Trace timestamps use CLOCK_MONOTONIC_RAW: immune to NTP slewing, vDSO-read
/// (async-signal-safe), and strictly comparable within one run.
inline std::int64_t now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Scheduler-event taxonomy (docs/observability.md documents each one).
enum class EventType : std::uint16_t {
  kNone = 0,           ///< unwritten slot sentinel — never recorded
  kUltDispatch,        ///< worker switches into a ULT; arg0=ready→dispatch scheduling delay ns (0 = no ready stamp)
  kUltYield,           ///< voluntary yield re-enqueue (post action)
  kUltBlock,           ///< ULT suspended on a sync primitive / join
  kUltExit,            ///< ULT function returned
  kPreemptSignalYield, ///< §3.1.1 preemption accounted (post action)
  kPreemptKltSwitch,   ///< §3.1.2 preemption accounted (post action)
  kHandlerEnter,       ///< preemption handler hit a running ULT; arg0=delivery-latency ns (0 = unknown)
  kHandlerDeferred,    ///< handler deferred by a NoPreemptGuard
  kSteal,              ///< scheduler stole a thread; arg0=victim rank
  kWorkerPark,         ///< worker parked for thread packing
  kWorkerUnpark,       ///< worker resumed after packing
  kKltSuspend,         ///< KLT parked inside the handler (KLT-switching)
  kKltResume,          ///< bound KLT resumed; arg0=suspend→resume round trip ns
  kKltPoolHit,         ///< handler found a spare KLT in the pool
  kKltPoolMiss,        ///< pool empty; creation requested, preemption skipped
  kKltCreated,         ///< KLT creator built a spare
  kTimerFire,          ///< monitor timer issued a tick; arg0=target rank
  kKltDegradedTick,    ///< pool empty + creator saturated or KLT cap hit; tick deferred
  kTimerFallback,      ///< POSIX per-worker timer degraded to monitor delivery; arg0=rank
  kStackAllocFail,     ///< spawn failed recoverably: stack mmap refused after shed+retry
  kWatchdogFlag,       ///< starvation watchdog flagged; arg0=WatchdogReport::Kind, arg1=rank
  kUltFault,           ///< fault isolation terminated a ULT; arg0=FaultKind, arg1=fault addr
  kKltRetired,         ///< poisoned KLT retired after a contained fault; arg1=KLT trace id
  kStackNearOverflow,  ///< released stack's watermark within a page of the guard; arg0=watermark bytes
  kUltCancel,          ///< ULT cancelled; arg0: 0=cancellation point, 1=directed tick, 2=orphan landing
  kRemediation,        ///< watchdog remediation acted; arg0=RemediationKind, arg1=rank
  kProfSample,         ///< profiler captured an on-CPU sample; arg0=PC, arg1=frames
  kOffcpuWait,         ///< profiler attributed an off-CPU wait; arg0=blocked ns, arg1=prof::WaitKind
  kLockContended,      ///< profiled Mutex acquire had to park; arg0=wait ns, arg1=callsite
  kSyscallBlock,       ///< ULT entered an annotated blocking syscall; arg0=rank
  kSyscallCompensate,  ///< sentinel activated a compensating KLT; arg0=rank, arg1=epoch
  kSyscallReturn,      ///< blocking syscall returned; arg0=blocked ns, arg1=1 if reabsorbed
  kUltWake,            ///< ULT made runnable; ult=woken id, arg0=waker ULT id (0 = external/timer), arg1=prof::WaitKind it was parked under (kWakeArgSpawn for spawn)
  kDeadlock,           ///< deadlock cycle member; ult=member id, arg0=cycle id, arg1=prof::WaitKind awaited | kDeadlockVictimFlag if this member was cancelled
  kAbandonedLock,      ///< lock owner ended while holding; ult=owner id, arg0=prof::WaitKind of the lock, arg1=1 if force-released
  kCount,
};

/// kDeadlock arg1 bit marking the cycle member the breaker cancelled.
inline constexpr std::uint64_t kDeadlockVictimFlag = 0x100;

/// kUltWake arg1 value for the spawn edge (a fresh ULT was never parked, so
/// no prof::WaitKind applies; prof::WaitKind::kCount is < 100).
inline constexpr std::uint64_t kWakeArgSpawn = 100;

const char* event_name(EventType t);

/// One trace record. Slots are cache-line-sized so a handler-interrupted
/// mainline write and the handler's own write never share a line, and the
/// exporter never reads a partially shared line.
struct alignas(64) Event {
  std::int64_t ts_ns = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t ult = 0;     ///< ThreadCtl::trace_id, 0 = none
  std::int16_t worker = -1;  ///< worker rank at record time, -1 = none
  /// Written LAST with release order: the commit flag. kNone = slot not (yet)
  /// committed; the exporter skips such slots.
  std::atomic<std::uint16_t> type{0};
};
static_assert(sizeof(Event) == 64, "one slot per cache line");

/// Plain (copyable) view of one committed event — what snapshot_events()
/// returns and what the JSONL export serializes.
struct EventView {
  std::int64_t ts_ns = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t ult = 0;
  std::int16_t worker = -1;
  EventType type = EventType::kNone;
};

/// Which kind of OS thread owns a ring (selects the export track).
enum class TrackKind : std::uint8_t { kWorkerKlt, kTimer, kCreator, kExternal };

/// Fixed-capacity single-writer event ring. "Single writer" means one OS
/// thread plus signal handlers running *on that thread*; the fetch_add slot
/// reservation makes the nested-handler case safe (each write gets a private
/// slot, committed independently via the per-slot type flag).
class Ring {
 public:
  void init(Event* slots, std::uint32_t capacity, TrackKind kind, int id) {
    slots_ = slots;
    capacity_ = capacity;
    kind_ = kind;
    id_ = id;
    head_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Record one event. Wait-free and async-signal-safe. Returns false (and
  /// counts a drop) once the ring is full.
  bool record(EventType type, std::int64_t ts_ns, std::int16_t worker,
              std::uint32_t ult, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Event& e = slots_[idx];
    e.ts_ns = ts_ns;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.ult = ult;
    e.worker = worker;
    e.type.store(static_cast<std::uint16_t>(type), std::memory_order_release);
    return true;
  }

  /// Committed-slot upper bound (some below it may still be uncommitted; the
  /// reader checks each slot's type flag).
  std::uint32_t fill() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::uint32_t>(h < capacity_ ? h : capacity_);
  }
  std::uint64_t recorded() const {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return h < capacity_ ? h : capacity_;
  }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint32_t capacity() const { return capacity_; }
  const Event& at(std::uint32_t i) const { return slots_[i]; }
  TrackKind kind() const { return kind_; }
  int id() const { return id_; }

 private:
  Event* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  TrackKind kind_ = TrackKind::kWorkerKlt;
  int id_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------------
// Fixed-bucket log2 latency histograms
// ---------------------------------------------------------------------------

/// Plain (non-atomic) histogram snapshot; embedded in Runtime::Stats.
/// Bucket 0 holds [0, 1] ns; bucket b >= 1 holds [2^(b-1), 2^b) ns.
/// All values are nanoseconds — sum_ns is the *exact* sum of the recorded
/// samples (not reconstructed from bucket midpoints), so exporters can emit
/// a Prometheus-native histogram whose `_sum` reconciles exactly with
/// per-ULT accounting totals.
struct HistSnapshot {
  static constexpr int kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t sum_ns = 0;  ///< exact sum of recorded samples, ns

  std::uint64_t count() const;
  void merge(const HistSnapshot& o);
  /// Inclusive lower bound of bucket b in ns.
  static std::int64_t bucket_floor_ns(int b);
  /// Exclusive upper bound of bucket b in ns.
  static std::int64_t bucket_ceil_ns(int b);
  /// Linear interpolation inside the winning bucket; p in [0, 100].
  /// Returns 0 for an empty histogram.
  double percentile_ns(double p) const;
  double median_ns() const { return percentile_ns(50.0); }
};

/// Signal-safe accumulation side: relaxed fetch_add per sample.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistSnapshot::kBuckets;

  static int bucket_for(std::int64_t ns) {
    if (ns <= 1) return 0;
    // floor(log2(ns)) + 1, capped to the last bucket.
    int b = 64 - __builtin_clzll(static_cast<unsigned long long>(ns));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Async-signal-safe, wait-free. Also accumulates the exact ns sum so
  /// HistSnapshot::sum_ns reconciles with per-ULT totals (negative inputs
  /// clamp to 0, matching bucket_for).
  void record(std::int64_t ns) {
    buckets_[bucket_for(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns > 0 ? static_cast<std::uint64_t>(ns) : 0,
                      std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  std::uint64_t sum_ns() const {
    return sum_ns_.load(std::memory_order_relaxed);
  }

  HistSnapshot snapshot() const {
    HistSnapshot s;
    for (int i = 0; i < kBuckets; ++i)
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

// ---------------------------------------------------------------------------
// Collector: ring registry, config, export
// ---------------------------------------------------------------------------

struct TraceConfig {
  bool enabled = false;
  std::uint32_t ring_capacity = 1u << 14;  ///< events per OS thread
  std::string file;  ///< Chrome-trace JSON written at runtime shutdown; "" = none
  /// Raw event log (one JSON object per line, sorted by timestamp) written at
  /// runtime shutdown; "" = none. The machine-readable input of
  /// tools/trace_critical_path and tests/tools/trace_check.
  std::string events_file;
};

/// Process-wide collector (mirrors the one-active-Runtime-per-process rule).
/// configure() / acquire_ring() / export run in normal thread context; only
/// Ring::record and LatencyHistogram::record are signal-safe.
class Collector {
 public:
  static Collector& instance();

  /// (Re)arm tracing: drops data from any previous run, allocates the slab
  /// lazily per acquired ring. Called by Runtime startup.
  void configure(const TraceConfig& cfg);
  /// Stop recording (rings keep their data for late export).
  void disable();

  /// Bumped by every configure(). Long-lived external threads cache their
  /// ring pointer in TLS across Runtime lifetimes; comparing this epoch lets
  /// them detect that configure() freed the old slab and re-acquire instead
  /// of writing through a dangling pointer.
  std::uint64_t config_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  const TraceConfig& config() const { return cfg_; }

  /// Register the calling OS thread's ring. NOT signal-safe; call from
  /// thread-startup code. Returns nullptr when tracing is off.
  Ring* acquire_ring(TrackKind kind, int id);

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

  /// Write the whole trace as Chrome trace_event JSON ("traceEvents" array,
  /// one track per worker, per parked KLT, and for the timer/creator
  /// threads). Loadable in Perfetto / chrome://tracing. Returns false on I/O
  /// error or when no trace was collected.
  bool write_chrome_json(const std::string& path) const;

  /// Write every committed event as one flat JSON object per line
  /// ({"ts":..,"type":"..","ult":..,"worker":..,"arg0":..,"arg1":..}),
  /// sorted by timestamp — the analyzer/validator input format
  /// (docs/observability.md, "Causal tracing & scheduling delay").
  bool write_events_jsonl(const std::string& path) const;

  /// Copy of every committed event across all rings, sorted by timestamp
  /// (ties broken so wake/re-ready events sort before the dispatch that
  /// consumes them). For tests and in-process analysis.
  std::vector<EventView> snapshot_events() const;

  /// Human-readable per-event-type counts + drop accounting, plus the
  /// top-10 slowest ready→dispatch delays observed in the event log.
  void write_summary(std::FILE* out) const;

 private:
  struct RingBlock {
    std::unique_ptr<Event[]> slots;
    Ring ring;
  };

  mutable std::mutex rings_lock_;
  std::vector<std::unique_ptr<RingBlock>> rings_;
  TraceConfig cfg_;
  std::atomic<int> next_track_id_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

/// Global on/off flag read by every recording macro (relaxed: a few cycles).
extern std::atomic<bool> g_enabled;
inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// Resolve the effective config: `base` (RuntimeOptions) overridden by the
/// LPT_TRACE / LPT_TRACE_FILE / LPT_TRACE_RING_CAP / LPT_TRACE_EVENTS_FILE
/// environment variables. LPT_TRACE=1 with no file configured defaults the
/// file to "lpt_trace.json" so a plain `LPT_TRACE=1 ./bench` always leaves a
/// trace; LPT_TRACE_EVENTS_FILE (raw JSONL event log) implies enabled.
TraceConfig resolve_config(TraceConfig base);

}  // namespace lpt::trace
