// Standalone validator for the causal event log (docs/observability.md,
// "Causal tracing & scheduling delay"). The check.sh smoke runs a mixed
// workload with LPT_TRACE_EVENTS_FILE + LPT_METRICS_FILE set and feeds both
// outputs through this binary, which cross-checks the raw JSONL event log
// against the same run's published Prometheus metrics:
//
//   1. Structure: every line parses, timestamps are sorted, types are known.
//   2. Ready/dispatch pairing: every ult_dispatch is preceded — since that
//      ULT's previous dispatch — by an event that made it runnable
//      (ult_wake, ult_yield, preempt_signal_yield, preempt_klt_switch), and
//      its arg0 (scheduling delay) is plausible against the event gap.
//   3. Wake-edge referential integrity: every ult_wake names a real woken
//      ULT, and a nonzero waker (arg0) is a ULT that itself appears in the
//      log no later than the edge.
//   4. Exact reconciliation: the number of dispatches and the summed per-ULT
//      scheduling delay in the log equal the lpt_sched_delay_ns histogram's
//      _count/_sum across pools, and first-dispatches equal the
//      lpt_spawn_latency_ns _count. Requires a drop-free ring
//      (lpt_trace_dropped_total == 0); run with LPT_TRACE_RING_CAP sized for
//      the workload.
//
// Exit 0 when every check passes.
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/prom_parser.hpp"

namespace {

struct Event {
  std::int64_t ts = 0;
  std::string type;
  std::uint64_t ult = 0;
  std::int64_t worker = -1;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

int g_rc = 0;
void fail(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "trace_check: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  g_rc = 1;
}

/// Pull one "key":value pair out of a flat one-line JSON object. The JSONL
/// writer emits exactly {"ts":N,"type":"s","ult":N,"worker":N,"arg0":N,
/// "arg1":N}, so a targeted scan beats a JSON parser dependency.
bool json_field(const std::string& line, const char* key, std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  if (i < line.size() && line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(i + 1, end - i - 1);
    return true;
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(i, end - i);
  return true;
}

std::string slurp(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return {};
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

const std::set<std::string> kKnownTypes = {
    "ult_dispatch",   "ult_yield",       "ult_block",
    "ult_exit",       "ult_wake",        "preempt_signal_yield",
    "preempt_klt_switch", "handler_enter", "handler_deferred",
    "steal",          "worker_park",     "worker_unpark",
    "klt_suspend",    "klt_resume",      "klt_pool_hit",
    "klt_pool_miss",  "klt_created",     "timer_fire",
    "klt_degraded_tick", "timer_fallback", "stack_alloc_fail",
    "watchdog_flag",  "ult_fault",       "klt_retired",
    "stack_near_overflow", "ult_cancel", "remediation",
    "prof_sample",    "offcpu_wait",     "lock_contended",
    "syscall_block",  "syscall_compensate", "syscall_return",
};

bool is_ready_event(const std::string& t) {
  return t == "ult_wake" || t == "ult_yield" || t == "preempt_signal_yield" ||
         t == "preempt_klt_switch";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <events-jsonl> <metrics-file>\n", argv[0]);
    return 2;
  }
  const std::string jsonl = slurp(argv[1]);
  if (jsonl.empty()) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", argv[1]);
    return 2;
  }
  const std::string prom_text = slurp(argv[2]);
  if (prom_text.empty()) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", argv[2]);
    return 2;
  }

  // ----- parse the event log ------------------------------------------------
  std::vector<Event> evs;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < jsonl.size()) {
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string::npos) eol = jsonl.size();
    const std::string line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty()) continue;
    Event e;
    std::string v;
    if (!json_field(line, "ts", &v)) {
      fail("line %d: missing ts", lineno);
      continue;
    }
    e.ts = std::strtoll(v.c_str(), nullptr, 10);
    if (!json_field(line, "type", &v)) {
      fail("line %d: missing type", lineno);
      continue;
    }
    e.type = v;
    if (json_field(line, "ult", &v)) e.ult = std::strtoull(v.c_str(), nullptr, 10);
    if (json_field(line, "worker", &v)) e.worker = std::strtoll(v.c_str(), nullptr, 10);
    if (json_field(line, "arg0", &v)) e.arg0 = std::strtoull(v.c_str(), nullptr, 10);
    if (json_field(line, "arg1", &v)) e.arg1 = std::strtoull(v.c_str(), nullptr, 10);
    if (!kKnownTypes.count(e.type)) fail("line %d: unknown type '%s'", lineno, e.type.c_str());
    if (!evs.empty() && e.ts < evs.back().ts)
      fail("line %d: timestamps not sorted (%" PRId64 " after %" PRId64 ")",
           lineno, e.ts, evs.back().ts);
    evs.push_back(std::move(e));
  }
  if (evs.empty()) {
    fail("no events in %s", argv[1]);
    return g_rc;
  }

  // ----- parse the metrics --------------------------------------------------
  const lpt::promtest::Parsed prom = lpt::promtest::parse(prom_text);
  for (const std::string& err : prom.errors) fail("metrics: %s", err.c_str());

  const double dropped = prom.sum("lpt_trace_dropped_total");
  if (dropped != 0.0)
    fail("lpt_trace_dropped_total = %.0f: the event log is incomplete; "
         "re-run with a larger LPT_TRACE_RING_CAP", dropped);

  // ----- ready/dispatch pairing + per-ULT delay accumulation ----------------
  // ready_ts: ULT -> timestamp of its unconsumed became-ready event.
  std::map<std::uint64_t, std::int64_t> ready_ts;
  std::set<std::uint64_t> dispatched;     // ULTs with >= 1 dispatch
  std::set<std::uint64_t> seen_ults;      // any event naming this ULT so far
  std::uint64_t dispatches = 0, summed_delay = 0, wake_edges = 0;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const Event& e = evs[i];
    if (e.ult != 0) seen_ults.insert(e.ult);
    if (is_ready_event(e.type)) {
      if (e.ult == 0) {
        fail("event %zu: %s without a ULT id", i, e.type.c_str());
        continue;
      }
      if (ready_ts.count(e.ult))
        fail("event %zu: ULT %" PRIu64 " made ready twice without a dispatch",
             i, e.ult);
      ready_ts[e.ult] = e.ts;
      if (e.type == "ult_wake") {
        ++wake_edges;
        // Referential integrity: a nonzero waker is a ULT that has already
        // appeared in the log (it was running when it issued the wake).
        if (e.arg0 != 0 && !seen_ults.count(e.arg0))
          fail("event %zu: wake of ULT %" PRIu64 " names unknown waker %" PRIu64,
               i, e.ult, e.arg0);
      }
    } else if (e.type == "ult_dispatch") {
      ++dispatches;
      dispatched.insert(e.ult);
      auto it = ready_ts.find(e.ult);
      if (it == ready_ts.end()) {
        fail("event %zu: dispatch of ULT %" PRIu64 " with no prior ready event",
             i, e.ult);
        continue;
      }
      // arg0 is the delay the dispatching worker measured from the ready
      // stamp it consumed; the event-log gap brackets it from below only
      // loosely (emit happens after the stamp), so check plausibility: the
      // recorded delay must not be wildly larger than the observed gap.
      const std::uint64_t gap = static_cast<std::uint64_t>(e.ts - it->second);
      if (e.arg0 > gap + 1'000'000'000ull)
        fail("event %zu: dispatch delay %" PRIu64 " ns exceeds ready->dispatch "
             "gap %" PRIu64 " ns by more than a second", i, e.arg0, gap);
      summed_delay += e.arg0;
      ready_ts.erase(it);
    }
  }

  // ----- exact reconciliation against the histograms ------------------------
  if (dropped == 0.0) {
    const auto expect_eq = [&](const char* what, double log_v, double prom_v) {
      if (log_v != prom_v)
        fail("%s: event log says %.0f, metrics say %.0f", what, log_v, prom_v);
    };
    expect_eq("dispatch count vs lpt_sched_delay_ns_count",
              static_cast<double>(dispatches),
              prom.sum("lpt_sched_delay_ns_count"));
    expect_eq("summed scheduling delay vs lpt_sched_delay_ns_sum",
              static_cast<double>(summed_delay),
              prom.sum("lpt_sched_delay_ns_sum"));
    expect_eq("first-dispatched ULTs vs lpt_spawn_latency_ns_count",
              static_cast<double>(dispatched.size()),
              prom.sum("lpt_spawn_latency_ns_count"));
    expect_eq("dispatch count vs lpt_dispatches_total",
              static_cast<double>(dispatches),
              prom.sum("lpt_dispatches_total"));
    // Histogram self-consistency: +Inf bucket == count, per pool.
    for (const lpt::promtest::Sample& s : prom.samples) {
      if (s.name != "lpt_sched_delay_ns_bucket" &&
          s.name != "lpt_spawn_latency_ns_bucket")
        continue;
      auto le = s.labels.find("le");
      if (le == s.labels.end() || le->second != "+Inf") continue;
      auto pool = s.labels.find("pool");
      std::map<std::string, std::string> where;
      if (pool != s.labels.end()) where["pool"] = pool->second;
      const std::string count_name =
          s.name.substr(0, s.name.size() - 7) + "_count";
      const double count = prom.sum(count_name, where);
      if (s.value != count)
        fail("%s{pool=%s,le=+Inf} = %.0f != %s = %.0f", s.name.c_str(),
             pool != s.labels.end() ? pool->second.c_str() : "?", s.value,
             count_name.c_str(), count);
    }
  }

  if (g_rc == 0)
    std::printf("trace_check: %s ok (%zu events, %" PRIu64 " dispatches, %"
                PRIu64 " wake edges, %" PRIu64 " ns total delay)\n",
                argv[1], evs.size(), dispatches, wake_edges, summed_delay);
  return g_rc;
}
