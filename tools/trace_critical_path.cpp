// Offline critical-path analyzer for the causal event log
// (docs/observability.md, "Causal tracing & scheduling delay").
//
// Input: the raw JSONL event log written when LPT_TRACE_EVENTS_FILE is set
// (one {"ts":..,"type":"..","ult":..,"worker":..,"arg0":..,"arg1":..} object
// per line, sorted by timestamp). Starting from a chosen ULT's ult_exit —
// by default the last ULT to exit — the analyzer walks wake edges backward
// to reconstruct the longest run+wait chain that ended at that exit:
//
//   - run segments stay on the current ULT (dispatch -> yield/preempt/block),
//   - runnable-wait segments are the ready -> dispatch scheduling delays,
//   - a blocked segment (ult_block -> ult_wake) hops the chain to the waker
//     named by the wake edge: whatever the waker was doing up to the wake is
//     what the blocked thread was really waiting for,
//   - external wakes (waker 0: timer expiry, reabsorption, application
//     threads) and the spawn edge terminate the walk.
//
// Every segment is attributed to run / runnable-wait / blocked-on-{kind} /
// in-syscall, with per-category totals at the end — the "why was this thread
// late" answer assembled from causes, not symptoms.
//
// Usage: trace_critical_path <events.jsonl> [--ult N] [--max-hops N]
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

struct Event {
  std::int64_t ts = 0;
  std::uint64_t ult = 0;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  // Only the lifecycle subset the walk needs.
  enum Kind { kOther, kDispatch, kYield, kPreempt, kBlock, kWake, kExit } kind = kOther;
};

/// prof::WaitKind numbering (src/prof/prof.hpp) + the spawn sentinel the
/// wake edge uses for freshly spawned ULTs (trace::kWakeArgSpawn).
const char* wait_kind_name(std::uint64_t k) {
  switch (k) {
    case 0: return "none";
    case 1: return "mutex";
    case 2: return "condvar";
    case 3: return "barrier";
    case 4: return "rwlock";
    case 5: return "semaphore";
    case 6: return "latch";
    case 7: return "waitgroup";
    case 8: return "join";
    case 9: return "sleep";
    case 10: return "busyflag";
    case 11: return "syscall";
    case 100: return "spawn";
    default: return "unknown";
  }
}

bool json_field(const std::string& line, const char* key, std::string* out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = at + needle.size();
  if (i < line.size() && line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    *out = line.substr(i + 1, end - i - 1);
    return true;
  }
  std::size_t end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  *out = line.substr(i, end - i);
  return true;
}

Event::Kind classify(const std::string& type) {
  if (type == "ult_dispatch") return Event::kDispatch;
  if (type == "ult_yield") return Event::kYield;
  if (type == "preempt_signal_yield" || type == "preempt_klt_switch")
    return Event::kPreempt;
  if (type == "ult_block") return Event::kBlock;
  if (type == "ult_wake") return Event::kWake;
  if (type == "ult_exit") return Event::kExit;
  // A cancelled ULT (deadline, directed cancel, deadlock break) never emits
  // ult_exit; its cancellation is the end of its timeline all the same.
  if (type == "ult_cancel") return Event::kExit;
  return Event::kOther;
}

/// One step of the reconstructed chain, in cause order.
struct Segment {
  std::uint64_t ult = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::string what;  // run | runnable-wait | blocked-on-<kind> | in-syscall
};

struct Timelines {
  // Per-ULT lifecycle events, each sorted by timestamp (input order).
  std::map<std::uint64_t, std::vector<Event>> per_ult;
};

/// One member of a detector-flagged deadlock cycle ("deadlock" events:
/// ult=member, arg0=cycle id, arg1=awaited WaitKind | 0x100 when this member
/// was cancelled to break the cycle).
struct CycleMember {
  std::uint64_t ult = 0;
  std::uint64_t wait_kind = 0;
  bool victim = false;
};
constexpr std::uint64_t kDeadlockVictimFlag = 0x100;

/// Walk one ULT backward from `upto`, prepending segments to `path` (which
/// is built cause-first by reversing at the end). Returns the waker to hop
/// to (and sets *hop_ts), or 0 when the chain terminates on this ULT.
std::uint64_t walk_back(const Timelines& tl, std::uint64_t ult,
                        std::int64_t upto, std::vector<Segment>* path,
                        std::int64_t* hop_ts) {
  auto it = tl.per_ult.find(ult);
  if (it == tl.per_ult.end()) return 0;
  const std::vector<Event>& evs = it->second;
  // Last event at or before `upto`.
  std::size_t i = evs.size();
  while (i > 0 && evs[i - 1].ts > upto) --i;
  std::int64_t seg_end = upto;
  while (i > 0) {
    const Event& e = evs[--i];
    switch (e.kind) {
      case Event::kDispatch:
        // dispatch -> seg_end was on-CPU; before it, the recorded
        // scheduling delay (arg0) was spent runnable in a pool.
        path->push_back({ult, e.ts, seg_end, "run"});
        if (e.arg0 != 0) {
          path->push_back(
              {ult, e.ts - static_cast<std::int64_t>(e.arg0), e.ts,
               "runnable-wait"});
          seg_end = e.ts - static_cast<std::int64_t>(e.arg0);
        } else {
          seg_end = e.ts;
        }
        break;
      case Event::kYield:
      case Event::kPreempt:
        // Re-ready on the same ULT: the gap up to the next dispatch is the
        // runnable-wait the dispatch's arg0 already covered; just move on.
        seg_end = e.ts;
        break;
      case Event::kWake: {
        const std::uint64_t kind = e.arg1;
        if (kind == 100) {  // spawn edge: birth of this ULT
          if (e.arg0 != 0) {
            *hop_ts = e.ts;
            return e.arg0;  // continue into the spawning ULT
          }
          return 0;  // spawned by an external thread: chain ends
        }
        // The blocked episode [ult_block, wake]; find the matching block.
        std::int64_t block_ts = e.ts;
        for (std::size_t j = i; j > 0; --j) {
          if (evs[j - 1].kind == Event::kBlock) {
            block_ts = evs[j - 1].ts;
            break;
          }
          if (evs[j - 1].kind == Event::kDispatch) break;  // malformed
        }
        const char* base = kind == 11 ? "in-syscall" : nullptr;
        path->push_back({ult, block_ts, e.ts,
                         base != nullptr
                             ? std::string(base)
                             : "blocked-on-" + std::string(wait_kind_name(kind))});
        if (e.arg0 != 0) {
          *hop_ts = e.ts;
          return e.arg0;  // hop to the waker: it is the cause from here back
        }
        seg_end = block_ts;
        break;
      }
      case Event::kBlock:
      case Event::kExit:
      case Event::kOther:
        break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* file = nullptr;
  std::uint64_t target = 0;
  int max_hops = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ult") == 0 && i + 1 < argc)
      target = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--max-hops") == 0 && i + 1 < argc)
      max_hops = std::atoi(argv[++i]);
    else
      file = argv[i];
  }
  if (file == nullptr) {
    std::fprintf(stderr,
                 "usage: %s <events-jsonl> [--ult N] [--max-hops N]\n",
                 argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(file, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_critical_path: cannot open %s\n", file);
    return 2;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  Timelines tl;
  std::map<std::uint64_t, std::int64_t> exits;            // ult -> exit ts
  std::map<std::uint64_t, std::vector<CycleMember>> cycles;  // cycle id -> members
  std::map<std::uint64_t, std::uint64_t> victim_cycle;    // victim ult -> cycle id
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    std::string v;
    Event e;
    if (!json_field(line, "ts", &v)) continue;
    e.ts = std::strtoll(v.c_str(), nullptr, 10);
    if (!json_field(line, "type", &v)) continue;
    e.kind = classify(v);
    const bool is_deadlock = v == "deadlock";
    if (e.kind == Event::kOther && !is_deadlock) continue;
    if (json_field(line, "ult", &v)) e.ult = std::strtoull(v.c_str(), nullptr, 10);
    if (json_field(line, "arg0", &v)) e.arg0 = std::strtoull(v.c_str(), nullptr, 10);
    if (json_field(line, "arg1", &v)) e.arg1 = std::strtoull(v.c_str(), nullptr, 10);
    if (e.ult == 0) continue;
    if (is_deadlock) {
      CycleMember m;
      m.ult = e.ult;
      m.wait_kind = e.arg1 & ~kDeadlockVictimFlag;
      m.victim = (e.arg1 & kDeadlockVictimFlag) != 0;
      cycles[e.arg0].push_back(m);
      if (m.victim) victim_cycle[m.ult] = e.arg0;
      continue;
    }
    tl.per_ult[e.ult].push_back(e);
    if (e.kind == Event::kExit) exits[e.ult] = e.ts;
  }
  if (tl.per_ult.empty()) {
    std::fprintf(stderr, "trace_critical_path: no lifecycle events in %s\n", file);
    return 1;
  }
  if (target == 0) {
    // Default: the last ULT to exit — the one that bounded the run.
    std::int64_t best = INT64_MIN;
    for (const auto& kv : exits)
      if (kv.second > best) {
        best = kv.second;
        target = kv.first;
      }
    if (target == 0) {
      std::fprintf(stderr, "trace_critical_path: no ult_exit events; pass --ult\n");
      return 1;
    }
  }
  auto ex = exits.find(target);
  if (ex == exits.end()) {
    std::fprintf(stderr, "trace_critical_path: ULT %" PRIu64 " has no ult_exit\n",
                 target);
    return 1;
  }

  // Walk backward from the exit, hopping across wake edges.
  std::vector<Segment> path;  // effect-first; reversed below
  std::uint64_t ult = target;
  std::uint64_t chain_end = target;  // cause-side terminus of the walk
  std::int64_t upto = ex->second;
  int hops = 0;
  while (ult != 0 && hops++ < max_hops) {
    chain_end = ult;
    std::int64_t hop_ts = 0;
    ult = walk_back(tl, ult, upto, &path, &hop_ts);
    upto = hop_ts;
  }

  std::printf("critical path ending at ULT %" PRIu64 " exit (ts %" PRId64
              " ns), cause-first:\n",
              target, ex->second);
  std::printf("%12s %12s %6s  %s\n", "ts_ns", "dur_us", "ult", "segment");
  std::map<std::string, std::int64_t> totals;
  std::int64_t total = 0;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const std::int64_t dur = it->end - it->begin;
    std::printf("%12" PRId64 " %12.1f %6" PRIu64 "  %s\n", it->begin,
                static_cast<double>(dur) / 1e3, it->ult, it->what.c_str());
    totals[it->what] += dur;
    total += dur;
  }
  std::printf("\ntotals over %.1f us of critical path (%d hop%s):\n",
              static_cast<double>(total) / 1e3, hops - 1, hops == 2 ? "" : "s");
  for (const auto& kv : totals)
    std::printf("  %-24s %12.1f us  %5.1f%%\n", kv.first.c_str(),
                static_cast<double>(kv.second) / 1e3,
                total > 0 ? 100.0 * static_cast<double>(kv.second) /
                                static_cast<double>(total)
                          : 0.0);

  // If the cause-side end of the chain is a ULT the watchdog cancelled to
  // break a deadlock, the real root cause is the cycle itself — name every
  // member from the detector's kDeadlock events (docs/robustness.md).
  auto vc = victim_cycle.find(chain_end);
  if (vc != victim_cycle.end()) {
    const std::vector<CycleMember>& members = cycles[vc->second];
    std::printf(
        "\nchain ends at ULT %" PRIu64
        ", cancelled by the watchdog to break deadlock cycle %" PRIu64 ":\n",
        chain_end, vc->second);
    for (const CycleMember& m : members)
      std::printf("  ULT %-6" PRIu64 " blocked-on-%s%s\n", m.ult,
                  wait_kind_name(m.wait_kind), m.victim ? "  [victim]" : "");
  }
  return 0;
}
