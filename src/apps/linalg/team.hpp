// An "MKL-like" inner thread team: fork `width` ULTs for one kernel call and
// join them at a busy-wait barrier on a memory flag — the synchronization
// structure of OpenMP-parallel Intel MKL that the paper reverse-engineered
// (§4.1). The wait policy is configurable:
//   kSpin       faithful MKL behaviour: deadlocks on nonpreemptive M:N
//               threads unless the team threads are preemptive
//   kSpinYield  the paper's reverse-engineered variant (explicit yield)
//   kBlocking   cooperative barrier (a ULT-native team, for contrast)
#pragma once

#include <atomic>
#include <functional>

#include "runtime/lpt.hpp"

namespace lpt::apps {

enum class TeamWait { kSpin, kSpinYield, kBlocking };

struct TeamOptions {
  int width = 4;
  TeamWait wait = TeamWait::kSpinYield;
  Preempt preempt = Preempt::None;  ///< preemption type of team members
};

/// Run body(rank) on `width` ULTs (the caller becomes rank 0) and join at an
/// end-of-call barrier with the configured wait policy. Must be called from
/// ULT context.
void team_parallel(const TeamOptions& opts,
                   const std::function<void(int rank)>& body);

}  // namespace lpt::apps
