// Umbrella header of the lpt library (Lightweight Preemptive Threads):
// include this to use the public API.
//
//   Runtime / RuntimeOptions / Thread / ThreadAttrs  — runtime + spawning
//   Preempt / TimerKind / SchedulerKind / KltSuspend — configuration enums
//   this_thread::yield / in_ult / worker_rank        — current-thread ops
//   Mutex / CondVar / Barrier / BusyFlag             — ULT-aware sync
//   NoPreemptGuard                                   — defer preemption
//   Runtime::metrics_snapshot / write_metrics        — always-on metrics
//   WatchdogReport (RuntimeOptions::watchdog_*)      — starvation watchdog
//   io::call / io::blocking_region / io::read ...    — blocking-syscall guards
#pragma once

#include "runtime/io_guard.hpp"      // IWYU pragma: export
#include "runtime/options.hpp"       // IWYU pragma: export
#include "runtime/parallel_for.hpp"  // IWYU pragma: export
#include "runtime/runtime.hpp"       // IWYU pragma: export
#include "runtime/sync.hpp"          // IWYU pragma: export
#include "runtime/sync_extra.hpp"    // IWYU pragma: export
#include "runtime/thread.hpp"        // IWYU pragma: export
