file(REMOVE_RECURSE
  "liblpt_apps.a"
)
