file(REMOVE_RECURSE
  "CMakeFiles/micro_threading.dir/micro_threading.cpp.o"
  "CMakeFiles/micro_threading.dir/micro_threading.cpp.o.d"
  "micro_threading"
  "micro_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
