#include "runtime/fault.hpp"

#include <pthread.h>
#include <ucontext.h>

#include <atomic>
#include <csignal>
#include <cstring>

#include "common/assert.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/signals.hpp"

// Sanitizers install their own SIGSEGV handler (stack-use-after-return
// machinery, shadow-memory fault decoding) and must keep it; containment is
// compiled out so ASan/TSan builds crash-and-report like any other program.
// LPT_SANITIZE_BUILD comes from CMake's LPT_SANITIZE option; the feature
// macros catch builds sanitized through raw flags.
#if defined(LPT_SANITIZE_BUILD) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define LPT_FAULT_CONTAINMENT 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LPT_FAULT_CONTAINMENT 0
#else
#define LPT_FAULT_CONTAINMENT 1
#endif
#else
#define LPT_FAULT_CONTAINMENT 1
#endif

namespace lpt::fault {

namespace {

std::atomic<bool> g_installed{false};
struct sigaction g_prev_segv;
struct sigaction g_prev_bus;

#if LPT_FAULT_CONTAINMENT

/// Give the fault back to whoever handled it before the runtime: reinstall
/// the saved disposition and return from the handler, so the kernel re-raises
/// the fault at the same instruction with registers and si_addr intact — the
/// process dies loudly through the original handler or the default core
/// dump. SIG_IGN would re-fault forever, so it degrades to SIG_DFL.
void chain_to_previous(int signo) {
  struct sigaction prev = signo == SIGBUS ? g_prev_bus : g_prev_segv;
  if ((prev.sa_flags & SA_SIGINFO) == 0 && prev.sa_handler == SIG_IGN)
    prev.sa_handler = SIG_DFL;
  if (::sigaction(signo, &prev, nullptr) != 0) ::signal(signo, SIG_DFL);
}

/// The containment decision + recovery. Async-signal-safe throughout:
/// atomics, TLS via worker_tls(), lock-free pool pop, context jump.
void fault_handler(int signo, siginfo_t* si, void* uctx) {
  Runtime* rt = detail::runtime_instance();
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  ThreadCtl* t = nullptr;
  // Identity from the hosting KLT, not the worker: after a forced KLT
  // replacement (watchdog remediation) w->current_ult belongs to the new
  // host while this KLT still runs its old ULT.
  if (rt != nullptr && w != nullptr && tls->in_ult) t = tls->hosted_ult;
  if (t == nullptr) {
    // Scheduler context, runtime helper thread, or an application kernel
    // thread: not recoverable — nothing owns the faulting frames.
    chain_to_previous(signo);
    return;
  }

  const std::uintptr_t addr =
      reinterpret_cast<std::uintptr_t>(si != nullptr ? si->si_addr : nullptr);
  bool overflow = t->stack.in_guard(addr);
#if defined(__x86_64__)
  if (!overflow && t->stack.valid()) {
    // Frame-skip heuristic: a frame larger than the one-page guard can step
    // clean over it. When the ULT's stack pointer has already descended into
    // (or below) the guard, a fault just under the mapping is an overflow.
    const auto* uc = static_cast<const ucontext_t*>(uctx);
    const auto sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
    const auto gbase = reinterpret_cast<std::uintptr_t>(t->stack.guard());
    const auto gend = gbase + t->stack.guard_size();
    if (sp < gend && addr < gend && gbase - addr <= t->stack.size())
      overflow = true;
  }
#endif

  // A non-overflow fault is contained only on explicit opt-in: the wild
  // access may have corrupted state beyond the ULT. And a ULT inside a
  // NoPreemptGuard may hold scheduler-shared locks — abandoning it would
  // leave them locked, so that is not recoverable either (docs/robustness.md).
  const bool contain = overflow || rt->options().isolate_faults;
  if (!contain || t->no_preempt_depth > 0) {
    chain_to_previous(signo);
    return;
  }

  t->fault.kind = overflow                ? FaultKind::kStackOverflow
                  : signo == SIGBUS       ? FaultKind::kBus
                                          : FaultKind::kSegv;
  t->fault.fault_addr = addr;
  t->store_state(ThreadState::kFailed);
  w->metrics.ult_faults.add(1);
  if (overflow) w->metrics.stack_overflows.add(1);
  LPT_TRACE_EVENT(trace::EventType::kUltFault, t->trace_id,
                  static_cast<std::uint64_t>(t->fault.kind), addr);

  // Claim scheduler-context ownership before recovering through it
  // (worker.hpp host_token). A failed claim means the watchdog force-replaced
  // this KLT's worker host: the scheduler context runs elsewhere, so recover
  // through the orphan retirement instead — klt_main finalizes the thread
  // after the jump and this kernel thread exits.
  {
    KltCtl* self = tls->klt;
    KltCtl* expect = self;
    if (self == nullptr ||
        !w->host_token.compare_exchange_strong(expect, nullptr,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      if (self == nullptr) {
        chain_to_previous(signo);
        return;
      }
      tls->in_ult = false;
      self->orphan_finalize = t;
      self->orphan_finished = false;
      self->pending_wake = nullptr;
      self->pending_wake_in_handler = false;
      self->native_op = KltNativeOp::kExit;
      context_jump(self->native_ctx);
    }
  }

  // Recover via the signal-yield trick (§3.1.1), minus the context save: the
  // faulting frames are garbage, so jump straight into scheduler context and
  // let the kFault post action quarantine the stack and wake joiners. No
  // sigreturn happens, so the post action must also unblock the fault
  // signals (unblock_fault_signals, mirroring unblock_preempt()).
  tls->in_ult = false;
  w->post = PostAction{PostKind::kFault, t, nullptr, nullptr};

  if (t->preempt == Preempt::KltSwitch) {
    // KLT-switching advertises that the thread may use KLT-dependent state
    // (§3.1.2) — and this KLT's copy of it just died mid-fault. Retire the
    // poisoned KLT: hand the worker role to a pool spare (exactly the
    // handler's preemption handoff) and exit this kernel thread instead of
    // ever returning it to the pool. The retired KLT keeps counting against
    // max_klts until shutdown joins it.
    KltCtl* self = tls->klt;
    KltCtl* b = self != nullptr ? rt->klt_pool().try_pop(w->rank) : nullptr;
    if (b != nullptr) {
      rt->note_klt_retired();
      LPT_TRACE_EVENT(trace::EventType::kKltRetired, t->trace_id,
                      static_cast<std::uint64_t>(self->trace_id >= 0
                                                     ? self->trace_id
                                                     : 0));
      b->action = KltAction::kBecomeWorker;
      b->assign_worker = w;
      b->gate.post();  // b resumes w->sched_ctx and runs the post action
      self->pending_wake = nullptr;
      self->pending_wake_in_handler = false;
      self->native_op = KltNativeOp::kExit;
      context_jump(self->native_ctx);  // klt_main returns; joined at shutdown
    }
    // No spare to take over: keep hosting the worker here (the KLT survived
    // well enough to run this handler) and request a replacement so a later
    // fault can retire it.
    if (!rt->klt_creator().saturated() && !rt->klt_cap_reached())
      rt->klt_creator().request();
  }
  context_jump(w->sched_ctx);
}

#endif  // LPT_FAULT_CONTAINMENT

}  // namespace

bool available() {
#if LPT_FAULT_CONTAINMENT
  return g_installed.load(std::memory_order_acquire);
#else
  return false;
#endif
}

void install(Runtime& rt) {
#if LPT_FAULT_CONTAINMENT
  if (!rt.options().fault_isolation) return;
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &fault_handler;
  sigemptyset(&sa.sa_mask);
  // Block the preemption signals while classifying: a timer tick nested in
  // the fault handler would try to preempt the already-dead ULT frame.
  sigaddset(&sa.sa_mask, SIGSEGV);
  sigaddset(&sa.sa_mask, SIGBUS);
  sigaddset(&sa.sa_mask, signals::preempt_signo());
  sigaddset(&sa.sa_mask, signals::resume_signo());
  // SA_ONSTACK: the faulting ULT's stack is the broken thing being reported
  // (a guard-page fault cannot push a signal frame there at all); each KLT
  // registers a sigaltstack in klt_main. Threads without one — application
  // KLTs — get the handler on their regular stack, where it only chains.
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  LPT_CHECK(::sigaction(SIGSEGV, &sa, &g_prev_segv) == 0);
  LPT_CHECK(::sigaction(SIGBUS, &sa, &g_prev_bus) == 0);
#else
  (void)rt;
#endif
}

void restore() {
#if LPT_FAULT_CONTAINMENT
  if (!g_installed.exchange(false, std::memory_order_acq_rel)) return;
  ::sigaction(SIGSEGV, &g_prev_segv, nullptr);
  ::sigaction(SIGBUS, &g_prev_bus, nullptr);
#endif
}

void register_alt_stack(KltCtl* k) {
#if LPT_FAULT_CONTAINMENT
  if (!g_installed.load(std::memory_order_acquire)) return;
  k->alt_stack.reset(new char[kAltStackSize]);
  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = k->alt_stack.get();
  ss.ss_size = kAltStackSize;
  LPT_CHECK(::sigaltstack(&ss, nullptr) == 0);
#else
  (void)k;
#endif
}

void unblock_fault_signals() {
  // The containment jump skipped sigreturn, so the faulting KLT still has
  // SIGSEGV (kernel-added) plus the handler's sa_mask blocked. Restore the
  // normal worker mask: fault signals and the preempt signal unblocked, the
  // resume signal kept blocked (klt_main's baseline).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGSEGV);
  sigaddset(&set, SIGBUS);
  sigaddset(&set, signals::preempt_signo());
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
}

}  // namespace lpt::fault
