// Figure 9 reproduction: LAMMPS-style in situ analysis overhead vs problem
// size, for Pthreads/Argobots with and without priority scheduling, at
// analysis intervals 1 (every step) and 2 (every other step).
//
// Paper anchors: Argobots beats Pthreads (cheaper threading), especially at
// small problem sizes; priority helps both at large sizes; the priority
// benefit is larger at analysis interval 2 (the analysis then fits in the
// communication windows); Argobots w/ priority is best overall.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/workloads/insitu_md.hpp"

using namespace lpt;
using namespace lpt::sim;

namespace {

struct SweepResult {
  double pth_avg = 0, pthp_avg = 0, argo_avg = 0, argop_avg = 0;
  double argo_small = 0, argop_large = 0, argo_large = 0;
};

SweepResult run_interval(const CostModel& cm, int analysis_interval,
                         bench::JsonReport& json) {
  std::printf("--- Fig 9%c: analysis interval = %d ---\n",
              analysis_interval == 1 ? 'a' : 'b', analysis_interval);
  const double atoms_list[] = {0.7e7, 1.4e7, 2.8e7, 4.2e7, 5.6e7};

  Table table({"atoms (x1e7)", "sim-only (s)", "Pthreads w/o prio",
               "Pthreads w/ prio", "Argobots w/o prio", "Argobots w/ prio"});
  SweepResult res;
  int count = 0;
  for (double atoms : atoms_list) {
    Fig9Config cfg;
    cfg.atoms = atoms;
    cfg.analysis_interval = analysis_interval;

    const Fig9Overhead pth = fig9_overhead(cm, cfg, Fig9Variant::kPthreads);
    const Fig9Overhead pthp =
        fig9_overhead(cm, cfg, Fig9Variant::kPthreadsPriority);
    const Fig9Overhead argo = fig9_overhead(cm, cfg, Fig9Variant::kArgobots);
    const Fig9Overhead argop =
        fig9_overhead(cm, cfg, Fig9Variant::kArgobotsPriority);

    res.pth_avg += pth.overhead;
    res.pthp_avg += pthp.overhead;
    res.argo_avg += argo.overhead;
    res.argop_avg += argop.overhead;
    char akey[64];
    std::snprintf(akey, sizeof(akey), "iv%d.overhead_pct.atoms%.1fe7",
                  analysis_interval, atoms / 1e7);
    json.set(std::string(akey) + ".pthreads", pth.overhead * 100);
    json.set(std::string(akey) + ".pthreads_prio", pthp.overhead * 100);
    json.set(std::string(akey) + ".argobots", argo.overhead * 100);
    json.set(std::string(akey) + ".argobots_prio", argop.overhead * 100);
    if (atoms < 1e7) res.argo_small = argo.overhead;
    if (atoms > 5e7) {
      res.argop_large = argop.overhead;
      res.argo_large = argo.overhead;
    }
    ++count;

    table.add_row({Table::fmt("%.1f", atoms / 1e7),
                   Table::fmt("%.1f", argo.sim_only_time / 1e9),
                   Table::fmt("%6.1f%%", pth.overhead * 100),
                   Table::fmt("%6.1f%%", pthp.overhead * 100),
                   Table::fmt("%6.1f%%", argo.overhead * 100),
                   Table::fmt("%6.1f%%", argop.overhead * 100)});
  }
  table.print();
  res.pth_avg /= count;
  res.pthp_avg /= count;
  res.argo_avg /= count;
  res.argop_avg /= count;
  std::printf("\n");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Figure 9: in situ analysis overhead (LAMMPS-style MD) ===\n");
  std::printf("Simulated 56-core Skylake node (one of four symmetric MPI "
              "processes), 100 timesteps.\n\n");

  const CostModel cm = CostModel::skylake();
  bench::JsonReport json("fig9_insitu");
  const SweepResult a = run_interval(cm, 1, json);
  const SweepResult b = run_interval(cm, 2, json);

  std::printf("Shape checks vs paper:\n");
  std::printf("  [%s] Argobots w/ priority is the best configuration "
              "(avg %.1f%% vs Pthreads w/ prio %.1f%%)\n",
              (a.argop_avg < a.pthp_avg && b.argop_avg < b.pthp_avg)
                  ? "OK"
                  : "MISMATCH",
              a.argop_avg * 100, a.pthp_avg * 100);
  std::printf("  [%s] strict priority sharply reduces Argobots overhead "
              "(%.1f%% -> %.1f%%)\n",
              a.argop_avg < 0.25 * a.argo_avg ? "OK" : "MISMATCH",
              a.argo_avg * 100, a.argop_avg * 100);
  std::printf("  [NOTE] Pthreads niceness: %.1f%% -> %.1f%% — the paper "
              "reports a modest gain only at the largest sizes and stresses "
              "nice gives no strict ordering; this second-order effect is "
              "below what the CFS model resolves (see EXPERIMENTS.md)\n",
              a.pth_avg * 100, a.pthp_avg * 100);
  std::printf("  [%s] priority benefit is larger at interval 2 (w/ prio "
              "overhead %.1f%% vs %.1f%% at interval 1)\n",
              b.argop_avg < a.argop_avg ? "OK" : "MISMATCH", b.argop_avg * 100,
              a.argop_avg * 100);
  std::printf("  [%s] at interval 2 the analysis nearly fits in the idle "
              "windows (Argobots w/ prio %.1f%%)\n",
              b.argop_large < 0.15 ? "OK" : "MISMATCH", b.argop_large * 100);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
