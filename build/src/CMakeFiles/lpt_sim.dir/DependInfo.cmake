
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/lpt_sim.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/lpt_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/timers.cpp" "src/CMakeFiles/lpt_sim.dir/sim/timers.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/timers.cpp.o.d"
  "/root/repo/src/sim/ult_model.cpp" "src/CMakeFiles/lpt_sim.dir/sim/ult_model.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/ult_model.cpp.o.d"
  "/root/repo/src/sim/workloads/cholesky_dag.cpp" "src/CMakeFiles/lpt_sim.dir/sim/workloads/cholesky_dag.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/workloads/cholesky_dag.cpp.o.d"
  "/root/repo/src/sim/workloads/compute_loop.cpp" "src/CMakeFiles/lpt_sim.dir/sim/workloads/compute_loop.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/workloads/compute_loop.cpp.o.d"
  "/root/repo/src/sim/workloads/insitu_md.cpp" "src/CMakeFiles/lpt_sim.dir/sim/workloads/insitu_md.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/workloads/insitu_md.cpp.o.d"
  "/root/repo/src/sim/workloads/packing_bsp.cpp" "src/CMakeFiles/lpt_sim.dir/sim/workloads/packing_bsp.cpp.o" "gcc" "src/CMakeFiles/lpt_sim.dir/sim/workloads/packing_bsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
