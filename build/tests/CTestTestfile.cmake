# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_basic[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_preempt[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_sync[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_sched[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_edge[1]_include.cmake")
include("/root/repo/build/tests/test_sync_extra[1]_include.cmake")
include("/root/repo/build/tests/test_compat[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sim_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
