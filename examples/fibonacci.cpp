// Fine-grained fork-join: the classic recursive Fibonacci on user-level
// threads. Spawning one ULT per node of the call tree is exactly the kind of
// fine-grained parallelism that makes M:N threads attractive (§1: "several
// orders of magnitude lower overhead ... allowing for more fine-grained
// parallelism") — try the same with one pthread per node.
//
//   $ ./examples/fibonacci [n=27] [workers=4]
#include <cstdio>
#include <cstdlib>

#include "common/time.hpp"
#include "runtime/lpt.hpp"

using namespace lpt;

namespace {

/// Sequential cutoff below which recursion stays inline.
constexpr long kCutoff = 12;

long fib_seq(long n) { return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2); }

long fib_par(Runtime& rt, long n) {
  if (n < kCutoff) return fib_seq(n);
  long left = 0;
  Thread child = rt.spawn([&rt, n, &left] { left = fib_par(rt, n - 1); });
  const long right = fib_par(rt, n - 2);
  child.join();
  return left + right;
}

}  // namespace

int main(int argc, char** argv) {
  const long n = argc > 1 ? std::atol(argv[1]) : 27;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  RuntimeOptions opts;
  opts.num_workers = workers;
  Runtime rt(opts);

  const std::int64_t t0 = now_ns();
  const long seq = fib_seq(n);
  const std::int64_t t_seq = now_ns() - t0;

  long par = 0;
  const std::int64_t t1 = now_ns();
  Thread root = rt.spawn([&] { par = fib_par(rt, n); });
  root.join();
  const std::int64_t t_par = now_ns() - t1;

  std::printf("fib(%ld) = %ld (sequential) = %ld (parallel)\n", n, seq, par);
  std::printf("sequential: %8.3f ms\n", t_seq / 1e6);
  std::printf("parallel  : %8.3f ms on %d workers (cutoff %ld)\n", t_par / 1e6,
              workers, kCutoff);
  std::printf("ULT spawns: every call-tree node above the cutoff became a "
              "user-level thread\n");
  return seq == par ? 0 : 1;
}
