// Deadlock prevention (paper §4.1): a tiled Cholesky whose tile kernels run
// MKL-style inner teams that busy-wait on a memory flag at the end of each
// call. On nonpreemptive M:N threads this wedges; with preemptive threads
// the same program completes — no source changes to the "library".
//
//   $ ./examples/deadlock_prevention
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <vector>

#include "apps/cholesky/cholesky.hpp"
#include "apps/linalg/blas.hpp"
#include "common/time.hpp"

using namespace lpt;
using namespace lpt::apps;

namespace {

/// Run the factorization in a child process with a wall-clock budget.
/// Returns true if it completed, false if it had to be killed (deadlock).
bool run_in_child(bool preemptive, double* out_diff_ok) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  pid_t pid = fork();
  if (pid == 0) {
    close(fds[0]);
    RuntimeOptions ro;
    ro.num_workers = 2;
    if (preemptive) {
      ro.timer = TimerKind::PerWorkerAligned;
      ro.interval_us = 1000;
    }
    Runtime rt(ro);

    TiledCholeskyOptions opts;
    opts.tiles = 4;
    opts.tile_n = 24;
    opts.inner_width = 3;                 // inner "MKL" team per GEMM
    opts.inner_wait = TeamWait::kSpin;    // faithful busy-wait barrier
    if (preemptive) opts.preempt = Preempt::KltSwitch;

    const int n = opts.tiles * opts.tile_n;
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    make_spd(n, a.data(), n, 11);
    std::vector<double> ref = a;
    cholesky_reference(n, ref.data(), n);

    tiled_cholesky(rt, opts, a.data(), n);
    const double diff = lower_max_diff(n, a.data(), n, ref.data(), n);
    const char ok = diff < 1e-9 ? 1 : 0;
    ssize_t ignored = write(fds[1], &ok, 1);
    (void)ignored;
    _exit(0);
  }
  close(fds[1]);
  const std::int64_t deadline = now_ns() + 5'000'000'000ll;
  int status = 0;
  bool finished = false;
  while (now_ns() < deadline) {
    if (waitpid(pid, &status, WNOHANG) == pid) {
      finished = true;
      break;
    }
    usleep(20'000);
  }
  char ok = 0;
  if (finished) {
    ssize_t ignored = read(fds[0], &ok, 1);
    (void)ignored;
  } else {
    kill(pid, SIGKILL);
    waitpid(pid, &status, 0);
  }
  close(fds[0]);
  *out_diff_ok = ok;
  return finished;
}

}  // namespace

int main() {
  std::printf("Tiled Cholesky, 4x4 tiles of 24x24, inner 3-thread teams with\n"
              "busy-wait end-of-call barriers (the MKL pattern), 2 workers.\n\n");

  double ok = 0;
  std::printf("[1/2] nonpreemptive M:N threads ... ");
  std::fflush(stdout);
  const bool nonpre = run_in_child(false, &ok);
  std::printf("%s\n", nonpre ? "completed (lucky schedule)"
                             : "DEADLOCK — killed after 5 s, as §4.1 predicts");

  std::printf("[2/2] preemptive (KLT-switching, 1 ms timer) ... ");
  std::fflush(stdout);
  const bool pre = run_in_child(true, &ok);
  std::printf("%s%s\n", pre ? "completed" : "DEADLOCK (unexpected!)",
              (pre && ok) ? ", factorization verified against reference" : "");

  std::printf("\nPreemption guarantees every thread is scheduled within a\n"
              "finite time, so busy-wait synchronization cannot wedge the\n"
              "runtime — no library rewrites (\"reverse engineering\") needed.\n");
  return pre && ok ? 0 : 1;
}
