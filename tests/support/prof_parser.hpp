// Strict parser/validator for the profiler's two export formats
// (src/prof/prof.cpp): the folded-stack text format and the JSON report.
// Used by prof_test and the check.sh smoke (tests/tools/prof_check.cpp), in
// the same spirit as prom_parser.hpp: a formatting or accounting regression
// in the exporter fails a test instead of silently corrupting a flamegraph.
//
// Folded format:
//   # lpt profile v1
//   # mode: off|hz|piggyback
//   # sample_hz: <int>
//   # max_depth: <uint>
//   # invocations: <u64>         | reconciliation contract:
//   # recorded: <u64>             |   invocations == recorded + dropped
//   # dropped: <u64>              | and sum(stack counts) <= recorded
//   # offcpu_waits: <u64>         | (equality once the runtime quiesced;
//   # offcpu_dropped: <u64>       |  mid-run a reserved-but-uncommitted
//   # lock_acquires: <u64>        |  slot is skipped by the writer)
//   # lock_contended: <u64>
//   # contention_chains: <u64>
//   ult<id>;p<pool>[;frame]... <count>
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace lpt::proftest {

// ---------------------------------------------------------------------------
// Folded-stack format
// ---------------------------------------------------------------------------

struct StackLine {
  std::uint32_t ult = 0;
  std::uint32_t pool = 0;
  std::vector<std::string> frames;  ///< outermost-first, may be empty
  std::uint64_t count = 0;
};

struct FoldedParsed {
  std::map<std::string, std::string> headers;  ///< key -> raw value
  std::vector<StackLine> stacks;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }

  std::uint64_t header_u64(const std::string& key) const {
    auto it = headers.find(key);
    if (it == headers.end()) return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }
  std::string mode() const {
    auto it = headers.find("mode");
    return it == headers.end() ? std::string() : it->second;
  }
  /// Sum of every stack line's count — must reconcile with `recorded`.
  std::uint64_t folded_sum() const {
    std::uint64_t total = 0;
    for (const StackLine& s : stacks) total += s.count;
    return total;
  }
  /// Samples attributed to one ULT id across all its stacks.
  std::uint64_t ult_samples(std::uint32_t ult) const {
    std::uint64_t total = 0;
    for (const StackLine& s : stacks)
      if (s.ult == ult) total += s.count;
    return total;
  }
};

namespace detail {

inline bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  *out = std::strtoull(s.c_str(), nullptr, 10);
  return true;
}

/// "ult<digits>" / "p<digits>" pseudo-frame -> id. Returns false on any
/// other shape so a malformed root fails loudly.
inline bool parse_prefixed_u32(const std::string& s, const std::string& prefix,
                               std::uint32_t* out) {
  if (s.size() <= prefix.size() || s.compare(0, prefix.size(), prefix) != 0)
    return false;
  std::uint64_t v = 0;
  if (!parse_u64(s.substr(prefix.size()), &v) || v > 0xffffffffULL)
    return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

}  // namespace detail

/// Parse a folded export. Structural problems are collected into `errors`
/// (with line numbers); the cross-header reconciliation checks run only when
/// every required header parsed.
inline FoldedParsed parse_folded(const std::string& text) {
  FoldedParsed out;
  static const char* const kRequired[] = {
      "mode",          "sample_hz",      "max_depth",
      "invocations",   "recorded",       "dropped",
      "offcpu_waits",  "offcpu_dropped", "lock_acquires",
      "lock_contended", "contention_chains"};

  std::size_t pos = 0;
  int lineno = 0;
  bool saw_magic = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    auto err = [&](const std::string& msg) {
      out.errors.push_back("line " + std::to_string(lineno) + ": " + msg);
    };

    if (line.empty()) continue;
    if (line[0] == '#') {
      if (lineno == 1) {
        if (line != "# lpt profile v1")
          err("bad magic '" + line + "' (want '# lpt profile v1')");
        else
          saw_magic = true;
        continue;
      }
      // "# key: value"
      const std::size_t colon = line.find(": ");
      if (line.size() < 4 || line[1] != ' ' || colon == std::string::npos ||
          colon < 3) {
        err("malformed header '" + line + "'");
        continue;
      }
      const std::string key = line.substr(2, colon - 2);
      const std::string val = line.substr(colon + 2);
      if (out.headers.count(key)) err("duplicate header '" + key + "'");
      if (!out.stacks.empty()) err("header '" + key + "' after stack lines");
      out.headers[key] = val;
      continue;
    }

    // Stack line: root;frames... count  (count after the last space).
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      err("stack line without count");
      continue;
    }
    StackLine s;
    if (!detail::parse_u64(line.substr(sp + 1), &s.count) || s.count == 0) {
      err("bad stack count '" + line.substr(sp + 1) + "'");
      continue;
    }
    // Split the stack on ';'.
    std::vector<std::string> parts;
    std::size_t start = 0;
    const std::string stack = line.substr(0, sp);
    while (start <= stack.size()) {
      std::size_t semi = stack.find(';', start);
      if (semi == std::string::npos) semi = stack.size();
      parts.push_back(stack.substr(start, semi - start));
      start = semi + 1;
    }
    if (parts.size() < 2 ||
        !detail::parse_prefixed_u32(parts[0], "ult", &s.ult) ||
        !detail::parse_prefixed_u32(parts[1], "p", &s.pool)) {
      err("stack root is not 'ult<id>;p<pool>': '" + stack + "'");
      continue;
    }
    bool frames_ok = true;
    for (std::size_t i = 2; i < parts.size(); ++i) {
      if (parts[i].empty()) {
        err("empty frame in stack '" + stack + "'");
        frames_ok = false;
        break;
      }
      s.frames.push_back(parts[i]);
    }
    if (!frames_ok) continue;
    out.stacks.push_back(std::move(s));
  }

  if (!saw_magic && out.errors.empty())
    out.errors.push_back("missing '# lpt profile v1' magic line");

  // Header presence + numeric validity.
  bool headers_ok = saw_magic;
  for (const char* key : kRequired) {
    auto it = out.headers.find(key);
    if (it == out.headers.end()) {
      out.errors.push_back(std::string("missing header '") + key + "'");
      headers_ok = false;
      continue;
    }
    if (std::string(key) == "mode") {
      if (it->second != "off" && it->second != "hz" &&
          it->second != "piggyback") {
        out.errors.push_back("bad mode '" + it->second + "'");
        headers_ok = false;
      }
      continue;
    }
    std::uint64_t v = 0;
    if (!detail::parse_u64(it->second, &v)) {
      out.errors.push_back(std::string("header '") + key +
                           "' is not a number: '" + it->second + "'");
      headers_ok = false;
    }
  }
  if (!headers_ok) return out;

  // Cross-header reconciliation (the contract prof.hpp documents).
  const std::uint64_t invocations = out.header_u64("invocations");
  const std::uint64_t recorded = out.header_u64("recorded");
  const std::uint64_t dropped = out.header_u64("dropped");
  if (invocations != recorded + dropped)
    out.errors.push_back(
        "invocations (" + std::to_string(invocations) +
        ") != recorded (" + std::to_string(recorded) + ") + dropped (" +
        std::to_string(dropped) + ")");
  const std::uint64_t sum = out.folded_sum();
  if (sum > recorded)
    out.errors.push_back("stack counts sum to " + std::to_string(sum) +
                         " > recorded " + std::to_string(recorded));
  if (out.header_u64("lock_contended") > out.header_u64("lock_acquires"))
    out.errors.push_back("lock_contended > lock_acquires");
  if (out.header_u64("contention_chains") > out.header_u64("lock_contended"))
    out.errors.push_back("contention_chains > lock_contended");
  const std::uint64_t hz = out.header_u64("sample_hz");
  if (out.mode() == "hz" && hz == 0)
    out.errors.push_back("mode 'hz' with sample_hz 0");
  if (out.mode() == "piggyback" && hz != 0)
    out.errors.push_back("mode 'piggyback' with sample_hz != 0");
  const std::uint64_t depth = out.header_u64("max_depth");
  for (const StackLine& s : out.stacks) {
    if (s.frames.size() > depth) {
      out.errors.push_back("stack for ult" + std::to_string(s.ult) + " has " +
                           std::to_string(s.frames.size()) +
                           " frames > max_depth " + std::to_string(depth));
      break;  // one report is enough; they would all repeat it
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON format — a tiny recursive-descent parser (objects/arrays/strings/
// numbers/bools/null) plus the same invariant checks over the tree.
// ---------------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, Json>> object;
  std::vector<Json> array;

  const Json* get(const std::string& key) const {
    for (const auto& kv : object)
      if (kv.first == key) return &kv.second;
    return nullptr;
  }
  double num_or(const std::string& key, double fallback) const {
    const Json* j = get(key);
    return (j != nullptr && j->kind == kNumber) ? j->number : fallback;
  }
};

namespace detail {

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  std::vector<std::string>& errors;

  void err(const std::string& msg) {
    errors.push_back("json offset " + std::to_string(pos) + ": " + msg);
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    if (pos >= text.size()) {
      err("unexpected end of input");
      return {};
    }
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      if (text.compare(pos, 4, "null") == 0) {
        pos += 4;
        return {};
      }
      err("bad literal");
      pos = text.size();
      return {};
    }
    return parse_number();
  }

  Json parse_object() {
    Json j;
    j.kind = Json::kObject;
    ++pos;  // '{'
    skip_ws();
    if (eat('}')) return j;
    while (pos < text.size()) {
      skip_ws();
      if (pos >= text.size() || text[pos] != '"') {
        err("object key must be a string");
        pos = text.size();
        return j;
      }
      Json key = parse_string();
      if (!eat(':')) {
        err("missing ':' after key '" + key.str + "'");
        pos = text.size();
        return j;
      }
      j.object.emplace_back(key.str, parse_value());
      if (eat(',')) continue;
      if (eat('}')) return j;
      err("expected ',' or '}' in object");
      pos = text.size();
      return j;
    }
    err("unterminated object");
    return j;
  }

  Json parse_array() {
    Json j;
    j.kind = Json::kArray;
    ++pos;  // '['
    if (eat(']')) return j;
    while (pos < text.size()) {
      j.array.push_back(parse_value());
      if (eat(',')) continue;
      if (eat(']')) return j;
      err("expected ',' or ']' in array");
      pos = text.size();
      return j;
    }
    err("unterminated array");
    return j;
  }

  Json parse_string() {
    Json j;
    j.kind = Json::kString;
    ++pos;  // opening quote
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        switch (text[pos]) {
          case '"': j.str += '"'; break;
          case '\\': j.str += '\\'; break;
          case '/': j.str += '/'; break;
          case 'n': j.str += '\n'; break;
          case 't': j.str += '\t'; break;
          case 'r': j.str += '\r'; break;
          case 'b': j.str += '\b'; break;
          case 'f': j.str += '\f'; break;
          case 'u':
            // The exporter never emits \u escapes; accept and skip them.
            pos += 4 < text.size() - pos ? 4 : text.size() - pos - 1;
            break;
          default: err("bad escape in string"); break;
        }
        ++pos;
        continue;
      }
      j.str += text[pos++];
    }
    if (pos >= text.size()) {
      err("unterminated string");
      return j;
    }
    ++pos;  // closing quote
    return j;
  }

  Json parse_bool() {
    Json j;
    j.kind = Json::kBool;
    if (text.compare(pos, 4, "true") == 0) {
      j.boolean = true;
      pos += 4;
    } else if (text.compare(pos, 5, "false") == 0) {
      j.boolean = false;
      pos += 5;
    } else {
      err("bad literal");
      pos = text.size();
    }
    return j;
  }

  Json parse_number() {
    Json j;
    j.kind = Json::kNumber;
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    j.number = std::strtod(start, &end);
    if (end == start) {
      err("bad number");
      pos = text.size();
      return j;
    }
    pos += static_cast<std::size_t>(end - start);
    return j;
  }
};

}  // namespace detail

struct JsonParsed {
  Json root;
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
};

/// Parse + validate a JSON profile export: well-formed JSON, the three
/// top-level sections, and the same accounting invariants as the folded
/// validator (invocations == recorded + dropped, per-ULT sample totals vs
/// recorded, contended <= acquires on the totals and every table row).
inline JsonParsed parse_json(const std::string& text) {
  JsonParsed out;
  detail::JsonParser p{text, 0, out.errors};
  out.root = p.parse_value();
  p.skip_ws();
  if (out.errors.empty() && p.pos != text.size())
    out.errors.push_back("trailing content after JSON document");
  if (!out.errors.empty()) return out;

  if (out.root.kind != Json::kObject) {
    out.errors.push_back("top level is not an object");
    return out;
  }
  const Json* prof = out.root.get("prof");
  const Json* oncpu = out.root.get("oncpu");
  const Json* offcpu = out.root.get("offcpu");
  const Json* locks = out.root.get("locks");
  for (const auto& section :
       {std::make_pair("prof", prof), std::make_pair("oncpu", oncpu),
        std::make_pair("offcpu", offcpu), std::make_pair("locks", locks)}) {
    if (section.second == nullptr || section.second->kind != Json::kObject)
      out.errors.push_back(std::string("missing section '") + section.first +
                           "'");
  }
  if (!out.errors.empty()) return out;

  const double invocations = oncpu->num_or("invocations", -1);
  const double recorded = oncpu->num_or("recorded", -1);
  const double dropped = oncpu->num_or("dropped", -1);
  if (invocations < 0 || recorded < 0 || dropped < 0)
    out.errors.push_back("oncpu counters missing");
  else if (invocations != recorded + dropped)
    out.errors.push_back("oncpu: invocations != recorded + dropped");

  const Json* by_ult = oncpu->get("by_ult");
  if (by_ult == nullptr || by_ult->kind != Json::kArray) {
    out.errors.push_back("oncpu.by_ult missing");
  } else {
    double sum = 0;
    for (const Json& u : by_ult->array) sum += u.num_or("samples", 0);
    if (recorded >= 0 && sum > recorded)
      out.errors.push_back("oncpu.by_ult samples sum exceeds recorded");
  }

  const double acquires = locks->num_or("acquires", -1);
  const double contended = locks->num_or("contended", -1);
  const double chains = locks->num_or("chains", -1);
  if (acquires < 0 || contended < 0 || chains < 0)
    out.errors.push_back("locks counters missing");
  else if (contended > acquires || chains > contended)
    out.errors.push_back("locks: contended/chains ordering violated");
  const Json* table = locks->get("table");
  if (table == nullptr || table->kind != Json::kArray) {
    out.errors.push_back("locks.table missing");
  } else {
    for (const Json& row : table->array) {
      if (row.num_or("contended", 0) > row.num_or("acquires", 0)) {
        out.errors.push_back("locks.table row: contended > acquires");
        break;
      }
    }
  }

  const double waits = offcpu->num_or("waits", -1);
  const double offcpu_dropped = offcpu->num_or("dropped", -1);
  if (waits < 0 || offcpu_dropped < 0)
    out.errors.push_back("offcpu counters missing");
  const Json* sites = offcpu->get("sites");
  if (sites == nullptr || sites->kind != Json::kArray) {
    out.errors.push_back("offcpu.sites missing");
  } else {
    double site_sum = 0;
    for (const Json& s : sites->array) {
      site_sum += s.num_or("count", 0);
      const Json* kind = s.get("kind");
      if (kind == nullptr || kind->kind != Json::kString || kind->str.empty()) {
        out.errors.push_back("offcpu site without a kind");
        break;
      }
    }
    // `waits` counts every recorded wait including site-table-full drops,
    // which never land in a slot — so the table accounts for waits - dropped.
    if (waits >= 0 && offcpu_dropped >= 0 && site_sum != waits - offcpu_dropped)
      out.errors.push_back("offcpu site counts do not sum to waits - dropped");
  }
  return out;
}

}  // namespace lpt::proftest
