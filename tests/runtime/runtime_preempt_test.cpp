// End-to-end tests of implicit preemption: signal-yield, KLT-switching, the
// four timer strategies, and the deadlock-prevention property of §4.1.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <vector>

#include "common/cpu.hpp"
#include "common/time.hpp"
#include "runtime/lpt.hpp"

namespace lpt {
namespace {

RuntimeOptions preemptive_opts(int workers, TimerKind timer, std::int64_t us) {
  RuntimeOptions o;
  o.num_workers = workers;
  o.timer = timer;
  o.interval_us = us;
  return o;
}

// Busy-spin until `flag` is set or `deadline_ms` elapses; returns success.
bool spin_until(const std::atomic<bool>& flag, std::int64_t deadline_ms) {
  const std::int64_t deadline = now_ns() + deadline_ms * 1'000'000;
  while (!flag.load(std::memory_order_acquire)) {
    if (now_ns() > deadline) return false;
    cpu_pause();
  }
  return true;
}

// --- the paper's core scenario: a busy loop that needs another thread ------
//
// Two ULTs on ONE worker. A busy-waits on a flag that only B sets. Without
// preemption A monopolizes the worker and B never runs (§2.2 / §4.1's MKL
// deadlock). With preemption the scenario must complete.
void run_busy_pair(Preempt mode, TimerKind timer, bool expect_preemptions) {
  Runtime rt(preemptive_opts(1, timer, 1000));
  std::atomic<bool> flag{false};
  std::atomic<bool> a_done{false};

  ThreadAttrs attrs;
  attrs.preempt = mode;
  Thread a = rt.spawn(
      [&] {
        ASSERT_TRUE(spin_until(flag, 20'000)) << "busy-waiter starved: no preemption";
        a_done.store(true);
      },
      attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
  EXPECT_TRUE(a_done.load());
  if (expect_preemptions) EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Preemption, SignalYieldBreaksBusyWaitSingleWorker) {
  run_busy_pair(Preempt::SignalYield, TimerKind::PerWorkerAligned, true);
}

TEST(Preemption, KltSwitchBreaksBusyWaitSingleWorker) {
  run_busy_pair(Preempt::KltSwitch, TimerKind::PerWorkerAligned, true);
}

TEST(Preemption, PosixPerWorkerTimerBreaksBusyWait) {
  run_busy_pair(Preempt::SignalYield, TimerKind::PosixPerWorker, true);
}

TEST(Preemption, ProcessChainTimerBreaksBusyWait) {
  run_busy_pair(Preempt::SignalYield, TimerKind::ProcessChain, true);
}

TEST(Preemption, ProcessOneToAllTimerBreaksBusyWait) {
  run_busy_pair(Preempt::SignalYield, TimerKind::ProcessOneToAll, true);
}

TEST(Preemption, CreationTimeTimerBreaksBusyWait) {
  run_busy_pair(Preempt::SignalYield, TimerKind::PerWorkerCreationTime, true);
}

TEST(Preemption, KltSwitchWithSigsuspendParking) {
  RuntimeOptions o = preemptive_opts(1, TimerKind::PerWorkerAligned, 1000);
  o.klt_suspend = KltSuspend::Sigsuspend;
  Runtime rt(o);
  std::atomic<bool> flag{false};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  Thread a = rt.spawn(
      [&] { ASSERT_TRUE(spin_until(flag, 20'000)); }, attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Preemption, KltSwitchWithoutLocalPools) {
  RuntimeOptions o = preemptive_opts(1, TimerKind::PerWorkerAligned, 1000);
  o.worker_local_klt_pool = false;
  Runtime rt(o);
  std::atomic<bool> flag{false};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  Thread a = rt.spawn([&] { ASSERT_TRUE(spin_until(flag, 20'000)); }, attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

// --- the defining KLT-switching property (§3.1.2) --------------------------
//
// A KLT-switching thread must stay on the SAME kernel thread across every
// implicit preemption: its KLT-local state is frozen and resumed with it.
TEST(Preemption, KltSwitchPreservesKernelThreadAcrossPreemptions) {
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 500));
  std::atomic<bool> stop{false};
  std::atomic<int> tid_changes{0};
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;

  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.push_back(rt.spawn(
        [&] {
          const pid_t tid0 = gettid_syscall();
          const std::int64_t deadline = now_ns() + 100'000'000;  // 100 ms
          while (now_ns() < deadline) {
            if (gettid_syscall() != tid0) {
              tid_changes.fetch_add(1);
              break;
            }
          }
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(tid_changes.load(), 0);
  EXPECT_GT(rt.total_preemptions(), 0u);  // preemptions really happened
}

// Contrast: signal-yield threads MAY migrate between kernel threads — that
// is exactly why they require KLT-independent code. With several workers and
// frequent preemption, migration is overwhelmingly likely; we only assert
// that preemption happened and the run completes (migration itself is legal,
// not guaranteed).
TEST(Preemption, SignalYieldRunsFineAcrossWorkers) {
  Runtime rt(preemptive_opts(4, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  std::atomic<long> acc{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 8; ++i)
    ts.push_back(rt.spawn(
        [&] {
          const std::int64_t deadline = now_ns() + 50'000'000;
          while (now_ns() < deadline) acc.fetch_add(1, std::memory_order_relaxed);
        },
        attrs));
  for (auto& t : ts) t.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
  EXPECT_GT(acc.load(), 0);
}

TEST(Preemption, NonpreemptiveThreadIsNeverPreempted) {
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 500));
  Thread t = rt.spawn([&] { busy_spin_ns(30'000'000); });  // Preempt::None
  t.join();
  EXPECT_EQ(rt.total_preemptions(), 0u);
}

TEST(Preemption, ProcessTimerIssuesNoSignalsWithoutPreemptiveThreads) {
  // §3.2.2: with a per-process timer and no preemptive threads running, no
  // forwarding signals are issued at all. Functionally: no preemptions, and
  // nonpreemptive work completes untouched.
  Runtime rt(preemptive_opts(2, TimerKind::ProcessChain, 500));
  std::vector<Thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.push_back(rt.spawn([&] { busy_spin_ns(10'000'000); }));
  for (auto& t : ts) t.join();
  EXPECT_EQ(rt.total_preemptions(), 0u);
}

TEST(Preemption, ChainReachesAllPreemptiveWorkers) {
  // 3 workers each running a spinning preemptive thread; the chain must
  // preempt every one of them within a few intervals.
  Runtime rt(preemptive_opts(3, TimerKind::ProcessChain, 1000));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  attrs.home_pool = 0;
  std::atomic<bool> stop{false};
  std::vector<Thread> ts;
  for (int i = 0; i < 3; ++i) {
    attrs.home_pool = i;
    ts.push_back(rt.spawn(
        [&] {
          while (!stop.load(std::memory_order_acquire)) cpu_pause();
        },
        attrs));
  }
  // Wait until every thread has been preempted at least once (20 s cap).
  const std::int64_t deadline = now_ns() + 20'000'000'000ll;
  bool all = false;
  while (!all && now_ns() < deadline) {
    all = true;
    for (auto& t : ts)
      if (t.preemptions() == 0) all = false;
    if (!all) usleep(2000);
  }
  stop.store(true);
  for (auto& t : ts) t.join();
  EXPECT_TRUE(all) << "chain did not reach all preemptive workers";
}

TEST(Preemption, MixedThreadTypesCoexist) {
  // §3.4: nonpreemptive + signal-yield + KLT-switching in one application.
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 1000));
  std::atomic<bool> flag{false};
  ThreadAttrs sy, ks;
  sy.preempt = Preempt::SignalYield;
  ks.preempt = Preempt::KltSwitch;
  Thread spinner_sy = rt.spawn([&] { ASSERT_TRUE(spin_until(flag, 20'000)); }, sy);
  Thread spinner_ks = rt.spawn([&] { ASSERT_TRUE(spin_until(flag, 20'000)); }, ks);
  Thread coop = rt.spawn([&] {
    for (int i = 0; i < 5; ++i) this_thread::yield();
    flag.store(true);
  });
  spinner_sy.join();
  spinner_ks.join();
  coop.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Preemption, NoPreemptGuardDefersPreemption) {
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  std::atomic<std::uint64_t> preempts_inside{0};
  Thread t = rt.spawn(
      [&] {
        NoPreemptGuard guard;
        busy_spin_ns(20'000'000);  // 20 ms with a 0.5 ms timer
        preempts_inside.store(Runtime::current()->total_preemptions());
        // guard destructor turns the pending preemption into a yield
      },
      attrs);
  t.join();
  EXPECT_EQ(preempts_inside.load(), 0u);
}

TEST(Preemption, PreemptionsAreCountedPerThread) {
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::SignalYield;
  std::atomic<bool> done{false};
  Thread busy = rt.spawn(
      [&] {
        busy_spin_ns(30'000'000);
        done.store(true);
      },
      attrs);
  while (!done.load()) usleep(1000);
  const std::uint64_t p = busy.preemptions();  // handle still joinable here
  busy.join();
  EXPECT_GE(p, 5u);  // ~60 intervals elapsed; be generous about scheduling
}

TEST(Preemption, KltSwitchAllocatesKltsOnDemand) {
  Runtime rt(preemptive_opts(1, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::atomic<bool> flag{false};
  Thread a = rt.spawn([&] { ASSERT_TRUE(spin_until(flag, 20'000)); }, attrs);
  Thread b = rt.spawn([&] { flag.store(true); }, attrs);
  a.join();
  b.join();
  // At least one extra KLT beyond the single worker host must exist now.
  EXPECT_GT(rt.total_klts(), 1u);
}

TEST(Preemption, KltSwitchSurvivesMallocHeavyThreads) {
  // Glibc malloc is the paper's canonical KLT-dependent function (§3.1.1).
  // KLT-switching must preempt malloc-heavy threads without corruption.
  Runtime rt(preemptive_opts(2, TimerKind::PerWorkerAligned, 500));
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  std::atomic<long> total{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 6; ++i)
    ts.push_back(rt.spawn(
        [&] {
          const std::int64_t deadline = now_ns() + 60'000'000;
          long local = 0;
          while (now_ns() < deadline) {
            std::vector<char*> ptrs;
            for (int k = 0; k < 64; ++k) {
              char* p = static_cast<char*>(malloc(64 + k));
              p[0] = static_cast<char>(k);
              ptrs.push_back(p);
            }
            for (char* p : ptrs) free(p);
            local += 1;
          }
          total.fetch_add(local);
        },
        attrs));
  for (auto& t : ts) t.join();
  EXPECT_GT(total.load(), 0);
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(Preemption, StressManyPreemptiveThreads) {
  Runtime rt(preemptive_opts(4, TimerKind::PerWorkerAligned, 300));
  std::atomic<long> acc{0};
  std::vector<Thread> ts;
  for (int i = 0; i < 16; ++i) {
    ThreadAttrs attrs;
    attrs.preempt = (i % 2 == 0) ? Preempt::SignalYield : Preempt::KltSwitch;
    ts.push_back(rt.spawn(
        [&] {
          const std::int64_t deadline = now_ns() + 80'000'000;
          while (now_ns() < deadline) acc.fetch_add(1, std::memory_order_relaxed);
        },
        attrs));
  }
  for (auto& t : ts) t.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

// --- deadlock demonstration (negative control, in a child process) ---------
//
// The same busy-wait pair WITHOUT preemption must deadlock: the child
// process is expected to still be alive (stuck) after a grace period.
TEST(Preemption, NonpreemptiveBusyWaitDeadlocks) {
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: nonpreemptive runtime, 1 worker, busy-wait pair → deadlock.
    RuntimeOptions o;
    o.num_workers = 1;
    o.timer = TimerKind::None;
    Runtime rt(o);
    std::atomic<bool> flag{false};
    Thread a = rt.spawn([&] {
      while (!flag.load(std::memory_order_acquire)) cpu_pause();
    });
    Thread b = rt.spawn([&] { flag.store(true); });
    a.join();
    b.join();
    _exit(0);  // unreachable if the deadlock holds
  }
  // Parent: the child must NOT finish within the grace period.
  const std::int64_t deadline = now_ns() + 2'000'000'000;
  int status = 0;
  pid_t r = 0;
  while (now_ns() < deadline) {
    r = waitpid(pid, &status, WNOHANG);
    ASSERT_NE(r, -1);
    if (r == pid) break;
    usleep(10'000);
  }
  EXPECT_EQ(r, 0) << "nonpreemptive busy-wait unexpectedly completed";
  kill(pid, SIGKILL);
  waitpid(pid, &status, 0);
}

}  // namespace
}  // namespace lpt
