// Fork-join helpers on top of the runtime — the minimal OpenMP-like surface
// the mini-apps use (DESIGN.md: BOLT's full OpenMP ABI layer is out of
// scope; these helpers stand in for the `parallel for` / task constructs the
// paper's applications rely on).
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/runtime.hpp"

namespace lpt {

struct ParallelForOptions {
  /// Ranges at or below this size run inline; larger ranges split in half
  /// and the right half becomes a new ULT (recursive binary splitting).
  std::int64_t grain = 1024;
  /// Attributes for the spawned ULTs (preemption type, priority, ...).
  ThreadAttrs attrs{};
};

/// Apply fn(i) for every i in [begin, end), in parallel. Callable from ULT
/// context (splits cooperatively) or from an external thread (wraps the root
/// range in a ULT and waits). Returns when every iteration completed.
void parallel_for(Runtime& rt, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  const ParallelForOptions& opts = {});

/// Block-range variant: fn(lo, hi) on disjoint chunks covering [begin, end).
/// The chunk decomposition is the same binary splitting as parallel_for.
void parallel_for_range(Runtime& rt, std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        const ParallelForOptions& opts = {});

}  // namespace lpt
