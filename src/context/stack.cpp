#include "context/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/sys.hpp"

namespace lpt {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Stack::Stack(std::size_t usable_size) {
  const std::size_t ps = page_size();
  const std::size_t usable = (usable_size + ps - 1) / ps * ps;
  const std::size_t total = usable + ps;  // + guard page
  void* p = sys::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (p == MAP_FAILED) return;  // invalid; errno says why
  LPT_CHECK(::mprotect(p, ps, PROT_NONE) == 0);
  map_ = p;
  map_size_ = total;
  base_ = static_cast<char*>(p) + ps;
  size_ = usable;
}

Stack::~Stack() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

Stack::Stack(Stack&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

Stack& Stack::operator=(Stack&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool Stack::reassert_guard() {
  if (map_ == nullptr) return false;
  return sys::mprotect(map_, guard_size(), PROT_NONE) == 0;
}

void Stack::scrub() {
  if (base_ == nullptr) return;
  (void)::madvise(base_, size_, MADV_DONTNEED);
}

std::size_t Stack::watermark() const {
  if (base_ == nullptr) return 0;
  const std::size_t ps = page_size();
  const std::size_t npages = size_ / ps;
  unsigned char vec[256];
  // Scan upward from the bottom of the usable area; the first resident page
  // is the deepest the stack ever grew. Cost is one mincore per 256 pages
  // (1 MiB), and a typical run exits on the first chunk.
  for (std::size_t i = 0; i < npages; i += sizeof(vec)) {
    const std::size_t n = npages - i < sizeof(vec) ? npages - i : sizeof(vec);
    if (::mincore(static_cast<char*>(base_) + i * ps, n * ps, vec) != 0)
      return 0;
    for (std::size_t j = 0; j < n; ++j)
      if ((vec[j] & 1) != 0) return size_ - (i + j) * ps;
  }
  return 0;
}

Stack StackPool::acquire() {
  for (;;) {
    Stack s;
    {
      SpinlockGuard g(lock_);
      if (free_.empty()) break;
      s = std::move(free_.back());
      free_.pop_back();
    }
    // A faulted or buggy former tenant could have left the guard writable;
    // never hand out a cached stack without PROT_NONE re-asserted below it.
    if (!s.reassert_guard()) {
      SpinlockGuard g(lock_);
      ++shed_;  // dropped: s unmaps on scope exit
      continue;
    }
    if (scrub_on_reuse_) s.scrub();
    return s;
  }
  return Stack(stack_size_);
}

Stack StackPool::try_acquire(int* err) {
  Stack s = acquire();
  if (s.valid()) return s;
  const int first_err = errno != 0 ? errno : ENOMEM;
  // Degrade: return every cached mapping to the kernel, then retry once.
  // (A cached stack of the right size would have been handed out above, so
  // reaching here means the free list held nothing useful — but a racing
  // release may have restocked it, and shedding also frees address space
  // held by other pools' churn.)
  shed_all();
  s = Stack(stack_size_);
  if (s.valid()) return s;
  if (err != nullptr) *err = errno != 0 ? errno : first_err;
  return s;
}

void StackPool::release(Stack&& s) {
  LPT_CHECK(s.valid());
  Stack drop;  // unmapped outside the lock if the cache is full
  {
    SpinlockGuard g(lock_);
    if (free_.size() < max_cached_) {
      free_.push_back(std::move(s));
      return;
    }
    ++shed_;
    drop = std::move(s);
  }
}

void StackPool::quarantine(Stack&& s) {
  LPT_CHECK(s.valid());
  // The faulting ULT's frames are garbage and the guard may have been the
  // fault target: return the pages to the kernel and re-protect before this
  // stack can host another ULT. An unprotectable guard means the mapping is
  // not trustworthy — drop it.
  s.scrub();
  const bool guard_ok = s.reassert_guard();
  {
    SpinlockGuard g(lock_);
    ++quarantined_;
    if (guard_ok && free_.size() < max_cached_) {
      free_.push_back(std::move(s));
      return;
    }
    ++shed_;
  }
}

std::size_t StackPool::shed_all() {
  std::vector<Stack> drop;
  {
    SpinlockGuard g(lock_);
    drop.swap(free_);
    shed_ += drop.size();
  }
  return drop.size();
}

std::size_t StackPool::cached() const {
  SpinlockGuard g(lock_);
  return free_.size();
}

std::uint64_t StackPool::total_shed() const {
  SpinlockGuard g(lock_);
  return shed_;
}

std::uint64_t StackPool::total_quarantined() const {
  SpinlockGuard g(lock_);
  return quarantined_;
}

}  // namespace lpt
