// Mini geometric multigrid (HPGMG-FV stand-in, §4.2): a 3-D 7-point Poisson
// solver with V-cycles — weighted-Jacobi smoothing, full-weighting
// restriction, trilinear-ish prolongation — parallelised as a fixed team of
// ULTs that split each grid operation and synchronize at lpt::Barrier, the
// bulk-synchronous structure thread packing stresses.
#pragma once

#include <vector>

#include "runtime/lpt.hpp"

namespace lpt::apps {

struct MultigridOptions {
  int n = 32;          ///< finest grid is n^3 interior points (power of two)
  int levels = 3;      ///< V-cycle depth
  int pre_smooth = 2;
  int post_smooth = 2;
  int vcycles = 8;
  int threads = 4;     ///< fixed worker-team size (one ULT per "core")
  Preempt preempt = Preempt::None;
};

struct MultigridResult {
  double initial_residual = 0;
  double final_residual = 0;
  int vcycles_run = 0;
};

/// Solve  -laplace(u) = f  on the unit cube (Dirichlet 0 boundary, h = 1/n)
/// with `opts.vcycles` V-cycles on the given runtime. `f` has n^3 entries
/// (x-fastest ordering); `u` is overwritten with the solution estimate.
/// Callable from an external (non-ULT) thread.
MultigridResult multigrid_solve(Runtime& rt, const MultigridOptions& opts,
                                const std::vector<double>& f,
                                std::vector<double>& u);

/// L2 norm of the residual f + laplace(u) (h-scaled), exposed for tests.
double residual_norm(int n, const std::vector<double>& u,
                     const std::vector<double>& f);

}  // namespace lpt::apps
