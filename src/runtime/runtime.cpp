#include "runtime/runtime.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <ctime>

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/sys.hpp"
#include "common/time.hpp"
#include "prof/prof.hpp"
#include "runtime/fault.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/park.hpp"
#include "runtime/prof_glue.hpp"
#include "runtime/signals.hpp"
#include "runtime/timer.hpp"

namespace lpt {

namespace detail {

std::atomic<Runtime*>& runtime_slot() {
  static std::atomic<Runtime*> slot{nullptr};
  return slot;
}

thread_local int tl_spawn_errno = 0;

}  // namespace detail

int spawn_errno() { return detail::tl_spawn_errno; }

namespace {

/// Entry of every worker scheduler context (runs on the dedicated stack).
void scheduler_trampoline(void* arg) {
  static_cast<Worker*>(arg)->scheduler_loop();
  LPT_CHECK_MSG(false, "scheduler_loop returned");
}

/// Entry of every ULT context. The try block is the exception firewall
/// (docs/robustness.md): an exception escaping the thread function would
/// std::terminate the whole process from a context no handler owns, so it is
/// converted into a Failed thread status instead, symmetrical with fault
/// containment. Unlike a SEGV, the stack unwinds normally here — destructors
/// of the ULT's frames do run.
void thread_trampoline(void* arg) {
  auto* t = static_cast<ThreadCtl*>(arg);
  detail::mark_in_ult();
  try {
    t->fn();
  } catch (const std::exception& e) {
    t->fault.kind = FaultKind::kException;
    std::strncpy(t->fault.what, e.what(), sizeof(t->fault.what) - 1);
    detail::suspend_fail(t);
  } catch (...) {
    t->fault.kind = FaultKind::kException;
    std::strncpy(t->fault.what, "non-std exception",
                 sizeof(t->fault.what) - 1);
    detail::suspend_fail(t);
  }
  detail::suspend_exit(t);
}

}  // namespace

Runtime::Runtime(RuntimeOptions opts)
    : opts_(resolve_env_options(std::move(opts))),
      stack_pool_(opts_.stack_size, opts_.max_cached_stacks,
                  opts_.stack_scrub) {
  LPT_CHECK(opts_.num_workers >= 1);
  LPT_CHECK(opts_.interval_us >= 1);
  LPT_CHECK_MSG(opts_.max_klts == 0 || opts_.max_klts >= opts_.num_workers,
                "max_klts must be 0 (unlimited) or >= num_workers");

  sys::load_env_faults();  // arm any LPT_FAULT schedule before resources move
  start_ns_ = now_ns();

  Runtime* expected = nullptr;
  LPT_CHECK_MSG(detail::runtime_slot().compare_exchange_strong(expected, this),
                "only one lpt::Runtime may be active per process");

  signals::install_handlers();
  fault::install(*this);

  // Arm the tracer before any runtime thread exists so every thread can
  // acquire its ring at startup (recording itself never allocates).
  trace_cfg_ = trace::resolve_config(opts_.trace);
  if (trace_cfg_.enabled) trace::Collector::instance().configure(trace_cfg_);

  // Arm the profiler the same way: configure() (re)allocates every collector
  // structure and re-arms the recording gates before any worker KLT exists,
  // so the hot paths never allocate. A disabled config disarms the gates,
  // making a fresh runtime immune to a previous runtime's profile state.
  prof::Collector::instance().configure(opts_.prof);

  // Arm the parking registry before any worker exists so every park is
  // registered from the first dispatch; resets the detector's cycle memory.
  park::arm(opts_.deadlock_detection, opts_.abandon_release);

  n_active_.store(opts_.num_workers, std::memory_order_release);

  for (int r = 0; r < opts_.num_workers; ++r) {
    auto w = std::make_unique<Worker>();
    w->rt = this;
    w->rank = r;
    w->sched_stack = Stack(128 * 1024);
    LPT_CHECK_MSG(w->sched_stack.valid(),
                  "cannot map worker scheduler stack (construction is fatal; "
                  "per-spawn stacks degrade gracefully)");
    w->sched_ctx = make_context(w->sched_stack.base(), w->sched_stack.size(),
                                &scheduler_trampoline, w.get());
    workers_.push_back(std::move(w));
  }

  if (opts_.scheduler_factory) {
    sched_ = opts_.scheduler_factory(*this);
  } else {
    switch (opts_.scheduler) {
      case SchedulerKind::WorkStealing:
        sched_ = std::make_unique<WorkStealingScheduler>();
        break;
      case SchedulerKind::Packing:
        sched_ = std::make_unique<PackingScheduler>();
        break;
      case SchedulerKind::Priority:
        sched_ = std::make_unique<PriorityScheduler>();
        break;
    }
  }
  sched_->init(*this);

  klt_pool_.configure(opts_.num_workers, opts_.worker_local_klt_pool);
  klt_creator_.start(*this);

  // Launch one host KLT per worker. Hosts are mandatory, so transient
  // EAGAIN is ridden out with a short capped backoff; only persistent
  // failure aborts construction.
  for (int r = 0; r < opts_.num_workers; ++r) {
    KltCtl* k = nullptr;
    std::int64_t backoff_ns = 50'000;
    for (int attempt = 0; attempt < 16 && k == nullptr; ++attempt) {
      k = create_klt();
      if (k == nullptr) {
        const timespec ts{backoff_ns / 1'000'000'000, backoff_ns % 1'000'000'000};
        nanosleep(&ts, nullptr);
        backoff_ns = std::min<std::int64_t>(backoff_ns * 2, 2'000'000);
      }
    }
    LPT_CHECK_MSG(k != nullptr, "cannot create initial worker host KLTs");
    k->action = KltAction::kBecomeWorker;
    k->assign_worker = workers_[r].get();
    k->gate.post();
  }

  // Spares are an optimization: creation failure here is not fatal (the KLT
  // creator restocks on demand once resources recover).
  for (int i = 0; i < opts_.initial_spare_klts; ++i)
    create_klt(/*starts_parked=*/true);

  timer_ = PreemptionTimer::make(opts_.timer);
  if (timer_) timer_->start(*this);

  // Monitor-thread timers drive the watchdog for free from their loop; the
  // other modes (no timer, kernel-delivered POSIX timers) get a dedicated
  // low-frequency poll thread.
  const bool monitor_driven =
      timer_ != nullptr && opts_.timer != TimerKind::PosixPerWorker;
  if (opts_.watchdog) watchdog_.start(*this, /*own_thread=*/!monitor_driven);

  const metrics::PublishConfig pub = metrics::resolve_publish_config(
      {opts_.metrics_file, opts_.metrics_period_ms});
  if (!pub.file.empty()) publisher_.start(*this, pub);

  if (opts_.prof.enabled && opts_.prof.sample_hz > 0)
    prof_ticker_.start(*this, opts_.prof.sample_hz);
}

Runtime::~Runtime() {
  prof_ticker_.stop();
  if (timer_) timer_->stop();
  // Disarm the parking registry: all ULTs are joined by contract, so no slot
  // is occupied; primitives outliving this runtime just stop registering.
  park::disarm();
  // The watchdog reads worker metrics and scheduler queues; stop it while
  // both still exist and before the fallback timer (a late driver) goes.
  watchdog_.stop();
  klt_creator_.stop();

  shutdown_.store(true, std::memory_order_release);
  // With shutdown_ visible, no new fallback timer can start; stop any
  // running one under the same lock that guards its creation.
  {
    SpinlockGuard g(fallback_lock_);
    if (fallback_timer_) fallback_timer_->stop();
  }
  set_active_workers(num_workers());  // unpark packing-suspended workers
  notify_work();

  // Wake every parked spare with an exit assignment. Worker-host KLTs leave
  // through the scheduler's exit path and ignore the extra ticket.
  {
    SpinlockGuard g(klts_lock_);
    for (auto& k : klts_) {
      k->action = KltAction::kExit;
      k->gate.post();
    }
  }
  // Late preemption sends (an in-flight handler's chain forward, a kernel
  // timer that outlives its worker) must not pthread_sigqueue a KLT that is
  // already joined: send_preempt is gated on shutting_down(), and the
  // delivery targets are cleared here before any join below.
  for (auto& w : workers_) {
    w->current_klt.store(nullptr, std::memory_order_release);
    w->current_tid.store(0, std::memory_order_release);
  }
  {
    SpinlockGuard g(klts_lock_);
    for (auto& k : klts_) pthread_join(k->pthread, nullptr);
  }

  // Final metrics publish with fully quiesced counters, then stop.
  publisher_.stop();

  // All rings are quiescent now; flush the configured trace file and stop
  // recording (the collector keeps the data for late explicit exports).
  if (trace_cfg_.enabled) {
    if (!trace_cfg_.file.empty())
      trace::Collector::instance().write_chrome_json(trace_cfg_.file);
    if (!trace_cfg_.events_file.empty())
      trace::Collector::instance().write_events_jsonl(trace_cfg_.events_file);
    trace::Collector::instance().disable();
  }

  // Same for the profile: everything is quiesced, flush the configured file
  // and disarm the gates. The collector keeps the data for late explicit
  // write_profile() calls on the Collector singleton (this Runtime is gone).
  if (opts_.prof.enabled) {
    if (!opts_.prof.file.empty())
      prof::Collector::instance().write_file(opts_.prof.file);
    prof::Collector::instance().disable();
  }

  fault::restore();
  detail::runtime_slot().store(nullptr, std::memory_order_release);
}

Runtime* Runtime::current() { return detail::runtime_instance(); }

KltCtl* Runtime::create_klt(bool starts_parked) {
  if (klt_cap_reached()) return nullptr;
  auto owned = std::make_unique<KltCtl>();
  owned->rt = this;
  owned->starts_parked = starts_parked;
  KltCtl* k = owned.get();
  // Register only after a successful create so the shutdown join list never
  // holds a KLT without a live pthread.
  if (sys::pthread_create(&k->pthread, nullptr, &Runtime::klt_entry, k) != 0)
    return nullptr;  // owned frees the control block
  {
    SpinlockGuard g(klts_lock_);
    klts_.push_back(std::move(owned));
  }
  n_klts_.fetch_add(1, std::memory_order_acq_rel);
  return k;
}

void* Runtime::klt_entry(void* arg) {
  auto* k = static_cast<KltCtl*>(arg);
  k->rt->klt_main(k);
  return nullptr;
}

void Runtime::klt_main(KltCtl* self) {
  self->tid.store(gettid_syscall(), std::memory_order_release);
  WorkerTls* tls = worker_tls();
  tls->klt = self;
  tls->trace_ring =
      trace::Collector::instance().acquire_ring(trace::TrackKind::kWorkerKlt, -1);
  tls->trace_ring_epoch = trace::Collector::instance().config_epoch();
  if (tls->trace_ring != nullptr) self->trace_id = tls->trace_ring->id();
  // Sample ring for the on-CPU profiler (null when profiling is off). Like
  // the trace ring, acquired once per KLT before any signal can sample here.
  tls->prof_ring = prof::Collector::instance().acquire_ring();
  fault::register_alt_stack(self);
  signals::block_runtime_signals();
  signals::unblock_preempt();

  if (self->starts_parked) klt_pool_.push(self);

  for (;;) {
    self->gate.wait();
    const KltAction a = self->action;
    self->action = KltAction::kNone;
    if (a == KltAction::kExit) return;
    LPT_CHECK(a == KltAction::kBecomeWorker);

    Worker* w = self->assign_worker;
    worker_tls()->worker = w;
    self->home_worker = w->rank;

    if (opts_.pin_workers) {
      const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
      if (ncpu > 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<unsigned>(w->rank % ncpu), &set);
        pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
      }
    }
    w->current_klt.store(self, std::memory_order_release);
    w->current_tid.store(self->tid.load(std::memory_order_relaxed),
                         std::memory_order_release);

    context_switch(self->native_ctx, w->sched_ctx);

    // Released by the scheduler (resume protocol or shutdown).
    KltCtl* peer = self->pending_wake;
    self->pending_wake = nullptr;
    const bool wake_in_handler = self->pending_wake_in_handler;
    self->pending_wake_in_handler = false;
    const KltNativeOp op = self->native_op;
    self->native_op = KltNativeOp::kPark;

    // Orphan handoff (docs/robustness.md "Self-healing"): a ULT stranded on
    // this KLT by a forced replacement deferred its guard releases and
    // finalization to here — doing either on the ULT stack would publish the
    // thread before its context save completed (the usual
    // enqueue-before-save race, now on the orphan path).
    if (self->orphan_release_lock != nullptr) {
      self->orphan_release_lock->unlock();
      self->orphan_release_lock = nullptr;
    }
    if (self->orphan_release_mutex != nullptr) {
      self->orphan_release_mutex->unlock();
      self->orphan_release_mutex = nullptr;
    }
    if (self->orphan_finalize != nullptr) {
      ThreadCtl* dead = self->orphan_finalize;
      self->orphan_finalize = nullptr;
      if (self->orphan_finished)
        finalize_thread(dead);
      else
        finalize_failed_thread(dead);
      self->orphan_finished = false;
    }

    // Blocking-syscall reabsorption (docs/robustness.md): the blocking
    // region on this KLT returned after the wedge sentinel gave its worker a
    // fresh host. The ULT saved its context and handed itself here (same
    // save-before-publish discipline as the orphan handoff); re-enqueue it —
    // counting first, so a join-then-assert test sees the reconciliation —
    // and fall through to the kPark tail: the KLT rejoins the pool and the
    // kernel-thread population returns to baseline.
    if (self->reabsorb_enqueue != nullptr) {
      ThreadCtl* t = self->reabsorb_enqueue;
      self->reabsorb_enqueue = nullptr;
      note_syscall_reabsorbed();
      t->store_state(ThreadState::kReady);
      // The wake edge labels this as a syscall return (the region's
      // offcpu_begin tag may already have been consumed on the orphan path).
      t->prof_wait_kind = prof::WaitKind::kSyscall;
      enqueue_ready(t, nullptr, EnqueueKind::kUnblock, /*waker=*/0);
    }

    if (peer != nullptr) {
      // The wake happens here — off the scheduler stack — so the woken side
      // can safely resume or re-enter that scheduler context.
      if (wake_in_handler)
        detail::wake_bound_klt(this, peer);
      else
        peer->gate.post();
    }
    if (op == KltNativeOp::kExit) return;

    worker_tls()->worker = nullptr;
    klt_pool_.push(self);
  }
}

ThreadCtl* Runtime::spawn_ctl(std::function<void()> fn, ThreadAttrs attrs,
                              bool detached) {
  // Acquire the stack first: its allocation is the recoverable failure mode
  // (docs/robustness.md) and nothing else here may be half-done when it
  // fails. Custom-size stacks get the same shed-and-retry the pool applies.
  int err = 0;
  Stack stack;
  if (attrs.stack_size == 0) {
    stack = stack_pool_.try_acquire(&err);
  } else {
    stack = Stack(attrs.stack_size);
    if (!stack.valid()) {
      err = errno != 0 ? errno : ENOMEM;
      stack_pool_.shed_all();
      stack = Stack(attrs.stack_size);
      if (stack.valid()) err = 0;
    }
  }
  if (!stack.valid()) {
    if (err == 0) err = ENOMEM;
    n_spawn_stack_fail_.fetch_add(1, std::memory_order_relaxed);
    LPT_TRACE_EVENT(trace::EventType::kStackAllocFail, 0,
                    static_cast<std::uint64_t>(err));
    detail::tl_spawn_errno = err;
    return nullptr;
  }
  detail::tl_spawn_errno = 0;

  auto* t = new ThreadCtl;
  t->rt = this;
  t->fn = std::move(fn);
  t->trace_id = next_ult_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  t->preempt = attrs.preempt;
  t->priority = attrs.priority;
  t->detached = detached;
  t->home_pool =
      attrs.home_pool >= 0
          ? attrs.home_pool
          : spawn_rr_.fetch_add(1, std::memory_order_relaxed) % num_workers();

  t->stack = std::move(stack);
  t->ctx = make_context(t->stack.base(), t->stack.size(), &thread_trampoline, t);

  // Arm the deadline before the thread becomes runnable so it cannot finish
  // (and be finalized) with a registration still pending.
  const std::int64_t deadline_rel =
      attrs.deadline_ns > 0 ? attrs.deadline_ns : opts_.default_ult_deadline_ns;
  if (deadline_rel > 0) arm_deadline(t, now_ns() + deadline_rel);

  ThreadCtl* self = detail::current_ult_or_null();
  detail::begin_no_preempt(self);
  Worker* hint = self != nullptr
                     ? worker_tls()->worker
                     : workers_[t->home_pool % num_workers()].get();
  enqueue_ready(t, hint, EnqueueKind::kSpawn,
                self != nullptr ? self->trace_id : 0);
  detail::end_no_preempt(self);
  n_live_ults_.add(1);
  return t;
}

Thread Runtime::spawn(std::function<void()> fn, ThreadAttrs attrs) {
  ThreadCtl* t = spawn_ctl(std::move(fn), attrs, /*detached=*/false);
  return t != nullptr ? Thread(t) : Thread();
}

bool Runtime::spawn_detached(std::function<void()> fn, ThreadAttrs attrs) {
  return spawn_ctl(std::move(fn), attrs, /*detached=*/true) != nullptr;
}

void Runtime::set_active_workers(int n) {
  LPT_CHECK(n >= 1 && n <= num_workers());
  n_active_.store(n, std::memory_order_release);
  for (auto& w : workers_) {
    w->wake_word.fetch_add(1, std::memory_order_acq_rel);
    futex_wake(&w->wake_word, INT_MAX);
  }
  notify_work();
}

std::uint64_t Runtime::total_preemptions() const {
  std::uint64_t sum = 0;
  for (const auto& w : workers_) sum += w->metrics.preemptions();
  return sum;
}

std::uint64_t Runtime::total_klts() const {
  SpinlockGuard g(const_cast<Spinlock&>(klts_lock_));
  return klts_.size();
}

metrics::Snapshot Runtime::metrics_snapshot() const {
  metrics::Snapshot s;
  s.taken_ns = now_ns();
  s.uptime_ns = s.taken_ns - start_ns_;
  s.num_workers = num_workers();
  s.active_workers = active_workers();
  for (const auto& w : workers_) {
    metrics::WorkerSample ws = w->metrics.sample();
    ws.rank = w->rank;
    ws.queue_depth = sched_->queue_depth(w->rank);
    ws.parked = w->parked.load(std::memory_order_relaxed);
    ws.posix_timer_fallback =
        w->posix_timer_degraded.load(std::memory_order_relaxed);
    s.workers.push_back(ws);
  }
  s.finalize();

  s.ults_spawned = next_ult_id_.load(std::memory_order_relaxed);
  s.ults_live = n_live_ults_.value();
  s.klts_created = total_klts();
  s.klts_on_demand = klt_creator_.created();
  s.klt_create_failures = klt_creator_.create_failures();
  s.klt_pool_idle = klt_pool_.idle();
  s.stacks_cached = stack_pool_.cached();
  s.stacks_shed = stack_pool_.total_shed();
  s.spawn_stack_failures = n_spawn_stack_fail_.load(std::memory_order_relaxed);
  s.posix_timer_fallbacks = n_timer_fallbacks_.load(std::memory_order_relaxed);
  s.faults_injected = sys::total_injected();

  s.klts_retired = n_klts_retired_.value();
  s.stacks_quarantined = stack_pool_.total_quarantined();
  s.stack_near_overflows =
      n_stack_near_overflow_.load(std::memory_order_relaxed);
  s.stack_watermark_max = stack_watermark_max_.load(std::memory_order_relaxed);
  s.stack_size_bytes = stack_pool_.stack_size();

  s.watchdog_checks = watchdog_.checks();
  s.watchdog_runnable_starvation =
      watchdog_.flagged(WatchdogReport::Kind::kRunnableStarvation);
  s.watchdog_worker_stall =
      watchdog_.flagged(WatchdogReport::Kind::kWorkerStall);
  s.watchdog_quantum_overrun =
      watchdog_.flagged(WatchdogReport::Kind::kQuantumOverrun);
  s.watchdog_fault_storm =
      watchdog_.flagged(WatchdogReport::Kind::kFaultStorm);
  s.watchdog_syscall_blocked =
      watchdog_.flagged(WatchdogReport::Kind::kSyscallBlocked);
  s.watchdog_deadlock = watchdog_.flagged(WatchdogReport::Kind::kDeadlock);
  s.watchdog_abandoned_lock =
      watchdog_.flagged(WatchdogReport::Kind::kAbandonedLock);

  s.remediations_retick = remediations(RemediationKind::kRetick);
  s.remediations_cancel = remediations(RemediationKind::kCancel);
  s.remediations_klt_replace = remediations(RemediationKind::kKltReplace);
  s.remediations_deadlock_break = remediations(RemediationKind::kDeadlockBreak);

  s.deadlock_cycles = n_deadlock_cycles_.value();
  s.self_deadlocks = n_self_deadlocks_.value();
  s.abandoned_locks = n_abandoned_locks_.value();
  s.abandoned_released = n_abandoned_released_.value();
  s.parked_waiters = park::parked_count();

  s.syscall_comp_activated = n_syscall_comp_[0].value();
  s.syscall_comp_reabsorbed = n_syscall_comp_[1].value();
  s.syscall_comp_saturated = n_syscall_comp_[2].value();

  s.trace_enabled = trace_cfg_.enabled;
  if (trace_cfg_.enabled) {
    s.trace_events = trace::Collector::instance().total_events();
    s.trace_dropped = trace::Collector::instance().total_dropped();
    for (const auto& w : workers_) {
      s.pool_sched_delay_ns.push_back(w->hist_sched_delay.snapshot());
      s.pool_spawn_latency_ns.push_back(w->hist_spawn_latency.snapshot());
    }
  }

  s.prof_enabled = opts_.prof.enabled;
  if (opts_.prof.enabled) {
    const prof::Totals pt = prof::Collector::instance().totals();
    s.prof_sample_invocations = pt.invocations;
    s.prof_samples_recorded = pt.recorded;
    s.prof_samples_dropped = pt.dropped;
    s.prof_offcpu_waits = pt.offcpu_waits;
    s.prof_offcpu_ns = pt.offcpu_total_ns;
    s.prof_lock_acquires = pt.lock_acquires;
    s.prof_lock_contended = pt.lock_contended;
    s.prof_contention_chains = pt.contention_chains;
  }
  return s;
}

bool Runtime::write_metrics(std::FILE* out, metrics::Format format) const {
  if (out == nullptr) return false;
  const metrics::Snapshot s = metrics_snapshot();
  if (format == metrics::Format::kJson)
    metrics::write_json(out, s);
  else
    metrics::write_prometheus(out, s);
  return true;
}

Runtime::Stats Runtime::stats() const {
  // Single aggregation path: every counter Stats shares with the metrics
  // subsystem comes from the same snapshot, so the two views cannot
  // disagree. Only the tracer histograms are merged here directly — they
  // live outside the always-on counters.
  const metrics::Snapshot m = metrics_snapshot();
  Stats s;
  for (int r = 0; r < static_cast<int>(m.workers.size()); ++r) {
    const metrics::WorkerSample& ws = m.workers[r];
    const Worker& w = *workers_[r];
    Stats::PerWorker pw;
    pw.scheduled = ws.dispatches;
    pw.preempt_signal_yield = ws.preempt_signal_yield;
    pw.preempt_klt_switch = ws.preempt_klt_switch;
    pw.steals = ws.steals;
    pw.parked = ws.parked;
    pw.preempt_delivery_samples = w.hist_delivery.count();
    pw.preempt_resched_samples = w.hist_resched.count();
    pw.klt_trip_samples = w.hist_klt_trip.count();
    pw.klt_degraded_ticks = ws.klt_degraded_ticks;
    pw.posix_timer_fallback = ws.posix_timer_fallback;
    s.preempt_delivery_ns.merge(w.hist_delivery.snapshot());
    s.preempt_resched_ns.merge(w.hist_resched.snapshot());
    s.klt_switch_trip_ns.merge(w.hist_klt_trip.snapshot());
    s.sched_delay_ns.merge(w.hist_sched_delay.snapshot());
    s.spawn_latency_ns.merge(w.hist_spawn_latency.snapshot());
    s.workers.push_back(pw);
  }
  s.klts_created = m.klts_created;
  s.klts_on_demand = m.klts_on_demand;
  s.active_workers = m.active_workers;
  s.klt_degraded_ticks = m.klt_degraded_ticks;
  s.klt_create_failures = m.klt_create_failures;
  s.posix_timer_fallbacks = m.posix_timer_fallbacks;
  s.spawn_stack_failures = m.spawn_stack_failures;
  s.stacks_cached = m.stacks_cached;
  s.stacks_shed = m.stacks_shed;
  s.faults_injected = m.faults_injected;
  s.ult_faults = m.ult_faults;
  s.stack_overflows = m.stack_overflows;
  s.escaped_exceptions = m.escaped_exceptions;
  s.ult_cancels = m.ult_cancels;
  s.remediations_retick = m.remediations_retick;
  s.remediations_cancel = m.remediations_cancel;
  s.remediations_klt_replace = m.remediations_klt_replace;
  s.remediations_deadlock_break = m.remediations_deadlock_break;
  s.deadlock_cycles = m.deadlock_cycles;
  s.self_deadlocks = m.self_deadlocks;
  s.abandoned_locks = m.abandoned_locks;
  s.abandoned_released = m.abandoned_released;
  s.syscall_blocks = m.syscall_blocks;
  s.syscall_comp_activated = m.syscall_comp_activated;
  s.syscall_comp_reabsorbed = m.syscall_comp_reabsorbed;
  s.syscall_comp_saturated = m.syscall_comp_saturated;
  s.klts_retired = m.klts_retired;
  s.stacks_quarantined = m.stacks_quarantined;
  s.stack_near_overflows = m.stack_near_overflows;
  s.stack_watermark_max = m.stack_watermark_max;
  s.trace_enabled = m.trace_enabled;
  s.trace_events = m.trace_events;
  s.trace_dropped = m.trace_dropped;
  s.prof_enabled = m.prof_enabled;
  s.prof_sample_invocations = m.prof_sample_invocations;
  s.prof_samples_recorded = m.prof_samples_recorded;
  s.prof_samples_dropped = m.prof_samples_dropped;
  s.prof_offcpu_waits = m.prof_offcpu_waits;
  s.prof_lock_acquires = m.prof_lock_acquires;
  s.prof_lock_contended = m.prof_lock_contended;
  s.prof_contention_chains = m.prof_contention_chains;
  return s;
}

bool Runtime::write_profile(const std::string& path) const {
  if (!opts_.prof.enabled) return false;
  return prof::Collector::instance().write_file(path);
}

bool Runtime::write_chrome_trace(const std::string& path) const {
  if (!trace_cfg_.enabled) return false;
  return trace::Collector::instance().write_chrome_json(path);
}

void Runtime::print_trace_summary(std::FILE* out) const {
  if (!trace_cfg_.enabled) {
    std::fprintf(out, "trace summary: tracing disabled\n");
    return;
  }
  trace::Collector::instance().write_summary(out);
  const Stats s = stats();
  auto hist_line = [&](const char* name, const trace::HistSnapshot& h) {
    if (h.count() == 0) return;
    std::fprintf(out,
                 "  %-28s n=%-8llu p50=%8.0f ns  p90=%8.0f ns  p99=%8.0f ns\n",
                 name, static_cast<unsigned long long>(h.count()),
                 h.percentile_ns(50), h.percentile_ns(90), h.percentile_ns(99));
  };
  hist_line("preempt delivery", s.preempt_delivery_ns);
  hist_line("preempt -> reschedule", s.preempt_resched_ns);
  hist_line("klt suspend -> resume", s.klt_switch_trip_ns);
  hist_line("sched delay (all pools)", s.sched_delay_ns);
  hist_line("spawn latency (all pools)", s.spawn_latency_ns);
  // Per-pool ready→dispatch delay: the task-level tail signal the serving
  // arc consumes (docs/observability.md, "Causal tracing & scheduling
  // delay"). Printed per pool because steals make pool delays diverge.
  {
    const metrics::Snapshot m = metrics_snapshot();
    for (std::size_t r = 0; r < m.pool_sched_delay_ns.size(); ++r) {
      const trace::HistSnapshot& h = m.pool_sched_delay_ns[r];
      if (h.count() == 0) continue;
      std::fprintf(out,
                   "  pool %-2zu sched delay          n=%-8llu p50=%8.0f ns  "
                   "p99=%8.0f ns  p999=%8.0f ns\n",
                   r, static_cast<unsigned long long>(h.count()),
                   h.percentile_ns(50), h.percentile_ns(99),
                   h.percentile_ns(99.9));
    }
  }

  // Degradation counters (docs/robustness.md): all zero on a healthy run;
  // nonzero values mean the latencies above were taken on a degraded
  // runtime. Printed only when something actually degraded.
  if (s.klt_degraded_ticks > 0 || s.klt_create_failures > 0 ||
      s.posix_timer_fallbacks > 0 || s.spawn_stack_failures > 0 ||
      s.stacks_shed > 0 || s.faults_injected > 0 || s.ult_faults > 0 ||
      s.klts_retired > 0 || s.ult_cancels > 0 || s.remediations_retick > 0 ||
      s.remediations_cancel > 0 || s.remediations_klt_replace > 0 ||
      s.syscall_comp_activated > 0) {
    std::fprintf(out, "degradation:\n");
    auto count_line = [&](const char* name, std::uint64_t v) {
      if (v > 0)
        std::fprintf(out, "  %-28s %llu\n", name,
                     static_cast<unsigned long long>(v));
    };
    count_line("klt degraded ticks", s.klt_degraded_ticks);
    count_line("klt create failures", s.klt_create_failures);
    count_line("posix timer fallbacks", s.posix_timer_fallbacks);
    count_line("spawn stack failures", s.spawn_stack_failures);
    count_line("stacks shed", s.stacks_shed);
    count_line("faults injected", s.faults_injected);
    count_line("ult faults contained", s.ult_faults);
    count_line("stack overflows", s.stack_overflows);
    count_line("escaped exceptions", s.escaped_exceptions);
    count_line("klts retired", s.klts_retired);
    count_line("stacks quarantined", s.stacks_quarantined);
    count_line("ult cancels", s.ult_cancels);
    count_line("remediations: retick", s.remediations_retick);
    count_line("remediations: cancel", s.remediations_cancel);
    count_line("remediations: klt replace", s.remediations_klt_replace);
    count_line("syscall comp: activated", s.syscall_comp_activated);
    count_line("syscall comp: reabsorbed", s.syscall_comp_reabsorbed);
    count_line("syscall comp: saturated", s.syscall_comp_saturated);
  }
}

void Runtime::enable_posix_timer_fallback() {
  SpinlockGuard g(fallback_lock_);
  if (shutting_down()) return;
  n_timer_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  if (fallback_timer_ == nullptr) {
    fallback_timer_ = PreemptionTimer::make_fallback();
    fallback_timer_->start(*this);
  }
}

// ---------------------------------------------------------------------------
// LPT_PROF_HZ sampling pacer (docs/observability.md "Profiling")
// ---------------------------------------------------------------------------

void Runtime::ProfTicker::start(Runtime& rt, int hz) {
  rt_ = &rt;
  period_ns_ = 1'000'000'000 / std::max(hz, 1);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { thread_loop(); });
}

void Runtime::ProfTicker::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  gate_.post();
  thread_.join();
}

void Runtime::ProfTicker::thread_loop() {
  // Like every helper thread: never take a runtime signal on this stack.
  signals::block_runtime_signals();
  while (!stop_.load(std::memory_order_acquire)) {
    gate_.wait_for(period_ns_);
    if (stop_.load(std::memory_order_acquire)) return;
    for (int r = 0; r < rt_->num_workers(); ++r)
      signals::send_prof_tick(rt_->worker(r));
  }
}

void Runtime::notify_work() {
  work_seq_.fetch_add(1, std::memory_order_acq_rel);
  futex_wake(&work_seq_, INT_MAX);
}

namespace {

/// Give a ringless OS thread (an application thread calling spawn(), the
/// watchdog/monitor driving timed-wait expiry) a trace ring the first time it
/// makes a ULT runnable, so its kUltWake edges are recorded rather than
/// silently dropped. Scheduler/ULT contexts already hold a ring from
/// klt_main. Never reached from signal handlers (enqueue_ready's contract),
/// so the allocating acquire_ring is safe here.
void ensure_external_trace_ring() {
  WorkerTls* tls = worker_tls();
  trace::Collector& c = trace::Collector::instance();
  // Epoch check: an application thread outlives Runtimes, and each
  // Collector::configure() frees the previous slab — a pointer cached in a
  // prior epoch dangles and must be re-acquired, never written through.
  const std::uint64_t epoch = c.config_epoch();
  if (tls->trace_ring == nullptr || tls->trace_ring_epoch != epoch) {
    tls->trace_ring = c.acquire_ring(trace::TrackKind::kExternal, -1);
    tls->trace_ring_epoch = epoch;
  }
}

}  // namespace

void Runtime::enqueue_ready(ThreadCtl* t, Worker* hint, EnqueueKind kind,
                            std::uint32_t waker) {
  if (LPT_TRACE_ON()) {
    const std::int64_t now = trace::now_ns();
    t->acct.ready_ns = now;
    const bool wake_edge =
        kind == EnqueueKind::kSpawn || kind == EnqueueKind::kUnblock;
    if (wake_edge) {
      std::uint64_t wait_kind;
      if (kind == EnqueueKind::kSpawn) {
        t->acct.spawn_ns = now;
        wait_kind = trace::kWakeArgSpawn;
      } else {
        // Close the blocked episode opened by the kBlock post action. The
        // waker exclusively owns t between waiter-list removal and enqueue
        // (same handoff that makes store_state safe), so these are
        // single-writer plain stores.
        if (t->acct.block_start_ns != 0) {
          t->acct.blocked_ns +=
              static_cast<std::uint64_t>(now - t->acct.block_start_ns);
          t->acct.block_start_ns = 0;
        }
        wait_kind = static_cast<std::uint64_t>(t->prof_wait_kind);
      }
      ensure_external_trace_ring();
      if (waker == kWakerFromTls) {
        ThreadCtl* self = detail::current_ult_or_null();
        waker = self != nullptr ? self->trace_id : 0;
      }
      trace::emit(trace::EventType::kUltWake, t->trace_id, waker, wait_kind);
    }
    // kYield/kPreempted re-ready a thread that never left the scheduler; the
    // ready stamp still feeds the dispatch delay, but there is no causal
    // wake edge to draw.
  }
  sched_->enqueue(t, hint, kind);
  notify_work();
}

void Runtime::idle_wait(std::uint32_t seen_seq) {
  // Bounded nap: timer signals, packing changes, and shutdown re-check the
  // loop conditions anyway.
  futex_wait_timeout(&work_seq_, seen_seq, 1'000'000 /* 1 ms */);
}

// ---------------------------------------------------------------------------
// Self-healing: timed waits, deadlines, remediation (docs/robustness.md)
// ---------------------------------------------------------------------------

void Runtime::lower_next_due(std::int64_t when) {
  std::int64_t cur = next_due_.load(std::memory_order_relaxed);
  while (when < cur && !next_due_.compare_exchange_weak(
                           cur, when, std::memory_order_acq_rel))
    ;
}

void Runtime::register_timed_wait(ThreadCtl* t, std::int64_t wake_ns,
                                  Spinlock* guard,
                                  std::vector<ThreadCtl*>* waiters) {
  {
    SpinlockGuard g(timed_lock_);
    timed_waits_.push_back(TimedWait{t, wake_ns, guard, waiters, false});
  }
  lower_next_due(wake_ns);
  // Close the race with a concurrent cancel: if the flag was set before this
  // entry became visible, the canceller's kick_timers may have fired against
  // an empty registry. The registry lock orders the two critical sections,
  // so one side is guaranteed to see the other's write.
  if (t->cancel_requested.load(std::memory_order_acquire)) lower_next_due(0);
}

void Runtime::unregister_timed_wait(ThreadCtl* t) {
  for (;;) {
    bool busy = false;
    {
      SpinlockGuard g(timed_lock_);
      for (std::size_t i = 0; i < timed_waits_.size(); ++i) {
        if (timed_waits_[i].t != t) continue;
        if (timed_waits_[i].busy) {
          // An expiry scan copied this entry and is touching t outside the
          // lock; it erases the entry when done. Spin it out — the wait
          // itself is over, only the bookkeeping lags.
          busy = true;
        } else {
          timed_waits_[i] = timed_waits_.back();
          timed_waits_.pop_back();
        }
        break;
      }
    }
    if (!busy) return;
    cpu_pause();
  }
}

void Runtime::expire_timers(std::int64_t now) {
  if (now < next_due_.load(std::memory_order_acquire)) return;

  // Collect due entries under the registry lock, then act on them outside
  // it: the waker must take each primitive's guard, and guard-then-registry
  // is the order register_timed_wait uses (holding both here would ABBA).
  // `busy` / deadline_busy_ pin the copies against concurrent unregister /
  // finalize while the lock is dropped. Concurrent scans (idle workers +
  // monitor tick) are safe: busy entries are skipped, so each due entry has
  // exactly one owner.
  std::vector<TimedWait> due;
  std::vector<ThreadCtl*> expired;
  {
    SpinlockGuard g(timed_lock_);
    std::int64_t next = kNoDeadline;
    for (auto& e : timed_waits_) {
      // A cancel request makes the wait due immediately: the thread must
      // reach its wakeup cancellation point, not serve out the timeout.
      if (!e.busy && (e.wake_ns <= now ||
                      e.t->cancel_requested.load(std::memory_order_relaxed))) {
        e.busy = true;
        due.push_back(e);
      } else if (!e.busy && e.wake_ns < next) {
        next = e.wake_ns;
      }
    }
    for (std::size_t i = 0; i < deadline_armed_.size();) {
      ThreadCtl* t = deadline_armed_[i];
      if (t->deadline_ns <= now) {
        deadline_busy_.push_back(t);
        expired.push_back(t);
        deadline_armed_[i] = deadline_armed_.back();
        deadline_armed_.pop_back();
      } else {
        if (t->deadline_ns < next) next = t->deadline_ns;
        ++i;
      }
    }
    next_due_.store(next, std::memory_order_release);
  }

  for (TimedWait& e : due) {
    bool won;
    if (e.waiters != nullptr) {
      // Race the normal notify path for the wakeup under the primitive's
      // guard: whoever removes t from the waiter list owns the requeue.
      SpinlockGuard g(*e.guard);
      auto it = std::find(e.waiters->begin(), e.waiters->end(), e.t);
      won = it != e.waiters->end();
      if (won) {
        e.waiters->erase(it);
        e.t->wait_timed_out = true;
      }
    } else {
      // Sleep: no competing waker. Taking the guard is still required — it
      // is released only after the sleeper's context save completes.
      SpinlockGuard g(*e.guard);
      e.t->wait_timed_out = true;
      won = true;
    }
    if (won) {
      e.t->store_state(ThreadState::kReady);
      // Timed-wait expiry wake: waker 0 (the timer, not a ULT); arg1 keeps
      // the primitive kind the waiter parked under (kSleep for sleep_for).
      enqueue_ready(e.t, nullptr, EnqueueKind::kUnblock, /*waker=*/0);
    }
  }
  if (!due.empty()) {
    SpinlockGuard g(timed_lock_);
    for (const TimedWait& e : due) {
      for (std::size_t i = 0; i < timed_waits_.size(); ++i) {
        if (timed_waits_[i].t == e.t && timed_waits_[i].busy) {
          timed_waits_[i] = timed_waits_.back();
          timed_waits_.pop_back();
          break;
        }
      }
    }
  }

  // Deadline expiry always acts — the per-thread deadline is a spawn-time
  // contract, not part of the opt-in watchdog ladder (which gates only the
  // retick/klt_replace rungs).
  for (ThreadCtl* t : expired) {
    t->cancel_requested.store(true, std::memory_order_release);
    int rank = -1;
    for (auto& w : workers_) {
      // Pointer compare only: t may be running, blocked, or finishing.
      if (w->current_ult.load(std::memory_order_acquire) != t) continue;
      rank = w->rank;
      if (w->current_preempt.load(std::memory_order_relaxed) !=
          static_cast<std::uint8_t>(Preempt::None))
        signals::send_preempt(*w, -1);
      break;
    }
    note_remediation(RemediationKind::kCancel, rank,
                     WatchdogReport::Kind::kQuantumOverrun, /*report=*/true);
  }
  if (!expired.empty()) {
    // A victim blocked in a timed wait was not due in this scan's collection
    // pass; re-arm so the next tick wakes it into its cancellation point.
    lower_next_due(0);
    SpinlockGuard g(timed_lock_);
    for (ThreadCtl* t : expired) {
      for (std::size_t i = 0; i < deadline_busy_.size(); ++i) {
        if (deadline_busy_[i] == t) {
          deadline_busy_[i] = deadline_busy_.back();
          deadline_busy_.pop_back();
          break;
        }
      }
    }
  }
}

void Runtime::maybe_expire_timers() {
  const std::int64_t due = next_due_.load(std::memory_order_relaxed);
  if (due == kNoDeadline) return;
  const std::int64_t now = now_ns();
  if (now >= due) expire_timers(now);
}

void Runtime::arm_deadline(ThreadCtl* t, std::int64_t deadline_abs_ns) {
  t->deadline_ns = deadline_abs_ns;
  {
    SpinlockGuard g(timed_lock_);
    deadline_armed_.push_back(t);
  }
  lower_next_due(deadline_abs_ns);
}

void Runtime::disarm_deadline(ThreadCtl* t) {
  if (t->deadline_ns == 0) return;  // never armed: stay off the lock
  for (;;) {
    bool busy = false;
    {
      SpinlockGuard g(timed_lock_);
      for (std::size_t i = 0; i < deadline_armed_.size(); ++i) {
        if (deadline_armed_[i] == t) {
          deadline_armed_[i] = deadline_armed_.back();
          deadline_armed_.pop_back();
          break;
        }
      }
      for (ThreadCtl* b : deadline_busy_)
        if (b == t) busy = true;
    }
    // A scan is still dereferencing t outside the lock; t must stay alive
    // until it drops the busy pin.
    if (!busy) return;
    cpu_pause();
  }
}

bool Runtime::force_replace_worker_klt(Worker& w) {
  if (shutting_down()) return false;
  KltCtl* old_host = w.current_klt.load(std::memory_order_acquire);
  if (old_host == nullptr) return false;

  // Claim the scheduler context exactly like a suspension primitive would.
  // Success means the wedged tenant (if any) has NOT entered the scheduler:
  // when it eventually tries, its own claim fails and it lands on the orphan
  // path. Failure means the scheduler currently owns the context (the worker
  // is not actually wedged in ULT code) — nothing to replace.
  KltCtl* expect = old_host;
  if (!w.host_token.compare_exchange_strong(expect, nullptr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
    return false;

  KltCtl* fresh = klt_pool_.try_pop(w.rank);
  if (fresh == nullptr) fresh = create_klt();
  if (fresh == nullptr) {
    // No replacement host available: hand the token back untouched so the
    // tenant keeps running normally, and ask the creator to restock for the
    // watchdog's next attempt.
    w.host_token.store(old_host, std::memory_order_release);
    if (!klt_creator_.saturated() && !klt_cap_reached())
      klt_creator_.request();
    return false;
  }

  // The stranded tenant must not be visible as this worker's current ULT —
  // the new host's scheduler context would otherwise report a thread it does
  // not run (and a directed cancel tick could unwind the wrong victim).
  w.current_ult.store(nullptr, std::memory_order_release);
  w.current_preempt.store(static_cast<std::uint8_t>(Preempt::None),
                          std::memory_order_release);

  // The old host is poisoned from the runtime's perspective: it exits at its
  // tenant's next runtime entry (orphan path) and is joined at shutdown.
  note_klt_retired();
  LPT_TRACE_EVENT(trace::EventType::kKltRetired, 0, 0,
                  static_cast<std::uint64_t>(
                      old_host->trace_id >= 0 ? old_host->trace_id : 0));

  fresh->action = KltAction::kBecomeWorker;
  fresh->assign_worker = &w;
  w.current_klt.store(fresh, std::memory_order_release);
  w.current_tid.store(fresh->tid.load(std::memory_order_relaxed),
                      std::memory_order_release);
  fresh->gate.post();
  return true;
}

bool Runtime::compensate_syscall_blocked_worker(Worker& w,
                                                std::uint64_t epoch) {
  if (shutting_down() || !opts_.syscall_compensate) return false;
  if ((epoch & 1) == 0) return false;  // only published regions compensate

  // Budget: compensations in flight = activated - reabsorbed - saturated.
  // Beyond the cap the worker stays wedged-but-declared until a prior
  // compensation reconciles — bounded degradation, not an error. No
  // counters move here: nothing was committed.
  const std::uint64_t in_flight = n_syscall_comp_[0].value() -
                                  n_syscall_comp_[1].value() -
                                  n_syscall_comp_[2].value();
  if (in_flight >=
      static_cast<std::uint64_t>(opts_.syscall_max_compensations))
    return false;

  KltCtl* old_host = w.current_klt.load(std::memory_order_acquire);
  if (old_host == nullptr) return false;

  // Claim the scheduler context from the wedged host — the same CAS arbiter
  // as a forced replacement. The region holder sits inside a no-preempt
  // guard, so only its own exit can contest this claim; losing the race
  // simply means the syscall already returned.
  KltCtl* expect = old_host;
  if (!w.host_token.compare_exchange_strong(expect, nullptr,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
    return false;

  // Re-validate the epoch *after* owning the token: if the region exited
  // (or a newer one started) between the watchdog's read and now, this
  // compensation would target a region that no longer exists — hand the
  // token back untouched.
  if (w.syscall_epoch.load(std::memory_order_acquire) != epoch) {
    w.host_token.store(old_host, std::memory_order_release);
    return false;
  }

  KltCtl* fresh = klt_pool_.try_pop(w.rank);
  if (fresh == nullptr) fresh = create_klt();
  if (fresh == nullptr) {
    // Committed to compensate but no KLT exists to do it with: restore the
    // token (the region exit must see itself still the owner and continue
    // normally) and account the commitment as saturated degradation —
    // activated and saturated move together so the reconciliation identity
    // holds. Ask the creator to restock for the next poll's retry.
    w.host_token.store(old_host, std::memory_order_release);
    n_syscall_comp_[0].add(1);
    n_syscall_comp_[2].add(1);
    if (!klt_creator_.saturated() && !klt_cap_reached())
      klt_creator_.request();
    return false;
  }

  // Commit. Order is load-bearing: the region exit decides "was I
  // compensated?" by compensated_epoch, and concludes "a replacement
  // committed" from current_klt — so compensated_epoch must be visible
  // before the new host is.
  n_syscall_comp_[0].add(1);
  w.syscall_compensated_epoch.store(epoch, std::memory_order_release);

  // The wedged tenant must not be visible as this worker's current ULT —
  // the fresh host's scheduler would otherwise report a thread it does not
  // run. Unlike force replacement the old host is NOT retired: it reabsorbs
  // into the KLT pool when its syscall returns.
  w.current_ult.store(nullptr, std::memory_order_release);
  w.current_preempt.store(static_cast<std::uint8_t>(Preempt::None),
                          std::memory_order_release);

  LPT_TRACE_EVENT(trace::EventType::kSyscallCompensate, 0,
                  static_cast<std::uint64_t>(w.rank), epoch);

  fresh->action = KltAction::kBecomeWorker;
  fresh->assign_worker = &w;
  w.current_klt.store(fresh, std::memory_order_release);
  w.current_tid.store(fresh->tid.load(std::memory_order_relaxed),
                      std::memory_order_release);
  fresh->gate.post();
  return true;
}

void Runtime::note_remediation(RemediationKind kind, int worker_rank,
                               WatchdogReport::Kind cause, bool report) {
  const int i = static_cast<int>(kind) - 1;
  if (i < 0 || i >= 4) return;
  n_remediations_[i].add(1);
  LPT_TRACE_EVENT(trace::EventType::kRemediation, 0,
                  static_cast<std::uint64_t>(kind),
                  static_cast<std::uint64_t>(
                      worker_rank >= 0 ? worker_rank : 0));
  if (!report) return;  // the watchdog poll already reports this episode

  // Actions taken outside a watchdog poll (deadline-driven cancels) have no
  // other reporter; synthesize the report the poll would have produced.
  WatchdogReport rep;
  rep.kind = cause;
  rep.worker = worker_rank;
  rep.remediation = kind;
  if (opts_.watchdog_callback) {
    opts_.watchdog_callback(rep);
    return;
  }
  const std::int64_t now = now_ns();
  std::int64_t last = last_remediation_stderr_ns_.load(std::memory_order_relaxed);
  if (now - last < 1'000'000'000 ||
      !last_remediation_stderr_ns_.compare_exchange_strong(
          last, now, std::memory_order_relaxed))
    return;
  std::fprintf(stderr, "[lpt watchdog] remediation %s: worker %d (%s)\n",
               remediation_kind_name(kind), worker_rank,
               watchdog_kind_name(cause));
}

namespace {

/// Page-rounded pool stack size, for "is this stack recyclable" checks.
std::size_t pooled_stack_size(const StackPool& pool) {
  const std::size_t page = 4096;
  return (pool.stack_size() + page - 1) / page * page;
}

}  // namespace

void Runtime::finalize_thread(ThreadCtl* t) {
  LPT_CHECK(t->load_state() == ThreadState::kFinished);
  disarm_deadline(t);
  note_owner_finished(t);  // abandoned-lock scan, before joiners can run
  t->fn = nullptr;  // release captures in scheduler context
  n_live_ults_.sub(1);

  // Recycle default-sized stacks through the pool (sizes are page-rounded,
  // so compare against the rounded pool size).
  if (t->stack.valid() && t->stack.size() == pooled_stack_size(stack_pool_)) {
    stack_pool_.release(std::move(t->stack));
  }

  publish_done_and_wake(t);
}

void Runtime::finalize_failed_thread(ThreadCtl* t) {
  LPT_CHECK(t->load_state() == ThreadState::kFailed);
  disarm_deadline(t);
  note_owner_finished(t);  // abandoned-lock scan, before joiners can run
  t->fn = nullptr;
  n_live_ults_.sub(1);

  if (t->stack.valid()) {
    // Sample how deep the thread actually got before it died (resident pages
    // via mincore) — published to joiners through FaultInfo and folded into
    // the runtime-wide high-water mark. A watermark within one page of the
    // guard means a near-overflow even when the fault was something else.
    const std::size_t wm = t->stack.watermark();
    t->fault.stack_watermark = wm;
    std::uint64_t seen = stack_watermark_max_.load(std::memory_order_relaxed);
    while (wm > seen && !stack_watermark_max_.compare_exchange_weak(
                            seen, wm, std::memory_order_relaxed))
      ;
    const std::size_t page = 4096;
    if (wm + page >= t->stack.size() &&
        t->fault.kind != FaultKind::kStackOverflow) {
      n_stack_near_overflow_.fetch_add(1, std::memory_order_relaxed);
      LPT_TRACE_EVENT(trace::EventType::kStackNearOverflow, t->trace_id,
                      static_cast<std::uint64_t>(wm));
    }

    // A failed thread's stack never goes straight back to the free list:
    // quarantine scrubs it and re-asserts the guard mapping (an overflow may
    // have been *through* a guard the kernel already reported once), shedding
    // the stack entirely if the guard cannot be re-established.
    if (t->stack.size() == pooled_stack_size(stack_pool_)) {
      stack_pool_.quarantine(std::move(t->stack));
    }
  }

  publish_done_and_wake(t);
}

void Runtime::publish_done_and_wake(ThreadCtl* t) {
  // Everything dereferencing t must happen before the done flag is
  // published: an external joiner may return from futex_wait and delete the
  // control block the instant done != 0.
  const bool detached = t->detached;
  std::vector<ThreadCtl*> joiners;
  {
    SpinlockGuard g(t->waiters_lock);
    t->done.store(1, std::memory_order_release);
    joiners.swap(t->waiters);
  }
  // Waking a possibly already-freed futex word is benign: FUTEX_WAKE only
  // looks the address up; loops on the predicate absorb spurious wakes.
  futex_wake(&t->done, INT_MAX);

  Worker* hint = worker_tls()->worker;
  for (ThreadCtl* j : joiners) {
    j->store_state(ThreadState::kReady);
    // The join wake edge names the finished thread as the waker explicitly:
    // this runs in scheduler context (post-exit), where no ULT is current.
    enqueue_ready(j, hint, EnqueueKind::kUnblock, t->trace_id);
  }
  if (detached) delete t;
}

// ---------------------------------------------------------------------------
// Thread handle
// ---------------------------------------------------------------------------

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStackOverflow: return "stack_overflow";
    case FaultKind::kSegv: return "segv";
    case FaultKind::kBus: return "bus";
    case FaultKind::kException: return "exception";
    case FaultKind::kCancelled: return "cancelled";
    case FaultKind::kDeadlock: return "deadlock";
  }
  return "?";
}

Thread::~Thread() {
  if (ctl_ != nullptr) join();
}

Thread& Thread::operator=(Thread&& o) noexcept {
  if (this != &o) {
    if (ctl_ != nullptr) join();
    ctl_ = o.ctl_;
    o.ctl_ = nullptr;
  }
  return *this;
}

std::uint64_t Thread::preemptions() const {
  LPT_CHECK(ctl_ != nullptr);
  return ctl_->preemptions.load(std::memory_order_relaxed);
}

void Thread::join() { (void)join_status(); }

bool Thread::request_cancel() {
  if (ctl_ == nullptr) return false;
  ThreadCtl* t = ctl_;
  if (t->done.load(std::memory_order_acquire) != 0) return false;
  t->cancel_requested.store(true, std::memory_order_release);
  // If the target is running right now under a preemptive technique, a
  // directed tick unwinds it promptly even if it never reaches a cancellation
  // point. Under Preempt::None the request stays cooperative by design.
  if (t->preempt != Preempt::None && t->rt != nullptr) {
    for (int r = 0; r < t->rt->num_workers(); ++r) {
      Worker& w = t->rt->worker(r);
      if (w.current_ult.load(std::memory_order_acquire) != t) continue;
      signals::send_preempt(w, -1);
      break;
    }
  }
  // If the target is blocked in a timed wait (sleep_for, join_for, timed
  // acquires), make it due so the next expiry scan wakes it into the
  // cancellation point instead of letting it serve out the timeout.
  if (t->rt != nullptr) t->rt->kick_timers();
  return true;
}

bool Thread::join_for(std::chrono::nanoseconds timeout) {
  void* const wait_site = __builtin_return_address(0);
  if (ctl_ == nullptr) return true;  // empty handle: trivially joined
  ThreadCtl* t = ctl_;
  const std::int64_t deadline =
      now_ns() + (timeout.count() > 0 ? timeout.count() : 0);

  ThreadCtl* self = detail::current_ult_or_null();
  if (self != nullptr) {
    LPT_CHECK_MSG(self != t, "thread cannot join itself");
    for (;;) {
      if (t->done.load(std::memory_order_acquire) != 0) break;
      if (now_ns() >= deadline) return false;
      detail::begin_no_preempt(self);
      t->waiters_lock.lock();
      if (t->done.load(std::memory_order_acquire) != 0) {
        t->waiters_lock.unlock();
        detail::end_no_preempt(self);
        break;
      }
      t->waiters.push_back(self);
      self->wait_timed_out = false;
      t->rt->register_timed_wait(self, deadline, &t->waiters_lock,
                                 &t->waiters);
      park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kJoin),
                 /*timed=*/true, nullptr, t, &t->waiters_lock, &t->waiters);
      prof::offcpu_begin(self, prof::WaitKind::kJoin, wait_site);
      detail::suspend_block(self, &t->waiters_lock, nullptr);
      park::unpark(self);
      prof::offcpu_end(self);
      t->rt->unregister_timed_wait(self);
      detail::end_no_preempt(self);  // cancellation point
      if (self->wait_timed_out && t->done.load(std::memory_order_acquire) == 0)
        return false;
    }
  } else {
    for (;;) {
      if (t->done.load(std::memory_order_acquire) != 0) break;
      const std::int64_t left = deadline - now_ns();
      if (left <= 0) return false;
      futex_wait_timeout(&t->done, 0, left);
    }
  }

  delete t;
  ctl_ = nullptr;
  return true;
}

ThreadStatus Thread::join_status() {
  void* const wait_site = __builtin_return_address(0);
  // Joining an empty or already-joined handle is a benign no-op (status
  // reads completed == false): spawn failure hands out empty handles, and
  // fault-handling code paths may join defensively.
  if (ctl_ == nullptr) return ThreadStatus{};
  ThreadCtl* t = ctl_;

  ThreadCtl* self = detail::current_ult_or_null();
  if (self != nullptr) {
    LPT_CHECK_MSG(self != t, "thread cannot join itself");
    for (;;) {
      if (t->done.load(std::memory_order_acquire) != 0) break;
      detail::begin_no_preempt(self);
      t->waiters_lock.lock();
      if (t->done.load(std::memory_order_acquire) != 0) {
        t->waiters_lock.unlock();
        detail::end_no_preempt(self);
        break;
      }
      t->waiters.push_back(self);
      park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kJoin),
                 /*timed=*/false, nullptr, t, &t->waiters_lock, &t->waiters);
      prof::offcpu_begin(self, prof::WaitKind::kJoin, wait_site);
      detail::suspend_block(self, &t->waiters_lock, nullptr);
      park::unpark(self);
      prof::offcpu_end(self);
      detail::end_no_preempt(self);
    }
  } else {
    while (t->done.load(std::memory_order_acquire) == 0) futex_wait(&t->done, 0);
  }

  // The done store published t->fault (release/acquire pair above) and the
  // final lifecycle accounting; copy both out before the control block goes
  // away.
  ThreadStatus st;
  st.completed = true;
  st.fault = t->fault;
  st.acct = t->acct;
  st.preemptions = t->preemptions.load(std::memory_order_relaxed);
  delete t;
  ctl_ = nullptr;
  return st;
}

// ---------------------------------------------------------------------------
// this_thread & NoPreemptGuard
// ---------------------------------------------------------------------------

namespace this_thread {

void yield() {
  ThreadCtl* self = detail::current_ult_or_null();
  if (self == nullptr) return;
  detail::cancel_point(self);
  detail::suspend_yield(self);
}

void sleep_for(std::chrono::nanoseconds d) {
  void* const wait_site = __builtin_return_address(0);
  ThreadCtl* self = detail::current_ult_or_null();
  if (self == nullptr) {
    if (d.count() <= 0) return;
    timespec ts;
    ts.tv_sec = static_cast<time_t>(d.count() / 1'000'000'000);
    ts.tv_nsec = static_cast<long>(d.count() % 1'000'000'000);
    nanosleep(&ts, nullptr);
    return;
  }
  detail::cancel_point(self);
  if (d.count() <= 0) {
    detail::suspend_yield(self);
    return;
  }
  // Sleep through the timed-wait registry: waiters == nullptr means no
  // competing waker, expiry always wins. The thread's own waiters_lock
  // doubles as the save-rendezvous guard (released by the post action after
  // the context save, so the expiry scan cannot requeue a half-saved
  // thread). No joiner can hold it: a sleeping thread is not done.
  const std::int64_t deadline = now_ns() + d.count();
  detail::begin_no_preempt(self);
  self->waiters_lock.lock();
  self->wait_timed_out = false;
  self->rt->register_timed_wait(self, deadline, &self->waiters_lock, nullptr);
  park::park(self, static_cast<std::uint8_t>(prof::WaitKind::kSleep),
             /*timed=*/true, nullptr, nullptr, &self->waiters_lock, nullptr);
  prof::offcpu_begin(self, prof::WaitKind::kSleep, wait_site);
  detail::suspend_block(self, &self->waiters_lock, nullptr);
  park::unpark(self);
  prof::offcpu_end(self);
  self->rt->unregister_timed_wait(self);
  detail::end_no_preempt(self);  // cancellation point
}

bool in_ult() { return detail::current_ult_or_null() != nullptr; }

int worker_rank() {
  WorkerTls* tls = worker_tls();
  if (tls->worker == nullptr || !tls->in_ult) return -1;
  return tls->worker->rank;
}

}  // namespace this_thread

NoPreemptGuard::NoPreemptGuard() {
  detail::begin_no_preempt(detail::current_ult_or_null());
}

NoPreemptGuard::~NoPreemptGuard() {
  detail::end_no_preempt(detail::current_ult_or_null());
}

}  // namespace lpt
