// Figure 8 reproduction: thread packing with HPGMG-FV-style bulk-synchronous
// multigrid phases. 28 threads per process; active cores reduced 28 -> n.
// Overhead is relative to a baseline that starts with n threads on n cores.
//
// Paper anchors: IOMP (taskset + CFS) is far from ideal, especially near 28
// cores; BOLT nonpreemptive is good exactly when n divides 28 and poor
// otherwise (ceil(28/n) rounds); BOLT preemptive tracks the ideal closely,
// and 1 ms beats 10 ms (10 ms gives too few slicing chances).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/workloads/packing_bsp.hpp"

using namespace lpt;
using namespace lpt::sim;

int main(int argc, char** argv) {
  std::printf("=== Figure 8: thread packing overhead (HPGMG-style BSP) ===\n");
  std::printf("28 threads per process; x-axis: active cores n; overhead vs "
              "baseline with n threads from the start.\n\n");

  const CostModel cm = CostModel::skylake();
  bench::JsonReport json("fig8_packing");
  const int actives[] = {4, 7, 10, 14, 15, 20, 24, 25, 27, 28};

  Table table({"n active", "baseline (s)", "BOLT nonpre.", "BOLT pre. 10ms",
               "BOLT pre. 1ms", "IOMP"});

  double nonpre_at_14 = 0, nonpre_at_27 = 0, pre1_at_15 = 0, pre1_worst = 0,
         iomp_at_27 = 0, pre1_at_27 = 0, pre10_at_15 = 0;
  for (int n : actives) {
    Fig8Config cfg;
    cfg.n_active = n;

    const Fig8Result base = run_fig8_baseline(cm, cfg);
    auto oh = [&](Fig8Variant v, Time interval) {
      Fig8Config c = cfg;
      c.interval = interval;
      const Fig8Result r = run_fig8(cm, c, v);
      return static_cast<double>(r.makespan - base.makespan) /
             static_cast<double>(base.makespan);
    };
    const double nonpre = oh(Fig8Variant::kBoltNonpreemptive, 0);
    const double pre10 = oh(Fig8Variant::kBoltPreemptive, 10'000'000);
    const double pre1 = oh(Fig8Variant::kBoltPreemptive, 1'000'000);
    const double iomp = oh(Fig8Variant::kIomp, 0);
    const std::string nkey = "overhead_pct.n" + std::to_string(n);
    json.set(nkey + ".bolt_nonpre", nonpre * 100);
    json.set(nkey + ".bolt_pre_10ms", pre10 * 100);
    json.set(nkey + ".bolt_pre_1ms", pre1 * 100);
    json.set(nkey + ".iomp", iomp * 100);

    if (n == 14) nonpre_at_14 = nonpre;
    if (n == 15) {
      pre1_at_15 = pre1;
      pre10_at_15 = pre10;
    }
    if (n == 27) {
      nonpre_at_27 = nonpre;
      iomp_at_27 = iomp;
      pre1_at_27 = pre1;
    }
    if (pre1 > pre1_worst) pre1_worst = pre1;

    table.add_row({Table::fmt("%d", n),
                   Table::fmt("%.2f", base.makespan / 1e9),
                   Table::fmt("%6.1f%%", nonpre * 100),
                   Table::fmt("%6.1f%%", pre10 * 100),
                   Table::fmt("%6.1f%%", pre1 * 100),
                   Table::fmt("%6.1f%%", iomp * 100)});
  }
  table.print();

  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] nonpreemptive is near-ideal at divisors of 28 "
              "(n=14: %.1f%%) and poor near 28 (n=27: %.1f%%; the ceil(28/n) "
              "round effect)\n",
              (nonpre_at_14 < 0.05 && nonpre_at_27 > 0.5) ? "OK" : "MISMATCH",
              nonpre_at_14 * 100, nonpre_at_27 * 100);
  std::printf("  [%s] preemptive 1 ms stays close to ideal everywhere "
              "(worst %.1f%%)\n",
              pre1_worst < 0.12 ? "OK" : "MISMATCH", pre1_worst * 100);
  std::printf("  [%s] 1 ms beats 10 ms at non-divisors (n=15: %.1f%% vs "
              "%.1f%%)\n",
              pre1_at_15 < pre10_at_15 ? "OK" : "MISMATCH", pre1_at_15 * 100,
              pre10_at_15 * 100);
  std::printf("  [%s] IOMP far from ideal near n=28 (n=27: %.1f%% vs "
              "preemptive %.1f%%)\n",
              iomp_at_27 > 0.2 && iomp_at_27 > 3 * pre1_at_27 ? "OK"
                                                              : "MISMATCH",
              iomp_at_27 * 100, pre1_at_27 * 100);
  json.write(bench::json_path_from_args(argc, argv));
  return 0;
}
