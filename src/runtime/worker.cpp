#include "runtime/worker.hpp"

#include <csignal>
#include <cstring>
#include <ctime>

#include "common/assert.hpp"
#include "common/sys.hpp"
#include "common/time.hpp"
#include "runtime/fault.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/signals.hpp"

namespace lpt {

namespace {
// Initial-exec TLS: fs-relative access, valid inside signal handlers, no
// lazy allocation.
thread_local WorkerTls g_worker_tls __attribute__((tls_model("initial-exec")));
}  // namespace

__attribute__((noinline)) WorkerTls* worker_tls() {
  WorkerTls* p = &g_worker_tls;
  // Opaque to the optimizer so callers cannot cache the result across a
  // context switch that may move this ULT to another kernel thread.
  asm volatile("" : "+r"(p));
  return p;
}

namespace detail {

ThreadCtl* current_ult_or_null() {
  // Runs in *preemptible* ULT context: a signal-yield preemption can move
  // this ULT to another KLT between any two instructions, after which `tls`
  // still points at the previous host's block — whose fields now describe
  // that KLT's next tenant (or none), not us. Re-reading the TLS address
  // after the loads detects any migration: a match proves every load
  // executed against the KLT we are on right now (a round trip back to the
  // same KLT is benign — being resumed there means its block describes this
  // ULT again); a mismatch discards the loads and retries on the new host.
  // Identity comes from the hosting KLT (hosted_ult), not the worker: after
  // a forced KLT replacement (watchdog remediation) the worker's current_ult
  // moves on with the new host while this KLT still runs its old ULT.
  for (;;) {
    WorkerTls* tls = worker_tls();
    Worker* w = tls->worker;
    const bool in = tls->in_ult;
    ThreadCtl* t = tls->hosted_ult;
    if (worker_tls() == tls) return (w == nullptr || !in) ? nullptr : t;
  }
}

namespace {

/// Claim the worker's scheduler-context ownership token for this KLT.
/// Returns false when the watchdog force-replaced this worker's host in the
/// meantime — the caller is orphaned and must not touch the worker again.
bool claim_host_token(WorkerTls* tls) {
  KltCtl* expect = tls->klt;
  return tls->worker->host_token.compare_exchange_strong(
      expect, nullptr, std::memory_order_acq_rel, std::memory_order_acquire);
}

/// Terminal landing for a ULT whose host KLT was orphaned by a forced
/// replacement: the scheduler context now runs elsewhere, so the thread is
/// finalized via klt_main's deferred hook (never before this stack is
/// abandoned) and the kernel thread exits through its native context —
/// the same retirement shape as a poisoned-KLT fault.
[[noreturn]] void orphan_terminate(ThreadCtl* self, bool finished) {
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  KltCtl* k = tls->klt;
  LPT_CHECK(w != nullptr && k != nullptr && self != nullptr);
  tls->in_ult = false;
  if (finished) {
    self->store_state(ThreadState::kFinished);
  } else {
    // An unfinished ULT stranded on an orphaned KLT is cancelled — it was
    // the wedged tenant the watchdog replaced the KLT to get away from
    // (docs/robustness.md "Self-healing").
    if (self->fault.kind == FaultKind::kNone)
      self->fault.kind = self->cancel_fault;
    self->store_state(ThreadState::kFailed);
    w->metrics.ult_faults.add(1);
    if (self->fault.kind == FaultKind::kCancelled ||
        self->fault.kind == FaultKind::kDeadlock) {
      w->metrics.ult_cancels.add(1);
      LPT_TRACE_EVENT(trace::EventType::kUltCancel, self->trace_id, 2);
    } else {
      LPT_TRACE_EVENT(trace::EventType::kUltFault, self->trace_id,
                      static_cast<std::uint64_t>(self->fault.kind),
                      self->fault.fault_addr);
    }
  }
  k->orphan_finalize = self;
  k->orphan_finished = finished;
  k->pending_wake = nullptr;
  k->pending_wake_in_handler = false;
  k->native_op = KltNativeOp::kExit;
  context_jump(k->native_ctx);
}

}  // namespace

void begin_no_preempt(ThreadCtl* self) {
  if (self != nullptr) self->no_preempt_depth = self->no_preempt_depth + 1;
}

void end_no_preempt(ThreadCtl* self) {
  if (self == nullptr) return;
  int d = self->no_preempt_depth - 1;
  self->no_preempt_depth = d;
  if (d == 0) {
    // Guard exit is a safe point: a cancel deferred by the guard (the
    // handler refuses to unwind a guard holder) lands here first.
    cancel_point(self);
    if (self->preempt_pending) {
      self->preempt_pending = false;
      // Turn the deferred preemption into a voluntary yield at this safe point.
      suspend_yield(self);
    }
  }
}

__attribute__((noinline)) void mark_in_ult() { worker_tls()->in_ult = true; }

/// Pin the calling ULT to its current KLT for a suspension prologue.
/// suspend_*() are entered from *preemptible* context (yield, end-of-guard
/// deferral, thread exit): without the pin, a signal-yield preemption landing
/// between the worker_tls() read and the context switch migrates the ULT to
/// another KLT, and the prologue's continuation would claim the previous
/// host's token and post onto its worker — two KLTs driving one scheduler
/// context. The depth counter lives on the ThreadCtl, so the increment
/// lands on the right object no matter which KLT executes it; once raised,
/// the handler defers and the KLT can no longer change under us.
void pin_to_klt(ThreadCtl* self) {
  self->no_preempt_depth = self->no_preempt_depth + 1;
}

/// Plain decrement — not end_no_preempt(): the suspension the caller just
/// completed already was the safe point, and a tick deferred while pinned
/// stays pending for the next one.
void unpin_from_klt(ThreadCtl* self) {
  self->no_preempt_depth = self->no_preempt_depth - 1;
}

__attribute__((noinline)) void suspend_yield(ThreadCtl* self) {
  LPT_CHECK(self != nullptr);
  pin_to_klt(self);
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  LPT_CHECK(w != nullptr);
  if (!claim_host_token(tls)) orphan_terminate(self, /*finished=*/false);
  // Order matters: clear in_ult before writing the post action so a signal
  // in between is a harmless no-op instead of a post-action clobber.
  tls->in_ult = false;
  w->post = PostAction{PostKind::kYield, self, nullptr, nullptr};
  context_switch(self->ctx, w->sched_ctx);
  mark_in_ult();
  unpin_from_klt(self);
}

__attribute__((noinline)) void suspend_block(ThreadCtl* self, Spinlock* sl,
                                             Mutex* m) {
  LPT_CHECK(self != nullptr);
  pin_to_klt(self);
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  LPT_CHECK(w != nullptr);
  if (!claim_host_token(tls)) {
    // Orphaned mid-block: the block itself stays valid — the thread is in a
    // waiter list others will wake through make_ready. Save the context,
    // hand the guard releases to klt_main (they may only drop once the save
    // is complete — the usual enqueue-before-save race), and retire this
    // KLT. The thread resumes right here on whichever worker wakes it.
    KltCtl* k = tls->klt;
    tls->in_ult = false;
    self->store_state(ThreadState::kBlocked);
    k->orphan_release_lock = sl;
    k->orphan_release_mutex = m;
    k->pending_wake = nullptr;
    k->pending_wake_in_handler = false;
    k->native_op = KltNativeOp::kExit;
    context_switch(self->ctx, k->native_ctx);
    mark_in_ult();
    unpin_from_klt(self);
    return;
  }
  tls->in_ult = false;
  w->post = PostAction{PostKind::kBlock, self, sl, m};
  context_switch(self->ctx, w->sched_ctx);
  mark_in_ult();
  unpin_from_klt(self);
}

__attribute__((noinline)) void suspend_exit(ThreadCtl* self) {
  LPT_CHECK(self != nullptr);
  pin_to_klt(self);  // terminal: never unpinned, the ThreadCtl dies with it
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  LPT_CHECK(w != nullptr);
  if (!claim_host_token(tls)) orphan_terminate(self, /*finished=*/true);
  tls->in_ult = false;
  self->store_state(ThreadState::kFinished);
  w->post = PostAction{PostKind::kExit, self, nullptr, nullptr};
  context_jump(w->sched_ctx);
}

__attribute__((noinline)) void suspend_fail(ThreadCtl* self) {
  // Exception firewall landing: self->fault is already filled in by the
  // trampoline's catch block. Same shape as suspend_exit, but the thread
  // ends kFailed and its stack goes through quarantine, not straight back
  // to the pool — an unwound-through stack is intact, but treating every
  // failed ULT's stack identically keeps the release path single.
  LPT_CHECK(self != nullptr);
  pin_to_klt(self);  // terminal: never unpinned, the ThreadCtl dies with it
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  LPT_CHECK(w != nullptr);
  if (!claim_host_token(tls)) orphan_terminate(self, /*finished=*/false);
  tls->in_ult = false;
  self->store_state(ThreadState::kFailed);
  w->metrics.ult_faults.add(1);
  w->metrics.escaped_exceptions.add(1);
  LPT_TRACE_EVENT(trace::EventType::kUltFault, self->trace_id,
                  static_cast<std::uint64_t>(self->fault.kind),
                  self->fault.fault_addr);
  w->post = PostAction{PostKind::kFault, self, nullptr, nullptr};
  context_jump(w->sched_ctx);
}

__attribute__((noinline)) void suspend_cancel(ThreadCtl* self) {
  // Cooperative cancellation landing: same shape as suspend_fail, but the
  // failure record says kCancelled and the action is counted separately.
  // Like every containment path, the abandoned stack's destructors are
  // skipped; the stack itself goes through quarantine.
  LPT_CHECK(self != nullptr);
  pin_to_klt(self);  // terminal: never unpinned, the ThreadCtl dies with it
  WorkerTls* tls = worker_tls();
  Worker* w = tls->worker;
  LPT_CHECK(w != nullptr);
  if (!claim_host_token(tls)) orphan_terminate(self, /*finished=*/false);
  tls->in_ult = false;
  // kCancelled unless a deadlock break marked this thread its victim.
  self->fault.kind = self->cancel_fault;
  self->store_state(ThreadState::kFailed);
  w->metrics.ult_faults.add(1);
  w->metrics.ult_cancels.add(1);
  LPT_TRACE_EVENT(trace::EventType::kUltCancel, self->trace_id);
  w->post = PostAction{PostKind::kFault, self, nullptr, nullptr};
  context_jump(w->sched_ctx);
}

void cancel_point(ThreadCtl* self) {
  if (self == nullptr) return;
  if (!self->cancel_requested.load(std::memory_order_relaxed)) return;
  if (self->no_preempt_depth > 0) return;  // guard exit will re-check
  suspend_cancel(self);
}

__attribute__((noinline)) void handler_signal_yield(Worker* w, ThreadCtl* t) {
  WorkerTls* tls = worker_tls();
  tls->in_ult = false;
  w->post = PostAction{PostKind::kPreemptSignalYield, t, nullptr, nullptr};
  // The signal frame stays live on t's stack across this switch; the signal
  // itself stays blocked on this KLT until the scheduler unblocks it.
  context_switch(t->ctx, w->sched_ctx);
  // Resumed — possibly on a different KLT (the function must be
  // KLT-independent, which is exactly signal-yield's restriction).
  mark_in_ult();
  // Returning unwinds the handler; sigreturn restores t's interrupted state.
}

__attribute__((noinline)) void handler_klt_switch(Runtime* rt, Worker* w,
                                                  ThreadCtl* t) {
  WorkerTls* tls = worker_tls();
  KltCtl* self = tls->klt;
  LPT_CHECK(self != nullptr);

  KltCtl* b = rt->klt_pool().try_pop(w->rank);
  if (b == nullptr) {
    // Graceful degradation (docs/robustness.md): while the creator cannot
    // make KLTs (pthread_create failing) or the max_klts cap is reached,
    // requesting again is pointless — count a degraded tick and let the
    // thread keep running until resources recover. All loads here are
    // atomics; the path stays async-signal-safe.
    if (rt->klt_creator().saturated() || rt->klt_cap_reached()) {
      w->metrics.klt_degraded_ticks.add(1);
      LPT_TRACE_EVENT(trace::EventType::kKltDegradedTick, t->trace_id);
      // The handler claimed the host token; the ULT keeps running here, so
      // hand ownership back.
      w->host_token.store(self, std::memory_order_release);
      return;
    }
    // No spare KLT: request one and return; this thread keeps running and
    // retries at the next timer tick (§3.1.2 — the handler must never wait
    // for pthread_create, which is not async-signal-safe and may hold locks
    // the interrupted thread owns).
    LPT_TRACE_EVENT(trace::EventType::kKltPoolMiss, t->trace_id);
    rt->klt_creator().request();
    w->host_token.store(self, std::memory_order_release);
    return;
  }
  LPT_TRACE_EVENT(trace::EventType::kKltPoolHit, t->trace_id,
                  static_cast<std::uint64_t>(b->trace_id >= 0 ? b->trace_id : 0));

  std::int64_t suspend_ns = 0;
  if (LPT_TRACE_ON()) {
    suspend_ns = trace::now_ns();
    trace::emit(trace::EventType::kKltSuspend, t->trace_id);
  }

  t->bound_klt = self;
  self->home_worker = w->rank;
  tls->in_ult = false;
  w->post = PostAction{PostKind::kPreemptKltSwitch, t, nullptr, nullptr};

  // Hand the worker role to b; it resumes w's scheduler context.
  b->action = KltAction::kBecomeWorker;
  b->assign_worker = w;
  w->current_klt.store(b, std::memory_order_release);
  w->current_tid.store(b->tid.load(std::memory_order_relaxed),
                       std::memory_order_release);
  b->gate.post();

  // Park this KLT *inside the handler*: t's KLT-local state stays frozen
  // with it until t is rescheduled (Fig 2).
  if (rt->options().klt_suspend == KltSuspend::Futex) {
    self->gate.wait();
  } else {
    sigset_t wait_mask;
    sigfillset(&wait_mask);
    sigdelset(&wait_mask, signals::resume_signo());
    while (self->sig_resume.exchange(0, std::memory_order_acquire) == 0)
      sigsuspend(&wait_mask);
  }

  // Resumed (Fig 3): this KLT now hosts whichever worker rescheduled t.
  WorkerTls* tls2 = worker_tls();
  Worker* w2 = self->assign_worker;
  tls2->worker = w2;
  tls2->hosted_ult = t;
  tls2->in_ult = true;
  t->bound_klt = nullptr;
  if (LPT_TRACE_ON() && suspend_ns != 0) {
    const std::int64_t trip = trace::now_ns() - suspend_ns;
    w2->hist_klt_trip.record(trip);
    trace::emit(trace::EventType::kKltResume, t->trace_id,
                static_cast<std::uint64_t>(trip));
  }
  // Return unwinds the handler; t continues on its original KLT.
}

void wake_bound_klt(Runtime* rt, KltCtl* k) {
  if (rt->options().klt_suspend == KltSuspend::Futex) {
    k->gate.post();
  } else {
    k->sig_resume.store(1, std::memory_order_release);
    pthread_kill(k->pthread, signals::resume_signo());
  }
}

}  // namespace detail

void Worker::scheduler_loop() {
  int idle_failures = 0;
  for (;;) {
    process_post_action();
    maybe_rearm_posix_timer();
    if (rt->shutting_down() && !rt->scheduler().has_work()) break;
    if (rank >= rt->active_workers() && !rt->shutting_down()) {
      park_for_packing();
      continue;
    }
    ThreadCtl* t = rt->scheduler().pick(*this);
    if (t == nullptr) {
      idle_backoff(idle_failures);
      continue;
    }
    idle_failures = 0;
    if (t->bound_klt != nullptr)
      run_resume_bound(t);
    else
      run(t);
  }

  if (posix_timer_armed) {
    timer_delete(posix_timer);
    posix_timer_armed = false;
  }

  // Return control to the hosting KLT's parking loop; it exits klt_main.
  KltCtl* k = worker_tls()->klt;
  k->native_op = KltNativeOp::kExit;
  context_switch(sched_ctx, k->native_ctx);
  LPT_CHECK_MSG(false, "worker scheduler context resumed after exit");
}

void Worker::run(ThreadCtl* t) {
  metrics.dispatches.inc();
  trace_dispatch(t);
  t->store_state(ThreadState::kRunning);
  current_ult.store(t, std::memory_order_release);
  current_preempt.store(static_cast<std::uint8_t>(t->preempt),
                        std::memory_order_release);
  metrics.set_state(metrics::WorkerState::kRunningUlt);
  WorkerTls* tls = worker_tls();
  tls->hosted_ult = t;
  // Publish scheduler-context ownership to the hosting KLT; whoever next
  // re-enters sched_ctx (suspension, handler, or the watchdog's forced
  // replacement) claims it back by CAS.
  host_token.store(tls->klt, std::memory_order_release);
  context_switch(sched_ctx, t->ctx);
  // Back in scheduler context; the post action says why. process_post_action
  // re-marks the state (it must anyway, for the fresh-KLT handoff resume).
}

void Worker::run_resume_bound(ThreadCtl* t) {
  // Resume protocol (Fig 3): t must continue on its bound KLT x; this
  // worker's scheduler context is saved, x is woken *after* we are off the
  // scheduler stack (on our KLT's parking stack), and our KLT returns to the
  // pool.
  KltCtl* x = t->bound_klt;
  KltCtl* me = worker_tls()->klt;
  LPT_CHECK(x != nullptr && me != nullptr && x != me);

  metrics.dispatches.inc();
  trace_dispatch(t);
  t->store_state(ThreadState::kRunning);
  current_ult.store(t, std::memory_order_release);
  current_preempt.store(static_cast<std::uint8_t>(t->preempt),
                        std::memory_order_release);
  metrics.set_state(metrics::WorkerState::kRunningUlt);
  current_klt.store(x, std::memory_order_release);
  current_tid.store(x->tid.load(std::memory_order_relaxed),
                    std::memory_order_release);
  // The resumed thread runs on x until its next scheduling point; a POSIX
  // per-worker timer must follow it there or it would tick a parked KLT.
  maybe_rearm_posix_timer(x->tid.load(std::memory_order_relaxed));

  x->action = KltAction::kResumeUlt;
  x->assign_worker = this;
  // t resumes on x: x owns the scheduler context from here (see run()).
  host_token.store(x, std::memory_order_release);

  me->pending_wake = x;
  me->pending_wake_in_handler = true;
  me->native_op = KltNativeOp::kPark;
  context_switch(sched_ctx, me->native_ctx);
  // Scheduler context resumed later by whichever KLT hosts this worker next.
}

void Worker::trace_dispatch(ThreadCtl* t) {
  if (!LPT_TRACE_ON()) return;
  const std::int64_t now = trace::now_ns();
  // Consume the ready stamp left by Runtime::enqueue_ready at whichever
  // enqueue site made t runnable — this is the full ready→dispatch
  // scheduling delay, attributed to the dispatching pool (where the wait
  // ended, even for stolen threads).
  std::uint64_t delay = 0;
  if (t->acct.ready_ns != 0) {
    delay = static_cast<std::uint64_t>(now - t->acct.ready_ns);
    t->acct.ready_ns = 0;
    t->acct.sched_delay_ns += delay;
    hist_sched_delay.record(static_cast<std::int64_t>(delay));
  }
  if (t->last_preempt_ns != 0) {
    const std::int64_t resched = now - t->last_preempt_ns;
    t->last_preempt_ns = 0;
    hist_resched.record(resched);
  }
  if (t->acct.dispatches == 0 && t->acct.spawn_ns != 0) {
    t->acct.spawn_latency_ns = now - t->acct.spawn_ns;
    hist_spawn_latency.record(t->acct.spawn_latency_ns);
  }
  t->acct.run_start_ns = now;
  ++t->acct.dispatches;
  trace::emit(trace::EventType::kUltDispatch, t->trace_id, delay);
}

// Close the off-CPU boundary of a run episode: fold on-CPU time into the
// accounting and return the timestamp so callers can reuse it (0 when the
// tracer is off — accounting stays all-zero and the hot path clock-free).
static std::int64_t close_run_episode(ThreadCtl* t) {
  if (!LPT_TRACE_ON()) return 0;
  const std::int64_t now = trace::now_ns();
  if (t->acct.run_start_ns != 0) {
    t->acct.run_ns += static_cast<std::uint64_t>(now - t->acct.run_start_ns);
    t->acct.run_start_ns = 0;
  }
  return now;
}

void Worker::process_post_action() {
  // The scheduler context may have been resumed on a fresh KLT (KLT-switch
  // handoff), so re-mark the state here, not only after context_switch.
  metrics.set_state(metrics::WorkerState::kScheduling);
  PostAction a = post;
  post = PostAction{};
  if (a.kind == PostKind::kNone) return;

  auto clear_current = [&] {
    current_ult.store(nullptr, std::memory_order_release);
    current_preempt.store(static_cast<std::uint8_t>(Preempt::None),
                          std::memory_order_release);
  };

  switch (a.kind) {
    case PostKind::kNone:
      break;
    case PostKind::kYield:
      clear_current();
      metrics.yields.inc();
      close_run_episode(a.thread);
      LPT_TRACE_EVENT(trace::EventType::kUltYield, a.thread->trace_id);
      a.thread->store_state(ThreadState::kReady);
      rt->enqueue_ready(a.thread, this, EnqueueKind::kYield);
      break;
    case PostKind::kPreemptSignalYield: {
      clear_current();
      metrics.preempt_signal_yield.inc();
      a.thread->preemptions.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t now = close_run_episode(a.thread);
      if (now != 0) {
        a.thread->last_preempt_ns = now;
        trace::emit(trace::EventType::kPreemptSignalYield, a.thread->trace_id);
      }
      a.thread->store_state(ThreadState::kReady);
      rt->enqueue_ready(a.thread, this, EnqueueKind::kPreempted);
      // The handler switched away with the preempt signal still blocked on
      // this KLT; re-enable it so further threads here can be preempted
      // while earlier ones are suspended mid-handler (§3.1.1).
      signals::unblock_preempt();
      break;
    }
    case PostKind::kPreemptKltSwitch: {
      clear_current();
      metrics.preempt_klt_switch.inc();
      a.thread->preemptions.fetch_add(1, std::memory_order_relaxed);
      const std::int64_t now = close_run_episode(a.thread);
      if (now != 0) {
        a.thread->last_preempt_ns = now;
        trace::emit(trace::EventType::kPreemptKltSwitch, a.thread->trace_id);
      }
      a.thread->store_state(ThreadState::kReady);
      // "as if it had called a yield function" (Fig 2c).
      rt->enqueue_ready(a.thread, this, EnqueueKind::kPreempted);
      break;
    }
    case PostKind::kBlock: {
      clear_current();
      metrics.blocks.inc();
      const std::int64_t now = close_run_episode(a.thread);
      if (now != 0) a.thread->acct.block_start_ns = now;
      LPT_TRACE_EVENT(trace::EventType::kUltBlock, a.thread->trace_id);
      a.thread->store_state(ThreadState::kBlocked);
      // Only now — with the context fully saved — may others see the thread.
      if (a.release_lock != nullptr) a.release_lock->unlock();
      if (a.release_mutex != nullptr) a.release_mutex->unlock();
      break;
    }
    case PostKind::kExit:
      clear_current();
      metrics.exits.inc();
      close_run_episode(a.thread);
      LPT_TRACE_EVENT(trace::EventType::kUltExit, a.thread->trace_id);
      rt->finalize_thread(a.thread);
      break;
    case PostKind::kFault:
      clear_current();
      close_run_episode(a.thread);
      rt->finalize_failed_thread(a.thread);
      // The SEGV/BUS containment jump skipped sigreturn (fault.hpp); when
      // the fault came from the exception firewall instead this is a cheap
      // no-op-shaped unblock of already-unblocked signals.
      fault::unblock_fault_signals();
      break;
  }
}

void Worker::idle_backoff(int& failures) {
  metrics.set_state(metrics::WorkerState::kIdle);
  // Idle workers double as the timed-wait clock: with TimerKind::None there
  // is no monitor tick, so this (plus the 1 ms bound on idle_wait) is what
  // keeps sleep_for / try_lock_for at ~1 ms granularity.
  rt->maybe_expire_timers();
  ++failures;
  if (failures < 64) {
    for (int i = 0; i < 32; ++i) cpu_pause();
    return;
  }
  std::uint32_t seq = rt->work_seq();
  if (rt->scheduler().has_work() || rt->shutting_down()) return;
  rt->idle_wait(seq);
}

void Worker::park_for_packing() {
  metrics.set_state(metrics::WorkerState::kParked);
  parked.store(true, std::memory_order_release);
  LPT_TRACE_EVENT(trace::EventType::kWorkerPark);
  while (rank >= rt->active_workers() && !rt->shutting_down()) {
    std::uint32_t v = wake_word.load(std::memory_order_acquire);
    if (rank < rt->active_workers() || rt->shutting_down()) break;
    futex_wait(&wake_word, v);
  }
  parked.store(false, std::memory_order_release);
  LPT_TRACE_EVENT(trace::EventType::kWorkerUnpark);
}

void Worker::maybe_rearm_posix_timer(pid_t tid) {
  if (rt->options().timer != TimerKind::PosixPerWorker) return;
  if (rt->shutting_down()) return;
  // Once degraded, ticks come from the monitor-thread fallback; retrying
  // timer_create on every reschedule would just repeat the failure.
  if (posix_timer_degraded.load(std::memory_order_relaxed)) return;
  if (tid == 0) tid = worker_tls()->klt->tid.load(std::memory_order_relaxed);
  if (posix_timer_armed && posix_timer_tid == tid) return;
  if (posix_timer_armed) {
    timer_delete(posix_timer);
    posix_timer_armed = false;
  }

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
  sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = signals::preempt_signo();
  sev.sigev_value.sival_int = -1;  // per-worker delivery: no forwarding
  sev.sigev_notify_thread_id = tid;

  const std::int64_t interval_ns = rt->options().interval_us * 1000;
  const int n = rt->num_workers();
  itimerspec its{};
  its.it_interval.tv_sec = interval_ns / 1'000'000'000;
  its.it_interval.tv_nsec = interval_ns % 1'000'000'000;
  // Timer alignment (§3.2.1): stagger first expirations across workers.
  const std::int64_t offset_ns = interval_ns * (rank + 1) / n;
  its.it_value.tv_sec = offset_ns / 1'000'000'000;
  its.it_value.tv_nsec = offset_ns % 1'000'000'000;

  // All retries happen here, before the next dispatch: leaving this function
  // neither armed nor degraded would hand the next ULT to an unpreemptible
  // worker, which is exactly what the fallback exists to prevent.
  for (int failures = 0; failures < kPosixTimerFailLimit;) {
    if (sys::timer_create(CLOCK_MONOTONIC, &sev, &posix_timer) != 0) {
      ++failures;
      ++posix_timer_failures;
      continue;
    }
    if (sys::timer_settime(posix_timer, 0, &its, nullptr) != 0) {
      timer_delete(posix_timer);
      ++failures;
      ++posix_timer_failures;
      continue;
    }
    posix_timer_armed = true;
    posix_timer_tid = tid;
    return;
  }
  note_posix_timer_failure();
}

void Worker::note_posix_timer_failure() {
  // Degrade (docs/robustness.md): preemption for this worker now rides the
  // shared monitor thread, which signals only degraded workers. Sticky for
  // the runtime's lifetime — the POSIX timer API failed repeatedly and the
  // fallback keeps preemption guarantees intact, just with more jitter.
  posix_timer_degraded.store(true, std::memory_order_release);
  LPT_TRACE_EVENT(trace::EventType::kTimerFallback, 0,
                  static_cast<std::uint64_t>(rank));
  rt->enable_posix_timer_fallback();
}

}  // namespace lpt
