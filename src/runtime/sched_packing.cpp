// Algorithm 1 of the paper: the scheduler specialized for thread packing.
//
// With N_total pools and N_active <= N_total active workers, each active
// worker owns the private pools {rank, rank + N_active, ...} below
// N_private = N_active * floor(N_total / N_active), and all active workers
// share the pools [N_private, N_total). Each worker alternates between one
// thread from a private pool and one from a shared pool; since every worker
// runs a slice of one preemption interval, shared-pool threads are scheduled
// round-robin across all active workers while private-pool threads keep
// locality.
#include "runtime/scheduler.hpp"

#include "common/assert.hpp"
#include "runtime/runtime.hpp"

namespace lpt {

void PackingScheduler::init(Runtime& rt) {
  rt_ = &rt;
  n_total_ = rt.num_workers();
  pools_.clear();
  for (int i = 0; i < n_total_; ++i)
    pools_.push_back(std::make_unique<ThreadQueue>());
  phase_.assign(n_total_, 0);
  shared_next_.assign(n_total_, 0);
}

ThreadCtl* PackingScheduler::pick(Worker& w) {
  const int n_active = rt_->active_workers();
  const int n_private = private_bound(n_total_, n_active);

  auto pick_private = [&]() -> ThreadCtl* {
    // Lines 7–10: private pools rank, rank + N_active, ... < N_private.
    for (int i = w.rank; i < n_private; i += n_active)
      if (ThreadCtl* t = pools_[i]->pop_front()) return t;
    return nullptr;
  };
  auto pick_shared = [&]() -> ThreadCtl* {
    // Lines 11–14: shared pools [N_private, N_total), scanned round-robin
    // ("active workers peek the shared pools in turn") so no shared thread
    // is starved by a fixed scan order.
    const int n_shared = n_total_ - n_private;
    if (n_shared <= 0) return nullptr;
    int& cursor = shared_next_[w.rank];
    for (int step = 0; step < n_shared; ++step) {
      const int i = n_private + (cursor + step) % n_shared;
      if (ThreadCtl* t = pools_[i]->pop_front()) {
        cursor = (i - n_private + 1) % n_shared;
        return t;
      }
    }
    return nullptr;
  };

  // Strict alternation (the "repeats ... alternately" of Algorithm 1): a
  // successful private pick makes the next attempt shared-first and vice
  // versa; a fallback pick does not flip the turn.
  std::uint8_t& phase = phase_[w.rank];
  if (phase == 0) {
    if (ThreadCtl* t = pick_private()) {
      phase = 1;
      return t;
    }
    return pick_shared();
  }
  if (ThreadCtl* t = pick_shared()) {
    phase = 0;
    return t;
  }
  return pick_private();
}

void PackingScheduler::enqueue(ThreadCtl* t, Worker* hint, EnqueueKind kind) {
  (void)hint;
  (void)kind;
  // Threads always return to their home pool; which workers may pop it is
  // decided by the pick-side private/shared partition.
  int pool = t->home_pool % n_total_;
  if (pool < 0) pool += n_total_;
  pools_[pool]->push_back(t);
}

bool PackingScheduler::has_work() const {
  for (const auto& p : pools_)
    if (!p->empty()) return true;
  return false;
}

std::int64_t PackingScheduler::queue_depth(int rank) const {
  if (rank < 0 || rank >= n_total_) return 0;
  return pools_[rank]->depth();
}

}  // namespace lpt
