// Fig 8 workload: HPGMG-FV-style bulk-synchronous multigrid phases under
// thread packing. 28 equal-load threads run V-cycle phases (compute +
// barrier) while only n of 28 cores stay active. Variants:
//   BOLT nonpreemptive  — Algorithm 1 pools, no slicing → ceil(28/n) rounds
//   BOLT preemptive     — Algorithm 1 + KLT-switching: shared-pool threads
//                         sliced round-robin at the preemption interval
//   IOMP                — 1:1 threads over the CFS model with taskset(n)
// Overhead is measured against the paper's baseline: the same solver started
// with n threads on n cores from the beginning.
#pragma once

#include "sim/cost_model.hpp"
#include "sim/ult_model.hpp"

namespace lpt::sim {

enum class Fig8Variant {
  kBoltNonpreemptive,
  kBoltPreemptive,
  kIomp,
};

const char* fig8_variant_name(Fig8Variant v);

struct Fig8Config {
  int n_threads = 28;   ///< threads per process (28 = one NUMA node, §4.2)
  int n_active = 28;    ///< active cores
  Time interval = 1'000'000;  ///< preemption interval (preemptive variant)
  int vcycles = 3;
  int levels = 3;       ///< multigrid depth; level l carries work/8^l
  /// Per-thread compute per finest-level phase (with n_threads threads).
  /// HPGMG-FV at the paper's problem size (2^8 boxes) spends almost all its
  /// time on the finest levels, so phases are long relative to the 1 ms
  /// preemption interval.
  Time finest_phase_work = 40'000'000;
  std::uint64_t seed = 42;
};

struct Fig8Result {
  Time makespan = 0;
  bool deadlocked = false;
  std::uint64_t preemptions = 0;
};

/// One packed run: n_threads threads, n_active of n_threads cores.
Fig8Result run_fig8(const CostModel& cm, const Fig8Config& cfg, Fig8Variant v);

/// The paper's baseline: n_active threads on n_active cores from the start
/// (BOLT nonpreemptive — "Intel OpenMP and BOLT showed almost the same
/// performance" for the baseline).
Fig8Result run_fig8_baseline(const CostModel& cm, const Fig8Config& cfg);

/// Relative overhead of a packed run vs the baseline (the Fig 8 y-axis).
double fig8_overhead(const CostModel& cm, const Fig8Config& cfg, Fig8Variant v);

}  // namespace lpt::sim
