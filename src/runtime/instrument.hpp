// Recording side of the scheduling tracer — the only header runtime .cpp
// files use to emit trace events. Every macro is gated on the global enabled
// flag (one relaxed load + predicted branch when tracing is off), and the
// whole surface compiles to nothing under -DLPT_TRACE_DISABLED so the hot
// path can be proven untouched.
//
// Signal-safety contract: LPT_TRACE_EVENT and LPT_TRACE_HIST are callable
// from the preemption signal handler. They must stay free of allocation,
// locks, and non-reentrant libc (see docs/observability.md).
//
// Observability has two layers: this opt-in tracer (events + histograms for
// offline analysis) and the always-on metrics counters (common/metrics.hpp,
// embedded in Worker as `metrics`). Hot-path sites typically feed both — a
// relaxed counter store unconditionally, a trace event when armed. Counters
// survive LPT_TRACE_DISABLED; only the event log compiles out.
#pragma once

#include "common/trace.hpp"
#include "runtime/worker.hpp"

#if !defined(LPT_TRACE_DISABLED)

namespace lpt::trace {

/// Record one event on the calling OS thread's ring. No-op for threads that
/// never acquired a ring (e.g. application threads calling spawn()).
/// Async-signal-safe.
inline void emit(EventType type, std::uint32_t ult = 0, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0) {
  WorkerTls* tls = worker_tls();
  Ring* r = tls->trace_ring;
  if (r == nullptr) return;
  const std::int16_t rank =
      tls->worker != nullptr ? static_cast<std::int16_t>(tls->worker->rank)
                             : static_cast<std::int16_t>(-1);
  r->record(type, now_ns(), rank, ult, arg0, arg1);
}

}  // namespace lpt::trace

/// True when tracing is armed; use to guard latency computations whose only
/// consumer is the tracer.
#define LPT_TRACE_ON() (::lpt::trace::enabled())

#define LPT_TRACE_EVENT(...)                            \
  do {                                                  \
    if (LPT_TRACE_ON()) ::lpt::trace::emit(__VA_ARGS__); \
  } while (0)

/// hist is a LatencyHistogram lvalue; ns a signed nanosecond latency.
#define LPT_TRACE_HIST(hist, ns)            \
  do {                                      \
    if (LPT_TRACE_ON()) (hist).record(ns);  \
  } while (0)

#else  // LPT_TRACE_DISABLED

namespace lpt::trace {
inline void emit(EventType, std::uint32_t = 0, std::uint64_t = 0,
                 std::uint64_t = 0) {}
}  // namespace lpt::trace

#define LPT_TRACE_ON() false
#define LPT_TRACE_EVENT(...) ((void)0)
#define LPT_TRACE_HIST(hist, ns) ((void)0)

#endif
