#include "apps/linalg/team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/spinlock.hpp"
#include "common/time.hpp"

namespace lpt::apps {
namespace {

TEST(TeamParallel, EveryRankRunsExactlyOnce) {
  RuntimeOptions o;
  o.num_workers = 3;
  Runtime rt(o);
  Thread t = rt.spawn([&] {
    std::set<int> ranks;
    Spinlock lock;
    TeamOptions to;
    to.width = 5;
    team_parallel(to, [&](int rank) {
      SpinlockGuard g(lock);
      EXPECT_TRUE(ranks.insert(rank).second) << "rank ran twice";
    });
    EXPECT_EQ(ranks.size(), 5u);
    EXPECT_EQ(*ranks.begin(), 0);
    EXPECT_EQ(*ranks.rbegin(), 4);
  });
  t.join();
}

TEST(TeamParallel, WidthOneRunsInline) {
  Runtime rt{RuntimeOptions{}};
  Thread t = rt.spawn([&] {
    int calls = 0;
    TeamOptions to;
    to.width = 1;
    team_parallel(to, [&](int rank) {
      EXPECT_EQ(rank, 0);
      ++calls;
    });
    EXPECT_EQ(calls, 1);
  });
  t.join();
}

TEST(TeamParallel, BarrierHoldsBackEarlyFinishers) {
  // No member may observe the join complete before every member arrived.
  RuntimeOptions o;
  o.num_workers = 4;
  Runtime rt(o);
  Thread t = rt.spawn([&] {
    std::atomic<int> arrived{0};
    TeamOptions to;
    to.width = 4;
    to.wait = TeamWait::kSpinYield;
    team_parallel(to, [&](int rank) {
      busy_spin_ns(rank * 1'000'000);  // staggered work
      arrived.fetch_add(1);
    });
    // team_parallel returned: every member must have arrived.
    EXPECT_EQ(arrived.load(), 4);
  });
  t.join();
}

TEST(TeamParallel, SpinBarrierWithPreemptiveMembersOnOneWorker) {
  // The faithful MKL mode: pure spin barrier is safe iff members are
  // preemptive — even with every member multiplexed onto a single worker.
  RuntimeOptions o;
  o.num_workers = 1;
  o.timer = TimerKind::PerWorkerAligned;
  o.interval_us = 500;
  Runtime rt(o);
  ThreadAttrs attrs;
  attrs.preempt = Preempt::KltSwitch;
  Thread t = rt.spawn(
      [&] {
        TeamOptions to;
        to.width = 3;
        to.wait = TeamWait::kSpin;
        to.preempt = Preempt::KltSwitch;
        std::atomic<int> ran{0};
        team_parallel(to, [&](int) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 3);
      },
      attrs);
  t.join();
  EXPECT_GT(rt.total_preemptions(), 0u);
}

TEST(TeamParallel, NestedTeams) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Thread t = rt.spawn([&] {
    std::atomic<int> leaf{0};
    TeamOptions outer;
    outer.width = 2;
    team_parallel(outer, [&](int) {
      TeamOptions inner;
      inner.width = 3;
      team_parallel(inner, [&](int) { leaf.fetch_add(1); });
    });
    EXPECT_EQ(leaf.load(), 6);
  });
  t.join();
}

TEST(TeamParallel, BlockingWaitVariant) {
  RuntimeOptions o;
  o.num_workers = 2;
  Runtime rt(o);
  Thread t = rt.spawn([&] {
    std::atomic<int> ran{0};
    TeamOptions to;
    to.width = 4;
    to.wait = TeamWait::kBlocking;
    team_parallel(to, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4);
  });
  t.join();
}

}  // namespace
}  // namespace lpt::apps
