// Kernel-level thread (KLT) pool machinery for KLT-switching (paper §3.1.2,
// §3.3): parked spare KLTs, worker-local pools (§3.3.2), and the dedicated
// KLT-creator thread (pthread_create is not async-signal-safe, so the
// preemption handler can only *request* creation and must return).
#pragma once

#include <pthread.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/futex.hpp"
#include "common/metrics.hpp"
#include "common/spinlock.hpp"
#include "common/treiber_stack.hpp"
#include "context/context.hpp"

namespace lpt {

class Runtime;
struct Worker;
struct ThreadCtl;
class Mutex;

/// What a woken KLT should do. Written by the waker before posting the gate.
enum class KltAction : std::uint8_t {
  kNone,
  kBecomeWorker,  ///< switch from the native stack into assign_worker's scheduler
  kResumeUlt,     ///< return from the in-handler park; the bound ULT continues
  kExit,          ///< shutdown
};

/// What a KLT does on its native stack right after the scheduler context
/// releases it (set by scheduler code before switching back to native_ctx).
enum class KltNativeOp : std::uint8_t {
  kPark,  ///< optionally wake pending_wake, return self to the pool, wait
  kExit,  ///< leave klt_main
};

/// Control block of one kernel thread managed by the runtime. All worker
/// hosts and pool spares run the same klt_main loop.
struct KltCtl : TreiberNode {
  Runtime* rt = nullptr;
  pthread_t pthread{};
  std::atomic<pid_t> tid{0};

  /// Context of the parking loop on the KLT's own pthread stack.
  Context native_ctx;

  /// Park/wake gate (pool parking always; in-handler parking in Futex mode).
  FutexGate gate;
  /// Resume token for the Sigsuspend in-handler parking variant (§3.3.1).
  std::atomic<std::uint32_t> sig_resume{0};

  // -- assignment, written by the waker before waking --
  KltAction action = KltAction::kNone;
  Worker* assign_worker = nullptr;

  // -- native-stack postlude, written by scheduler code before release --
  KltNativeOp native_op = KltNativeOp::kPark;
  KltCtl* pending_wake = nullptr;  ///< KLT to wake once off the scheduler stack
  bool pending_wake_in_handler = false;  ///< use in-handler resume protocol

  // -- orphaned-KLT handoff (docs/robustness.md "Self-healing") --
  // Set by a ULT stranded on a KLT whose worker host the watchdog replaced.
  // klt_main performs the deferred work after the context switch off the ULT
  // stack — the same save-before-publish discipline as the post-action
  // protocol — then exits on kExit.
  ThreadCtl* orphan_finalize = nullptr;  ///< finalize after the switch
  bool orphan_finished = false;  ///< true: normal exit; false: failed/cancelled
  Spinlock* orphan_release_lock = nullptr;  ///< orphaned block: drop after save
  Mutex* orphan_release_mutex = nullptr;    ///< ditto (condvar wait path)
  /// Syscall-compensation reabsorption (docs/robustness.md): the ULT whose
  /// blocking region returned after the sentinel replaced its host. klt_main
  /// re-enqueues it after the context switch (same save-before-publish
  /// discipline as orphan_finalize) and this KLT parks back into the pool.
  ThreadCtl* reabsorb_enqueue = nullptr;

  /// Preferred worker-local pool to return to (-1 = global only).
  int home_worker = -1;

  /// Spare KLTs (creator-made or initial spares) park themselves in the pool
  /// before their first wait; initial worker hosts do not.
  bool starts_parked = false;

  /// Trace ring id of this KLT (labels its export track); -1 when untraced.
  int trace_id = -1;

  /// sigaltstack buffer for the fault-isolation SIGSEGV/SIGBUS handler (the
  /// faulting ULT's own stack may be the unusable thing being reported).
  /// Registered by klt_main, freed after the pthread is joined.
  std::unique_ptr<char[]> alt_stack;
};

/// Global + worker-local pools of idle KLTs. try_pop/push are lock-free and
/// async-signal-safe (the preemption handler calls them).
///
/// Local pools are capped: an uncapped local pool strands idle KLTs where
/// other workers' handlers cannot see them, and the resulting re-creations
/// overshoot the paper's as-many-KLTs-as-threads worst case (§3.1.2).
/// Overflow goes to the global pool, which every worker reaches.
class KltPool {
 public:
  void configure(int num_workers, bool use_local_pools);

  /// Pop an idle KLT, preferring worker_rank's local pool. nullptr if empty.
  KltCtl* try_pop(int worker_rank);

  /// Return an idle KLT; goes to its home worker's local pool when local
  /// pools are enabled and below the cap, else to the global pool.
  void push(KltCtl* k);

  /// Drain everything (global + local) for shutdown. Not signal-safe.
  std::vector<KltCtl*> drain();

  bool local_pools_enabled() const { return use_local_; }

  /// Idle KLTs currently parked across global + local pools (the KLT-pool
  /// occupancy gauge). Async-signal-safe relaxed read; momentarily off by
  /// one around a concurrent push/pop.
  std::int64_t idle() const { return idle_.value(); }

 private:
  static constexpr int kLocalCap = 1;
  struct LocalPool {
    TreiberStack<KltCtl> stack;
    std::atomic<int> size{0};  // approximate under races; cap is soft
  };
  TreiberStack<KltCtl> global_;
  std::vector<std::unique_ptr<LocalPool>> local_;
  bool use_local_ = false;
  metrics::Gauge idle_;
};

/// Dedicated thread that creates KLTs on request. request() is
/// async-signal-safe (atomic increment + futex wake).
///
/// Degradation (docs/robustness.md): pthread_create failures are retried
/// with capped exponential backoff; once a request cannot be satisfied (or
/// the max_klts cap is hit) the creator marks itself saturated() so the
/// preemption handler defers ticks instead of queueing more requests, and it
/// keeps self-retrying in the background until creation succeeds again.
class KltCreator {
 public:
  void start(Runtime& rt);
  /// Joins the creator thread, then drains abandoned requests and resets
  /// pending/in-flight/saturation accounting so a runtime restarted in the
  /// same process starts clean.
  void stop();

  /// Ask for one more KLT; callable from the preemption handler. Requests
  /// are capped while creations are in flight: the requesting thread simply
  /// retries at its next tick (§3.1.2), so uncapped re-requests would only
  /// over-allocate KLTs beyond the paper's as-many-as-threads worst case.
  void request() {
    int cur = in_flight_.load(std::memory_order_relaxed);
    do {
      if (cur >= max_in_flight_) return;
    } while (!in_flight_.compare_exchange_weak(cur, cur + 1,
                                               std::memory_order_acq_rel));
    pending_.fetch_add(1, std::memory_order_relaxed);
    gate_.post();
  }

  /// True while KLT creation is failing (resource pressure) or capped.
  /// Async-signal-safe; the handler turns pool misses into degraded ticks
  /// while this holds.
  bool saturated() const { return exhausted_.load(std::memory_order_acquire); }

  std::uint64_t created() const { return created_.load(std::memory_order_relaxed); }
  /// pthread_create attempts that failed (injected or real), cumulative.
  std::uint64_t create_failures() const {
    return create_failures_.load(std::memory_order_relaxed);
  }
  std::uint32_t pending() const { return pending_.load(std::memory_order_relaxed); }
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

 private:
  static void* thread_main(void* arg);
  void loop();
  /// One creation with capped exponential backoff across kMaxAttempts.
  bool create_one_with_backoff();

  static constexpr int kMaxAttempts = 8;
  static constexpr std::int64_t kBackoffBaseNs = 50'000;        ///< 50 µs
  static constexpr std::int64_t kBackoffCapNs = 1'000'000;      ///< 1 ms
  static constexpr std::int64_t kSaturatedRetryNs = 2'000'000;  ///< 2 ms

  Runtime* rt_ = nullptr;
  pthread_t thread_{};
  std::atomic<std::uint32_t> pending_{0};
  std::atomic<int> in_flight_{0};
  int max_in_flight_ = 1;
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> create_failures_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<bool> stop_{false};
  FutexGate gate_;
  bool started_ = false;
};

}  // namespace lpt
