// Continuous profiler (observability subsystem, third layer next to the
// tracer and the always-on metrics): answers *where time goes*.
//
// Three coordinated collectors, all off by default:
//  * on-CPU sampling — piggybacks on the preemption/monitor ticks that are
//    already delivered to every worker (zero extra signals at the default
//    rate; LPT_PROF_HZ arms an independent sampling signal instead). Each
//    sample captures the interrupted ULT's PC plus a bounded frame-pointer
//    stack walk into a per-OS-thread SPSC ring (same discipline as the
//    trace rings: fetch_add slot reservation, release-ordered commit flag,
//    drop-and-count on overflow, never wraps);
//  * off-CPU wait attribution — every parking site (Mutex, CondVar, Barrier,
//    RwLock, Semaphore, Latch, WaitGroup, join, sleep, timed waits) tags the
//    blocking ULT with a wait kind + callsite and records the block→resume
//    time into a fixed-capacity lock-free site table;
//  * lock contention — per-Mutex acquire/contended counts, hold-time and
//    wait-time log2 histograms, and a contention-chain counter (a waiter
//    parked behind a holder that is itself off-CPU — the pathology the
//    ULT-aware-lock literature targets).
//
// Signal-safety contract: sample() runs inside signal handlers and
// record_wait() on block/wake paths; neither allocates, locks, nor calls
// non-reentrant libc. Export and configuration are ordinary-thread-only.
//
// The whole surface compiles to no-ops under -DLPT_PROF_BUILD=OFF
// (LPT_PROF_DISABLED), mirroring the tracer's LPT_TRACE_DISABLED.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.hpp"  // now_ns(), LatencyHistogram, HistSnapshot

namespace lpt::prof {

// ---------------------------------------------------------------------------
// Configuration (always compiled: RuntimeOptions embeds it)
// ---------------------------------------------------------------------------

/// Hard ceiling on captured frames per sample (sizes the ring slot).
inline constexpr std::uint32_t kMaxFrames = 28;
/// Accepted LPT_PROF_HZ range; rates outside are rejected as nonsense.
inline constexpr int kMinHz = 1;
inline constexpr int kMaxHz = 100'000;

struct ProfConfig {
  bool enabled = false;   ///< master switch (arms the on-CPU sampler)
  bool offcpu = true;     ///< collect off-CPU wait attribution (when enabled)
  bool locks = true;      ///< collect per-Mutex contention profiles (when enabled)
  /// 0 = piggyback on preemption/monitor ticks (no extra signals); N>0 = an
  /// independent sampling signal at N Hz per worker (works even with
  /// TimerKind::None). Validated to [kMinHz, kMaxHz].
  int sample_hz = 0;
  std::uint32_t max_stack_depth = 16;     ///< frames per sample, clamped to kMaxFrames
  std::uint32_t ring_capacity = 1u << 12; ///< samples per OS thread
  /// Profile written at runtime shutdown (and by the metrics publisher, each
  /// period): ".json" = JSON report, anything else = folded stacks. "" = none.
  std::string file;
};

/// What a blocked ULT is waiting on (off-CPU attribution dimension).
enum class WaitKind : std::uint8_t {
  kNone = 0,
  kMutex,
  kCondVar,
  kBarrier,
  kRwLock,
  kSemaphore,
  kLatch,
  kWaitGroup,
  kJoin,
  kSleep,
  kBusyFlag,
  kSyscall,
  kCount,
};

const char* wait_kind_name(WaitKind k);

/// One profile output format; pick_format() maps a path like the metrics
/// exporter does (".json" = kJson, everything else folded).
enum class Format { kFolded, kJson };
Format pick_format(const std::string& path);

// ---------------------------------------------------------------------------
// Snapshot types (always compiled so tests/tools build in both modes)
// ---------------------------------------------------------------------------

/// Aggregate totals; the reconciliation contract is
/// `invocations == recorded + dropped` and it is what prof_check verifies
/// against the folded/JSON headers and the metrics counters.
struct Totals {
  bool enabled = false;
  bool offcpu = false;
  bool locks = false;
  int sample_hz = 0;
  std::uint64_t invocations = 0;  ///< sampler entries (handler hits of a ULT)
  std::uint64_t recorded = 0;     ///< samples committed to rings
  std::uint64_t dropped = 0;      ///< ring-full or no-ring drops
  std::uint64_t offcpu_waits = 0;
  std::uint64_t offcpu_total_ns = 0;
  std::uint64_t offcpu_dropped = 0;  ///< site-table-full drops
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t contention_chains = 0;
};

struct UltProfile {
  std::uint32_t ult = 0;
  std::uint8_t pool = 0;
  std::uint64_t samples = 0;
};

struct WorkerProfile {
  std::int16_t worker = -1;
  std::uint64_t samples = 0;
};

struct WaitSiteProfile {
  WaitKind kind = WaitKind::kNone;
  std::uintptr_t site = 0;  ///< caller PC of the blocking primitive
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  trace::HistSnapshot blocked_ns;
};

struct LockProfile {
  int id = 0;               ///< slab index, stable for the run
  std::uintptr_t site = 0;  ///< callsite of the first contended acquire
  std::uint64_t acquires = 0;
  std::uint64_t contended = 0;
  std::uint64_t chains = 0;  ///< waiters parked behind an off-CPU holder
  trace::HistSnapshot hold_ns;
  trace::HistSnapshot wait_ns;
};

#if !defined(LPT_PROF_DISABLED)

// ---------------------------------------------------------------------------
// On-CPU sample ring (trace::Ring discipline, wider slots)
// ---------------------------------------------------------------------------

/// One captured sample. Slot commit is `depth1` (depth + 1, so an empty walk
/// still commits nonzero) written LAST with release order; 0 = uncommitted.
struct alignas(64) Sample {
  std::int64_t ts_ns = 0;
  std::uint64_t pc[kMaxFrames] = {};  ///< pc[0] = interrupted PC, then callers
  std::uint32_t ult = 0;
  std::int16_t worker = -1;
  std::uint8_t pool = 0;
  std::atomic<std::uint8_t> depth1{0};
};
static_assert(sizeof(Sample) == 256, "four cache lines per sample slot");

/// Fixed-capacity single-writer sample ring ("single writer" = one OS thread
/// plus signal handlers running on it; see trace::Ring).
class SampleRing {
 public:
  void init(Sample* slots, std::uint32_t capacity) {
    slots_ = slots;
    capacity_ = capacity;
    head_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Reserve one slot; returns nullptr (and counts a drop) once full.
  /// Wait-free, async-signal-safe.
  Sample* reserve() {
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    return &slots_[idx];
  }

  std::uint32_t fill() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::uint32_t>(h < capacity_ ? h : capacity_);
  }
  std::uint64_t recorded() const {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    return h < capacity_ ? h : capacity_;
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const Sample& at(std::uint32_t i) const { return slots_[i]; }
  std::uint32_t capacity() const { return capacity_; }

 private:
  Sample* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// ---------------------------------------------------------------------------
// Lock-contention stats (one per profiled Mutex, slab-allocated)
// ---------------------------------------------------------------------------

struct LockStats {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> chains{0};
  /// Current holder (opaque ThreadCtl*), for the contention-chain check.
  /// Pointer-compared only — never dereferenced (the holder may finalize).
  std::atomic<const void*> owner{nullptr};
  /// Written only under the owning Mutex's guard_ (acquire fast path and the
  /// handoff in unlock), so a plain field is race-free.
  std::int64_t hold_start_ns = 0;
  std::atomic<std::uintptr_t> site{0};  ///< first contended-acquire callsite
  trace::LatencyHistogram hold_ns;
  trace::LatencyHistogram wait_ns;
};

// ---------------------------------------------------------------------------
// Hot-path gates (one relaxed load each)
// ---------------------------------------------------------------------------

extern std::atomic<bool> g_oncpu;      ///< sampler armed (any mode)
extern std::atomic<bool> g_piggyback;  ///< sample from the preemption handler
extern std::atomic<bool> g_offcpu;
extern std::atomic<bool> g_locks;

inline bool oncpu_on() { return g_oncpu.load(std::memory_order_relaxed); }
inline bool piggyback_on() {
  return g_piggyback.load(std::memory_order_relaxed);
}
inline bool offcpu_on() { return g_offcpu.load(std::memory_order_relaxed); }
inline bool locks_on() { return g_locks.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Recording entry points
// ---------------------------------------------------------------------------

/// Capture one on-CPU sample: `pc` + a bounded frame-pointer walk from `fp`
/// constrained to [stack_lo, stack_hi). Counts one invocation; a null ring or
/// a full ring counts a drop instead of recording (invocations stays ==
/// recorded + dropped). Async-signal-safe: no allocation, no locks, every
/// dereference bounds-checked against the ULT's own stack. Builds without
/// frame pointers (-fomit-frame-pointer) just yield short walks — the chain
/// fails validation and the walk stops early.
void sample(SampleRing* ring, std::uint32_t ult, std::int16_t worker,
            std::uint8_t pool, std::uintptr_t pc, std::uintptr_t fp,
            std::uintptr_t stack_lo, std::uintptr_t stack_hi);

/// Attribute one completed off-CPU wait to (kind, callsite). Lock-free
/// (CAS-keyed fixed table); table exhaustion drops and counts.
void record_wait(WaitKind kind, std::uintptr_t site, std::int64_t ns);

// ---------------------------------------------------------------------------
// Collector: configuration, ring/slab registry, export
// ---------------------------------------------------------------------------

/// Process-wide collector (one active Runtime per process, like the tracer).
class Collector {
 public:
  static Collector& instance();

  /// (Re)arm profiling: drops data from any previous run. Runtime startup
  /// only — never concurrent with recording.
  void configure(const ProfConfig& cfg);
  /// Stop recording; data stays readable for late export.
  void disable();

  const ProfConfig& config() const { return cfg_; }

  /// Register the calling OS thread's sample ring (thread-startup code only).
  /// Returns nullptr when the sampler is off.
  SampleRing* acquire_ring();

  /// Grab a LockStats slot for a Mutex; nullptr when the lock profiler is
  /// off or the slab is exhausted (that mutex simply goes unprofiled).
  LockStats* acquire_lock_stats();

  Totals totals() const;
  std::vector<UltProfile> oncpu_by_ult() const;
  std::vector<WorkerProfile> oncpu_by_worker() const;
  std::vector<WaitSiteProfile> offcpu_sites() const;
  std::vector<LockProfile> lock_profiles() const;

  /// Folded-stack export (flamegraph-ready after `grep -v '^#'`): header
  /// comments carry the reconciliation totals, then one
  /// `ult<id>;p<pool>;<frame>;...;<frame> <count>` line per distinct stack,
  /// frames outermost-first, symbolized via dladdr when possible.
  void write_folded(std::FILE* out) const;
  /// Full JSON report: oncpu (totals + by-ULT/by-worker), offcpu sites,
  /// lock table.
  void write_json(std::FILE* out) const;
  /// Write to `path` in the format pick_format() chooses, atomically
  /// (tmp + rename). Returns false on I/O error.
  bool write_file(const std::string& path) const;

  static constexpr std::uint32_t kWaitSites = 256;
  static constexpr std::uint32_t kMaxLocks = 512;

 private:
  struct RingBlock {
    std::unique_ptr<Sample[]> slots;
    SampleRing ring;
  };

  struct WaitSiteSlot {
    std::atomic<std::uint64_t> key{0};  ///< site | kind<<56; 0 = free
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    trace::LatencyHistogram blocked_ns;
  };

  friend void record_wait(WaitKind, std::uintptr_t, std::int64_t);

  mutable std::mutex rings_lock_;
  std::vector<std::unique_ptr<RingBlock>> rings_;
  ProfConfig cfg_;
  std::uint32_t depth_ = 16;  ///< effective max walk depth (clamped)

  std::unique_ptr<WaitSiteSlot[]> sites_;
  std::unique_ptr<LockStats[]> locks_;
  std::atomic<std::uint32_t> next_lock_{0};
};

// Global counters shared with the recording free functions (kept out of the
// Collector so the signal path needs no instance() call ordering guarantees).
extern std::atomic<std::uint64_t> g_invocations;
extern std::atomic<std::uint64_t> g_noring_dropped;
extern std::atomic<std::uint64_t> g_offcpu_waits;
extern std::atomic<std::uint64_t> g_offcpu_ns;
extern std::atomic<std::uint64_t> g_offcpu_dropped;
extern std::atomic<std::uint32_t> g_depth;  ///< effective max walk depth

#else  // LPT_PROF_DISABLED -------------------------------------------------

class SampleRing;  // opaque; WorkerTls keeps a (never-set) pointer

struct LockStats;  // opaque; Mutex keeps a (never-set) atomic pointer

inline constexpr bool oncpu_on() { return false; }
inline constexpr bool piggyback_on() { return false; }
inline constexpr bool offcpu_on() { return false; }
inline constexpr bool locks_on() { return false; }

inline void sample(SampleRing*, std::uint32_t, std::int16_t, std::uint8_t,
                   std::uintptr_t, std::uintptr_t, std::uintptr_t,
                   std::uintptr_t) {}
inline void record_wait(WaitKind, std::uintptr_t, std::int64_t) {}

/// Stub collector: configuration is accepted (and reported back) but nothing
/// records; exports emit an empty-but-valid profile so tooling keeps working.
class Collector {
 public:
  static Collector& instance();
  void configure(const ProfConfig& cfg) { cfg_ = cfg; }
  void disable() {}
  const ProfConfig& config() const { return cfg_; }
  SampleRing* acquire_ring() { return nullptr; }
  LockStats* acquire_lock_stats() { return nullptr; }
  Totals totals() const { return Totals{}; }
  std::vector<UltProfile> oncpu_by_ult() const { return {}; }
  std::vector<WorkerProfile> oncpu_by_worker() const { return {}; }
  std::vector<WaitSiteProfile> offcpu_sites() const { return {}; }
  std::vector<LockProfile> lock_profiles() const { return {}; }
  void write_folded(std::FILE* out) const;
  void write_json(std::FILE* out) const;
  bool write_file(const std::string& path) const;

 private:
  ProfConfig cfg_;
};

#endif  // LPT_PROF_DISABLED

}  // namespace lpt::prof
