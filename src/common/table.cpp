#include "common/table.hpp"

#include <cstdarg>

namespace lpt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(const char* format, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, format);
  vsnprintf(buf, sizeof(buf), format, ap);
  va_end(ap);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fputc('\n', out);
  };

  print_row(headers_);
  std::fputs("|", out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
    std::fputc('|', out);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lpt
