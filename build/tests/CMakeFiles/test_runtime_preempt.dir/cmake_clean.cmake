file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_preempt.dir/runtime/runtime_preempt_test.cpp.o"
  "CMakeFiles/test_runtime_preempt.dir/runtime/runtime_preempt_test.cpp.o.d"
  "test_runtime_preempt"
  "test_runtime_preempt.pdb"
  "test_runtime_preempt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_preempt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
