// Test-and-test-and-set spinlock with exponential backoff.
//
// The runtime uses spinlocks only in scheduler context or under a
// PreemptGuard (see runtime/worker.hpp): a user-level thread must never be
// preempted while holding one, or the scheduler that next tries to acquire
// it on the same worker would spin forever (paper §3.5.3 discusses exactly
// this lock/preemption hazard).
#pragma once

#include <atomic>

#include "common/cpu.hpp"

namespace lpt {

class Spinlock {
 public:
  void lock() {
    int spins = 1;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      do {
        for (int i = 0; i < spins; ++i) cpu_pause();
        if (spins < 1024) spins <<= 1;
      } while (flag_.load(std::memory_order_relaxed));
    }
  }
  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }
  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for Spinlock (std::lock_guard works too; this avoids <mutex>).
class SpinlockGuard {
 public:
  explicit SpinlockGuard(Spinlock& l) : lock_(l) { lock_.lock(); }
  ~SpinlockGuard() { lock_.unlock(); }
  SpinlockGuard(const SpinlockGuard&) = delete;
  SpinlockGuard& operator=(const SpinlockGuard&) = delete;

 private:
  Spinlock& lock_;
};

}  // namespace lpt
