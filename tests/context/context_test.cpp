#include "context/context.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "context/stack.hpp"

namespace lpt {
namespace {

// Shared state for the hand-rolled coroutine-style tests.
struct PingPong {
  Context main_ctx;
  Context ult_ctx;
  std::vector<int> trace;
};

void pingpong_entry(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->trace.push_back(1);
  context_switch(pp->ult_ctx, pp->main_ctx);
  pp->trace.push_back(3);
  context_switch(pp->ult_ctx, pp->main_ctx);
  // Not reached: the test never resumes a third time.
  LPT_CHECK(false);
}

TEST(Context, SwitchRoundTripPreservesControlFlow) {
  Stack stack(64 * 1024);
  PingPong pp;
  pp.ult_ctx = make_context(stack.base(), stack.size(), pingpong_entry, &pp);

  pp.trace.push_back(0);
  context_switch(pp.main_ctx, pp.ult_ctx);
  pp.trace.push_back(2);
  context_switch(pp.main_ctx, pp.ult_ctx);
  pp.trace.push_back(4);

  EXPECT_EQ(pp.trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

struct ArgCheck {
  Context main_ctx;
  Context ult_ctx;
  void* seen_arg = nullptr;
};

void argcheck_entry(void* arg) {
  auto* ac = static_cast<ArgCheck*>(arg);
  ac->seen_arg = arg;
  context_switch(ac->ult_ctx, ac->main_ctx);
  LPT_CHECK(false);
}

TEST(Context, EntryReceivesItsArgument) {
  Stack stack(64 * 1024);
  ArgCheck ac;
  ac.ult_ctx = make_context(stack.base(), stack.size(), argcheck_entry, &ac);
  context_switch(ac.main_ctx, ac.ult_ctx);
  EXPECT_EQ(ac.seen_arg, &ac);
}

struct CalleeSaved {
  Context main_ctx;
  Context ult_ctx;
};

void clobber_entry(void* arg) {
  auto* cs = static_cast<CalleeSaved*>(arg);
  // Deliberately occupy callee-saved registers with live values across the
  // switch; if lpt_ctx_switch failed to save/restore them this computation
  // breaks (compiled with registers allocated across the call).
  std::uint64_t a = 0x1111111111111111ull, b = 0x2222222222222222ull,
                c = 0x3333333333333333ull, d = 0x4444444444444444ull,
                e = 0x5555555555555555ull;
  context_switch(cs->ult_ctx, cs->main_ctx);
  volatile std::uint64_t sum = a + b + c + d + e;
  LPT_CHECK(sum == 0xffffffffffffffffull);
  context_switch(cs->ult_ctx, cs->main_ctx);
  LPT_CHECK(false);
}

TEST(Context, CalleeSavedRegistersSurviveSwitch) {
  Stack stack(64 * 1024);
  CalleeSaved cs;
  cs.ult_ctx = make_context(stack.base(), stack.size(), clobber_entry, &cs);
  context_switch(cs.main_ctx, cs.ult_ctx);  // enters, parks
  context_switch(cs.main_ctx, cs.ult_ctx);  // resumes, verifies, parks
  SUCCEED();
}

struct FpState {
  Context main_ctx;
  Context ult_ctx;
  double result = 0;
};

void fp_entry(void* arg) {
  auto* fs = static_cast<FpState*>(arg);
  double x = 1.5;
  context_switch(fs->ult_ctx, fs->main_ctx);
  x *= 2.0;
  fs->result = x;
  context_switch(fs->ult_ctx, fs->main_ctx);
  LPT_CHECK(false);
}

TEST(Context, FloatingPointComputationAcrossSwitches) {
  Stack stack(64 * 1024);
  FpState fs;
  fs.ult_ctx = make_context(stack.base(), stack.size(), fp_entry, &fs);
  context_switch(fs.main_ctx, fs.ult_ctx);
  double y = 10.0 / 3.0;  // dirty the FP unit on the main context
  context_switch(fs.main_ctx, fs.ult_ctx);
  EXPECT_DOUBLE_EQ(fs.result, 3.0);
  EXPECT_NEAR(y, 3.3333333, 1e-6);
}

struct Chain {
  Context main_ctx;
  std::vector<Context> ctxs;
  std::vector<Stack> stacks;
  std::vector<int> order;
  int index = 0;
};

Chain* g_chain = nullptr;

void chain_entry(void* arg) {
  auto idx = static_cast<int>(reinterpret_cast<std::intptr_t>(arg));
  g_chain->order.push_back(idx);
  if (idx + 1 < static_cast<int>(g_chain->ctxs.size()))
    context_switch(g_chain->ctxs[idx], g_chain->ctxs[idx + 1]);
  else
    context_switch(g_chain->ctxs[idx], g_chain->main_ctx);
  LPT_CHECK(false);
}

TEST(Context, ChainOfManyContexts) {
  constexpr int kN = 32;
  Chain chain;
  g_chain = &chain;
  chain.ctxs.resize(kN);
  for (int i = 0; i < kN; ++i) chain.stacks.emplace_back(32 * 1024);
  for (int i = 0; i < kN; ++i)
    chain.ctxs[i] = make_context(chain.stacks[i].base(), chain.stacks[i].size(),
                                 chain_entry,
                                 reinterpret_cast<void*>(static_cast<std::intptr_t>(i)));
  context_switch(chain.main_ctx, chain.ctxs[0]);
  ASSERT_EQ(chain.order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(chain.order[i], i);
  g_chain = nullptr;
}

struct JumpState {
  Context main_ctx;
  Context ult_ctx;
  bool ran = false;
};

void jump_entry(void* arg) {
  auto* js = static_cast<JumpState*>(arg);
  js->ran = true;
  context_jump(js->main_ctx);  // terminate without saving
}

TEST(Context, JumpDiscardsCurrentContext) {
  Stack stack(64 * 1024);
  JumpState js;
  js.ult_ctx = make_context(stack.base(), stack.size(), jump_entry, &js);
  context_switch(js.main_ctx, js.ult_ctx);
  EXPECT_TRUE(js.ran);
}

TEST(Context, ManySequentialSwitchesStressStack) {
  Stack stack(64 * 1024);
  PingPong pp;
  for (int rep = 0; rep < 1000; ++rep) {
    pp.trace.clear();
    pp.ult_ctx = make_context(stack.base(), stack.size(), pingpong_entry, &pp);
    context_switch(pp.main_ctx, pp.ult_ctx);
    context_switch(pp.main_ctx, pp.ult_ctx);
    ASSERT_EQ(pp.trace, (std::vector<int>{1, 3}));
  }
}

}  // namespace
}  // namespace lpt
