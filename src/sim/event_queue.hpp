// Deterministic discrete-event engine for the multicore simulator.
//
// The host for this reproduction has a single CPU core while the paper
// evaluates on 56-core Skylake and 68-core KNL machines; the simulator
// substitutes those machines (see DESIGN.md §2). Determinism: ties are
// broken by insertion order, and all randomness comes from seeded PRNGs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lpt::sim {

/// Simulated time in nanoseconds.
using Time = std::int64_t;

class EventQueue {
 public:
  /// Schedule fn at absolute time t (>= now()).
  void schedule(Time t, std::function<void()> fn);
  /// Convenience: schedule at now() + delay.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Pop and run the earliest event. Returns false when empty.
  bool step();

  /// Run until the queue empties or `limit` events were processed.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  Time now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace lpt::sim
