
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cholesky/cholesky.cpp" "src/CMakeFiles/lpt_apps.dir/apps/cholesky/cholesky.cpp.o" "gcc" "src/CMakeFiles/lpt_apps.dir/apps/cholesky/cholesky.cpp.o.d"
  "/root/repo/src/apps/linalg/blas.cpp" "src/CMakeFiles/lpt_apps.dir/apps/linalg/blas.cpp.o" "gcc" "src/CMakeFiles/lpt_apps.dir/apps/linalg/blas.cpp.o.d"
  "/root/repo/src/apps/linalg/team.cpp" "src/CMakeFiles/lpt_apps.dir/apps/linalg/team.cpp.o" "gcc" "src/CMakeFiles/lpt_apps.dir/apps/linalg/team.cpp.o.d"
  "/root/repo/src/apps/md/md.cpp" "src/CMakeFiles/lpt_apps.dir/apps/md/md.cpp.o" "gcc" "src/CMakeFiles/lpt_apps.dir/apps/md/md.cpp.o.d"
  "/root/repo/src/apps/multigrid/multigrid.cpp" "src/CMakeFiles/lpt_apps.dir/apps/multigrid/multigrid.cpp.o" "gcc" "src/CMakeFiles/lpt_apps.dir/apps/multigrid/multigrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lpt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_context.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
