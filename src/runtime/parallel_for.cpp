#include "runtime/parallel_for.hpp"

#include "common/assert.hpp"

namespace lpt {

namespace {

void split_range(Runtime& rt, std::int64_t lo, std::int64_t hi,
                 const std::function<void(std::int64_t, std::int64_t)>& fn,
                 const ParallelForOptions& opts) {
  if (hi - lo <= opts.grain) {
    if (hi > lo) fn(lo, hi);
    return;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  // Right half becomes a child ULT; continue left inline (depth-first keeps
  // the executing worker's working set contiguous). The captured references
  // outlive the child: this frame joins it before returning.
  Thread right = rt.spawn(
      [&rt, mid, hi, &fn, &opts] { split_range(rt, mid, hi, fn, opts); },
      opts.attrs);
  split_range(rt, lo, mid, fn, opts);
  right.join();
}

}  // namespace

void parallel_for_range(Runtime& rt, std::int64_t begin, std::int64_t end,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        const ParallelForOptions& opts) {
  LPT_CHECK(opts.grain >= 1);
  if (end <= begin) return;
  if (this_thread::in_ult()) {
    split_range(rt, begin, end, fn, opts);
    return;
  }
  // External callers get a root ULT so splitting is cooperative throughout.
  Thread root = rt.spawn(
      [&rt, begin, end, &fn, &opts] { split_range(rt, begin, end, fn, opts); },
      opts.attrs);
  root.join();
}

void parallel_for(Runtime& rt, std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  const ParallelForOptions& opts) {
  parallel_for_range(
      rt, begin, end,
      [&fn](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      },
      opts);
}

}  // namespace lpt
