# Empty dependencies file for test_runtime_preempt.
# This may be replaced when dependencies are built.
