// User-level thread control block and the public Thread handle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/spinlock.hpp"
#include "context/context.hpp"
#include "context/stack.hpp"
#include "runtime/options.hpp"

namespace lpt {

class Runtime;
struct Worker;
struct KltCtl;

enum class ThreadState : std::uint32_t {
  kReady,    ///< in a pool, waiting to be scheduled
  kRunning,  ///< executing on some worker
  kBlocked,  ///< suspended on a sync primitive or join
  kFinished, ///< thread function returned
  kFailed,   ///< terminated by the fault-isolation subsystem
};

/// Why a ULT was terminated by fault isolation (docs/robustness.md).
enum class FaultKind : std::uint8_t {
  kNone = 0,        ///< completed normally
  kStackOverflow,   ///< faulted into its stack's guard page
  kSegv,            ///< other SIGSEGV, contained under isolate_faults
  kBus,             ///< SIGBUS, contained under isolate_faults
  kException,       ///< C++ exception escaped the thread function
  kCancelled,       ///< terminated by request_cancel() / deadline expiry
  kDeadlock,        ///< cancelled as a deadlock victim (cycle break or
                    ///< self-deadlock at lock())
};

const char* fault_kind_name(FaultKind k);

/// Failure record for a ULT terminated by fault isolation. Written before
/// the thread's completion flag is published, so joiners read it race-free.
struct FaultInfo {
  FaultKind kind = FaultKind::kNone;
  std::uintptr_t fault_addr = 0;    ///< si_addr for signal faults
  std::size_t stack_watermark = 0;  ///< bytes of stack used (page granularity)
  char what[64] = {};               ///< exception message (kException)
};

/// Per-ULT lifecycle accounting (docs/observability.md, "Causal tracing &
/// scheduling delay"). Stamped with trace::now_ns() at state transitions;
/// populated only while the tracer is armed (all zero otherwise, like the
/// tracer pass-through fields of metrics::Snapshot). Every field follows the
/// single-writer ownership-handoff discipline of last_preempt_ns: only the
/// thread's current owner (the enqueuing waker, or the worker hosting it)
/// touches them, with the scheduler queue's lock ordering the handoffs.
struct UltAccounting {
  std::int64_t spawn_ns = 0;          ///< spawn_ctl timestamp
  std::int64_t ready_ns = 0;          ///< last enqueue stamp; 0 = consumed
  std::int64_t run_start_ns = 0;      ///< last dispatch stamp; 0 = off-CPU
  std::int64_t block_start_ns = 0;    ///< last block stamp; 0 = not blocked
  std::int64_t spawn_latency_ns = 0;  ///< spawn → first dispatch (one-shot)
  std::uint64_t sched_delay_ns = 0;   ///< cumulative ready → dispatch wait
  std::uint64_t run_ns = 0;           ///< cumulative on-CPU time
  std::uint64_t blocked_ns = 0;       ///< cumulative block → wake time
  std::uint64_t dispatches = 0;       ///< times switched in (incl. resumes)
};

/// Completion report returned by Thread::join_status().
struct ThreadStatus {
  /// False when the handle was empty / already joined (no thread was waited
  /// on); the remaining fields are then meaningless.
  bool completed = false;
  FaultInfo fault;
  /// Lifecycle accounting copied out just before the control block is freed.
  /// Zero unless the runtime ran with tracing armed.
  UltAccounting acct;
  /// Times the thread was implicitly preempted over its whole life.
  std::uint64_t preemptions = 0;
  bool failed() const { return fault.kind != FaultKind::kNone; }
};

/// Internal per-ULT control block. Owned by the Thread handle (joinable
/// threads) or by the runtime (detached threads, freed at exit).
struct ThreadCtl {
  Runtime* rt = nullptr;
  Context ctx;
  Stack stack;
  std::function<void()> fn;

  Preempt preempt = Preempt::None;
  int priority = 0;
  int home_pool = 0;

  std::atomic<std::uint32_t> state{static_cast<std::uint32_t>(ThreadState::kReady)};

  /// Completion flag doubling as a futex word for external joiners.
  std::atomic<std::uint32_t> done{0};
  Spinlock waiters_lock;
  std::vector<ThreadCtl*> waiters;  ///< ULTs blocked in join()
  bool detached = false;

  /// KLT-switching: while this thread is suspended inside the preemption
  /// signal handler, the kernel thread it ran on is parked here and must be
  /// the one that resumes it (its KLT-local state is frozen mid-use, §3.1.2).
  KltCtl* bound_klt = nullptr;

  /// Number of times this thread was implicitly preempted (for tests/stats).
  std::atomic<std::uint64_t> preemptions{0};

  /// Small stable id for trace events (assigned at spawn; 0 = untraced).
  std::uint32_t trace_id = 0;
  /// Tracing: when this thread was last preempted (set by the post action,
  /// consumed at the next dispatch for the preempt→reschedule histogram).
  /// Only touched while the thread is owned by one worker, so unsynchronized.
  std::int64_t last_preempt_ns = 0;
  /// Causal lifecycle accounting (same ownership-handoff discipline; see
  /// UltAccounting). Stamped at every enqueue site, consumed at dispatch.
  UltAccounting acct;

  /// NoPreemptGuard nesting depth. Written only by the thread itself, read
  /// by the preemption handler on the same KLT while the thread runs.
  volatile int no_preempt_depth = 0;
  /// Set by the handler when preemption was deferred by the guard; the guard
  /// exit turns it into a voluntary yield.
  volatile bool preempt_pending = false;

  /// Failure record (fault isolation). Written by the fault handler or the
  /// exception firewall while the thread is current on one worker, published
  /// to joiners by the `done` store.
  FaultInfo fault;

  // ----- cancellation & deadlines (docs/robustness.md "Self-healing") -----

  /// Set by Thread::request_cancel(), deadline expiry, or the watchdog
  /// remediation ladder; consumed at cancellation points (yield, sync waits,
  /// sleep_for, timed waits) and by the preemption handler for a directed
  /// cancel tick. Never cleared once set.
  std::atomic<bool> cancel_requested{false};
  /// Absolute CLOCK_MONOTONIC deadline in ns; 0 = none. Armed at spawn from
  /// ThreadAttrs::deadline / RuntimeOptions::default_ult_deadline and scanned
  /// by the watchdog tick, expiring into request_cancel().
  std::int64_t deadline_ns = 0;
  /// FaultKind that suspend_cancel records when the pending cancel fires.
  /// Defaults to kCancelled; the deadlock breaker sets kDeadlock before
  /// waking its victim. Written only by whoever exclusively owns the thread
  /// (the canceller under the primitive's guard, consumed by the thread
  /// itself after wake).
  FaultKind cancel_fault = FaultKind::kCancelled;

  // ----- parking registry (park.hpp; docs/robustness.md "Deadlock") -----

  /// Registry slot index + 1 while parked; 0 = not registered. Owner-written
  /// (by the thread at park, by the thread — or the breaker on its behalf —
  /// at wake) under the same handoff discipline as wait_timed_out.
  std::uint32_t park_slot = 0;
  /// Set by the deadlock breaker when it cancelled this thread out of a
  /// parked wait; the blocking primitive's retry loop consumes it to run the
  /// cancellation point instead of retrying the acquire.
  bool park_broken = false;
  /// Ownable resources (Mutex/RwLock) this thread is currently recorded as
  /// holding in the parking registry. Maintained by park::add_owner /
  /// remove_owner; lets a thread that released everything skip the
  /// abandonment scan at exit in O(1).
  int owned_tracked = 0;

  /// Timed-wait handshake (Runtime::register_timed_wait): the expiry scan
  /// and the normal notify path both remove the waiter from the primitive's
  /// list under its guard, so exactly one side requeues it; whichever wins
  /// sets (or leaves) this flag for the resumed waiter. Only written under
  /// the primitive's guard or while solely owned.
  bool wait_timed_out = false;

  // ----- off-CPU wait attribution (docs/observability.md "Profiling") -----

  /// What this thread is about to block on, tagged by the parking site just
  /// before suspend_block() and consumed (block→resume time recorded) right
  /// after it returns. Owner-written only, so unsynchronized.
  prof::WaitKind prof_wait_kind = prof::WaitKind::kNone;
  std::uintptr_t prof_wait_site = 0;   ///< caller PC of the blocking primitive
  std::int64_t prof_wait_start_ns = 0;

  ThreadState load_state() const {
    return static_cast<ThreadState>(state.load(std::memory_order_acquire));
  }
  void store_state(ThreadState s) {
    state.store(static_cast<std::uint32_t>(s), std::memory_order_release);
  }
};

/// Move-only handle to a spawned ULT. Joins on destruction if still
/// joinable (std::jthread-style), so a dropped handle cannot leak a running
/// thread.
class Thread {
 public:
  Thread() = default;
  explicit Thread(ThreadCtl* ctl) : ctl_(ctl) {}
  ~Thread();
  Thread(Thread&& o) noexcept : ctl_(o.ctl_) { o.ctl_ = nullptr; }
  Thread& operator=(Thread&& o) noexcept;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const { return ctl_ != nullptr; }

  /// Wait for completion. Callable from a ULT (blocks cooperatively) or from
  /// any external kernel thread (blocks on a futex). Joining an empty or
  /// already-joined handle is a benign no-op — double-join is defined
  /// behavior, unlike std::thread (see runtime_edge_test.cpp).
  void join();

  /// join() that also reports how the thread ended: status.completed is true
  /// when a real thread was joined, and status.fault carries the failure
  /// record when fault isolation terminated it (stack overflow, contained
  /// SEGV/BUS, escaped exception).
  ThreadStatus join_status();

  /// Times the thread was implicitly preempted so far.
  std::uint64_t preemptions() const;

  /// Request asynchronous cancellation. The target observes it at its next
  /// cancellation point (yield, sync wait, sleep_for, timed wait) and ends as
  /// Failed(kCancelled); a target that never reaches one is unwound by a
  /// directed preemption tick through the fault-isolation path (its stack is
  /// quarantined; destructors on the abandoned stack do NOT run — same caveat
  /// as SEGV containment). No-op on an empty handle or a finished thread;
  /// returns false in those cases.
  bool request_cancel();

  /// join() bounded by a relative timeout. Returns true when the thread
  /// completed and was joined (handle becomes empty); false on timeout (the
  /// handle stays joinable). Callable from a ULT or an external thread.
  bool join_for(std::chrono::nanoseconds timeout);

 private:
  ThreadCtl* ctl_ = nullptr;
};

}  // namespace lpt
