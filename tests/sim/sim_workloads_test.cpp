// Shape tests of the figure workloads at reduced scale (the full-scale runs
// live in bench/). Each test asserts a qualitative relation the paper
// reports, on configurations small enough for the unit-test budget.
#include <gtest/gtest.h>

#include "sim/workloads/cholesky_dag.hpp"
#include "sim/workloads/compute_loop.hpp"
#include "sim/workloads/insitu_md.hpp"
#include "sim/workloads/packing_bsp.hpp"

namespace lpt::sim {
namespace {

CostModel small_skylake(int cores) {
  CostModel cm = CostModel::skylake();
  cm.num_cores = cores;
  return cm;
}

// --- Fig 6 / Table 1 --------------------------------------------------------

TEST(Fig6, VariantOrderingHoldsAtSmallScale) {
  CostModel cm = small_skylake(8);
  Fig6Config cfg;
  cfg.workers = 8;
  cfg.threads_per_worker = 4;
  cfg.interval = 200'000;
  const double naive = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchNaive);
  const double futex = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchFutex);
  const double local = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchFutexLocal);
  const double sy = fig6_overhead(cm, cfg, Fig6Variant::kSignalYield);
  const double timer = fig6_overhead(cm, cfg, Fig6Variant::kTimerInterruptionOnly);
  EXPECT_GT(naive, futex);
  EXPECT_GT(futex, local);
  EXPECT_GT(local, sy);
  EXPECT_GE(sy, timer);
  EXPECT_GT(timer, 0.0);
}

TEST(Fig6, OverheadDecreasesWithInterval) {
  CostModel cm = small_skylake(8);
  Fig6Config cfg;
  cfg.workers = 8;
  cfg.threads_per_worker = 4;
  double prev = 1e9;
  for (Time iv : {200'000LL, 1'000'000LL, 5'000'000LL}) {
    cfg.interval = iv;
    const double oh = fig6_overhead(cm, cfg, Fig6Variant::kKltSwitchFutexLocal);
    EXPECT_LT(oh, prev);
    prev = oh;
  }
}

TEST(Table1, OrderingAndRatios) {
  for (const CostModel& cm : {CostModel::skylake(), CostModel::knl()}) {
    const Table1Row r = table1_costs(cm);
    EXPECT_LT(r.one_to_one_us, r.signal_yield_us);
    EXPECT_LT(r.signal_yield_us, r.klt_switching_us);
    EXPECT_LT(r.signal_yield_us / r.one_to_one_us, 1.6);
    EXPECT_GT(r.klt_switching_us / r.one_to_one_us, 2.0);
  }
}

TEST(Table1, KnlIsUniformlySlower) {
  const Table1Row sky = table1_costs(CostModel::skylake());
  const Table1Row knl = table1_costs(CostModel::knl());
  EXPECT_GT(knl.one_to_one_us, 3 * sky.one_to_one_us);
  EXPECT_GT(knl.signal_yield_us, 3 * sky.signal_yield_us);
  EXPECT_GT(knl.klt_switching_us, 3 * sky.klt_switching_us);
}

// --- Fig 7 ------------------------------------------------------------------

TEST(Fig7, DagTaskAndFlopAccounting) {
  // T tiles: potrf T, trsm & syrk T(T-1)/2 each, gemm T(T-1)(T-2)/6.
  const double f3 = cholesky_total_flops(3, 10);
  // 3 potrf (b^3/3) + 3 trsm (b^3) + 3 syrk (b^3) + 1 gemm (2 b^3).
  EXPECT_NEAR(f3, 1000.0 * (3.0 / 3.0 + 3.0 + 3.0 + 2.0), 1e-6);
  // Leading order: (T b)^3 / 3.
  const double f24 = cholesky_total_flops(24, 1000);
  const double n = 24.0 * 1000.0;
  EXPECT_NEAR(f24 / (n * n * n / 3.0), 1.0, 0.07);
}

TEST(Fig7, PreemptiveBoltCompletesAndBeatsIomp) {
  // The paper's configuration oversubscribes (8x8 = 64 threads on 56
  // cores); mirror that ratio so the 1:1-vs-M:N gap exists at small scale.
  CostModel cm = small_skylake(16);
  CholeskyConfig cfg;
  cfg.tiles = 8;
  cfg.tile_n = 500;
  cfg.inner_threads = 4;
  cfg.outer_slots = 6;  // 24 threads on 16 cores
  const CholeskyResult bolt =
      run_cholesky(cm, cfg, CholeskyRuntime::kBoltPreemptive);
  const CholeskyResult iomp = run_cholesky(cm, cfg, CholeskyRuntime::kIompNested);
  ASSERT_FALSE(bolt.deadlocked);
  ASSERT_FALSE(iomp.deadlocked);
  EXPECT_GT(bolt.gflops, iomp.gflops);
  EXPECT_GT(bolt.preemptions, 0u);
}

TEST(Fig7, YieldHackMatchesPreemptive) {
  CostModel cm = small_skylake(16);
  CholeskyConfig cfg;
  cfg.tiles = 8;
  cfg.tile_n = 500;
  cfg.inner_threads = 4;
  cfg.outer_slots = 4;
  const double rev =
      run_cholesky(cm, cfg, CholeskyRuntime::kBoltNonpreemptiveYield).gflops;
  const double pre = run_cholesky(cm, cfg, CholeskyRuntime::kBoltPreemptive).gflops;
  EXPECT_NEAR(rev / pre, 1.0, 0.15);
}

TEST(Fig7, SaturatedMklCallsDeadlockOnlyWithoutPreemption) {
  CostModel cm = small_skylake(8);
  EXPECT_TRUE(mkl_saturation_deadlocks(cm, 8, 8, 4, /*preemptive=*/false));
  EXPECT_FALSE(mkl_saturation_deadlocks(cm, 8, 8, 4, /*preemptive=*/true));
}

TEST(Fig7, FlatOuterLacksParallelismAtSmallTileCounts) {
  CostModel cm = small_skylake(16);
  CholeskyConfig cfg;
  cfg.tiles = 6;
  cfg.tile_n = 500;
  cfg.inner_threads = 4;
  cfg.outer_slots = 4;
  const double flat = run_cholesky(cm, cfg, CholeskyRuntime::kIompFlat).gflops;
  const double nested = run_cholesky(cm, cfg, CholeskyRuntime::kIompNested).gflops;
  EXPECT_LT(flat, nested);
}

// --- Fig 8 ------------------------------------------------------------------

TEST(Fig8, NonpreemptiveShowsCeilEffect) {
  CostModel cm = small_skylake(12);
  Fig8Config cfg;
  cfg.n_threads = 12;
  cfg.vcycles = 1;
  cfg.levels = 1;
  cfg.finest_phase_work = 10'000'000;

  cfg.n_active = 6;  // divisor: ceil(12/6)=2 exactly
  const double at_div = fig8_overhead(cm, cfg, Fig8Variant::kBoltNonpreemptive);
  cfg.n_active = 11;  // non-divisor: ceil(12/11)=2 vs ideal 12/11
  const double at_nondiv =
      fig8_overhead(cm, cfg, Fig8Variant::kBoltNonpreemptive);
  EXPECT_LT(at_div, 0.05);
  EXPECT_GT(at_nondiv, 0.5);  // ~ 2/(12/11) - 1 = 83%
}

TEST(Fig8, PreemptionSlicesAwayTheCeilEffect) {
  CostModel cm = small_skylake(12);
  Fig8Config cfg;
  cfg.n_threads = 12;
  cfg.n_active = 11;
  cfg.vcycles = 1;
  cfg.levels = 1;
  cfg.finest_phase_work = 10'000'000;
  cfg.interval = 500'000;
  const double nonpre = fig8_overhead(cm, cfg, Fig8Variant::kBoltNonpreemptive);
  const double pre = fig8_overhead(cm, cfg, Fig8Variant::kBoltPreemptive);
  EXPECT_LT(pre, 0.12);
  EXPECT_LT(pre, 0.3 * nonpre);
}

TEST(Fig8, IompWorseThanPreemptiveNearFullPacking) {
  CostModel cm = small_skylake(12);
  Fig8Config cfg;
  cfg.n_threads = 12;
  cfg.n_active = 11;
  cfg.vcycles = 2;
  cfg.levels = 2;
  cfg.finest_phase_work = 10'000'000;
  const double iomp = fig8_overhead(cm, cfg, Fig8Variant::kIomp);
  const double pre = fig8_overhead(cm, cfg, Fig8Variant::kBoltPreemptive);
  EXPECT_GT(iomp, pre);
}

// --- Fig 9 ------------------------------------------------------------------

TEST(Fig9, StrictPriorityHidesAnalysisInIdleWindows) {
  CostModel cm = small_skylake(8);
  Fig9Config cfg;
  cfg.atoms = 2e6;
  cfg.steps = 20;
  cfg.analysis_interval = 2;
  const Fig9Overhead with_prio =
      fig9_overhead(cm, cfg, Fig9Variant::kArgobotsPriority);
  const Fig9Overhead without =
      fig9_overhead(cm, cfg, Fig9Variant::kArgobots);
  EXPECT_LT(with_prio.overhead, 0.05);
  EXPECT_LE(with_prio.overhead, without.overhead);
}

TEST(Fig9, ArgobotsWithPriorityBeatsPthreads) {
  CostModel cm = small_skylake(8);
  Fig9Config cfg;
  cfg.atoms = 4e6;
  cfg.steps = 20;
  cfg.analysis_interval = 1;
  const double argo =
      fig9_overhead(cm, cfg, Fig9Variant::kArgobotsPriority).overhead;
  const double pth =
      fig9_overhead(cm, cfg, Fig9Variant::kPthreadsPriority).overhead;
  EXPECT_LT(argo, pth);
}

TEST(Fig9, LargerAnalysisIntervalFitsBetter) {
  CostModel cm = small_skylake(8);
  Fig9Config cfg;
  cfg.atoms = 6e6;
  cfg.steps = 20;
  cfg.analysis_interval = 1;
  const double k1 = fig9_overhead(cm, cfg, Fig9Variant::kArgobotsPriority).overhead;
  cfg.analysis_interval = 2;
  const double k2 = fig9_overhead(cm, cfg, Fig9Variant::kArgobotsPriority).overhead;
  EXPECT_LE(k2, k1 + 1e-9);
}

TEST(Fig9, SimOnlyBaselineScalesWithAtoms) {
  CostModel cm = small_skylake(8);
  Fig9Config cfg;
  cfg.steps = 10;
  cfg.with_analysis = false;
  cfg.atoms = 2e6;
  const Time t1 = run_fig9(cm, cfg, Fig9Variant::kArgobots).makespan;
  cfg.atoms = 4e6;
  const Time t2 = run_fig9(cm, cfg, Fig9Variant::kArgobots).makespan;
  EXPECT_GT(t2, static_cast<Time>(1.5 * static_cast<double>(t1)));
}

// --- Fig 4 model property sweeps (parameterized) ----------------------------

class AlignedFlatProperty : public ::testing::TestWithParam<int> {};

TEST_P(AlignedFlatProperty, AlignedMeanIndependentOfWorkerCount) {
  CostModel cm = CostModel::skylake();
  const int workers = GetParam();
  const double mean =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerAligned, workers,
                                1'000'000, 20)
          .mean();
  EXPECT_DOUBLE_EQ(mean, static_cast<double>(cm.signal_handler));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlignedFlatProperty,
                         ::testing::Values(1, 2, 7, 28, 56, 100, 112));

class NaiveLinearProperty : public ::testing::TestWithParam<int> {};

TEST_P(NaiveLinearProperty, NaiveMeanMatchesClosedForm) {
  // Simultaneous deliveries: mean = handler + (N-1)/2 * lock.
  CostModel cm = CostModel::skylake();
  const int n = GetParam();
  const double mean =
      measure_interruption_time(cm, TimerStrategy::kPerWorkerCreationTime, n,
                                1'000'000, 20)
          .mean();
  const double expect = static_cast<double>(cm.signal_handler) +
                        (n - 1) / 2.0 * static_cast<double>(cm.kernel_lock);
  EXPECT_NEAR(mean, expect, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NaiveLinearProperty,
                         ::testing::Values(1, 2, 8, 28, 56, 100));

}  // namespace
}  // namespace lpt::sim
