file(REMOVE_RECURSE
  "CMakeFiles/table1_preemption.dir/table1_preemption.cpp.o"
  "CMakeFiles/table1_preemption.dir/table1_preemption.cpp.o.d"
  "table1_preemption"
  "table1_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
