#include "runtime/watchdog.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/time.hpp"
#include "runtime/instrument.hpp"
#include "runtime/runtime.hpp"
#include "runtime/signals.hpp"

namespace lpt {

const char* watchdog_kind_name(WatchdogReport::Kind k) {
  switch (k) {
    case WatchdogReport::Kind::kRunnableStarvation:
      return "runnable_starvation";
    case WatchdogReport::Kind::kWorkerStall:
      return "worker_stall";
    case WatchdogReport::Kind::kQuantumOverrun:
      return "quantum_overrun";
    case WatchdogReport::Kind::kFaultStorm:
      return "fault_storm";
    case WatchdogReport::Kind::kSyscallBlocked:
      return "syscall_blocked";
    case WatchdogReport::Kind::kDeadlock:
      return "deadlock";
    case WatchdogReport::Kind::kAbandonedLock:
      return "abandoned_lock";
  }
  return "?";
}

const char* remediation_kind_name(RemediationKind k) {
  switch (k) {
    case RemediationKind::kNone: return "none";
    case RemediationKind::kRetick: return "retick";
    case RemediationKind::kCancel: return "cancel";
    case RemediationKind::kKltReplace: return "klt_replace";
    case RemediationKind::kDeadlockBreak: return "deadlock_break";
  }
  return "?";
}

namespace watchdog_detail {

unsigned evaluate_worker(const WorkerObs& obs, const WatchdogLimits& limits,
                         WorkerWatch& w) {
  if (!w.primed) {
    // First observation: establish baselines, judge nothing. Thresholds
    // therefore measure from watchdog start, never from runtime start.
    w.primed = true;
    w.dispatches = obs.dispatches;
    w.dispatch_change_ns = obs.now_ns;
    w.handler_entries = obs.handler_entries;
    w.ticks_at_entry_change = obs.ticks_sent;
    w.depth_zero = obs.queue_depth <= 0;
    w.depth_nonzero_ns = obs.now_ns;
    w.ult_faults = obs.ult_faults;
    return 0;
  }

  // Progress resets: any dispatch clears the starvation/overrun episodes,
  // any handler entry clears the stall episode (and re-baselines the tick
  // count the next stall is measured against).
  if (obs.dispatches != w.dispatches) {
    w.dispatches = obs.dispatches;
    w.dispatch_change_ns = obs.now_ns;
    w.starve_flagged = false;
    w.overrun_flagged = false;
  }
  if (obs.handler_entries != w.handler_entries) {
    w.handler_entries = obs.handler_entries;
    w.ticks_at_entry_change = obs.ticks_sent;
    w.stall_flagged = false;
  }
  if (obs.queue_depth > 0) {
    if (w.depth_zero) {
      w.depth_zero = false;
      w.depth_nonzero_ns = obs.now_ns;
    }
  } else {
    w.depth_zero = true;
    w.starve_flagged = false;
  }

  // "No dispatch since the previous poll" — 0 whenever the worker is
  // churning, so every check below is vacuous on a healthy worker.
  const std::int64_t frozen_ns = obs.now_ns - w.dispatch_change_ns;
  unsigned flags = 0;

  // (e) Declared blocking syscall (docs/robustness.md): the guard *told* us
  // this worker is wedged in the kernel, so starvation/stall/overrun below
  // are suppressed — they would misdiagnose the wedge and force-replace a
  // host that the reabsorption protocol handles loss-free. One flag per
  // region instance (epoch), raised once the grace period has run out.
  if (obs.in_syscall) {
    if (limits.syscall_grace_ns > 0 &&
        obs.syscall_age_ns >= limits.syscall_grace_ns &&
        obs.syscall_epoch != w.syscall_epoch_flagged) {
      w.syscall_epoch_flagged = obs.syscall_epoch;
      flags |= kFlagSyscallBlocked;
    }
  } else {
    w.syscall_epoch_flagged = 0;
  }

  // (a) Runnable starvation: queued work behind a frozen worker. The age is
  // capped by how long the queue has been non-empty, so work enqueued onto
  // an already-long-idle worker is not flagged before its own wait exceeds
  // the threshold.
  if (limits.runnable_ns > 0 && obs.queue_depth > 0 && !obs.parked &&
      !obs.in_syscall && !w.starve_flagged) {
    const std::int64_t age =
        std::min(frozen_ns, obs.now_ns - w.depth_nonzero_ns);
    if (age >= limits.runnable_ns) {
      w.starve_flagged = true;
      flags |= kFlagRunnableStarvation;
    }
  }

  // (b) Worker stall: ticks keep being sent at a preemptible ULT but the
  // handler never runs. Requires a frozen worker — a churning worker's
  // entries lag ticks legitimately (signals landing in scheduler context
  // are absorbed without an entry).
  if (limits.stall_ticks > 0 && obs.preemptible_running && !obs.parked &&
      !obs.in_syscall && frozen_ns > 0 && !w.stall_flagged) {
    const std::uint64_t unanswered = obs.ticks_sent - w.ticks_at_entry_change;
    if (unanswered >= limits.stall_ticks) {
      w.stall_flagged = true;
      flags |= kFlagWorkerStall;
    }
  }

  // (c) Quantum overrun: preemption fires (or should) yet one preemptible
  // ULT has held the worker far past its quantum.
  if (limits.quantum_ns > 0 && obs.preemptible_running && !obs.parked &&
      !obs.in_syscall && frozen_ns >= limits.quantum_ns &&
      !w.overrun_flagged) {
    w.overrun_flagged = true;
    flags |= kFlagQuantumOverrun;
  }

  // (d) Fault storm: fault isolation terminated storm_faults or more ULTs on
  // this worker within one poll period. Unlike the other checks this is a
  // *rate* judgment on a counter delta — containment keeps the process up,
  // the watchdog makes sure a systemic failure cannot hide behind it. The
  // episode latch clears on any fault-free poll.
  const std::uint64_t new_faults = obs.ult_faults - w.ult_faults;
  w.ult_faults = obs.ult_faults;
  if (new_faults == 0) {
    w.storm_flagged = false;
  } else if (limits.storm_faults > 0 && new_faults >= limits.storm_faults &&
             !w.storm_flagged) {
    w.storm_flagged = true;
    flags |= kFlagFaultStorm;
  }
  return flags;
}

}  // namespace watchdog_detail

void Watchdog::start(Runtime& rt, bool own_thread) {
  using watchdog_detail::WorkerWatch;
  rt_ = &rt;
  const RuntimeOptions& o = rt.options();
  period_ns_ = o.watchdog_period_ms > 0 ? o.watchdog_period_ms * 1'000'000
                                        : 100'000'000;
  limits_.runnable_ns = o.watchdog_runnable_ns;
  // The tick-driven checks only make sense with a preemption timer armed;
  // under PosixPerWorker the kernel delivers directly and ticks_sent never
  // advances, which disables the stall check arithmetic on its own.
  const bool timer_armed = o.timer != TimerKind::None;
  limits_.quantum_ns = timer_armed && o.watchdog_quantum_factor > 0
                           ? o.watchdog_quantum_factor * o.interval_us * 1000
                           : 0;
  limits_.stall_ticks = timer_armed && o.watchdog_stall_ticks > 0
                            ? static_cast<std::uint64_t>(o.watchdog_stall_ticks)
                            : 0;
  limits_.storm_faults =
      o.watchdog_fault_storm > 0
          ? static_cast<std::uint64_t>(o.watchdog_fault_storm)
          : 0;
  // The wedge sentinel needs no timer: the guard publishes its own
  // timestamps. Detection stays armed even with compensation off, so the
  // flag still lands in metrics/reports as a diagnosis.
  limits_.syscall_grace_ns = o.syscall_grace_ns > 0 ? o.syscall_grace_ns : 0;
  watch_.assign(static_cast<std::size_t>(rt.num_workers()), WorkerWatch{});
  checks_.store(0, std::memory_order_relaxed);
  for (auto& f : flags_) f.store(0, std::memory_order_relaxed);
  last_accrue_ns_ = now_ns();
  next_poll_ns_ = last_accrue_ns_ + period_ns_;
  for (auto& t : last_stderr_ns_) t = 0;
  remediate_ = o.remediation;
  remediate_budget_ = 0;
  // Deadlock-detection cadence, in watchdog periods (LPT_DEADLOCK_PERIODS).
  deadlock_every_ = o.deadlock_periods > 0 ? o.deadlock_periods : 1;
  deadlock_tick_ = 0;
  enabled_.store(true, std::memory_order_release);
  if (own_thread) {
    thread_stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { thread_loop(); });
  }
}

void Watchdog::stop() {
  // Disabling first makes any still-running driver (the fallback timer
  // outlives the main one in the destructor) tick into a no-op.
  enabled_.store(false, std::memory_order_release);
  if (thread_.joinable()) {
    thread_stop_.store(true, std::memory_order_release);
    gate_.post();
    thread_.join();
  }
}

void Watchdog::tick(std::int64_t now) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  if (busy_.exchange(true, std::memory_order_acquire)) return;

  // Sampled time-in-state: attribute the elapsed wall time to whichever
  // state each worker advertises right now. Resolution is the driver's
  // cadence (monitor tick or watchdog period); hot paths pay only the
  // state-marker store.
  const std::int64_t delta = now - last_accrue_ns_;
  if (delta > 0) {
    last_accrue_ns_ = now;
    const int n = rt_->num_workers();
    for (int r = 0; r < n; ++r) {
      metrics::WorkerMetrics& m = rt_->worker(r).metrics;
      const std::uint8_t st = m.state.load(std::memory_order_relaxed);
      if (st < metrics::kWorkerStateCount)
        m.time_in_state_ns[st].inc(static_cast<std::uint64_t>(delta));
    }
  }

  if (now >= next_poll_ns_) {
    next_poll_ns_ = now + period_ns_;
    poll(now);
  }
  busy_.store(false, std::memory_order_release);
}

void Watchdog::poll(std::int64_t now) {
  using namespace watchdog_detail;
  // Remediation ladder budget (docs/robustness.md): at most
  // remediate_max_per_period actions per poll, bounding the blast radius of
  // a misconfigured ladder.
  remediate_budget_ = remediate_ ? rt_->options().remediate_max_per_period : 0;
  const int n = rt_->num_workers();
  for (int r = 0; r < n; ++r) {
    Worker& w = rt_->worker(r);
    WorkerObs obs;
    obs.now_ns = now;
    obs.dispatches = w.metrics.dispatches.value();
    obs.ticks_sent = w.metrics.ticks_sent.value();
    obs.handler_entries = w.metrics.handler_entries.value();
    obs.queue_depth = rt_->scheduler().queue_depth(r);
    obs.ult_faults = w.metrics.ult_faults.value();
    // A worker with no host KLT yet (startup) is as unjudgeable as a
    // packing-parked one.
    obs.parked = w.parked.load(std::memory_order_relaxed) ||
                 w.current_klt.load(std::memory_order_acquire) == nullptr;
    obs.preemptible_running =
        w.current_preempt.load(std::memory_order_relaxed) !=
        static_cast<std::uint8_t>(Preempt::None);
    // Consistent (epoch, entry-timestamp) read: the timestamp is only valid
    // while the epoch is odd, so re-check the epoch after reading it.
    const std::uint64_t sys_epoch =
        w.syscall_epoch.load(std::memory_order_acquire);
    if ((sys_epoch & 1) != 0) {
      const std::int64_t enter =
          w.syscall_enter_ns.load(std::memory_order_relaxed);
      if (w.syscall_epoch.load(std::memory_order_acquire) == sys_epoch &&
          enter != 0) {
        obs.in_syscall = true;
        obs.syscall_age_ns = now - enter;
        obs.syscall_epoch = sys_epoch;
      }
    }

    WorkerWatch& watch = watch_[r];
    const unsigned flags = evaluate_worker(obs, limits_, watch);
    if (flags == 0) continue;

    const std::int64_t frozen_ns = now - watch.dispatch_change_ns;
    if (flags & kFlagRunnableStarvation) {
      WatchdogReport rep;
      rep.kind = WatchdogReport::Kind::kRunnableStarvation;
      rep.worker = r;
      rep.age_ns = std::min(frozen_ns, now - watch.depth_nonzero_ns);
      rep.queue_depth = obs.queue_depth;
      report(rep);
    }
    if (flags & kFlagWorkerStall) {
      WatchdogReport rep;
      rep.kind = WatchdogReport::Kind::kWorkerStall;
      rep.worker = r;
      rep.age_ns = frozen_ns;
      rep.queue_depth = obs.queue_depth;
      rep.ticks_without_handler = obs.ticks_sent - watch.ticks_at_entry_change;
      // Ladder rung 2: the handler is unreachable (blocked mask / lost
      // timer), so signals cannot help — force the worker onto a fresh host
      // KLT; the wedged tenant is orphaned and cancelled at its next runtime
      // entry. On failure the episode latch is cleared so the next poll
      // retries instead of waiting for progress that cannot happen.
      if (remediate_budget_ > 0) {
        --remediate_budget_;
        if (rt_->force_replace_worker_klt(w)) {
          rep.remediation = RemediationKind::kKltReplace;
          rt_->note_remediation(RemediationKind::kKltReplace, r, rep.kind);
        } else {
          watch.stall_flagged = false;
        }
      }
      report(rep);
    }
    if (flags & kFlagQuantumOverrun) {
      WatchdogReport rep;
      rep.kind = WatchdogReport::Kind::kQuantumOverrun;
      rep.worker = r;
      rep.age_ns = frozen_ns;
      rep.queue_depth = obs.queue_depth;
      // Ladder rung 1: the tick that should have bounded this quantum was
      // lost or coalesced — send a directed re-tick. The latch is cleared so
      // a still-frozen worker re-arms the check next period (budget-capped)
      // rather than overrunning silently forever.
      if (remediate_budget_ > 0) {
        --remediate_budget_;
        signals::send_preempt(w, -1);
        rep.remediation = RemediationKind::kRetick;
        rt_->note_remediation(RemediationKind::kRetick, r, rep.kind);
        watch.overrun_flagged = false;
      }
      report(rep);
    }
    if (flags & kFlagFaultStorm) {
      WatchdogReport rep;
      rep.kind = WatchdogReport::Kind::kFaultStorm;
      rep.worker = r;
      rep.age_ns = period_ns_;
      rep.queue_depth = obs.queue_depth;
      report(rep);
    }
    if (flags & kFlagSyscallBlocked) {
      WatchdogReport rep;
      rep.kind = WatchdogReport::Kind::kSyscallBlocked;
      rep.worker = r;
      rep.age_ns = obs.syscall_age_ns;
      rep.queue_depth = obs.queue_depth;
      // Compensation is budgeted inside the runtime (max concurrent
      // compensations), not against the remediation ladder budget — a
      // wedged syscall is declared, bounded degradation, not an escalation.
      // On failure (budget, lost race, no KLT) clear the epoch latch so the
      // next poll retries while the region is still wedged.
      if (rt_->options().syscall_compensate &&
          !rt_->compensate_syscall_blocked_worker(w, obs.syscall_epoch))
        watch.syscall_epoch_flagged = 0;
      report(rep);
    }
  }
  // Deadlock detection (docs/robustness.md): walk the parking registry's
  // waits-for graph every deadlock_every_ polls. Confirmed cycles are broken
  // inside deadlock_poll against the same per-period ladder budget
  // (RemediationKind::kDeadlockBreak); with remediation off the detector
  // still diagnoses (flag + trace + callback), it just cannot act.
  if (++deadlock_tick_ >= deadlock_every_) {
    deadlock_tick_ = 0;
    rt_->deadlock_poll(this, remediate_ ? &remediate_budget_ : nullptr);
  }
  checks_.fetch_add(1, std::memory_order_relaxed);
}

void Watchdog::report(const WatchdogReport& r) {
  flags_[static_cast<int>(r.kind)].fetch_add(1, std::memory_order_relaxed);
  LPT_TRACE_EVENT(trace::EventType::kWatchdogFlag, 0,
                  static_cast<std::uint64_t>(r.kind),
                  static_cast<std::uint64_t>(r.worker));
  if (rt_->options().watchdog_callback) {
    rt_->options().watchdog_callback(r);
    return;
  }
  // Default sink: one stderr line per second at most, rate-limited per flag
  // kind — a starving runtime flags every period and must not flood the
  // application's logs, but one noisy kind must not silence the others.
  const std::int64_t now = now_ns();
  std::int64_t& last = last_stderr_ns_[static_cast<int>(r.kind)];
  if (now - last < 1'000'000'000) return;
  last = now;
  if (r.kind == WatchdogReport::Kind::kDeadlock) {
    // Cycle members are ULT trace ids, not workers — name the full cycle.
    char cyc[WatchdogReport::kMaxCycle * 16];
    std::size_t off = 0;
    for (int i = 0; i < r.cycle_len && off + 16 < sizeof(cyc); ++i)
      off += static_cast<std::size_t>(std::snprintf(
          cyc + off, sizeof(cyc) - off, "%s%" PRIu32, i == 0 ? "" : " -> ",
          r.cycle[i]));
    cyc[off] = '\0';
    std::fprintf(stderr,
                 "[lpt watchdog] deadlock: cycle [%s] (%d ULTs), victim %" PRIu32
                 "%s%s\n",
                 cyc, r.cycle_len, r.victim,
                 r.remediation != RemediationKind::kNone ? ", remediated: " : "",
                 r.remediation != RemediationKind::kNone
                     ? remediation_kind_name(r.remediation)
                     : "");
    return;
  }
  if (r.kind == WatchdogReport::Kind::kAbandonedLock) {
    std::fprintf(stderr,
                 "[lpt watchdog] abandoned_lock: ULT %" PRIu32
                 " ended while holding a lock%s\n",
                 r.cycle_len > 0 ? r.cycle[0] : 0,
                 r.victim != 0 ? " (force-released)" : "");
    return;
  }
  std::fprintf(stderr,
               "[lpt watchdog] %s: worker %d stuck for %.0f ms "
               "(queue depth %" PRId64 ", %" PRIu64 " unanswered ticks%s%s)\n",
               watchdog_kind_name(r.kind), r.worker,
               static_cast<double>(r.age_ns) / 1e6, r.queue_depth,
               r.ticks_without_handler,
               r.remediation != RemediationKind::kNone ? ", remediated: " : "",
               r.remediation != RemediationKind::kNone
                   ? remediation_kind_name(r.remediation)
                   : "");
}

void Watchdog::thread_loop() {
  signals::block_runtime_signals();
  worker_tls()->trace_ring =
      trace::Collector::instance().acquire_ring(trace::TrackKind::kTimer, -1);
  worker_tls()->trace_ring_epoch = trace::Collector::instance().config_epoch();
  for (;;) {
    gate_.wait_for(period_ns_);
    if (thread_stop_.load(std::memory_order_acquire)) return;
    // Via the runtime wrapper so timed-wait/deadline expiry runs even when
    // no monitor timer thread exists to drive it.
    rt_->watchdog_tick(now_ns());
  }
}

// ---------------------------------------------------------------------------
// MetricsPublisher
// ---------------------------------------------------------------------------

void MetricsPublisher::start(Runtime& rt, metrics::PublishConfig cfg) {
  rt_ = &rt;
  cfg_ = std::move(cfg);
  format_ = metrics::format_for_path(cfg_.file);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { thread_loop(); });
}

void MetricsPublisher::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  gate_.post();
  thread_.join();
  // Final rewrite after the join: the destructor calls stop() once all ULT
  // work has quiesced, so the file left behind holds the run's final totals.
  publish_once();
}

void MetricsPublisher::publish_once() {
  // Atomic replacement: scrapers (and the check.sh smoke) must never read a
  // torn file, so write a sibling tmp file and rename over the target.
  const std::string tmp = cfg_.file + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  rt_->write_metrics(f, format_);
  std::fclose(f);
  std::rename(tmp.c_str(), cfg_.file.c_str());

  // Continuous profiling: when the profiler is armed with an output file,
  // refresh it on the same cadence (write_profile is atomic the same way),
  // so a long-running process exposes a live profile next to its metrics.
  if (rt_->prof_enabled() && !rt_->prof_config().file.empty())
    rt_->write_profile(rt_->prof_config().file);
}

void MetricsPublisher::thread_loop() {
  signals::block_runtime_signals();
  const std::int64_t period_ns = cfg_.period_ms * 1'000'000;
  publish_once();  // a scrape target exists as soon as the runtime does
  for (;;) {
    gate_.wait_for(period_ns);
    if (stop_.load(std::memory_order_acquire)) return;
    publish_once();
  }
}

}  // namespace lpt
