#include "runtime/io_guard.hpp"

#include <chrono>

#include "common/cpu.hpp"
#include "common/sys.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "runtime/instrument.hpp"
#include "runtime/internal.hpp"
#include "runtime/klt_pool.hpp"
#include "runtime/prof_glue.hpp"
#include "runtime/worker.hpp"

namespace lpt::io {

blocking_region::blocking_region(void* site) {
  self_ = lpt::detail::current_ult_or_null();
  if (self_ == nullptr) return;  // no runtime: inert, the syscall just runs

  // Pin the ULT to this KLT for the whole syscall: the preemption handler
  // defers while the guard depth is nonzero *before* it attempts the
  // host-token claim, so neither a tick nor a KLT-switch can move the ULT
  // while its register state is about to be parked inside the kernel. The
  // wedge sentinel is the only party allowed to take the token from us.
  lpt::detail::begin_no_preempt(self_);
  worker_ = worker_tls()->worker;
  prof::offcpu_begin(self_, prof::WaitKind::kSyscall,
                     site != nullptr ? site : __builtin_return_address(0));

  const std::uint64_t e =
      worker_->syscall_epoch.load(std::memory_order_relaxed);
  if ((e & 1) == 0) {
    // Outermost region on this worker: publish. The timestamp must be
    // visible before the epoch turns odd — the sentinel reads age only for
    // odd epochs — and must come from lpt::now_ns (CLOCK_MONOTONIC), the
    // clock the watchdog subtracts it from; trace::now_ns is a different
    // clock (MONOTONIC_RAW) with an arbitrary offset.
    enter_ns_ = now_ns();
    worker_->syscall_enter_ns.store(enter_ns_, std::memory_order_relaxed);
    std::uint64_t expect = e;
    if (worker_->syscall_epoch.compare_exchange_strong(
            expect, e + 1, std::memory_order_release,
            std::memory_order_relaxed)) {
      published_ = true;
      epoch_ = e + 1;
    }
  }
  // An odd epoch here means either a nested region or a fresh host's ULT
  // entering while the wedged old host still owns the published epoch; both
  // stay unpublished (pinned and counted, but invisible to the sentinel).
  worker_->metrics.syscall_blocks.add(1);
  LPT_TRACE_EVENT(trace::EventType::kSyscallBlock, self_->trace_id,
                  static_cast<std::uint64_t>(worker_->rank));
}

blocking_region::~blocking_region() {
  if (self_ == nullptr) return;
  bool reabsorb = false;
  if (published_) {
    // Only the publisher flips the epoch back even; no other publisher can
    // advance it while it is odd, so a plain store cannot clobber anything.
    worker_->syscall_epoch.store(epoch_ + 1, std::memory_order_release);
    WorkerTls* tls = worker_tls();
    KltCtl* const me = tls->klt;
    // Rendezvous with the sentinel. Three stable outcomes, all reached in a
    // bounded number of sentinel steps (it either restores the token or
    // commits by storing compensated_epoch before current_klt):
    //   * compensated_epoch == our epoch → a compensation committed; the
    //     worker moved on with a fresh host and we must reabsorb.
    //   * host_token == me → nobody took the worker; continue normally.
    //   * current_klt != me with no matching compensation → a *generic*
    //     forced replacement orphaned this KLT; continue — the next
    //     suspension point takes the normal orphan path.
    for (;;) {
      if (worker_->syscall_compensated_epoch.load(std::memory_order_acquire) ==
          epoch_) {
        reabsorb = true;
        break;
      }
      if (worker_->host_token.load(std::memory_order_acquire) == me) break;
      if (worker_->current_klt.load(std::memory_order_acquire) != me) {
        reabsorb = worker_->syscall_compensated_epoch.load(
                       std::memory_order_acquire) == epoch_;
        break;
      }
      cpu_pause();  // sentinel is mid-decision (token claimed, not committed)
    }
  }
  std::int64_t blocked_ns = 0;
  if (LPT_TRACE_ON() && enter_ns_ != 0)
    blocked_ns = now_ns() - enter_ns_;

  if (reabsorb) {
    // The sentinel gave this worker a fresh host while we slept in the
    // kernel. Same save-before-publish discipline as the orphan landings:
    // save our context, hand the re-enqueue to klt_main (it may only run
    // once we are off this stack), and park this KLT back into the pool.
    // The ULT resumes right here on whichever worker dispatches it next.
    WorkerTls* tls = worker_tls();
    KltCtl* k = tls->klt;
    tls->in_ult = false;
    k->reabsorb_enqueue = self_;
    k->pending_wake = nullptr;
    k->pending_wake_in_handler = false;
    k->native_op = KltNativeOp::kPark;
    context_switch(self_->ctx, k->native_ctx);
    lpt::detail::mark_in_ult();
  }

  LPT_TRACE_EVENT(trace::EventType::kSyscallReturn, self_->trace_id,
                  static_cast<std::uint64_t>(blocked_ns < 0 ? 0 : blocked_ns),
                  reabsorb ? 1 : 0);
  prof::offcpu_end(self_);
  // Last: the guard exit is a cancel point and may convert a deferred tick
  // into a yield — both must happen on the (possibly new) hosting worker,
  // after the reabsorption switch, never before it.
  lpt::detail::end_no_preempt(self_);
}

namespace detail {

// noinline for the same reason worker_tls() is: errno is TLS, and glibc's
// __errno_location() carries attribute-const, inviting the optimizer to
// cache its result across calls. Inlined into a function whose ULT migrates
// between kernel threads (backoff sleep, reabsorption), that cached address
// points at the *previous* host's errno. The call boundary forces a fresh
// address computation on whichever kernel thread executes the access.
__attribute__((noinline)) int last_errno() { return errno; }

__attribute__((noinline)) void set_errno(int err) { errno = err; }

std::int64_t call_deadline(std::int64_t rel_ns) {
  return rel_ns > 0 ? now_ns() + rel_ns : 0;
}

bool call_backoff(int err, std::int64_t deadline_abs,
                  std::int64_t* backoff_ns) {
  if (deadline_abs != 0 && now_ns() >= deadline_abs) return false;
  if (err == EINTR) return true;  // retry immediately; no pacing needed
  // EAGAIN/EWOULDBLOCK: capped exponential backoff, 10 µs doubling to 1 ms,
  // clamped to the remaining deadline. sleep_for is cooperative inside a
  // ULT (the worker keeps scheduling) and nanosleep outside a runtime.
  constexpr std::int64_t kBackoffBaseNs = 10'000;
  constexpr std::int64_t kBackoffCapNs = 1'000'000;
  std::int64_t b = *backoff_ns == 0 ? kBackoffBaseNs : *backoff_ns * 2;
  if (b > kBackoffCapNs) b = kBackoffCapNs;
  *backoff_ns = b;
  if (deadline_abs != 0) {
    const std::int64_t remain = deadline_abs - now_ns();
    if (remain <= 0) return false;
    if (b > remain) b = remain;
  }
  lpt::this_thread::sleep_for(std::chrono::nanoseconds(b));
  return true;
}

}  // namespace detail

int last_error() { return detail::last_errno(); }

ssize_t read(int fd, void* buf, std::size_t count, std::int64_t deadline_ns) {
  return call([&] { return sys::read(fd, buf, count); }, deadline_ns,
              __builtin_return_address(0));
}

ssize_t write(int fd, const void* buf, std::size_t count,
              std::int64_t deadline_ns) {
  return call([&] { return sys::write(fd, buf, count); }, deadline_ns,
              __builtin_return_address(0));
}

int accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
           std::int64_t deadline_ns) {
  return call([&] { return sys::accept(sockfd, addr, addrlen); }, deadline_ns,
              __builtin_return_address(0));
}

int connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen,
            std::int64_t deadline_ns) {
  return call([&] { return sys::connect(sockfd, addr, addrlen); }, deadline_ns,
              __builtin_return_address(0));
}

int poll(struct pollfd* fds, nfds_t nfds, int timeout,
         std::int64_t deadline_ns) {
  return call([&] { return sys::poll(fds, nfds, timeout); }, deadline_ns,
              __builtin_return_address(0));
}

}  // namespace lpt::io
